//! End-to-end tests for the `slpc analyze` subcommand: the curated
//! example kernels must be lint-clean, and each fixture under
//! `examples/lints/` must trip exactly the V5xx lint it was written
//! for. The same invocations back the CI `analyze-smoke` job.

use std::path::PathBuf;
use std::process::Command;

fn slpc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_slpc"))
}

fn glob_slp(dir: &str) -> Vec<PathBuf> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(dir);
    let mut paths: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("{}: {e}", dir.display()))
        .map(|e| e.expect("directory entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "slp"))
        .collect();
    paths.sort();
    assert!(!paths.is_empty(), "no .slp files in {}", dir.display());
    paths
}

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(format!("examples/lints/{name}.slp"))
}

#[test]
fn example_suite_is_lint_clean() {
    let paths = glob_slp("examples/kernels");
    let out = slpc()
        .arg("analyze")
        .args(&paths)
        .output()
        .expect("run slpc analyze");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "curated kernels must lint clean:\n{stdout}"
    );
    assert!(
        stdout.contains("0 error(s), 0 warning(s)"),
        "unexpected findings:\n{stdout}"
    );
}

#[test]
fn each_fixture_trips_its_lint() {
    for (name, code, is_error) in [
        ("use_before_def", "V500", false),
        ("dead_store", "V501", false),
        ("oob", "V502", true),
        ("misaligned", "V503", false),
        ("dead_array_store", "V507", false),
    ] {
        let out = slpc()
            .arg("analyze")
            .arg(fixture(name))
            .output()
            .expect("run slpc analyze");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(
            stdout.contains(code),
            "{name}.slp should trip {code}:\n{stdout}"
        );
        assert_eq!(
            out.status.success(),
            !is_error,
            "{name}.slp: only error-severity findings fail the exit code:\n{stdout}"
        );
    }
}

#[test]
fn analyze_json_shares_the_check_diagnostic_shape() {
    let out = slpc()
        .arg("analyze")
        .arg(fixture("oob"))
        .arg("--json")
        .output()
        .expect("run slpc analyze --json");
    assert!(!out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    // The structured fields written by the shared serialization path.
    for key in [
        "\"code\"",
        "\"severity\"",
        "\"message\"",
        "\"span\"",
        "\"rendered\"",
    ] {
        assert!(stdout.contains(key), "missing {key}:\n{stdout}");
    }
    assert!(stdout.contains("V502"), "{stdout}");
    assert!(stdout.contains("\"scalar_ranges\""), "{stdout}");

    // `slpc check --json` renders its diagnostics through the same
    // helper: the misaligned fixture compiles with V204 warnings, which
    // must come out with the identical structured fields.
    let check = slpc()
        .arg("check")
        .arg(fixture("misaligned"))
        .args(["--static", "--json"])
        .output()
        .expect("run slpc check --json");
    let check_stdout = String::from_utf8_lossy(&check.stdout);
    for key in [
        "\"code\"",
        "\"severity\"",
        "\"message\"",
        "\"span\"",
        "\"rendered\"",
    ] {
        assert!(check_stdout.contains(key), "missing {key}:\n{check_stdout}");
    }
}

#[test]
fn analyze_rejects_unparseable_input() {
    let out = slpc()
        .arg("analyze")
        .arg("examples/lints/no-such-kernel.slp")
        .output()
        .expect("run slpc analyze");
    assert!(!out.status.success());
}
