//! Cross-crate integration tests: lang → core → vm on the full benchmark
//! suite, checking both semantics and the paper's headline relationships.

use slp::core::{compile, MachineConfig, SlpConfig, Strategy};
use slp::vm::execute;

fn reduction(scalar: f64, opt: f64) -> f64 {
    (1.0 - opt / scalar) * 100.0
}

/// Compiles and runs one program under a scheme, returning cycles.
fn run(
    program: &slp::ir::Program,
    machine: &MachineConfig,
    strategy: Strategy,
    layout: bool,
) -> f64 {
    let mut cfg = SlpConfig::for_machine(machine.clone(), strategy);
    if layout {
        cfg = cfg.with_layout();
    }
    let kernel = compile(program, &cfg);
    execute(&kernel, machine)
        .expect("suite kernels execute")
        .stats
        .metrics
        .cycles
}

#[test]
fn all_benchmarks_run_equivalently_under_all_schemes() {
    let machine = MachineConfig::intel_dunnington();
    for (spec, program) in slp::suite::all(1) {
        let n = program.arrays().len();
        let scalar = execute(
            &compile(
                &program,
                &SlpConfig::for_machine(machine.clone(), Strategy::Scalar),
            ),
            &machine,
        )
        .expect("scalar run");
        for (strategy, layout) in [
            (Strategy::Native, false),
            (Strategy::Baseline, false),
            (Strategy::Holistic, false),
            (Strategy::Holistic, true),
        ] {
            let mut cfg = SlpConfig::for_machine(machine.clone(), strategy);
            if layout {
                cfg = cfg.with_layout();
            }
            let out = execute(&compile(&program, &cfg), &machine).expect("vector run");
            assert!(
                out.state.arrays_bitwise_eq(&scalar.state, n),
                "{} under {strategy:?} (layout={layout}) diverged",
                spec.name
            );
        }
    }
}

#[test]
fn global_never_loses_to_the_baseline() {
    let machine = MachineConfig::intel_dunnington();
    for (spec, program) in slp::suite::all(1) {
        let scalar = run(&program, &machine, Strategy::Scalar, false);
        let slp = run(&program, &machine, Strategy::Baseline, false);
        let global = run(&program, &machine, Strategy::Holistic, false);
        assert!(
            reduction(scalar, global) >= reduction(scalar, slp) - 0.05,
            "{}: Global {:.1}% < SLP {:.1}%",
            spec.name,
            reduction(scalar, global),
            reduction(scalar, slp)
        );
    }
}

#[test]
fn layout_never_hurts_and_helps_somewhere() {
    let machine = MachineConfig::intel_dunnington();
    let mut helped = 0;
    for (spec, program) in slp::suite::all(1) {
        let global = run(&program, &machine, Strategy::Holistic, false);
        let layout = run(&program, &machine, Strategy::Holistic, true);
        assert!(
            layout <= global * 1.01,
            "{}: layout degraded {global} -> {layout}",
            spec.name
        );
        if layout < global * 0.995 {
            helped += 1;
        }
    }
    assert!(helped >= 3, "layout helped only {helped} benchmarks");
}

#[test]
fn amd_savings_are_lower_than_intel_on_average() {
    let intel = MachineConfig::intel_dunnington();
    let amd = MachineConfig::amd_phenom_ii();
    let mut intel_avg = 0.0;
    let mut amd_avg = 0.0;
    for (_, program) in slp::suite::all(1) {
        let si = run(&program, &intel, Strategy::Scalar, false);
        let gi = run(&program, &intel, Strategy::Holistic, false);
        intel_avg += reduction(si, gi);
        let sa = run(&program, &amd, Strategy::Scalar, false);
        let ga = run(&program, &amd, Strategy::Holistic, false);
        amd_avg += reduction(sa, ga);
    }
    assert!(
        amd_avg < intel_avg,
        "AMD total {amd_avg:.1} should trail Intel {intel_avg:.1} (higher pack/unpack costs)"
    );
}

#[test]
fn wider_datapaths_eliminate_more_instructions() {
    let base = MachineConfig::intel_dunnington();
    let program = slp::suite::kernel("lbm", 1);
    let mut last = -1.0;
    for bits in [128u32, 256, 512] {
        let machine = base.with_datapath_bits(bits);
        let scalar_cfg = SlpConfig::for_machine(machine.clone(), Strategy::Scalar);
        let global_cfg = SlpConfig::for_machine(machine.clone(), Strategy::Holistic);
        let s = execute(&compile(&program, &scalar_cfg), &machine).expect("scalar");
        let g = execute(&compile(&program, &global_cfg), &machine).expect("global");
        let eliminated = 1.0
            - g.stats.metrics.dynamic_instructions as f64
                / s.stats.metrics.dynamic_instructions as f64;
        assert!(
            eliminated > last,
            "elimination should grow with datapath width ({bits}-bit: {eliminated})"
        );
        last = eliminated;
    }
}

#[test]
fn scale_does_not_change_semantics() {
    let machine = MachineConfig::intel_dunnington();
    for scale in [1, 2] {
        let program = slp::suite::kernel("milc", scale);
        let n = program.arrays().len();
        let scalar = execute(
            &compile(
                &program,
                &SlpConfig::for_machine(machine.clone(), Strategy::Scalar),
            ),
            &machine,
        )
        .expect("scalar");
        let global = execute(
            &compile(
                &program,
                &SlpConfig::for_machine(machine.clone(), Strategy::Holistic),
            ),
            &machine,
        )
        .expect("global");
        assert!(global.state.arrays_bitwise_eq(&scalar.state, n));
    }
}
