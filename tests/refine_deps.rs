//! Before/after pins for range-refined dependence testing.
//!
//! Three example kernels carry a false dependence the baseline
//! GCD+interval tests cannot disprove (`stride_parity` and `comb` need
//! the stride congruence of a `step 2` loop; `diag_shift` needs the
//! joint cross-dimension test). These pins prove the refinement
//! actually fires on them — the telemetry counts at least one disproof
//! per kernel — and that removing the edge buys real packing:
//! `stride_parity` and `diag_shift` each gain a superword statement the
//! baseline compile lacked. A differential run per refined kernel keeps
//! the wins honest.

use slp::core::{compile, CompiledKernel, MachineConfig, SlpConfig, Strategy};
use slp::driver::{compile_batch, BatchConfig, CompileRequest, DriverReport, VerifyLevel};
use slp::ir::Program;

/// Kernels whose only obstacle to (more) packing is a dependence the
/// baseline tests keep and the range refinement disproves.
const SHOWCASES: [&str; 3] = ["stride_parity", "diag_shift", "comb"];

fn source(name: &str) -> String {
    let path = format!("{}/examples/kernels/{name}.slp", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

fn program(name: &str) -> Program {
    slp::lang::compile(&source(name)).expect("showcase kernel parses")
}

fn config(refine: bool) -> SlpConfig {
    let cfg = SlpConfig::for_machine(MachineConfig::intel_dunnington(), Strategy::Holistic);
    if refine {
        cfg.with_refined_deps()
    } else {
        cfg
    }
}

fn before_after(name: &str) -> (CompiledKernel, CompiledKernel) {
    let p = program(name);
    (compile(&p, &config(false)), compile(&p, &config(true)))
}

#[test]
fn refinement_disproves_a_dependence_on_each_showcase_kernel() {
    for name in SHOWCASES {
        let (before, after) = before_after(name);
        assert_eq!(
            before.stats.deps_refuted, 0,
            "{name}: baseline must not count refutations"
        );
        assert!(
            after.stats.deps_refuted >= 1,
            "{name}: refined compile disproved no dependence"
        );
    }
}

#[test]
fn stride_parity_gains_a_superword_statement() {
    let (before, after) = before_after("stride_parity");
    assert_eq!(
        before.stats.superwords, 0,
        "baseline is blocked by a false WAR"
    );
    assert!(
        after.stats.superwords >= 1,
        "refined compile should pack the adjacent stores"
    );
}

#[test]
fn diag_shift_gains_a_superword_statement() {
    let (before, after) = before_after("diag_shift");
    assert_eq!(before.stats.superwords, 0);
    assert!(after.stats.superwords >= 1);
}

#[test]
fn refined_compiles_stay_sound() {
    for name in SHOWCASES {
        let p = program(name);
        let kernel = compile(&p, &config(true));
        let report = slp::verify::verify_with_execution(&p, &kernel);
        assert!(report.passes(), "{name}: {report}");
    }
}

#[test]
fn driver_report_surfaces_the_refutation_telemetry() {
    let requests: Vec<CompileRequest> = SHOWCASES
        .iter()
        .map(|name| CompileRequest {
            name: name.to_string(),
            source: source(name),
            config: config(true),
            verify: VerifyLevel::Static,
        })
        .collect();
    let outcomes = compile_batch(&requests, None, &BatchConfig::default());
    let report = DriverReport::from_outcomes(&outcomes, 0, None);
    assert!(
        report.deps_refuted_count() >= 3,
        "expected one refutation per kernel, got {}",
        report.deps_refuted_count()
    );
    let json = report.to_json().to_pretty();
    assert!(json.contains("\"deps_refuted\""), "{json}");
    assert!(
        report.summary_table().contains("false dependence"),
        "{}",
        report.summary_table()
    );
}
