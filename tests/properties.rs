//! Property-based tests: for arbitrary generated programs, every
//! optimization strategy must preserve execution semantics, schedules
//! must satisfy the §4.1 validity constraints (asserted inside the
//! pipeline), and the pre-processing transformations must be meaning
//! preserving.

use proptest::prelude::*;

use slp::core::{compile, MachineConfig, SlpConfig, Strategy as Scheme};
use slp::suite::{random_program, GeneratorConfig};
use slp::vm::execute;

fn generator_config() -> impl Strategy<Value = GeneratorConfig> {
    (
        1usize..=3,
        2usize..=6,
        2usize..=14,
        4i64..=24,
        1i64..=4,
        0i64..=4,
    )
        .prop_map(
            |(arrays, scalars, body_stmts, trip_count, max_stride, outer_sweeps)| GeneratorConfig {
                arrays,
                scalars,
                body_stmts,
                trip_count,
                max_stride,
                outer_sweeps,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every strategy (including the layout stage and the opt-in
    /// cross-iteration reuse extension) computes bit-identical array
    /// contents to the scalar run, on any valid program.
    #[test]
    fn all_strategies_preserve_semantics(
        seed in any::<u64>(),
        cfg in generator_config(),
        carry in any::<bool>(),
    ) {
        let program = random_program(seed, &cfg);
        let machine = MachineConfig::intel_dunnington();
        let n = program.arrays().len();
        let scalar = execute(
            &compile(&program, &SlpConfig::for_machine(machine.clone(), Scheme::Scalar)),
            &machine,
        ).expect("generated programs are in bounds");
        for (strategy, layout) in [
            (Scheme::Native, false),
            (Scheme::Baseline, false),
            (Scheme::Holistic, false),
            (Scheme::Holistic, true),
        ] {
            let mut c = SlpConfig::for_machine(machine.clone(), strategy);
            if layout {
                c = c.with_layout();
            }
            c.cross_iteration_reuse = carry;
            // `compile` internally validates every schedule against the
            // §4.1 constraints and panics on violation.
            let out = execute(&compile(&program, &c), &machine).expect("vector run");
            prop_assert!(
                out.state.arrays_bitwise_eq(&scalar.state, n),
                "{strategy:?} layout={layout} carry={carry} diverged on seed {seed}"
            );
        }
    }

    /// The fast-path bytecode engine agrees bit-for-bit with the
    /// reference interpreter on every strategy's compiled kernel.
    #[test]
    fn engines_agree_on_random_programs(seed in any::<u64>(), cfg in generator_config()) {
        let program = random_program(seed, &cfg);
        let machine = MachineConfig::intel_dunnington();
        for strategy in [Scheme::Scalar, Scheme::Native, Scheme::Baseline, Scheme::Holistic] {
            let kernel = compile(&program, &SlpConfig::for_machine(machine.clone(), strategy));
            let diags = slp::verify::check_engine_agreement(&kernel);
            prop_assert!(
                diags.is_empty(),
                "{strategy:?} engines disagree on seed {seed}: {diags:?}"
            );
        }
    }

    /// No strategy makes the program slower than scalar once the §4.3
    /// cost gate has run.
    #[test]
    fn cost_gate_bounds_regressions(seed in any::<u64>()) {
        let program = random_program(seed, &GeneratorConfig::default());
        let machine = MachineConfig::intel_dunnington();
        let scalar = execute(
            &compile(&program, &SlpConfig::for_machine(machine.clone(), Scheme::Scalar)),
            &machine,
        ).expect("scalar run");
        for strategy in [Scheme::Baseline, Scheme::Holistic] {
            let c = SlpConfig::for_machine(machine.clone(), strategy);
            let out = execute(&compile(&program, &c), &machine).expect("vector run");
            prop_assert!(
                out.stats.metrics.cycles <= scalar.stats.metrics.cycles * 1.001,
                "{strategy:?} slower than scalar on seed {seed}: {} vs {}",
                out.stats.metrics.cycles,
                scalar.stats.metrics.cycles,
            );
        }
    }

    /// Loop unrolling is meaning preserving on its own.
    #[test]
    fn unrolling_preserves_semantics(seed in any::<u64>(), factor in 2usize..=4) {
        let program = random_program(seed, &GeneratorConfig::default());
        let machine = MachineConfig::intel_dunnington();
        let n = program.arrays().len();
        let base = execute(
            &compile(&program, &SlpConfig::for_machine(machine.clone(), Scheme::Scalar)),
            &machine,
        ).expect("scalar run");
        let mut unrolled = program.clone();
        slp::ir::unroll_program(&mut unrolled, factor);
        let out = execute(
            &compile(&unrolled, &SlpConfig::for_machine(machine.clone(), Scheme::Scalar)),
            &machine,
        ).expect("unrolled run");
        prop_assert!(out.state.arrays_bitwise_eq(&base.state, n));
    }

    /// The affine substitution used by unrolling matches direct
    /// evaluation: eval(e[v := v + k]) == eval(e) with v shifted by k.
    #[test]
    fn affine_substitution_matches_shifted_evaluation(
        coeff in -8i64..=8, cst in -16i64..=16, k in -8i64..=8, at in -32i64..=32,
    ) {
        use slp::ir::{AffineExpr, LoopVarId};
        let v = LoopVarId::new(0);
        let e = AffineExpr::from_terms([(v, coeff)], cst);
        let shifted = e.substitute(v, &AffineExpr::var(v).offset(k));
        prop_assert_eq!(shifted.eval(&[(v, at)]), e.eval(&[(v, at + k)]));
    }

    /// Eq. (4): the layout mapping sends each element a reference touches
    /// to the strided interleaved slot, injectively per lane.
    #[test]
    fn eq4_is_a_strided_injection(a in 1i64..=8, b in 0i64..=8, l in 1i64..=4, iters in 1i64..=32) {
        for p in 0..l {
            for i in 0..iters {
                let d = a * i + b;
                let mapped = slp::core::eq4_map(d, a, b, l, p);
                prop_assert_eq!(mapped, l * i + p);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Generated programs satisfy the static validator, and unrolling
    /// preserves validity (ids stay unique, subscripts stay in bounds).
    #[test]
    fn generated_programs_validate_and_stay_valid_after_unrolling(
        seed in any::<u64>(),
        factor in 2usize..=4,
    ) {
        let mut program = random_program(seed, &GeneratorConfig::default());
        program.validate().expect("generator emits valid programs");
        slp::ir::unroll_program(&mut program, factor);
        program.validate().expect("unrolling preserves validity");
    }
}

#[test]
fn suite_kernels_validate() {
    for (spec, program) in slp::suite::all(1) {
        program
            .validate()
            .unwrap_or_else(|e| panic!("{} is invalid: {e:?}", spec.name));
    }
}
