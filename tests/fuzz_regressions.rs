//! Tier-1 gate on the fuzzing campaign's findings: the minimized
//! reproducer corpus under `crates/fuzz/corpus/` must replay clean
//! through all three differential oracles.

#[test]
fn fuzz_corpus_replays_clean() {
    let dir = slp_fuzz::default_corpus_dir();
    let failures = slp_fuzz::replay_corpus(&dir).expect("read corpus dir");
    assert!(
        failures.is_empty(),
        "fuzz corpus regressions:\n{}",
        failures
            .iter()
            .map(|(name, a)| format!("  {name}: {}\n    {}", a.headline(), a.detail))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn short_campaign_stays_clean() {
    // A fresh 100-iteration two-level campaign (distinct from the
    // checked-in corpus) must not surface new oracle violations.
    let cfg = slp_fuzz::FuzzConfig::new(7, 100);
    let (stats, failures) = slp_fuzz::run_campaign(&cfg);
    assert_eq!(stats.cases, 200);
    assert!(
        failures.is_empty(),
        "new oracle violations: {:?}",
        failures
            .iter()
            .map(|f| (f.case.clone(), f.anomaly.headline(), f.source.clone()))
            .collect::<Vec<_>>()
    );
}
