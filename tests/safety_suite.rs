//! Safety-certificate gates over the whole kernel catalog: every
//! curated suite kernel and every branchy (if-converted) kernel must
//! certify `ProvenSafe` on all accesses, the compile stats must mirror
//! the certificate, and the bytecode translator must actually elide
//! bounds checks for certified accesses while staying bit-identical to
//! the fully-checked engine. These invocations back the CI
//! `safety-smoke` job.

use slp::core::{compile, MachineConfig, SlpConfig, Strategy};
use slp::vm::{execute_fully_checked, execute_reference, BytecodeKernel};

fn machine() -> MachineConfig {
    MachineConfig::intel_dunnington()
}

fn config(strategy: Strategy) -> SlpConfig {
    SlpConfig::for_machine(machine(), strategy)
}

#[test]
fn every_suite_kernel_certifies_proven_safe() {
    let scale = 8;
    for (spec, program) in slp::suite::all(scale) {
        for strategy in [Strategy::Scalar, Strategy::Baseline, Strategy::Holistic] {
            let kernel = compile(&program, &config(strategy));
            assert!(
                kernel.safety.all_proven_safe(),
                "{} ({strategy:?}): {} unknown, {} faulting of {} accesses",
                spec.name,
                kernel.safety.unknown(),
                kernel.safety.proven_faulting(),
                kernel.safety.accesses.len()
            );
            assert_eq!(
                kernel.stats.accesses_proven_safe,
                kernel.safety.accesses.len(),
                "{}: stats must mirror the certificate",
                spec.name
            );
        }
    }
}

#[test]
fn every_branchy_kernel_certifies_proven_safe() {
    let scale = 8;
    for name in slp::suite::branchy_catalog() {
        let program = slp::suite::branchy_kernel(name, scale);
        for strategy in [Strategy::Scalar, Strategy::Holistic] {
            let kernel = compile(&program, &config(strategy));
            assert!(
                kernel.safety.all_proven_safe(),
                "{name} ({strategy:?}): {} unknown, {} faulting of {} accesses",
                kernel.safety.unknown(),
                kernel.safety.proven_faulting(),
                kernel.safety.accesses.len()
            );
        }
    }
}

/// The certificate is not decorative: for the suite, the translator
/// must elide at least one bounds check per kernel, and the unchecked
/// execution must stay bit-identical to both the fully-checked bytecode
/// engine and the reference engine.
#[test]
fn certified_elision_is_effective_and_bit_exact_across_the_suite() {
    let scale = 8;
    let machine = machine();
    for (spec, program) in slp::suite::all(scale).into_iter().take(6) {
        let kernel = compile(&program, &config(Strategy::Holistic));
        let fast = BytecodeKernel::compile(&kernel, &machine, true).expect("compiles");
        let (elided, total) = fast.unchecked_accesses();
        assert!(total > 0, "{}: no accesses?", spec.name);
        assert!(
            elided > 0,
            "{}: certificate proved everything safe but nothing was elided",
            spec.name
        );

        let a = fast.run().expect("unchecked run");
        let b = execute_fully_checked(&kernel, &machine).expect("checked run");
        let c = execute_reference(&kernel, &machine).expect("reference run");
        assert!(
            a.state.bitwise_eq(&b.state) && a.state.bitwise_eq(&c.state),
            "{}: unchecked execution diverged",
            spec.name
        );
    }
}
