//! Wider-than-SSE datapaths (the Figure 18 regime): iterative grouping
//! must fill 4–16 lanes, schedules stay valid (checked inside `compile`),
//! execution stays bit-exact, and f32 kernels pack twice as many lanes as
//! f64.

use slp::core::{compile, MachineConfig, SlpConfig, Strategy};
use slp::vm::execute;

fn equivalent_at(program: &slp::ir::Program, bits: u32) {
    let machine = MachineConfig::intel_dunnington().with_datapath_bits(bits);
    let n = program.arrays().len();
    let scalar = execute(
        &compile(
            program,
            &SlpConfig::for_machine(machine.clone(), Strategy::Scalar),
        ),
        &machine,
    )
    .expect("scalar run");
    for strategy in [Strategy::Baseline, Strategy::Holistic] {
        let kernel = compile(program, &SlpConfig::for_machine(machine.clone(), strategy));
        let out = execute(&kernel, &machine).expect("vector run");
        assert!(
            out.state.arrays_bitwise_eq(&scalar.state, n),
            "{} under {strategy:?} at {bits}-bit diverged",
            program.name()
        );
    }
}

#[test]
fn suite_subset_is_equivalent_at_256_and_512_bits() {
    for name in ["lbm", "soplex", "cactusADM", "ft", "cg"] {
        let program = slp::suite::kernel(name, 1);
        equivalent_at(&program, 256);
        equivalent_at(&program, 512);
    }
}

#[test]
fn iterative_grouping_fills_wide_datapaths() {
    // An embarrassingly parallel stream: at 512 bits (8 f64 lanes) the
    // holistic optimizer must emit 8-wide superword statements.
    let program = slp::lang::compile(
        "kernel wide { array A: f64[128]; array B: f64[128];
         for i in 0..128 { A[i] = B[i] * 3.0; } }",
    )
    .expect("compiles");
    let machine = MachineConfig::intel_dunnington().with_datapath_bits(512);
    let kernel = compile(
        &program,
        &SlpConfig::for_machine(machine.clone(), Strategy::Holistic),
    );
    let widths: Vec<usize> = kernel
        .schedules
        .iter()
        .flat_map(|(_, s)| s.items().iter().map(|i| i.stmts().len()))
        .filter(|&w| w > 1)
        .collect();
    assert!(
        widths.contains(&8),
        "expected 8-wide superwords, got {widths:?}"
    );
    let out = execute(&kernel, &machine).expect("runs");
    assert!(out.vectorized_blocks > 0);
}

#[test]
fn f32_kernels_pack_four_lanes_on_sse() {
    // f32 at 128 bits: four lanes per superword statement.
    let program = slp::lang::compile(
        "kernel floats { array A: f32[64]; array B: f32[64];
         for i in 0..64 { A[i] = B[i] + 1.5; } }",
    )
    .expect("compiles");
    let machine = MachineConfig::intel_dunnington();
    let kernel = compile(
        &program,
        &SlpConfig::for_machine(machine.clone(), Strategy::Holistic),
    );
    // Auto-unroll picks 4 for the dominant f32 type.
    assert_eq!(
        kernel.stats.stmts, 4,
        "64-trip loop unrolled 4x has 4-stmt body"
    );
    let widths: Vec<usize> = kernel
        .schedules
        .iter()
        .flat_map(|(_, s)| s.items().iter().map(|i| i.stmts().len()))
        .filter(|&w| w > 1)
        .collect();
    assert!(
        widths.contains(&4),
        "expected 4-wide f32 superwords, got {widths:?}"
    );
    let n = program.arrays().len();
    let scalar = execute(
        &compile(
            &program,
            &SlpConfig::for_machine(machine.clone(), Strategy::Scalar),
        ),
        &machine,
    )
    .expect("scalar");
    let out = execute(&kernel, &machine).expect("vector");
    assert!(out.state.arrays_bitwise_eq(&scalar.state, n));
    assert!(out.stats.metrics.cycles < scalar.stats.metrics.cycles);
}

#[test]
fn tiny_register_files_spill_but_stay_correct() {
    // Shrinking the register file to 2 forces spills on a reuse-heavy
    // kernel; results must not change and memory traffic must grow.
    let program = slp::suite::kernel("milc", 1);
    let n = program.arrays().len();
    let full = MachineConfig::intel_dunnington();
    let mut tiny = MachineConfig::intel_dunnington();
    tiny.vector_regs = 2;

    let scalar = execute(
        &compile(
            &program,
            &SlpConfig::for_machine(full.clone(), Strategy::Scalar),
        ),
        &full,
    )
    .expect("scalar");
    let on_full = execute(
        &compile(
            &program,
            &SlpConfig::for_machine(full.clone(), Strategy::Holistic),
        ),
        &full,
    )
    .expect("full file");
    let on_tiny = execute(
        &compile(
            &program,
            &SlpConfig::for_machine(tiny.clone(), Strategy::Holistic),
        ),
        &tiny,
    )
    .expect("tiny file");
    assert!(on_full.state.arrays_bitwise_eq(&scalar.state, n));
    assert!(on_tiny.state.arrays_bitwise_eq(&scalar.state, n));
    assert!(
        on_tiny.stats.metrics.memory_ops >= on_full.stats.metrics.memory_ops,
        "spilling should not reduce memory traffic"
    );
}
