//! Source round-trip: emitting any program back to `slp-lang` text and
//! recompiling it must preserve execution semantics exactly — including
//! unrolled programs (the `step` clause) and privatized temporaries.

use proptest::prelude::*;

use slp::core::{compile, MachineConfig, SlpConfig, Strategy as Scheme};
use slp::suite::{random_program, GeneratorConfig};
use slp::vm::execute;

fn scalar_run(program: &slp::ir::Program, machine: &MachineConfig) -> slp::vm::Outcome {
    execute(
        &compile(
            program,
            &SlpConfig::for_machine(machine.clone(), Scheme::Scalar),
        ),
        machine,
    )
    .expect("programs are in bounds")
}

#[test]
fn suite_kernels_round_trip() {
    let machine = MachineConfig::intel_dunnington();
    for (spec, program) in slp::suite::all(1) {
        let src = program.to_source();
        let reparsed = slp::lang::compile(&src)
            .unwrap_or_else(|e| panic!("{} failed to re-parse: {e}\n{src}", spec.name));
        assert_eq!(program.stmt_count(), reparsed.stmt_count(), "{}", spec.name);
        let a = scalar_run(&program, &machine);
        let b = scalar_run(&reparsed, &machine);
        assert!(
            a.state.arrays_bitwise_eq(&b.state, program.arrays().len()),
            "{} changed meaning across the round trip",
            spec.name
        );
    }
}

#[test]
fn unrolled_programs_round_trip_via_step_syntax() {
    let machine = MachineConfig::intel_dunnington();
    for name in ["lbm", "milc", "wrf"] {
        let mut program = slp::suite::kernel(name, 1);
        slp::ir::unroll_program(&mut program, 2);
        let src = program.to_source();
        assert!(src.contains("step 2"), "{name} should emit a step clause");
        let reparsed = slp::lang::compile(&src)
            .unwrap_or_else(|e| panic!("{name} unrolled failed to re-parse: {e}\n{src}"));
        let a = scalar_run(&program, &machine);
        let b = scalar_run(&reparsed, &machine);
        assert!(
            a.state.arrays_bitwise_eq(&b.state, program.arrays().len()),
            "{name}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_programs_round_trip(seed in any::<u64>(), cfg_seed in 0u64..4) {
        let cfg = GeneratorConfig {
            body_stmts: 6 + cfg_seed as usize,
            ..GeneratorConfig::default()
        };
        let program = random_program(seed, &cfg);
        let machine = MachineConfig::intel_dunnington();
        let src = program.to_source();
        let reparsed = slp::lang::compile(&src)
            .unwrap_or_else(|e| panic!("seed {seed} failed to re-parse: {e}\n{src}"));
        let a = scalar_run(&program, &machine);
        let b = scalar_run(&reparsed, &machine);
        prop_assert!(a.state.arrays_bitwise_eq(&b.state, program.arrays().len()));
    }
}
