//! Degenerate-input robustness: empty kernels, zero-trip loops, single
//! statements, one-element arrays — every pipeline stage must handle
//! them without panicking and without changing semantics.

use slp::core::{compile, MachineConfig, SlpConfig, Strategy};
use slp::vm::execute;

fn all_schemes_agree(src: &str) {
    let program = slp::lang::compile(src).expect("compiles");
    program.validate().expect("valid");
    let machine = MachineConfig::intel_dunnington();
    let n = program.arrays().len();
    let scalar = execute(
        &compile(
            &program,
            &SlpConfig::for_machine(machine.clone(), Strategy::Scalar),
        ),
        &machine,
    )
    .expect("scalar run");
    for strategy in [Strategy::Native, Strategy::Baseline, Strategy::Holistic] {
        for layout in [false, true] {
            let mut cfg = SlpConfig::for_machine(machine.clone(), strategy);
            if layout {
                cfg = cfg.with_layout();
            }
            let out = execute(&compile(&program, &cfg), &machine).expect("runs");
            assert!(out.state.arrays_bitwise_eq(&scalar.state, n), "{src}");
        }
    }
}

#[test]
fn empty_kernel() {
    all_schemes_agree("kernel empty { }");
}

#[test]
fn declarations_only() {
    all_schemes_agree("kernel decls { array A: f64[4]; scalar x, y: f64; }");
}

#[test]
fn zero_trip_loop() {
    all_schemes_agree("kernel zt { array A: f64[8]; for i in 4..4 { A[i] = 1.0; } }");
}

#[test]
fn single_iteration_loop() {
    all_schemes_agree(
        "kernel one { array A: f64[8]; scalar x: f64;
         for i in 0..1 { x = A[i]; A[i+1] = x * 2.0; } }",
    );
}

#[test]
fn single_statement_kernel() {
    all_schemes_agree("kernel s1 { array A: f64[2]; A[1] = 3.5; }");
}

#[test]
fn one_element_arrays() {
    all_schemes_agree(
        "kernel tiny { array A: f64[1]; array B: f64[1];
         for i in 0..1 { A[i] = B[i] * 2.0; } }",
    );
}

#[test]
fn loop_with_nonzero_lower_bound() {
    all_schemes_agree(
        "kernel lb { array A: f64[40];
         for i in 5..20 { A[2*i-10] = A[2*i-9] + 1.0; } }",
    );
}

#[test]
fn deeply_nested_empty_inner() {
    all_schemes_agree(
        "kernel nest { array A: f64[8];
         for i in 0..2 { for j in 0..2 { for k in 2..2 { A[k] = 1.0; } A[j] = 2.0; } } }",
    );
}

#[test]
fn top_level_code_between_loops() {
    all_schemes_agree(
        "kernel mix { array A: f64[16]; scalar s: f64;
         s = 3.0;
         for i in 0..8 { A[i] = s * 2.0; }
         s = s + 1.0;
         for i in 0..8 { A[i+8] = s; } }",
    );
}
