//! Mixed element types in one kernel: f32 statements pack four lanes,
//! f64 statements two, and the two families never mix in one superword
//! (the §4.1 isomorphism constraint covers element types).

use slp::core::{compile, MachineConfig, SlpConfig, Strategy};
use slp::vm::execute;

const SRC: &str = "kernel mixed {
    array F: f32[64]; array G: f32[64];
    array D: f64[64]; array E: f64[64];
    for i in 0..16 {
        F[4*i] = G[4*i] * 2.0;
        F[4*i+1] = G[4*i+1] * 2.0;
        F[4*i+2] = G[4*i+2] * 2.0;
        F[4*i+3] = G[4*i+3] * 2.0;
        D[2*i] = E[2*i] + 1.0;
        D[2*i+1] = E[2*i+1] + 1.0;
    }
}";

#[test]
fn lane_widths_follow_element_types() {
    let program = slp::lang::compile(SRC).expect("compiles");
    let machine = MachineConfig::intel_dunnington();
    let mut cfg = SlpConfig::for_machine(machine.clone(), Strategy::Holistic);
    cfg.unroll = 1; // keep the handwritten lane structure exact
    let kernel = compile(&program, &cfg);
    let mut widths: Vec<usize> = kernel
        .schedules
        .iter()
        .flat_map(|(_, s)| s.items().iter().map(|i| i.stmts().len()))
        .filter(|&w| w > 1)
        .collect();
    widths.sort_unstable();
    assert_eq!(
        widths,
        vec![2, 4],
        "one 2-wide f64 and one 4-wide f32 superword"
    );

    // No superword mixes element types.
    for (_, sched) in &kernel.schedules {
        for item in sched.items() {
            let blocks = kernel.program.blocks();
            let stmt_ty = |id: slp::ir::StmtId| {
                use slp::ir::TypeEnv;
                let stmt = blocks
                    .iter()
                    .find_map(|b| b.block.stmt(id))
                    .expect("stmt somewhere");
                kernel.program.dest_type(stmt.dest())
            };
            let tys: Vec<_> = item.stmts().iter().map(|&s| stmt_ty(s)).collect();
            assert!(tys.windows(2).all(|w| w[0] == w[1]), "mixed-type superword");
        }
    }
}

#[test]
fn mixed_type_kernels_stay_bit_exact() {
    let program = slp::lang::compile(SRC).expect("compiles");
    let machine = MachineConfig::intel_dunnington();
    let n = program.arrays().len();
    let scalar = execute(
        &compile(
            &program,
            &SlpConfig::for_machine(machine.clone(), Strategy::Scalar),
        ),
        &machine,
    )
    .expect("scalar");
    for strategy in [Strategy::Native, Strategy::Baseline, Strategy::Holistic] {
        let out = execute(
            &compile(&program, &SlpConfig::for_machine(machine.clone(), strategy)),
            &machine,
        )
        .expect("vector");
        assert!(
            out.state.arrays_bitwise_eq(&scalar.state, n),
            "{strategy:?}"
        );
    }
}
