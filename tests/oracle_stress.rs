//! Stress matrix for the bit-exactness oracle: every suite kernel ×
//! {Intel, AMD} × {128, 256-bit datapaths} × all schemes must pass the
//! full `slp-verify` battery (static legality checks plus differential
//! translation validation against the scalar run), and the headline
//! Figure 16 relationships must hold in loose bands (guarding the
//! calibrated cost model against accidental drift).

use slp::core::{compile, MachineConfig, SlpConfig, Strategy};
use slp::verify::verify_with_execution;
use slp::vm::execute;

#[test]
fn oracle_matrix_over_machines_and_datapaths() {
    let machines = [
        MachineConfig::intel_dunnington(),
        MachineConfig::amd_phenom_ii(),
        MachineConfig::intel_dunnington().with_datapath_bits(256),
    ];
    for machine in &machines {
        for (spec, program) in slp::suite::all(1) {
            for (strategy, layout) in [
                (Strategy::Baseline, false),
                (Strategy::Holistic, false),
                (Strategy::Holistic, true),
            ] {
                let mut cfg = SlpConfig::for_machine(machine.clone(), strategy);
                if layout {
                    cfg = cfg.with_layout();
                }
                let kernel = compile(&program, &cfg);
                // The differential validator recompiles and runs the
                // scalar baseline itself, then diffs final memory bit
                // for bit; the static checkers re-prove dependence
                // preservation, pack legality, and layout soundness.
                let report = verify_with_execution(&program, &kernel);
                assert!(
                    report.passes(),
                    "{} under {strategy:?}/layout={layout} on {} ({} bits) \
                     failed verification:\n{report}",
                    spec.name,
                    machine.name,
                    machine.datapath_bits
                );
            }
        }
    }
}

/// Loose regression bands around the calibrated Figure 16 magnitudes.
/// These are deliberately wide — they exist to catch accidental
/// cost-model or pipeline regressions, not to pin exact numbers.
#[test]
fn headline_magnitudes_stay_in_their_bands() {
    let machine = MachineConfig::intel_dunnington();
    let mut global_sum = 0.0;
    let mut slp_sum = 0.0;
    for (_, program) in slp::suite::all(1) {
        let run = |strategy: Strategy| {
            execute(
                &compile(&program, &SlpConfig::for_machine(machine.clone(), strategy)),
                &machine,
            )
            .expect("runs")
            .stats
            .metrics
            .cycles
        };
        let scalar = run(Strategy::Scalar);
        global_sum += (1.0 - run(Strategy::Holistic) / scalar) * 100.0;
        slp_sum += (1.0 - run(Strategy::Baseline) / scalar) * 100.0;
    }
    let global_avg = global_sum / 16.0;
    let slp_avg = slp_sum / 16.0;
    assert!(
        (12.0..=28.0).contains(&global_avg),
        "Global average drifted out of band: {global_avg:.1}%"
    );
    assert!(
        (10.0..=26.0).contains(&slp_avg),
        "SLP average drifted out of band: {slp_avg:.1}%"
    );
    assert!(
        global_avg - slp_avg >= 1.0,
        "the holistic advantage collapsed: {global_avg:.1}% vs {slp_avg:.1}%"
    );
}
