//! The opt-in cross-iteration superword reuse extension: loop-carried
//! packs are held in registers instead of reloaded every iteration.

use slp::core::{compile, MachineConfig, SlpConfig, Strategy};
use slp::vm::execute;

const STENCIL: &str = "kernel stencil {
    array U: f64[80];
    array V: f64[80];
    for i in 0..64 {
        V[i] = U[i] + U[i+2] * 0.5;
    }
}";

fn run(flag: bool) -> (slp::vm::Outcome, slp::core::CompiledKernel, MachineConfig) {
    let program = slp::lang::compile(STENCIL).expect("compiles");
    let machine = MachineConfig::intel_dunnington();
    let mut cfg = SlpConfig::for_machine(machine.clone(), Strategy::Holistic);
    cfg.cross_iteration_reuse = flag;
    let kernel = compile(&program, &cfg);
    let out = execute(&kernel, &machine).expect("runs");
    (out, kernel, machine)
}

#[test]
fn carried_packs_preserve_semantics() {
    let program = slp::lang::compile(STENCIL).expect("compiles");
    let machine = MachineConfig::intel_dunnington();
    let scalar = execute(
        &compile(
            &program,
            &SlpConfig::for_machine(machine.clone(), Strategy::Scalar),
        ),
        &machine,
    )
    .expect("scalar");
    let (with, _, _) = run(true);
    let (without, _, _) = run(false);
    assert!(with.state.arrays_bitwise_eq(&scalar.state, 2));
    assert!(without.state.arrays_bitwise_eq(&scalar.state, 2));
}

#[test]
fn carried_packs_cut_memory_traffic() {
    let (with, kernel, machine) = run(true);
    let (without, _, _) = run(false);
    assert!(
        with.stats.metrics.memory_ops < without.stats.metrics.memory_ops,
        "carried loads should remove per-iteration memory ops: {} vs {}",
        with.stats.metrics.memory_ops,
        without.stats.metrics.memory_ops
    );
    assert!(with.stats.metrics.cycles < without.stats.metrics.cycles);
    // The generated code actually contains a carried load.
    let codes = slp::vm::lower_kernel(&kernel, &machine, true);
    let carried = codes
        .iter()
        .flat_map(|(_, c)| c.insts.iter())
        .filter(|i| matches!(i, slp::vm::VInst::CarriedLoad { .. }))
        .count();
    assert!(carried >= 1, "expected a carried load in the emitted code");
}

#[test]
fn suite_stays_equivalent_with_the_extension_enabled() {
    let machine = MachineConfig::intel_dunnington();
    for (spec, program) in slp::suite::all(1) {
        let n = program.arrays().len();
        let scalar = execute(
            &compile(
                &program,
                &SlpConfig::for_machine(machine.clone(), Strategy::Scalar),
            ),
            &machine,
        )
        .expect("scalar");
        let mut cfg = SlpConfig::for_machine(machine.clone(), Strategy::Holistic);
        cfg.cross_iteration_reuse = true;
        let out = execute(&compile(&program, &cfg), &machine).expect("vector");
        assert!(
            out.state.arrays_bitwise_eq(&scalar.state, n),
            "{} diverged with cross-iteration reuse",
            spec.name
        );
    }
}
