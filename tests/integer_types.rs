//! Integer element types: i32 packs four lanes on SSE2, storage
//! truncates exactly once per store, and every scheme agrees bit for bit
//! under those semantics.

use slp::core::{compile, MachineConfig, SlpConfig, Strategy};
use slp::vm::execute;

const SRC: &str = "kernel ints {
    array A: i32[64]; array B: i32[64];
    scalar q: i32;
    for i in 0..32 {
        A[2*i] = B[2*i] / 2.0;
        A[2*i+1] = B[2*i+1] / 2.0;
    }
}";

#[test]
fn integer_division_truncates_identically_across_schemes() {
    let program = slp::lang::compile(SRC).expect("compiles");
    let machine = MachineConfig::intel_dunnington();
    let n = program.arrays().len();
    let scalar = execute(
        &compile(
            &program,
            &SlpConfig::for_machine(machine.clone(), Strategy::Scalar),
        ),
        &machine,
    )
    .expect("scalar");
    // The stored values are whole numbers (truncated).
    let a = scalar.state.array(slp::ir::ArrayId::new(0));
    assert!(
        a.iter().all(|v| v.fract() == 0.0),
        "i32 stores must truncate"
    );
    for strategy in [Strategy::Native, Strategy::Baseline, Strategy::Holistic] {
        let out = execute(
            &compile(&program, &SlpConfig::for_machine(machine.clone(), strategy)),
            &machine,
        )
        .expect("vector");
        assert!(
            out.state.arrays_bitwise_eq(&scalar.state, n),
            "{strategy:?}"
        );
    }
}

#[test]
fn i32_packs_four_lanes() {
    let src = "kernel i4 {
        array A: i32[64]; array B: i32[64];
        for i in 0..16 {
            A[4*i] = B[4*i] + 1.0;
            A[4*i+1] = B[4*i+1] + 1.0;
            A[4*i+2] = B[4*i+2] + 1.0;
            A[4*i+3] = B[4*i+3] + 1.0;
        }
    }";
    let program = slp::lang::compile(src).expect("compiles");
    let machine = MachineConfig::intel_dunnington();
    let mut cfg = SlpConfig::for_machine(machine.clone(), Strategy::Holistic);
    cfg.unroll = 1;
    let kernel = compile(&program, &cfg);
    let widths: Vec<usize> = kernel
        .schedules
        .iter()
        .flat_map(|(_, s)| s.items().iter().map(|i| i.stmts().len()))
        .filter(|&w| w > 1)
        .collect();
    assert!(
        widths.contains(&4),
        "i32 at 128 bits should pack 4: {widths:?}"
    );
}

#[test]
fn narrow_types_pack_many_lanes_per_superword() {
    use slp::ir::ScalarType;
    let machine = MachineConfig::intel_dunnington();
    assert_eq!(machine.lanes_for(ScalarType::I16), 8);
    assert_eq!(machine.lanes_for(ScalarType::I8), 16);
}
