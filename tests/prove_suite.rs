//! End-to-end guarantees of the symbolic translation validator.
//!
//! Two directions:
//!
//! * **Completeness on real output**: every kernel of the sixteen-kernel
//!   suite, compiled under every vectorizing strategy, must come back
//!   `Proved` — the validator accepts everything the optimizer actually
//!   emits, with no budget or unsupported degradation.
//! * **Soundness on injected miscompiles**: classic vectorizer bugs —
//!   reordered dependent stores, a dropped remainder iteration, a wrong
//!   lane permutation — must come back `Refuted`, each with a concrete
//!   counterexample input that demonstrably diverges when replayed
//!   through the VM.

use slp::core::{compile, BlockSchedule, ScheduledItem};
use slp::prelude::*;
use slp::tv::{replay_counterexample, validate, Budgets, Verdict};

fn machine() -> MachineConfig {
    MachineConfig::intel_dunnington()
}

fn strategies() -> [(&'static str, Strategy, bool); 4] {
    [
        ("Native", Strategy::Native, false),
        ("SLP", Strategy::Baseline, false),
        ("Global", Strategy::Holistic, false),
        ("Global+Layout", Strategy::Holistic, true),
    ]
}

fn config(strategy: Strategy, layout: bool) -> SlpConfig {
    let cfg = SlpConfig::for_machine(machine(), strategy);
    if layout {
        cfg.with_layout()
    } else {
        cfg
    }
}

fn program(src: &str) -> Program {
    parse_kernel(src).expect("kernel compiles")
}

#[test]
fn whole_suite_is_proved_under_every_strategy() {
    let budgets = Budgets::default();
    for (spec, original) in slp::suite::all(1) {
        for (label, strategy, layout) in strategies() {
            let kernel = compile(&original, &config(strategy, layout));
            let verdict = validate(&original, &kernel, &machine(), &budgets);
            assert_eq!(
                verdict.name(),
                "proved",
                "{} under {label}: {verdict:?}",
                spec.name
            );
        }
    }
}

#[test]
fn driver_prove_level_carries_the_verdict() {
    let req = CompileRequest {
        name: "axpy".to_string(),
        source: "kernel axpy { array X: f64[64]; array Y: f64[64]; scalar a: f64;
                 for i in 0..64 { Y[i] = Y[i] + a * X[i]; } }"
            .to_string(),
        config: config(Strategy::Holistic, false),
        verify: VerifyLevel::Prove,
    };
    let cache = CompileCache::in_memory(4);
    let cold = compile_source(&req, Some(&cache)).expect("compiles");
    assert_eq!(cold.prove, Some(ProveVerdict::Proved));
    assert!(cold.report.expect("prove verifies").passes());
    let warm = compile_source(&req, Some(&cache)).expect("compiles");
    assert!(warm.cache_hit());
    assert_eq!(warm.prove, Some(ProveVerdict::Proved), "verdict is cached");
}

/// Asserts `verdict` is a refutation whose counterexample demonstrably
/// diverges when replayed through both VM engines.
fn assert_confirmed_refutation(
    original: &Program,
    kernel: &slp::core::CompiledKernel,
    verdict: &Verdict,
) {
    let cex = match verdict {
        Verdict::Refuted(cex) => cex,
        other => panic!("expected refutation, got {other:?}"),
    };
    assert!(
        replay_counterexample(original, kernel, &machine(), cex),
        "counterexample at {} does not replay",
        cex.location
    );
}

/// Injected bug #1: two dependent stores to the same cells, scheduled in
/// the wrong order. `A[i] = A[i] * 2.0` must run before
/// `A[i] = A[i] + 1.0`; swapping the superword items computes
/// `(a + 1) * 2` instead of `a * 2 + 1`.
#[test]
fn reordered_dependent_stores_are_refuted() {
    let original = program(
        "kernel dep { array A: f64[8];
         for i in 0..8 { A[i] = A[i] * 2.0; A[i] = A[i] + 1.0; } }",
    );
    let mut kernel = compile(&original, &config(Strategy::Holistic, false));
    let (bid, sched) = kernel.schedules[0].clone();
    // The tamper must target a schedule the VM executes: a block that
    // loses the cost gate falls back to statement-order scalar code and
    // the broken schedule would be dead.
    assert!(sched.is_vectorized(), "tamper needs an executed schedule");
    let mut items: Vec<ScheduledItem> = sched.items().to_vec();
    items.swap(0, 1);
    kernel.schedules[0] = (bid, BlockSchedule::new(items));

    let verdict = validate(&original, &kernel, &machine(), &Budgets::default());
    assert_confirmed_refutation(&original, &kernel, &verdict);
}

/// Injected bug #2: the vectorized loop covers only the main iterations
/// and the remainder is dropped — the tail cells keep their input
/// values instead of being rewritten.
#[test]
fn dropped_remainder_iteration_is_refuted() {
    let original = program(
        "kernel tail { array A: f64[10];
         for i in 0..10 { A[i] = 1.0 + A[i] * 3.0; } }",
    );
    // The miscompiled kernel: identical declarations, but the transformed
    // program stops two iterations short.
    let truncated = program(
        "kernel tail { array A: f64[10];
         for i in 0..8 { A[i] = 1.0 + A[i] * 3.0; } }",
    );
    let kernel = compile(&truncated, &config(Strategy::Holistic, false));

    let verdict = validate(&original, &kernel, &machine(), &Budgets::default());
    assert_confirmed_refutation(&original, &kernel, &verdict);
    if let Verdict::Refuted(cex) = &verdict {
        assert!(
            cex.location == "A[8]" || cex.location == "A[9]",
            "divergence should be in the dropped tail, got {}",
            cex.location
        );
    }
}

/// Injected bug #3: a wrong permutation — the even/odd lanes read each
/// other's elements, as if a shuffle picked the mirrored lane order.
#[test]
fn wrong_permutation_is_refuted() {
    let original = program(
        "kernel perm { array A: f64[16]; array B: f64[16];
         for i in 0..8 {
             B[2*i] = A[2*i] + 1.0;
             B[2*i+1] = A[2*i+1] + 2.0;
         } }",
    );
    let permuted = program(
        "kernel perm { array A: f64[16]; array B: f64[16];
         for i in 0..8 {
             B[2*i] = A[2*i+1] + 1.0;
             B[2*i+1] = A[2*i] + 2.0;
         } }",
    );
    let kernel = compile(&permuted, &config(Strategy::Holistic, false));

    let verdict = validate(&original, &kernel, &machine(), &Budgets::default());
    assert_confirmed_refutation(&original, &kernel, &verdict);
}

/// The check_symbolic bridge surfaces a refutation as a V600 error, so
/// `slpc prove` and `--prove` batches fail loudly on a miscompile.
#[test]
fn refutation_reaches_the_diagnostic_report() {
    let original = program(
        "kernel dep { array A: f64[8];
         for i in 0..8 { A[i] = A[i] * 2.0; A[i] = A[i] + 1.0; } }",
    );
    let mut kernel = compile(&original, &config(Strategy::Holistic, false));
    let (bid, sched) = kernel.schedules[0].clone();
    assert!(sched.is_vectorized());
    let mut items: Vec<ScheduledItem> = sched.items().to_vec();
    items.swap(0, 1);
    kernel.schedules[0] = (bid, BlockSchedule::new(items));

    let report = slp::verify::check_symbolic(&original, &kernel);
    assert!(
        report.has(slp::verify::LintCode::SymbolicMismatch),
        "{report}"
    );
    assert!(!report.passes());
}
