//! §5.1 end to end: memory-resident (upward-exposed) scalar superwords
//! move with one vector memory operation once the layout stage places
//! them contiguously.

use slp::core::{compile, MachineConfig, SlpConfig, Strategy};
use slp::vm::{execute, lower_kernel, ScalarPackClass, VInst};

// Paired accumulators: exposed scalars whose packs hit memory every
// iteration. Declared far apart so the default (declaration-order) frame
// cannot accidentally make them adjacent.
const SRC: &str = "kernel accs {
    array B: f64[66];
    scalar acc0, pad0, pad1, pad2, acc1: f64;
    for i in 0..32 {
        acc0 = acc0 + B[2*i];
        acc1 = acc1 + B[2*i+1];
    }
}";

#[test]
fn layout_turns_exposed_scalar_packs_into_vector_memory_ops() {
    let program = slp::lang::compile(SRC).expect("compiles");
    let machine = MachineConfig::intel_dunnington();
    let base_cfg = SlpConfig::for_machine(machine.clone(), Strategy::Holistic);
    let plain = compile(&program, &base_cfg);
    let laid_out = compile(&program, &base_cfg.clone().with_layout());

    let class_counts = |k: &slp::core::CompiledKernel| {
        let mut vector_mem = 0;
        let mut per_lane = 0;
        for (_, code) in lower_kernel(k, &machine, false) {
            for inst in code.preheader.iter().chain(&code.insts) {
                match inst {
                    VInst::PackScalars { class, .. } | VInst::UnpackScalars { class, .. } => {
                        match class {
                            ScalarPackClass::VectorMem => vector_mem += 1,
                            ScalarPackClass::PerLane => per_lane += 1,
                        }
                    }
                    _ => {}
                }
            }
        }
        (vector_mem, per_lane)
    };

    let (vm_plain, _) = class_counts(&plain);
    let (vm_layout, _) = class_counts(&laid_out);
    assert_eq!(
        vm_plain, 0,
        "without §5.1 the frame gives no adjacency guarantee"
    );
    assert!(
        vm_layout >= 1,
        "layout should vectorize the <acc0,acc1> pack moves"
    );

    // And it pays: fewer cycles, identical results.
    let scalar = execute(
        &compile(
            &program,
            &SlpConfig::for_machine(machine.clone(), Strategy::Scalar),
        ),
        &machine,
    )
    .expect("scalar");
    let a = execute(&plain, &machine).expect("plain");
    let b = execute(&laid_out, &machine).expect("layout");
    assert!(a.state.arrays_bitwise_eq(&scalar.state, 1));
    assert!(b.state.arrays_bitwise_eq(&scalar.state, 1));
    assert!(
        b.stats.metrics.cycles <= a.stats.metrics.cycles,
        "§5.1 should not lose: {} vs {}",
        b.stats.metrics.cycles,
        a.stats.metrics.cycles
    );
}

#[test]
fn scalar_layout_reports_satisfied_packs() {
    let program = slp::lang::compile(SRC).expect("compiles");
    let machine = MachineConfig::intel_dunnington();
    let cfg = SlpConfig::for_machine(machine, Strategy::Holistic).with_layout();
    let kernel = compile(&program, &cfg);
    assert!(kernel.stats.scalar_packs_laid_out >= 1);
    assert!(kernel.scalar_layout.is_optimized());
    // acc0 and acc1 end up adjacent despite the padding declarations.
    let ids: Vec<_> = kernel.program.scalar_ids().collect();
    let addr0 = kernel.scalar_layout.address(ids[0]);
    let addr1 = kernel.scalar_layout.address(ids[4]);
    assert_eq!(
        (addr1 as i64 - addr0 as i64).abs(),
        8,
        "accumulators should be adjacent"
    );
}
