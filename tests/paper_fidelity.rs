//! Tests pinning the reproduction to the paper's own worked numbers: the
//! Figure 2 running example (candidate set, weights, decision order), the
//! §6 / Figure 15 example (grouping structure), and the Tables 1–3
//! configurations.

use slp::analysis::{
    candidate_weight_with, find_candidates, ConflictMatrix, PackGraph, Unit, WeightParams,
};
use slp::core::{group_block, schedule_block, MachineConfig, ScheduleConfig};
use slp::ir::{BasicBlock, BinOp, BlockDeps, Expr, Program, ScalarType};

/// The paper's Figure 2 block:
/// S1: V1 = V3;  S2: V2 = V5;  S3: V5 = V7;
/// S4: V1 = V3 * V1;  S5: V5 = V5 * V2;
fn figure2() -> (Program, BasicBlock) {
    let mut p = Program::new("fig2");
    let v: Vec<_> = (0..8)
        .map(|k| p.add_scalar(format!("V{k}"), ScalarType::F32))
        .collect();
    let stmts = [
        p.make_stmt(v[1].into(), Expr::Copy(v[3].into())),
        p.make_stmt(v[2].into(), Expr::Copy(v[5].into())),
        p.make_stmt(v[5].into(), Expr::Copy(v[7].into())),
        p.make_stmt(
            v[1].into(),
            Expr::Binary(BinOp::Mul, v[3].into(), v[1].into()),
        ),
        p.make_stmt(
            v[5].into(),
            Expr::Binary(BinOp::Mul, v[5].into(), v[2].into()),
        ),
    ];
    let bb: BasicBlock = stmts.into_iter().collect();
    (p, bb)
}

#[test]
fn figure2_candidates_and_figure5_weights() {
    let (p, bb) = figure2();
    let deps = BlockDeps::analyze(&bb);
    let units: Vec<Unit> = bb.iter().map(|s| Unit::singleton(s.id())).collect();
    let cands = find_candidates(&units, &bb, &deps, &p, |_| 4);
    // §4.2.1: "the candidate group set for the code shown in Figure 2 is
    // C = {{S1,S2}, {S1,S3}, {S4,S5}}".
    let pairs: Vec<(usize, usize)> = cands.iter().map(|c| (c.a, c.b)).collect();
    assert_eq!(pairs, vec![(0, 1), (0, 2), (3, 4)]);

    // Figure 5's edge weights: 1/1, 1/2, 2/3.
    let conflicts = ConflictMatrix::compute(&cands, &deps);
    let vp = PackGraph::build(&cands);
    let alive = vec![true; cands.len()];
    let w = |c: usize| {
        candidate_weight_with(
            c,
            &cands,
            &vp,
            &conflicts,
            &alive,
            &[],
            &WeightParams::reuse_only(),
        )
    };
    assert!((w(0) - 1.0).abs() < 1e-9);
    assert!((w(1) - 0.5).abs() < 1e-9);
    assert!((w(2) - 2.0 / 3.0).abs() < 1e-9);
}

#[test]
fn figure15_grouping_structure() {
    // The §6 running example: Global must group {a,b}, {c,h}, {d,g} and
    // the two stores — capturing the <d,g>, <c,h>, <a,r> reuses that the
    // baseline misses (Figure 15 c).
    let program = slp::lang::compile(
        "kernel fig15 {
            const N = 64;
            array A: f64[2*N+6]; array B: f64[4*N+8];
            scalar a, b, c, d, g, h, q, r: f64;
            for i in 1..N {
                a = A[i];
                b = A[i+1];
                c = a * B[4*i];
                d = b * B[4*i+4];
                g = q * B[4*i-2];
                h = r * B[4*i+2];
                A[2*i] = d + a * c;
                A[2*i+2] = g + r * h;
            }
        }",
    )
    .expect("figure 15 compiles");
    let info = &program.blocks()[0];
    let deps = BlockDeps::analyze(&info.block);
    let grouping = group_block(&info.block, &deps, &program, |_| 2);
    let mut groups: Vec<Vec<usize>> = grouping
        .groups()
        .map(|u| {
            let mut v: Vec<usize> = u.stmts().iter().map(|s| s.index()).collect();
            v.sort();
            v
        })
        .collect();
    groups.sort();
    // Statement positions: a=0 b=1 c=2 d=3 g=4 h=5 store1=6 store2=7.
    assert_eq!(
        groups,
        vec![vec![0, 1], vec![2, 5], vec![3, 4], vec![6, 7]],
        "expected the Figure 15(c) grouping {{a,b}} {{c,h}} {{d,g}} {{stores}}"
    );
    // And the schedule keeps every reuse possible (4 superwords).
    let sched = schedule_block(
        &info.block,
        &deps,
        &grouping.units,
        &ScheduleConfig::default(),
    );
    assert_eq!(sched.superword_count(), 4);
}

#[test]
fn tables_1_and_2_reproduce_machine_configs() {
    let intel = MachineConfig::intel_dunnington();
    assert_eq!(
        (
            intel.cores,
            intel.clock_ghz,
            intel.l1_data_kb,
            intel.l2_total_kb,
            intel.l3_total_kb
        ),
        (12, 2.40, 32, 18 * 1024, 24 * 1024)
    );
    let amd = MachineConfig::amd_phenom_ii();
    assert_eq!(
        (
            amd.cores,
            amd.clock_ghz,
            amd.l1_data_kb,
            amd.l2_total_kb,
            amd.l3_total_kb
        ),
        (4, 3.00, 64, 2 * 1024, 6 * 1024)
    );
    // Both are 128-bit SSE2-class machines.
    assert_eq!(intel.datapath_bits, 128);
    assert_eq!(amd.datapath_bits, 128);
}

#[test]
fn table3_catalog_matches_the_paper() {
    let specs = slp::suite::catalog();
    let names: Vec<&str> = specs.iter().map(|s| s.name).collect();
    assert_eq!(
        names,
        [
            "cactusADM",
            "soplex",
            "lbm",
            "milc",
            "povray",
            "gromacs",
            "calculix",
            "dealII",
            "wrf",
            "namd",
            "ua",
            "ft",
            "bt",
            "sp",
            "mg",
            "cg"
        ]
    );
}
