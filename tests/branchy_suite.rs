//! Gates for the branchy kernels: if-conversion must turn `if`/`else`
//! bodies into predicated `select` superwords that are (a) bit-exact
//! against the scalar execution and (b) proved equivalent by the
//! symbolic translation validator, under every vectorizing strategy.

use slp::core::{compile, CompiledKernel, MachineConfig, SlpConfig, Strategy};
use slp::tv::{validate, Budgets, Verdict};
use slp::vm::execute;

fn machine() -> MachineConfig {
    MachineConfig::intel_dunnington()
}

fn strategies() -> [(&'static str, Strategy, bool); 5] {
    [
        ("Native", Strategy::Native, false),
        ("SLP", Strategy::Baseline, false),
        ("Global", Strategy::Holistic, false),
        ("Global+Layout", Strategy::Holistic, true),
        ("Optimal", Strategy::Optimal, false),
    ]
}

fn config(strategy: Strategy, layout: bool) -> SlpConfig {
    let cfg = SlpConfig::for_machine(machine(), strategy);
    if layout {
        cfg.with_layout()
    } else {
        cfg
    }
}

fn superwords(kernel: &CompiledKernel) -> usize {
    kernel
        .schedules
        .iter()
        .map(|(_, s)| s.superword_count())
        .sum()
}

/// The before/after vectorization ledger. "Before" is what the packer
/// can do with a branch in the loop body: nothing — a branchy body is
/// not a basic block, so without if-conversion every one of these
/// kernels would stay scalar (the Scalar row pins that floor at 0).
/// "After" pins the superword statements the Global strategy finds in
/// the if-converted code.
const PINNED: [(&str, usize); 4] = [
    ("abs", 3),
    ("clamp", 5),
    ("threshold", 2),
    ("masked_stencil", 2),
];

#[test]
fn branchy_kernels_gain_superwords_after_if_conversion() {
    assert_eq!(
        slp::suite::branchy_catalog().len(),
        PINNED.len(),
        "every branchy kernel must be pinned here"
    );
    for (name, expected) in PINNED {
        let program = slp::suite::branchy_kernel(name, 1);
        // Before: no superword statements without vectorization.
        let scalar_kernel = compile(&program, &config(Strategy::Scalar, false));
        assert_eq!(superwords(&scalar_kernel), 0, "{name} scalar baseline");
        // After: the if-converted selects pack.
        for strategy in [Strategy::Holistic, Strategy::Optimal] {
            let kernel = compile(&program, &config(strategy, false));
            assert_eq!(
                superwords(&kernel),
                expected,
                "{name} under {strategy:?}: superword count drifted"
            );
        }
    }
}

#[test]
fn branchy_kernels_are_bit_exact_and_proved_under_every_strategy() {
    let budgets = Budgets::default();
    for name in slp::suite::branchy_catalog() {
        let program = slp::suite::branchy_kernel(name, 1);
        let n = program.arrays().len();
        let scalar = execute(
            &compile(&program, &config(Strategy::Scalar, false)),
            &machine(),
        )
        .expect("scalar run");
        for (label, strategy, layout) in strategies() {
            let kernel = compile(&program, &config(strategy, layout));
            // Differential gate: bitwise-identical memory against the
            // scalar execution.
            let out = execute(&kernel, &machine()).expect("vector run");
            assert!(
                out.state.arrays_bitwise_eq(&scalar.state, n),
                "{name} under {label} diverged from scalar"
            );
            // Prove gate: symbolic equivalence over all inputs. If the
            // validator ever steps outside its fragment the differential
            // gate above is the accepted fallback; anything else fails.
            match validate(&program, &kernel, &machine(), &budgets) {
                Verdict::Proved(_) => {}
                Verdict::Unsupported { reason } => {
                    eprintln!(
                        "{name} under {label}: tv unsupported ({reason}); differential gate stands"
                    );
                }
                other => panic!("{name} under {label}: {other:?}"),
            }
        }
    }
}

#[test]
fn branchy_sources_really_contain_branches() {
    // Guard against the kernels quietly being rewritten into select
    // form at the source level, which would stop exercising the
    // if-conversion pass.
    for name in slp::suite::branchy_catalog() {
        let src = slp::suite::branchy_source(name, 1);
        assert!(src.contains("if "), "{name} lost its branch");
        let program = slp::suite::branchy_kernel(name, 1);
        let selects = program
            .blocks()
            .iter()
            .flat_map(|b| b.block.stmts())
            .filter(|s| matches!(s.expr(), slp::ir::Expr::Select(..)))
            .count();
        assert!(selects > 0, "{name} produced no predicated selects");
    }
}
