//! End-to-end pins of the `slp-opt` branch-and-bound packing solver.
//!
//! Four guarantees, each over the sixteen-kernel suite:
//!
//! * **Determinism** — a node-capped solve (no wall deadline) produces
//!   bit-identical schedules across repeated runs and across batch
//!   worker-pool sizes.
//! * **Warm start** — the solver's incumbent starts at the holistic
//!   heuristic's packing, so `Strategy::Optimal` never ships a kernel
//!   with a worse estimated cost than `Strategy::Holistic`.
//! * **Anytime degradation** — an exhausted budget returns the best
//!   packing found with `opt_degraded` recorded all the way up through
//!   `CompileStats` and the batch `DriverReport`.
//! * **Validated output** — the symbolic translation validator proves
//!   every `Strategy::Optimal` kernel equivalent to its scalar source;
//!   the exact packer earns no exemption from the proof obligation.

use slp::core::compile;
use slp::driver::DriverReport;
use slp::prelude::*;
use slp::tv::{validate, Budgets, Verdict};

fn machine() -> MachineConfig {
    MachineConfig::intel_dunnington()
}

/// A deterministic, test-sized solver budget: no wall deadline (verdicts
/// must not depend on machine load), a few hundred nodes.
fn optimal_config(max_nodes: u64) -> SlpConfig {
    SlpConfig::for_machine(machine(), Strategy::Optimal)
        .with_packer(OptimalPacker)
        .with_opt_budget(0, max_nodes)
}

fn schedule_signature(kernel: &CompiledKernel) -> String {
    format!("{:?} {:?}", kernel.schedules, kernel.stats)
}

#[test]
fn node_capped_solves_are_deterministic_across_runs() {
    let cfg = optimal_config(300);
    for (spec, program) in slp::suite::all(1) {
        let first = compile(&program, &cfg);
        let second = compile(&program, &cfg);
        assert_eq!(
            schedule_signature(&first),
            schedule_signature(&second),
            "{}: repeated node-capped solves disagreed",
            spec.name
        );
    }
}

#[test]
fn batch_solves_are_deterministic_across_thread_counts() {
    // The packer is deliberately left for the driver to install — this
    // doubles as the pin that `compile_source` auto-installs `slp-opt`
    // for `Strategy::Optimal` requests.
    let requests: Vec<CompileRequest> = slp::suite::all(1)
        .into_iter()
        .take(6)
        .map(|(spec, program)| CompileRequest {
            name: spec.name.to_string(),
            source: program.to_source(),
            config: SlpConfig::for_machine(machine(), Strategy::Optimal).with_opt_budget(0, 200),
            verify: VerifyLevel::None,
        })
        .collect();
    let signatures = |threads: usize| -> Vec<String> {
        compile_batch(
            &requests,
            None,
            &BatchConfig {
                threads,
                budget_ms: None,
                degrade: false,
            },
        )
        .into_iter()
        .map(|o| schedule_signature(&o.result.expect("suite kernel compiles").kernel))
        .collect()
    };
    assert_eq!(
        signatures(1),
        signatures(4),
        "solver output depends on batch worker count"
    );
}

#[test]
fn optimal_never_ships_a_costlier_packing_than_the_heuristic() {
    let opt_cfg = optimal_config(300);
    let heur_cfg = SlpConfig::for_machine(machine(), Strategy::Holistic);
    for (spec, program) in slp::suite::all(1) {
        let opt = estimate_kernel_cost(&compile(&program, &opt_cfg));
        let heur = estimate_kernel_cost(&compile(&program, &heur_cfg));
        assert!(
            opt <= heur + 1e-6,
            "{}: Optimal shipped {opt:.3} estimated cycles, Holistic {heur:.3} \
             — the warm start guarantees this never happens",
            spec.name
        );
    }
}

#[test]
fn exhausted_budget_degrades_and_is_recorded_in_the_driver_report() {
    // milc's unrolled blocks need hundreds of thousands of nodes to
    // exhaust (the opt-gap benchmark still hits its cap at 200k), so a
    // two-node cap is guaranteed to expire mid-search.
    let (spec, program) = slp::suite::all(1)
        .into_iter()
        .find(|(spec, _)| spec.name == "milc")
        .expect("milc is in the suite");
    let requests = vec![CompileRequest {
        name: spec.name.to_string(),
        source: program.to_source(),
        config: SlpConfig::for_machine(machine(), Strategy::Optimal).with_opt_budget(0, 2),
        verify: VerifyLevel::None,
    }];
    let outcomes = compile_batch(&requests, None, &BatchConfig::default());
    let stats = &outcomes[0].result.as_ref().expect("compiles").kernel.stats;
    assert!(stats.opt_degraded, "a 2-node cap must expire mid-search");
    assert!(
        stats.opt_gap_ppm > 0,
        "an expired solve cannot claim a proven-optimal (gap 0) packing"
    );

    let report = DriverReport::from_outcomes(&outcomes, 0, None);
    assert!(
        report.rows[0].opt_degraded,
        "degradation lost in the report"
    );
    assert_eq!(report.rows[0].opt_gap_ppm, stats.opt_gap_ppm);
    assert_eq!(report.rows[0].opt_nodes, stats.opt_nodes);
    let rendered = report.summary_table();
    assert!(
        rendered.contains("optimal:") && rendered.contains("1 hit the solver budget"),
        "summary table must surface the budget hit:\n{rendered}"
    );
}

#[test]
fn whole_suite_optimal_output_is_proved_by_the_validator() {
    let cfg = optimal_config(300);
    let budgets = Budgets::default();
    for (spec, program) in slp::suite::all(1) {
        let kernel = compile(&program, &cfg);
        match validate(&program, &kernel, &machine(), &budgets) {
            Verdict::Proved(_) => {}
            other => panic!("{}: Optimal kernel not proved: {other:?}", spec.name),
        }
    }
}
