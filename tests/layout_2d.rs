//! §5.2 on multi-dimensional arrays (the Eq. (5)/(8) case): packs whose
//! lanes stride through a 2-D read-only array are replicated into a
//! rank-1 interleaved array, rewritten to affine rank-1 subscripts, and
//! stay bit-exact.

use slp::core::{compile, MachineConfig, SlpConfig, Strategy};
use slp::vm::execute;

const SRC: &str = "kernel md2 {
    array M: f64[16][16];
    array OUT: f64[34];
    scalar a, b: f64;
    for t in 0..6 {
        for i in 0..16 {
            a = M[i][1];
            b = M[i][3];
            OUT[2*i] = OUT[2*i] + 0.1 * a;
            OUT[2*i+1] = OUT[2*i+1] + 0.1 * b;
        }
    }
}";

#[test]
fn two_dimensional_packs_replicate_to_interleaved_rank_one() {
    let program = slp::lang::compile(SRC).expect("compiles");
    let machine = MachineConfig::intel_dunnington();
    let cfg = SlpConfig::for_machine(machine.clone(), Strategy::Holistic).with_layout();
    let kernel = compile(&program, &cfg);
    assert!(
        !kernel.replications.is_empty(),
        "expected the <M[i][1], M[i][3]> pack to replicate"
    );
    let r = kernel
        .replications
        .iter()
        .find(|r| kernel.program.array(r.source).dims.len() == 2)
        .expect("2-D source replication");
    // The new array is rank-1 and each lane's subscript is affine with
    // stride L = 2 over the indexing loop (Eq. 5's strided target).
    assert_eq!(kernel.program.array(r.dest).dims.len(), 1);
    assert_eq!(r.lanes.len(), 2);
    for (p, e) in r.dest_exprs.iter().enumerate() {
        assert_eq!(e.constant(), p as i64);
        let coeffs: Vec<i64> = e.terms().map(|(_, c)| c).collect();
        assert_eq!(coeffs, vec![2], "lane {p} must stride by the pack width");
    }
    // Only the inner loop (which the subscripts use) drives the copy;
    // after the 2x unroll its step is 2, so 8 iterations x 2 lanes.
    assert_eq!(r.loops.len(), 1);
    assert_eq!(r.copy_count(), 16);
}

#[test]
fn two_dimensional_replication_is_bit_exact_and_profitable() {
    let program = slp::lang::compile(SRC).expect("compiles");
    let machine = MachineConfig::intel_dunnington();
    let n = program.arrays().len();
    let scalar = execute(
        &compile(
            &program,
            &SlpConfig::for_machine(machine.clone(), Strategy::Scalar),
        ),
        &machine,
    )
    .expect("scalar");
    let global = execute(
        &compile(
            &program,
            &SlpConfig::for_machine(machine.clone(), Strategy::Holistic),
        ),
        &machine,
    )
    .expect("global");
    let layout = execute(
        &compile(
            &program,
            &SlpConfig::for_machine(machine.clone(), Strategy::Holistic).with_layout(),
        ),
        &machine,
    )
    .expect("layout");
    assert!(global.state.arrays_bitwise_eq(&scalar.state, n));
    assert!(layout.state.arrays_bitwise_eq(&scalar.state, n));
    assert!(
        layout.stats.metrics.cycles < global.stats.metrics.cycles,
        "replication should pay off: {} vs {}",
        layout.stats.metrics.cycles,
        global.stats.metrics.cycles
    );
}

#[test]
fn conflicting_patterns_get_independent_replicas() {
    // Two different strided patterns over the same read-only array get
    // two replications ("a given data element may appear in two
    // different memory locations").
    let src = "kernel twopat {
        array M: f64[144];
        array OUT: f64[34];
        array OUT2: f64[34];
        for t in 0..6 {
            for i in 0..16 {
                OUT[2*i] = OUT[2*i] + 0.1 * M[8*i];
                OUT[2*i+1] = OUT[2*i+1] + 0.1 * M[8*i+5];
                OUT2[2*i] = OUT2[2*i] + 0.2 * M[8*i+2];
                OUT2[2*i+1] = OUT2[2*i+1] + 0.2 * M[8*i+7];
            }
        }
    }";
    let program = slp::lang::compile(src).expect("compiles");
    let machine = MachineConfig::intel_dunnington();
    let cfg = SlpConfig::for_machine(machine.clone(), Strategy::Holistic).with_layout();
    let kernel = compile(&program, &cfg);
    let m_replicas = kernel
        .replications
        .iter()
        .filter(|r| kernel.program.array(r.source).name == "M")
        .count();
    assert!(m_replicas >= 1, "at least one pattern should replicate");
    // Semantics preserved regardless of how many replicas were taken.
    let n = program.arrays().len();
    let scalar = execute(
        &compile(
            &program,
            &SlpConfig::for_machine(machine.clone(), Strategy::Scalar),
        ),
        &machine,
    )
    .expect("scalar");
    let layout = execute(&kernel, &machine).expect("layout");
    assert!(layout.state.arrays_bitwise_eq(&scalar.state, n));
}
