//! End-to-end tests of the `slpc` command-line driver.

use std::io::Write as _;
use std::process::Command;

fn slpc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_slpc"))
}

fn demo_file(contents: &str) -> std::path::PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!("slpc_test_{}.slp", std::process::id()));
    let mut f = std::fs::File::create(&path).expect("temp file");
    f.write_all(contents.as_bytes()).expect("write");
    path
}

const DEMO: &str = "kernel demo {
    array A: f64[32]; array B: f64[32]; scalar s: f64;
    for i in 0..16 { A[2*i] = B[2*i] * s; A[2*i+1] = B[2*i+1] * s; }
}";

#[test]
fn compiles_and_runs_a_kernel() {
    let path = demo_file(DEMO);
    let out = slpc()
        .arg(&path)
        .args(["--emit", "schedule", "--run"])
        .output()
        .expect("spawn slpc");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("<S"),
        "vectorized schedule expected:\n{stdout}"
    );
    assert!(stdout.contains("cycles"), "{stdout}");
    let _ = std::fs::remove_file(path);
}

#[test]
fn emits_round_trippable_source() {
    let path = demo_file(DEMO);
    let out = slpc()
        .arg(&path)
        .args(["--emit", "source", "--strategy", "scalar"])
        .output()
        .expect("spawn slpc");
    assert!(out.status.success());
    let emitted = String::from_utf8_lossy(&out.stdout);
    slp::lang::compile(&emitted).expect("emitted source parses");
    let _ = std::fs::remove_file(path);
}

#[test]
fn reports_parse_errors_with_source_context() {
    let path = demo_file("kernel broken { scalar a: f64; a = ; }");
    let out = slpc().arg(&path).output().expect("spawn slpc");
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("error:"), "{stderr}");
    assert!(stderr.contains('^'), "caret expected:\n{stderr}");
    let _ = std::fs::remove_file(path);
}

#[test]
fn rejects_out_of_bounds_kernels_statically() {
    let path = demo_file("kernel oob { array A: f64[4]; for i in 0..8 { A[i] = 1.0; } }");
    let out = slpc().arg(&path).output().expect("spawn slpc");
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("extent"), "{stderr}");
    let _ = std::fs::remove_file(path);
}

#[test]
fn usage_errors_exit_with_2() {
    let out = slpc().output().expect("spawn slpc");
    assert_eq!(out.status.code(), Some(2));
    let out = slpc()
        .args(["/nonexistent.slp", "--strategy", "bogus"])
        .output()
        .expect("spawn slpc");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn amd_machine_and_layout_flags_work() {
    let path = demo_file(
        "kernel strided {
            array M: f64[136]; array OUT: f64[34];
            for t in 0..6 { for i in 0..16 {
                OUT[2*i] = OUT[2*i] + 0.1 * M[8*i];
                OUT[2*i+1] = OUT[2*i+1] + 0.1 * M[8*i+5];
            } }
        }",
    );
    let out = slpc()
        .arg(&path)
        .args(["--machine", "amd", "--layout", "--emit", "stats"])
        .output()
        .expect("spawn slpc");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let repl_line = stdout
        .lines()
        .find(|l| l.starts_with("array replications"))
        .expect("stats output");
    assert!(
        !repl_line.ends_with(" 0"),
        "layout should replicate: {stdout}"
    );
    let _ = std::fs::remove_file(path);
}
