//! End-to-end tests for the `slpc check` subcommand over the example
//! kernel suite: every kernel must verify cleanly under all four shipped
//! configurations, and the exit status must reflect the diagnostic count.

use std::path::PathBuf;
use std::process::Command;

fn slpc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_slpc"))
}

fn example_kernels() -> Vec<PathBuf> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("examples/kernels");
    let mut paths: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("examples/kernels directory")
        .map(|e| e.expect("directory entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "slp"))
        .collect();
    paths.sort();
    assert!(
        !paths.is_empty(),
        "no .slp kernels found in {}",
        dir.display()
    );
    paths
}

#[test]
fn example_suite_checks_clean() {
    let paths = example_kernels();
    let n = paths.len();
    let out = slpc()
        .arg("check")
        .args(&paths)
        .output()
        .expect("run slpc check");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "slpc check failed\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
    assert!(
        stdout.contains(&format!("checked {n} kernel(s)")),
        "unexpected summary line:\n{stdout}"
    );
    assert!(
        stdout.contains("0 error(s), 0 warning(s)"),
        "example suite is expected to be diagnostic-free:\n{stdout}"
    );
    assert!(
        !stdout.contains("error[") && !stdout.contains("warning["),
        "no individual diagnostics expected:\n{stdout}"
    );
}

#[test]
fn check_static_mode_skips_differential_validation() {
    let paths = example_kernels();
    let out = slpc()
        .arg("check")
        .args(&paths)
        .arg("--static")
        .output()
        .expect("run slpc check --static");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "static check failed:\n{stdout}");
    assert!(stdout.contains("0 error(s), 0 warning(s)"), "{stdout}");
}

#[test]
fn check_reports_failure_for_missing_file() {
    let out = slpc()
        .arg("check")
        .arg("examples/kernels/no-such-kernel.slp")
        .output()
        .expect("run slpc check");
    assert!(
        !out.status.success(),
        "checking a nonexistent kernel should exit nonzero"
    );
}

#[test]
fn check_amd_machine_is_also_clean() {
    let paths = example_kernels();
    let out = slpc()
        .arg("check")
        .args(&paths)
        .args(["--machine", "amd"])
        .output()
        .expect("run slpc check --machine amd");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "amd check failed:\n{stdout}");
    assert!(stdout.contains("0 error(s), 0 warning(s)"), "{stdout}");
}

#[test]
fn check_rejects_proven_faulting_kernels_with_v505() {
    let oob = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("examples/lints/oob.slp");
    let out = slpc()
        .arg("check")
        .arg(&oob)
        .arg("--static")
        .output()
        .expect("run slpc check");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        !out.status.success(),
        "a proven out-of-bounds kernel must fail slpc check"
    );
    assert!(
        stderr.contains("V505") && stderr.contains("proven out of bounds"),
        "rejection must carry the V505 certificate diagnostic:\n{stderr}"
    );
}
