//! Basic blocks: straight-line statement sequences.
//!
//! The input to the SLP optimizer "is a set of basic blocks of a program"
//! (§3). After the pre-processing unrolls innermost loops, each unrolled
//! loop body is one basic block in which the optimizer looks for superword
//! statements.

use std::fmt;

use crate::ids::StmtId;
use crate::stmt::Statement;

/// A straight-line sequence of statements, `S = <S1, S2, ..., Sn>` in the
/// paper's notation.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BasicBlock {
    stmts: Vec<Statement>,
}

impl BasicBlock {
    /// Creates an empty basic block.
    pub fn new() -> Self {
        BasicBlock::default()
    }

    /// Creates a block from a statement sequence.
    pub fn from_stmts(stmts: Vec<Statement>) -> Self {
        BasicBlock { stmts }
    }

    /// Appends a statement.
    pub fn push(&mut self, stmt: Statement) {
        self.stmts.push(stmt);
    }

    /// The statements in program order.
    pub fn stmts(&self) -> &[Statement] {
        &self.stmts
    }

    /// Mutable access to the statements (used by rewriting passes).
    pub fn stmts_mut(&mut self) -> &mut Vec<Statement> {
        &mut self.stmts
    }

    /// Number of statements.
    pub fn len(&self) -> usize {
        self.stmts.len()
    }

    /// Whether the block has no statements.
    pub fn is_empty(&self) -> bool {
        self.stmts.is_empty()
    }

    /// Looks up a statement by id.
    pub fn stmt(&self, id: StmtId) -> Option<&Statement> {
        self.stmts.iter().find(|s| s.id() == id)
    }

    /// The position of statement `id` in program order.
    pub fn position(&self, id: StmtId) -> Option<usize> {
        self.stmts.iter().position(|s| s.id() == id)
    }

    /// Iterates over the statements.
    pub fn iter(&self) -> std::slice::Iter<'_, Statement> {
        self.stmts.iter()
    }
}

impl<'a> IntoIterator for &'a BasicBlock {
    type Item = &'a Statement;
    type IntoIter = std::slice::Iter<'a, Statement>;

    fn into_iter(self) -> Self::IntoIter {
        self.stmts.iter()
    }
}

impl FromIterator<Statement> for BasicBlock {
    fn from_iter<T: IntoIterator<Item = Statement>>(iter: T) -> Self {
        BasicBlock {
            stmts: iter.into_iter().collect(),
        }
    }
}

impl Extend<Statement> for BasicBlock {
    fn extend<T: IntoIterator<Item = Statement>>(&mut self, iter: T) {
        self.stmts.extend(iter);
    }
}

impl fmt::Display for BasicBlock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for s in &self.stmts {
            writeln!(f, "{s}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{BinOp, Expr};
    use crate::ids::VarId;

    fn stmt(id: u32) -> Statement {
        Statement::new(
            StmtId::new(id),
            VarId::new(id).into(),
            Expr::Binary(BinOp::Add, VarId::new(id + 1).into(), 1.0.into()),
        )
    }

    #[test]
    fn push_and_lookup() {
        let mut bb = BasicBlock::new();
        assert!(bb.is_empty());
        bb.push(stmt(0));
        bb.push(stmt(1));
        assert_eq!(bb.len(), 2);
        assert_eq!(bb.stmt(StmtId::new(1)).unwrap().id(), StmtId::new(1));
        assert_eq!(bb.position(StmtId::new(1)), Some(1));
        assert_eq!(bb.position(StmtId::new(9)), None);
    }

    #[test]
    fn collect_and_iterate() {
        let bb: BasicBlock = (0..3).map(stmt).collect();
        let ids: Vec<_> = bb.iter().map(|s| s.id().index()).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        let ids2: Vec<_> = (&bb).into_iter().map(|s| s.id().index()).collect();
        assert_eq!(ids, ids2);
    }

    #[test]
    fn display_one_stmt_per_line() {
        let bb: BasicBlock = (0..2).map(stmt).collect();
        let text = bb.to_string();
        assert_eq!(text.lines().count(), 2);
        assert!(text.starts_with("S0: v0 = v1 + 1"));
    }
}
