//! Loop unrolling, the main pre-processing transformation.
//!
//! "For loop-intensive applications, loop unrolling can be used to reveal
//! more opportunities for short SIMD operations and to fully utilize the
//! superword datapath available in the underlying architecture" (§3). Both
//! the paper's framework and its reimplementation of the baseline SLP
//! algorithm use the *same* pre-processing, so this pass is shared by every
//! optimizer in `slp-core`.
//!
//! Unrolling an innermost loop by factor `u` replicates the body `u` times,
//! substituting `i ↦ i + k` into affine subscripts of replica `k`, renames
//! privatizable scalars (those written before read within the body) per
//! replica to avoid false dependences, and multiplies the loop step by `u`.
//! A remainder loop is emitted when the trip count is not divisible.

use std::collections::HashMap;

use crate::affine::AffineExpr;
use crate::expr::{Dest, Expr, Operand};
use crate::ids::VarId;
use crate::program::{Item, Loop, Program};
use crate::stmt::Statement;

/// Unrolls every innermost loop of `program` by `factor`.
///
/// Loops whose step is not 1, loops with fewer than `factor` iterations and
/// non-innermost loops are left untouched. Returns the number of loops that
/// were unrolled.
///
/// # Examples
///
/// ```
/// use slp_ir::{Program, ScalarType, Expr, BinOp, ArrayRef, AccessVector, AffineExpr};
/// use slp_ir::{Item, Loop, LoopHeader};
///
/// let mut p = Program::new("k");
/// let a = p.add_array("A", ScalarType::F64, vec![64], true);
/// let i = p.add_loop_var("i");
/// let s = p.make_stmt(
///     ArrayRef::new(a, AccessVector::new(vec![AffineExpr::var(i)])).into(),
///     Expr::Copy(1.0.into()),
/// );
/// p.push_item(Item::Loop(Loop {
///     header: LoopHeader { var: i, lower: 0, upper: 64, step: 1 },
///     body: vec![Item::Stmt(s)],
/// }));
/// assert_eq!(slp_ir::unroll_program(&mut p, 4), 1);
/// // The unrolled body now exposes four statements to the SLP optimizer.
/// assert_eq!(p.blocks()[0].block.len(), 4);
/// ```
pub fn unroll_program(program: &mut Program, factor: usize) -> usize {
    if factor < 2 {
        return 0;
    }
    let mut items = std::mem::take(program.items_mut());
    // Whole-program scalar read counts (pre-transformation): a privatized
    // scalar that is also read outside its loop is live-out and needs a
    // copy-back from the last replica.
    let mut total_reads = HashMap::new();
    count_scalar_reads(&items, &mut total_reads);
    let mut count = 0;
    unroll_items(&mut items, factor, program, &total_reads, &mut count);
    *program.items_mut() = items;
    count
}

fn count_scalar_reads(items: &[Item], counts: &mut HashMap<VarId, usize>) {
    for item in items {
        match item {
            Item::Stmt(s) => {
                for u in s.uses() {
                    if let Operand::Scalar(v) = u {
                        *counts.entry(*v).or_insert(0) += 1;
                    }
                }
            }
            Item::Loop(l) => count_scalar_reads(&l.body, counts),
        }
    }
}

fn unroll_items(
    items: &mut Vec<Item>,
    factor: usize,
    program: &mut Program,
    total_reads: &HashMap<VarId, usize>,
    count: &mut usize,
) {
    let mut idx = 0;
    while idx < items.len() {
        if let Item::Loop(l) = &mut items[idx] {
            if is_innermost(l) {
                if let Some(replacement) = unroll_loop(l, factor, program, total_reads) {
                    let n = replacement.len();
                    items.splice(idx..=idx, replacement);
                    *count += 1;
                    idx += n;
                    continue;
                }
            } else {
                unroll_items(&mut l.body, factor, program, total_reads, count);
            }
        }
        idx += 1;
    }
}

fn is_innermost(l: &Loop) -> bool {
    l.body.iter().all(|it| matches!(it, Item::Stmt(_)))
}

/// The scalars of a straight-line body that are defined before any use, and
/// may therefore be renamed per unroll replica (privatization).
fn privatizable_scalars(body: &[Statement]) -> Vec<VarId> {
    let mut seen_use: Vec<VarId> = Vec::new();
    let mut defined_first: Vec<VarId> = Vec::new();
    for s in body {
        for u in s.uses() {
            if let Operand::Scalar(v) = u {
                if !defined_first.contains(v) && !seen_use.contains(v) {
                    seen_use.push(*v);
                }
            }
        }
        if let Dest::Scalar(v) = s.dest() {
            if !seen_use.contains(v) && !defined_first.contains(v) {
                defined_first.push(*v);
            }
        }
    }
    defined_first
}

/// Unrolls one innermost loop. Returns the replacement item sequence (the
/// unrolled main loop, copy-backs for live-out privatized scalars, plus a
/// remainder loop when the trip count is not divisible by `factor`), or
/// `None` when the loop is left untouched.
fn unroll_loop(
    l: &Loop,
    factor: usize,
    program: &mut Program,
    total_reads: &HashMap<VarId, usize>,
) -> Option<Vec<Item>> {
    let h = l.header;
    if h.step != 1 {
        return None;
    }
    let trip = h.trip_count();
    if trip < factor as i64 {
        return None;
    }
    let body: Vec<Statement> = l
        .body
        .iter()
        .map(|it| match it {
            Item::Stmt(s) => s.clone(),
            Item::Loop(_) => unreachable!("innermost loop"),
        })
        .collect();

    let private = privatizable_scalars(&body);
    let main_trips = trip / factor as i64;
    let main_upper = h.lower + main_trips * factor as i64;

    let mut new_body = Vec::with_capacity(body.len() * factor);
    let mut last_renames: HashMap<VarId, VarId> = HashMap::new();
    for k in 0..factor {
        // Rename privatizable scalars in replicas 1..factor.
        let renames: HashMap<VarId, VarId> = if k == 0 {
            HashMap::new()
        } else {
            private
                .iter()
                .map(|&v| {
                    let name = format!("{}.u{}", program.scalar(v).name, k);
                    let ty = program.scalar(v).ty;
                    (v, program.add_scalar(name, ty))
                })
                .collect()
        };
        if k == factor - 1 {
            last_renames = renames.clone();
        }
        let shift = AffineExpr::var(h.var).offset(k as i64);
        for s in &body {
            let id = program.fresh_stmt_id();
            let mut dest = s.dest().clone();
            rewrite_dest(&mut dest, h, &shift, &renames);
            let mut expr = s.expr().clone();
            for op in expr.operands_mut() {
                rewrite_operand(op, h, &shift, &renames);
            }
            new_body.push(Item::Stmt(Statement::new(id, dest, expr)));
        }
    }

    let main = Loop {
        header: crate::program::LoopHeader {
            var: h.var,
            lower: h.lower,
            upper: main_upper,
            step: factor as i64,
        },
        body: new_body,
    };

    // Privatization renames the scalar's final definition into the last
    // replica's copy, so a scalar that is read after the loop (live-out)
    // must be copied back to its original name. The copy-backs precede the
    // remainder loop: the remainder re-defines the scalar itself, matching
    // the original last-iteration-wins semantics.
    let mut body_reads: HashMap<VarId, usize> = HashMap::new();
    for s in &body {
        for u in s.uses() {
            if let Operand::Scalar(v) = u {
                *body_reads.entry(*v).or_insert(0) += 1;
            }
        }
    }
    let mut out = vec![Item::Loop(main)];
    for &v in &private {
        let outside =
            total_reads.get(&v).copied().unwrap_or(0) > body_reads.get(&v).copied().unwrap_or(0);
        if outside {
            if let Some(&last) = last_renames.get(&v) {
                let id = program.fresh_stmt_id();
                out.push(Item::Stmt(Statement::new(
                    id,
                    Dest::Scalar(v),
                    Expr::Copy(Operand::Scalar(last)),
                )));
            }
        }
    }

    if main_upper == h.upper {
        return Some(out);
    }
    // Remainder loop with fresh statement ids.
    let mut rem_body = Vec::with_capacity(body.len());
    for s in &body {
        let id = program.fresh_stmt_id();
        rem_body.push(Item::Stmt(Statement::new(
            id,
            s.dest().clone(),
            s.expr().clone(),
        )));
    }
    let rem = Loop {
        header: crate::program::LoopHeader {
            var: h.var,
            lower: main_upper,
            upper: h.upper,
            step: 1,
        },
        body: rem_body,
    };
    out.push(Item::Loop(rem));
    Some(out)
}

fn rewrite_dest(
    dest: &mut Dest,
    h: crate::program::LoopHeader,
    shift: &AffineExpr,
    renames: &HashMap<VarId, VarId>,
) {
    match dest {
        Dest::Scalar(v) => {
            if let Some(&nv) = renames.get(v) {
                *v = nv;
            }
        }
        Dest::Array(r) => {
            r.access = r.access.substitute(h.var, shift);
        }
    }
}

fn rewrite_operand(
    op: &mut Operand,
    h: crate::program::LoopHeader,
    shift: &AffineExpr,
    renames: &HashMap<VarId, VarId>,
) {
    match op {
        Operand::Scalar(v) => {
            if let Some(&nv) = renames.get(v) {
                *v = nv;
            }
        }
        Operand::Array(r) => {
            r.access = r.access.substitute(h.var, shift);
        }
        Operand::Const(_) => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::affine::AccessVector;
    use crate::expr::{ArrayRef, BinOp, Expr};
    use crate::program::LoopHeader;
    use crate::types::ScalarType;

    /// for i in 0..n { t = A[i]; A[i] = t * 2 }
    fn make_loop_program(n: i64) -> Program {
        let mut p = Program::new("t");
        let a = p.add_array("A", ScalarType::F64, vec![n.max(1)], true);
        let t = p.add_scalar("t", ScalarType::F64);
        let i = p.add_loop_var("i");
        let r = ArrayRef::new(a, AccessVector::new(vec![AffineExpr::var(i)]));
        let s1 = p.make_stmt(t.into(), Expr::Copy(r.clone().into()));
        let s2 = p.make_stmt(
            r.clone().into(),
            Expr::Binary(BinOp::Mul, t.into(), 2.0.into()),
        );
        p.push_item(Item::Loop(Loop {
            header: LoopHeader {
                var: i,
                lower: 0,
                upper: n,
                step: 1,
            },
            body: vec![Item::Stmt(s1), Item::Stmt(s2)],
        }));
        p
    }

    #[test]
    fn unroll_divisible_trip() {
        let mut p = make_loop_program(8);
        assert_eq!(unroll_program(&mut p, 4), 1);
        let blocks = p.blocks();
        assert_eq!(blocks.len(), 1);
        assert_eq!(blocks[0].block.len(), 8);
        let h = blocks[0].innermost_loop().unwrap();
        assert_eq!(h.step, 4);
        assert_eq!(h.upper, 8);
    }

    #[test]
    fn unrolled_subscripts_are_shifted() {
        let mut p = make_loop_program(8);
        unroll_program(&mut p, 2);
        let blocks = p.blocks();
        let stmts = blocks[0].block.stmts();
        // Replica 1's array refs read A[i+1].
        let second_load = &stmts[2];
        let uses = second_load.uses();
        let r = uses[0].as_array().unwrap();
        assert_eq!(r.access.dim(0).constant(), 1);
    }

    #[test]
    fn privatizable_scalar_renamed_per_replica() {
        let mut p = make_loop_program(8);
        unroll_program(&mut p, 4);
        let blocks = p.blocks();
        let stmts = blocks[0].block.stmts();
        // Four distinct destinations for the four `t = A[i+k]` statements.
        let mut dests = Vec::new();
        for k in 0..4 {
            match stmts[2 * k].dest() {
                Dest::Scalar(v) => dests.push(*v),
                _ => panic!("expected scalar dest"),
            }
        }
        dests.sort();
        dests.dedup();
        assert_eq!(dests.len(), 4, "each replica must get a private t");
        // And the block is now fully parallel across replicas.
        let d = crate::deps::BlockDeps::analyze(&blocks[0].block);
        assert!(d.independent(stmts[0].id(), stmts[2].id()));
    }

    #[test]
    fn remainder_loop_emitted() {
        let mut p = make_loop_program(10);
        assert_eq!(unroll_program(&mut p, 4), 1);
        let blocks = p.blocks();
        assert_eq!(blocks.len(), 2, "main + remainder blocks");
        assert_eq!(blocks[0].block.len(), 8);
        assert_eq!(blocks[1].block.len(), 2);
        let main = blocks[0].innermost_loop().unwrap();
        let rem = blocks[1].innermost_loop().unwrap();
        assert_eq!((main.lower, main.upper, main.step), (0, 8, 4));
        assert_eq!((rem.lower, rem.upper, rem.step), (8, 10, 1));
    }

    #[test]
    fn short_loops_left_alone() {
        let mut p = make_loop_program(2);
        assert_eq!(unroll_program(&mut p, 4), 0);
        assert_eq!(p.blocks()[0].block.len(), 2);
    }

    #[test]
    fn factor_one_is_noop() {
        let mut p = make_loop_program(8);
        assert_eq!(unroll_program(&mut p, 1), 0);
    }

    #[test]
    fn stmt_ids_remain_unique_after_unrolling() {
        let mut p = make_loop_program(10);
        unroll_program(&mut p, 4);
        let mut ids = Vec::new();
        p.for_each_stmt(|s| ids.push(s.id()));
        let n = ids.len();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), n);
    }

    #[test]
    fn live_out_privatized_scalar_copied_back() {
        // for i in 0..8 { t = A[i]; A[i] = t * 2; }  B[0] = t;
        // After unrolling, t's final definition lives in replica 3
        // (`t.u3`), so a copy-back must restore t before the read.
        let mut p = Program::new("liveout");
        let a = p.add_array("A", ScalarType::F64, vec![8], true);
        let b = p.add_array("B", ScalarType::F64, vec![1], true);
        let t = p.add_scalar("t", ScalarType::F64);
        let i = p.add_loop_var("i");
        let r = ArrayRef::new(a, AccessVector::new(vec![AffineExpr::var(i)]));
        let s1 = p.make_stmt(t.into(), Expr::Copy(r.clone().into()));
        let s2 = p.make_stmt(r.into(), Expr::Binary(BinOp::Mul, t.into(), 2.0.into()));
        p.push_item(Item::Loop(Loop {
            header: LoopHeader {
                var: i,
                lower: 0,
                upper: 8,
                step: 1,
            },
            body: vec![Item::Stmt(s1), Item::Stmt(s2)],
        }));
        let rb = ArrayRef::new(b, AccessVector::new(vec![AffineExpr::constant_expr(0)]));
        let s3 = p.make_stmt(rb.into(), Expr::Copy(t.into()));
        p.push_item(Item::Stmt(s3));
        unroll_program(&mut p, 4);
        let items = p.items();
        assert!(matches!(items[0], Item::Loop(_)));
        let copy = match &items[1] {
            Item::Stmt(s) => s,
            _ => panic!("expected copy-back between loop and trailing read"),
        };
        assert_eq!(copy.dest(), &Dest::Scalar(t));
        match copy.expr() {
            Expr::Copy(Operand::Scalar(v)) => assert_eq!(p.scalar(*v).name, "t.u3"),
            e => panic!("expected scalar copy, got {e:?}"),
        }
    }

    #[test]
    fn loop_local_scalar_gets_no_copy_back() {
        // t is only read inside the loop body; no copy-back statement
        // should perturb the unrolled output.
        let mut p = make_loop_program(8);
        unroll_program(&mut p, 4);
        assert_eq!(p.items().len(), 1, "{:?}", p.items());
    }

    #[test]
    fn reduction_scalar_not_privatized() {
        // for i in 0..8 { acc = acc + A[i] } : acc is used before defined,
        // so all replicas must share it.
        let mut p = Program::new("red");
        let a = p.add_array("A", ScalarType::F64, vec![8], true);
        let acc = p.add_scalar("acc", ScalarType::F64);
        let i = p.add_loop_var("i");
        let r = ArrayRef::new(a, AccessVector::new(vec![AffineExpr::var(i)]));
        let s = p.make_stmt(acc.into(), Expr::Binary(BinOp::Add, acc.into(), r.into()));
        p.push_item(Item::Loop(Loop {
            header: LoopHeader {
                var: i,
                lower: 0,
                upper: 8,
                step: 1,
            },
            body: vec![Item::Stmt(s)],
        }));
        unroll_program(&mut p, 4);
        let blocks = p.blocks();
        let stmts = blocks[0].block.stmts();
        let dests: Vec<_> = stmts
            .iter()
            .map(|s| match s.dest() {
                Dest::Scalar(v) => *v,
                _ => unreachable!(),
            })
            .collect();
        assert!(
            dests.iter().all(|&d| d == acc),
            "reduction must stay shared"
        );
    }
}
