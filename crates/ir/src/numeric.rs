//! Shared exact integer arithmetic for the static analyses.
//!
//! Dependence testing ([`crate::deps`]), bounds validation
//! ([`Program::validate`](crate::Program::validate)), alignment proofs
//! ([`crate::align`]) and the `slp-analyze` dataflow framework all need
//! the same two primitives: a Euclidean gcd and the provable value range
//! of an affine expression over the enclosing loop bounds. They used to
//! carry private copies with subtly different overflow behavior; this
//! module is the single shared implementation, computed in `i128` so
//! pathological coefficients cannot overflow (or, worse, wrap into a
//! falsely-in-range interval).

use crate::affine::AffineExpr;
use crate::program::LoopHeader;

/// Greatest common divisor of `|a|` and `|b|`; `gcd(0, 0) == 0`.
///
/// # Examples
///
/// ```
/// assert_eq!(slp_ir::numeric::gcd(12, 18), 6);
/// assert_eq!(slp_ir::numeric::gcd(0, 7), 7);
/// assert_eq!(slp_ir::numeric::gcd(-8, 12), 4);
/// ```
pub fn gcd(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.unsigned_abs(), b.unsigned_abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    // An i64's absolute value always fits back after the gcd (the only
    // overflow candidate, |i64::MIN|, can only be returned for inputs
    // whose gcd genuinely is 2^63, and the clamp keeps that sound).
    i64::try_from(a).unwrap_or(i64::MAX)
}

/// The provable `[min, max]` of an affine expression over loop ranges.
///
/// Returns `None` when some variable of `e` has no enclosing header or
/// when an enclosing loop provably never runs (no iteration exists, so
/// no value constraint is meaningful). Computed in `i128` and clamped
/// back to `i64`; clamping is monotone around 0, so sign-based verdicts
/// (out-of-bounds, never-zero) survive it.
pub fn interval_in(e: &AffineExpr, loops: &[LoopHeader]) -> Option<(i64, i64)> {
    let mut lo = e.constant() as i128;
    let mut hi = lo;
    for (v, c) in e.terms() {
        let h = loops.iter().find(|h| h.var == v)?;
        let trips = h.trip_count() as i128;
        if trips <= 0 {
            return None;
        }
        let first = h.lower as i128;
        let last = first + (trips - 1) * h.step as i128;
        let (a, b) = ((c as i128) * first, (c as i128) * last);
        lo = lo.saturating_add(a.min(b));
        hi = hi.saturating_add(a.max(b));
    }
    Some((clamp_i64(lo), clamp_i64(hi)))
}

/// Saturates an `i128` into the `i64` range.
pub fn clamp_i64(x: i128) -> i64 {
    x.clamp(i64::MIN as i128, i64::MAX as i128) as i64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::LoopVarId;

    fn header(var: u32, lower: i64, upper: i64, step: i64) -> LoopHeader {
        LoopHeader {
            var: LoopVarId::new(var),
            lower,
            upper,
            step,
        }
    }

    #[test]
    fn gcd_basics() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(0, 7), 7);
        assert_eq!(gcd(-8, 12), 4);
        assert_eq!(gcd(0, 0), 0);
        assert_eq!(gcd(i64::MIN, 0), i64::MAX); // |i64::MIN| clamps, stays sound
    }

    #[test]
    fn interval_over_one_loop() {
        // 2i + 1 over i in 0..8 -> [1, 15].
        let e = AffineExpr::var(LoopVarId::new(0)).scaled(2).offset(1);
        let h = [header(0, 0, 8, 1)];
        assert_eq!(interval_in(&e, &h), Some((1, 15)));
    }

    #[test]
    fn interval_respects_step_endpoint() {
        // i over i in 0..7 step 2 -> last iteration is i = 6.
        let e = AffineExpr::var(LoopVarId::new(0));
        let h = [header(0, 0, 7, 2)];
        assert_eq!(interval_in(&e, &h), Some((0, 6)));
    }

    #[test]
    fn interval_unknown_var_is_none() {
        let e = AffineExpr::var(LoopVarId::new(3));
        assert_eq!(interval_in(&e, &[]), None);
    }

    #[test]
    fn interval_zero_trip_is_none() {
        let e = AffineExpr::var(LoopVarId::new(0));
        let h = [header(0, 4, 4, 1)];
        assert_eq!(interval_in(&e, &h), None);
    }

    #[test]
    fn interval_negative_coefficients() {
        // -3i + 2 over i in 1..5 -> [-10, -1].
        let e = AffineExpr::var(LoopVarId::new(0)).scaled(-3).offset(2);
        let h = [header(0, 1, 5, 1)];
        assert_eq!(interval_in(&e, &h), Some((-10, -1)));
    }

    #[test]
    fn interval_saturates_instead_of_wrapping() {
        let e = AffineExpr::var(LoopVarId::new(0)).scaled(i64::MAX);
        let h = [header(0, 1, i64::MAX, 1)];
        let (lo, hi) = interval_in(&e, &h).expect("bounded");
        assert!(lo > 0, "sign must survive saturation");
        assert_eq!(hi, i64::MAX);
    }
}
