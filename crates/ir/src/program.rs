//! Whole programs: symbol tables, loop nests and basic blocks.
//!
//! A [`Program`] is the unit handed to the pre-processing passes (loop
//! unrolling, alignment analysis) and then, block by block, to the SLP
//! optimizer. It plays the role of SUIF's intermediate program
//! representation in the original system.

use std::fmt;

use crate::block::BasicBlock;
use crate::expr::{Dest, Expr, Operand, TypeEnv};
use crate::ids::{ArrayId, LoopVarId, StmtId, VarId};
use crate::stmt::Statement;
use crate::types::ScalarType;

/// Metadata of a scalar variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScalarInfo {
    /// Source-level name.
    pub name: String,
    /// Element type.
    pub ty: ScalarType,
}

/// Metadata of an array.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayInfo {
    /// Source-level name.
    pub name: String,
    /// Element type.
    pub ty: ScalarType,
    /// Extent of each dimension, outermost first. Storage is row-major
    /// (§5.2: "the default layout adopted by the compiler is row major").
    pub dims: Vec<i64>,
    /// Whether the array holds externally supplied input data; the VM
    /// seeds such arrays with a deterministic pattern before execution.
    pub is_input: bool,
}

impl ArrayInfo {
    /// Total number of elements (product of dimension extents).
    ///
    /// Saturates at `i64::MAX` so absurdly large declared extents report
    /// a huge-but-defined size instead of overflowing in debug builds;
    /// such arrays are rejected later by the execution memory budget.
    pub fn len(&self) -> i64 {
        self.dims.iter().fold(1i64, |acc, &d| acc.saturating_mul(d))
    }

    /// Whether the array has zero elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Flattens a multi-dimensional index to a row-major linear offset.
    ///
    /// # Panics
    ///
    /// Panics if `index` has the wrong rank.
    pub fn linearize(&self, index: &[i64]) -> i64 {
        assert_eq!(index.len(), self.dims.len(), "rank mismatch");
        let mut off = 0;
        for (d, &i) in index.iter().enumerate() {
            off = off * self.dims[d] + i;
        }
        off
    }

    /// Whether `index` lies inside the array bounds in every dimension.
    pub fn in_bounds(&self, index: &[i64]) -> bool {
        index.len() == self.dims.len()
            && index.iter().zip(&self.dims).all(|(&i, &d)| i >= 0 && i < d)
    }
}

/// A counted `for` loop header: `for var in lower..upper step step`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoopHeader {
    /// The induction variable.
    pub var: LoopVarId,
    /// Inclusive lower bound.
    pub lower: i64,
    /// Exclusive upper bound.
    pub upper: i64,
    /// Step (after unrolling, the unroll factor).
    pub step: i64,
}

impl LoopHeader {
    /// Number of iterations the loop executes.
    ///
    /// Saturates on pathological bounds (`upper - lower` near `i64::MAX`)
    /// rather than overflowing; such loops are far beyond any execution
    /// budget anyway.
    pub fn trip_count(&self) -> i64 {
        if self.upper <= self.lower || self.step <= 0 {
            0
        } else {
            self.upper
                .saturating_sub(self.lower)
                .saturating_add(self.step - 1)
                / self.step
        }
    }
}

/// A loop with its body.
#[derive(Debug, Clone, PartialEq)]
pub struct Loop {
    /// The loop header.
    pub header: LoopHeader,
    /// Body items in source order.
    pub body: Vec<Item>,
}

/// One item of a program or loop body.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// A straight-line statement.
    Stmt(Statement),
    /// A nested loop.
    Loop(Loop),
}

/// Identifies one basic block within a program by its DFS visit order.
///
/// Block ids are stable as long as the program's loop structure and the
/// partition of statements into blocks is unchanged; rewriting passes that
/// only touch operands (e.g. data layout) preserve them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub u32);

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "B{}", self.0)
    }
}

/// A basic block extracted from a program, with its enclosing loop nest.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockInfo {
    /// DFS-order id of the block.
    pub id: BlockId,
    /// The statements of the block, in program order.
    pub block: BasicBlock,
    /// Enclosing loops, outermost first (empty for top-level code).
    pub loops: Vec<LoopHeader>,
}

impl BlockInfo {
    /// The innermost enclosing loop, if any.
    pub fn innermost_loop(&self) -> Option<&LoopHeader> {
        self.loops.last()
    }
}

/// A whole kernel program: symbol tables plus a tree of loops and
/// statements.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    name: String,
    scalars: Vec<ScalarInfo>,
    arrays: Vec<ArrayInfo>,
    loop_vars: Vec<String>,
    items: Vec<Item>,
    next_stmt: u32,
}

impl Program {
    /// Creates an empty program with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Program {
            name: name.into(),
            ..Default::default()
        }
    }

    /// The program's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    // ---- symbol tables -------------------------------------------------

    /// Declares a scalar variable and returns its id.
    pub fn add_scalar(&mut self, name: impl Into<String>, ty: ScalarType) -> VarId {
        self.scalars.push(ScalarInfo {
            name: name.into(),
            ty,
        });
        VarId::new(self.scalars.len() as u32 - 1)
    }

    /// Declares an array and returns its id.
    pub fn add_array(
        &mut self,
        name: impl Into<String>,
        ty: ScalarType,
        dims: Vec<i64>,
        is_input: bool,
    ) -> ArrayId {
        self.arrays.push(ArrayInfo {
            name: name.into(),
            ty,
            dims,
            is_input,
        });
        ArrayId::new(self.arrays.len() as u32 - 1)
    }

    /// Declares a loop induction variable and returns its id.
    pub fn add_loop_var(&mut self, name: impl Into<String>) -> LoopVarId {
        self.loop_vars.push(name.into());
        LoopVarId::new(self.loop_vars.len() as u32 - 1)
    }

    /// Metadata of scalar `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` was not declared in this program.
    pub fn scalar(&self, v: VarId) -> &ScalarInfo {
        &self.scalars[v.index()]
    }

    /// Metadata of array `a`.
    ///
    /// # Panics
    ///
    /// Panics if `a` was not declared in this program.
    pub fn array(&self, a: ArrayId) -> &ArrayInfo {
        &self.arrays[a.index()]
    }

    /// Name of loop variable `v`.
    pub fn loop_var_name(&self, v: LoopVarId) -> &str {
        &self.loop_vars[v.index()]
    }

    /// All declared scalars.
    pub fn scalars(&self) -> &[ScalarInfo] {
        &self.scalars
    }

    /// All declared arrays.
    pub fn arrays(&self) -> &[ArrayInfo] {
        &self.arrays
    }

    /// Number of declared loop variables.
    pub fn loop_var_count(&self) -> usize {
        self.loop_vars.len()
    }

    /// Ids of all declared arrays.
    pub fn array_ids(&self) -> impl Iterator<Item = ArrayId> + '_ {
        (0..self.arrays.len() as u32).map(ArrayId::new)
    }

    /// Ids of all declared scalars.
    pub fn scalar_ids(&self) -> impl Iterator<Item = VarId> + '_ {
        (0..self.scalars.len() as u32).map(VarId::new)
    }

    // ---- statements and structure ---------------------------------------

    /// Allocates a fresh, program-unique statement id.
    pub fn fresh_stmt_id(&mut self) -> StmtId {
        let id = StmtId::new(self.next_stmt);
        self.next_stmt += 1;
        id
    }

    /// Raises the fresh-id watermark so [`Program::fresh_stmt_id`] never
    /// returns an id below `next`.
    ///
    /// Builders that insert statements with externally chosen ids (the
    /// `slp-driver` cache codec reconstructing a persisted kernel) call
    /// this with `max used id + 1` so ids allocated later stay unique.
    pub fn ensure_stmt_ids(&mut self, next: u32) {
        self.next_stmt = self.next_stmt.max(next);
    }

    /// Builds a statement with a fresh id.
    pub fn make_stmt(&mut self, dest: Dest, expr: Expr) -> Statement {
        let id = self.fresh_stmt_id();
        Statement::new(id, dest, expr)
    }

    /// Appends a top-level item.
    pub fn push_item(&mut self, item: Item) {
        self.items.push(item);
    }

    /// Appends a top-level statement with a fresh id.
    pub fn push_stmt(&mut self, dest: Dest, expr: Expr) -> StmtId {
        let s = self.make_stmt(dest, expr);
        let id = s.id();
        self.items.push(Item::Stmt(s));
        id
    }

    /// The top-level items.
    pub fn items(&self) -> &[Item] {
        &self.items
    }

    /// Mutable access to the top-level items (used by unrolling).
    pub fn items_mut(&mut self) -> &mut Vec<Item> {
        &mut self.items
    }

    // ---- basic-block extraction -----------------------------------------

    /// Extracts every basic block with its enclosing loop nest, in DFS
    /// order. Consecutive statements within one body form one block.
    pub fn blocks(&self) -> Vec<BlockInfo> {
        let mut out = Vec::new();
        let mut next = 0u32;
        let mut loops = Vec::new();
        collect_blocks(&self.items, &mut loops, &mut next, &mut out);
        out
    }

    /// Applies `f` to every statement in the program, in DFS order.
    pub fn for_each_stmt_mut<F: FnMut(&mut Statement)>(&mut self, mut f: F) {
        fn walk<F: FnMut(&mut Statement)>(items: &mut [Item], f: &mut F) {
            for item in items {
                match item {
                    Item::Stmt(s) => f(s),
                    Item::Loop(l) => walk(&mut l.body, f),
                }
            }
        }
        walk(&mut self.items, &mut f);
    }

    /// Applies `f` to every statement in the program, in DFS order.
    pub fn for_each_stmt<F: FnMut(&Statement)>(&self, mut f: F) {
        fn walk<F: FnMut(&Statement)>(items: &[Item], f: &mut F) {
            for item in items {
                match item {
                    Item::Stmt(s) => f(s),
                    Item::Loop(l) => walk(&l.body, f),
                }
            }
        }
        walk(&self.items, &mut f);
    }

    /// Total number of statements.
    pub fn stmt_count(&self) -> usize {
        let mut n = 0;
        self.for_each_stmt(|_| n += 1);
        n
    }

    /// For every scalar, whether it is *upward exposed* in some basic
    /// block: read before any write within that block.
    ///
    /// A scalar that is never upward exposed is a pure block-local
    /// temporary — every read is preceded by a write in its own block, so
    /// the value never crosses a block (or loop-iteration) boundary and
    /// the code generator may keep it in a register without ever touching
    /// its memory home. Upward-exposed scalars (parameters, accumulators,
    /// loop-carried values) are memory-resident.
    pub fn upward_exposed_scalars(&self) -> Vec<bool> {
        let mut exposed = vec![false; self.scalars.len()];
        for info in self.blocks() {
            let mut written: Vec<bool> = vec![false; self.scalars.len()];
            for s in info.block.iter() {
                for u in s.uses() {
                    if let Operand::Scalar(v) = u {
                        if !written[v.index()] {
                            exposed[v.index()] = true;
                        }
                    }
                }
                if let Dest::Scalar(v) = s.dest() {
                    written[v.index()] = true;
                }
            }
        }
        exposed
    }

    /// Whether array `a` is only ever read (never a store destination).
    ///
    /// §5.2 restricts mapping/replication to read-only array references.
    pub fn array_is_read_only(&self, a: ArrayId) -> bool {
        let mut written = false;
        self.for_each_stmt(|s| {
            if let Dest::Array(r) = s.dest() {
                if r.array == a {
                    written = true;
                }
            }
        });
        !written
    }

    /// Renders an operand with source-level names.
    pub fn show_operand(&self, op: &Operand) -> String {
        match op {
            Operand::Scalar(v) => self.scalar(*v).name.clone(),
            Operand::Array(r) => {
                let mut s = self.array(r.array).name.clone();
                for d in r.access.dims() {
                    s.push('[');
                    s.push_str(&d.to_string());
                    s.push(']');
                }
                s
            }
            Operand::Const(c) => c.to_string(),
        }
    }

    /// Renders a statement with source-level names.
    pub fn show_stmt(&self, s: &Statement) -> String {
        let dest = self.show_operand(&s.dest().as_operand());
        let ops: Vec<String> = s
            .expr()
            .operands()
            .iter()
            .map(|o| self.show_operand(o))
            .collect();
        let rhs = match s.expr() {
            Expr::Copy(_) => ops[0].clone(),
            Expr::Unary(op, _) => format!("{op}({})", ops[0]),
            Expr::Binary(op, _, _) => format!("{} {op} {}", ops[0], ops[1]),
            Expr::MulAdd(_, _, _) => format!("{} + {} * {}", ops[0], ops[1], ops[2]),
            Expr::Select(op, _, _, _, _) => {
                format!("select({} {op} {}, {}, {})", ops[0], ops[1], ops[2], ops[3])
            }
        };
        format!("{}: {} = {}", s.id(), dest, rhs)
    }
}

fn collect_blocks(
    items: &[Item],
    loops: &mut Vec<LoopHeader>,
    next: &mut u32,
    out: &mut Vec<BlockInfo>,
) {
    let mut run: Vec<Statement> = Vec::new();
    for item in items {
        match item {
            Item::Stmt(s) => run.push(s.clone()),
            Item::Loop(l) => {
                flush_run(&mut run, loops, next, out);
                loops.push(l.header);
                collect_blocks(&l.body, loops, next, out);
                loops.pop();
            }
        }
    }
    flush_run(&mut run, loops, next, out);
}

fn flush_run(
    run: &mut Vec<Statement>,
    loops: &[LoopHeader],
    next: &mut u32,
    out: &mut Vec<BlockInfo>,
) {
    if run.is_empty() {
        return;
    }
    let id = BlockId(*next);
    *next += 1;
    out.push(BlockInfo {
        id,
        block: BasicBlock::from_stmts(std::mem::take(run)),
        loops: loops.to_vec(),
    });
}

impl TypeEnv for Program {
    fn scalar_type(&self, v: VarId) -> ScalarType {
        self.scalars[v.index()].ty
    }
    fn array_type(&self, a: ArrayId) -> ScalarType {
        self.arrays[a.index()].ty
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn walk(
            p: &Program,
            items: &[Item],
            depth: usize,
            f: &mut fmt::Formatter<'_>,
        ) -> fmt::Result {
            let pad = "  ".repeat(depth);
            for item in items {
                match item {
                    Item::Stmt(s) => writeln!(f, "{pad}{}", p.show_stmt(s))?,
                    Item::Loop(l) => {
                        writeln!(
                            f,
                            "{pad}for {} in {}..{} step {} {{",
                            p.loop_var_name(l.header.var),
                            l.header.lower,
                            l.header.upper,
                            l.header.step
                        )?;
                        walk(p, &l.body, depth + 1, f)?;
                        writeln!(f, "{pad}}}")?;
                    }
                }
            }
            Ok(())
        }
        writeln!(f, "kernel {} {{", self.name)?;
        for a in &self.arrays {
            let dims: Vec<String> = a.dims.iter().map(|d| d.to_string()).collect();
            writeln!(f, "  array {}: {}[{}];", a.name, a.ty, dims.join("]["))?;
        }
        for s in &self.scalars {
            writeln!(f, "  scalar {}: {};", s.name, s.ty)?;
        }
        walk(self, &self.items, 1, f)?;
        writeln!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::affine::{AccessVector, AffineExpr};
    use crate::expr::{ArrayRef, BinOp};

    fn sample() -> Program {
        // kernel t { array A: f64[16]; scalar x;
        //   x = 1.0;
        //   for i in 0..8 { A[2i] = x + A[2i+1]; }
        //   x = x * 2.0; }
        let mut p = Program::new("t");
        let a = p.add_array("A", ScalarType::F64, vec![16], true);
        let x = p.add_scalar("x", ScalarType::F64);
        let i = p.add_loop_var("i");
        p.push_stmt(x.into(), Expr::Copy(1.0.into()));
        let body_stmt = p.make_stmt(
            ArrayRef::new(a, AccessVector::new(vec![AffineExpr::var(i).scaled(2)])).into(),
            Expr::Binary(
                BinOp::Add,
                x.into(),
                ArrayRef::new(
                    a,
                    AccessVector::new(vec![AffineExpr::var(i).scaled(2).offset(1)]),
                )
                .into(),
            ),
        );
        p.push_item(Item::Loop(Loop {
            header: LoopHeader {
                var: i,
                lower: 0,
                upper: 8,
                step: 1,
            },
            body: vec![Item::Stmt(body_stmt)],
        }));
        p.push_stmt(x.into(), Expr::Binary(BinOp::Mul, x.into(), 2.0.into()));
        p
    }

    #[test]
    fn block_extraction_partitions_statements() {
        let p = sample();
        let blocks = p.blocks();
        // Pre-loop block, loop body block, post-loop block.
        assert_eq!(blocks.len(), 3);
        assert_eq!(blocks[0].loops.len(), 0);
        assert_eq!(blocks[1].loops.len(), 1);
        assert_eq!(blocks[1].block.len(), 1);
        assert_eq!(blocks[2].loops.len(), 0);
        // Ids are dense DFS order.
        assert_eq!(blocks.iter().map(|b| b.id.0).collect::<Vec<_>>(), [0, 1, 2]);
    }

    #[test]
    fn stmt_ids_are_unique() {
        let p = sample();
        let mut ids = Vec::new();
        p.for_each_stmt(|s| ids.push(s.id()));
        let mut dedup = ids.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(ids.len(), dedup.len());
        assert_eq!(p.stmt_count(), 3);
    }

    #[test]
    fn upward_exposed_classification() {
        // x = 1.0 (block 0); loop { A[2i] = x + A[2i+1] } (block 1);
        // x = x * 2.0 (block 2). x is read in blocks 1 and 2 without a
        // preceding write there: exposed.
        let p = sample();
        let exposed = p.upward_exposed_scalars();
        assert!(exposed[0], "x crosses block boundaries");

        // t = A[i]; A[i] = t * 2  -> t is written before read: a temp.
        let mut q = Program::new("t");
        let a = q.add_array("A", ScalarType::F64, vec![8], true);
        let t = q.add_scalar("t", ScalarType::F64);
        let i = q.add_loop_var("i");
        let r = ArrayRef::new(a, AccessVector::new(vec![AffineExpr::var(i)]));
        let s1 = q.make_stmt(t.into(), Expr::Copy(r.clone().into()));
        let s2 = q.make_stmt(r.into(), Expr::Binary(BinOp::Mul, t.into(), 2.0.into()));
        q.push_item(Item::Loop(Loop {
            header: LoopHeader {
                var: i,
                lower: 0,
                upper: 8,
                step: 1,
            },
            body: vec![Item::Stmt(s1), Item::Stmt(s2)],
        }));
        assert_eq!(q.upward_exposed_scalars(), vec![false]);
    }

    #[test]
    fn read_only_detection() {
        let p = sample();
        // A is written inside the loop.
        assert!(!p.array_is_read_only(ArrayId::new(0)));
        let mut q = Program::new("q");
        let b = q.add_array("B", ScalarType::F64, vec![4], true);
        let y = q.add_scalar("y", ScalarType::F64);
        q.push_stmt(
            y.into(),
            Expr::Copy(
                ArrayRef::new(b, AccessVector::new(vec![AffineExpr::constant_expr(0)])).into(),
            ),
        );
        assert!(q.array_is_read_only(b));
    }

    #[test]
    fn trip_count() {
        let h = LoopHeader {
            var: LoopVarId::new(0),
            lower: 0,
            upper: 10,
            step: 4,
        };
        assert_eq!(h.trip_count(), 3); // 0,4,8
        let empty = LoopHeader {
            var: LoopVarId::new(0),
            lower: 5,
            upper: 5,
            step: 1,
        };
        assert_eq!(empty.trip_count(), 0);
    }

    #[test]
    fn trip_count_saturates_on_pathological_bounds() {
        let h = LoopHeader {
            var: LoopVarId::new(0),
            lower: i64::MIN,
            upper: i64::MAX,
            step: 1,
        };
        assert_eq!(h.trip_count(), i64::MAX);
        let neg = LoopHeader {
            var: LoopVarId::new(0),
            lower: i64::MAX,
            upper: i64::MIN,
            step: 3,
        };
        assert_eq!(neg.trip_count(), 0);
    }

    #[test]
    fn array_len_saturates() {
        let a = ArrayInfo {
            name: "A".into(),
            ty: ScalarType::F64,
            dims: vec![i64::MAX, 4],
            is_input: false,
        };
        assert_eq!(a.len(), i64::MAX);
    }

    #[test]
    fn linearize_row_major() {
        let a = ArrayInfo {
            name: "A".into(),
            ty: ScalarType::F64,
            dims: vec![3, 4],
            is_input: false,
        };
        assert_eq!(a.len(), 12);
        assert_eq!(a.linearize(&[0, 0]), 0);
        assert_eq!(a.linearize(&[1, 0]), 4);
        assert_eq!(a.linearize(&[2, 3]), 11);
        assert!(a.in_bounds(&[2, 3]));
        assert!(!a.in_bounds(&[3, 0]));
        assert!(!a.in_bounds(&[0, -1]));
    }

    #[test]
    fn display_renders_names() {
        let p = sample();
        let text = p.to_string();
        assert!(text.contains("array A: f64[16];"));
        assert!(text.contains("for i in 0..8 step 1 {"));
        assert!(text.contains("x + A[2*i0+1]"));
    }
}
