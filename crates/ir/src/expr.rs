//! Operands, operators and right-hand-side expressions.
//!
//! Statements in the IR are in three-address style: a destination and an
//! expression of at most one operator, which is the granularity at which
//! the paper's isomorphism test (§4.1 constraint 3: "same operations in the
//! same order") and variable-pack extraction ("variables coming from the
//! same position of different isomorphic statements") operate.

use std::fmt;

use crate::affine::AccessVector;
use crate::ids::{ArrayId, VarId};
use crate::types::ScalarType;

/// A reference to an array element with affine subscripts, e.g. `A[4i+3]`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArrayRef {
    /// The array being accessed.
    pub array: ArrayId,
    /// One affine index expression per dimension.
    pub access: AccessVector,
}

impl ArrayRef {
    /// Creates a reference to `array` with the given per-dimension access.
    pub fn new(array: ArrayId, access: AccessVector) -> Self {
        ArrayRef { array, access }
    }

    /// Whether the two references certainly touch the same element in every
    /// iteration (same array, identical access expressions).
    pub fn must_alias(&self, other: &ArrayRef) -> bool {
        self.array == other.array && self.access == other.access
    }

    /// Whether the two references might touch the same element in some
    /// iteration.
    ///
    /// Distinct arrays never alias (the IR has no pointers). Within the
    /// same array, accesses whose index expressions share the linear part
    /// alias iff their constant parts are equal; anything else is
    /// conservatively assumed to alias.
    pub fn may_alias(&self, other: &ArrayRef) -> bool {
        if self.array != other.array {
            return false;
        }
        match self.access.constant_difference(&other.access) {
            Some(diff) => diff.iter().all(|&d| d == 0),
            None => true,
        }
    }
}

impl fmt::Display for ArrayRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.array, self.access)
    }
}

/// An operand of an expression: a scalar variable, an array element or an
/// immediate constant.
#[derive(Debug, Clone, PartialEq, PartialOrd)]
pub enum Operand {
    /// A scalar variable.
    Scalar(VarId),
    /// An array element with affine subscripts.
    Array(ArrayRef),
    /// An immediate constant (stored as `f64`; integer types truncate on
    /// evaluation).
    Const(f64),
}

impl Operand {
    /// Returns the scalar variable if this operand is one.
    pub fn as_scalar(&self) -> Option<VarId> {
        match self {
            Operand::Scalar(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the array reference if this operand is one.
    pub fn as_array(&self) -> Option<&ArrayRef> {
        match self {
            Operand::Array(r) => Some(r),
            _ => None,
        }
    }

    /// Whether this operand reads from memory or a register (i.e. is not a
    /// constant).
    pub fn is_location(&self) -> bool {
        !matches!(self, Operand::Const(_))
    }

    /// The structural kind of the operand, used by the isomorphism test.
    pub fn kind(&self) -> OperandKind {
        match self {
            Operand::Scalar(_) => OperandKind::Scalar,
            Operand::Array(_) => OperandKind::Array,
            Operand::Const(_) => OperandKind::Const,
        }
    }
}

impl From<VarId> for Operand {
    fn from(v: VarId) -> Self {
        Operand::Scalar(v)
    }
}

impl From<ArrayRef> for Operand {
    fn from(r: ArrayRef) -> Self {
        Operand::Array(r)
    }
}

impl From<f64> for Operand {
    fn from(c: f64) -> Self {
        Operand::Const(c)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Scalar(v) => write!(f, "{v}"),
            Operand::Array(r) => write!(f, "{r}"),
            Operand::Const(c) => write!(f, "{c}"),
        }
    }
}

/// The structural kind of an [`Operand`], compared positionally by the
/// isomorphism test ("the operands in the corresponding positions should
/// have the same data type").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OperandKind {
    /// A scalar variable operand.
    Scalar,
    /// An array element operand.
    Array,
    /// A constant operand.
    Const,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Lane-wise minimum.
    Min,
    /// Lane-wise maximum.
    Max,
}

impl BinOp {
    /// Applies the operator to two values.
    pub fn apply(self, a: f64, b: f64) -> f64 {
        match self {
            BinOp::Add => a + b,
            BinOp::Sub => a - b,
            BinOp::Mul => a * b,
            BinOp::Div => a / b,
            BinOp::Min => a.min(b),
            BinOp::Max => a.max(b),
        }
    }

    /// Whether `a op b == b op a` for all finite inputs.
    pub fn is_commutative(self) -> bool {
        matches!(self, BinOp::Add | BinOp::Mul | BinOp::Min | BinOp::Max)
    }

    /// All binary operators (handy for tests and generators).
    pub fn all() -> [BinOp; 6] {
        [
            BinOp::Add,
            BinOp::Sub,
            BinOp::Mul,
            BinOp::Div,
            BinOp::Min,
            BinOp::Max,
        ]
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Min => "min",
            BinOp::Max => "max",
        };
        f.write_str(s)
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum UnOp {
    /// Negation.
    Neg,
    /// Absolute value.
    Abs,
    /// Square root.
    Sqrt,
}

impl UnOp {
    /// Applies the operator to a value.
    pub fn apply(self, a: f64) -> f64 {
        match self {
            UnOp::Neg => -a,
            UnOp::Abs => a.abs(),
            UnOp::Sqrt => a.sqrt(),
        }
    }

    /// All unary operators.
    pub fn all() -> [UnOp; 3] {
        [UnOp::Neg, UnOp::Abs, UnOp::Sqrt]
    }
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            UnOp::Neg => "neg",
            UnOp::Abs => "abs",
            UnOp::Sqrt => "sqrt",
        };
        f.write_str(s)
    }
}

/// Comparison operators, used only as the predicate of a
/// [`Expr::Select`]: the IR has no boolean values, so a comparison never
/// appears outside a select.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CmpOp {
    /// `a < b`
    Lt,
    /// `a <= b`
    Le,
    /// `a > b`
    Gt,
    /// `a >= b`
    Ge,
    /// `a == b`
    Eq,
    /// `a != b`
    Ne,
}

impl CmpOp {
    /// Applies the comparison with IEEE-754 semantics (every ordered
    /// comparison involving NaN is false; `!=` is true).
    pub fn apply(self, a: f64, b: f64) -> bool {
        match self {
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
        }
    }

    /// The comparison satisfied exactly when `self` is not (NaN inputs
    /// included: `!(a < b)` is `a >= b || unordered`, which `Ge` does
    /// *not* express, so negation swaps the select arms instead — see
    /// [`Expr::Select`]). This helper only flips the operand order:
    /// `a < b` ⇔ `b > a`.
    pub fn swap(self) -> CmpOp {
        match self {
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
        }
    }

    /// All comparison operators (handy for tests and generators).
    pub fn all() -> [CmpOp; 6] {
        [
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
            CmpOp::Eq,
            CmpOp::Ne,
        ]
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
        };
        f.write_str(s)
    }
}

/// A right-hand-side expression: at most one operator over operands.
#[derive(Debug, Clone, PartialEq, PartialOrd)]
pub enum Expr {
    /// A plain copy `dst = src`.
    Copy(Operand),
    /// A unary operation `dst = op src`.
    Unary(UnOp, Operand),
    /// A binary operation `dst = a op b`.
    Binary(BinOp, Operand, Operand),
    /// A fused multiply-add `dst = a + b * c`, the shape of the example
    /// statements `A[2i] = d + a*c` in the paper's Figure 15.
    MulAdd(Operand, Operand, Operand),
    /// A predicated blend `dst = (a cmp b) ? t : f` — the masked form
    /// if-conversion produces; vectorizes as compare-to-mask + blend.
    Select(CmpOp, Operand, Operand, Operand, Operand),
}

impl Expr {
    /// The operands of the expression in positional order.
    pub fn operands(&self) -> Vec<&Operand> {
        match self {
            Expr::Copy(a) | Expr::Unary(_, a) => vec![a],
            Expr::Binary(_, a, b) => vec![a, b],
            Expr::MulAdd(a, b, c) => vec![a, b, c],
            Expr::Select(_, a, b, t, e) => vec![a, b, t, e],
        }
    }

    /// Mutable access to the operands in positional order.
    pub fn operands_mut(&mut self) -> Vec<&mut Operand> {
        match self {
            Expr::Copy(a) | Expr::Unary(_, a) => vec![a],
            Expr::Binary(_, a, b) => vec![a, b],
            Expr::MulAdd(a, b, c) => vec![a, b, c],
            Expr::Select(_, a, b, t, e) => vec![a, b, t, e],
        }
    }

    /// Number of operand positions.
    pub fn arity(&self) -> usize {
        match self {
            Expr::Copy(_) | Expr::Unary(_, _) => 1,
            Expr::Binary(_, _, _) => 2,
            Expr::MulAdd(_, _, _) => 3,
            Expr::Select(_, _, _, _, _) => 4,
        }
    }

    /// A discriminant describing the operator shape, ignoring operands.
    /// Two expressions with equal shape and positionally equal operand
    /// kinds are isomorphic.
    pub fn shape(&self) -> ExprShape {
        match self {
            Expr::Copy(_) => ExprShape::Copy,
            Expr::Unary(op, _) => ExprShape::Unary(*op),
            Expr::Binary(op, _, _) => ExprShape::Binary(*op),
            Expr::MulAdd(_, _, _) => ExprShape::MulAdd,
            Expr::Select(op, _, _, _, _) => ExprShape::Select(*op),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Copy(a) => write!(f, "{a}"),
            Expr::Unary(op, a) => write!(f, "{op}({a})"),
            Expr::Binary(op, a, b) => match op {
                BinOp::Min | BinOp::Max => write!(f, "{op}({a}, {b})"),
                _ => write!(f, "{a} {op} {b}"),
            },
            Expr::MulAdd(a, b, c) => write!(f, "{a} + {b} * {c}"),
            Expr::Select(op, a, b, t, e) => write!(f, "select({a} {op} {b}, {t}, {e})"),
        }
    }
}

/// The operator shape of an [`Expr`], used as an isomorphism-class key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExprShape {
    /// Shape of [`Expr::Copy`].
    Copy,
    /// Shape of [`Expr::Unary`].
    Unary(UnOp),
    /// Shape of [`Expr::Binary`].
    Binary(BinOp),
    /// Shape of [`Expr::MulAdd`].
    MulAdd,
    /// Shape of [`Expr::Select`]; selects pack only with selects using
    /// the same comparison.
    Select(CmpOp),
}

/// A typed destination: where a statement writes.
#[derive(Debug, Clone, PartialEq, PartialOrd)]
pub enum Dest {
    /// Write to a scalar variable.
    Scalar(VarId),
    /// Write to an array element.
    Array(ArrayRef),
}

impl Dest {
    /// Views the destination as an operand (for uniform location handling).
    pub fn as_operand(&self) -> Operand {
        match self {
            Dest::Scalar(v) => Operand::Scalar(*v),
            Dest::Array(r) => Operand::Array(r.clone()),
        }
    }

    /// The structural kind of the destination.
    pub fn kind(&self) -> OperandKind {
        match self {
            Dest::Scalar(_) => OperandKind::Scalar,
            Dest::Array(_) => OperandKind::Array,
        }
    }
}

impl From<VarId> for Dest {
    fn from(v: VarId) -> Self {
        Dest::Scalar(v)
    }
}

impl From<ArrayRef> for Dest {
    fn from(r: ArrayRef) -> Self {
        Dest::Array(r)
    }
}

impl fmt::Display for Dest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Dest::Scalar(v) => write!(f, "{v}"),
            Dest::Array(r) => write!(f, "{r}"),
        }
    }
}

/// Element type context: anything that can report the [`ScalarType`] of a
/// scalar variable or array. Implemented by
/// [`Program`](crate::program::Program).
pub trait TypeEnv {
    /// The element type of scalar variable `v`.
    fn scalar_type(&self, v: VarId) -> ScalarType;
    /// The element type of array `a`.
    fn array_type(&self, a: ArrayId) -> ScalarType;

    /// The element type of an operand; constants default to `F64`.
    fn operand_type(&self, op: &Operand) -> ScalarType {
        match op {
            Operand::Scalar(v) => self.scalar_type(*v),
            Operand::Array(r) => self.array_type(r.array),
            Operand::Const(_) => ScalarType::F64,
        }
    }

    /// The element type of a destination.
    fn dest_type(&self, d: &Dest) -> ScalarType {
        match d {
            Dest::Scalar(v) => self.scalar_type(*v),
            Dest::Array(r) => self.array_type(r.array),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::affine::AffineExpr;
    use crate::ids::LoopVarId;

    fn aref(a: u32, coeff: i64, cst: i64) -> ArrayRef {
        ArrayRef::new(
            ArrayId::new(a),
            AccessVector::new(vec![AffineExpr::var(LoopVarId::new(0))
                .scaled(coeff)
                .offset(cst)]),
        )
    }

    #[test]
    fn alias_rules() {
        let a = aref(0, 4, 0);
        let b = aref(0, 4, 3);
        let c = aref(0, 2, 0);
        let d = aref(1, 4, 0);
        assert!(a.must_alias(&a));
        assert!(!a.may_alias(&b)); // same linear part, different constant
        assert!(a.may_alias(&c)); // different linear part: conservative
        assert!(!a.may_alias(&d)); // different arrays never alias
    }

    #[test]
    fn binop_semantics() {
        assert_eq!(BinOp::Add.apply(2.0, 3.0), 5.0);
        assert_eq!(BinOp::Div.apply(7.0, 2.0), 3.5);
        assert_eq!(BinOp::Min.apply(2.0, -3.0), -3.0);
        assert_eq!(BinOp::Max.apply(2.0, -3.0), 2.0);
        assert!(BinOp::Add.is_commutative());
        assert!(!BinOp::Sub.is_commutative());
    }

    #[test]
    fn unop_semantics() {
        assert_eq!(UnOp::Neg.apply(2.0), -2.0);
        assert_eq!(UnOp::Abs.apply(-2.0), 2.0);
        assert_eq!(UnOp::Sqrt.apply(9.0), 3.0);
    }

    #[test]
    fn expr_shape_distinguishes_ops() {
        let x = Operand::Const(1.0);
        let add = Expr::Binary(BinOp::Add, x.clone(), x.clone());
        let mul = Expr::Binary(BinOp::Mul, x.clone(), x.clone());
        assert_ne!(add.shape(), mul.shape());
        assert_eq!(add.shape(), ExprShape::Binary(BinOp::Add));
        assert_eq!(add.arity(), 2);
        assert_eq!(Expr::MulAdd(x.clone(), x.clone(), x.clone()).arity(), 3);
    }

    #[test]
    fn cmpop_semantics() {
        assert!(CmpOp::Lt.apply(1.0, 2.0));
        assert!(!CmpOp::Lt.apply(2.0, 2.0));
        assert!(CmpOp::Le.apply(2.0, 2.0));
        assert!(CmpOp::Ge.apply(2.0, 2.0));
        assert!(CmpOp::Eq.apply(0.0, -0.0));
        assert!(CmpOp::Ne.apply(1.0, 2.0));
        // IEEE: ordered comparisons with NaN are false, != is true.
        for op in [CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge, CmpOp::Eq] {
            assert!(!op.apply(f64::NAN, 1.0), "{op:?}");
        }
        assert!(CmpOp::Ne.apply(f64::NAN, 1.0));
        for op in CmpOp::all() {
            assert_eq!(op.swap().swap(), op);
            assert_eq!(op.apply(1.0, 2.0), op.swap().apply(2.0, 1.0));
        }
    }

    #[test]
    fn select_shape_and_operands() {
        let x = Operand::Const(1.0);
        let s = Expr::Select(CmpOp::Lt, x.clone(), x.clone(), x.clone(), x.clone());
        assert_eq!(s.arity(), 4);
        assert_eq!(s.operands().len(), 4);
        assert_eq!(s.shape(), ExprShape::Select(CmpOp::Lt));
        assert_ne!(s.shape(), ExprShape::Select(CmpOp::Gt));
        let shown = Expr::Select(
            CmpOp::Ge,
            Operand::Scalar(VarId::new(0)),
            0.0.into(),
            Operand::Scalar(VarId::new(1)),
            2.0.into(),
        );
        assert_eq!(shown.to_string(), "select(v0 >= 0, v1, 2)");
    }

    #[test]
    fn operand_kind_and_conversions() {
        let v: Operand = VarId::new(3).into();
        assert_eq!(v.kind(), OperandKind::Scalar);
        assert_eq!(v.as_scalar(), Some(VarId::new(3)));
        let c: Operand = 2.5.into();
        assert_eq!(c.kind(), OperandKind::Const);
        assert!(!c.is_location());
        let r: Operand = aref(0, 1, 0).into();
        assert_eq!(r.kind(), OperandKind::Array);
        assert!(r.as_array().is_some());
    }

    #[test]
    fn display_statement_pieces() {
        let e = Expr::Binary(
            BinOp::Mul,
            Operand::Scalar(VarId::new(0)),
            Operand::Array(aref(1, 4, 0)),
        );
        assert_eq!(e.to_string(), "v0 * A1[4*i0]");
        let m = Expr::Binary(BinOp::Min, 1.0.into(), 2.0.into());
        assert_eq!(m.to_string(), "min(1, 2)");
    }
}
