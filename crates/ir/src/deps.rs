//! Data dependence analysis within a basic block.
//!
//! The §4.1 validity constraints are stated in terms of dependences between
//! statements: no dependence inside a superword statement (constraint 1)
//! and preservation of all original dependences by the schedule
//! (constraint 2). This module computes the direct dependences (flow/RAW,
//! anti/WAR and output/WAW) and their transitive closure for one basic
//! block.
//!
//! Aliasing is resolved with the affine rules of
//! [`ArrayRef::may_alias`](crate::ArrayRef::may_alias): same-linear-part
//! accesses with different constants never overlap within one execution of
//! the block, anything less structured is conservatively assumed to
//! overlap.

use std::collections::HashMap;
use std::fmt;

use crate::affine::AffineExpr;
use crate::block::BasicBlock;
use crate::expr::{ArrayRef, CmpOp, Expr, Operand};
use crate::ids::StmtId;
use crate::numeric;
use crate::program::LoopHeader;
use crate::stmt::Statement;

/// An external aliasing oracle consulted by [`BlockDeps::analyze_with`].
///
/// The built-in test ([`operands_overlap_in`]) resolves scalar pairs
/// exactly and array pairs with the constant/GCD/interval disproofs. A
/// refinement (such as the strided-interval oracle in `slp-analyze`) can
/// disprove more pairs; implementations must stay **conservative**:
/// return `true` whenever the two operands might denote the same storage
/// in one iteration of the enclosing loops.
pub trait DepOracle {
    /// May `a` and `b` denote the same storage location in the same
    /// iteration, given the enclosing loop bounds?
    fn operands_overlap(&self, a: &Operand, b: &Operand, loops: &[LoopHeader]) -> bool;
}

/// The built-in oracle: exactly [`operands_overlap_in`].
#[derive(Debug, Clone, Copy, Default)]
pub struct AffineOverlap;

impl DepOracle for AffineOverlap {
    fn operands_overlap(&self, a: &Operand, b: &Operand, loops: &[LoopHeader]) -> bool {
        operands_overlap_in(a, b, loops)
    }
}

/// The classic dependence kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DepKind {
    /// Read-after-write (flow/true dependence).
    Raw,
    /// Write-after-read (anti dependence).
    War,
    /// Write-after-write (output dependence).
    Waw,
}

impl fmt::Display for DepKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DepKind::Raw => "RAW",
            DepKind::War => "WAR",
            DepKind::Waw => "WAW",
        };
        f.write_str(s)
    }
}

/// A direct dependence from an earlier statement to a later one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Dependence {
    /// The earlier statement (source).
    pub src: StmtId,
    /// The later statement (target), which must come after `src`.
    pub dst: StmtId,
    /// The dependence kind.
    pub kind: DepKind,
}

/// A square bit matrix used for reachability closures.
#[derive(Debug, Clone, PartialEq, Eq)]
struct BitMatrix {
    n: usize,
    words_per_row: usize,
    bits: Vec<u64>,
}

impl BitMatrix {
    fn new(n: usize) -> Self {
        let words_per_row = n.div_ceil(64).max(1);
        BitMatrix {
            n,
            words_per_row,
            bits: vec![0; n * words_per_row],
        }
    }

    fn set(&mut self, r: usize, c: usize) {
        debug_assert!(r < self.n && c < self.n);
        self.bits[r * self.words_per_row + c / 64] |= 1u64 << (c % 64);
    }

    fn get(&self, r: usize, c: usize) -> bool {
        debug_assert!(r < self.n && c < self.n);
        self.bits[r * self.words_per_row + c / 64] & (1u64 << (c % 64)) != 0
    }

    /// Replaces self with its transitive closure (Floyd-Warshall over
    /// 64-bit words: if r reaches k, r also reaches everything k reaches).
    fn close_transitively(&mut self) {
        for k in 0..self.n {
            for r in 0..self.n {
                if self.get(r, k) {
                    let (r_off, k_off) = (r * self.words_per_row, k * self.words_per_row);
                    for w in 0..self.words_per_row {
                        let kw = self.bits[k_off + w];
                        self.bits[r_off + w] |= kw;
                    }
                }
            }
        }
    }
}

/// The dependence information of one basic block.
///
/// # Examples
///
/// ```
/// use slp_ir::{BasicBlock, BlockDeps, Statement, StmtId, Expr, BinOp, VarId};
///
/// // S0: v0 = v1 + v2;  S1: v3 = v0 + v2  (RAW on v0)
/// let bb: BasicBlock = [
///     Statement::new(StmtId::new(0), VarId::new(0).into(),
///         Expr::Binary(BinOp::Add, VarId::new(1).into(), VarId::new(2).into())),
///     Statement::new(StmtId::new(1), VarId::new(3).into(),
///         Expr::Binary(BinOp::Add, VarId::new(0).into(), VarId::new(2).into())),
/// ].into_iter().collect();
/// let deps = BlockDeps::analyze(&bb);
/// assert!(deps.depends(StmtId::new(0), StmtId::new(1)));
/// assert!(!deps.independent(StmtId::new(0), StmtId::new(1)));
/// ```
#[derive(Debug, Clone)]
pub struct BlockDeps {
    pos: HashMap<StmtId, usize>,
    direct: Vec<Dependence>,
    reach: BitMatrix,
    /// Position pairs `(p, q)`, `p < q`, recognized as commuting
    /// exclusive-predicate merge selects (see [`BlockDeps::reorderable`]).
    exclusive_merges: Vec<(usize, usize)>,
}

impl BlockDeps {
    /// Analyzes the dependences of `block` without loop-bound context
    /// (conservative aliasing: array accesses with different linear
    /// parts are assumed to overlap).
    pub fn analyze(block: &BasicBlock) -> Self {
        Self::analyze_in(block, &[])
    }

    /// Analyzes the dependences of `block` with its enclosing loop
    /// bounds, enabling the exact same-iteration aliasing test of
    /// [`refs_overlap_in`]: accesses whose difference provably never
    /// vanishes inside the iteration space carry no dependence.
    pub fn analyze_in(block: &BasicBlock, loops: &[LoopHeader]) -> Self {
        Self::analyze_with(block, loops, &AffineOverlap)
    }

    /// [`BlockDeps::analyze_in`] with an explicit aliasing oracle.
    ///
    /// Every operand-pair query goes through `oracle`, so a refinement
    /// (for example range-based disproofs from `slp-analyze`) drops the
    /// corresponding dependence edges from the graph. The oracle must be
    /// conservative; see [`DepOracle`].
    pub fn analyze_with(block: &BasicBlock, loops: &[LoopHeader], oracle: &dyn DepOracle) -> Self {
        let ids: Vec<StmtId> = block.iter().map(|s| s.id()).collect();
        let n = ids.len();
        let mut direct = Vec::new();
        let mut reach = BitMatrix::new(n);
        let mut exclusive_merges = Vec::new();
        let stmts = block.stmts();
        for q in 0..n {
            for p in 0..q {
                let (sp, sq) = (&stmts[p], &stmts[q]);
                if exclusive_merge_pair(sp, sq, loops, oracle) {
                    exclusive_merges.push((p, q));
                }
                let mut dep = false;
                // RAW: q reads what p wrote.
                if sq
                    .uses()
                    .iter()
                    .any(|u| oracle.operands_overlap(&sp.def(), u, loops))
                {
                    direct.push(Dependence {
                        src: sp.id(),
                        dst: sq.id(),
                        kind: DepKind::Raw,
                    });
                    dep = true;
                }
                // WAR: q writes what p read.
                if sp
                    .uses()
                    .iter()
                    .any(|u| oracle.operands_overlap(&sq.def(), u, loops))
                {
                    direct.push(Dependence {
                        src: sp.id(),
                        dst: sq.id(),
                        kind: DepKind::War,
                    });
                    dep = true;
                }
                // WAW: both write the same location.
                if oracle.operands_overlap(&sp.def(), &sq.def(), loops) {
                    direct.push(Dependence {
                        src: sp.id(),
                        dst: sq.id(),
                        kind: DepKind::Waw,
                    });
                    dep = true;
                }
                if dep {
                    reach.set(p, q);
                }
            }
        }
        reach.close_transitively();
        let pos = ids.iter().enumerate().map(|(i, &id)| (id, i)).collect();
        BlockDeps {
            pos,
            direct,
            reach,
            exclusive_merges,
        }
    }

    fn pos(&self, s: StmtId) -> usize {
        *self.pos.get(&s).expect("statement not in analyzed block")
    }

    /// All direct dependences, in (dst, src) program order.
    pub fn direct(&self) -> &[Dependence] {
        &self.direct
    }

    /// Whether there is a (transitive) dependence path from `src` to `dst`.
    ///
    /// # Panics
    ///
    /// Panics if either statement is not part of the analyzed block.
    pub fn depends(&self, src: StmtId, dst: StmtId) -> bool {
        self.reach.get(self.pos(src), self.pos(dst))
    }

    /// Whether there is a *direct* dependence edge from `src` to `dst`.
    pub fn depends_directly(&self, src: StmtId, dst: StmtId) -> bool {
        self.direct.iter().any(|d| d.src == src && d.dst == dst)
    }

    /// Whether two statements are dependence free in both directions
    /// (§4.1 constraint 1 for members of a superword statement).
    pub fn independent(&self, a: StmtId, b: StmtId) -> bool {
        a != b && !self.depends(a, b) && !self.depends(b, a)
    }

    /// Whether the pair `a`, `b` itself imposes no ordering constraint
    /// (dependence paths through third statements still constrain the
    /// schedule).
    ///
    /// This is [`independent`](Self::independent) *plus* the
    /// predicate-aware refinement for if-converted code: the then-merge
    /// and else-merge of one branch (`x = select(c, t, x)` followed by
    /// `x = select(c, x, f)`) carry RAW/WAR/WAW edges on `x`, yet the
    /// pair provably commutes — at most one of the two is active
    /// (non-identity) in any execution, because their predicates are
    /// mutually exclusive, and an identity merge passes the old value
    /// through regardless of order.
    ///
    /// The refinement is for **ordering only**: such a pair must *not*
    /// be packed into one superword statement (both lanes write the same
    /// location), so [`independent`](Self::independent) deliberately
    /// still reports `false` for it.
    pub fn reorderable(&self, a: StmtId, b: StmtId) -> bool {
        if self.independent(a, b) {
            return true;
        }
        let (pa, pb) = (self.pos(a), self.pos(b));
        let pair = (pa.min(pb), pa.max(pb));
        pa != pb && self.exclusive_merges.contains(&pair)
    }

    /// Whether grouping `(a1, a2)` and `(b1, b2)` as two atomic superword
    /// statements would create a dependence cycle between the groups
    /// (the second conflict condition of §4.2.1).
    pub fn groups_form_cycle(&self, a: (StmtId, StmtId), b: (StmtId, StmtId)) -> bool {
        let a_to_b = self.depends(a.0, b.0)
            || self.depends(a.0, b.1)
            || self.depends(a.1, b.0)
            || self.depends(a.1, b.1);
        let b_to_a = self.depends(b.0, a.0)
            || self.depends(b.0, a.1)
            || self.depends(b.1, a.0)
            || self.depends(b.1, a.1);
        a_to_b && b_to_a
    }

    /// Whether merging the statement sets `a` and `b` into two atomic nodes
    /// would create a dependence cycle between them (used by iterative
    /// grouping where groups have more than two members).
    pub fn sets_form_cycle(&self, a: &[StmtId], b: &[StmtId]) -> bool {
        let a_to_b = a.iter().any(|&x| b.iter().any(|&y| self.depends(x, y)));
        let b_to_a = b.iter().any(|&x| a.iter().any(|&y| self.depends(x, y)));
        a_to_b && b_to_a
    }

    /// Whether every pair of statements in `set` is mutually independent.
    pub fn all_independent(&self, set: &[StmtId]) -> bool {
        for (i, &a) in set.iter().enumerate() {
            for &b in &set[i + 1..] {
                if !self.independent(a, b) {
                    return false;
                }
            }
        }
        true
    }
}

/// The predicate under which a merge-form select statement is *active*
/// (stores something other than the destination's old value).
///
/// `x = select(a op b, t, x)` is active exactly when `a op b` holds;
/// `x = select(a op b, x, f)` is active exactly when it does **not**.
/// The truth of a comparison is one of four outcomes of the operand
/// pair — `<`, `=`, `>` or *unordered* (a NaN operand) — so a predicate
/// is represented as the set of outcomes on which it fires. That keeps
/// negation exact under IEEE semantics: `!(a < b)` fires on `=`, `>`
/// *and* unordered, which is not `a >= b`.
#[derive(Debug, Clone, PartialEq)]
pub struct MergePredicate<'a> {
    /// Left comparison operand.
    pub a: &'a Operand,
    /// Right comparison operand.
    pub b: &'a Operand,
    /// Outcome set over `{<, =, >, unordered}` on which the statement
    /// is active.
    mask: u8,
    /// Operand position (within [`Expr::operands`] order) of the
    /// pass-through arm that re-reads the destination.
    pass_idx: usize,
}

const LT: u8 = 1 << 0;
const EQ: u8 = 1 << 1;
const GT: u8 = 1 << 2;
const UNORD: u8 = 1 << 3;

fn cmp_truth_mask(op: CmpOp) -> u8 {
    match op {
        CmpOp::Lt => LT,
        CmpOp::Le => LT | EQ,
        CmpOp::Gt => GT,
        CmpOp::Ge => GT | EQ,
        CmpOp::Eq => EQ,
        // IEEE `!=` is true for unordered operands.
        CmpOp::Ne => LT | GT | UNORD,
    }
}

impl<'a> MergePredicate<'a> {
    /// Extracts the active predicate of `stmt` if it is a merge-form
    /// select (one value arm syntactically equal to the destination).
    pub fn of(stmt: &'a Statement) -> Option<Self> {
        let Expr::Select(op, a, b, t, f) = stmt.expr() else {
            return None;
        };
        let dest = stmt.def();
        // Prefer the false arm: `select(c, v, x)` is the then-merge.
        if *f == dest {
            Some(MergePredicate {
                a,
                b,
                mask: cmp_truth_mask(*op),
                pass_idx: 3,
            })
        } else if *t == dest {
            Some(MergePredicate {
                a,
                b,
                mask: !cmp_truth_mask(*op) & 0xF,
                pass_idx: 2,
            })
        } else {
            None
        }
    }

    /// Whether `self` and `other` can never be active in the same
    /// execution: same comparison operands and disjoint outcome sets.
    /// Sound under NaN because the outcome partition is exhaustive.
    pub fn excludes(&self, other: &MergePredicate<'_>) -> bool {
        self.a == other.a && self.b == other.b && self.mask & other.mask == 0
    }
}

/// Whether `sp` and `sq` are merge-form selects over the *same*
/// destination whose active predicates are mutually exclusive, with the
/// destination read only through each statement's own pass-through arm.
///
/// Such a pair commutes: in any execution at most one statement is
/// active; the inactive one rewrites the destination's current value,
/// which is the same no-op on either side of the active store. The
/// operand-position check rules out the unsound cases — a condition or
/// value arm reading the destination would observe the other statement's
/// store and break the symmetry.
fn exclusive_merge_pair(
    sp: &Statement,
    sq: &Statement,
    loops: &[LoopHeader],
    oracle: &dyn DepOracle,
) -> bool {
    let (Some(p), Some(q)) = (MergePredicate::of(sp), MergePredicate::of(sq)) else {
        return false;
    };
    if sp.def() != sq.def() || !p.excludes(&q) {
        return false;
    }
    // The destination must not alias any other operand of either
    // statement (condition or value arm) — only the pass-through read.
    for (s, pred) in [(sp, &p), (sq, &q)] {
        let dest = s.def();
        for (i, u) in s.expr().operands().into_iter().enumerate() {
            if i != pred.pass_idx && oracle.operands_overlap(&dest, u, loops) {
                return false;
            }
        }
    }
    true
}

/// Whether two operands may denote the same storage location
/// (conservative: no loop-bound context).
pub fn operands_overlap(a: &Operand, b: &Operand) -> bool {
    operands_overlap_in(a, b, &[])
}

/// Loop-bound-aware operand overlap.
pub fn operands_overlap_in(a: &Operand, b: &Operand, loops: &[LoopHeader]) -> bool {
    match (a, b) {
        (Operand::Scalar(x), Operand::Scalar(y)) => x == y,
        (Operand::Array(x), Operand::Array(y)) => refs_overlap_in(x, y, loops),
        _ => false,
    }
}

/// Whether two array references can touch the same element in the *same*
/// iteration, given the enclosing loop bounds.
///
/// Within one execution of a basic block every induction variable holds
/// one value, so the references alias iff their per-dimension difference
/// `Δ(iv) = e₁(iv) − e₂(iv)` is zero for some iteration vector. Two
/// sound disproofs are applied per dimension (a strong-SIV-style test):
///
/// * **GCD:** if `gcd(Δ coefficients) ∤ Δ constant`, `Δ` is never zero;
/// * **interval:** if `[min Δ, max Δ]` over the loop ranges excludes 0,
///   `Δ` is never zero.
///
/// Anything else conservatively aliases.
pub fn refs_overlap_in(x: &ArrayRef, y: &ArrayRef, loops: &[LoopHeader]) -> bool {
    if x.array != y.array {
        return false;
    }
    if x.access.rank() != y.access.rank() {
        return true; // malformed; stay conservative
    }
    for d in 0..x.access.rank() {
        let delta = x.access.dim(d).sub(y.access.dim(d));
        if delta_never_zero(&delta, loops) {
            return false;
        }
    }
    true
}

/// The GCD disproof: `delta` is never zero when it is a non-zero
/// constant, or when the gcd of its coefficients does not divide its
/// constant term. Loop bounds are not consulted, so this is the part of
/// the test a range analysis can go *beyond* (see `slp-analyze`).
pub fn gcd_test_refutes_zero(delta: &AffineExpr) -> bool {
    if delta.is_constant() {
        return delta.constant() != 0;
    }
    let mut g: i64 = 0;
    for (_, c) in delta.terms() {
        g = numeric::gcd(g, c);
    }
    g != 0 && delta.constant() % g != 0
}

/// Whether `delta` is provably non-zero over the loop iteration space:
/// the GCD disproof, then an interval disproof over the loop ranges
/// (which needs bounds for every variable of `delta`; an unknown range
/// or zero-trip loop stays conservative).
fn delta_never_zero(delta: &AffineExpr, loops: &[LoopHeader]) -> bool {
    if gcd_test_refutes_zero(delta) {
        return true;
    }
    if delta.is_constant() {
        return false; // constant zero
    }
    match numeric::interval_in(delta, loops) {
        Some((lo, hi)) => lo > 0 || hi < 0,
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::affine::{AccessVector, AffineExpr};
    use crate::expr::{ArrayRef, BinOp, Expr};
    use crate::ids::{ArrayId, LoopVarId, VarId};
    use crate::stmt::Statement;

    fn v(i: u32) -> Operand {
        Operand::Scalar(VarId::new(i))
    }

    fn aref(cst: i64) -> ArrayRef {
        ArrayRef::new(
            ArrayId::new(0),
            AccessVector::new(vec![AffineExpr::var(LoopVarId::new(0))
                .scaled(2)
                .offset(cst)]),
        )
    }

    fn bb(stmts: Vec<(u32, Operand, Expr)>) -> BasicBlock {
        stmts
            .into_iter()
            .map(|(id, dst, e)| {
                let dest = match dst {
                    Operand::Scalar(v) => v.into(),
                    Operand::Array(r) => r.into(),
                    Operand::Const(_) => panic!("const dest"),
                };
                Statement::new(StmtId::new(id), dest, e)
            })
            .collect()
    }

    #[test]
    fn raw_war_waw_detection() {
        // S0: v0 = v1 + v2
        // S1: v3 = v0 + v2   (RAW S0->S1 on v0)
        // S2: v1 = v3 + v3   (WAR S0->S2 on v1; RAW S1->S2 on v3)
        // S3: v1 = v2 + v2   (WAW S2->S3 on v1; WAR S0->S3)
        let block = bb(vec![
            (0, v(0), Expr::Binary(BinOp::Add, v(1), v(2))),
            (1, v(3), Expr::Binary(BinOp::Add, v(0), v(2))),
            (2, v(1), Expr::Binary(BinOp::Add, v(3), v(3))),
            (3, v(1), Expr::Binary(BinOp::Add, v(2), v(2))),
        ]);
        let d = BlockDeps::analyze(&block);
        let has = |s: u32, t: u32, k: DepKind| {
            d.direct()
                .iter()
                .any(|dep| dep.src == StmtId::new(s) && dep.dst == StmtId::new(t) && dep.kind == k)
        };
        assert!(has(0, 1, DepKind::Raw));
        assert!(has(0, 2, DepKind::War));
        assert!(has(1, 2, DepKind::Raw));
        assert!(has(2, 3, DepKind::Waw));
        assert!(!has(1, 3, DepKind::Raw));
    }

    #[test]
    fn transitive_closure() {
        // S0 -> S1 -> S2, no direct S0 -> S2.
        let block = bb(vec![
            (0, v(0), Expr::Copy(v(5))),
            (1, v(1), Expr::Copy(v(0))),
            (2, v(2), Expr::Copy(v(1))),
        ]);
        let d = BlockDeps::analyze(&block);
        assert!(d.depends(StmtId::new(0), StmtId::new(2)));
        assert!(!d.depends_directly(StmtId::new(0), StmtId::new(2)));
        assert!(!d.depends(StmtId::new(2), StmtId::new(0)));
    }

    #[test]
    fn array_refs_with_distinct_constants_are_independent() {
        // A[2i] = v0;  A[2i+1] = v0  -> provably disjoint, no dependence.
        let block = bb(vec![
            (0, Operand::Array(aref(0)), Expr::Copy(v(0))),
            (1, Operand::Array(aref(1)), Expr::Copy(v(0))),
        ]);
        let d = BlockDeps::analyze(&block);
        assert!(d.independent(StmtId::new(0), StmtId::new(1)));
    }

    #[test]
    fn aliasing_array_refs_depend() {
        // A[2i] = v0;  v1 = A[2i]  -> RAW.
        let block = bb(vec![
            (0, Operand::Array(aref(0)), Expr::Copy(v(0))),
            (1, v(1), Expr::Copy(Operand::Array(aref(0)))),
        ]);
        let d = BlockDeps::analyze(&block);
        assert!(d.depends(StmtId::new(0), StmtId::new(1)));
    }

    #[test]
    fn group_cycle_detection() {
        // S0: v0 = v4;      S1: v1 = v0;  (S0 -> S1)
        // S2: v2 = v1;      S3: v3 = v2;  (S1 -> S2 -> S3)
        // Grouping {S0,S3} and {S1,S2}: {S0,S3} -> via S0->S1, and
        // {S1,S2} -> via S2->S3: cycle.
        let block = bb(vec![
            (0, v(0), Expr::Copy(v(4))),
            (1, v(1), Expr::Copy(v(0))),
            (2, v(2), Expr::Copy(v(1))),
            (3, v(3), Expr::Copy(v(2))),
        ]);
        let d = BlockDeps::analyze(&block);
        let s = StmtId::new;
        assert!(d.groups_form_cycle((s(0), s(3)), (s(1), s(2))));
        // {S0,S1} vs {S2,S3} is one-directional: no cycle.
        assert!(!d.groups_form_cycle((s(0), s(1)), (s(2), s(3))));
        assert!(d.sets_form_cycle(&[s(0), s(3)], &[s(1), s(2)]));
        assert!(!d.sets_form_cycle(&[s(0), s(1)], &[s(2), s(3)]));
    }

    #[test]
    fn all_independent_set() {
        let block = bb(vec![
            (0, v(0), Expr::Copy(v(4))),
            (1, v(1), Expr::Copy(v(4))),
            (2, v(2), Expr::Copy(v(0))),
        ]);
        let d = BlockDeps::analyze(&block);
        let s = StmtId::new;
        assert!(d.all_independent(&[s(0), s(1)]));
        assert!(!d.all_independent(&[s(0), s(1), s(2)]));
    }

    #[test]
    fn bound_aware_aliasing_disproves_disjoint_linear_parts() {
        use crate::affine::{AccessVector, AffineExpr};
        use crate::ids::{ArrayId, LoopVarId};
        let i = LoopVarId::new(0);
        let at = |coeff: i64, cst: i64| {
            crate::expr::ArrayRef::new(
                ArrayId::new(0),
                AccessVector::new(vec![AffineExpr::var(i).scaled(coeff).offset(cst)]),
            )
        };
        let h = LoopHeader {
            var: i,
            lower: 1,
            upper: 16,
            step: 1,
        };
        // A[i] vs A[2i]: Δ = i, which is ≥ 1 over [1, 15]: no alias.
        assert!(!refs_overlap_in(&at(1, 0), &at(2, 0), &[h]));
        // Without bounds the same pair stays conservative.
        assert!(refs_overlap_in(&at(1, 0), &at(2, 0), &[]));
        // A[2i] vs A[4i+1]: Δ = 2i+1, odd — the GCD disproof works even
        // without bounds.
        assert!(!refs_overlap_in(&at(2, 0), &at(4, 1), &[]));
        // A[i] vs A[2i-4]: Δ = 4 - i crosses zero at i = 4: alias.
        assert!(refs_overlap_in(&at(1, 0), &at(2, -4), &[h]));
        // Zero-trip loop: conservative.
        let dead = LoopHeader {
            var: i,
            lower: 4,
            upper: 4,
            step: 1,
        };
        assert!(refs_overlap_in(&at(1, 0), &at(2, 0), &[dead]));
    }

    #[test]
    fn analyze_in_removes_provably_disjoint_dependences() {
        use crate::affine::{AccessVector, AffineExpr};
        use crate::ids::{ArrayId, LoopVarId, VarId};
        let i = LoopVarId::new(0);
        let at = |coeff: i64, cst: i64| {
            crate::expr::ArrayRef::new(
                ArrayId::new(0),
                AccessVector::new(vec![AffineExpr::var(i).scaled(coeff).offset(cst)]),
            )
        };
        // v = A[i];  A[2i] = v   with i in [1, 16): store never touches
        // the loaded element in the same iteration.
        let s0 = Statement::new(
            StmtId::new(0),
            VarId::new(0).into(),
            Expr::Copy(Operand::Array(at(1, 0))),
        );
        let s1 = Statement::new(StmtId::new(1), at(2, 0).into(), Expr::Copy(v(0)));
        let bb: BasicBlock = [s0, s1].into_iter().collect();
        let h = LoopHeader {
            var: i,
            lower: 1,
            upper: 16,
            step: 1,
        };
        let conservative = BlockDeps::analyze(&bb);
        // Conservative analysis keeps a WAR between load and store...
        assert!(conservative.depends(StmtId::new(0), StmtId::new(1)));
        // ...which the RAW through v overlays; check the array edge via
        // the refined analysis instead: only the scalar RAW remains.
        let refined = BlockDeps::analyze_in(&bb, &[h]);
        let kinds: Vec<DepKind> = refined.direct().iter().map(|d| d.kind).collect();
        assert_eq!(
            kinds,
            vec![DepKind::Raw],
            "only v's flow dependence survives"
        );
    }

    #[test]
    fn exclusive_merge_pair_is_reorderable_but_not_independent() {
        use crate::expr::CmpOp;
        // The shape if-conversion emits for `if v1 < v2 { x=v3 } else { x=v4 }`:
        //   S0: x = select(v1 < v2, v3, x)   (active when true)
        //   S1: x = select(v1 < v2, x, v4)   (active when false)
        let x = v(0);
        let block = bb(vec![
            (
                0,
                x.clone(),
                Expr::Select(CmpOp::Lt, v(1), v(2), v(3), x.clone()),
            ),
            (
                1,
                x.clone(),
                Expr::Select(CmpOp::Lt, v(1), v(2), x.clone(), v(4)),
            ),
        ]);
        let d = BlockDeps::analyze(&block);
        let (s0, s1) = (StmtId::new(0), StmtId::new(1));
        // The RAW/WAR/WAW edges on x are still reported (packing must
        // never place both lanes of one superword on the same scalar)...
        assert!(d.depends(s0, s1));
        assert!(!d.independent(s0, s1));
        // ...but the pair commutes for scheduling purposes.
        assert!(d.reorderable(s0, s1));
        assert!(d.reorderable(s1, s0));
    }

    #[test]
    fn overlapping_predicates_are_not_reorderable() {
        use crate::expr::CmpOp;
        // Lt and Le can both hold (strictly less): not exclusive.
        let x = v(0);
        let block = bb(vec![
            (
                0,
                x.clone(),
                Expr::Select(CmpOp::Lt, v(1), v(2), v(3), x.clone()),
            ),
            (
                1,
                x.clone(),
                Expr::Select(CmpOp::Le, v(1), v(2), v(4), x.clone()),
            ),
        ]);
        let d = BlockDeps::analyze(&block);
        assert!(!d.reorderable(StmtId::new(0), StmtId::new(1)));
    }

    #[test]
    fn ne_predicate_fires_on_nan_so_eq_merge_does_not_commute_with_ordered() {
        use crate::expr::CmpOp;
        // `v1 != v2` is true for NaN operands; `!(v1 < v2)` also holds
        // there, so a then-merge on Ne and an else-merge on Lt can both
        // be active — must NOT be reorderable.
        let x = v(0);
        let block = bb(vec![
            (
                0,
                x.clone(),
                Expr::Select(CmpOp::Ne, v(1), v(2), v(3), x.clone()),
            ),
            (
                1,
                x.clone(),
                Expr::Select(CmpOp::Lt, v(1), v(2), x.clone(), v(4)),
            ),
        ]);
        let d = BlockDeps::analyze(&block);
        assert!(!d.reorderable(StmtId::new(0), StmtId::new(1)));
        // Eq/Ne over the same operands partition all four outcomes:
        // exclusive, hence reorderable.
        let block = bb(vec![
            (
                0,
                x.clone(),
                Expr::Select(CmpOp::Eq, v(1), v(2), v(3), x.clone()),
            ),
            (
                1,
                x.clone(),
                Expr::Select(CmpOp::Ne, v(1), v(2), v(4), x.clone()),
            ),
        ]);
        let d = BlockDeps::analyze(&block);
        assert!(d.reorderable(StmtId::new(0), StmtId::new(1)));
    }

    #[test]
    fn destination_in_condition_or_value_arm_blocks_commuting() {
        use crate::expr::CmpOp;
        let x = v(0);
        // Condition reads the destination: S1's guard would observe
        // S0's store.
        let block = bb(vec![
            (
                0,
                x.clone(),
                Expr::Select(CmpOp::Lt, x.clone(), v(2), v(3), x.clone()),
            ),
            (
                1,
                x.clone(),
                Expr::Select(CmpOp::Lt, x.clone(), v(2), x.clone(), v(4)),
            ),
        ]);
        let d = BlockDeps::analyze(&block);
        assert!(!d.reorderable(StmtId::new(0), StmtId::new(1)));
        // Value arm reads the destination.
        let block = bb(vec![
            (
                0,
                x.clone(),
                Expr::Select(CmpOp::Lt, v(1), v(2), x.clone(), x.clone()),
            ),
            (
                1,
                x.clone(),
                Expr::Select(CmpOp::Lt, v(1), v(2), x.clone(), v(4)),
            ),
        ]);
        let d = BlockDeps::analyze(&block);
        assert!(!d.reorderable(StmtId::new(0), StmtId::new(1)));
    }

    #[test]
    fn merge_predicate_extraction() {
        use crate::expr::CmpOp;
        let x = v(0);
        let s = Statement::new(
            StmtId::new(0),
            VarId::new(0).into(),
            Expr::Select(CmpOp::Ge, v(1), v(2), v(3), x.clone()),
        );
        let p = MergePredicate::of(&s).expect("merge form");
        assert_eq!(p.a, &v(1));
        // A select whose arms never read the destination has no merge
        // predicate.
        let s = Statement::new(
            StmtId::new(1),
            VarId::new(0).into(),
            Expr::Select(CmpOp::Ge, v(1), v(2), v(3), v(4)),
        );
        assert!(MergePredicate::of(&s).is_none());
    }

    #[test]
    fn bitmatrix_wide() {
        // Exercise multi-word rows (n > 64).
        let mut m = BitMatrix::new(130);
        m.set(0, 64);
        m.set(64, 129);
        m.close_transitively();
        assert!(m.get(0, 129));
        assert!(!m.get(129, 0));
    }
}
