//! Alignment and contiguity analysis.
//!
//! The pre-processing stage performs alignment analysis (§3, Figure 3) so
//! the later cost model can distinguish a single aligned vector load from a
//! gather of scalar loads plus register inserts. Array base addresses are
//! assumed to be aligned to the widest vector width in play, matching the
//! usual `attribute((aligned(16)))` discipline of hand-tuned SSE code.

use crate::affine::AffineExpr;
use crate::expr::ArrayRef;
use crate::numeric::gcd;
use crate::program::{LoopHeader, Program};

/// Whether the byte offset `elem_size * expr` is guaranteed to be a
/// multiple of `align_bytes` for every value of the loop variables.
///
/// This holds iff every coefficient and the constant term scale to
/// multiples of the alignment.
///
/// # Examples
///
/// ```
/// use slp_ir::{AffineExpr, LoopVarId, is_aligned};
///
/// let i = LoopVarId::new(0);
/// // 2i with 8-byte elements is 16-byte aligned for every i; 2i+1 is not.
/// assert!(is_aligned(&AffineExpr::var(i).scaled(2), 8, 16));
/// assert!(!is_aligned(&AffineExpr::var(i).scaled(2).offset(1), 8, 16));
/// ```
pub fn is_aligned(expr: &AffineExpr, elem_size: u32, align_bytes: u32) -> bool {
    let m = i64::from(align_bytes);
    let e = i64::from(elem_size);
    if m <= e {
        return true;
    }
    expr.terms().all(|(_, c)| (c * e) % m == 0) && (expr.constant() * e) % m == 0
}

/// The largest power-of-two byte alignment (up to `max_align`) that
/// `elem_size * expr` is guaranteed to have.
pub fn guaranteed_alignment(expr: &AffineExpr, elem_size: u32, max_align: u32) -> u32 {
    let e = i64::from(elem_size);
    let mut g = i64::from(max_align);
    for (_, c) in expr.terms() {
        g = gcd(g, c * e);
    }
    g = gcd(
        g,
        if expr.constant() == 0 {
            g
        } else {
            expr.constant() * e
        },
    );
    // Largest power of two dividing g, capped at max_align.
    let mut a = 1i64;
    while a * 2 <= g && g % (a * 2) == 0 && a * 2 <= i64::from(max_align) {
        a *= 2;
    }
    a as u32
}

/// Whether the references form a *contiguous ascending pack*: same array,
/// identical subscripts in every outer dimension, and innermost subscripts
/// that differ by exactly `0, 1, 2, ...` from the first reference.
///
/// Such a pack can be loaded with one vector memory operation (if also
/// aligned); anything else needs scalar loads plus register inserts.
pub fn pack_is_contiguous(refs: &[&ArrayRef]) -> bool {
    let Some(first) = refs.first() else {
        return false;
    };
    let rank = first.access.rank();
    refs.iter().enumerate().all(|(k, r)| {
        r.array == first.array
            && r.access.rank() == rank
            && (0..rank - 1).all(|d| r.access.dim(d) == first.access.dim(d))
            && first
                .access
                .dim(rank - 1)
                .constant_difference(r.access.dim(rank - 1))
                == Some(k as i64)
    })
}

/// Loop-aware variant of [`is_aligned`]: induction variables found in
/// `loops` only take the values `lower, lower+step, ...`, so their
/// effective coefficient is `c·step` with a base shift of `c·lower`. This
/// is what makes `A[i]` with `i` stepping by 2 (an unrolled loop) provably
/// 16-byte aligned for f64.
pub fn is_aligned_in(
    expr: &AffineExpr,
    elem_size: u32,
    align_bytes: u32,
    loops: &[LoopHeader],
) -> bool {
    let m = i64::from(align_bytes);
    let e = i64::from(elem_size);
    if m <= e {
        return true;
    }
    let mut base = expr.constant();
    for (v, c) in expr.terms() {
        match loops.iter().find(|h| h.var == v) {
            Some(h) => {
                if (c * h.step * e) % m != 0 {
                    return false;
                }
                base += c * h.lower;
            }
            None => {
                if (c * e) % m != 0 {
                    return false;
                }
            }
        }
    }
    (base * e) % m == 0
}

/// Whether a contiguous pack starting at `refs[0]` is aligned to the full
/// pack width in `program`'s memory layout.
pub fn pack_is_aligned(refs: &[&ArrayRef], program: &Program) -> bool {
    pack_is_aligned_in(refs, program, &[])
}

/// Loop-aware variant of [`pack_is_aligned`] (see [`is_aligned_in`]).
pub fn pack_is_aligned_in(refs: &[&ArrayRef], program: &Program, loops: &[LoopHeader]) -> bool {
    let Some(first) = refs.first() else {
        return false;
    };
    let info = program.array(first.array);
    let elem = info.ty.size_bytes();
    let width = elem * refs.len() as u32;
    // Only the innermost dimension varies within a pack; outer dims
    // contribute multiples of the innermost extent, which we require to be
    // a multiple of the pack lane count for alignment to be guaranteed.
    let rank = first.access.rank();
    if rank > 1 {
        let inner_extent = *info.dims.last().expect("array has dims");
        if (inner_extent * i64::from(elem)) % i64::from(width) != 0 {
            return false;
        }
    }
    is_aligned_in(first.access.dim(rank - 1), elem, width, loops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::affine::AccessVector;
    use crate::ids::{ArrayId, LoopVarId};
    use crate::types::ScalarType;

    fn i() -> LoopVarId {
        LoopVarId::new(0)
    }

    fn r1(coeff: i64, cst: i64) -> ArrayRef {
        ArrayRef::new(
            ArrayId::new(0),
            AccessVector::new(vec![AffineExpr::var(i()).scaled(coeff).offset(cst)]),
        )
    }

    #[test]
    fn guaranteed_alignment_values() {
        // 4i with f32 (4 bytes): offsets are multiples of 16.
        assert_eq!(
            guaranteed_alignment(&AffineExpr::var(i()).scaled(4), 4, 64),
            16
        );
        // 4i + 2 with f32: multiples of 8 only.
        assert_eq!(
            guaranteed_alignment(&AffineExpr::var(i()).scaled(4).offset(2), 4, 64),
            8
        );
        // Constant 0 is aligned to anything.
        assert_eq!(
            guaranteed_alignment(&AffineExpr::constant_expr(0), 8, 32),
            32
        );
    }

    #[test]
    fn contiguous_pack_detection() {
        let a0 = r1(2, 0);
        let a1 = r1(2, 1);
        let a2 = r1(2, 2);
        assert!(pack_is_contiguous(&[&a0, &a1]));
        assert!(pack_is_contiguous(&[&a0, &a1, &a2]));
        // Descending or gapped packs are not contiguous.
        assert!(!pack_is_contiguous(&[&a1, &a0]));
        assert!(!pack_is_contiguous(&[&a0, &a2]));
        // Different linear parts are not contiguous.
        let b = r1(4, 1);
        assert!(!pack_is_contiguous(&[&a0, &b]));
        assert!(!pack_is_contiguous(&[]));
    }

    #[test]
    fn multi_dim_contiguity_requires_equal_outer_dims() {
        let a = ArrayRef::new(
            ArrayId::new(0),
            AccessVector::new(vec![AffineExpr::var(i()), AffineExpr::constant_expr(0)]),
        );
        let b = ArrayRef::new(
            ArrayId::new(0),
            AccessVector::new(vec![AffineExpr::var(i()), AffineExpr::constant_expr(1)]),
        );
        let c = ArrayRef::new(
            ArrayId::new(0),
            AccessVector::new(vec![
                AffineExpr::var(i()).offset(1),
                AffineExpr::constant_expr(1),
            ]),
        );
        assert!(pack_is_contiguous(&[&a, &b]));
        assert!(!pack_is_contiguous(&[&a, &c]));
    }

    #[test]
    fn loop_aware_alignment_uses_step_and_lower() {
        let i = LoopVarId::new(0);
        let h = |lower: i64, step: i64| crate::program::LoopHeader {
            var: i,
            lower,
            upper: 1 << 20,
            step,
        };
        // A[i] with i stepping by 2 is 16-byte aligned for f64.
        let e = AffineExpr::var(i);
        assert!(!is_aligned(&e, 8, 16));
        assert!(is_aligned_in(&e, 8, 16, &[h(0, 2)]));
        // ... but not when the loop starts at an odd element.
        assert!(!is_aligned_in(&e, 8, 16, &[h(1, 2)]));
        // Unknown variables stay conservative.
        assert!(!is_aligned_in(&e, 8, 16, &[]));
    }

    #[test]
    fn aligned_pack() {
        let mut p = Program::new("t");
        let arr = p.add_array("A", ScalarType::F64, vec![64], true);
        let i = p.add_loop_var("i");
        let at = |coeff: i64, cst: i64| {
            ArrayRef::new(
                arr,
                AccessVector::new(vec![AffineExpr::var(i).scaled(coeff).offset(cst)]),
            )
        };
        // <A[2i], A[2i+1]> with f64: 16-byte pack, always aligned.
        let (a, b) = (at(2, 0), at(2, 1));
        assert!(pack_is_aligned(&[&a, &b], &p));
        // <A[2i+1], A[2i+2]> starts at odd element: misaligned.
        let (c, d) = (at(2, 1), at(2, 2));
        assert!(!pack_is_aligned(&[&c, &d], &p));
        // <A[i], ...>: coefficient 1 cannot guarantee 16-byte alignment.
        let (e, f) = (at(1, 0), at(1, 1));
        assert!(!pack_is_aligned(&[&e, &f], &p));
    }
}
