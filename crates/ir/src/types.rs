//! Scalar element types supported by the IR.
//!
//! The paper targets SSE/SSE2-class multimedia extensions whose 128-bit
//! registers hold two 64-bit, four 32-bit, eight 16-bit or sixteen 8-bit
//! operands. The element type of an operand therefore determines how many
//! lanes a superword statement occupies on a given datapath.

use std::fmt;

/// The scalar element type of a variable, array element or constant.
///
/// # Examples
///
/// ```
/// use slp_ir::ScalarType;
///
/// assert_eq!(ScalarType::F32.size_bytes(), 4);
/// assert_eq!(ScalarType::F64.lanes_for_datapath(128), 2);
/// assert_eq!(ScalarType::I16.lanes_for_datapath(128), 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ScalarType {
    /// 8-bit signed integer.
    I8,
    /// 16-bit signed integer.
    I16,
    /// 32-bit signed integer.
    I32,
    /// 64-bit signed integer.
    I64,
    /// 32-bit IEEE-754 float.
    F32,
    /// 64-bit IEEE-754 float.
    F64,
}

impl ScalarType {
    /// Width of one element of this type in bytes.
    pub fn size_bytes(self) -> u32 {
        match self {
            ScalarType::I8 => 1,
            ScalarType::I16 => 2,
            ScalarType::I32 => 4,
            ScalarType::I64 => 8,
            ScalarType::F32 => 4,
            ScalarType::F64 => 8,
        }
    }

    /// Width of one element of this type in bits.
    pub fn size_bits(self) -> u32 {
        self.size_bytes() * 8
    }

    /// Number of lanes of this type that fit in a datapath of
    /// `datapath_bits` bits.
    ///
    /// Returns at least 1 even for degenerate datapaths narrower than the
    /// element itself, so callers can treat the result as a group-size cap.
    pub fn lanes_for_datapath(self, datapath_bits: u32) -> usize {
        ((datapath_bits / self.size_bits()) as usize).max(1)
    }

    /// Whether this is a floating-point type.
    pub fn is_float(self) -> bool {
        matches!(self, ScalarType::F32 | ScalarType::F64)
    }

    /// Whether this is an integer type.
    pub fn is_int(self) -> bool {
        !self.is_float()
    }

    /// Coerces a computed value to this element type's storage semantics:
    /// floats pass through (`f32` storage is modelled at `f64`
    /// precision), integer types truncate toward zero and wrap to their
    /// width, exactly once per store.
    pub fn coerce(self, v: f64) -> f64 {
        match self {
            ScalarType::F32 | ScalarType::F64 => v,
            ScalarType::I8 => (v.trunc() as i64 as i8) as f64,
            ScalarType::I16 => (v.trunc() as i64 as i16) as f64,
            ScalarType::I32 => (v.trunc() as i64 as i32) as f64,
            ScalarType::I64 => v.trunc(),
        }
    }

    /// All supported scalar types, widest float first (handy for tests).
    pub fn all() -> [ScalarType; 6] {
        [
            ScalarType::F64,
            ScalarType::F32,
            ScalarType::I64,
            ScalarType::I32,
            ScalarType::I16,
            ScalarType::I8,
        ]
    }
}

impl fmt::Display for ScalarType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ScalarType::I8 => "i8",
            ScalarType::I16 => "i16",
            ScalarType::I32 => "i32",
            ScalarType::I64 => "i64",
            ScalarType::F32 => "f32",
            ScalarType::F64 => "f64",
        };
        f.write_str(s)
    }
}

impl Default for ScalarType {
    /// Defaults to [`ScalarType::F64`], the paper's dominant benchmark type
    /// (SPEC2006 floating point).
    fn default() -> Self {
        ScalarType::F64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_are_powers_of_two() {
        for t in ScalarType::all() {
            assert!(t.size_bytes().is_power_of_two());
        }
    }

    #[test]
    fn lanes_match_sse2_expectations() {
        // The 128-bit SSE2 lane counts quoted in the paper.
        assert_eq!(ScalarType::F64.lanes_for_datapath(128), 2);
        assert_eq!(ScalarType::F32.lanes_for_datapath(128), 4);
        assert_eq!(ScalarType::I16.lanes_for_datapath(128), 8);
        assert_eq!(ScalarType::I8.lanes_for_datapath(128), 16);
    }

    #[test]
    fn lanes_never_zero() {
        assert_eq!(ScalarType::F64.lanes_for_datapath(32), 1);
    }

    #[test]
    fn lanes_scale_with_width() {
        // Figure 18 sweeps the hypothetical datapath width up to 1024 bits.
        assert_eq!(ScalarType::F64.lanes_for_datapath(1024), 16);
        assert_eq!(ScalarType::F32.lanes_for_datapath(512), 16);
    }

    #[test]
    fn display_round_trip_names() {
        assert_eq!(ScalarType::F32.to_string(), "f32");
        assert_eq!(ScalarType::I64.to_string(), "i64");
    }

    #[test]
    fn coerce_truncates_and_wraps_integers() {
        assert_eq!(ScalarType::I32.coerce(3.9), 3.0);
        assert_eq!(ScalarType::I32.coerce(-3.9), -3.0);
        assert_eq!(ScalarType::I8.coerce(130.0), -126.0); // wraps at 8 bits
        assert_eq!(ScalarType::F64.coerce(3.9), 3.9);
        assert_eq!(ScalarType::I64.coerce(2.5), 2.0);
    }

    #[test]
    fn float_int_partition() {
        for t in ScalarType::all() {
            assert!(t.is_float() != t.is_int());
        }
    }
}
