//! # slp-ir — the intermediate representation substrate
//!
//! A small typed compiler IR in the spirit of the SUIF infrastructure the
//! paper built on: programs of counted loops over three-address statements
//! whose array subscripts are affine functions of the loop indices.
//!
//! The crate provides everything the SLP optimizers in `slp-core` consume:
//!
//! * symbol tables, scalar/array/loop-variable ids ([`Program`]),
//! * affine index algebra ([`AffineExpr`], [`AccessVector`] — Eq. (1) of
//!   the paper),
//! * statements, isomorphism testing and basic blocks ([`Statement`],
//!   [`BasicBlock`]),
//! * intra-block dependence analysis with transitive closure
//!   ([`BlockDeps`]),
//! * the pre-processing passes: loop unrolling ([`unroll_program`]) and
//!   alignment/contiguity analysis ([`is_aligned`], [`pack_is_contiguous`],
//!   [`pack_is_aligned`]).
//!
//! # Examples
//!
//! Build part of the paper's Figure 2 example block and check a dependence:
//!
//! ```
//! use slp_ir::{Program, ScalarType, Expr, BinOp, BasicBlock, BlockDeps};
//!
//! let mut p = Program::new("fig2");
//! let v: Vec<_> = (1..=7).map(|k| p.add_scalar(format!("V{k}"), ScalarType::F32)).collect();
//! // S1: V1 = V3;  S3: V5 = V7;  S5: V3 = V1 + V5  (paper, Figure 2)
//! let s1 = p.make_stmt(v[0].into(), Expr::Copy(v[2].into()));
//! let s3 = p.make_stmt(v[4].into(), Expr::Copy(v[6].into()));
//! let s5 = p.make_stmt(v[2].into(), Expr::Binary(BinOp::Add, v[0].into(), v[4].into()));
//! let bb: BasicBlock = [s1.clone(), s3, s5.clone()].into_iter().collect();
//! let deps = BlockDeps::analyze(&bb);
//! assert!(deps.depends(s1.id(), s5.id())); // V1 flows into S5
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod affine;
mod align;
mod block;
mod deps;
mod emit;
mod expr;
mod ids;
pub mod numeric;
mod program;
mod stmt;
mod types;
mod unroll;
mod validate;

pub use affine::{AccessVector, AffineExpr};
pub use align::{
    guaranteed_alignment, is_aligned, is_aligned_in, pack_is_aligned, pack_is_aligned_in,
    pack_is_contiguous,
};
pub use block::BasicBlock;
pub use deps::{
    gcd_test_refutes_zero, operands_overlap, operands_overlap_in, refs_overlap_in, AffineOverlap,
    BlockDeps, DepKind, DepOracle, Dependence, MergePredicate,
};
pub use expr::{
    ArrayRef, BinOp, CmpOp, Dest, Expr, ExprShape, Operand, OperandKind, TypeEnv, UnOp,
};
pub use ids::{ArrayId, LoopVarId, StmtId, VarId};
pub use program::{ArrayInfo, BlockId, BlockInfo, Item, Loop, LoopHeader, Program, ScalarInfo};
pub use stmt::Statement;
pub use types::ScalarType;
pub use unroll::unroll_program;
pub use validate::ValidationError;
