//! Interned identifiers for IR entities.
//!
//! All names in a [`Program`](crate::Program) are interned into dense
//! integer ids so analyses can use them as vector indices and store them in
//! copyable graph nodes.

use std::fmt;

macro_rules! define_id {
    ($(#[$meta:meta])* $name:ident, $prefix:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(u32);

        impl $name {
            /// Creates an id from its dense index.
            pub fn new(index: u32) -> Self {
                $name(index)
            }

            /// The dense index backing this id.
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$name> for usize {
            fn from(id: $name) -> usize {
                id.index()
            }
        }
    };
}

define_id!(
    /// A scalar variable in a program's symbol table.
    VarId,
    "v"
);
define_id!(
    /// An array in a program's symbol table.
    ArrayId,
    "A"
);
define_id!(
    /// A loop induction variable.
    LoopVarId,
    "i"
);
define_id!(
    /// A statement within a basic block. Ids are unique program-wide and
    /// stable across transformation passes so analyses can refer back to
    /// original statements.
    StmtId,
    "S"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip() {
        let v = VarId::new(7);
        assert_eq!(v.index(), 7);
        assert_eq!(v.to_string(), "v7");
        assert_eq!(usize::from(v), 7);
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(StmtId::new(1) < StmtId::new(2));
        assert_eq!(ArrayId::new(3), ArrayId::new(3));
    }

    #[test]
    fn display_prefixes_distinguish_kinds() {
        assert_eq!(ArrayId::new(0).to_string(), "A0");
        assert_eq!(LoopVarId::new(2).to_string(), "i2");
        assert_eq!(StmtId::new(9).to_string(), "S9");
    }
}
