//! Statements: the unit the SLP optimizer groups and schedules.

use std::fmt;

use crate::expr::{Dest, Expr, Operand, TypeEnv};
use crate::ids::StmtId;

/// A single three-address statement `dest = expr`.
///
/// Statements carry a program-wide unique [`StmtId`], stable across passes,
/// so graphs built by the analyses can refer to statements by value.
///
/// # Examples
///
/// ```
/// use slp_ir::{Statement, StmtId, Expr, BinOp, VarId, Operand};
///
/// let s = Statement::new(
///     StmtId::new(0),
///     VarId::new(0).into(),
///     Expr::Binary(BinOp::Add, VarId::new(1).into(), Operand::Const(1.0)),
/// );
/// assert_eq!(s.to_string(), "S0: v0 = v1 + 1");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Statement {
    id: StmtId,
    dest: Dest,
    expr: Expr,
}

impl Statement {
    /// Creates a statement.
    pub fn new(id: StmtId, dest: Dest, expr: Expr) -> Self {
        Statement { id, dest, expr }
    }

    /// The statement's stable id.
    pub fn id(&self) -> StmtId {
        self.id
    }

    /// The destination written by this statement.
    pub fn dest(&self) -> &Dest {
        &self.dest
    }

    /// Mutable access to the destination (used by layout rewriting).
    pub fn dest_mut(&mut self) -> &mut Dest {
        &mut self.dest
    }

    /// The right-hand-side expression.
    pub fn expr(&self) -> &Expr {
        &self.expr
    }

    /// Mutable access to the expression (used by layout rewriting).
    pub fn expr_mut(&mut self) -> &mut Expr {
        &mut self.expr
    }

    /// The location written (defined) by this statement, as an operand.
    pub fn def(&self) -> Operand {
        self.dest.as_operand()
    }

    /// The locations read (used) by this statement, in positional order,
    /// excluding constants.
    pub fn uses(&self) -> Vec<&Operand> {
        self.expr
            .operands()
            .into_iter()
            .filter(|o| o.is_location())
            .collect()
    }

    /// Whether `self` and `other` are isomorphic under the §4.1 definition:
    /// same operations in the same order, and operands in corresponding
    /// positions of the same kind and element type (destination included:
    /// both sides of a superword statement are vectorized together).
    pub fn isomorphic<E: TypeEnv>(&self, other: &Statement, env: &E) -> bool {
        if self.expr.shape() != other.expr.shape() {
            return false;
        }
        if self.dest.kind() != other.dest.kind()
            || env.dest_type(&self.dest) != env.dest_type(&other.dest)
        {
            return false;
        }
        let a = self.expr.operands();
        let b = other.expr.operands();
        debug_assert_eq!(a.len(), b.len());
        a.iter()
            .zip(&b)
            .all(|(x, y)| x.kind() == y.kind() && env.operand_type(x) == env.operand_type(y))
    }
}

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {} = {}", self.id, self.dest, self.expr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::affine::{AccessVector, AffineExpr};
    use crate::expr::{ArrayRef, BinOp};
    use crate::ids::{ArrayId, LoopVarId, VarId};
    use crate::types::ScalarType;

    struct UniformEnv;
    impl TypeEnv for UniformEnv {
        fn scalar_type(&self, _: VarId) -> ScalarType {
            ScalarType::F64
        }
        fn array_type(&self, _: ArrayId) -> ScalarType {
            ScalarType::F64
        }
    }

    struct MixedEnv;
    impl TypeEnv for MixedEnv {
        fn scalar_type(&self, v: VarId) -> ScalarType {
            if v.index() < 2 {
                ScalarType::F32
            } else {
                ScalarType::F64
            }
        }
        fn array_type(&self, _: ArrayId) -> ScalarType {
            ScalarType::F64
        }
    }

    fn aref(cst: i64) -> ArrayRef {
        ArrayRef::new(
            ArrayId::new(0),
            AccessVector::new(vec![AffineExpr::var(LoopVarId::new(0)).offset(cst)]),
        )
    }

    fn stmt(id: u32, dst: u32, a: u32, b: u32, op: BinOp) -> Statement {
        Statement::new(
            StmtId::new(id),
            VarId::new(dst).into(),
            Expr::Binary(op, VarId::new(a).into(), VarId::new(b).into()),
        )
    }

    #[test]
    fn def_and_uses() {
        let s = Statement::new(
            StmtId::new(0),
            aref(0).into(),
            Expr::Binary(BinOp::Add, VarId::new(1).into(), Operand::Const(1.0)),
        );
        assert_eq!(s.def(), Operand::Array(aref(0)));
        // Constants are not uses.
        assert_eq!(s.uses(), vec![&Operand::Scalar(VarId::new(1))]);
    }

    #[test]
    fn isomorphism_same_shape_same_kinds() {
        let s1 = stmt(0, 0, 2, 3, BinOp::Mul);
        let s2 = stmt(1, 1, 4, 5, BinOp::Mul);
        assert!(s1.isomorphic(&s2, &UniformEnv));
    }

    #[test]
    fn isomorphism_rejects_different_ops() {
        let s1 = stmt(0, 0, 2, 3, BinOp::Mul);
        let s2 = stmt(1, 1, 4, 5, BinOp::Add);
        assert!(!s1.isomorphic(&s2, &UniformEnv));
    }

    #[test]
    fn isomorphism_rejects_kind_mismatch() {
        let s1 = stmt(0, 0, 2, 3, BinOp::Mul);
        let s2 = Statement::new(
            StmtId::new(1),
            VarId::new(1).into(),
            Expr::Binary(BinOp::Mul, aref(0).into(), VarId::new(5).into()),
        );
        assert!(!s1.isomorphic(&s2, &UniformEnv));
    }

    #[test]
    fn isomorphism_rejects_type_mismatch() {
        // v0/v1 are f32 in MixedEnv, v2+ are f64: destination types differ.
        let s1 = stmt(0, 0, 2, 3, BinOp::Mul);
        let s2 = stmt(1, 4, 2, 3, BinOp::Mul);
        assert!(!s1.isomorphic(&s2, &MixedEnv));
        assert!(s1.isomorphic(&s2, &UniformEnv));
    }

    #[test]
    fn isomorphism_is_symmetric() {
        let s1 = stmt(0, 0, 2, 3, BinOp::Mul);
        let s2 = stmt(1, 1, 4, 5, BinOp::Mul);
        assert_eq!(
            s1.isomorphic(&s2, &UniformEnv),
            s2.isomorphic(&s1, &UniformEnv)
        );
    }
}
