//! Static validation of whole programs.
//!
//! [`Program::validate`] checks the structural invariants every pass
//! relies on — unique statement ids, declared and in-scope names,
//! positive array extents — and performs an interval-arithmetic bounds
//! check: every affine subscript, evaluated over the full range of its
//! enclosing loops, must stay inside its array. The kernel suite, the
//! random-program generator and the unrolling pass are all held to this
//! contract in tests.

use std::collections::HashSet;
use std::error::Error;
use std::fmt;

use crate::affine::AffineExpr;
use crate::expr::{ArrayRef, Dest, Operand};
use crate::ids::{LoopVarId, StmtId};
use crate::program::{LoopHeader, Program};

/// A violation found by [`Program::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// Two statements share an id.
    DuplicateStmtId(StmtId),
    /// An array is declared with a non-positive dimension.
    BadArrayExtent(String),
    /// A loop has a non-positive step.
    BadLoopStep(String),
    /// A subscript references a loop variable that is not in scope.
    LoopVarOutOfScope(StmtId, LoopVarId),
    /// A subscript can leave its array's bounds for some iteration.
    OutOfBounds {
        /// The offending statement.
        stmt: StmtId,
        /// The array accessed.
        array: String,
        /// The dimension that overflows.
        dim: usize,
        /// The provable index range.
        range: (i64, i64),
        /// The dimension's extent.
        extent: i64,
    },
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::DuplicateStmtId(s) => write!(f, "duplicate statement id {s}"),
            ValidationError::BadArrayExtent(a) => {
                write!(f, "array '{a}' has a non-positive extent")
            }
            ValidationError::BadLoopStep(v) => write!(f, "loop over '{v}' has a bad step"),
            ValidationError::LoopVarOutOfScope(s, v) => {
                write!(f, "{s} uses loop variable {v} outside its loop")
            }
            ValidationError::OutOfBounds {
                stmt,
                array,
                dim,
                range,
                extent,
            } => write!(
                f,
                "{stmt} indexes '{array}' dimension {dim} over [{}, {}] but the extent is {extent}",
                range.0, range.1
            ),
        }
    }
}

impl Error for ValidationError {}

/// The provable `[min, max]` of an affine expression over loop ranges:
/// the shared exact-i128 interval of [`crate::numeric`] (`None` for
/// unknown variables and zero-trip loops, whose accesses never execute).
fn interval(e: &AffineExpr, loops: &[LoopHeader]) -> Option<(i64, i64)> {
    crate::numeric::interval_in(e, loops)
}

impl Program {
    /// Validates the program's structural invariants and statically
    /// provable bounds.
    ///
    /// # Errors
    ///
    /// Returns every violation found (empty programs are valid).
    pub fn validate(&self) -> Result<(), Vec<ValidationError>> {
        let mut errors = Vec::new();

        for a in self.arrays() {
            if a.dims.iter().any(|&d| d <= 0) {
                errors.push(ValidationError::BadArrayExtent(a.name.clone()));
            }
        }

        let mut seen: HashSet<StmtId> = HashSet::new();
        self.for_each_stmt(|s| {
            if !seen.insert(s.id()) {
                errors.push(ValidationError::DuplicateStmtId(s.id()));
            }
        });

        for info in self.blocks() {
            for h in &info.loops {
                if h.step <= 0 {
                    errors.push(ValidationError::BadLoopStep(
                        self.loop_var_name(h.var).to_string(),
                    ));
                }
            }
            let in_scope: HashSet<LoopVarId> = info.loops.iter().map(|h| h.var).collect();
            for s in info.block.iter() {
                let mut refs: Vec<&ArrayRef> = s
                    .uses()
                    .iter()
                    .filter_map(|o| match o {
                        Operand::Array(r) => Some(r),
                        _ => None,
                    })
                    .collect();
                if let Dest::Array(r) = s.dest() {
                    refs.push(r);
                }
                for r in refs {
                    let info_a = self.array(r.array);
                    for (dim, e) in r.access.dims().iter().enumerate() {
                        if let Some(v) = e.vars().find(|v| !in_scope.contains(v)) {
                            errors.push(ValidationError::LoopVarOutOfScope(s.id(), v));
                            continue;
                        }
                        let Some((lo, hi)) = interval(e, &info.loops) else {
                            continue; // zero-trip loop: never executed
                        };
                        let extent = info_a.dims[dim];
                        if lo < 0 || hi >= extent {
                            errors.push(ValidationError::OutOfBounds {
                                stmt: s.id(),
                                array: info_a.name.clone(),
                                dim,
                                range: (lo, hi),
                                extent,
                            });
                        }
                    }
                }
            }
        }

        if errors.is_empty() {
            Ok(())
        } else {
            Err(errors)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::affine::AccessVector;
    use crate::expr::Expr;
    use crate::program::{Item, Loop};
    use crate::types::ScalarType;

    fn looped(upper: i64, coeff: i64, offset: i64, extent: i64) -> Program {
        let mut p = Program::new("t");
        let a = p.add_array("A", ScalarType::F64, vec![extent], true);
        let i = p.add_loop_var("i");
        let r = ArrayRef::new(
            a,
            AccessVector::new(vec![AffineExpr::var(i).scaled(coeff).offset(offset)]),
        );
        let s = p.make_stmt(r.into(), Expr::Copy(1.0.into()));
        p.push_item(Item::Loop(Loop {
            header: LoopHeader {
                var: i,
                lower: 0,
                upper,
                step: 1,
            },
            body: vec![Item::Stmt(s)],
        }));
        p
    }

    #[test]
    fn in_bounds_program_is_valid() {
        // A[2i+1] for i in 0..8 touches 1..=15 of a 16-element array.
        assert_eq!(looped(8, 2, 1, 16).validate(), Ok(()));
    }

    #[test]
    fn overflow_is_reported_with_the_range() {
        // A[2i+1] for i in 0..8 overflows a 15-element array.
        let errs = looped(8, 2, 1, 15).validate().unwrap_err();
        assert!(matches!(
            errs[0],
            ValidationError::OutOfBounds {
                range: (1, 15),
                extent: 15,
                ..
            }
        ));
        let msg = errs[0].to_string();
        assert!(msg.contains("[1, 15]"), "{msg}");
    }

    #[test]
    fn negative_indices_are_reported() {
        // A[2i-1] at i = 0 is -1.
        let errs = looped(8, 2, -1, 16).validate().unwrap_err();
        assert!(matches!(
            errs[0],
            ValidationError::OutOfBounds {
                range: (-1, 13),
                ..
            }
        ));
    }

    #[test]
    fn negative_coefficients_use_the_loop_extremes() {
        // A[15-2i] for i in 0..8 touches 1..=15: fine in 16, negative
        // coefficient handled by the interval arithmetic.
        let mut p = Program::new("t");
        let a = p.add_array("A", ScalarType::F64, vec![16], true);
        let i = p.add_loop_var("i");
        let r = ArrayRef::new(
            a,
            AccessVector::new(vec![AffineExpr::var(i).scaled(-2).offset(15)]),
        );
        let s = p.make_stmt(r.into(), Expr::Copy(1.0.into()));
        p.push_item(Item::Loop(Loop {
            header: LoopHeader {
                var: i,
                lower: 0,
                upper: 8,
                step: 1,
            },
            body: vec![Item::Stmt(s)],
        }));
        assert_eq!(p.validate(), Ok(()));
    }

    #[test]
    fn huge_coefficients_are_rejected_without_overflow() {
        // coeff near i64::MAX over several iterations: certainly out of
        // bounds, and must be reported instead of panicking in debug.
        let errs = looped(8, i64::MAX / 2, 0, 16).validate().unwrap_err();
        assert!(matches!(errs[0], ValidationError::OutOfBounds { .. }));
    }

    #[test]
    fn near_max_constants_validate_exactly() {
        // A[j - i + (MAX-6)] with j in 0..8 and i in MAX-16..MAX-12 has
        // the exact range [7, 17]: in bounds of 18 elements, even though
        // the partial sum (MAX-6) + j overflows i64 at j = 7. The i128
        // interval arithmetic must accept this program exactly, and still
        // reject it for a one-smaller extent.
        fn build(extent: i64) -> Program {
            let mut p = Program::new("t");
            let a = p.add_array("A", ScalarType::F64, vec![extent], true);
            let j = p.add_loop_var("j");
            let i = p.add_loop_var("i");
            let e = AffineExpr::var(j)
                .add(&AffineExpr::var(i).scaled(-1))
                .offset(i64::MAX - 6);
            let s = p.make_stmt(
                ArrayRef::new(a, AccessVector::new(vec![e])).into(),
                Expr::Copy(1.0.into()),
            );
            let inner = Loop {
                header: LoopHeader {
                    var: i,
                    lower: i64::MAX - 16,
                    upper: i64::MAX - 12,
                    step: 1,
                },
                body: vec![Item::Stmt(s)],
            };
            p.push_item(Item::Loop(Loop {
                header: LoopHeader {
                    var: j,
                    lower: 0,
                    upper: 8,
                    step: 1,
                },
                body: vec![Item::Loop(inner)],
            }));
            p
        }
        assert_eq!(build(18).validate(), Ok(()));
        let errs = build(17).validate().unwrap_err();
        assert!(matches!(
            errs[0],
            ValidationError::OutOfBounds {
                range: (7, 17),
                extent: 17,
                ..
            }
        ));
    }

    #[test]
    fn bad_extent_and_duplicate_ids_are_reported() {
        let mut p = Program::new("t");
        let a = p.add_array("A", ScalarType::F64, vec![0], true);
        let _ = a;
        let x = p.add_scalar("x", ScalarType::F64);
        let s = crate::stmt::Statement::new(StmtId::new(7), x.into(), Expr::Copy(1.0.into()));
        p.push_item(Item::Stmt(s.clone()));
        p.push_item(Item::Stmt(s));
        let errs = p.validate().unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidationError::BadArrayExtent(_))));
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidationError::DuplicateStmtId(s) if *s == StmtId::new(7))));
    }

    #[test]
    fn steps_respect_the_actual_last_iteration() {
        // for i in 0..10 step 4 visits 0,4,8: A[2i] max is 16, fits 17.
        let mut p = Program::new("t");
        let a = p.add_array("A", ScalarType::F64, vec![17], true);
        let i = p.add_loop_var("i");
        let r = ArrayRef::new(a, AccessVector::new(vec![AffineExpr::var(i).scaled(2)]));
        let s = p.make_stmt(r.into(), Expr::Copy(1.0.into()));
        p.push_item(Item::Loop(Loop {
            header: LoopHeader {
                var: i,
                lower: 0,
                upper: 10,
                step: 4,
            },
            body: vec![Item::Stmt(s)],
        }));
        assert_eq!(p.validate(), Ok(()));
    }
}
