//! Emission of IR programs back to `slp-lang` source.
//!
//! [`Program::to_source`] renders any program — including unrolled ones
//! (the `step` clause) and privatized temporaries (dotted names) — as a
//! kernel the frontend parses back to an equivalent program. The
//! round-trip property is exercised over the whole benchmark suite and
//! random programs in the test suite.

use std::fmt::Write as _;

use crate::affine::AffineExpr;
use crate::expr::{BinOp, Dest, Expr, Operand, UnOp};
use crate::ids::LoopVarId;
use crate::program::{Item, Program};
use crate::stmt::Statement;

impl Program {
    /// Renders the program as `slp-lang` source text.
    ///
    /// # Examples
    ///
    /// ```
    /// let p = slp_lang::compile(
    ///     "kernel k { array A: f64[8]; scalar x: f64;
    ///      for i in 0..8 { x = A[i]; A[i] = x * 2.0; } }",
    /// ).unwrap();
    /// let src = p.to_source();
    /// let q = slp_lang::compile(&src).unwrap();
    /// assert_eq!(p.stmt_count(), q.stmt_count());
    /// ```
    pub fn to_source(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "kernel \"{}\" {{", self.name());
        for a in self.arrays() {
            let dims: Vec<String> = a.dims.iter().map(|d| d.to_string()).collect();
            let _ = writeln!(out, "    array {}: {}[{}];", a.name, a.ty, dims.join("]["));
        }
        for s in self.scalars() {
            let _ = writeln!(out, "    scalar {}: {};", s.name, s.ty);
        }
        emit_items(self, self.items(), 1, &mut out);
        out.push_str("}\n");
        out
    }
}

fn indent(depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("    ");
    }
}

fn emit_items(p: &Program, items: &[Item], depth: usize, out: &mut String) {
    for item in items {
        match item {
            Item::Stmt(s) => {
                indent(depth, out);
                emit_stmt(p, s, out);
            }
            Item::Loop(l) => {
                indent(depth, out);
                let h = l.header;
                let step = if h.step == 1 {
                    String::new()
                } else {
                    format!(" step {}", h.step)
                };
                let _ = writeln!(
                    out,
                    "for {} in {}..{}{step} {{",
                    p.loop_var_name(h.var),
                    h.lower,
                    h.upper
                );
                emit_items(p, &l.body, depth + 1, out);
                indent(depth, out);
                out.push_str("}\n");
            }
        }
    }
}

fn emit_stmt(p: &Program, s: &Statement, out: &mut String) {
    match s.dest() {
        Dest::Scalar(v) => out.push_str(&p.scalar(*v).name),
        Dest::Array(r) => emit_ref(p, r, out),
    }
    out.push_str(" = ");
    match s.expr() {
        Expr::Copy(a) => emit_operand(p, a, out),
        Expr::Unary(op, a) => {
            let name = match op {
                UnOp::Neg => "neg",
                UnOp::Abs => "abs",
                UnOp::Sqrt => "sqrt",
            };
            out.push_str(name);
            out.push('(');
            emit_operand(p, a, out);
            out.push(')');
        }
        Expr::Binary(op, a, b) => match op {
            BinOp::Min | BinOp::Max => {
                out.push_str(if *op == BinOp::Min { "min" } else { "max" });
                out.push('(');
                emit_operand(p, a, out);
                out.push_str(", ");
                emit_operand(p, b, out);
                out.push(')');
            }
            _ => {
                emit_operand(p, a, out);
                let sym = match op {
                    BinOp::Add => " + ",
                    BinOp::Sub => " - ",
                    BinOp::Mul => " * ",
                    BinOp::Div => " / ",
                    BinOp::Min | BinOp::Max => unreachable!("handled above"),
                };
                out.push_str(sym);
                emit_operand(p, b, out);
            }
        },
        Expr::MulAdd(a, b, c) => {
            emit_operand(p, a, out);
            out.push_str(" + ");
            emit_operand(p, b, out);
            out.push_str(" * ");
            emit_operand(p, c, out);
        }
        Expr::Select(op, a, b, t, e) => {
            out.push_str("select(");
            emit_operand(p, a, out);
            let _ = write!(out, " {op} ");
            emit_operand(p, b, out);
            out.push_str(", ");
            emit_operand(p, t, out);
            out.push_str(", ");
            emit_operand(p, e, out);
            out.push(')');
        }
    }
    out.push_str(";\n");
}

fn emit_operand(p: &Program, op: &Operand, out: &mut String) {
    match op {
        Operand::Scalar(v) => out.push_str(&p.scalar(*v).name),
        Operand::Array(r) => emit_ref(p, r, out),
        Operand::Const(c) => emit_const(*c, out),
    }
}

fn emit_const(c: f64, out: &mut String) {
    if c == c.trunc() && c.abs() < 1e15 {
        // Keep an explicit fraction so the value lexes as a float and the
        // sign stays attached to the literal.
        let _ = write!(out, "{:.1}", c);
    } else {
        let start = out.len();
        let _ = write!(out, "{c}");
        // f64's Display never uses exponent notation, so a huge integral
        // value (say 1e23) prints as a bare digit string that would
        // re-lex as an overflowing integer literal; keep it a float.
        if c.is_finite() && !out[start..].contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    }
}

fn emit_ref(p: &Program, r: &crate::expr::ArrayRef, out: &mut String) {
    out.push_str(&p.array(r.array).name);
    for dim in r.access.dims() {
        out.push('[');
        emit_affine(p, dim, out);
        out.push(']');
    }
}

fn emit_affine(p: &Program, e: &AffineExpr, out: &mut String) {
    let mut first = true;
    let var_name = |v: LoopVarId| p.loop_var_name(v).to_string();
    for (v, c) in e.terms() {
        if first {
            match c {
                1 => out.push_str(&var_name(v)),
                -1 => {
                    // The grammar has no leading unary minus on a name;
                    // write it as a -1 coefficient.
                    let _ = write!(out, "-1*{}", var_name(v));
                }
                _ => {
                    let _ = write!(out, "{c}*{}", var_name(v));
                }
            }
            first = false;
        } else if c == 1 {
            let _ = write!(out, "+{}", var_name(v));
        } else if c > 0 {
            let _ = write!(out, "+{c}*{}", var_name(v));
        } else if c == -1 {
            let _ = write!(out, "-{}", var_name(v));
        } else {
            let _ = write!(out, "-{}*{}", -c, var_name(v));
        }
    }
    let k = e.constant();
    if first {
        let _ = write!(out, "{k}");
    } else if k > 0 {
        let _ = write!(out, "+{k}");
    } else if k < 0 {
        let _ = write!(out, "{k}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::affine::AccessVector;
    use crate::expr::ArrayRef;
    use crate::program::{Loop, LoopHeader};
    use crate::types::ScalarType;

    #[test]
    fn emits_steps_and_affine_forms() {
        let mut p = Program::new("t");
        let a = p.add_array("A", ScalarType::F64, vec![64], true);
        let i = p.add_loop_var("i");
        let r = ArrayRef::new(
            a,
            AccessVector::new(vec![AffineExpr::var(i).scaled(2).offset(-1)]),
        );
        let s = p.make_stmt(r.into(), Expr::Copy(Operand::Const(2.0)));
        p.push_item(Item::Loop(Loop {
            header: LoopHeader {
                var: i,
                lower: 1,
                upper: 9,
                step: 2,
            },
            body: vec![Item::Stmt(s)],
        }));
        let src = p.to_source();
        assert!(src.contains("for i in 1..9 step 2 {"), "{src}");
        assert!(src.contains("A[2*i-1] = 2.0;"), "{src}");
    }

    #[test]
    fn integral_constants_stay_floats() {
        let mut s = String::new();
        emit_const(3.0, &mut s);
        assert_eq!(s, "3.0");
        let mut s = String::new();
        emit_const(-0.25, &mut s);
        assert_eq!(s, "-0.25");
    }

    #[test]
    fn huge_integral_constants_stay_floats() {
        // 1e23 is integral but far outside i64; it must not emit as a
        // bare (overflowing) integer literal.
        for c in [1e23, -1e23, 9.223372036854776e18, 1e300] {
            let mut s = String::new();
            emit_const(c, &mut s);
            assert!(
                s.contains(['.', 'e', 'E']),
                "{c} emitted as integer literal: {s}"
            );
            assert_eq!(s.parse::<f64>().unwrap(), c, "value must round-trip");
        }
    }

    #[test]
    fn negative_leading_coefficient() {
        let mut p = Program::new("t");
        let a = p.add_array("A", ScalarType::F64, vec![64], true);
        let i = p.add_loop_var("i");
        let _ = a;
        let mut s = String::new();
        emit_affine(&p, &AffineExpr::var(i).scaled(-1).offset(8), &mut s);
        assert_eq!(s, "-1*i+8");
    }
}
