//! Affine index expressions over loop induction variables.
//!
//! Array subscripts in the IR are affine functions of the enclosing loop
//! indices, exactly the class the paper's §5.2 data layout optimization
//! requires ("loop bounds and array references are affine functions of the
//! enclosing loop indices and loop independent variables").
//!
//! An [`AffineExpr`] is `c0 + Σ ci * iv_i` with integer coefficients; the
//! polyhedral access form of Eq. (1), `r = Q·i + O`, is recovered by
//! [`AccessVector`], one affine expression per array dimension.

use std::collections::BTreeMap;
use std::fmt;

use crate::ids::LoopVarId;

/// An affine expression `c0 + Σ ci * iv_i` over loop induction variables.
///
/// # Examples
///
/// ```
/// use slp_ir::{AffineExpr, LoopVarId};
///
/// let i = LoopVarId::new(0);
/// // 4*i + 3
/// let e = AffineExpr::var(i).scaled(4).offset(3);
/// assert_eq!(e.coeff(i), 4);
/// assert_eq!(e.constant(), 3);
/// assert_eq!(e.eval(&[(i, 2)]), 11);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct AffineExpr {
    /// Sorted map from loop variable to (non-zero) coefficient.
    coeffs: BTreeMap<LoopVarId, i64>,
    /// Constant term `c0`.
    constant: i64,
}

impl AffineExpr {
    /// The constant expression `c`.
    pub fn constant_expr(c: i64) -> Self {
        AffineExpr {
            coeffs: BTreeMap::new(),
            constant: c,
        }
    }

    /// The expression consisting of a single loop variable with
    /// coefficient 1.
    pub fn var(v: LoopVarId) -> Self {
        let mut coeffs = BTreeMap::new();
        coeffs.insert(v, 1);
        AffineExpr {
            coeffs,
            constant: 0,
        }
    }

    /// Builds `c0 + Σ ci*vi` from explicit terms, dropping zero
    /// coefficients.
    pub fn from_terms<I: IntoIterator<Item = (LoopVarId, i64)>>(terms: I, constant: i64) -> Self {
        let mut coeffs = BTreeMap::new();
        for (v, c) in terms {
            if c != 0 {
                *coeffs.entry(v).or_insert(0) += c;
            }
        }
        coeffs.retain(|_, c| *c != 0);
        AffineExpr { coeffs, constant }
    }

    /// The constant term `c0`.
    pub fn constant(&self) -> i64 {
        self.constant
    }

    /// The coefficient of loop variable `v` (0 if absent).
    pub fn coeff(&self, v: LoopVarId) -> i64 {
        self.coeffs.get(&v).copied().unwrap_or(0)
    }

    /// Iterator over `(variable, coefficient)` pairs with non-zero
    /// coefficients, in variable order.
    pub fn terms(&self) -> impl Iterator<Item = (LoopVarId, i64)> + '_ {
        self.coeffs.iter().map(|(&v, &c)| (v, c))
    }

    /// Whether the expression is a plain constant (no variable terms).
    pub fn is_constant(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// The loop variables referenced by this expression.
    pub fn vars(&self) -> impl Iterator<Item = LoopVarId> + '_ {
        self.coeffs.keys().copied()
    }

    /// Returns `self + other`.
    ///
    /// Coefficient arithmetic saturates at the i64 extremes: a saturated
    /// subscript is certainly out of bounds for any declarable array, so
    /// downstream bounds checks still reject it — without the debug-build
    /// overflow panic a hostile input could otherwise trigger.
    pub fn add(&self, other: &AffineExpr) -> AffineExpr {
        let mut coeffs = self.coeffs.clone();
        for (&v, &c) in &other.coeffs {
            let e = coeffs.entry(v).or_insert(0);
            *e = e.saturating_add(c);
        }
        coeffs.retain(|_, c| *c != 0);
        AffineExpr {
            coeffs,
            constant: self.constant.saturating_add(other.constant),
        }
    }

    /// Returns `self - other`.
    pub fn sub(&self, other: &AffineExpr) -> AffineExpr {
        self.add(&other.scaled(-1))
    }

    /// Returns `self * k`.
    pub fn scaled(&self, k: i64) -> AffineExpr {
        if k == 0 {
            return AffineExpr::constant_expr(0);
        }
        AffineExpr {
            coeffs: self
                .coeffs
                .iter()
                .map(|(&v, &c)| (v, c.saturating_mul(k)))
                .collect(),
            constant: self.constant.saturating_mul(k),
        }
    }

    /// Returns `self + k`.
    pub fn offset(&self, k: i64) -> AffineExpr {
        AffineExpr {
            coeffs: self.coeffs.clone(),
            constant: self.constant.saturating_add(k),
        }
    }

    /// Substitutes loop variable `v` with the expression `e`.
    ///
    /// Used by loop unrolling to rewrite replica `k` of a body statement:
    /// `i ↦ i + k*step`.
    pub fn substitute(&self, v: LoopVarId, e: &AffineExpr) -> AffineExpr {
        match self.coeffs.get(&v) {
            None => self.clone(),
            Some(&c) => {
                let mut base = self.clone();
                base.coeffs.remove(&v);
                base.add(&e.scaled(c))
            }
        }
    }

    /// Evaluates the expression given concrete values for loop variables.
    ///
    /// Variables absent from `env` are treated as 0, which matches
    /// evaluation outside their loop.
    pub fn eval(&self, env: &[(LoopVarId, i64)]) -> i64 {
        // Accumulate in i128: a validated in-bounds subscript can still
        // have transiently huge partial sums (e.g. a near-MAX constant
        // cancelled by a negative term), and the final value must be
        // exact for the bounds check. Saturate the clamp back to i64 —
        // a clamped value is out of bounds for any real array.
        let mut acc = self.constant as i128;
        for (&v, &c) in &self.coeffs {
            if let Some(&(_, val)) = env.iter().find(|&&(ev, _)| ev == v) {
                acc = acc.saturating_add(c as i128 * val as i128);
            }
        }
        acc.clamp(i64::MIN as i128, i64::MAX as i128) as i64
    }

    /// Whether two expressions have identical variable parts (all
    /// coefficients equal), so their difference is the constant
    /// `other.constant - self.constant`.
    ///
    /// This is the core test for *adjacent memory references* (difference
    /// of exactly one element) and for the no-alias guarantee used by the
    /// dependence analysis: equal coefficients with different constants can
    /// never access the same element in the same iteration.
    pub fn same_linear_part(&self, other: &AffineExpr) -> bool {
        self.coeffs == other.coeffs
    }

    /// If `self` and `other` differ only in their constant term, returns
    /// `other.constant - self.constant`.
    pub fn constant_difference(&self, other: &AffineExpr) -> Option<i64> {
        if self.same_linear_part(other) {
            Some(other.constant - self.constant)
        } else {
            None
        }
    }
}

impl From<i64> for AffineExpr {
    fn from(c: i64) -> Self {
        AffineExpr::constant_expr(c)
    }
}

impl fmt::Display for AffineExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (v, c) in self.terms() {
            if first {
                match c {
                    1 => write!(f, "{v}")?,
                    -1 => write!(f, "-{v}")?,
                    _ => write!(f, "{c}*{v}")?,
                }
                first = false;
            } else if c >= 0 {
                if c == 1 {
                    write!(f, "+{v}")?;
                } else {
                    write!(f, "+{c}*{v}")?;
                }
            } else if c == -1 {
                write!(f, "-{v}")?;
            } else {
                write!(f, "{c}*{v}")?;
            }
        }
        if first {
            write!(f, "{}", self.constant)?;
        } else if self.constant > 0 {
            write!(f, "+{}", self.constant)?;
        } else if self.constant < 0 {
            write!(f, "{}", self.constant)?;
        }
        Ok(())
    }
}

/// The polyhedral access form of Eq. (1): `r = Q·i + O`.
///
/// One [`AffineExpr`] per array dimension; the access matrix `Q` row for
/// dimension `d` holds the coefficients of that dimension's expression and
/// the offset vector `O` holds its constant.
///
/// # Examples
///
/// ```
/// use slp_ir::{AccessVector, AffineExpr, LoopVarId};
///
/// let i = LoopVarId::new(0);
/// // A[4i + 3]
/// let acc = AccessVector::new(vec![AffineExpr::var(i).scaled(4).offset(3)]);
/// assert_eq!(acc.rank(), 1);
/// assert_eq!(acc.offset_vector(), vec![3]);
/// assert_eq!(acc.matrix_row(0, &[i]), vec![4]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AccessVector {
    dims: Vec<AffineExpr>,
}

impl AccessVector {
    /// Builds an access vector from per-dimension index expressions.
    ///
    /// # Panics
    ///
    /// Panics if `dims` is empty: arrays have at least one dimension.
    pub fn new(dims: Vec<AffineExpr>) -> Self {
        assert!(!dims.is_empty(), "access vector needs at least 1 dimension");
        AccessVector { dims }
    }

    /// Number of array dimensions.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// The index expression of dimension `d`.
    ///
    /// # Panics
    ///
    /// Panics if `d >= self.rank()`.
    pub fn dim(&self, d: usize) -> &AffineExpr {
        &self.dims[d]
    }

    /// All per-dimension expressions, outermost dimension first.
    pub fn dims(&self) -> &[AffineExpr] {
        &self.dims
    }

    /// The offset vector `O` of Eq. (1).
    pub fn offset_vector(&self) -> Vec<i64> {
        self.dims.iter().map(|e| e.constant()).collect()
    }

    /// Row `d` of the access matrix `Q`, with columns ordered by `ivs`.
    pub fn matrix_row(&self, d: usize, ivs: &[LoopVarId]) -> Vec<i64> {
        ivs.iter().map(|&v| self.dims[d].coeff(v)).collect()
    }

    /// Evaluates every dimension under `env`.
    pub fn eval(&self, env: &[(LoopVarId, i64)]) -> Vec<i64> {
        self.dims.iter().map(|e| e.eval(env)).collect()
    }

    /// Applies `substitute` to every dimension.
    pub fn substitute(&self, v: LoopVarId, e: &AffineExpr) -> AccessVector {
        AccessVector {
            dims: self.dims.iter().map(|d| d.substitute(v, e)).collect(),
        }
    }

    /// Whether both access vectors have the same linear part in every
    /// dimension.
    pub fn same_linear_part(&self, other: &AccessVector) -> bool {
        self.rank() == other.rank()
            && self
                .dims
                .iter()
                .zip(&other.dims)
                .all(|(a, b)| a.same_linear_part(b))
    }

    /// For same-linear-part accesses, the per-dimension constant
    /// differences `other - self`.
    pub fn constant_difference(&self, other: &AccessVector) -> Option<Vec<i64>> {
        if self.rank() != other.rank() {
            return None;
        }
        self.dims
            .iter()
            .zip(&other.dims)
            .map(|(a, b)| a.constant_difference(b))
            .collect()
    }
}

impl fmt::Display for AccessVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for d in &self.dims {
            write!(f, "[{d}]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn i() -> LoopVarId {
        LoopVarId::new(0)
    }
    fn j() -> LoopVarId {
        LoopVarId::new(1)
    }

    #[test]
    fn arithmetic_basics() {
        let e = AffineExpr::var(i()).scaled(4).offset(3); // 4i+3
        let f = AffineExpr::var(i()).scaled(-4).offset(1); // -4i+1
        let sum = e.add(&f);
        assert!(sum.is_constant());
        assert_eq!(sum.constant(), 4);
    }

    #[test]
    fn zero_coefficients_are_dropped() {
        let e = AffineExpr::from_terms([(i(), 2), (j(), 0)], 5);
        assert_eq!(e.vars().count(), 1);
        let g = e.sub(&AffineExpr::var(i()).scaled(2));
        assert!(g.is_constant());
        assert_eq!(g, AffineExpr::constant_expr(5));
    }

    #[test]
    fn substitute_for_unrolling() {
        // 4i + 3 with i -> i + 2 gives 4i + 11 (unroll replica at step 2).
        let e = AffineExpr::var(i()).scaled(4).offset(3);
        let repl = AffineExpr::var(i()).offset(2);
        let e2 = e.substitute(i(), &repl);
        assert_eq!(e2, AffineExpr::var(i()).scaled(4).offset(11));
    }

    #[test]
    fn substitute_absent_var_is_identity() {
        let e = AffineExpr::var(i()).scaled(4).offset(3);
        assert_eq!(e.substitute(j(), &AffineExpr::constant_expr(9)), e);
    }

    #[test]
    fn eval_multi_var() {
        // 2i + 3j - 1 at (i,j)=(5,2) is 15.
        let e = AffineExpr::from_terms([(i(), 2), (j(), 3)], -1);
        assert_eq!(e.eval(&[(i(), 5), (j(), 2)]), 15);
        // Missing vars evaluate as 0.
        assert_eq!(e.eval(&[(i(), 5)]), 9);
    }

    #[test]
    fn constant_difference_detects_adjacency() {
        let a = AffineExpr::var(i()).scaled(4); // 4i
        let b = AffineExpr::var(i()).scaled(4).offset(1); // 4i+1
        assert_eq!(a.constant_difference(&b), Some(1));
        let c = AffineExpr::var(i()).scaled(2);
        assert_eq!(a.constant_difference(&c), None);
    }

    #[test]
    fn display_formats() {
        let e = AffineExpr::from_terms([(i(), 4)], 3);
        assert_eq!(e.to_string(), "4*i0+3");
        assert_eq!(AffineExpr::constant_expr(-2).to_string(), "-2");
        let m = AffineExpr::from_terms([(i(), 1), (j(), -1)], 0);
        assert_eq!(m.to_string(), "i0-i1");
    }

    #[test]
    fn access_vector_matrix_view() {
        // A[2i+j][3j+1]: Q = [[2,1],[0,3]], O = (0,1).
        let a = AccessVector::new(vec![
            AffineExpr::from_terms([(i(), 2), (j(), 1)], 0),
            AffineExpr::from_terms([(j(), 3)], 1),
        ]);
        let ivs = [i(), j()];
        assert_eq!(a.matrix_row(0, &ivs), vec![2, 1]);
        assert_eq!(a.matrix_row(1, &ivs), vec![0, 3]);
        assert_eq!(a.offset_vector(), vec![0, 1]);
        assert_eq!(a.eval(&[(i(), 1), (j(), 2)]), vec![4, 7]);
    }

    #[test]
    #[should_panic(expected = "at least 1 dimension")]
    fn empty_access_vector_panics() {
        let _ = AccessVector::new(vec![]);
    }

    #[test]
    fn eval_survives_transient_overflow() {
        // (MAX-6) + j - i at j=7, i=MAX-13: the partial sum (MAX-6)+7
        // overflows i64 but the exact value is 14.
        let e = AffineExpr::from_terms([(i(), -1), (j(), 1)], i64::MAX - 6);
        assert_eq!(e.eval(&[(j(), 7), (i(), i64::MAX - 13)]), 14);
        // A genuinely huge value clamps to the i64 extremes instead of
        // panicking; clamped values are out of bounds of any real array.
        let big = AffineExpr::from_terms([(i(), i64::MAX)], i64::MAX);
        assert_eq!(big.eval(&[(i(), i64::MAX)]), i64::MAX);
        assert_eq!(big.scaled(-1).eval(&[(i(), i64::MAX)]), i64::MIN);
    }

    #[test]
    fn symbolic_ops_saturate() {
        let e = AffineExpr::from_terms([(i(), i64::MAX)], i64::MAX);
        let doubled = e.scaled(2);
        assert_eq!(doubled.coeff(i()), i64::MAX);
        assert_eq!(doubled.constant(), i64::MAX);
        assert_eq!(e.add(&e).constant(), i64::MAX);
        assert_eq!(e.offset(5).constant(), i64::MAX);
    }
}
