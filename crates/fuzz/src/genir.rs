//! Typed-IR case generation: well-formed programs with adversarial
//! dependence and alignment patterns.
//!
//! Where [`mutate`](crate::mutate) attacks the front-end with broken
//! text, this level builds [`Program`]s directly, biased toward the
//! structures where SLP miscompiles hide: loop-carried dependences
//! (`A[i] = f(A[i-1])`), partially overlapping reads and writes,
//! non-unit strides and misaligned offsets, negative lower bounds,
//! sequential and nested loops, scalar reductions, mixed element types,
//! and division (the VM seeds memory nonzero, so `Div` is safe).
//! Extents are computed *after* the accesses so most programs validate;
//! a deliberate fraction is corrupted (shrunken extents, zero steps) to
//! exercise the typed rejection paths.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use slp_ir::{
    AccessVector, AffineExpr, ArrayId, ArrayRef, BinOp, CmpOp, Dest, Expr, Item, Loop, LoopHeader,
    LoopVarId, Operand, Program, ScalarType, UnOp, VarId,
};

const TYPES: &[ScalarType] = &[
    ScalarType::F64,
    ScalarType::F64,
    ScalarType::F64,
    ScalarType::F32,
    ScalarType::I64,
    ScalarType::I32,
    ScalarType::I16,
];

struct Gen {
    rng: StdRng,
    arrays: Vec<ArrayId>,
    scalars: Vec<VarId>,
    /// Per-array, the worst-case subscript range generated so far.
    ranges: Vec<(i64, i64)>,
}

impl Gen {
    /// A random affine subscript `c*v + off` over the in-scope loops,
    /// recording the range it can reach for the extent computation.
    fn subscript(&mut self, array: usize, loops: &[LoopHeader]) -> AffineExpr {
        let h = loops[self.rng.gen_range(0..loops.len())];
        let c = self.rng.gen_range(1..=3i64);
        // Offsets reach backward too (A[c*i - d] patterns), then the
        // whole subscript is shifted so its low end stays at >= 0 —
        // invalidity is injected deliberately elsewhere, not by accident.
        let mut off = self.rng.gen_range(-2..=4i64);
        let last = h.lower + (h.trip_count() - 1).max(0) * h.step;
        let low = (c * h.lower).min(c * last) + off;
        if low < 0 {
            off -= low;
        }
        let (a, b) = (c * h.lower + off, c * last + off);
        let (lo, hi) = (a.min(b), a.max(b));
        let r = &mut self.ranges[array];
        r.0 = r.0.min(lo);
        r.1 = r.1.max(hi);
        AffineExpr::var(h.var).scaled(c).offset(off)
    }

    fn array_ref(&mut self, loops: &[LoopHeader]) -> ArrayRef {
        let pick = self.rng.gen_range(0..self.arrays.len());
        let e = self.subscript(pick, loops);
        ArrayRef::new(self.arrays[pick], AccessVector::new(vec![e]))
    }

    fn operand(&mut self, loops: &[LoopHeader]) -> Operand {
        match self.rng.gen_range(0..8u32) {
            0..=3 => Operand::Array(self.array_ref(loops)),
            4..=5 => Operand::Scalar(self.scalars[self.rng.gen_range(0..self.scalars.len())]),
            6 => Operand::Const(self.rng.gen_range(1..=9) as f64 * 0.5),
            _ => Operand::Array(self.array_ref(loops)),
        }
    }

    fn cmp(&mut self) -> CmpOp {
        let ops = CmpOp::all();
        ops[self.rng.gen_range(0..ops.len())]
    }

    fn expr(&mut self, loops: &[LoopHeader]) -> Expr {
        match self.rng.gen_range(0..12u32) {
            0..=4 => {
                let ops = BinOp::all();
                let op = ops[self.rng.gen_range(0..ops.len())];
                Expr::Binary(op, self.operand(loops), self.operand(loops))
            }
            5..=6 => Expr::MulAdd(
                self.operand(loops),
                self.operand(loops),
                self.operand(loops),
            ),
            7 => {
                let ops = UnOp::all();
                let op = ops[self.rng.gen_range(0..ops.len())];
                Expr::Unary(op, self.operand(loops))
            }
            8..=9 => Expr::Select(
                self.cmp(),
                self.operand(loops),
                self.operand(loops),
                self.operand(loops),
                self.operand(loops),
            ),
            _ => Expr::Copy(self.operand(loops)),
        }
    }

    fn dest(&mut self, loops: &[LoopHeader]) -> Dest {
        if self.rng.gen_bool(0.7) {
            Dest::Array(self.array_ref(loops))
        } else {
            Dest::Scalar(self.scalars[self.rng.gen_range(0..self.scalars.len())])
        }
    }
}

/// Deterministically builds the `n`-th typed-IR fuzz case.
///
/// Most cases validate; roughly a fifth are deliberately corrupted so
/// the typed rejection paths stay exercised.
pub fn ir_case(seed: u64, n: u64) -> Program {
    let mut g = Gen {
        rng: StdRng::seed_from_u64(seed ^ n.wrapping_mul(0xD134_2543_DE82_EF95)),
        arrays: Vec::new(),
        scalars: Vec::new(),
        ranges: Vec::new(),
    };
    let mut p = Program::new(format!("ir{n}"));

    let n_arrays = g.rng.gen_range(1..=3usize);
    for k in 0..n_arrays {
        let ty = TYPES[g.rng.gen_range(0..TYPES.len())];
        // Extent fixed up after generation; declare a placeholder.
        g.arrays
            .push(p.add_array(format!("A{k}"), ty, vec![1], true));
        g.ranges.push((0, 0));
    }
    let n_scalars = g.rng.gen_range(1..=3usize);
    for k in 0..n_scalars {
        let ty = TYPES[g.rng.gen_range(0..TYPES.len())];
        g.scalars.push(p.add_scalar(format!("s{k}"), ty));
    }

    // 1-2 sequential top-level loops, each 1-2 deep.
    let n_loops = g.rng.gen_range(1..=2usize);
    let mut items: Vec<Item> = Vec::new();
    // A scalar init before the loops exercises straight-line blocks.
    if g.rng.gen_bool(0.5) {
        let v = g.scalars[g.rng.gen_range(0..g.scalars.len())];
        let s = p.make_stmt(Dest::Scalar(v), Expr::Copy(Operand::Const(1.5)));
        items.push(Item::Stmt(s));
    }
    for l in 0..n_loops {
        let depth = g.rng.gen_range(1..=2usize);
        let mut headers = Vec::new();
        for d in 0..depth {
            let var = p.add_loop_var(format!("v{l}_{d}"));
            let lower = g.rng.gen_range(-4..=4i64);
            let step = g.rng.gen_range(1..=3i64);
            let trips = g.rng.gen_range(1..=16i64);
            headers.push(LoopHeader {
                var,
                lower,
                upper: lower + trips * step,
                step,
            });
        }
        let n_stmts = g.rng.gen_range(1..=6usize);
        let mut body: Vec<Item> = Vec::new();
        for _ in 0..n_stmts {
            if g.rng.gen_bool(0.15) {
                // Exclusive merge pair — the canonical if-conversion
                // residue. A then-merge `d = select(op,a,b,t,d)` guards
                // the true side; an optional else-merge with the *same*
                // predicate, `d = select(op,a,b,d,e)`, guards the false
                // side. The dependence analysis must see the two writes
                // as reorderable, and the packer may fuse them.
                let op = g.cmp();
                let a = g.operand(&headers);
                let b = g.operand(&headers);
                let dest = g.dest(&headers);
                let dest_read = match &dest {
                    Dest::Array(r) => Operand::Array(r.clone()),
                    Dest::Scalar(v) => Operand::Scalar(*v),
                };
                let t = g.operand(&headers);
                let s1 = p.make_stmt(
                    dest.clone(),
                    Expr::Select(op, a.clone(), b.clone(), t, dest_read.clone()),
                );
                body.push(Item::Stmt(s1));
                if g.rng.gen_bool(0.6) {
                    let e = g.operand(&headers);
                    let s2 = p.make_stmt(dest, Expr::Select(op, a, b, dest_read, e));
                    body.push(Item::Stmt(s2));
                }
                continue;
            }
            let (dest, expr) = if g.rng.gen_bool(0.25) {
                // Loop-carried chain: A[c*i + off] = f(A[c*i + off'])
                // on the same array, offsets straddling the write.
                let pick = g.rng.gen_range(0..g.arrays.len());
                let write = g.subscript(pick, &headers);
                let read = g.subscript(pick, &headers);
                let a = g.arrays[pick];
                (
                    Dest::Array(ArrayRef::new(a, AccessVector::new(vec![write]))),
                    Expr::Binary(
                        BinOp::Add,
                        Operand::Array(ArrayRef::new(a, AccessVector::new(vec![read]))),
                        g.operand(&headers),
                    ),
                )
            } else if g.rng.gen_bool(0.2) {
                // Reduction: s = s op expr.
                let v = g.scalars[g.rng.gen_range(0..g.scalars.len())];
                (
                    Dest::Scalar(v),
                    Expr::Binary(BinOp::Add, Operand::Scalar(v), g.operand(&headers)),
                )
            } else {
                let d = g.dest(&headers);
                let e = g.expr(&headers);
                (d, e)
            };
            let s = p.make_stmt(dest, expr);
            body.push(Item::Stmt(s));
        }
        // Wrap innermost-out.
        let mut item = Item::Loop(Loop {
            header: headers[depth - 1],
            body,
        });
        for d in (0..depth - 1).rev() {
            item = Item::Loop(Loop {
                header: headers[d],
                body: vec![item],
            });
        }
        items.push(item);
    }
    if g.rng.gen_bool(0.3) {
        let v = g.scalars[g.rng.gen_range(0..g.scalars.len())];
        let s = p.make_stmt(Dest::Scalar(v), Expr::Unary(UnOp::Abs, Operand::Scalar(v)));
        items.push(Item::Stmt(s));
    }
    for item in items {
        p.push_item(item);
    }

    // Fix up extents from the recorded subscript ranges. A negative low
    // end shifts the whole program out of reach of the validator, so
    // instead size the array to cover [0, hi] and accept that cases
    // whose low end dips below zero are (intentionally) invalid.
    let corrupt = g.rng.gen_bool(0.2);
    let shrink = if corrupt && g.rng.gen_bool(0.5) { 1 } else { 0 };
    let mut q = Program::new(p.name());
    let mut fixed = Vec::new();
    for (k, a) in p.arrays().iter().enumerate() {
        let extent = (g.ranges[k].1 + 1).max(1) - shrink;
        fixed.push(q.add_array(
            a.name.clone(),
            a.ty,
            vec![extent.max(1 - shrink)],
            a.is_input,
        ));
    }
    let _ = fixed;
    for s in p.scalars() {
        q.add_scalar(s.name.clone(), s.ty);
    }
    for v in 0..p.loop_var_count() {
        q.add_loop_var(p.loop_var_name(LoopVarId::new(v as u32)).to_string());
    }
    let mut items = p.items().to_vec();
    if corrupt && shrink == 0 {
        // Corrupt a loop step to zero instead: must be a typed
        // BadLoopStep rejection, never a hang or panic.
        fn break_step(items: &mut [Item]) -> bool {
            for item in items {
                if let Item::Loop(l) = item {
                    l.header.step = 0;
                    return true;
                }
            }
            false
        }
        let _ = break_step(&mut items);
    }
    for item in items {
        q.push_item(item);
    }
    q.ensure_stmt_ids(p.stmt_count() as u32 + 1);
    q
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_are_deterministic() {
        let a = ir_case(3, 11).to_source();
        let b = ir_case(3, 11).to_source();
        assert_eq!(a, b);
    }

    #[test]
    fn most_cases_validate() {
        let valid = (0..50u64)
            .filter(|&n| ir_case(1, n).validate().is_ok())
            .count();
        assert!(valid >= 25, "only {valid}/50 cases validate");
    }

    #[test]
    fn selects_and_merge_pairs_appear() {
        let mut with_select = 0usize;
        let mut with_pair = 0usize;
        for n in 0..60u64 {
            let p = ir_case(4, n);
            let mut any = false;
            for info in p.blocks() {
                let stmts: Vec<_> = info.block.iter().collect();
                for s in &stmts {
                    if matches!(s.expr(), Expr::Select(..)) {
                        any = true;
                    }
                }
                for w in stmts.windows(2) {
                    if w[0].dest() == w[1].dest()
                        && matches!(w[0].expr(), Expr::Select(..))
                        && matches!(w[1].expr(), Expr::Select(..))
                    {
                        with_pair += 1;
                    }
                }
            }
            with_select += any as usize;
        }
        assert!(
            with_select >= 20,
            "only {with_select}/60 cases had a select"
        );
        assert!(
            with_pair >= 5,
            "only {with_pair} exclusive merge pairs seen"
        );
    }

    #[test]
    fn valid_cases_round_trip_through_source() {
        for n in 0..30u64 {
            let p = ir_case(2, n);
            if p.validate().is_err() {
                continue;
            }
            let src = p.to_source();
            let reparsed = slp_lang::compile(&src)
                .unwrap_or_else(|e| panic!("case {n} did not re-parse: {}\n{src}", e.render(&src)));
            assert_eq!(
                reparsed.to_source(),
                src,
                "case {n} emission is not a fixpoint"
            );
        }
    }
}
