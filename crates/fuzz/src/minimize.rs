//! Delta-debugging minimizer for failing fuzz cases.
//!
//! Reduction re-checks the oracle after every candidate edit and keeps
//! the edit only when the same anomaly (kind + stage) still fires, so a
//! minimized reproducer pins the *original* bug, not a new one.
//!
//! Two modes:
//! - **Structural**, when the case parses: remove statements and loops,
//!   unwrap loop nests, shrink trip counts, and simplify expressions on
//!   the typed [`Program`], re-emitting source after each step.
//! - **Textual**, for parse-stage failures: greedy line removal followed
//!   by shrinking character-chunk removal (a ddmin variant), since a
//!   malformed case has no tree to walk.

use slp_ir::{Expr, Item, Operand, Program};
use slp_vm::MachineConfig;

use crate::oracle::{check_source, Anomaly, AnomalyKind, Budget, Stage};

/// Caps the number of oracle invocations one minimization may spend.
const ORACLE_CALLS: usize = 400;

struct Ctx<'a> {
    machine: &'a MachineConfig,
    budget: &'a Budget,
    want: (AnomalyKind, Stage),
    calls: usize,
}

impl Ctx<'_> {
    /// Whether `src` still reproduces the anomaly under minimization.
    fn still_fails(&mut self, src: &str) -> bool {
        if self.calls >= ORACLE_CALLS {
            return false;
        }
        self.calls += 1;
        matches!(
            check_source(src, self.machine, self.budget),
            Some(a) if (a.kind, a.stage) == self.want
        )
    }
}

/// Minimizes `src`, which must currently reproduce `anomaly`.
///
/// Returns the smallest reproducer found within the call budget; at
/// worst, `src` unchanged.
pub fn minimize(src: &str, anomaly: &Anomaly, machine: &MachineConfig, budget: &Budget) -> String {
    let mut cx = Ctx {
        machine,
        budget,
        want: (anomaly.kind, anomaly.stage),
        calls: 0,
    };
    if !cx.still_fails(src) {
        return src.to_string(); // flaky or budget-dependent: keep as-is
    }
    match slp_lang::compile(src) {
        Ok(program) => minimize_structural(&program, src, &mut cx),
        Err(_) => minimize_textual(src, &mut cx),
    }
}

// ---- structural ---------------------------------------------------------

/// Every way of deleting or simplifying one node of the item tree.
fn candidates(p: &Program) -> Vec<Program> {
    let mut out = Vec::new();
    let n_items = count_edit_points(p.items());
    for k in 0..n_items {
        // Deletion.
        let mut q = p.clone();
        let mut seen = 0;
        edit_nth(q.items_mut(), k, &mut seen, &mut |_| Edit::Delete);
        out.push(q);
        // Loop unwrapping and bound shrinking.
        let mut q = p.clone();
        let mut seen = 0;
        edit_nth(q.items_mut(), k, &mut seen, &mut |item| match item {
            Item::Loop(l) => {
                if l.header.trip_count() > 1 {
                    let mut l = l.clone();
                    l.header.upper = l.header.lower + l.header.step;
                    Edit::Replace(vec![Item::Loop(l)])
                } else {
                    // Single-trip loop: splice the body up one level.
                    Edit::Replace(l.body.clone())
                }
            }
            other => Edit::Replace(vec![other.clone()]),
        });
        out.push(q);
        // Expression simplification.
        let mut q = p.clone();
        let mut seen = 0;
        edit_nth(q.items_mut(), k, &mut seen, &mut |item| match item {
            Item::Stmt(s) => {
                let mut s = s.clone();
                let first = s.expr().operands()[0].clone();
                *s.expr_mut() = match s.expr() {
                    Expr::Copy(Operand::Const(_)) => Expr::Copy(Operand::Const(1.0)),
                    Expr::Copy(_) => Expr::Copy(Operand::Const(1.0)),
                    _ => Expr::Copy(first),
                };
                Edit::Replace(vec![Item::Stmt(s)])
            }
            other => Edit::Replace(vec![other.clone()]),
        });
        out.push(q);
    }
    out
}

enum Edit {
    Delete,
    Replace(Vec<Item>),
}

fn count_edit_points(items: &[Item]) -> usize {
    items
        .iter()
        .map(|i| match i {
            Item::Stmt(_) => 1,
            Item::Loop(l) => 1 + count_edit_points(&l.body),
        })
        .sum()
}

/// Applies `f` to the `k`-th node (pre-order) of the item tree.
fn edit_nth(
    items: &mut Vec<Item>,
    k: usize,
    seen: &mut usize,
    f: &mut dyn FnMut(&Item) -> Edit,
) -> bool {
    let mut idx = 0;
    while idx < items.len() {
        if *seen == k {
            match f(&items[idx]) {
                Edit::Delete => {
                    items.remove(idx);
                }
                Edit::Replace(with) => {
                    items.splice(idx..idx + 1, with);
                }
            }
            *seen += 1;
            return true;
        }
        *seen += 1;
        if let Item::Loop(l) = &mut items[idx] {
            if edit_nth(&mut l.body, k, seen, f) {
                return true;
            }
        }
        idx += 1;
    }
    false
}

fn minimize_structural(program: &Program, src: &str, cx: &mut Ctx<'_>) -> String {
    let mut best_src = src.to_string();
    let mut best = program.clone();
    loop {
        let mut improved = false;
        for cand in candidates(&best) {
            let cand_src = cand.to_source();
            if cand_src.len() < best_src.len() && cx.still_fails(&cand_src) {
                best = cand;
                best_src = cand_src;
                improved = true;
                break;
            }
        }
        if !improved || cx.calls >= ORACLE_CALLS {
            return best_src;
        }
    }
}

// ---- textual ------------------------------------------------------------

fn minimize_textual(src: &str, cx: &mut Ctx<'_>) -> String {
    let mut best = src.to_string();
    // Pass 1: greedy line removal to fixpoint.
    loop {
        let lines: Vec<&str> = best.lines().collect();
        let mut improved = false;
        for skip in 0..lines.len() {
            let cand: String = lines
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != skip)
                .map(|(_, l)| *l)
                .collect::<Vec<_>>()
                .join("\n");
            if cx.still_fails(&cand) {
                best = cand;
                improved = true;
                break;
            }
        }
        if !improved {
            break;
        }
    }
    // Pass 2: shrinking chunk removal over characters.
    let mut chunk = (best.len() / 2).max(1);
    while chunk >= 1 && cx.calls < ORACLE_CALLS {
        let mut improved = false;
        let mut start = 0;
        while start < best.len() {
            let end = floor_boundary(&best, (start + chunk).min(best.len()));
            let s = floor_boundary(&best, start);
            if s >= end {
                start += chunk;
                continue;
            }
            let cand = format!("{}{}", &best[..s], &best[end..]);
            if cx.still_fails(&cand) {
                best = cand;
                improved = true;
            } else {
                start += chunk;
            }
        }
        if !improved {
            if chunk == 1 {
                break;
            }
            chunk /= 2;
        }
    }
    best
}

fn floor_boundary(s: &str, mut pos: usize) -> usize {
    pos = pos.min(s.len());
    while pos > 0 && !s.is_char_boundary(pos) {
        pos -= 1;
    }
    pos
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle;

    fn machine() -> MachineConfig {
        MachineConfig::intel_dunnington()
    }

    #[test]
    fn textual_minimizer_shrinks_a_seeded_panic() {
        // A stand-in oracle cannot be injected, so drive the textual
        // pass directly with a synthetic predicate via Ctx.
        let mut cx = Ctx {
            machine: &machine(),
            budget: &Budget::default(),
            want: (AnomalyKind::Panic, Stage::Parse),
            calls: 0,
        };
        // No current parser panic exists to shrink (that is the point of
        // this PR), so exercise the plumbing: a clean source minimizes
        // to itself because the anomaly never fires.
        let src = "kernel k { array A: f64[4]; for i in 0..4 { A[i] = A[i]; } }";
        assert!(!cx.still_fails(src));
    }

    #[test]
    fn structural_minimizer_preserves_the_anomaly_kind() {
        // Build a case that fails the round-trip oracle artificially?
        // All current oracles pass on valid programs, so check the
        // no-op contract instead: minimize() returns the input when the
        // anomaly does not reproduce.
        let src = "kernel k { array A: f64[4]; for i in 0..4 { A[i] = A[i]; } }";
        let fake = Anomaly {
            kind: AnomalyKind::Panic,
            stage: Stage::Parse,
            strategy: None,
            detail: String::new(),
        };
        let out = minimize(src, &fake, &machine(), &Budget::default());
        assert_eq!(out, src);
        let _ = oracle::STRATEGIES.len();
    }
}
