//! `slp-fuzz`: a deterministic differential fuzzing campaign for the
//! SLP pipeline.
//!
//! The input space of the curated suite is 16 hand-written kernels;
//! this crate adversarially drives the *whole* source → parse → group →
//! schedule → layout → execute path with two generators:
//!
//! - [`mutate::source_case`] — source-text mutants of generated and
//!   hand-written kernels (token splices, bound/stride/type
//!   perturbations, malformed programs);
//! - [`genir::ir_case`] — well-formed typed-IR programs with
//!   adversarial dependence and alignment patterns, rendered back to
//!   source through [`Program::to_source`](slp_ir::Program).
//!
//! Every case runs under `catch_unwind` against five oracles (no
//! panic / scalar equivalence / engine agreement / no lint false
//! positives / symbolic-validator agreement — see
//! [`oracle::check_source`]); failures are shrunk by the
//! [`minimize`](minimize::minimize) delta debugger and stored under
//! `crates/fuzz/corpus/`, which doubles as a regression suite replayed
//! in `cargo test`.
//!
//! Everything is seed-driven: `run_campaign(seed, iters)` is a pure
//! function of its arguments, so a failure report is a reproducer.

pub mod genir;
pub mod minimize;
pub mod mutate;
pub mod oracle;

use oracle::{Anomaly, Budget};
use slp_vm::MachineConfig;

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// PRNG seed; the campaign is a pure function of `(seed, iters)`.
    pub seed: u64,
    /// Number of cases per generator level.
    pub iters: u64,
    /// Execution budgets for the differential oracles.
    pub budget: Budget,
    /// The machine model compiled against.
    pub machine: MachineConfig,
    /// Shrink failures with the delta-debugging minimizer.
    pub minimize: bool,
}

impl FuzzConfig {
    /// The default campaign: `iters` cases per level from `seed`.
    pub fn new(seed: u64, iters: u64) -> Self {
        FuzzConfig {
            seed,
            iters,
            budget: Budget::default(),
            machine: MachineConfig::intel_dunnington(),
            minimize: true,
        }
    }
}

/// One oracle violation, with its (possibly minimized) reproducer.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Generator level and case index, e.g. `src/17` or `ir/3`.
    pub case: String,
    /// The anomaly that fired.
    pub anomaly: Anomaly,
    /// Reproducer source (minimized when the config asks for it).
    pub source: String,
}

/// Campaign totals.
#[derive(Debug, Clone, Default)]
pub struct Stats {
    /// Cases generated and checked.
    pub cases: u64,
    /// Cases the front-end rejected with a typed error.
    pub rejected: u64,
    /// Cases that ran every oracle cleanly.
    pub clean: u64,
    /// Oracle violations.
    pub failures: u64,
}

/// Runs the full two-level campaign; deterministic in `config`.
///
/// The default panic hook is suppressed for the duration so expected
/// `catch_unwind` probes do not spam stderr; it is restored before
/// returning.
pub fn run_campaign(config: &FuzzConfig) -> (Stats, Vec<Failure>) {
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let result = run_campaign_inner(config);
    std::panic::set_hook(hook);
    result
}

fn run_campaign_inner(config: &FuzzConfig) -> (Stats, Vec<Failure>) {
    let mut stats = Stats::default();
    let mut failures = Vec::new();
    let mut check = |case: String, src: String| {
        stats.cases += 1;
        match oracle::check_source(&src, &config.machine, &config.budget) {
            None => {
                // Distinguish clean runs from typed rejections for the
                // summary line (both are passing outcomes).
                if slp_lang::compile(&src).is_ok() {
                    stats.clean += 1;
                } else {
                    stats.rejected += 1;
                }
            }
            Some(anomaly) => {
                stats.failures += 1;
                let source = if config.minimize {
                    minimize::minimize(&src, &anomaly, &config.machine, &config.budget)
                } else {
                    src
                };
                failures.push(Failure {
                    case,
                    anomaly,
                    source,
                });
            }
        }
    };
    for n in 0..config.iters {
        check(format!("src/{n}"), mutate::source_case(config.seed, n));
    }
    for n in 0..config.iters {
        check(
            format!("ir/{n}"),
            genir::ir_case(config.seed, n).to_source(),
        );
    }
    (stats, failures)
}

/// Formats a corpus reproducer file: anomaly header plus source.
pub fn render_reproducer(f: &Failure) -> String {
    format!(
        "// slp-fuzz reproducer: {}\n// case: {}\n// detail: {}\n{}\n",
        f.anomaly.headline(),
        f.case,
        f.anomaly.detail.replace('\n', " "),
        f.source
    )
}

/// Replays every `.slp` file in `dir` through the oracles.
///
/// Returns the failing file names with their anomalies; an empty vector
/// means the whole corpus is clean. Files are checked in sorted order
/// for deterministic reports.
///
/// # Errors
///
/// Returns an IO error if `dir` cannot be read.
pub fn replay_corpus(dir: &std::path::Path) -> std::io::Result<Vec<(String, Anomaly)>> {
    let machine = MachineConfig::intel_dunnington();
    let budget = Budget::default();
    let mut names: Vec<_> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "slp"))
        .collect();
    names.sort();
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let mut out = Vec::new();
    for path in names {
        let src = std::fs::read_to_string(&path)?;
        if let Some(anomaly) = oracle::check_source(&src, &machine, &budget) {
            let name = path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            out.push((name, anomaly));
        }
    }
    std::panic::set_hook(hook);
    Ok(out)
}

/// The crate-relative corpus directory, for tests and the CLI default.
pub fn default_corpus_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("corpus")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_campaign_is_deterministic_and_clean() {
        let cfg = FuzzConfig::new(0, 20);
        let (stats, failures) = run_campaign(&cfg);
        assert_eq!(stats.cases, 40);
        assert_eq!(
            failures.len(),
            0,
            "oracle violations: {:?}",
            failures
                .iter()
                .map(|f| (f.case.clone(), f.anomaly.headline()))
                .collect::<Vec<_>>()
        );
        let (stats2, _) = run_campaign(&cfg);
        assert_eq!(stats.clean, stats2.clean);
        assert_eq!(stats.rejected, stats2.rejected);
    }
}
