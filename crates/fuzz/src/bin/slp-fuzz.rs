//! Command-line front-end for the fuzzing campaign.
//!
//! ```text
//! slp-fuzz run [--seed S] [--iters N] [--no-minimize] [--write DIR]
//! slp-fuzz replay [DIR]
//! slp-fuzz minimize FILE
//! ```
//!
//! `run` executes the two-level campaign and prints one line per
//! failure (exit code 1 if any); `--write` stores minimized reproducers
//! as `.slp` files. `replay` re-checks a corpus directory (default:
//! the crate's `corpus/`). `minimize` shrinks a single failing case.

use std::path::PathBuf;
use std::process::ExitCode;

use slp_fuzz::oracle::{check_source, Budget};
use slp_fuzz::{default_corpus_dir, minimize, render_reproducer, run_campaign, FuzzConfig};
use slp_vm::MachineConfig;

fn usage() -> ExitCode {
    eprintln!(
        "usage: slp-fuzz run [--seed S] [--iters N] [--no-minimize] [--write DIR]\n       \
         slp-fuzz replay [DIR]\n       \
         slp-fuzz minimize FILE"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("replay") => cmd_replay(&args[1..]),
        Some("minimize") => cmd_minimize(&args[1..]),
        _ => usage(),
    }
}

fn cmd_run(args: &[String]) -> ExitCode {
    let mut seed = 0u64;
    let mut iters = 500u64;
    let mut minimize = true;
    let mut write: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => seed = v,
                None => return usage(),
            },
            "--iters" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => iters = v,
                None => return usage(),
            },
            "--no-minimize" => minimize = false,
            "--write" => match it.next() {
                Some(v) => write = Some(PathBuf::from(v)),
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    let mut cfg = FuzzConfig::new(seed, iters);
    cfg.minimize = minimize;
    let (stats, failures) = run_campaign(&cfg);
    println!(
        "slp-fuzz: {} cases (seed {seed}): {} clean, {} rejected (typed), {} failures",
        stats.cases, stats.clean, stats.rejected, stats.failures
    );
    for f in &failures {
        println!(
            "FAIL {} {}: {}",
            f.case,
            f.anomaly.headline(),
            f.anomaly.detail
        );
    }
    if let Some(dir) = write {
        if let Err(e) = std::fs::create_dir_all(&dir) {
            eprintln!("slp-fuzz: cannot create {}: {e}", dir.display());
            return ExitCode::from(2);
        }
        for (k, f) in failures.iter().enumerate() {
            let name = format!(
                "{}-{}-{k}.slp",
                f.anomaly.kind.name(),
                f.case.replace('/', "-")
            );
            let path = dir.join(name);
            if let Err(e) = std::fs::write(&path, render_reproducer(f)) {
                eprintln!("slp-fuzz: cannot write {}: {e}", path.display());
                return ExitCode::from(2);
            }
            println!("wrote {}", path.display());
        }
    }
    if failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn cmd_replay(args: &[String]) -> ExitCode {
    let dir = args
        .first()
        .map(PathBuf::from)
        .unwrap_or_else(default_corpus_dir);
    match slp_fuzz::replay_corpus(&dir) {
        Err(e) => {
            eprintln!("slp-fuzz: cannot replay {}: {e}", dir.display());
            ExitCode::from(2)
        }
        Ok(failures) if failures.is_empty() => {
            println!("slp-fuzz: corpus {} clean", dir.display());
            ExitCode::SUCCESS
        }
        Ok(failures) => {
            for (name, anomaly) in &failures {
                println!("FAIL {name} {}: {}", anomaly.headline(), anomaly.detail);
            }
            ExitCode::FAILURE
        }
    }
}

fn cmd_minimize(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        return usage();
    };
    let src = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("slp-fuzz: cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let machine = MachineConfig::intel_dunnington();
    let budget = Budget::default();
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let out = match check_source(&src, &machine, &budget) {
        None => {
            std::panic::set_hook(hook);
            println!("slp-fuzz: {path} does not reproduce any anomaly");
            return ExitCode::SUCCESS;
        }
        Some(anomaly) => {
            let min = minimize::minimize(&src, &anomaly, &machine, &budget);
            std::panic::set_hook(hook);
            println!("// {}", anomaly.headline());
            min
        }
    };
    println!("{out}");
    ExitCode::FAILURE
}
