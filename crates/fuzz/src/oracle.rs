//! The differential oracles: one fuzz case in, one verdict out.
//!
//! A case is a source string. It walks the full pipeline —
//! parse → lower → validate → compile (per strategy) → execute — with
//! every stage wrapped in [`catch_unwind`], and is judged against three
//! oracles:
//!
//! 1. **No panic**: every rejection must be a typed error
//!    ([`slp_lang::ParseError`], [`slp_ir::ValidationError`],
//!    [`slp_core::ExecError`]); a panic at any stage is a bug.
//! 2. **Scalar equivalence**: for every vectorizing strategy, the final
//!    memory image must be bit-identical to the scalar run
//!    ([`slp_verify::check_differential`]).
//! 3. **Engine agreement**: the bytecode engine and the reference
//!    tree-walking interpreter must agree on state, statistics and block
//!    accounting ([`slp_verify::check_engine_agreement`]).
//! 4. **No lint false positives**: `V502` claims a subscript *provably*
//!    escapes its array, so a program whose scalar reference run
//!    completes without an out-of-bounds trap must never trip it
//!    ([`slp_analyze::lint_program`]).
//! 5. **Validator agreement**: the symbolic translation validator
//!    ([`slp_tv::validate`]) must never *refute* a kernel whose
//!    differential check was clean — a refutation carries an
//!    execution-confirmed counterexample, so either the compiler
//!    miscompiles on a non-default input the point-wise check missed, or
//!    the validator itself is wrong. Both are bugs worth a reproducer.
//!    `Proved`/`Budget`/`Unsupported` verdicts make no extra claim.
//! 6. **Certificate soundness**: the memory-safety certificate's
//!    verdicts are proofs, held to execution in both directions. A
//!    kernel certified all-`ProvenSafe` must never trap out of bounds in
//!    the fully checked reference engine (the unchecked fast path would
//!    have corrupted memory); a kernel with a `ProvenFaulting` access
//!    must never complete cleanly (the "proof" of a fault was wrong).
//!
//! Programs whose dynamic statement count or memory footprint exceeds
//! the fuzzing budgets are compile-tested only, so a hostile bound like
//! `0..1<<60` cannot stall the campaign.

use std::panic::{catch_unwind, AssertUnwindSafe};

use slp_core::{SlpConfig, Strategy};
use slp_ir::Program;
use slp_vm::MachineConfig;

/// The pipeline stage at which an anomaly surfaced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Lexing, parsing or lowering of source text.
    Parse,
    /// Static validation of the lowered program.
    Validate,
    /// The SLP optimizer proper.
    Compile,
    /// VM execution and the two differential oracles.
    Execute,
    /// Re-emission of the program as source.
    Emit,
    /// The `slp-analyze` whole-program lints.
    Lint,
    /// The `slp-tv` symbolic translation validator.
    Prove,
}

impl Stage {
    /// Stable lower-case name, used in reports and corpus headers.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Parse => "parse",
            Stage::Validate => "validate",
            Stage::Compile => "compile",
            Stage::Execute => "execute",
            Stage::Emit => "emit",
            Stage::Lint => "lint",
            Stage::Prove => "prove",
        }
    }
}

/// What went wrong — the oracle that fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnomalyKind {
    /// A stage panicked instead of returning a typed error.
    Panic,
    /// Vectorized state diverged from the scalar reference.
    StateDivergence,
    /// The bytecode engine disagreed with the reference engine.
    EngineDivergence,
    /// A valid program failed to re-parse from its own emitted source.
    RoundTrip,
    /// An error-severity lint fired on a program whose reference run is
    /// clean (a `V502` on a program with no out-of-bounds access).
    LintFalsePositive,
    /// The symbolic validator refuted a kernel whose differential check
    /// was clean, or its counterexample failed to replay.
    ValidatorDisagreement,
    /// The memory-safety certificate's proof disagreed with execution:
    /// an all-`ProvenSafe` kernel trapped out of bounds in the checked
    /// reference engine, or a `ProvenFaulting` kernel completed cleanly.
    CertificateUnsound,
}

impl AnomalyKind {
    /// Stable lower-case name, used in reports and corpus headers.
    pub fn name(self) -> &'static str {
        match self {
            AnomalyKind::Panic => "panic",
            AnomalyKind::StateDivergence => "state-divergence",
            AnomalyKind::EngineDivergence => "engine-divergence",
            AnomalyKind::RoundTrip => "round-trip",
            AnomalyKind::LintFalsePositive => "lint-false-positive",
            AnomalyKind::ValidatorDisagreement => "validator-disagreement",
            AnomalyKind::CertificateUnsound => "certificate-unsound",
        }
    }
}

/// An oracle violation: the bug class, where it fired, and a detail
/// message (panic payload or first diagnostic).
#[derive(Debug, Clone)]
pub struct Anomaly {
    /// The oracle that fired.
    pub kind: AnomalyKind,
    /// The pipeline stage.
    pub stage: Stage,
    /// Strategy label when the anomaly is strategy-specific.
    pub strategy: Option<&'static str>,
    /// Panic payload or first diagnostic rendering.
    pub detail: String,
}

impl Anomaly {
    /// One-line rendering, stable enough for minimizer equivalence.
    pub fn headline(&self) -> String {
        match self.strategy {
            Some(s) => format!("{}/{} [{s}]", self.kind.name(), self.stage.name()),
            None => format!("{}/{}", self.kind.name(), self.stage.name()),
        }
    }
}

/// Execution budgets: cases beyond these run the compiler but not the VM.
#[derive(Debug, Clone, Copy)]
pub struct Budget {
    /// Max dynamic statement executions (Σ block size × trip product).
    pub dynamic_stmts: i64,
    /// Max total array elements.
    pub array_elems: i64,
}

impl Default for Budget {
    fn default() -> Self {
        Budget {
            dynamic_stmts: 1 << 20,
            array_elems: 1 << 20,
        }
    }
}

/// Whether `program` fits the execution budgets.
pub fn within_budget(program: &Program, budget: &Budget) -> bool {
    let elems = program
        .arrays()
        .iter()
        .fold(0i64, |acc, a| acc.saturating_add(a.len().max(0)));
    if elems > budget.array_elems {
        return false;
    }
    let mut dynamic = 0i64;
    for info in program.blocks() {
        let trips = info
            .loops
            .iter()
            .fold(1i64, |acc, h| acc.saturating_mul(h.trip_count().max(0)));
        dynamic = dynamic.saturating_add(trips.saturating_mul(info.block.len() as i64));
    }
    dynamic <= budget.dynamic_stmts
}

/// The strategy matrix every valid program is pushed through.
///
/// `(strategy, layout, cross_iteration_reuse, refine_deps, label)` —
/// covering the four §7 schemes, the cross-iteration-reuse variant of
/// the holistic optimizer, the range-refined dependence-testing
/// variant (so an unsoundly disproved dependence shows up as a state
/// divergence against the scalar run), and the branch-and-bound exact
/// packer (so a solver packing the heuristic would never produce is
/// still held to scalar equivalence).
pub const STRATEGIES: &[(Strategy, bool, bool, bool, &str)] = &[
    (Strategy::Native, false, false, false, "native"),
    (Strategy::Baseline, false, false, false, "slp"),
    (Strategy::Holistic, false, false, false, "global"),
    (Strategy::Holistic, true, false, false, "global+layout"),
    (Strategy::Holistic, true, true, false, "global+reuse"),
    (Strategy::Holistic, false, false, true, "global+refine"),
    (Strategy::Optimal, false, false, false, "global+opt"),
];

fn config_for(
    machine: &MachineConfig,
    strategy: Strategy,
    layout: bool,
    reuse: bool,
    refine: bool,
) -> SlpConfig {
    let mut cfg = SlpConfig::for_machine(machine.clone(), strategy);
    if layout {
        cfg = cfg.with_layout();
    }
    if refine {
        cfg = cfg.with_refined_deps();
    }
    cfg.cross_iteration_reuse = reuse;
    if strategy == Strategy::Optimal {
        // A small deterministic node cap instead of a wall deadline: fuzz
        // verdicts must not depend on machine load, and a few hundred
        // nodes already exercises merge/exclude branching, bound pruning
        // and budget degradation.
        cfg = cfg
            .with_packer(slp_opt::OptimalPacker)
            .with_opt_budget(0, 256);
    }
    cfg
}

fn panic_payload(e: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = e.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = e.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn guarded<T>(f: impl FnOnce() -> T) -> Result<T, String> {
    catch_unwind(AssertUnwindSafe(f)).map_err(panic_payload)
}

/// Runs every oracle against `src` on `machine`.
///
/// Returns `None` when the case is clean: either it was rejected with a
/// typed error at some stage, or it survived the whole pipeline with all
/// oracles agreeing. Returns the first [`Anomaly`] otherwise.
pub fn check_source(src: &str, machine: &MachineConfig, budget: &Budget) -> Option<Anomaly> {
    // Stage 1: parse + lower. A typed ParseError is a clean rejection.
    let program = match guarded(|| slp_lang::compile(src)) {
        Err(panic) => {
            return Some(Anomaly {
                kind: AnomalyKind::Panic,
                stage: Stage::Parse,
                strategy: None,
                detail: panic,
            })
        }
        Ok(Err(_)) => return None,
        Ok(Ok(p)) => p,
    };

    check_program(&program, machine, budget)
}

/// Runs the post-parse oracles against an already-lowered program.
///
/// Used directly by the typed-IR generator (which never had source) and
/// by [`check_source`] after parsing.
pub fn check_program(
    program: &Program,
    machine: &MachineConfig,
    budget: &Budget,
) -> Option<Anomaly> {
    // Stage 2: validation. A typed ValidationError is a clean rejection.
    match guarded(|| program.validate()) {
        Err(panic) => {
            return Some(Anomaly {
                kind: AnomalyKind::Panic,
                stage: Stage::Validate,
                strategy: None,
                detail: panic,
            })
        }
        Ok(Err(_)) => return None,
        Ok(Ok(())) => {}
    }

    // Stage 3: emission round-trip. Every valid program must re-parse
    // from its own source rendering (this is what the corpus stores).
    match guarded(|| slp_lang::compile(&program.to_source())) {
        Err(panic) => {
            return Some(Anomaly {
                kind: AnomalyKind::Panic,
                stage: Stage::Emit,
                strategy: None,
                detail: panic,
            })
        }
        Ok(Err(e)) => {
            return Some(Anomaly {
                kind: AnomalyKind::RoundTrip,
                stage: Stage::Emit,
                strategy: None,
                detail: e.render(&program.to_source()),
            })
        }
        Ok(Ok(_)) => {}
    }

    let run_vm = within_budget(program, budget);

    // Stage 4: the no-false-positive lint oracle. V502 asserts an
    // out-of-bounds access is provable; when the scalar reference run
    // of the same program completes without an OOB trap, the "proof"
    // was wrong. (Warnings V500/V501/V503 are heuristic and exempt.)
    if run_vm {
        let oob = match guarded(|| {
            slp_analyze::lint_program(program)
                .into_iter()
                .find(|f| f.kind == slp_analyze::FindingKind::OutOfBounds)
        }) {
            Err(panic) => {
                return Some(Anomaly {
                    kind: AnomalyKind::Panic,
                    stage: Stage::Lint,
                    strategy: None,
                    detail: panic,
                })
            }
            Ok(f) => f,
        };
        if let Some(finding) = oob {
            match guarded(|| slp_vm::run_scalar(program, machine)) {
                Err(panic) => {
                    return Some(Anomaly {
                        kind: AnomalyKind::Panic,
                        stage: Stage::Execute,
                        strategy: None,
                        detail: panic,
                    })
                }
                Ok(Ok(_)) => {
                    return Some(Anomaly {
                        kind: AnomalyKind::LintFalsePositive,
                        stage: Stage::Lint,
                        strategy: None,
                        detail: finding.message,
                    })
                }
                // The reference run trapped: the access really is out of
                // bounds and the lint was right to flag it.
                Ok(Err(_)) => {}
            }
        }
    }

    // Stages 5-6: each strategy compiles; in-budget programs also run
    // the two differential oracles.
    for &(strategy, layout, reuse, refine, label) in STRATEGIES {
        let cfg = config_for(machine, strategy, layout, reuse, refine);
        let kernel = match guarded(|| slp_core::compile(program, &cfg)) {
            Err(panic) => {
                return Some(Anomaly {
                    kind: AnomalyKind::Panic,
                    stage: Stage::Compile,
                    strategy: Some(label),
                    detail: panic,
                })
            }
            Ok(k) => k,
        };
        if !run_vm {
            continue;
        }
        match guarded(|| slp_verify::check_differential(program, &kernel)) {
            Err(panic) => {
                return Some(Anomaly {
                    kind: AnomalyKind::Panic,
                    stage: Stage::Execute,
                    strategy: Some(label),
                    detail: panic,
                })
            }
            Ok(diags) if !diags.is_empty() => {
                return Some(Anomaly {
                    kind: AnomalyKind::StateDivergence,
                    stage: Stage::Execute,
                    strategy: Some(label),
                    detail: diags[0].to_string(),
                })
            }
            Ok(_) => {}
        }
        match guarded(|| slp_verify::check_engine_agreement(&kernel)) {
            Err(panic) => {
                return Some(Anomaly {
                    kind: AnomalyKind::Panic,
                    stage: Stage::Execute,
                    strategy: Some(label),
                    detail: panic,
                })
            }
            Ok(diags) if !diags.is_empty() => {
                return Some(Anomaly {
                    kind: AnomalyKind::EngineDivergence,
                    stage: Stage::Execute,
                    strategy: Some(label),
                    detail: diags[0].to_string(),
                })
            }
            Ok(_) => {}
        }
        // The certificate-soundness oracle, both directions. The
        // reference engine keeps every bounds check regardless of the
        // certificate, so it is the ground truth the certificate's
        // proofs are held to: all-safe kernels must run clean, and a
        // proven-faulting access must actually trap (any earlier typed
        // error still counts as a trap — the run did not complete).
        match guarded(|| slp_vm::execute_reference(&kernel, machine)) {
            Err(panic) => {
                return Some(Anomaly {
                    kind: AnomalyKind::Panic,
                    stage: Stage::Execute,
                    strategy: Some(label),
                    detail: panic,
                })
            }
            Ok(Err(e))
                if kernel.safety.all_proven_safe()
                    && e.kind() == slp_vm::ExecErrorKind::OutOfBounds =>
            {
                return Some(Anomaly {
                    kind: AnomalyKind::CertificateUnsound,
                    stage: Stage::Execute,
                    strategy: Some(label),
                    detail: format!(
                        "certificate proves every access in bounds but the reference \
                         engine trapped: {e}"
                    ),
                })
            }
            Ok(Ok(_)) if kernel.safety.proven_faulting() > 0 => {
                return Some(Anomaly {
                    kind: AnomalyKind::CertificateUnsound,
                    stage: Stage::Execute,
                    strategy: Some(label),
                    detail: format!(
                        "certificate proves {} access(es) faulting but the reference \
                         engine completed cleanly",
                        kernel.safety.proven_faulting()
                    ),
                })
            }
            Ok(_) => {}
        }
        // The validator-agreement oracle. The differential check above
        // was clean, so a refutation here means the validator found (and
        // execution-confirmed) a divergence on an input the point-wise
        // check never tried. A counterexample that then fails to replay
        // is a validator-determinism bug instead; both disagree with the
        // differential verdict.
        match guarded(|| slp_tv::validate(program, &kernel, machine, &slp_tv::Budgets::default())) {
            Err(panic) => {
                return Some(Anomaly {
                    kind: AnomalyKind::Panic,
                    stage: Stage::Prove,
                    strategy: Some(label),
                    detail: panic,
                })
            }
            Ok(slp_tv::Verdict::Refuted(cex)) => {
                let replays =
                    guarded(|| slp_tv::replay_counterexample(program, &kernel, machine, &cex))
                        .unwrap_or(false);
                return Some(Anomaly {
                    kind: AnomalyKind::ValidatorDisagreement,
                    stage: Stage::Prove,
                    strategy: Some(label),
                    detail: format!(
                        "refuted at {} (scalar {:?}, vectorized {:?}, replay confirmed: {replays}) \
                         but the differential check was clean",
                        cex.location, cex.scalar_value, cex.vector_value
                    ),
                });
            }
            // Proved agrees with the clean differential; Budget and
            // Unsupported make no claim.
            Ok(_) => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> MachineConfig {
        MachineConfig::intel_dunnington()
    }

    #[test]
    fn clean_kernel_passes_every_oracle() {
        let src = "kernel k {
            const N = 16;
            array A: f64[N]; array B: f64[N];
            for i in 0..N { A[i] = A[i] + B[i]; }
        }";
        assert!(check_source(src, &machine(), &Budget::default()).is_none());
    }

    #[test]
    fn malformed_source_is_a_clean_rejection() {
        for src in ["kernel", "kernel k { array A: f64[-", "@@@@", ""] {
            assert!(check_source(src, &machine(), &Budget::default()).is_none());
        }
    }

    #[test]
    fn over_budget_programs_are_compile_tested_only() {
        // 1<<40 iterations: legal, validates, but must not be executed.
        let src = "kernel k {
            array A: f64[8];
            scalar s: f64;
            for i in 0..1099511627776 { s = s + A[0]; }
        }";
        assert!(check_source(src, &machine(), &Budget::default()).is_none());
    }

    #[test]
    fn strided_kernel_does_not_trip_the_lint_oracle() {
        // A step-2 loop stresses exactly the strided reasoning behind
        // V502; a clean run must never be flagged.
        let src = "kernel k {
            const N = 16;
            array A: f64[2*N]; array B: f64[N];
            for i in 0..N step 2 {
                A[2*i] = B[i] + 1.0;
                A[2*i+1] = A[i+3] + 1.0;
            }
        }";
        assert!(check_source(src, &machine(), &Budget::default()).is_none());
    }

    #[test]
    fn suite_corpus_is_clean() {
        for (name, src) in slp_suite::corpus(7, 4) {
            let verdict = check_source(&src, &machine(), &Budget::default());
            assert!(verdict.is_none(), "{name}: {verdict:?}");
        }
    }
}
