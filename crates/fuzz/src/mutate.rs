//! Source-level case generation: mutations over generated kernels.
//!
//! The seed pool is the [`slp_suite`] random-program generator plus the
//! hand-written benchmark kernels. Each case applies a small burst of
//! mutations: character splices, span deletions/duplications, numeric
//! perturbations toward adversarial values (`i64::MAX`, `-1`, huge
//! strides), type swaps, and keyword corruption. Most mutants are
//! malformed — exactly what drives the "typed error, never a panic"
//! oracle — while the survivors stress the pipeline with bounds and
//! strides the curated suite never uses.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Adversarial integers spliced over numeric literals.
const EXTREME_INTS: &[&str] = &[
    "9223372036854775807",
    "-9223372036854775808",
    "99999999999999999999999",
    "-1",
    "0",
    "1152921504606846976",
    "4611686018427387904",
];

/// Fragments spliced at random positions.
const SPLICES: &[&str] = &[
    "[",
    "]",
    "{",
    "}",
    "(",
    ")",
    ";",
    "..",
    "*",
    "+",
    "-",
    "/",
    "=",
    "step",
    "for",
    "kernel",
    "array",
    "scalar",
    "const",
    "f32",
    "i64",
    "\"",
    ".",
    "in",
    "i",
    "A",
    "if",
    "else",
    "select",
    "<=",
    "!=",
    "if (A[i] < 0) { A[i] = 0; }",
];

/// A base program to mutate, drawn from the generators and the suite.
fn base_source(rng: &mut StdRng) -> String {
    let k = rng.gen_range(0..10u32);
    if k < 6 {
        // Generator output: structured, valid, parameter-swept. The
        // generator emits `select` expressions, so branchy programs
        // flow through the mutation pool too.
        let seed = rng.gen_range(0..1u64 << 48);
        slp_suite::corpus(seed, 1).remove(0).1
    } else if k < 8 {
        // A branchy kernel: `if`/`else` bodies the front-end
        // if-converts, so mutants attack the control-flow grammar.
        let names = slp_suite::branchy_catalog();
        let pick = rng.gen_range(0..names.len());
        slp_suite::branchy_source(names[pick], 1)
    } else {
        // A hand-written benchmark kernel at a small scale.
        let names = slp_suite::catalog();
        let pick = rng.gen_range(0..names.len());
        slp_suite::source(names[pick].name, 1)
    }
}

/// Replaces the numeric literal starting at `pos` (if any digit is
/// there) with an adversarial value.
fn perturb_number(src: &mut String, pos: usize, rng: &mut StdRng) {
    let bytes = src.as_bytes();
    if pos >= bytes.len() || !bytes[pos].is_ascii_digit() {
        return;
    }
    let start = pos;
    let mut end = pos;
    while end < bytes.len() && bytes[end].is_ascii_digit() {
        end += 1;
    }
    let replacement = EXTREME_INTS[rng.gen_range(0..EXTREME_INTS.len())];
    src.replace_range(start..end, replacement);
}

/// One mutation burst over `src`.
fn mutate_once(src: &mut String, rng: &mut StdRng) {
    if src.is_empty() {
        src.push_str("kernel");
        return;
    }
    match rng.gen_range(0..6u32) {
        // Splice a fragment at a random byte boundary.
        0 => {
            let pos = char_boundary(src, rng.gen_range(0..=src.len()));
            let frag = SPLICES[rng.gen_range(0..SPLICES.len())];
            src.insert_str(pos, frag);
        }
        // Delete a random span.
        1 => {
            let a = char_boundary(src, rng.gen_range(0..src.len()));
            let len = rng.gen_range(1..=32usize.min(src.len() - a).max(1));
            let b = char_boundary(src, (a + len).min(src.len()));
            if a < b {
                src.replace_range(a..b, "");
            }
        }
        // Duplicate a random span in place.
        2 => {
            let a = char_boundary(src, rng.gen_range(0..src.len()));
            let len = rng.gen_range(1..=48usize.min(src.len() - a).max(1));
            let b = char_boundary(src, (a + len).min(src.len()));
            let span = src[a..b].to_string();
            src.insert_str(b, &span);
        }
        // Perturb a numeric literal toward an extreme.
        3 => {
            let digits: Vec<usize> = src
                .bytes()
                .enumerate()
                .filter(|(_, b)| b.is_ascii_digit())
                .map(|(i, _)| i)
                .collect();
            if !digits.is_empty() {
                let pos = digits[rng.gen_range(0..digits.len())];
                perturb_number(src, pos, rng);
            }
        }
        // Swap a scalar type keyword.
        4 => {
            let types = ["f32", "f64", "i8", "i16", "i32", "i64"];
            let from = types[rng.gen_range(0..types.len())];
            let to = types[rng.gen_range(0..types.len())];
            if let Some(at) = src.find(from) {
                src.replace_range(at..at + from.len(), to);
            }
        }
        // Truncate: unterminated constructs.
        _ => {
            let keep = char_boundary(src, rng.gen_range(0..src.len()));
            src.truncate(keep);
        }
    }
}

/// Largest char boundary `<= pos`.
fn char_boundary(s: &str, mut pos: usize) -> usize {
    pos = pos.min(s.len());
    while pos > 0 && !s.is_char_boundary(pos) {
        pos -= 1;
    }
    pos
}

/// Deterministically generates the `n`-th source-level fuzz case.
pub fn source_case(seed: u64, n: u64) -> String {
    let mut rng = StdRng::seed_from_u64(seed ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let mut src = base_source(&mut rng);
    // Every third case stays unmutated: a pure generator sweep that
    // feeds the differential oracles with valid programs.
    if n.is_multiple_of(3) {
        return src;
    }
    let bursts = rng.gen_range(1..=4u32);
    for _ in 0..bursts {
        mutate_once(&mut src, &mut rng);
    }
    src
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_are_deterministic() {
        assert_eq!(source_case(1, 5), source_case(1, 5));
        assert_ne!(source_case(1, 4), source_case(1, 5));
    }

    #[test]
    fn unmutated_cases_parse() {
        for n in [0u64, 3, 6, 9] {
            let src = source_case(9, n);
            assert!(slp_lang::compile(&src).is_ok(), "case {n} must parse");
        }
    }

    #[test]
    fn branchy_bases_flow_through() {
        // The unmutated (n % 3 == 0) stream must carry both `if` bodies
        // from the branchy catalog and `select` expressions from the
        // random generator, so the differential oracles exercise
        // if-conversion and masked superwords on every campaign.
        let mut with_if = 0usize;
        let mut with_select = 0usize;
        for n in (0..180u64).step_by(3) {
            let src = source_case(11, n);
            with_if += src.contains("if ") as usize;
            with_select += src.contains("select(") as usize;
        }
        assert!(with_if >= 6, "only {with_if}/60 bases had an if");
        assert!(with_select >= 6, "only {with_select}/60 bases had a select");
    }

    #[test]
    fn mutation_preserves_utf8() {
        // The mutator slices at char boundaries; a thousand bursts must
        // never split a code point or panic.
        for n in 0..200u64 {
            let _ = source_case(0xFEED, n);
        }
    }
}
