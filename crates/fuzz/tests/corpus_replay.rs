//! Replays the minimized reproducer corpus. Every file under
//! `crates/fuzz/corpus/` is a bug the campaign found and the pipeline
//! fixed; any anomaly here is a regression.

#[test]
fn corpus_is_clean() {
    let dir = slp_fuzz::default_corpus_dir();
    let failures = slp_fuzz::replay_corpus(&dir).expect("read corpus dir");
    assert!(
        failures.is_empty(),
        "corpus regressions:\n{}",
        failures
            .iter()
            .map(|(name, a)| format!("  {name}: {}\n    {}", a.headline(), a.detail))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn corpus_covers_every_bug_class() {
    // Guards against the corpus being emptied or a class being dropped:
    // the campaign surfaced round-trip, compile-panic, and
    // state-divergence bugs, and at least one reproducer of each must
    // stay checked in.
    let dir = slp_fuzz::default_corpus_dir();
    let names: Vec<String> = std::fs::read_dir(&dir)
        .expect("corpus dir")
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .collect();
    for class in ["round-trip", "panic", "state-divergence"] {
        assert!(
            names.iter().any(|n| n.starts_with(class)),
            "no {class} reproducer in corpus: {names:?}"
        );
    }
    // The if-conversion reproducers are promoted by hand, not by the
    // campaign writer; make sure a branchy case of each flavor stays in.
    assert!(
        names.iter().any(|n| n.contains("-branchy-")),
        "no branchy reproducer in corpus: {names:?}"
    );
}
