//! Triage tool for corpus failures: compiles one `.slp` file under each
//! strategy and dumps the unrolled program, every block schedule, and
//! the differential-oracle diagnostics (or the panic message).
//!
//! ```text
//! cargo run --release -p slp-fuzz --example debug_case -- crates/fuzz/corpus/foo.slp
//! ```

use slp_core::{SlpConfig, Strategy};
use slp_vm::MachineConfig;

fn main() {
    let path = std::env::args().nth(1).expect("usage: debug_case FILE");
    let src = std::fs::read_to_string(&path).expect("read");
    let program = slp_lang::compile(&src).expect("compile");
    program.validate().expect("validate");
    let machine = MachineConfig::intel_dunnington();
    for (strategy, label) in [
        (Strategy::Native, "native"),
        (Strategy::Baseline, "slp"),
        (Strategy::Holistic, "global"),
    ] {
        println!("==== {label} ====");
        let cfg = SlpConfig::for_machine(machine.clone(), strategy);
        let kernel = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            slp_core::compile(&program, &cfg)
        })) {
            Ok(k) => k,
            Err(e) => {
                println!(
                    "PANIC: {:?}",
                    e.downcast_ref::<String>().cloned().unwrap_or_default()
                );
                continue;
            }
        };
        println!("-- unrolled program --\n{}", kernel.program.to_source());
        for (bid, sched) in &kernel.schedules {
            println!("-- block {bid:?} schedule --\n{sched}");
        }
        let diags = slp_verify::check_differential(&program, &kernel);
        for d in &diags {
            println!("DIVERGENCE: {d}");
        }
        if diags.is_empty() {
            println!("state: OK");
        }
    }
}
