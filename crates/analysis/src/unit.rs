//! Grouping units: atomic statement sets during (iterative) grouping.
//!
//! The basic grouping algorithm finds SIMD groups of size two; iterative
//! grouping (§4.2.2) then "treats each SIMD group as a new single
//! statement, and each variable pack as a new single variable" and re-runs
//! the basic algorithm. A [`Unit`] is that generalized statement: one or
//! more isomorphic, mutually independent statements handled atomically.

use std::fmt;

use slp_ir::{BasicBlock, BlockDeps, Operand, Statement, StmtId, TypeEnv};

use crate::key::PackContent;

/// The operand position a variable pack was drawn from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PackPos {
    /// The destinations of the grouped statements.
    Dest,
    /// The `k`-th right-hand-side operand position.
    Operand(usize),
}

impl fmt::Display for PackPos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PackPos::Dest => write!(f, "dest"),
            PackPos::Operand(k) => write!(f, "op{k}"),
        }
    }
}

/// A variable pack: the operands occupying one position across the
/// statements of a (candidate) group, together with its order-insensitive
/// content key.
#[derive(Debug, Clone, PartialEq)]
pub struct Pack {
    /// Which operand position the pack was drawn from.
    pub pos: PackPos,
    /// The operands in statement order (not yet lane order).
    pub ops: Vec<Operand>,
    /// Order-insensitive identity.
    pub content: PackContent,
}

impl Pack {
    fn new(pos: PackPos, ops: Vec<Operand>) -> Self {
        let content = PackContent::new(ops.iter());
        Pack { pos, ops, content }
    }

    /// Whether this pack would occupy vector register lanes (constants are
    /// materialized once and are free thereafter).
    pub fn is_location_pack(&self) -> bool {
        self.ops.iter().all(Operand::is_location)
    }
}

/// An atomic set of statements treated as one unit by the grouping
/// algorithm.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Unit {
    stmts: Vec<StmtId>,
}

impl Unit {
    /// A unit holding a single statement (round one of grouping).
    pub fn singleton(s: StmtId) -> Self {
        Unit { stmts: vec![s] }
    }

    /// Merges two units into one (a grouping decision).
    pub fn merged(a: &Unit, b: &Unit) -> Self {
        let mut stmts = a.stmts.clone();
        stmts.extend_from_slice(&b.stmts);
        Unit { stmts }
    }

    /// The member statements (in discovery order, not lane order).
    pub fn stmts(&self) -> &[StmtId] {
        &self.stmts
    }

    /// Number of member statements (= lanes this unit occupies).
    pub fn width(&self) -> usize {
        self.stmts.len()
    }

    /// Whether the unit holds a single statement.
    pub fn is_singleton(&self) -> bool {
        self.stmts.len() == 1
    }

    /// Looks up the member statements in `block`.
    ///
    /// # Panics
    ///
    /// Panics if a member statement is not present in `block`.
    pub fn resolve<'b>(&self, block: &'b BasicBlock) -> Vec<&'b Statement> {
        self.stmts
            .iter()
            .map(|&id| block.stmt(id).expect("unit statement in block"))
            .collect()
    }

    /// The variable packs this unit's statements form, one per operand
    /// position (destination first). Constant-only positions are skipped —
    /// they never cost memory traffic.
    pub fn packs(&self, block: &BasicBlock) -> Vec<Pack> {
        let stmts = self.resolve(block);
        let mut packs = Vec::new();
        let dest_ops: Vec<Operand> = stmts.iter().map(|s| s.def()).collect();
        packs.push(Pack::new(PackPos::Dest, dest_ops));
        let arity = stmts[0].expr().arity();
        for k in 0..arity {
            let ops: Vec<Operand> = stmts
                .iter()
                .map(|s| s.expr().operands()[k].clone())
                .collect();
            if ops.iter().all(Operand::is_location) {
                packs.push(Pack::new(PackPos::Operand(k), ops));
            }
        }
        packs
    }

    /// Whether two units may be merged: pairwise isomorphic statements
    /// (§4.1 constraint 3) and full cross-independence (§4.1 constraint 1).
    pub fn can_merge<E: TypeEnv>(
        &self,
        other: &Unit,
        block: &BasicBlock,
        deps: &BlockDeps,
        env: &E,
    ) -> bool {
        if self.stmts.iter().any(|s| other.stmts.contains(s)) {
            return false;
        }
        let a = self.resolve(block);
        let b = other.resolve(block);
        // Members within each unit are isomorphic by construction, so
        // comparing representatives settles the class; cross-independence
        // needs every pair.
        if !a[0].isomorphic(b[0], env) {
            return false;
        }
        self.stmts
            .iter()
            .all(|&x| other.stmts.iter().all(|&y| deps.independent(x, y)))
    }
}

impl fmt::Display for Unit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<")?;
        for (i, s) in self.stmts.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{s}")?;
        }
        write!(f, ">")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slp_ir::{BinOp, Expr, Program, ScalarType};

    /// Builds the paper's Figure 2 block:
    /// S1: V1=V3; S2: V2=V5; S3: V5=V7; S4: V3=V1+V1? ...
    /// We use a simplified variant with the same grouping structure:
    /// S1: v1 = v3;  S2: v2 = v5;  S3: v5 = v7;
    /// S4: v8 = v3 + v1;  S5: v9 = v5 + v2;
    fn fig2ish() -> (Program, BasicBlock) {
        let mut p = Program::new("fig2");
        let v: Vec<_> = (0..10)
            .map(|k| p.add_scalar(format!("v{k}"), ScalarType::F32))
            .collect();
        let s1 = p.make_stmt(v[1].into(), Expr::Copy(v[3].into()));
        let s2 = p.make_stmt(v[2].into(), Expr::Copy(v[5].into()));
        let s3 = p.make_stmt(v[5].into(), Expr::Copy(v[7].into()));
        let s4 = p.make_stmt(
            v[8].into(),
            Expr::Binary(BinOp::Add, v[3].into(), v[1].into()),
        );
        let s5 = p.make_stmt(
            v[9].into(),
            Expr::Binary(BinOp::Add, v[5].into(), v[2].into()),
        );
        let bb: BasicBlock = [s1, s2, s3, s4, s5].into_iter().collect();
        (p, bb)
    }

    #[test]
    fn unit_display_lists_lanes() {
        let u = Unit::merged(
            &Unit::singleton(StmtId::new(0)),
            &Unit::singleton(StmtId::new(4)),
        );
        assert_eq!(u.to_string(), "<S0,S4>");
        assert_eq!(Unit::singleton(StmtId::new(7)).to_string(), "<S7>");
    }

    #[test]
    fn singleton_packs_include_dest_and_operands() {
        let (_, bb) = fig2ish();
        let u = Unit::singleton(StmtId::new(3));
        let packs = u.packs(&bb);
        assert_eq!(packs.len(), 3); // dest + 2 operands
        assert_eq!(packs[0].pos, PackPos::Dest);
        assert_eq!(packs[1].pos, PackPos::Operand(0));
    }

    #[test]
    fn merged_unit_packs_have_two_lanes() {
        let (_, bb) = fig2ish();
        let u = Unit::merged(
            &Unit::singleton(StmtId::new(0)),
            &Unit::singleton(StmtId::new(1)),
        );
        let packs = u.packs(&bb);
        // {v1,v2} dest pack and {v3,v5} source pack.
        assert_eq!(packs.len(), 2);
        assert_eq!(packs[0].content.width(), 2);
        assert!(packs.iter().all(|p| p.is_location_pack()));
    }

    #[test]
    fn constant_positions_are_skipped() {
        let mut p = Program::new("c");
        let a = p.add_scalar("a", ScalarType::F64);
        let b = p.add_scalar("b", ScalarType::F64);
        let s = p.make_stmt(a.into(), Expr::Binary(BinOp::Mul, b.into(), 2.0.into()));
        let bb: BasicBlock = [s].into_iter().collect();
        let packs = Unit::singleton(StmtId::new(0)).packs(&bb);
        assert_eq!(packs.len(), 2); // dest + op0; const op1 skipped
    }

    #[test]
    fn can_merge_requires_isomorphism_and_independence() {
        let (p, bb) = fig2ish();
        let deps = BlockDeps::analyze(&bb);
        let u = |k: u32| Unit::singleton(StmtId::new(k));
        // S1 and S2 are isomorphic copies with no dependence.
        assert!(u(0).can_merge(&u(1), &bb, &deps, &p));
        // S1 and S4 differ in shape (copy vs add).
        assert!(!u(0).can_merge(&u(3), &bb, &deps, &p));
        // S2 and S3 are dependent (S2 reads v5, S3 writes v5).
        assert!(!u(1).can_merge(&u(2), &bb, &deps, &p));
        // A unit never merges with itself.
        assert!(!u(0).can_merge(&u(0), &bb, &deps, &p));
    }

    #[test]
    fn merged_units_check_cross_independence() {
        let (p, bb) = fig2ish();
        let deps = BlockDeps::analyze(&bb);
        let u12 = Unit::merged(
            &Unit::singleton(StmtId::new(0)),
            &Unit::singleton(StmtId::new(1)),
        );
        let u3 = Unit::singleton(StmtId::new(2));
        // S3 conflicts with S2 (inside u12): cannot merge.
        assert!(!u12.can_merge(&u3, &bb, &deps, &p));
    }
}
