//! The variable-pack conflicting graph (§4.2.1, step 2; paper Figure 4).
//!
//! Each node is a variable pack *tagged with the candidate group it came
//! from* — "there may exist multiple nodes containing the same set of
//! variables, but they are generated from different candidate groups".
//! Edges connect packs of conflicting candidate groups. Nodes with equal
//! content and no connecting edge witness a superword reuse opportunity.

use std::fmt;

use crate::candidates::{Candidate, ConflictMatrix};
use crate::key::PackContent;
use crate::unit::PackPos;

/// One node of the variable-pack conflicting graph.
#[derive(Debug, Clone, PartialEq)]
pub struct PackNode {
    /// Index of the candidate group that generated this pack.
    pub cand: usize,
    /// The operand position within that candidate.
    pub pos: PackPos,
    /// Order-insensitive pack identity.
    pub content: PackContent,
}

/// The variable-pack conflicting graph `VP = (V, T)`.
#[derive(Debug, Clone)]
pub struct PackGraph {
    nodes: Vec<PackNode>,
}

impl PackGraph {
    /// Builds the graph from the candidate set. Edges are implied by the
    /// candidate [`ConflictMatrix`] (packs of conflicting candidates are
    /// pairwise connected), so only nodes are materialized.
    pub fn build(candidates: &[Candidate]) -> Self {
        let mut nodes = Vec::new();
        for (ci, c) in candidates.iter().enumerate() {
            for p in &c.packs {
                nodes.push(PackNode {
                    cand: ci,
                    pos: p.pos,
                    content: p.content.clone(),
                });
            }
        }
        PackGraph { nodes }
    }

    /// All nodes.
    pub fn nodes(&self) -> &[PackNode] {
        &self.nodes
    }

    /// Whether nodes `i` and `j` are connected (their candidates conflict).
    pub fn connected(&self, i: usize, j: usize, conflicts: &ConflictMatrix) -> bool {
        conflicts.get(self.nodes[i].cand, self.nodes[j].cand)
    }

    /// Number of edges implied by the conflict matrix, counting each
    /// unordered pair once.
    pub fn edge_count(&self, conflicts: &ConflictMatrix) -> usize {
        let n = self.nodes.len();
        let mut count = 0;
        for i in 0..n {
            for j in i + 1..n {
                if self.connected(i, j, conflicts) {
                    count += 1;
                }
            }
        }
        count
    }

    /// How many distinct nodes share `content` — the graph's raw reuse
    /// signal: "the number of such nodes in fact gives us the reuse
    /// information of the corresponding superword".
    pub fn occurrences(&self, content: &PackContent) -> usize {
        self.nodes.iter().filter(|n| &n.content == content).count()
    }
}

impl fmt::Display for PackGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for n in &self.nodes {
            writeln!(f, "{}@C{} ({})", n.content, n.cand, n.pos)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::{find_candidates, tests::figure2, ConflictMatrix};
    use crate::unit::Unit;
    use slp_ir::BlockDeps;

    #[test]
    fn display_lists_nodes_with_their_candidates() {
        let (p, bb) = figure2();
        let deps = BlockDeps::analyze(&bb);
        let units: Vec<Unit> = bb.iter().map(|s| Unit::singleton(s.id())).collect();
        let cands = find_candidates(&units, &bb, &deps, &p, |_| 4);
        let vp = PackGraph::build(&cands);
        let text = vp.to_string();
        assert_eq!(text.lines().count(), vp.nodes().len());
        assert!(text.contains("@C0"), "{text}");
    }

    #[test]
    fn figure4_structure() {
        let (p, bb) = figure2();
        let deps = BlockDeps::analyze(&bb);
        let units: Vec<Unit> = bb.iter().map(|s| Unit::singleton(s.id())).collect();
        let cands = find_candidates(&units, &bb, &deps, &p, |_| 4);
        let conflicts = ConflictMatrix::compute(&cands, &deps);
        let vp = PackGraph::build(&cands);
        // {S1,S2}: 2 packs; {S1,S3}: 2 packs; {S4,S5}: 3 packs.
        assert_eq!(vp.nodes().len(), 7);
        // The {V3,V5} source pack of {S1,S2} also appears in {S4,S5}.
        let c12_src = &vp
            .nodes()
            .iter()
            .find(|n| n.cand == 0 && n.pos == PackPos::Operand(0))
            .unwrap()
            .content;
        assert_eq!(vp.occurrences(c12_src), 2);
        // Packs of conflicting candidates 0 and 1 are connected.
        let n0 = vp.nodes().iter().position(|n| n.cand == 0).unwrap();
        let n1 = vp.nodes().iter().position(|n| n.cand == 1).unwrap();
        assert!(vp.connected(n0, n1, &conflicts));
        // Packs of compatible candidates 0 and 2 are not.
        let n2 = vp.nodes().iter().position(|n| n.cand == 2).unwrap();
        assert!(!vp.connected(n0, n2, &conflicts));
        // Only candidates 0 and 1 conflict (they share S1); their 2×2
        // pack pairs are the graph's only edges.
        assert_eq!(vp.edge_count(&conflicts), 4);
    }
}
