//! # slp-analysis — the grouping analyses of §4.2.1
//!
//! This crate implements the graph machinery the holistic SLP optimizer's
//! grouping phase is built on (paper Figures 4–9):
//!
//! * [`PackContent`] / [`OperandKey`] — order-insensitive superword
//!   identities (a reuse "even for the case with different orderings" only
//!   costs a register permutation, never memory traffic),
//! * [`Unit`] and [`Pack`] — grouping units and the variable packs they
//!   form; units generalize single statements so the same algorithm serves
//!   the iterative wider-than-two grouping of §4.2.2,
//! * [`find_candidates`] / [`Candidate`] — step 1, candidate group
//!   identification under the §4.1 validity constraints,
//! * [`ConflictMatrix`] — the shared-statement / dependence-cycle conflict
//!   relation,
//! * [`PackGraph`] — step 2, the variable-pack conflicting graph,
//! * [`candidate_weight`] — step 3, auxiliary-graph construction, greedy
//!   conflict elimination and the `W = r / Nt` average-reuse weight.
//!
//! The decision loop (step 4) lives in `slp-core`, which drives these
//! pieces.
//!
//! # Examples
//!
//! Score the paper's Figure 2 candidates:
//!
//! ```
//! use slp_analysis::{find_candidates, candidate_weight, ConflictMatrix, PackGraph, Unit};
//! use slp_ir::{BlockDeps, BinOp, Expr, Program, ScalarType, BasicBlock};
//!
//! let mut p = Program::new("fig2");
//! let v: Vec<_> = (0..8).map(|k| p.add_scalar(format!("V{k}"), ScalarType::F32)).collect();
//! let stmts = [
//!     p.make_stmt(v[1].into(), Expr::Copy(v[3].into())),              // S1: V1 = V3
//!     p.make_stmt(v[2].into(), Expr::Copy(v[5].into())),              // S2: V2 = V5
//!     p.make_stmt(v[5].into(), Expr::Copy(v[7].into())),              // S3: V5 = V7
//!     p.make_stmt(v[1].into(), Expr::Binary(BinOp::Mul, v[3].into(), v[1].into())),
//!     p.make_stmt(v[5].into(), Expr::Binary(BinOp::Mul, v[5].into(), v[2].into())),
//! ];
//! let bb: BasicBlock = stmts.into_iter().collect();
//! let deps = BlockDeps::analyze(&bb);
//! let units: Vec<Unit> = bb.iter().map(|s| Unit::singleton(s.id())).collect();
//! let cands = find_candidates(&units, &bb, &deps, &p, |_| 4);
//! assert_eq!(cands.len(), 3);
//! let conflicts = ConflictMatrix::compute(&cands, &deps);
//! let vp = PackGraph::build(&cands);
//! let alive = vec![true; cands.len()];
//! // The paper's unadjusted formula gives 1/1 for {S1,S2}.
//! let w0 = slp_analysis::candidate_weight_with(
//!     0, &cands, &vp, &conflicts, &alive, &[],
//!     &slp_analysis::WeightParams::reuse_only(),
//! );
//! assert_eq!(w0, 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod candidates;
mod groupgraph;
mod key;
mod packgraph;
mod unit;
mod weight;

pub use candidates::{find_candidates, Candidate, ConflictMatrix};
pub use groupgraph::{GroupingEdge, StatementGroupingGraph};
pub use key::{OperandKey, PackContent};
pub use packgraph::{PackGraph, PackNode};
pub use unit::{Pack, PackPos, Unit};
pub use weight::{candidate_weight, candidate_weight_with, WeightContext, WeightParams};
