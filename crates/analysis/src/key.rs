//! Canonical keys for operands and variable packs.
//!
//! The grouping phase treats a variable pack as *unordered*: "we do not
//! consider the ordering of the variables in a variable pack at this step"
//! (§4.2.1). Two packs with the same operand multiset are therefore the
//! same superword for reuse purposes — even if later scheduling orders them
//! differently, reuse only costs a register permutation, not memory
//! traffic. [`PackContent`] is that order-insensitive identity.

use std::fmt;

use slp_ir::{AccessVector, ArrayId, Operand, VarId};

/// A totally ordered, hashable identity for an operand.
///
/// Constants are keyed by their IEEE-754 bit pattern, giving a total order
/// without violating `Eq` for NaN payloads.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OperandKey {
    /// A scalar variable.
    Scalar(VarId),
    /// An array element.
    Array(ArrayId, AccessVector),
    /// A constant, keyed by bit pattern.
    Const(u64),
}

impl OperandKey {
    /// The canonical key of an operand.
    pub fn of(op: &Operand) -> OperandKey {
        match op {
            Operand::Scalar(v) => OperandKey::Scalar(*v),
            Operand::Array(r) => OperandKey::Array(r.array, r.access.clone()),
            Operand::Const(c) => OperandKey::Const(c.to_bits()),
        }
    }
}

impl fmt::Display for OperandKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OperandKey::Scalar(v) => write!(f, "{v}"),
            OperandKey::Array(a, acc) => write!(f, "{a}{acc}"),
            OperandKey::Const(bits) => write!(f, "{}", f64::from_bits(*bits)),
        }
    }
}

/// The order-insensitive identity of a variable pack: the sorted multiset
/// of its operand keys.
///
/// # Examples
///
/// ```
/// use slp_analysis::PackContent;
/// use slp_ir::{Operand, VarId};
///
/// let v1: Operand = VarId::new(1).into();
/// let v2: Operand = VarId::new(2).into();
/// // <V1, V2> and <V2, V1> are the same superword up to permutation.
/// assert_eq!(
///     PackContent::new([&v1, &v2]),
///     PackContent::new([&v2, &v1]),
/// );
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PackContent {
    keys: Vec<OperandKey>,
}

impl PackContent {
    /// Builds the content key from operands (any iteration order).
    pub fn new<'a, I: IntoIterator<Item = &'a Operand>>(ops: I) -> Self {
        let mut keys: Vec<OperandKey> = ops.into_iter().map(OperandKey::of).collect();
        keys.sort();
        PackContent { keys }
    }

    /// Builds the content key from pre-computed operand keys.
    pub fn from_keys(mut keys: Vec<OperandKey>) -> Self {
        keys.sort();
        PackContent { keys }
    }

    /// Number of lanes in the pack.
    pub fn width(&self) -> usize {
        self.keys.len()
    }

    /// The sorted operand keys.
    pub fn keys(&self) -> &[OperandKey] {
        &self.keys
    }

    /// Whether every lane of the pack is an array reference.
    pub fn is_all_array(&self) -> bool {
        self.keys.iter().all(|k| matches!(k, OperandKey::Array(..)))
    }

    /// Whether every lane of the pack is a scalar variable.
    pub fn is_all_scalar(&self) -> bool {
        self.keys.iter().all(|k| matches!(k, OperandKey::Scalar(_)))
    }

    /// Whether every lane of the pack is a constant.
    pub fn is_all_const(&self) -> bool {
        self.keys.iter().all(|k| matches!(k, OperandKey::Const(_)))
    }
}

impl fmt::Display for PackContent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, k) in self.keys.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{k}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slp_ir::{AccessVector, AffineExpr, ArrayRef, LoopVarId};

    fn arr(cst: i64) -> Operand {
        ArrayRef::new(
            ArrayId::new(0),
            AccessVector::new(vec![AffineExpr::var(LoopVarId::new(0)).offset(cst)]),
        )
        .into()
    }

    #[test]
    fn content_ignores_order() {
        let a = arr(0);
        let b = arr(1);
        assert_eq!(PackContent::new([&a, &b]), PackContent::new([&b, &a]));
        assert_ne!(PackContent::new([&a, &a]), PackContent::new([&a, &b]));
    }

    #[test]
    fn content_is_a_multiset() {
        let a = arr(0);
        // {a, a} has width 2 and differs from {a}.
        let double = PackContent::new([&a, &a]);
        let single = PackContent::new([&a]);
        assert_eq!(double.width(), 2);
        assert_ne!(double, single);
    }

    #[test]
    fn kind_predicates() {
        let s: Operand = VarId::new(0).into();
        let c: Operand = 1.0.into();
        assert!(PackContent::new([&s, &s]).is_all_scalar());
        assert!(PackContent::new([&arr(0), &arr(1)]).is_all_array());
        assert!(PackContent::new([&c]).is_all_const());
        assert!(!PackContent::new([&s, &c]).is_all_scalar());
    }

    #[test]
    fn const_keys_by_bits() {
        let a = OperandKey::of(&Operand::Const(0.5));
        let b = OperandKey::of(&Operand::Const(0.5));
        let c = OperandKey::of(&Operand::Const(-0.5));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn display_is_braced() {
        let v1: Operand = VarId::new(1).into();
        let v2: Operand = VarId::new(2).into();
        assert_eq!(PackContent::new([&v1, &v2]).to_string(), "{v1,v2}");
    }
}
