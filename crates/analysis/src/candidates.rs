//! Candidate group identification and conflict analysis (§4.2.1, steps 1–2).

use slp_ir::{BasicBlock, BlockDeps, StmtId, TypeEnv};

use crate::unit::{Pack, Unit};

/// A candidate group: a *potential* SIMD group of two units. Unordered —
/// "there is no ordering between Si and Sj in the candidate group".
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// Index of the first unit (in the round's unit list).
    pub a: usize,
    /// Index of the second unit.
    pub b: usize,
    /// The variable packs the merged group would form (location packs
    /// only), with their order-insensitive contents.
    pub packs: Vec<Pack>,
    /// The member statements of the merged group: unit `a`'s statements
    /// followed by unit `b`'s.
    pub stmts: Vec<StmtId>,
    /// Number of leading `stmts` that belong to unit `a`.
    pub split: usize,
}

/// Identifies all candidate groups among `units`.
///
/// A pair qualifies when the units are isomorphic, mutually dependence
/// free (§4.1 constraints 1 and 3) and the merged width stays within
/// `lane_cap(stmt)` lanes — the §4.1 constraint 4 datapath bound, supplied
/// by the caller because it depends on the element type and machine.
pub fn find_candidates<E: TypeEnv>(
    units: &[Unit],
    block: &BasicBlock,
    deps: &BlockDeps,
    env: &E,
    mut lane_cap: impl FnMut(StmtId) -> usize,
) -> Vec<Candidate> {
    let mut out = Vec::new();
    for a in 0..units.len() {
        for b in a + 1..units.len() {
            let (ua, ub) = (&units[a], &units[b]);
            let width = ua.width() + ub.width();
            if width > lane_cap(ua.stmts()[0]) {
                continue;
            }
            if !ua.can_merge(ub, block, deps, env) {
                continue;
            }
            let merged = Unit::merged(ua, ub);
            let packs = merged
                .packs(block)
                .into_iter()
                .filter(Pack::is_location_pack)
                .collect();
            out.push(Candidate {
                a,
                b,
                packs,
                stmts: merged.stmts().to_vec(),
                split: ua.width(),
            });
        }
    }
    out
}

/// The symmetric candidate-conflict relation: two candidate groups
/// "conflict with each other if they have a common statement ... or there
/// exists a dependence cycle between these two groups".
#[derive(Debug, Clone)]
pub struct ConflictMatrix {
    n: usize,
    bits: Vec<bool>,
}

impl ConflictMatrix {
    /// Computes the conflict relation among `candidates`.
    ///
    /// Dependence-cycle detection is precomputed at unit granularity: the
    /// number of units is linear in the block size while the number of
    /// candidates is quadratic, so checking `candidate × candidate` pairs
    /// against a `unit × unit` reachability table keeps wide-datapath
    /// blocks (hundreds of statements after 8–16x unrolling) tractable.
    pub fn compute(candidates: &[Candidate], deps: &BlockDeps) -> Self {
        let n = candidates.len();
        let mut m = ConflictMatrix {
            n,
            bits: vec![false; n * n],
        };
        // Unit-level reachability over the units the candidates mention.
        let units = 1 + candidates.iter().map(|c| c.a.max(c.b)).max().unwrap_or(0);
        let mut unit_stmts: Vec<&[StmtId]> = vec![&[]; units];
        for c in candidates {
            let (sa, sb) = c.stmts.split_at(c.split);
            unit_stmts[c.a] = sa;
            unit_stmts[c.b] = sb;
        }
        let mut reach = vec![false; units * units];
        for i in 0..units {
            for j in 0..units {
                if i != j
                    && unit_stmts[i]
                        .iter()
                        .any(|&s| unit_stmts[j].iter().any(|&t| deps.depends(s, t)))
                {
                    reach[i * units + j] = true;
                }
            }
        }
        let reaches = |a: usize, b: usize| reach[a * units + b];
        for (i, x) in candidates.iter().enumerate() {
            for (j, y) in candidates.iter().enumerate().skip(i + 1) {
                let shares_unit = x.a == y.a || x.a == y.b || x.b == y.a || x.b == y.b;
                let conflicting = shares_unit || {
                    let x_to_y = reaches(x.a, y.a)
                        || reaches(x.a, y.b)
                        || reaches(x.b, y.a)
                        || reaches(x.b, y.b);
                    let y_to_x = reaches(y.a, x.a)
                        || reaches(y.a, x.b)
                        || reaches(y.b, x.a)
                        || reaches(y.b, x.b);
                    x_to_y && y_to_x
                };
                if conflicting {
                    m.bits[i * n + j] = true;
                    m.bits[j * n + i] = true;
                }
            }
        }
        m
    }

    /// Whether candidates `i` and `j` conflict.
    pub fn get(&self, i: usize, j: usize) -> bool {
        self.bits[i * self.n + j]
    }

    /// Number of candidates covered.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the matrix covers zero candidates.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use slp_ir::{BinOp, Expr, Program, ScalarType};

    /// The paper's Figure 2 block (reconstructed):
    /// S1: V1 = V3;   S2: V2 = V5;   S3: V5 = V7;
    /// S4: V1 = V3 * V1;   S5: V5 = V5 * V2;
    ///
    /// This reconstruction reproduces every number the paper derives from
    /// Figure 2: the candidate set {{S1,S2}, {S1,S3}, {S4,S5}}, the
    /// Figure 4 pack nodes (with {S4,S5} contributing {V3,V5}, {V1,V2}
    /// and {V1,V5}), and the Figure 5 edge weights 1/1, 1/2 and 2/3.
    pub(crate) fn figure2() -> (Program, BasicBlock) {
        let mut p = Program::new("fig2");
        let v: Vec<_> = (0..8)
            .map(|k| p.add_scalar(format!("V{k}"), ScalarType::F32))
            .collect();
        let s1 = p.make_stmt(v[1].into(), Expr::Copy(v[3].into()));
        let s2 = p.make_stmt(v[2].into(), Expr::Copy(v[5].into()));
        let s3 = p.make_stmt(v[5].into(), Expr::Copy(v[7].into()));
        let s4 = p.make_stmt(
            v[1].into(),
            Expr::Binary(BinOp::Mul, v[3].into(), v[1].into()),
        );
        let s5 = p.make_stmt(
            v[5].into(),
            Expr::Binary(BinOp::Mul, v[5].into(), v[2].into()),
        );
        let bb: BasicBlock = [s1, s2, s3, s4, s5].into_iter().collect();
        (p, bb)
    }

    fn setup() -> (Program, BasicBlock, BlockDeps, Vec<Unit>) {
        let (p, bb) = figure2();
        let deps = BlockDeps::analyze(&bb);
        let units: Vec<Unit> = bb.iter().map(|s| Unit::singleton(s.id())).collect();
        (p, bb, deps, units)
    }

    #[test]
    fn figure2_candidate_set() {
        let (p, bb, deps, units) = setup();
        let cands = find_candidates(&units, &bb, &deps, &p, |_| 4);
        let pairs: Vec<(usize, usize)> = cands.iter().map(|c| (c.a, c.b)).collect();
        // Unit indices equal statement positions here: S1..S5 are 0..4.
        assert_eq!(pairs, vec![(0, 1), (0, 2), (3, 4)]);
    }

    #[test]
    fn lane_cap_filters_pairs() {
        let (p, bb, deps, units) = setup();
        let cands = find_candidates(&units, &bb, &deps, &p, |_| 1);
        assert!(cands.is_empty());
    }

    #[test]
    fn candidate_packs_are_location_packs() {
        let (p, bb, deps, units) = setup();
        let cands = find_candidates(&units, &bb, &deps, &p, |_| 4);
        // {S1,S2}: dest pack {V1,V2} and source pack {V3,V5}.
        let c12 = &cands[0];
        assert_eq!(c12.packs.len(), 2);
        // {S4,S5}: dest {V4,V6}, op0 {V3,V5}, op1 {V1,V2}.
        let c45 = &cands[2];
        assert_eq!(c45.packs.len(), 3);
    }

    #[test]
    fn conflicts_on_shared_statement() {
        let (p, bb, deps, units) = setup();
        let cands = find_candidates(&units, &bb, &deps, &p, |_| 4);
        let m = ConflictMatrix::compute(&cands, &deps);
        // {S1,S2} and {S1,S3} share S1.
        assert!(m.get(0, 1));
        assert!(m.get(1, 0));
        // {S1,S2} and {S4,S5} are compatible.
        assert!(!m.get(0, 2));
        // Self is never reported conflicting.
        assert!(!m.get(0, 0));
    }

    #[test]
    fn conflicts_on_dependence_cycle() {
        // S0: a = x;  S1: b = a;  S2: c = y;  S3: d = c;
        // {S0,S3} and {S1,S2} form a cycle: S0→S1 (into the second group)
        // and S2→S3 (back into the first), yet each pair is internally
        // independent.
        let mut p = Program::new("cyc");
        let names = ["a", "b", "c", "d", "x", "y"];
        let v: Vec<_> = names
            .iter()
            .map(|n| p.add_scalar(*n, ScalarType::F64))
            .collect();
        let s0 = p.make_stmt(v[0].into(), Expr::Copy(v[4].into()));
        let s1 = p.make_stmt(v[1].into(), Expr::Copy(v[0].into()));
        let s2 = p.make_stmt(v[2].into(), Expr::Copy(v[5].into()));
        let s3 = p.make_stmt(v[3].into(), Expr::Copy(v[2].into()));
        let bb: BasicBlock = [s0, s1, s2, s3].into_iter().collect();
        let deps = BlockDeps::analyze(&bb);
        let units: Vec<Unit> = bb.iter().map(|s| Unit::singleton(s.id())).collect();
        let cands = find_candidates(&units, &bb, &deps, &p, |_| 4);
        let i03 = cands.iter().position(|c| (c.a, c.b) == (0, 3)).unwrap();
        let i12 = cands.iter().position(|c| (c.a, c.b) == (1, 2)).unwrap();
        let m = ConflictMatrix::compute(&cands, &deps);
        assert!(m.get(i03, i12), "cycle must be a conflict");
    }
}
