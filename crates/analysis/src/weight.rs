//! Candidate weights via the auxiliary graph (§4.2.1, step 3; paper
//! Figures 5–7 and pseudo-code Figure 10, lines 21–39).
//!
//! The weight of a candidate group estimates "the potential benefit (in
//! terms of superword reuses) for the entire basic block" of committing to
//! it. It is computed by:
//!
//! 1. extracting from the variable-pack conflicting graph every node whose
//!    content matches a pack of the candidate (or of an already-decided
//!    group) and whose own candidate can coexist with this one,
//! 2. greedily deleting maximum-degree nodes until the extracted subgraph
//!    is conflict free,
//! 3. counting, over the survivors plus the candidate's and the decided
//!    groups' packs, `Σ (N_pack − 1)` reuses, and
//! 4. dividing by the number of distinct pack types among the candidate's
//!    and decided groups' packs (`W = r / Nt`).

use std::collections::HashMap;

use slp_ir::{pack_is_contiguous, ArrayRef, Operand};

use crate::candidates::{Candidate, ConflictMatrix};
use crate::key::PackContent;
use crate::packgraph::PackGraph;

/// Precomputed lookup structures for repeated weight queries within one
/// grouping round. Building the content → node index once turns each
/// auxiliary-graph extraction from a scan over every pack node into a few
/// hash lookups — the decision loop calls [`WeightContext::weight`]
/// `O(decisions × candidates)` times.
#[derive(Debug)]
pub struct WeightContext<'a> {
    candidates: &'a [Candidate],
    vp: &'a PackGraph,
    conflicts: &'a ConflictMatrix,
    /// VP node indices per pack content.
    index: HashMap<&'a PackContent, Vec<usize>>,
    /// Per candidate: its contiguity adjustment (static).
    adjust: Vec<f64>,
}

impl<'a> WeightContext<'a> {
    /// Builds the round's lookup structures.
    pub fn new(
        candidates: &'a [Candidate],
        vp: &'a PackGraph,
        conflicts: &'a ConflictMatrix,
        params: &WeightParams,
    ) -> Self {
        let mut index: HashMap<&'a PackContent, Vec<usize>> = HashMap::new();
        for (i, n) in vp.nodes().iter().enumerate() {
            index.entry(&n.content).or_default().push(i);
        }
        let adjust = candidates
            .iter()
            .map(|c| contiguity_adjust(c, params))
            .collect();
        WeightContext {
            candidates,
            vp,
            conflicts,
            index,
            adjust,
        }
    }

    /// The §4.2.1 weight of `cand` given the current `alive` set and the
    /// packs of the decided groups.
    pub fn weight(
        &self,
        cand: usize,
        alive: &[bool],
        decided_packs: &[PackContent],
        params: &WeightParams,
    ) -> f64 {
        if self.candidates[cand].packs.is_empty() {
            return 0.0;
        }
        // wanted = own ∪ decided, deduplicated: these are both the aux
        // extraction filter and the Nt normalizer of step 4.
        let mut wanted: Vec<&PackContent> = self.candidates[cand]
            .packs
            .iter()
            .map(|p| &p.content)
            .collect();
        for c in decided_packs {
            wanted.push(c);
        }
        wanted.sort_unstable();
        wanted.dedup();
        let nt = wanted.len();

        // Step 1: auxiliary nodes, via the index.
        let mut aux: Vec<usize> = Vec::new();
        for content in &wanted {
            if let Some(nodes) = self.index.get(*content) {
                for &i in nodes {
                    let n = &self.vp.nodes()[i];
                    if n.cand != cand && alive[n.cand] && !self.conflicts.get(cand, n.cand) {
                        aux.push(i);
                    }
                }
            }
        }

        // Step 2: greedy conflict elimination.
        let survivors = eliminate_conflicts(&aux, self.vp, self.conflicts);

        // Step 3: kind-weighted reuse counting over wanted contents.
        // `wanted` is sorted, so binary search indexes the count table.
        let mut counts = vec![0usize; nt];
        let mut bump = |content: &PackContent| {
            if let Ok(slot) = wanted.binary_search(&content) {
                counts[slot] += 1;
            }
        };
        for &i in &survivors {
            bump(&self.vp.nodes()[i].content);
        }
        for p in &self.candidates[cand].packs {
            bump(&p.content);
        }
        for c in decided_packs {
            bump(c);
        }
        let r: f64 = wanted
            .iter()
            .zip(&counts)
            .filter(|(_, &n)| n > 1)
            .map(|(content, &n)| {
                let kind_weight = if content.is_all_array() {
                    1.0
                } else {
                    params.scalar_reuse_weight
                };
                (n - 1) as f64 * kind_weight
            })
            .sum();

        (r + self.adjust[cand]) / nt as f64
    }
}

/// The static contiguity bonus/penalty of a candidate's packs.
fn contiguity_adjust(candidate: &Candidate, params: &WeightParams) -> f64 {
    let mut adjust = 0.0;
    for p in &candidate.packs {
        let refs: Option<Vec<&ArrayRef>> = p
            .ops
            .iter()
            .map(|o| match o {
                Operand::Array(r) => Some(r),
                _ => None,
            })
            .collect();
        if let Some(refs) = refs {
            // Contiguity is order-insensitive here (grouping has not
            // fixed lane order yet): sort lanes by constant offset.
            let mut sorted = refs;
            sorted.sort_by_key(|r| r.access.dims().last().map(|e| e.constant()));
            let factor = if p.pos == crate::unit::PackPos::Dest {
                params.store_factor
            } else {
                1.0
            };
            if pack_is_contiguous(&sorted) {
                adjust += factor * params.contiguous_bonus;
            } else {
                adjust -= factor * params.gather_penalty;
            }
        }
    }
    adjust
}

/// Knobs of the cost-aware weight refinement.
///
/// The paper's weight is the pure average superword reuse `W = r / Nt`.
/// That objective is blind to how much the *mandatory* packing of each
/// variable pack costs, and can prefer a grouping whose packs are strided
/// gathers over an equally-reusable grouping with contiguous vector
/// loads. Since the pre-processing stage already runs alignment analysis
/// (§3, Figure 3), this implementation folds that information into the
/// weight: contiguous array packs earn a bonus (each replaces `w` scalar
/// loads with one vector load — worth about one reuse), non-contiguous
/// array packs pay a penalty (per-lane gather).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeightParams {
    /// Added per contiguous array pack of the candidate.
    pub contiguous_bonus: f64,
    /// Subtracted per non-contiguous (gather) array pack of the
    /// candidate.
    pub gather_penalty: f64,
    /// Multiplier applied to reuses of all-scalar packs. Reusing a
    /// register-resident scalar pack only saves insert shuffles, while
    /// reusing (or avoiding) an array pack saves memory operations, so a
    /// scalar reuse is worth a fraction of an array reuse.
    pub scalar_reuse_weight: f64,
    /// Extra multiplier on the contiguity bonus/penalty of *destination*
    /// array packs: stores are mandatory (reuse can never eliminate
    /// them), so their memory class matters more than that of loads.
    pub store_factor: f64,
}

impl Default for WeightParams {
    fn default() -> Self {
        WeightParams {
            contiguous_bonus: 1.0,
            gather_penalty: 0.75,
            scalar_reuse_weight: 0.4,
            store_factor: 2.0,
        }
    }
}

impl WeightParams {
    /// The paper's original reuse-only weight (`W = r / Nt`), with no
    /// contiguity or reuse-kind adjustment.
    pub fn reuse_only() -> Self {
        WeightParams {
            contiguous_bonus: 0.0,
            gather_penalty: 0.0,
            scalar_reuse_weight: 1.0,
            store_factor: 1.0,
        }
    }
}

/// Computes the §4.2.1 weight of candidate `cand`.
///
/// * `alive` — which candidates are still selectable (dead candidates'
///   packs were deleted from `VP` by earlier decisions),
/// * `decided_packs` — the pack contents of all groups decided so far
///   (step 4's graph update keeps them for future weight calculations).
pub fn candidate_weight(
    cand: usize,
    candidates: &[Candidate],
    vp: &PackGraph,
    conflicts: &ConflictMatrix,
    alive: &[bool],
    decided_packs: &[PackContent],
) -> f64 {
    candidate_weight_with(
        cand,
        candidates,
        vp,
        conflicts,
        alive,
        decided_packs,
        &WeightParams::default(),
    )
}

/// [`candidate_weight`] with explicit [`WeightParams`] (use
/// [`WeightParams::reuse_only`] for the paper's unadjusted weight).
#[allow(clippy::too_many_arguments)]
pub fn candidate_weight_with(
    cand: usize,
    candidates: &[Candidate],
    vp: &PackGraph,
    conflicts: &ConflictMatrix,
    alive: &[bool],
    decided_packs: &[PackContent],
    params: &WeightParams,
) -> f64 {
    WeightContext::new(candidates, vp, conflicts, params).weight(cand, alive, decided_packs, params)
}

/// Greedily removes maximum-degree nodes (ties: lowest node index) until
/// the subgraph induced by `aux` has no edges; returns the survivors.
/// Degrees are computed once and decremented on removal (O(aux²) total).
fn eliminate_conflicts(aux: &[usize], vp: &PackGraph, conflicts: &ConflictMatrix) -> Vec<usize> {
    let n = aux.len();
    let mut present = vec![true; n];
    let mut degree = vec![0usize; n];
    for a in 0..n {
        for b in a + 1..n {
            if vp.connected(aux[a], aux[b], conflicts) {
                degree[a] += 1;
                degree[b] += 1;
            }
        }
    }
    loop {
        let worst = (0..n)
            .filter(|&a| present[a] && degree[a] > 0)
            .max_by(|&a, &b| degree[a].cmp(&degree[b]).then(aux[b].cmp(&aux[a])));
        let Some(victim) = worst else {
            return (0..n).filter(|&a| present[a]).map(|a| aux[a]).collect();
        };
        present[victim] = false;
        for a in 0..n {
            if present[a] && a != victim && vp.connected(aux[a], aux[victim], conflicts) {
                degree[a] -= 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::{find_candidates, tests::figure2};
    use crate::unit::Unit;
    use slp_ir::BlockDeps;

    struct Fixture {
        candidates: Vec<Candidate>,
        vp: PackGraph,
        conflicts: ConflictMatrix,
    }

    fn fixture() -> Fixture {
        let (p, bb) = figure2();
        let deps = BlockDeps::analyze(&bb);
        let units: Vec<Unit> = bb.iter().map(|s| Unit::singleton(s.id())).collect();
        let candidates = find_candidates(&units, &bb, &deps, &p, |_| 4);
        let conflicts = ConflictMatrix::compute(&candidates, &deps);
        let vp = PackGraph::build(&candidates);
        Fixture {
            candidates,
            vp,
            conflicts,
        }
    }

    #[test]
    fn paper_figure5_weights() {
        // The paper's Figure 5 annotates the statement-grouping-graph
        // edges with weights 1/1 for {S1,S2}, 1/2 for {S1,S3} and 2/3 for
        // {S4,S5}.
        let f = fixture();
        let alive = vec![true; f.candidates.len()];
        // Verified against the paper's unadjusted formula.
        let w = |c: usize| {
            candidate_weight_with(
                c,
                &f.candidates,
                &f.vp,
                &f.conflicts,
                &alive,
                &[],
                &WeightParams::reuse_only(),
            )
        };
        assert!((w(0) - 1.0).abs() < 1e-9, "w({{S1,S2}}) = {}", w(0));
        assert!((w(1) - 0.5).abs() < 1e-9, "w({{S1,S3}}) = {}", w(1));
        assert!((w(2) - 2.0 / 3.0).abs() < 1e-9, "w({{S4,S5}}) = {}", w(2));
    }

    #[test]
    fn paper_figure8_weight_after_first_decision() {
        // After deciding {S1,S2}, the updated graph weights {S4,S5} at
        // 2/3, now sourced from the decided packs rather than from VP.
        let f = fixture();
        // Candidate 0 decided; candidate 1 conflicts with it and dies.
        let alive = vec![false, false, true];
        let decided: Vec<PackContent> = f.candidates[0]
            .packs
            .iter()
            .map(|p| p.content.clone())
            .collect();
        let w = candidate_weight_with(
            2,
            &f.candidates,
            &f.vp,
            &f.conflicts,
            &alive,
            &decided,
            &WeightParams::reuse_only(),
        );
        assert!((w - 2.0 / 3.0).abs() < 1e-9, "w = {w}");
    }

    #[test]
    fn weight_is_zero_without_any_reuse() {
        // {S1,S3}'s packs ({V1,V5}, {V3,V7}) match nothing once the other
        // candidates are dead: no reuse, weight 0.
        let f = fixture();
        let alive = vec![false, true, false];
        let w = candidate_weight_with(
            1,
            &f.candidates,
            &f.vp,
            &f.conflicts,
            &alive,
            &[],
            &WeightParams::reuse_only(),
        );
        assert_eq!(w, 0.0);
    }

    #[test]
    fn elimination_leaves_a_conflict_free_set() {
        // Feeding the whole VP node set through elimination must yield an
        // independent set, mirroring Figures 6→7.
        let f = fixture();
        let aux: Vec<usize> = (0..f.vp.nodes().len()).collect();
        let survivors = eliminate_conflicts(&aux, &f.vp, &f.conflicts);
        assert!(!survivors.is_empty());
        for (i, &a) in survivors.iter().enumerate() {
            for &b in &survivors[i + 1..] {
                assert!(!f.vp.connected(a, b, &f.conflicts));
            }
        }
    }

    #[test]
    fn figure7_elimination_for_s4_s5() {
        // The aux graph for {S4,S5} (candidate 2) holds {V3,V5}@C0,
        // {V1,V2}@C0 and {V1,V5}@C1; C0–C1 conflict gives {V1,V5}@C1
        // degree 2, so it is eliminated and the two C0 packs survive —
        // exactly the paper's Figure 6 → Figure 7 transition.
        let f = fixture();
        let aux: Vec<usize> =
            f.vp.nodes()
                .iter()
                .enumerate()
                .filter(|(_, n)| {
                    n.cand != 2
                        && !f.conflicts.get(2, n.cand)
                        && f.candidates[2].packs.iter().any(|p| p.content == n.content)
                })
                .map(|(i, _)| i)
                .collect();
        assert_eq!(aux.len(), 3);
        let survivors = eliminate_conflicts(&aux, &f.vp, &f.conflicts);
        assert_eq!(survivors.len(), 2);
        assert!(survivors.iter().all(|&i| f.vp.nodes()[i].cand == 0));
    }
}
