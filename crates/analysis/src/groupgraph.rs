//! The statement grouping graph `SG = (V', T')` (§4.2.1, step 3; paper
//! Figure 5).
//!
//! Nodes are the round's units (statements in round one), edges are the
//! candidate groups, and each edge carries the auxiliary-graph weight —
//! the estimated whole-block superword reuse of committing to that
//! candidate. The decision loop in `slp-core` works directly on the
//! candidate list for efficiency; this explicit view exists for
//! inspection, tracing and the paper-fidelity tests (Figure 5's `1/1`,
//! `1/2`, `2/3` annotations are reproduced verbatim from it).

use std::fmt;

use crate::candidates::{Candidate, ConflictMatrix};
use crate::packgraph::PackGraph;
use crate::unit::Unit;
use crate::weight::{WeightContext, WeightParams};

/// One weighted edge of the statement grouping graph.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupingEdge {
    /// Index of the first endpoint unit.
    pub a: usize,
    /// Index of the second endpoint unit.
    pub b: usize,
    /// Index of the candidate behind this edge.
    pub candidate: usize,
    /// The §4.2.1 weight `W = r / Nt` (plus any configured adjustments).
    pub weight: f64,
}

/// The statement grouping graph of one round.
#[derive(Debug, Clone)]
pub struct StatementGroupingGraph {
    units: Vec<Unit>,
    edges: Vec<GroupingEdge>,
}

impl StatementGroupingGraph {
    /// Builds the graph for the current round: one node per unit, one
    /// weighted edge per candidate (all candidates alive, nothing
    /// decided — the paper's Figure 5 snapshot).
    pub fn build(
        units: &[Unit],
        candidates: &[Candidate],
        vp: &PackGraph,
        conflicts: &ConflictMatrix,
        params: &WeightParams,
    ) -> Self {
        let wcx = WeightContext::new(candidates, vp, conflicts, params);
        let alive = vec![true; candidates.len()];
        let edges = candidates
            .iter()
            .enumerate()
            .map(|(c, cand)| GroupingEdge {
                a: cand.a,
                b: cand.b,
                candidate: c,
                weight: wcx.weight(c, &alive, &[], params),
            })
            .collect();
        StatementGroupingGraph {
            units: units.to_vec(),
            edges,
        }
    }

    /// The graph's nodes (units).
    pub fn units(&self) -> &[Unit] {
        &self.units
    }

    /// The weighted edges.
    pub fn edges(&self) -> &[GroupingEdge] {
        &self.edges
    }

    /// The edge between units `a` and `b`, in either orientation.
    pub fn edge_between(&self, a: usize, b: usize) -> Option<&GroupingEdge> {
        self.edges
            .iter()
            .find(|e| (e.a == a && e.b == b) || (e.a == b && e.b == a))
    }

    /// The edges in the order the decision loop would first consider
    /// them: non-increasing weight, ties toward earlier statements.
    pub fn edges_by_weight(&self) -> Vec<&GroupingEdge> {
        let mut edges: Vec<&GroupingEdge> = self.edges.iter().collect();
        edges.sort_by(|x, y| {
            y.weight
                .partial_cmp(&x.weight)
                .expect("weights are finite")
                .then_with(|| (x.a, x.b).cmp(&(y.a, y.b)))
        });
        edges
    }
}

impl fmt::Display for StatementGroupingGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for e in self.edges_by_weight() {
            writeln!(
                f,
                "{} -- {}  (w = {:.3})",
                self.units[e.a], self.units[e.b], e.weight
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::{find_candidates, tests::figure2};
    use slp_ir::BlockDeps;

    fn graph(params: &WeightParams) -> StatementGroupingGraph {
        let (p, bb) = figure2();
        let deps = BlockDeps::analyze(&bb);
        let units: Vec<Unit> = bb.iter().map(|s| Unit::singleton(s.id())).collect();
        let cands = find_candidates(&units, &bb, &deps, &p, |_| 4);
        let conflicts = ConflictMatrix::compute(&cands, &deps);
        let vp = PackGraph::build(&cands);
        StatementGroupingGraph::build(&units, &cands, &vp, &conflicts, params)
    }

    #[test]
    fn figure5_edges_and_weights() {
        let sg = graph(&WeightParams::reuse_only());
        // Three edges: {S1,S2}, {S1,S3}, {S4,S5} (units 0..4 map to the
        // paper's S1..S5).
        assert_eq!(sg.edges().len(), 3);
        let w = |a: usize, b: usize| sg.edge_between(a, b).expect("edge").weight;
        assert!((w(0, 1) - 1.0).abs() < 1e-9);
        assert!((w(0, 2) - 0.5).abs() < 1e-9);
        assert!((w(3, 4) - 2.0 / 3.0).abs() < 1e-9);
        assert!(sg.edge_between(1, 2).is_none());
    }

    #[test]
    fn ordering_matches_the_paper_decision_sequence() {
        let sg = graph(&WeightParams::reuse_only());
        let order: Vec<(usize, usize)> = sg.edges_by_weight().iter().map(|e| (e.a, e.b)).collect();
        // {S1,S2} first (1.0), then {S4,S5} (2/3), then {S1,S3} (1/2).
        assert_eq!(order, vec![(0, 1), (3, 4), (0, 2)]);
    }

    #[test]
    fn display_lists_every_edge() {
        let sg = graph(&WeightParams::reuse_only());
        let text = sg.to_string();
        assert_eq!(text.lines().count(), 3);
        assert!(text.contains("w = 1.000"), "{text}");
    }
}
