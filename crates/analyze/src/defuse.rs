//! Def-use chains and liveness facts for scalars and array regions.
//!
//! The IR has no branches — a program is a tree of counted loops over
//! straight-line statements — so the flattened DFS statement order *is*
//! the execution order of each statement's first dynamic instance. That
//! makes def-use relationships decidable with simple positional
//! reasoning: a use at a smaller order index than a scalar's first def
//! executes before any write and therefore observes the runtime seed
//! (the V500 lint), and a def with no observing use on any continuation
//! is a dead store (the V501 lint, computed in [`crate::lint`] with the
//! loop back-edge taken into account).

use std::collections::HashMap;

use slp_ir::{ArrayId, ArrayRef, Dest, Operand, Program, StmtId, VarId};

/// One array access site.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayAccess {
    /// The statement performing the access.
    pub stmt: StmtId,
    /// The reference (array + affine subscripts).
    pub reference: ArrayRef,
    /// Whether the access is a write (store destination).
    pub is_write: bool,
}

/// Def-use chains over a whole program.
///
/// # Examples
///
/// ```
/// use slp_ir::{Expr, Program, ScalarType};
/// use slp_analyze::DefUse;
///
/// let mut p = Program::new("t");
/// let x = p.add_scalar("x", ScalarType::F64);
/// let y = p.add_scalar("y", ScalarType::F64);
/// let s0 = p.push_stmt(y.into(), Expr::Copy(x.into())); // reads x before
/// let s1 = p.push_stmt(x.into(), Expr::Copy(1.0.into())); // ... this def
/// let du = DefUse::analyze(&p);
/// assert_eq!(du.scalar_defs(x), &[s1]);
/// assert_eq!(du.uses_before_first_def(x), vec![s0]);
/// assert!(du.uses_before_first_def(y).is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct DefUse {
    order: HashMap<StmtId, usize>,
    scalar_defs: Vec<Vec<StmtId>>,
    scalar_uses: Vec<Vec<StmtId>>,
    array_accesses: Vec<Vec<ArrayAccess>>,
}

impl DefUse {
    /// Collects the chains of `program` in flattened DFS order.
    pub fn analyze(program: &Program) -> Self {
        let mut order = HashMap::new();
        let mut scalar_defs = vec![Vec::new(); program.scalars().len()];
        let mut scalar_uses = vec![Vec::new(); program.scalars().len()];
        let mut array_accesses = vec![Vec::new(); program.arrays().len()];
        let mut next = 0usize;
        program.for_each_stmt(|s| {
            order.insert(s.id(), next);
            next += 1;
            for u in s.uses() {
                match u {
                    Operand::Scalar(v) => scalar_uses[v.index()].push(s.id()),
                    Operand::Array(r) => array_accesses[r.array.index()].push(ArrayAccess {
                        stmt: s.id(),
                        reference: r.clone(),
                        is_write: false,
                    }),
                    Operand::Const(_) => {}
                }
            }
            match s.dest() {
                Dest::Scalar(v) => scalar_defs[v.index()].push(s.id()),
                Dest::Array(r) => array_accesses[r.array.index()].push(ArrayAccess {
                    stmt: s.id(),
                    reference: r.clone(),
                    is_write: true,
                }),
            }
        });
        DefUse {
            order,
            scalar_defs,
            scalar_uses,
            array_accesses,
        }
    }

    /// The flattened DFS position of a statement (its first-execution
    /// order), or `None` for statements not in the program.
    pub fn order_of(&self, s: StmtId) -> Option<usize> {
        self.order.get(&s).copied()
    }

    /// Statements writing scalar `v`, in program order.
    pub fn scalar_defs(&self, v: VarId) -> &[StmtId] {
        &self.scalar_defs[v.index()]
    }

    /// Statements reading scalar `v`, in program order (a statement
    /// reading `v` twice appears twice).
    pub fn scalar_uses(&self, v: VarId) -> &[StmtId] {
        &self.scalar_uses[v.index()]
    }

    /// Accesses (reads and writes) of array `a`, in program order.
    pub fn array_accesses(&self, a: ArrayId) -> &[ArrayAccess] {
        &self.array_accesses[a.index()]
    }

    /// Uses of `v` positioned strictly before its first def — reads that
    /// observe the runtime seed on the program's first pass. Empty when
    /// `v` is never written (a pure input parameter) or first written
    /// before (or within) every reading statement; a use *inside* the
    /// first defining statement (`s = s + 1` accumulators) is at the
    /// same position, not strictly before, so it does not qualify.
    pub fn uses_before_first_def(&self, v: VarId) -> Vec<StmtId> {
        let Some(&first_def) = self.scalar_defs[v.index()].first() else {
            return Vec::new();
        };
        let def_pos = self.order[&first_def];
        let mut out: Vec<StmtId> = self.scalar_uses[v.index()]
            .iter()
            .copied()
            .filter(|u| self.order[u] < def_pos)
            .collect();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slp_ir::{AccessVector, AffineExpr, BinOp, Expr, Item, Loop, LoopHeader, ScalarType};

    #[test]
    fn chains_follow_flattened_order() {
        // x = 1; for i { t = A[i]; A[i] = t * x }; y = x
        let mut p = Program::new("t");
        let x = p.add_scalar("x", ScalarType::F64);
        let t = p.add_scalar("t", ScalarType::F64);
        let y = p.add_scalar("y", ScalarType::F64);
        let a = p.add_array("A", ScalarType::F64, vec![8], true);
        let i = p.add_loop_var("i");
        let r = ArrayRef::new(a, AccessVector::new(vec![AffineExpr::var(i)]));
        let s0 = p.push_stmt(x.into(), Expr::Copy(1.0.into()));
        let s1 = p.make_stmt(t.into(), Expr::Copy(r.clone().into()));
        let s2 = p.make_stmt(
            r.clone().into(),
            Expr::Binary(BinOp::Mul, t.into(), x.into()),
        );
        let (id1, id2) = (s1.id(), s2.id());
        p.push_item(Item::Loop(Loop {
            header: LoopHeader {
                var: i,
                lower: 0,
                upper: 8,
                step: 1,
            },
            body: vec![Item::Stmt(s1), Item::Stmt(s2)],
        }));
        let s3 = p.push_stmt(y.into(), Expr::Copy(x.into()));
        let du = DefUse::analyze(&p);
        assert_eq!(du.order_of(s0), Some(0));
        assert_eq!(du.order_of(id1), Some(1));
        assert_eq!(du.order_of(s3), Some(3));
        assert_eq!(du.scalar_defs(t), &[id1]);
        assert_eq!(du.scalar_uses(t), &[id2]);
        assert_eq!(du.scalar_uses(x), &[id2, s3]);
        let acc = du.array_accesses(a);
        assert_eq!(acc.len(), 2);
        assert!(!acc[0].is_write && acc[1].is_write);
    }

    #[test]
    fn accumulator_first_def_is_not_a_use_before_def() {
        // s = s + 1 as the first statement: the use sits inside the
        // defining statement, which is the well-defined read-modify-write
        // of the seeded value — not strictly before the def.
        let mut p = Program::new("t");
        let s = p.add_scalar("s", ScalarType::F64);
        p.push_stmt(s.into(), Expr::Binary(BinOp::Add, s.into(), 1.0.into()));
        let du = DefUse::analyze(&p);
        assert!(du.uses_before_first_def(s).is_empty());
    }

    #[test]
    fn read_before_write_is_detected() {
        let mut p = Program::new("t");
        let s = p.add_scalar("s", ScalarType::F64);
        let y = p.add_scalar("y", ScalarType::F64);
        let s0 = p.push_stmt(y.into(), Expr::Copy(s.into()));
        p.push_stmt(s.into(), Expr::Copy(2.0.into()));
        let du = DefUse::analyze(&p);
        assert_eq!(du.uses_before_first_def(s), vec![s0]);
        // Never-written scalars are parameters, not violations: y has no
        // def here beyond s0 and no use at all before it.
        assert!(du.uses_before_first_def(y).is_empty());
    }
}
