//! The strided-interval abstract domain.
//!
//! A [`StridedInterval`] `⟨lo, hi, s⟩` denotes the set of integers
//! `{lo, lo + s, lo + 2s, …} ∩ [lo, hi]` — an interval refined with a
//! stride congruence. It subsumes both halves of the classic dependence
//! disproofs: the plain interval `[lo, hi]` (stride 1) and the GCD
//! congruence class (stride = gcd of the coefficients), and it is closed
//! under the affine operations the IR's subscripts are built from, so a
//! whole `c0 + Σ ci·ivi` can be evaluated abstractly without losing the
//! congruence information a `step k` loop induces.
//!
//! Arithmetic is carried out in `i128` with checked operations; any
//! overflow widens to [`StridedInterval::top`], which keeps every
//! consumer conservative. For affine expressions over `i64` loop bounds
//! the `i128` computation is exact, which is what lets the out-of-bounds
//! lint (V502) report *errors* rather than *maybes*: over a box domain
//! where every variable independently attains its extremes, the abstract
//! endpoints of an affine expression are attained by concrete iterations.

use std::fmt;

/// A set of integers `{lo + k·stride | k ≥ 0} ∩ [lo, hi]`.
///
/// Canonical form: `lo ≤ hi`; `stride == 0` iff `lo == hi`; for
/// non-singletons `stride > 0` and `(hi - lo) % stride == 0`, so both
/// endpoints are members of the set.
///
/// # Examples
///
/// ```
/// use slp_analyze::StridedInterval;
///
/// // The values of `i` in `for i in 0..8 step 2`: {0, 2, 4, 6}.
/// let i = StridedInterval::range(0, 6, 2);
/// assert!(i.contains(4));
/// assert!(!i.contains(3));
/// // i - 3 is odd: never zero, even though [−3, 3] straddles 0.
/// let d = i.add(&StridedInterval::constant(-3));
/// assert!(!d.contains(0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StridedInterval {
    lo: i128,
    hi: i128,
    stride: i128,
}

/// gcd over `i128` magnitudes; `gcd(0, 0) == 0`.
fn gcd_i128(a: i128, b: i128) -> i128 {
    let (mut a, mut b) = (a.unsigned_abs(), b.unsigned_abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    // The magnitude of any i128 gcd argument is at most 2^127, which only
    // fails to convert back for |i128::MIN|. The result is used as a
    // stride, so the sound degradation is 1 (the dense hull) — a large
    // substitute like i128::MAX would not divide the true gcd and could
    // drop members from a join.
    i128::try_from(a).unwrap_or(1)
}

impl StridedInterval {
    /// Canonicalizes `⟨lo, hi, stride⟩`; `lo` must not exceed `hi`.
    ///
    /// Total over all of `i128`: the endpoint snap works through
    /// `rem_euclid` residues rather than the span `hi - lo`, which
    /// overflows for intervals touching `i128::MIN` — those keep their
    /// congruence instead of degrading to the stride-1 hull.
    fn canonical(lo: i128, hi: i128, stride: i128) -> Self {
        debug_assert!(lo <= hi, "inverted interval {lo}..{hi}");
        if lo == hi {
            return StridedInterval { lo, hi, stride: 0 };
        }
        let stride = stride.max(1);
        if stride == 1 {
            return StridedInterval { lo, hi, stride };
        }
        // Pull `hi` down to the last lattice point so it is a member:
        // the distance down to `hi ≡ lo (mod stride)` is the residue
        // difference. Both residues live in `[0, stride)`, so neither
        // the subtraction nor the final snap can overflow.
        let down = (hi.rem_euclid(stride) - lo.rem_euclid(stride)).rem_euclid(stride);
        let hi = hi - down;
        if lo == hi {
            return StridedInterval { lo, hi, stride: 0 };
        }
        StridedInterval { lo, hi, stride }
    }

    /// The singleton `{c}`.
    pub fn constant(c: i64) -> Self {
        StridedInterval {
            lo: c as i128,
            hi: c as i128,
            stride: 0,
        }
    }

    /// The set `{lo, lo + stride, …} ∩ [lo, hi]` (e.g. the values of a
    /// loop induction variable). A negative stride denotes the mirrored
    /// descending sequence `{hi, hi − |stride|, …} ∩ [lo, hi]` — the
    /// anchor endpoint is `hi`, so canonicalization pulls `lo` *up*
    /// instead of collapsing to the dense hull. A zero stride over a
    /// non-singleton range means the dense interval.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `lo > hi`.
    pub fn range(lo: i64, hi: i64, stride: i64) -> Self {
        let (lo, hi) = (lo as i128, hi as i128);
        if stride >= 0 {
            return Self::canonical(lo, hi, stride as i128);
        }
        debug_assert!(lo <= hi, "inverted interval {lo}..{hi}");
        if lo == hi {
            return StridedInterval { lo, hi, stride: 0 };
        }
        // `-(stride as i128)` is exact even for i64::MIN.
        let stride = -(stride as i128);
        if stride == 1 {
            return StridedInterval { lo, hi, stride };
        }
        let up = (hi.rem_euclid(stride) - lo.rem_euclid(stride)).rem_euclid(stride);
        let lo = lo + up;
        if lo == hi {
            return StridedInterval { lo, hi, stride: 0 };
        }
        StridedInterval { lo, hi, stride }
    }

    /// The unconstrained element: all integers.
    pub fn top() -> Self {
        StridedInterval {
            lo: i128::MIN,
            hi: i128::MAX,
            stride: 1,
        }
    }

    /// Whether this is the unconstrained element.
    pub fn is_top(&self) -> bool {
        *self == Self::top()
    }

    /// Smallest member.
    pub fn lo(&self) -> i128 {
        self.lo
    }

    /// Largest member.
    pub fn hi(&self) -> i128 {
        self.hi
    }

    /// The stride (0 for singletons).
    pub fn stride(&self) -> i128 {
        self.stride
    }

    /// Whether `v` is a member of the denoted set.
    pub fn contains(&self, v: i64) -> bool {
        let v = v as i128;
        if v < self.lo || v > self.hi {
            return false;
        }
        if self.stride == 0 {
            v == self.lo
        } else {
            // Congruence check without `v - lo`, which can overflow for
            // near-top intervals.
            v.rem_euclid(self.stride) == self.lo.rem_euclid(self.stride)
        }
    }

    /// Abstract addition: `{a + b | a ∈ self, b ∈ other}` is contained in
    /// the result (exact interval hull, stride weakened to the gcd).
    pub fn add(&self, other: &StridedInterval) -> StridedInterval {
        let (Some(lo), Some(hi)) = (self.lo.checked_add(other.lo), self.hi.checked_add(other.hi))
        else {
            return Self::top();
        };
        Self::canonical(lo, hi, gcd_i128(self.stride, other.stride))
    }

    /// Abstract negation (exact).
    pub fn neg(&self) -> StridedInterval {
        let (Some(lo), Some(hi)) = (self.hi.checked_neg(), self.lo.checked_neg()) else {
            return Self::top();
        };
        Self::canonical(lo, hi, self.stride)
    }

    /// Abstract subtraction.
    pub fn sub(&self, other: &StridedInterval) -> StridedInterval {
        self.add(&other.neg())
    }

    /// Abstract multiplication by a constant (exact).
    pub fn scale(&self, k: i64) -> StridedInterval {
        if k == 0 {
            return Self::constant(0);
        }
        let k = k as i128;
        let (Some(a), Some(b), Some(s)) = (
            self.lo.checked_mul(k),
            self.hi.checked_mul(k),
            self.stride.checked_mul(k.unsigned_abs() as i128),
        ) else {
            return Self::top();
        };
        Self::canonical(a.min(b), a.max(b), s)
    }

    /// Least upper bound: the smallest strided interval containing both.
    ///
    /// The joined stride divides both strides *and* the distance between
    /// the two base points, so membership of every element of either
    /// operand is preserved.
    pub fn join(&self, other: &StridedInterval) -> StridedInterval {
        let lo = self.lo.min(other.lo);
        let hi = self.hi.max(other.hi);
        let Some(dist) = self.lo.checked_sub(other.lo) else {
            return Self::canonical(lo, hi, 1);
        };
        let s = gcd_i128(gcd_i128(self.stride, other.stride), dist);
        Self::canonical(lo, hi, s)
    }
}

impl fmt::Display for StridedInterval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_top() {
            write!(f, "⊤")
        } else if self.stride == 0 {
            write!(f, "{{{}}}", self.lo)
        } else {
            write!(f, "[{}, {}]/{}", self.lo, self.hi, self.stride)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_form_pulls_hi_onto_the_lattice() {
        let s = StridedInterval::range(1, 10, 4); // {1, 5, 9}
        assert_eq!((s.lo(), s.hi(), s.stride()), (1, 9, 4));
        assert!(s.contains(5));
        assert!(!s.contains(10));
        let single = StridedInterval::range(3, 3, 7);
        assert_eq!(single, StridedInterval::constant(3));
        assert_eq!(single.stride(), 0);
    }

    #[test]
    fn parity_survives_addition_of_constants() {
        // {0, 2, ..., 14} − 3 = {−3, −1, ..., 11}: all odd, 0 excluded.
        let evens = StridedInterval::range(0, 14, 2);
        let d = evens.add(&StridedInterval::constant(-3));
        assert_eq!((d.lo(), d.hi(), d.stride()), (-3, 11, 2));
        assert!(!d.contains(0));
        assert!(d.contains(-1));
    }

    #[test]
    fn add_weakens_stride_to_gcd() {
        let a = StridedInterval::range(0, 12, 4);
        let b = StridedInterval::range(0, 6, 6);
        let sum = a.add(&b);
        assert_eq!(sum.stride(), 2);
        // Exact hull of the sum set.
        assert_eq!((sum.lo(), sum.hi()), (0, 18));
    }

    #[test]
    fn scale_by_negative_swaps_and_keeps_magnitude() {
        let s = StridedInterval::range(1, 7, 3); // {1, 4, 7}
        let t = s.scale(-2); // {−14, −8, −2}
        assert_eq!((t.lo(), t.hi(), t.stride()), (-14, -2, 6));
        assert!(t.contains(-8));
        assert!(!t.contains(-4));
        assert_eq!(s.scale(0), StridedInterval::constant(0));
    }

    #[test]
    fn sub_and_neg_are_exact() {
        let s = StridedInterval::range(2, 10, 2);
        let n = s.neg();
        assert_eq!((n.lo(), n.hi(), n.stride()), (-10, -2, 2));
        let d = s.sub(&StridedInterval::constant(2));
        assert_eq!((d.lo(), d.hi()), (0, 8));
    }

    #[test]
    fn join_strides_account_for_base_distance() {
        // {0, 6, 12} ⊔ {2, 8} must keep 2−0 in the congruence: stride 2.
        let a = StridedInterval::range(0, 12, 6);
        let b = StridedInterval::range(2, 8, 6);
        let j = a.join(&b);
        assert_eq!(j.stride(), 2);
        for v in [0, 2, 6, 8, 12] {
            assert!(j.contains(v), "{v} lost by join");
        }
        // Same-base join keeps the common stride.
        let k = a.join(&StridedInterval::range(0, 18, 6));
        assert_eq!(k.stride(), 6);
    }

    #[test]
    fn negative_stride_enumerates_descending_from_hi() {
        // step −4 from 10 down: {10, 6, 2} — anchored at hi, lo pulled up.
        let s = StridedInterval::range(0, 10, -4);
        assert_eq!((s.lo(), s.hi(), s.stride()), (2, 10, 4));
        assert!(s.contains(6));
        assert!(!s.contains(0));
        assert!(!s.contains(4));
        // Descending unit stride is the dense interval.
        let d = StridedInterval::range(-3, 3, -1);
        assert_eq!((d.lo(), d.hi(), d.stride()), (-3, 3, 1));
        // i64::MIN stride must not overflow on negation.
        let m = StridedInterval::range(0, 5, i64::MIN);
        assert_eq!((m.lo(), m.hi(), m.stride()), (5, 5, 0));
        assert_eq!(
            StridedInterval::range(7, 7, -3),
            StridedInterval::constant(7)
        );
    }

    /// The exact singleton `{i128::MIN}`, built through checked public ops:
    /// `(−2^63)(2^63 − 1) − 2^63 = −2^126`, then doubled by `add`.
    fn min_singleton() -> StridedInterval {
        let m = StridedInterval::constant(i64::MIN)
            .scale(i64::MAX)
            .add(&StridedInterval::constant(i64::MIN));
        assert_eq!((m.lo(), m.hi()), (-(1i128 << 126), -(1i128 << 126)));
        let m = m.add(&m);
        assert_eq!((m.lo(), m.hi(), m.stride()), (i128::MIN, i128::MIN, 0));
        m
    }

    #[test]
    fn lo_at_i128_min_canonicalizes_without_overflow() {
        // join({i128::MIN}, {0, 2^62}) = ⟨i128::MIN, 2^62, 2^62⟩: the span
        // 2^127 + 2^62 overflows i128, so the old span-based snap degraded
        // this to the stride-1 hull; the residue snap keeps the congruence.
        let y = StridedInterval::range(0, i64::MAX, 1 << 62);
        assert_eq!((y.lo(), y.hi(), y.stride()), (0, 1 << 62, 1 << 62));
        let s = min_singleton().join(&y);
        assert_eq!(s.lo(), i128::MIN, "endpoint reaches i128::MIN exactly");
        assert_eq!(s.hi(), 1i128 << 62);
        assert_eq!(s.stride(), 1i128 << 62, "congruence survives the wide span");
        assert!(!s.is_top());
        assert!(s.contains(0));
        assert!(!s.contains(1));
        assert!(!s.contains(3));
    }

    #[test]
    fn join_at_extreme_distance_stays_sound() {
        // The base distance of join({i128::MIN}, {0}) is |i128::MIN| =
        // 2^127, whose gcd is unrepresentable; it must degrade to the
        // dense hull (stride 1), never to a stride that loses members.
        let j = min_singleton().join(&StridedInterval::constant(0));
        assert_eq!((j.lo(), j.hi(), j.stride()), (i128::MIN, 0, 1));
        assert!(j.contains(0), "member of the right operand survives");
        assert!(j.contains(-5), "dense hull");
    }

    #[test]
    fn overflow_widens_to_top() {
        let huge = StridedInterval::range(i64::MAX, i64::MAX, 0);
        let t = huge.scale(i64::MAX).scale(i64::MAX).scale(i64::MAX);
        assert!(t.is_top());
        assert!(t.contains(0));
        assert!(StridedInterval::top().sub(&huge).is_top());
    }

    #[test]
    fn display_forms() {
        assert_eq!(StridedInterval::constant(4).to_string(), "{4}");
        assert_eq!(StridedInterval::range(0, 6, 2).to_string(), "[0, 6]/2");
        assert_eq!(StridedInterval::top().to_string(), "⊤");
    }
}
