//! Whole-program safety lints (the analyses behind the V5xx codes).
//!
//! Six findings, computed purely over `slp-ir` (the `slp-verify` crate
//! maps them onto its diagnostic framework as V500–V504 and V507):
//!
//! * **use-before-def** — a scalar is read strictly before its first
//!   write, so the first pass observes the runtime input seed;
//! * **dead store** — a scalar or array-element write that is provably
//!   overwritten before any read on *every* continuation (including the
//!   loop back-edge); final values are kernel outputs, so a store that
//!   survives to the end of the program is never dead;
//! * **out-of-bounds** — a subscript whose exact strided-interval range
//!   leaves the array extent for some iteration. Over affine subscripts
//!   and box iteration domains the abstract endpoints are attained, so
//!   this is an error, not a maybe — `execute_reference` would trap;
//! * **misalignment risk** — consecutive isomorphic stores form a
//!   contiguous pack candidate whose base alignment cannot be proven,
//!   so vectorizing it costs an unaligned (or scalar-decomposed) store;
//! * **loop never executes** — constant bounds prove a zero trip count,
//!   so the loop body is dead code (and silently escapes every other
//!   lint, the vectorizer, and the VM);
//! * **dead array store** — the program never reads the array, and a
//!   later write's exact strided value set covers every cell the store
//!   touches, so no stored value survives to the kernel outputs.
//!
//! The lints are deliberately biased to silence: each rule only fires on
//! program shapes where the verdict is exact, so a lint-clean report on
//! the curated kernels stays meaningful.

use std::collections::{HashMap, HashSet};

use slp_ir::{
    pack_is_aligned_in, pack_is_contiguous, refs_overlap_in, ArrayRef, BlockInfo, Dest, Item,
    LoopVarId, Operand, Program, Statement, StmtId,
};

use crate::defuse::{ArrayAccess, DefUse};
use crate::domain::StridedInterval;
use crate::ranges::{eval_affine, loop_env};

/// The kind of a lint finding (maps to V500–V503 in `slp-verify`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FindingKind {
    /// A scalar read before its first write (V500).
    UseBeforeDef,
    /// A store overwritten before any read (V501).
    DeadStore,
    /// A subscript provably outside its array for some iteration (V502).
    OutOfBounds,
    /// A contiguous pack candidate with unprovable alignment (V503).
    MisalignmentRisk,
    /// A loop whose bounds prove it never executes (V504).
    LoopNeverExecutes,
    /// An array store whose cells are never read and provably all
    /// overwritten before the program ends (V507).
    DeadArrayStore,
}

/// One lint finding, anchored to a statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// What was found.
    pub kind: FindingKind,
    /// The statement the finding anchors to.
    pub stmt: StmtId,
    /// Human-readable explanation with source-level names.
    pub message: String,
}

/// Runs every lint over `program`; findings come back in program order
/// (by anchor statement), then by kind.
///
/// # Examples
///
/// ```
/// use slp_ir::{Expr, Program, ScalarType};
/// use slp_analyze::{lint_program, FindingKind};
///
/// let mut p = Program::new("t");
/// let x = p.add_scalar("x", ScalarType::F64);
/// let y = p.add_scalar("y", ScalarType::F64);
/// p.push_stmt(y.into(), Expr::Copy(x.into())); // reads x ...
/// p.push_stmt(x.into(), Expr::Copy(1.0.into())); // ... before this write
/// let findings = lint_program(&p);
/// assert_eq!(findings[0].kind, FindingKind::UseBeforeDef);
/// ```
pub fn lint_program(program: &Program) -> Vec<Finding> {
    let du = DefUse::analyze(program);
    let mut findings = Vec::new();
    lint_use_before_def(program, &du, &mut findings);
    lint_dead_stores(program, &du, &mut findings);
    lint_dead_array_stores(program, &du, &mut findings);
    lint_out_of_bounds(program, &mut findings);
    lint_misalignment(program, &mut findings);
    lint_dead_loops(program, &mut findings);
    findings.sort_by_key(|f| (du.order_of(f.stmt), f.kind, f.message.clone()));
    findings
}

// ---- V500: use before def ----------------------------------------------

fn lint_use_before_def(program: &Program, du: &DefUse, out: &mut Vec<Finding>) {
    for v in program.scalar_ids() {
        let offenders = du.uses_before_first_def(v);
        let Some(&first_use) = offenders.first() else {
            continue;
        };
        let first_def = du.scalar_defs(v)[0];
        out.push(Finding {
            kind: FindingKind::UseBeforeDef,
            stmt: first_use,
            message: format!(
                "scalar '{}' is read ({first_use}) before its first write ({first_def}); \
                 the read observes the runtime input seed",
                program.scalar(v).name
            ),
        });
    }
}

// ---- V501: dead stores --------------------------------------------------

/// What the next occurrence of a scalar on some path says about a value.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Occ {
    /// The value is read: live.
    Use,
    /// The value is overwritten first: dead on this path.
    Def(StmtId),
    /// No further occurrence on this path.
    None,
}

fn first_scalar_occ<'a, I: IntoIterator<Item = &'a Statement>>(stmts: I, v: slp_ir::VarId) -> Occ {
    for s in stmts {
        if s.uses()
            .iter()
            .any(|u| matches!(u, Operand::Scalar(x) if *x == v))
        {
            return Occ::Use;
        }
        if matches!(s.dest(), Dest::Scalar(x) if *x == v) {
            return Occ::Def(s.id());
        }
    }
    Occ::None
}

/// Loop-structure classification of a block, for the back-edge legs of
/// the dead-store analysis. `Simple` means the flattened statement order
/// after the block is exactly the execution order after the block's last
/// iteration: top-level straight-line code, or the sole block of a
/// top-level loop whose body has no nested loops.
enum BlockShape {
    Straight,
    /// Sole block of a top-level loop with the given trip count.
    SimpleLoop(i64),
    /// Anything nested: the continuation structure is not linear — skip.
    Complex,
}

fn classify(program: &Program, info: &BlockInfo) -> BlockShape {
    match info.loops.len() {
        0 => BlockShape::Straight,
        1 => {
            let header = info.loops[0];
            let simple = program.items().iter().any(|item| match item {
                Item::Loop(l) => {
                    l.header == header && l.body.iter().all(|b| matches!(b, Item::Stmt(_)))
                }
                Item::Stmt(_) => false,
            });
            if simple {
                BlockShape::SimpleLoop(header.trip_count())
            } else {
                BlockShape::Complex
            }
        }
        _ => BlockShape::Complex,
    }
}

fn lint_dead_stores(program: &Program, du: &DefUse, out: &mut Vec<Finding>) {
    let mut flat: Vec<Statement> = Vec::new();
    program.for_each_stmt(|s| flat.push(s.clone()));
    for info in program.blocks() {
        let stmts = info.block.stmts();
        scalar_dead_stores(program, du, &info, stmts, &flat, out);
        array_dead_stores(program, &info, stmts, out);
    }
}

fn scalar_dead_stores(
    program: &Program,
    du: &DefUse,
    info: &BlockInfo,
    stmts: &[Statement],
    flat: &[Statement],
    out: &mut Vec<Finding>,
) {
    let shape = classify(program, info);
    if matches!(shape, BlockShape::Complex) {
        return;
    }
    let block_end = stmts
        .iter()
        .filter_map(|s| du.order_of(s.id()))
        .max()
        .map_or(0, |m| m + 1);
    for (idx, s) in stmts.iter().enumerate() {
        let Dest::Scalar(v) = s.dest() else {
            continue;
        };
        let v = *v;
        let verdict = match first_scalar_occ(&stmts[idx + 1..], v) {
            Occ::Use => None,
            Occ::Def(killer) => Some(killer),
            Occ::None => {
                // The back-edge leg: on every non-final iteration the
                // block restarts; a use before the redefining statement
                // (including inside `s` itself) keeps the value live.
                if let BlockShape::SimpleLoop(trips) = shape {
                    if trips > 1 {
                        if let Occ::Use = first_scalar_occ(&stmts[..=idx], v) {
                            continue;
                        }
                    }
                }
                // The fall-through leg: the rest of the program.
                match first_scalar_occ(&flat[block_end..], v) {
                    Occ::Use => None,
                    Occ::Def(killer) => Some(killer),
                    // Final values are kernel outputs: live.
                    Occ::None => None,
                }
            }
        };
        if let Some(killer) = verdict {
            out.push(Finding {
                kind: FindingKind::DeadStore,
                stmt: s.id(),
                message: format!(
                    "value of '{}' written by {} is overwritten by {killer} before any read",
                    program.scalar(v).name,
                    s.id()
                ),
            });
        }
    }
}

fn array_dead_stores(
    program: &Program,
    info: &BlockInfo,
    stmts: &[Statement],
    out: &mut Vec<Finding>,
) {
    // Same-iteration kills only: a later store to the *identical*
    // affine location with no possibly-overlapping read in between
    // makes the earlier store dead regardless of the loop structure.
    for (idx, s) in stmts.iter().enumerate() {
        let Dest::Array(r1) = s.dest() else {
            continue;
        };
        for later in &stmts[idx + 1..] {
            let reads_it = later
                .uses()
                .iter()
                .any(|u| matches!(u, Operand::Array(ru) if refs_overlap_in(ru, r1, &info.loops)));
            if reads_it {
                break;
            }
            if let Dest::Array(r2) = later.dest() {
                if r2.must_alias(r1) {
                    out.push(Finding {
                        kind: FindingKind::DeadStore,
                        stmt: s.id(),
                        message: format!(
                            "store to '{}' by {} is overwritten by {} in the same iteration \
                             before any read",
                            program.show_operand(&s.def()),
                            s.id(),
                            later.id()
                        ),
                    });
                    break;
                }
            }
        }
    }
}

// ---- V507: whole-program dead array stores -------------------------------

/// Flags stores to arrays the program never reads whose value set is
/// provably covered by a later write — nothing the store writes survives
/// to the kernel outputs, so the store (often a forgotten initialization
/// pass) is pure wasted work.
///
/// Biased to silence, firing only where the verdict is exact:
///
/// * the array has no read access anywhere in the program (otherwise
///   liveness depends on interleaving the loop structure hides);
/// * the array is rank 1 with exactly evaluable subscripts;
/// * both the store's and the killer's blocks are *linear* — top-level
///   straight-line code or the sole block of a top-level loop — so flat
///   statement order is execution order and the killer's writes all
///   execute after the store's;
/// * the killer is in a strictly later block: same-block coverage can
///   overwrite a cell *before* the store's own iteration reaches it,
///   and is V501's must-alias territory instead.
fn lint_dead_array_stores(program: &Program, du: &DefUse, out: &mut Vec<Finding>) {
    // Exact strided coverage: every member of `inner` is a member of
    // `outer` (bounds nested, bases congruent, stride divisible).
    fn covers(outer: &StridedInterval, inner: &StridedInterval) -> bool {
        if inner.lo() < outer.lo() || inner.hi() > outer.hi() {
            return false;
        }
        let s = outer.stride();
        if s <= 1 {
            return true; // dense interval or singleton with equal bounds
        }
        inner.lo().rem_euclid(s) == outer.lo().rem_euclid(s) && inner.stride().rem_euclid(s) == 0
    }

    let blocks = program.blocks();
    let mut home: HashMap<StmtId, usize> = HashMap::new();
    for (idx, info) in blocks.iter().enumerate() {
        for s in info.block.iter() {
            home.insert(s.id(), idx);
        }
    }
    // Per block: linear shape, loop environment, cached subscript eval.
    let linear: Vec<bool> = blocks
        .iter()
        .map(|info| !matches!(classify(program, info), BlockShape::Complex))
        .collect();
    let envs: Vec<_> = blocks.iter().map(|info| loop_env(&info.loops)).collect();
    let value_set = |acc: &ArrayAccess| -> Option<StridedInterval> {
        let idx = *home.get(&acc.stmt)?;
        if !linear[idx] {
            return None;
        }
        let env = envs[idx].as_ref()?; // dead loops are V504's report
        let si = eval_affine(&acc.reference.access.dims()[0], env)?;
        if si.is_top() {
            return None;
        }
        Some(si)
    };

    for a in program.array_ids() {
        if program.array(a).dims.len() != 1 {
            continue;
        }
        let accs = du.array_accesses(a);
        if accs.iter().any(|x| !x.is_write) {
            continue; // the array is read somewhere: out of scope
        }
        for w in accs {
            let Some(sw) = value_set(w) else { continue };
            let Some(w_ord) = du.order_of(w.stmt) else {
                continue;
            };
            let killer = accs.iter().find(|x| {
                home.get(&x.stmt) != home.get(&w.stmt)
                    && du.order_of(x.stmt) > Some(w_ord)
                    && value_set(x).is_some_and(|sx| covers(&sx, &sw))
            });
            if let Some(x) = killer {
                out.push(Finding {
                    kind: FindingKind::DeadArrayStore,
                    stmt: w.stmt,
                    message: format!(
                        "store to '{}' by {} is never read and fully overwritten by {}; \
                         nothing it writes survives to the kernel outputs",
                        program.array(a).name,
                        w.stmt,
                        x.stmt
                    ),
                });
            }
        }
    }
}

// ---- V502: provably out-of-bounds subscripts ----------------------------

fn refs_of(s: &Statement) -> Vec<&ArrayRef> {
    let mut refs: Vec<&ArrayRef> = s.uses().iter().filter_map(|o| o.as_array()).collect();
    if let Dest::Array(r) = s.dest() {
        refs.push(r);
    }
    refs
}

fn lint_out_of_bounds(program: &Program, out: &mut Vec<Finding>) {
    for info in program.blocks() {
        let Some(env) = loop_env(&info.loops) else {
            continue; // dead loop: the accesses never execute
        };
        let in_scope: HashSet<LoopVarId> = info.loops.iter().map(|h| h.var).collect();
        for s in info.block.iter() {
            for r in refs_of(s) {
                let arr = program.array(r.array);
                for (dim, e) in r.access.dims().iter().enumerate() {
                    if dim >= arr.dims.len() {
                        break; // rank mismatch: structural, not a range fact
                    }
                    if e.vars().any(|v| !in_scope.contains(&v)) {
                        continue; // scope violation is validate's report
                    }
                    let Some(si) = eval_affine(e, &env) else {
                        continue;
                    };
                    if si.is_top() {
                        continue; // arithmetic overflowed: no exact verdict
                    }
                    let extent = arr.dims[dim] as i128;
                    if si.lo() < 0 || si.hi() >= extent {
                        out.push(Finding {
                            kind: FindingKind::OutOfBounds,
                            stmt: s.id(),
                            message: format!(
                                "{} indexes '{}' dimension {dim} over {} but the extent is {}",
                                s.id(),
                                arr.name,
                                si,
                                arr.dims[dim]
                            ),
                        });
                    }
                }
            }
        }
    }
}

// ---- V503: misalignment risk for pack candidates ------------------------

fn lint_misalignment(program: &Program, out: &mut Vec<Finding>) {
    for info in program.blocks() {
        let stmts = info.block.stmts();
        let mut k = 0;
        while k < stmts.len() {
            let Dest::Array(_) = stmts[k].dest() else {
                k += 1;
                continue;
            };
            // Grow the longest run of consecutive isomorphic stores whose
            // destinations stay contiguous ascending.
            let mut refs: Vec<&ArrayRef> = vec![match stmts[k].dest() {
                Dest::Array(r) => r,
                Dest::Scalar(_) => unreachable!(),
            }];
            let mut end = k + 1;
            while end < stmts.len() {
                let Dest::Array(r) = stmts[end].dest() else {
                    break;
                };
                if !stmts[k].isomorphic(&stmts[end], program) {
                    break;
                }
                let mut candidate = refs.clone();
                candidate.push(r);
                if !pack_is_contiguous(&candidate) {
                    break;
                }
                refs = candidate;
                end += 1;
            }
            if refs.len() >= 2 && !pack_is_aligned_in(&refs, program, &info.loops) {
                out.push(Finding {
                    kind: FindingKind::MisalignmentRisk,
                    stmt: stmts[k].id(),
                    message: format!(
                        "{}..{} store a contiguous {}-wide pack candidate on '{}' whose base \
                         alignment cannot be proven; vectorizing it needs an unaligned store",
                        stmts[k].id(),
                        stmts[end - 1].id(),
                        refs.len(),
                        program.array(refs[0].array).name
                    ),
                });
            }
            k = end.max(k + 1);
        }
    }
}

// ---- V504: loops that never execute --------------------------------------

/// Flags every loop whose constant bounds prove a zero trip count
/// (`upper <= lower`, or a non-positive step). The body is dead code: it
/// contributes nothing at runtime, silently escapes every other lint and
/// the vectorizer, and almost always indicates a miswritten bound. The
/// finding anchors to the first statement inside the dead loop.
fn lint_dead_loops(program: &Program, out: &mut Vec<Finding>) {
    fn first_stmt(items: &[Item]) -> Option<&Statement> {
        for item in items {
            match item {
                Item::Stmt(s) => return Some(s),
                Item::Loop(l) => {
                    if let Some(s) = first_stmt(&l.body) {
                        return Some(s);
                    }
                }
            }
        }
        None
    }
    fn walk(program: &Program, items: &[Item], out: &mut Vec<Finding>) {
        for item in items {
            let Item::Loop(l) = item else { continue };
            let h = l.header;
            if h.trip_count() <= 0 {
                if let Some(s) = first_stmt(&l.body) {
                    out.push(Finding {
                        kind: FindingKind::LoopNeverExecutes,
                        stmt: s.id(),
                        message: format!(
                            "loop over '{}' ({}..{} step {}) never executes; its body is \
                             dead code",
                            program.loop_var_name(h.var),
                            h.lower,
                            h.upper,
                            h.step
                        ),
                    });
                }
                // The body is dead: nested dead loops would be noise.
                continue;
            }
            walk(program, &l.body, out);
        }
    }
    walk(program, program.items(), out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use slp_ir::{AccessVector, AffineExpr, BinOp, Expr, Loop, LoopHeader, ScalarType};

    fn kinds(findings: &[Finding]) -> Vec<FindingKind> {
        findings.iter().map(|f| f.kind).collect()
    }

    fn simple_loop(p: &mut Program, var: LoopVarId, upper: i64, body: Vec<Statement>) {
        p.push_item(Item::Loop(Loop {
            header: LoopHeader {
                var,
                lower: 0,
                upper,
                step: 1,
            },
            body: body.into_iter().map(Item::Stmt).collect(),
        }));
    }

    #[test]
    fn dead_loop_is_flagged_once() {
        // for i in 8..8 { A[i] = 1.0 } — never executes. The body's
        // use-before-def/out-of-bounds lints must also stay silent: dead
        // code has no runtime behavior to warn about.
        let mut p = Program::new("t");
        let a = p.add_array("A", ScalarType::F64, vec![8], true);
        let i = p.add_loop_var("i");
        let r = slp_ir::ArrayRef::new(a, AccessVector::new(vec![AffineExpr::var(i)]));
        let s = p.make_stmt(r.into(), Expr::Copy(1.0.into()));
        p.push_item(Item::Loop(Loop {
            header: LoopHeader {
                var: i,
                lower: 8,
                upper: 8,
                step: 1,
            },
            body: vec![Item::Stmt(s)],
        }));
        let f = lint_program(&p);
        assert_eq!(kinds(&f), vec![FindingKind::LoopNeverExecutes]);
        assert!(f[0].message.contains("'i'"), "{}", f[0].message);
        assert!(f[0].message.contains("8..8"), "{}", f[0].message);
    }

    #[test]
    fn live_loop_is_not_flagged_as_dead() {
        let mut p = Program::new("t");
        let a = p.add_array("A", ScalarType::F64, vec![8], true);
        let i = p.add_loop_var("i");
        let r = slp_ir::ArrayRef::new(a, AccessVector::new(vec![AffineExpr::var(i)]));
        let s = p.make_stmt(r.into(), Expr::Copy(1.0.into()));
        simple_loop(&mut p, i, 8, vec![s]);
        assert!(lint_program(&p).is_empty());
    }

    #[test]
    fn use_before_def_fires_and_names_both_sites() {
        let mut p = Program::new("t");
        let x = p.add_scalar("x", ScalarType::F64);
        let y = p.add_scalar("y", ScalarType::F64);
        p.push_stmt(y.into(), Expr::Copy(x.into()));
        p.push_stmt(x.into(), Expr::Copy(1.0.into()));
        let f = lint_program(&p);
        assert_eq!(kinds(&f), vec![FindingKind::UseBeforeDef]);
        assert!(f[0].message.contains("'x'"), "{}", f[0].message);
    }

    #[test]
    fn parameters_and_accumulators_are_not_use_before_def() {
        // alpha is never written (a parameter); s's first write reads s
        // itself (read-modify-write of the seed, the accumulator idiom).
        let mut p = Program::new("t");
        let alpha = p.add_scalar("alpha", ScalarType::F64);
        let s = p.add_scalar("s", ScalarType::F64);
        let y = p.add_scalar("y", ScalarType::F64);
        p.push_stmt(s.into(), Expr::Binary(BinOp::Add, s.into(), alpha.into()));
        p.push_stmt(y.into(), Expr::Copy(s.into()));
        assert!(lint_program(&p).is_empty());
    }

    #[test]
    fn scalar_dead_store_in_straight_line_code() {
        let mut p = Program::new("t");
        let x = p.add_scalar("x", ScalarType::F64);
        let y = p.add_scalar("y", ScalarType::F64);
        let dead = p.push_stmt(x.into(), Expr::Copy(1.0.into()));
        p.push_stmt(x.into(), Expr::Copy(2.0.into()));
        p.push_stmt(y.into(), Expr::Copy(x.into()));
        let f = lint_program(&p);
        assert_eq!(kinds(&f), vec![FindingKind::DeadStore]);
        assert_eq!(f[0].stmt, dead);
    }

    #[test]
    fn final_stores_are_outputs_not_dead() {
        let mut p = Program::new("t");
        let x = p.add_scalar("x", ScalarType::F64);
        p.push_stmt(x.into(), Expr::Copy(1.0.into()));
        assert!(lint_program(&p).is_empty(), "final value is an output");
    }

    #[test]
    fn loop_carried_use_keeps_a_store_live() {
        // for i { t = s; s = A[i] }: s's write is read by the *next*
        // iteration through the back edge — live despite no later use in
        // the same iteration's remainder.
        let mut p = Program::new("t");
        let s = p.add_scalar("s", ScalarType::F64);
        let t = p.add_scalar("t", ScalarType::F64);
        let u = p.add_scalar("u", ScalarType::F64);
        let a = p.add_array("A", ScalarType::F64, vec![8], true);
        let i = p.add_loop_var("i");
        let r = ArrayRef::new(a, AccessVector::new(vec![AffineExpr::var(i)]));
        p.push_stmt(s.into(), Expr::Copy(0.0.into()));
        let b0 = p.make_stmt(t.into(), Expr::Copy(s.into()));
        let b1 = p.make_stmt(s.into(), Expr::Copy(r.into()));
        simple_loop(&mut p, i, 8, vec![b0, b1]);
        p.push_stmt(u.into(), Expr::Binary(BinOp::Add, s.into(), t.into()));
        assert!(lint_program(&p).is_empty());
    }

    #[test]
    fn dead_store_through_the_back_edge_is_caught() {
        // for i { s = A[i]; s = B[i] }; y = s: the first write is killed
        // within the iteration, every iteration.
        let mut p = Program::new("t");
        let s = p.add_scalar("s", ScalarType::F64);
        let y = p.add_scalar("y", ScalarType::F64);
        let a = p.add_array("A", ScalarType::F64, vec![8], true);
        let b = p.add_array("B", ScalarType::F64, vec![8], true);
        let i = p.add_loop_var("i");
        let ra = ArrayRef::new(a, AccessVector::new(vec![AffineExpr::var(i)]));
        let rb = ArrayRef::new(b, AccessVector::new(vec![AffineExpr::var(i)]));
        let b0 = p.make_stmt(s.into(), Expr::Copy(ra.into()));
        let dead = b0.id();
        let b1 = p.make_stmt(s.into(), Expr::Copy(rb.into()));
        simple_loop(&mut p, i, 8, vec![b0, b1]);
        p.push_stmt(y.into(), Expr::Copy(s.into()));
        let f = lint_program(&p);
        assert_eq!(kinds(&f), vec![FindingKind::DeadStore]);
        assert_eq!(f[0].stmt, dead);
    }

    #[test]
    fn array_dead_store_same_iteration() {
        // for i { A[i] = 1.0; A[i] = 2.0 }: first store dead; with an
        // intervening read it stays live.
        let mut p = Program::new("t");
        let a = p.add_array("A", ScalarType::F64, vec![8], false);
        let i = p.add_loop_var("i");
        let r = ArrayRef::new(a, AccessVector::new(vec![AffineExpr::var(i)]));
        let b0 = p.make_stmt(r.clone().into(), Expr::Copy(1.0.into()));
        let dead = b0.id();
        let b1 = p.make_stmt(r.clone().into(), Expr::Copy(2.0.into()));
        simple_loop(&mut p, i, 8, vec![b0, b1]);
        let f = lint_program(&p);
        assert_eq!(kinds(&f), vec![FindingKind::DeadStore]);
        assert_eq!(f[0].stmt, dead);

        let mut q = Program::new("t");
        let a = q.add_array("A", ScalarType::F64, vec![8], false);
        let t2 = q.add_scalar("t", ScalarType::F64);
        let i = q.add_loop_var("i");
        let r = ArrayRef::new(a, AccessVector::new(vec![AffineExpr::var(i)]));
        let b0 = q.make_stmt(r.clone().into(), Expr::Copy(1.0.into()));
        let b1 = q.make_stmt(t2.into(), Expr::Copy(r.clone().into()));
        let b2 = q.make_stmt(r.clone().into(), Expr::Copy(2.0.into()));
        simple_loop(&mut q, i, 8, vec![b0, b1, b2]);
        assert!(
            lint_program(&q)
                .iter()
                .all(|f| f.kind != FindingKind::DeadStore),
            "intervening read keeps the store live"
        );
    }

    #[test]
    fn dead_array_store_across_sibling_loops() {
        // for i { A[i] = 1.0 }; for i { A[i] = B[i] }: A is never read and
        // the second sweep overwrites every cell — the first is dead.
        let mut p = Program::new("t");
        let a = p.add_array("A", ScalarType::F64, vec![16], false);
        let b = p.add_array("B", ScalarType::F64, vec![16], true);
        let i = p.add_loop_var("i");
        let j = p.add_loop_var("j");
        let ra = |v| ArrayRef::new(a, AccessVector::new(vec![AffineExpr::var(v)]));
        let rb = ArrayRef::new(b, AccessVector::new(vec![AffineExpr::var(j)]));
        let s0 = p.make_stmt(ra(i).into(), Expr::Copy(1.0.into()));
        let dead = s0.id();
        simple_loop(&mut p, i, 16, vec![s0]);
        let s1 = p.make_stmt(ra(j).into(), Expr::Copy(rb.into()));
        simple_loop(&mut p, j, 16, vec![s1]);
        let f = lint_program(&p);
        assert_eq!(kinds(&f), vec![FindingKind::DeadArrayStore]);
        assert_eq!(f[0].stmt, dead);
        assert!(f[0].message.contains("'A'"), "{}", f[0].message);
    }

    #[test]
    fn partially_overwritten_store_stays_live() {
        // The second sweep only covers half the cells: the rest are
        // kernel outputs, so the first store is live.
        let mut p = Program::new("t");
        let a = p.add_array("A", ScalarType::F64, vec![16], false);
        let i = p.add_loop_var("i");
        let j = p.add_loop_var("j");
        let s0 = p.make_stmt(
            ArrayRef::new(a, AccessVector::new(vec![AffineExpr::var(i)])).into(),
            Expr::Copy(1.0.into()),
        );
        simple_loop(&mut p, i, 16, vec![s0]);
        let s1 = p.make_stmt(
            ArrayRef::new(a, AccessVector::new(vec![AffineExpr::var(j)])).into(),
            Expr::Copy(2.0.into()),
        );
        simple_loop(&mut p, j, 8, vec![s1]);
        assert!(lint_program(&p).is_empty());
    }

    #[test]
    fn read_anywhere_disables_the_whole_program_dead_store() {
        // Same two sweeps, but a read between them keeps the first live.
        let mut p = Program::new("t");
        let a = p.add_array("A", ScalarType::F64, vec![16], false);
        let y = p.add_scalar("y", ScalarType::F64);
        let i = p.add_loop_var("i");
        let j = p.add_loop_var("j");
        let s0 = p.make_stmt(
            ArrayRef::new(a, AccessVector::new(vec![AffineExpr::var(i)])).into(),
            Expr::Copy(1.0.into()),
        );
        simple_loop(&mut p, i, 16, vec![s0]);
        p.push_stmt(
            y.into(),
            Expr::Copy(
                ArrayRef::new(a, AccessVector::new(vec![AffineExpr::constant_expr(3)])).into(),
            ),
        );
        let s1 = p.make_stmt(
            ArrayRef::new(a, AccessVector::new(vec![AffineExpr::var(j)])).into(),
            Expr::Copy(2.0.into()),
        );
        simple_loop(&mut p, j, 16, vec![s1]);
        assert!(
            lint_program(&p)
                .iter()
                .all(|f| f.kind != FindingKind::DeadArrayStore),
            "a read anywhere keeps every store live"
        );
    }

    #[test]
    fn strided_coverage_is_exact_both_ways() {
        // A[2i] killed by a dense A[j] sweep: covered. The mirrored case
        // (dense store, strided killer) leaves odd cells live.
        let build = |first_scale: i64, second_scale: i64, first_trips: i64, second_trips: i64| {
            let mut p = Program::new("t");
            let a = p.add_array("A", ScalarType::F64, vec![16], false);
            let i = p.add_loop_var("i");
            let j = p.add_loop_var("j");
            let s0 = p.make_stmt(
                ArrayRef::new(
                    a,
                    AccessVector::new(vec![AffineExpr::var(i).scaled(first_scale)]),
                )
                .into(),
                Expr::Copy(1.0.into()),
            );
            simple_loop(&mut p, i, first_trips, vec![s0]);
            let s1 = p.make_stmt(
                ArrayRef::new(
                    a,
                    AccessVector::new(vec![AffineExpr::var(j).scaled(second_scale)]),
                )
                .into(),
                Expr::Copy(2.0.into()),
            );
            simple_loop(&mut p, j, second_trips, vec![s1]);
            lint_program(&p)
        };
        let f = build(2, 1, 8, 16);
        assert_eq!(kinds(&f), vec![FindingKind::DeadArrayStore]);
        assert!(
            build(1, 2, 16, 8).is_empty(),
            "strided killer misses odd cells"
        );
    }

    #[test]
    fn out_of_bounds_is_reported_with_the_range() {
        // A[2i+1] for i in 0..8 touches index 15 of a 15-element array.
        let mut p = Program::new("t");
        let a = p.add_array("A", ScalarType::F64, vec![15], false);
        let i = p.add_loop_var("i");
        let r = ArrayRef::new(
            a,
            AccessVector::new(vec![AffineExpr::var(i).scaled(2).offset(1)]),
        );
        let s = p.make_stmt(r.into(), Expr::Copy(1.0.into()));
        simple_loop(&mut p, i, 8, vec![s]);
        let f = lint_program(&p);
        assert_eq!(kinds(&f), vec![FindingKind::OutOfBounds]);
        assert!(f[0].message.contains("extent is 15"), "{}", f[0].message);
    }

    #[test]
    fn strided_bounds_use_the_actual_last_iteration() {
        // for i in 0..10 step 4 (via header) visits 0,4,8: A[2i] max 16
        // fits extent 17 exactly.
        let mut p = Program::new("t");
        let a = p.add_array("A", ScalarType::F64, vec![17], false);
        let i = p.add_loop_var("i");
        let r = ArrayRef::new(a, AccessVector::new(vec![AffineExpr::var(i).scaled(2)]));
        let s = p.make_stmt(r.into(), Expr::Copy(1.0.into()));
        p.push_item(Item::Loop(Loop {
            header: LoopHeader {
                var: i,
                lower: 0,
                upper: 10,
                step: 4,
            },
            body: vec![Item::Stmt(s)],
        }));
        assert!(lint_program(&p).is_empty());
    }

    #[test]
    fn misalignment_risk_on_odd_based_contiguous_stores() {
        // A[2i+1], A[2i+2]: a contiguous f64 pair starting at an odd
        // element — contiguous but never 16-byte aligned.
        let mut p = Program::new("t");
        let a = p.add_array("A", ScalarType::F64, vec![32], false);
        let b = p.add_array("B", ScalarType::F64, vec![32], true);
        let i = p.add_loop_var("i");
        let at = |c: i64, k: i64| {
            ArrayRef::new(
                a,
                AccessVector::new(vec![AffineExpr::var(i).scaled(c).offset(k)]),
            )
        };
        let bt = |k: i64| {
            ArrayRef::new(
                b,
                AccessVector::new(vec![AffineExpr::var(i).scaled(2).offset(k)]),
            )
        };
        let s0 = p.make_stmt(at(2, 1).into(), Expr::Copy(bt(0).into()));
        let s1 = p.make_stmt(at(2, 2).into(), Expr::Copy(bt(1).into()));
        let anchor = s0.id();
        simple_loop(&mut p, i, 8, vec![s0, s1]);
        let f = lint_program(&p);
        assert_eq!(kinds(&f), vec![FindingKind::MisalignmentRisk]);
        assert_eq!(f[0].stmt, anchor);

        // The even-based pair is provably aligned: no finding.
        let mut q = Program::new("t");
        let a = q.add_array("A", ScalarType::F64, vec![32], false);
        let b = q.add_array("B", ScalarType::F64, vec![32], true);
        let i = q.add_loop_var("i");
        let s0 = q.make_stmt(
            ArrayRef::new(a, AccessVector::new(vec![AffineExpr::var(i).scaled(2)])).into(),
            Expr::Copy(
                ArrayRef::new(b, AccessVector::new(vec![AffineExpr::var(i).scaled(2)])).into(),
            ),
        );
        let s1 = q.make_stmt(
            ArrayRef::new(
                a,
                AccessVector::new(vec![AffineExpr::var(i).scaled(2).offset(1)]),
            )
            .into(),
            Expr::Copy(
                ArrayRef::new(
                    b,
                    AccessVector::new(vec![AffineExpr::var(i).scaled(2).offset(1)]),
                )
                .into(),
            ),
        );
        simple_loop(&mut q, i, 8, vec![s0, s1]);
        assert!(lint_program(&q).is_empty());
    }
}
