//! The range-refined dependence oracle.
//!
//! [`RangeOracle`] implements [`slp_ir::DepOracle`] with three layers of
//! disproof per array-reference pair, applied to the per-dimension
//! subscript difference `Δd = e₁d − e₂d`:
//!
//! 1. the **GCD test** (`slp_ir::gcd_test_refutes_zero`) — the baseline
//!    the built-in oracle already performs, so refutations here are not
//!    counted as refinements;
//! 2. a **strided-interval evaluation** of `Δd` over the exact value
//!    sets of the induction variables: if `0` is not a member (outside
//!    the hull *or* off the stride lattice), the references never
//!    coincide in dimension `d`;
//! 3. a **joint pairwise test** across dimensions: an overlap needs
//!    *every* `Δd` to vanish at the same iteration, so if `Δa − Δb` is
//!    provably never zero the pair cannot overlap even when each
//!    dimension separately can.
//!
//! Layers 2 and 3 go beyond the GCD test; each pair they refute bumps
//! the telemetry counter surfaced as `deps_refuted` in compile stats.
//! The oracle is conservative by construction — every disproof is a
//! proof that no iteration makes all differences vanish — and the
//! `conservative.rs` proptest re-checks that against brute-force
//! enumeration of random iteration spaces.

use std::cell::Cell;

use slp_ir::{operands_overlap_in, ArrayRef, DepOracle, LoopHeader, Operand};

use crate::ranges::{eval_affine, loop_env};

/// A [`DepOracle`] that augments the built-in affine test with
/// strided-interval range disproofs.
///
/// # Examples
///
/// ```
/// use slp_ir::{AccessVector, AffineExpr, ArrayId, ArrayRef, LoopHeader, LoopVarId,
///     DepOracle, Operand};
/// use slp_analyze::RangeOracle;
///
/// let i = LoopVarId::new(0);
/// // for i in 0..16 step 2: A[2i] vs A[i+3] — Δ = i − 3 is odd, never 0.
/// let w = ArrayRef::new(ArrayId::new(0),
///     AccessVector::new(vec![AffineExpr::var(i).scaled(2)]));
/// let r = ArrayRef::new(ArrayId::new(0),
///     AccessVector::new(vec![AffineExpr::var(i).offset(3)]));
/// let loops = [LoopHeader { var: i, lower: 0, upper: 16, step: 2 }];
/// let oracle = RangeOracle::new();
/// assert!(!oracle.operands_overlap(&Operand::Array(w), &Operand::Array(r), &loops));
/// assert_eq!(oracle.refuted_beyond_gcd(), 1);
/// ```
#[derive(Debug, Default)]
pub struct RangeOracle {
    refuted_beyond_gcd: Cell<u64>,
}

impl RangeOracle {
    /// A fresh oracle with a zeroed telemetry counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// How many operand-pair queries were refuted by range reasoning the
    /// GCD test alone could not settle (each refuted query kills one
    /// candidate dependence edge).
    pub fn refuted_beyond_gcd(&self) -> u64 {
        self.refuted_beyond_gcd.get()
    }

    /// Resets the telemetry counter.
    pub fn reset(&self) {
        self.refuted_beyond_gcd.set(0);
    }

    fn count_refinement(&self) {
        self.refuted_beyond_gcd
            .set(self.refuted_beyond_gcd.get() + 1);
    }

    fn refs_overlap(&self, x: &ArrayRef, y: &ArrayRef, loops: &[LoopHeader]) -> bool {
        if x.array != y.array {
            return false;
        }
        if x.access.rank() != y.access.rank() {
            return true; // malformed; stay conservative
        }
        let deltas: Vec<_> = (0..x.access.rank())
            .map(|d| x.access.dim(d).sub(y.access.dim(d)))
            .collect();
        // Layer 1: the baseline GCD disproof (uncounted).
        if deltas.iter().any(slp_ir::gcd_test_refutes_zero) {
            return false;
        }
        // Range layers need every induction variable's value set; a
        // provably dead loop yields no constraint (the built-in test is
        // conservative there too).
        let Some(env) = loop_env(loops) else {
            return true;
        };
        let never_zero = |delta: &slp_ir::AffineExpr| -> bool {
            // A constant delta that survived the GCD test is zero.
            !delta.is_constant() && eval_affine(delta, &env).is_some_and(|si| !si.contains(0))
        };
        // Layer 2: per-dimension strided-interval disproof.
        if deltas.iter().any(never_zero) {
            self.count_refinement();
            return false;
        }
        // Layer 3: joint test. All Δd must vanish simultaneously for an
        // overlap, so a never-zero pairwise difference refutes the pair.
        for a in 0..deltas.len() {
            for b in a + 1..deltas.len() {
                let diff = deltas[a].sub(&deltas[b]);
                if slp_ir::gcd_test_refutes_zero(&diff) || never_zero(&diff) {
                    self.count_refinement();
                    return false;
                }
            }
        }
        true
    }
}

impl DepOracle for RangeOracle {
    fn operands_overlap(&self, a: &Operand, b: &Operand, loops: &[LoopHeader]) -> bool {
        match (a, b) {
            (Operand::Array(x), Operand::Array(y)) => self.refs_overlap(x, y, loops),
            _ => operands_overlap_in(a, b, loops),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slp_ir::{AccessVector, AffineExpr, ArrayId, LoopVarId};

    fn at(dims: Vec<AffineExpr>) -> Operand {
        Operand::Array(ArrayRef::new(ArrayId::new(0), AccessVector::new(dims)))
    }

    fn h(var: u32, lower: i64, upper: i64, step: i64) -> LoopHeader {
        LoopHeader {
            var: LoopVarId::new(var),
            lower,
            upper,
            step,
        }
    }

    #[test]
    fn stride_parity_refutes_what_gcd_and_intervals_cannot() {
        let i = LoopVarId::new(0);
        // for i in 0..16 step 2: A[2i] vs A[i+3].  Δ = i − 3: the GCD of
        // {1} divides 3, and [−3, 11] straddles 0 — but i is even, so
        // Δ is odd and never vanishes.
        let w = at(vec![AffineExpr::var(i).scaled(2)]);
        let r = at(vec![AffineExpr::var(i).offset(3)]);
        let loops = [h(0, 0, 16, 2)];
        assert!(operands_overlap_in(&w, &r, &loops), "baseline keeps it");
        let oracle = RangeOracle::new();
        assert!(!oracle.operands_overlap(&w, &r, &loops));
        assert_eq!(oracle.refuted_beyond_gcd(), 1);
        oracle.reset();
        assert_eq!(oracle.refuted_beyond_gcd(), 0);
    }

    #[test]
    fn interval_refutation_beyond_gcd_is_counted() {
        let i = LoopVarId::new(0);
        // for i in 0..8: A[2i] vs A[i+16].  Δ = i − 16 ∈ [−16, −9] < 0.
        let w = at(vec![AffineExpr::var(i).scaled(2)]);
        let r = at(vec![AffineExpr::var(i).offset(16)]);
        let oracle = RangeOracle::new();
        assert!(!oracle.operands_overlap(&w, &r, &[h(0, 0, 8, 1)]));
        assert_eq!(oracle.refuted_beyond_gcd(), 1);
    }

    #[test]
    fn gcd_refutations_are_not_counted_as_refinements() {
        let i = LoopVarId::new(0);
        // A[2i] vs A[2i+1]: constant odd difference — pure GCD territory.
        let a = at(vec![AffineExpr::var(i).scaled(2)]);
        let b = at(vec![AffineExpr::var(i).scaled(2).offset(1)]);
        let oracle = RangeOracle::new();
        assert!(!oracle.operands_overlap(&a, &b, &[h(0, 0, 8, 1)]));
        assert_eq!(oracle.refuted_beyond_gcd(), 0);
    }

    #[test]
    fn joint_test_refutes_simultaneous_zeros() {
        let (i, j) = (LoopVarId::new(0), LoopVarId::new(1));
        // B[i][j] vs B[j][i+1]: Δ0 = i − j, Δ1 = j − i − 1. Each dimension
        // vanishes somewhere, but Δ0 − Δ1 = 2(i − j) + 1 is odd: they
        // never vanish together.
        let a = at(vec![AffineExpr::var(i), AffineExpr::var(j)]);
        let b = at(vec![AffineExpr::var(j), AffineExpr::var(i).offset(1)]);
        let loops = [h(0, 0, 8, 1), h(1, 0, 8, 1)];
        assert!(operands_overlap_in(&a, &b, &loops), "baseline keeps it");
        let oracle = RangeOracle::new();
        assert!(!oracle.operands_overlap(&a, &b, &loops));
        assert_eq!(oracle.refuted_beyond_gcd(), 1);
    }

    #[test]
    fn genuinely_overlapping_pairs_stay_dependent() {
        let i = LoopVarId::new(0);
        let a = at(vec![AffineExpr::var(i)]);
        let b = at(vec![AffineExpr::var(i).scaled(2).offset(-4)]);
        // Δ = 4 − i vanishes at i = 4 ∈ [0, 8).
        let oracle = RangeOracle::new();
        assert!(oracle.operands_overlap(&a, &b, &[h(0, 0, 8, 1)]));
        assert_eq!(oracle.refuted_beyond_gcd(), 0);
    }

    #[test]
    fn zero_trip_and_unknown_loops_stay_conservative() {
        let i = LoopVarId::new(0);
        let a = at(vec![AffineExpr::var(i)]);
        let b = at(vec![AffineExpr::var(i).scaled(2)]);
        let oracle = RangeOracle::new();
        assert!(oracle.operands_overlap(&a, &b, &[h(0, 4, 4, 1)]));
        assert!(oracle.operands_overlap(&a, &b, &[]));
        assert_eq!(oracle.refuted_beyond_gcd(), 0);
    }

    #[test]
    fn scalar_queries_fall_through_to_the_builtin_test() {
        let oracle = RangeOracle::new();
        let x = Operand::Scalar(slp_ir::VarId::new(0));
        let y = Operand::Scalar(slp_ir::VarId::new(1));
        assert!(oracle.operands_overlap(&x, &x, &[]));
        assert!(!oracle.operands_overlap(&x, &y, &[]));
    }
}
