//! Memory-safety certificates (the analysis behind V505/V506).
//!
//! For every array access of a program, the pass evaluates the access's
//! affine subscripts over the strided-interval loop environment and
//! checks the resulting value set against the declared [`slp_ir::ArrayInfo`]
//! extents, classifying the access on a three-point lattice:
//!
//! * [`AccessVerdict::ProvenSafe`] — every concrete iteration stays in
//!   bounds in every dimension. Over affine subscripts and box iteration
//!   domains the abstract interval hull is exact (each variable
//!   independently attains its extremes), so this is a proof, not a
//!   heuristic: downstream engines may elide the per-dimension bounds
//!   check for such accesses.
//! * [`AccessVerdict::ProvenFaulting`] — some dimension's exact value
//!   set leaves `[0, extent)`. The abstract endpoints are attained by
//!   concrete iterations, so executing the access *will* trap in the
//!   reference engine — this is a hard error (V505), caught before any
//!   compile or execution work is spent on the kernel.
//! * [`AccessVerdict::Unknown`] — the range arithmetic widened to ⊤
//!   (i128 overflow), so no exact verdict exists; the access keeps its
//!   runtime check (V506, warning).
//!
//! Two semantic details keep the classification exact:
//!
//! * A subscript variable not bound by the block's enclosing loops
//!   contributes **zero** at runtime (`AffineExpr::eval` drops missing
//!   variables, in both engines), so it is modeled as the constant 0
//!   rather than as ⊤.
//! * Select-predicated accesses (`select` merges from if-conversion)
//!   evaluate **all** operands in both engines regardless of which arm
//!   is taken, so every arm's reference is certified under the full
//!   loop environment — the arm-union range, never just the taken arm.
//!
//! Accesses inside loops that provably never execute are `ProvenSafe`:
//! there is no runtime behavior to fault (the dead loop itself is V504).
//!
//! The certificate is keyed by `(block, reference)` for consumers that
//! have lost statement identity (bytecode superword lanes carry only
//! their `ArrayRef`s): a reference's verdict is a pure function of the
//! reference and its block's loop environment, so the key is unambiguous.

use std::fmt;

use slp_ir::{ArrayRef, BlockId, Dest, Program, Statement, StmtId};

use crate::domain::StridedInterval;
use crate::ranges::loop_env;

/// The three-point classification lattice of one array access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessVerdict {
    /// Every iteration is in bounds in every dimension: the runtime
    /// check may be elided.
    ProvenSafe,
    /// Some iteration is out of bounds: executing the access traps.
    ProvenFaulting,
    /// Range arithmetic widened to ⊤: keep the runtime check.
    Unknown,
}

impl AccessVerdict {
    /// Stable lower-case name (used by the cache codec and reports).
    pub fn name(&self) -> &'static str {
        match self {
            AccessVerdict::ProvenSafe => "proven-safe",
            AccessVerdict::ProvenFaulting => "proven-faulting",
            AccessVerdict::Unknown => "unknown",
        }
    }

    /// Inverse of [`name`](Self::name).
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "proven-safe" => Some(AccessVerdict::ProvenSafe),
            "proven-faulting" => Some(AccessVerdict::ProvenFaulting),
            "unknown" => Some(AccessVerdict::Unknown),
            _ => None,
        }
    }
}

impl fmt::Display for AccessVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The certificate of one array access.
#[derive(Debug, Clone, PartialEq)]
pub struct AccessCert {
    /// The block the access executes in.
    pub block: BlockId,
    /// The statement the access belongs to.
    pub stmt: StmtId,
    /// The access itself.
    pub reference: ArrayRef,
    /// Whether the access is the statement's store destination.
    pub is_write: bool,
    /// The classification.
    pub verdict: AccessVerdict,
    /// Human-readable justification for non-safe verdicts (empty for
    /// `ProvenSafe`).
    pub detail: String,
}

/// The per-kernel memory-safety certificate: one [`AccessCert`] per
/// array access, in program order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SafetyCert {
    /// All access certificates, in program order.
    pub accesses: Vec<AccessCert>,
}

// `AccessCert` has no Eq because `ArrayRef` coefficients are exact
// integers — derive it manually via PartialEq above.
impl Eq for AccessCert {}

impl SafetyCert {
    /// Certifies every array access of `program`.
    ///
    /// # Examples
    ///
    /// ```
    /// use slp_ir::{AccessVector, AffineExpr, ArrayRef, Expr, Item, Loop, LoopHeader,
    ///     Program, ScalarType};
    /// use slp_analyze::SafetyCert;
    ///
    /// // for i in 0..8 { A[i] = 1.0 } over A[8]: provably safe.
    /// let mut p = Program::new("t");
    /// let a = p.add_array("A", ScalarType::F64, vec![8], false);
    /// let i = p.add_loop_var("i");
    /// let r = ArrayRef::new(a, AccessVector::new(vec![AffineExpr::var(i)]));
    /// let s = p.make_stmt(r.into(), Expr::Copy(1.0.into()));
    /// p.push_item(Item::Loop(Loop {
    ///     header: LoopHeader { var: i, lower: 0, upper: 8, step: 1 },
    ///     body: vec![Item::Stmt(s)],
    /// }));
    /// let cert = SafetyCert::certify(&p);
    /// assert!(cert.all_proven_safe());
    /// ```
    pub fn certify(program: &Program) -> SafetyCert {
        let mut accesses = Vec::new();
        for info in program.blocks() {
            let env = loop_env(&info.loops);
            for s in info.block.iter() {
                for (is_write, r) in stmt_refs(s) {
                    let (verdict, detail) = match &env {
                        // A dead enclosing loop means the access never
                        // executes: nothing can fault (V504 reports the
                        // dead loop itself).
                        None => (AccessVerdict::ProvenSafe, String::new()),
                        Some(env) => classify(program, r, env),
                    };
                    accesses.push(AccessCert {
                        block: info.id,
                        stmt: s.id(),
                        reference: r.clone(),
                        is_write,
                        verdict,
                        detail,
                    });
                }
            }
        }
        SafetyCert { accesses }
    }

    /// Number of accesses proven in bounds.
    pub fn proven_safe(&self) -> usize {
        self.count(AccessVerdict::ProvenSafe)
    }

    /// Number of accesses proven to fault.
    pub fn proven_faulting(&self) -> usize {
        self.count(AccessVerdict::ProvenFaulting)
    }

    /// Number of accesses with no exact verdict.
    pub fn unknown(&self) -> usize {
        self.count(AccessVerdict::Unknown)
    }

    fn count(&self, v: AccessVerdict) -> usize {
        self.accesses.iter().filter(|a| a.verdict == v).count()
    }

    /// Whether every access of the kernel is `ProvenSafe`.
    pub fn all_proven_safe(&self) -> bool {
        self.accesses
            .iter()
            .all(|a| a.verdict == AccessVerdict::ProvenSafe)
    }

    /// Whether `r`, executing in `block`, is proven in bounds.
    ///
    /// This is the consumer-side lookup for translators that have lost
    /// statement identity (e.g. superword lanes): a reference's verdict
    /// is a pure function of `(block, reference)`, so any matching
    /// certificate answers for all occurrences.
    pub fn is_proven_safe(&self, block: BlockId, r: &ArrayRef) -> bool {
        self.accesses.iter().any(|a| {
            a.block == block && a.verdict == AccessVerdict::ProvenSafe && a.reference == *r
        })
    }
}

/// All array references of `s`: reads from the operand list (including
/// every `select` arm and condition operand — all of them execute), then
/// the store destination.
fn stmt_refs(s: &Statement) -> Vec<(bool, &ArrayRef)> {
    let mut refs: Vec<(bool, &ArrayRef)> = s
        .uses()
        .iter()
        .filter_map(|o| o.as_array())
        .map(|r| (false, r))
        .collect();
    if let Dest::Array(r) = s.dest() {
        refs.push((true, r));
    }
    refs
}

/// Classifies one reference under a live loop environment.
fn classify(
    program: &Program,
    r: &ArrayRef,
    env: &[(slp_ir::LoopVarId, StridedInterval)],
) -> (AccessVerdict, String) {
    let arr = program.array(r.array);
    if r.access.dims().len() != arr.dims.len() {
        // Rank mismatch is unconditionally rejected by both engines.
        return (
            AccessVerdict::ProvenFaulting,
            format!(
                "rank-{} access on '{}' which has rank {}",
                r.access.dims().len(),
                arr.name,
                arr.dims.len()
            ),
        );
    }
    let mut unknown: Option<String> = None;
    for (dim, e) in r.access.dims().iter().enumerate() {
        // Variables absent from the enclosing loops contribute zero at
        // runtime (`AffineExpr::eval` drops them in both engines), so
        // they are modeled as 0, keeping the evaluation exact.
        let mut si = StridedInterval::constant(e.constant());
        for (v, c) in e.terms() {
            if let Some((_, vi)) = env.iter().find(|(ev, _)| *ev == v) {
                si = si.add(&vi.scale(c));
            }
        }
        if si.is_top() {
            unknown.get_or_insert_with(|| {
                format!(
                    "dimension {dim} of '{}' overflows the range domain",
                    arr.name
                )
            });
            continue;
        }
        let extent = arr.dims[dim] as i128;
        if si.lo() < 0 || si.hi() >= extent {
            // Over a box iteration domain the interval endpoints are
            // attained: some concrete iteration faults.
            return (
                AccessVerdict::ProvenFaulting,
                format!(
                    "'{}' dimension {dim} ranges over {} but the extent is {}",
                    arr.name, si, arr.dims[dim]
                ),
            );
        }
    }
    match unknown {
        Some(detail) => (AccessVerdict::Unknown, detail),
        None => (AccessVerdict::ProvenSafe, String::new()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slp_ir::{AccessVector, AffineExpr, CmpOp, Expr, Item, Loop, LoopHeader, ScalarType};

    fn simple_loop(p: &mut Program, var: slp_ir::LoopVarId, upper: i64, body: Vec<Statement>) {
        p.push_item(Item::Loop(Loop {
            header: LoopHeader {
                var,
                lower: 0,
                upper,
                step: 1,
            },
            body: body.into_iter().map(Item::Stmt).collect(),
        }));
    }

    #[test]
    fn in_bounds_loop_certifies_safe_and_lookup_matches() {
        let mut p = Program::new("t");
        let a = p.add_array("A", ScalarType::F64, vec![16], true);
        let b = p.add_array("B", ScalarType::F64, vec![16], false);
        let i = p.add_loop_var("i");
        let ra = ArrayRef::new(a, AccessVector::new(vec![AffineExpr::var(i)]));
        let rb = ArrayRef::new(b, AccessVector::new(vec![AffineExpr::var(i)]));
        let s = p.make_stmt(rb.clone().into(), Expr::Copy(ra.clone().into()));
        simple_loop(&mut p, i, 16, vec![s]);
        let cert = SafetyCert::certify(&p);
        assert_eq!(cert.accesses.len(), 2);
        assert!(cert.all_proven_safe());
        assert_eq!(
            (cert.proven_safe(), cert.proven_faulting(), cert.unknown()),
            (2, 0, 0)
        );
        let block = cert.accesses[0].block;
        assert!(cert.is_proven_safe(block, &ra));
        assert!(cert.is_proven_safe(block, &rb));
        // A reference never certified in that block is not safe.
        let other = ArrayRef::new(a, AccessVector::new(vec![AffineExpr::var(i).offset(1)]));
        assert!(!cert.is_proven_safe(block, &other));
    }

    #[test]
    fn attained_overrun_is_proven_faulting() {
        // A[2i+1] for i in 0..8 reaches index 15 of a 15-element array.
        let mut p = Program::new("t");
        let a = p.add_array("A", ScalarType::F64, vec![15], false);
        let i = p.add_loop_var("i");
        let r = ArrayRef::new(
            a,
            AccessVector::new(vec![AffineExpr::var(i).scaled(2).offset(1)]),
        );
        let s = p.make_stmt(r.into(), Expr::Copy(1.0.into()));
        simple_loop(&mut p, i, 8, vec![s]);
        let cert = SafetyCert::certify(&p);
        assert_eq!(cert.proven_faulting(), 1);
        assert!(!cert.all_proven_safe());
        let c = &cert.accesses[0];
        assert_eq!(c.verdict, AccessVerdict::ProvenFaulting);
        assert!(c.is_write);
        assert!(c.detail.contains("extent is 15"), "{}", c.detail);
    }

    #[test]
    fn negative_index_is_proven_faulting() {
        let mut p = Program::new("t");
        let a = p.add_array("A", ScalarType::F64, vec![8], false);
        let i = p.add_loop_var("i");
        let r = ArrayRef::new(a, AccessVector::new(vec![AffineExpr::var(i).offset(-1)]));
        let s = p.make_stmt(r.into(), Expr::Copy(1.0.into()));
        simple_loop(&mut p, i, 8, vec![s]);
        assert_eq!(SafetyCert::certify(&p).proven_faulting(), 1);
    }

    #[test]
    fn dead_loop_accesses_are_safe() {
        // for i in 8..8 { A[99] = 1.0 }: never executes, nothing faults.
        let mut p = Program::new("t");
        let a = p.add_array("A", ScalarType::F64, vec![8], false);
        let i = p.add_loop_var("i");
        let r = ArrayRef::new(a, AccessVector::new(vec![AffineExpr::constant_expr(99)]));
        let s = p.make_stmt(r.into(), Expr::Copy(1.0.into()));
        p.push_item(Item::Loop(Loop {
            header: LoopHeader {
                var: i,
                lower: 8,
                upper: 8,
                step: 1,
            },
            body: vec![Item::Stmt(s)],
        }));
        let cert = SafetyCert::certify(&p);
        assert!(cert.all_proven_safe());
    }

    #[test]
    fn select_arms_use_the_union_range() {
        // y = select(x < 0, A[i+8], A[i]): the untaken-looking arm still
        // evaluates in both engines, so its out-of-range access faults.
        let mut p = Program::new("t");
        let a = p.add_array("A", ScalarType::F64, vec![8], true);
        let x = p.add_scalar("x", ScalarType::F64);
        let y = p.add_scalar("y", ScalarType::F64);
        let i = p.add_loop_var("i");
        let far = ArrayRef::new(a, AccessVector::new(vec![AffineExpr::var(i).offset(8)]));
        let near = ArrayRef::new(a, AccessVector::new(vec![AffineExpr::var(i)]));
        let s = p.make_stmt(
            y.into(),
            Expr::Select(CmpOp::Lt, x.into(), 0.0.into(), far.into(), near.into()),
        );
        simple_loop(&mut p, i, 8, vec![s]);
        let cert = SafetyCert::certify(&p);
        assert_eq!(
            cert.proven_faulting(),
            1,
            "arm-union range catches the far arm"
        );
        assert_eq!(cert.proven_safe(), 1);
    }

    #[test]
    fn rank_mismatch_is_proven_faulting() {
        let mut p = Program::new("t");
        let a = p.add_array("A", ScalarType::F64, vec![4, 4], false);
        let i = p.add_loop_var("i");
        let r = ArrayRef::new(a, AccessVector::new(vec![AffineExpr::var(i)]));
        let s = p.make_stmt(r.into(), Expr::Copy(1.0.into()));
        simple_loop(&mut p, i, 4, vec![s]);
        let cert = SafetyCert::certify(&p);
        assert_eq!(cert.proven_faulting(), 1);
        assert!(
            cert.accesses[0].detail.contains("rank"),
            "{}",
            cert.accesses[0].detail
        );
    }

    #[test]
    fn overflowing_range_arithmetic_is_unknown() {
        // Three nested near-i64::MAX loops with i64::MIN coefficients push
        // the abstract sum past i128: no exact verdict either way.
        let mut p = Program::new("t");
        let a = p.add_array("A", ScalarType::F64, vec![8], false);
        let i = p.add_loop_var("i");
        let j = p.add_loop_var("j");
        let k = p.add_loop_var("k");
        let e = AffineExpr::var(i)
            .scaled(i64::MIN)
            .add(&AffineExpr::var(j).scaled(i64::MIN))
            .add(&AffineExpr::var(k).scaled(i64::MIN));
        let r = ArrayRef::new(a, AccessVector::new(vec![e]));
        let s = p.make_stmt(r.into(), Expr::Copy(1.0.into()));
        let mut body = vec![Item::Stmt(s)];
        for var in [k, j, i] {
            body = vec![Item::Loop(Loop {
                header: LoopHeader {
                    var,
                    lower: 0,
                    upper: i64::MAX,
                    step: 1,
                },
                body,
            })];
        }
        p.push_item(body.pop().unwrap());
        let cert = SafetyCert::certify(&p);
        assert_eq!(cert.unknown(), 1, "{:?}", cert.accesses);
        assert!(!cert.all_proven_safe());
        assert!(
            cert.accesses[0].detail.contains("overflows"),
            "{}",
            cert.accesses[0].detail
        );
    }
}
