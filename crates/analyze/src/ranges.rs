//! Forward value-range analysis.
//!
//! Two range analyses live here:
//!
//! * **Induction variables** get *exact* [`StridedInterval`]s straight
//!   from their loop headers ([`loop_env`]); [`eval_affine`] then folds a
//!   whole affine subscript through the domain. No widening is needed —
//!   counted loops give the fixpoint in closed form.
//! * **Scalars** get floating-point intervals ([`ScalarRanges`]): a
//!   forward fixpoint over the program with classic interval widening at
//!   loop headers (an endpoint that keeps growing is pushed to ±∞). The
//!   VM seeds scalars and input arrays with arbitrary finite values, so
//!   the initial state is ⊤, and every transfer function rounds outward
//!   by one ULP so the abstract bounds stay sound under f64 rounding.
//!   NaN-producing operations (0/0, √negative, ∞−∞) widen to ⊤, which is
//!   read as "any value, possibly NaN".

use std::collections::HashMap;

use slp_ir::{
    AffineExpr, BinOp, CmpOp, Expr, Item, LoopHeader, LoopVarId, Operand, Program, UnOp, VarId,
};

use crate::domain::StridedInterval;

/// The exact value sets of the induction variables of `loops`.
///
/// Returns `None` when any enclosing loop provably never runs: the
/// governed code is dead and no value constraint is meaningful (callers
/// stay conservative, matching `slp_ir::numeric::interval_in`).
pub fn loop_env(loops: &[LoopHeader]) -> Option<Vec<(LoopVarId, StridedInterval)>> {
    let mut env = Vec::with_capacity(loops.len());
    for h in loops {
        let trips = h.trip_count() as i128;
        if trips <= 0 {
            return None;
        }
        let first = h.lower as i128;
        let Some(last) = (trips - 1)
            .checked_mul(h.step as i128)
            .and_then(|span| first.checked_add(span))
        else {
            env.push((h.var, StridedInterval::top()));
            continue;
        };
        let si = StridedInterval::range(
            i64::try_from(first).unwrap_or(i64::MIN),
            i64::try_from(last).unwrap_or(i64::MAX),
            h.step,
        );
        env.push((h.var, si));
    }
    Some(env)
}

/// Evaluates an affine expression over a variable environment.
///
/// Exact for the interval hull (each variable independently attains its
/// extremes over a box domain, so both endpoints of the result are
/// attained by concrete iterations); the stride is the provable
/// congruence. Returns `None` if some variable of `e` is absent from
/// `env`.
pub fn eval_affine(
    e: &AffineExpr,
    env: &[(LoopVarId, StridedInterval)],
) -> Option<StridedInterval> {
    let mut acc = StridedInterval::constant(e.constant());
    for (v, c) in e.terms() {
        let (_, si) = env.iter().find(|(ev, _)| *ev == v)?;
        acc = acc.add(&si.scale(c));
    }
    Some(acc)
}

/// A closed floating-point interval `[lo, hi]`; ⊤ is `[−∞, +∞]` and is
/// also the sound abstraction of a possibly-NaN value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FloatInterval {
    /// Lower bound (may be `−∞`, never NaN).
    pub lo: f64,
    /// Upper bound (may be `+∞`, never NaN).
    pub hi: f64,
}

/// The next f64 above `x` (identity on `+∞`).
fn next_up(x: f64) -> f64 {
    if x.is_nan() || x == f64::INFINITY {
        return x;
    }
    if x == 0.0 {
        return f64::from_bits(1);
    }
    let bits = x.to_bits();
    f64::from_bits(if x > 0.0 { bits + 1 } else { bits - 1 })
}

/// The next f64 below `x` (identity on `−∞`).
fn next_down(x: f64) -> f64 {
    -next_up(-x)
}

impl FloatInterval {
    /// The singleton `[c, c]` (⊤ if `c` is NaN).
    pub fn constant(c: f64) -> Self {
        if c.is_nan() {
            return Self::top();
        }
        FloatInterval { lo: c, hi: c }
    }

    /// The unconstrained interval.
    pub fn top() -> Self {
        FloatInterval {
            lo: f64::NEG_INFINITY,
            hi: f64::INFINITY,
        }
    }

    /// Whether this interval constrains nothing.
    pub fn is_top(&self) -> bool {
        self.lo == f64::NEG_INFINITY && self.hi == f64::INFINITY
    }

    /// Whether both bounds are finite.
    pub fn is_bounded(&self) -> bool {
        self.lo.is_finite() && self.hi.is_finite()
    }

    /// Whether `v` lies within the interval (NaN is a member of ⊤ only).
    pub fn contains(&self, v: f64) -> bool {
        if v.is_nan() {
            return self.is_top();
        }
        self.lo <= v && v <= self.hi
    }

    /// Builds the outward-rounded hull of finite candidate values; any
    /// non-finite candidate (overflow, NaN) widens to ⊤.
    fn hull(candidates: &[f64]) -> Self {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &c in candidates {
            if c.is_nan() {
                // ∞ − ∞, 0 · ∞, ∞ / ∞: the concrete result can be NaN.
                return Self::top();
            }
            lo = lo.min(c);
            hi = hi.max(c);
        }
        // Infinite endpoints are already maximal — corner arithmetic with
        // a half-bounded operand (a widened accumulator, say) keeps its
        // finite side tight instead of collapsing the whole interval.
        FloatInterval {
            lo: if lo.is_finite() { next_down(lo) } else { lo },
            hi: if hi.is_finite() { next_up(hi) } else { hi },
        }
    }

    /// Least upper bound.
    pub fn join(&self, other: &FloatInterval) -> FloatInterval {
        FloatInterval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Classic interval widening: an endpoint `other` pushes past is sent
    /// straight to its infinity, so loop fixpoints terminate.
    pub fn widen(&self, other: &FloatInterval) -> FloatInterval {
        FloatInterval {
            lo: if other.lo < self.lo {
                f64::NEG_INFINITY
            } else {
                self.lo
            },
            hi: if other.hi > self.hi {
                f64::INFINITY
            } else {
                self.hi
            },
        }
    }

    /// Abstract binary operation.
    pub fn apply_bin(op: BinOp, a: &FloatInterval, b: &FloatInterval) -> FloatInterval {
        match op {
            BinOp::Min => {
                if a.lo.is_infinite() && b.lo.is_infinite() {
                    return Self::top();
                }
                FloatInterval {
                    lo: a.lo.min(b.lo),
                    hi: a.hi.min(b.hi),
                }
            }
            BinOp::Max => {
                if a.hi.is_infinite() && b.hi.is_infinite() {
                    return Self::top();
                }
                FloatInterval {
                    lo: a.lo.max(b.lo),
                    hi: a.hi.max(b.hi),
                }
            }
            BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => {
                if op == BinOp::Div && b.contains(0.0) {
                    return Self::top();
                }
                let f = |x: f64, y: f64| op.apply(x, y);
                Self::hull(&[f(a.lo, b.lo), f(a.lo, b.hi), f(a.hi, b.lo), f(a.hi, b.hi)])
            }
        }
    }

    /// Decides a comparison over intervals: `Some(v)` when every pair
    /// drawn from `a × b` compares to `v`, `None` when the branch can go
    /// either way. ⊤ operands (possibly NaN) are never decidable — NaN
    /// fails every ordered comparison, so even disjoint bounds prove
    /// nothing.
    pub fn decide_cmp(op: CmpOp, a: &FloatInterval, b: &FloatInterval) -> Option<bool> {
        if a.is_top() || b.is_top() {
            return None;
        }
        match op {
            CmpOp::Lt => {
                if a.hi < b.lo {
                    Some(true)
                } else if a.lo >= b.hi {
                    Some(false)
                } else {
                    None
                }
            }
            CmpOp::Le => {
                if a.hi <= b.lo {
                    Some(true)
                } else if a.lo > b.hi {
                    Some(false)
                } else {
                    None
                }
            }
            CmpOp::Gt => Self::decide_cmp(CmpOp::Lt, b, a),
            CmpOp::Ge => Self::decide_cmp(CmpOp::Le, b, a),
            CmpOp::Eq => {
                if a.lo == a.hi && b.lo == b.hi && a.lo == b.lo {
                    Some(true)
                } else if a.hi < b.lo || b.hi < a.lo {
                    Some(false)
                } else {
                    None
                }
            }
            CmpOp::Ne => Self::decide_cmp(CmpOp::Eq, a, b).map(|v| !v),
        }
    }

    /// Abstract select `cond(a, b) ? t : f`. A decidable condition takes
    /// one arm exactly; otherwise the result joins both arms — the
    /// branch-condition refinement of the taken arm happens per operand
    /// in [`refine_by_cmp`](Self::refine_by_cmp).
    pub fn apply_select(
        op: CmpOp,
        a: &FloatInterval,
        b: &FloatInterval,
        t: &FloatInterval,
        f: &FloatInterval,
    ) -> FloatInterval {
        match Self::decide_cmp(op, a, b) {
            Some(true) => *t,
            Some(false) => *f,
            None => t.join(f),
        }
    }

    /// Narrows `self` under the assumption that `self op other` holds —
    /// the strided-interval refinement a taken branch grants its
    /// condition operands. Sound with NaN: a NaN left side satisfies no
    /// ordered comparison, so inside a taken `<`/`<=`/`>`/`>=`/`==`
    /// branch the operand is known non-NaN and clamping to the finite
    /// bound is exact. `!=` proves nothing representable.
    pub fn refine_by_cmp(&self, op: CmpOp, other: &FloatInterval) -> FloatInterval {
        match op {
            CmpOp::Lt | CmpOp::Le => FloatInterval {
                lo: self.lo,
                hi: self.hi.min(other.hi),
            },
            CmpOp::Gt | CmpOp::Ge => FloatInterval {
                lo: self.lo.max(other.lo),
                hi: self.hi,
            },
            CmpOp::Eq => FloatInterval {
                lo: self.lo.max(other.lo),
                hi: self.hi.min(other.hi),
            },
            CmpOp::Ne => *self,
        }
    }

    /// Abstract unary operation.
    pub fn apply_un(op: UnOp, a: &FloatInterval) -> FloatInterval {
        match op {
            UnOp::Neg => FloatInterval {
                lo: -a.hi,
                hi: -a.lo,
            },
            UnOp::Abs => {
                if a.lo >= 0.0 {
                    *a
                } else if a.hi <= 0.0 {
                    Self::apply_un(UnOp::Neg, a)
                } else {
                    FloatInterval {
                        lo: 0.0,
                        hi: (-a.lo).max(a.hi),
                    }
                }
            }
            UnOp::Sqrt => {
                if a.lo < 0.0 {
                    return Self::top(); // NaN possible
                }
                if !a.is_bounded() {
                    return FloatInterval {
                        lo: next_down(a.lo.sqrt()).max(0.0),
                        hi: f64::INFINITY,
                    };
                }
                Self::hull(&[a.lo.sqrt(), a.hi.sqrt()])
            }
        }
    }
}

impl std::fmt::Display for FloatInterval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_top() {
            write!(f, "⊤")
        } else {
            write!(f, "[{}, {}]", self.lo, self.hi)
        }
    }
}

/// The provable value range of every scalar at the end of the program.
///
/// # Examples
///
/// ```
/// use slp_ir::{Expr, Program, ScalarType, BinOp};
/// use slp_analyze::ScalarRanges;
///
/// let mut p = Program::new("t");
/// let x = p.add_scalar("x", ScalarType::F64);
/// let y = p.add_scalar("y", ScalarType::F64);
/// p.push_stmt(x.into(), Expr::Copy(2.0.into()));
/// p.push_stmt(y.into(), Expr::Binary(BinOp::Mul, x.into(), 3.0.into()));
/// let ranges = ScalarRanges::analyze(&p);
/// assert!(ranges.range(y).contains(6.0));
/// assert!(!ranges.range(y).contains(7.0));
/// ```
#[derive(Debug, Clone)]
pub struct ScalarRanges {
    ranges: Vec<FloatInterval>,
}

impl ScalarRanges {
    /// Runs the forward fixpoint over `program`.
    pub fn analyze(program: &Program) -> Self {
        // Scalars hold runtime-seeded input values before their first
        // write: start at ⊤, not at zero.
        let mut state = vec![FloatInterval::top(); program.scalars().len()];
        exec_items(program.items(), &mut state);
        ScalarRanges { ranges: state }
    }

    /// The provable range of `v` after the program runs.
    pub fn range(&self, v: VarId) -> FloatInterval {
        self.ranges[v.index()]
    }

    /// Ranges of all scalars, indexed by `VarId`.
    pub fn all(&self) -> &[FloatInterval] {
        &self.ranges
    }
}

fn eval_operand(op: &Operand, state: &[FloatInterval]) -> FloatInterval {
    match op {
        Operand::Const(c) => FloatInterval::constant(*c),
        Operand::Scalar(v) => state[v.index()],
        // Array elements are runtime inputs (or written from unknown
        // positions): unconstrained.
        Operand::Array(_) => FloatInterval::top(),
    }
}

fn transfer(s: &slp_ir::Statement, state: &mut [FloatInterval]) {
    let value = match s.expr() {
        Expr::Copy(a) => eval_operand(a, state),
        Expr::Unary(op, a) => FloatInterval::apply_un(*op, &eval_operand(a, state)),
        Expr::Binary(op, a, b) => {
            FloatInterval::apply_bin(*op, &eval_operand(a, state), &eval_operand(b, state))
        }
        Expr::MulAdd(a, b, c) => FloatInterval::apply_bin(
            BinOp::Add,
            &eval_operand(a, state),
            &FloatInterval::apply_bin(BinOp::Mul, &eval_operand(b, state), &eval_operand(c, state)),
        ),
        Expr::Select(op, a, b, t, f) => {
            let ia = eval_operand(a, state);
            let ib = eval_operand(b, state);
            match FloatInterval::decide_cmp(*op, &ia, &ib) {
                Some(true) => eval_operand(t, state),
                Some(false) => eval_operand(f, state),
                None => {
                    // Taken-branch refinement: when an arm *is* one of
                    // the condition operands, the comparison known to
                    // hold on that arm narrows its interval (e.g.
                    // `select(x < 0, -x, x)` is provably >= 0 minus a
                    // rounding ulp). Non-top operands are provably
                    // non-NaN, so negating the condition for the false
                    // arm is sound there.
                    let mut it = eval_operand(t, state);
                    if t == a {
                        it = it.refine_by_cmp(*op, &ib);
                    } else if t == b {
                        it = it.refine_by_cmp(op.swap(), &ia);
                    }
                    let mut ie = eval_operand(f, state);
                    if !ia.is_top() && !ib.is_top() {
                        if let Some(neg) = negate_ordered(*op) {
                            if f == a {
                                ie = ie.refine_by_cmp(neg, &ib);
                            } else if f == b {
                                ie = ie.refine_by_cmp(neg.swap(), &ia);
                            }
                        }
                    }
                    it.join(&ie)
                }
            }
        }
    };
    if let slp_ir::Dest::Scalar(v) = s.dest() {
        state[v.index()] = value;
    }
}

/// The comparison that holds when `op` does not, valid only for inputs
/// known non-NaN (`Eq`'s negation `Ne` carries no interval information,
/// so it reports `None`).
fn negate_ordered(op: CmpOp) -> Option<CmpOp> {
    match op {
        CmpOp::Lt => Some(CmpOp::Ge),
        CmpOp::Le => Some(CmpOp::Gt),
        CmpOp::Gt => Some(CmpOp::Le),
        CmpOp::Ge => Some(CmpOp::Lt),
        CmpOp::Eq | CmpOp::Ne => None,
    }
}

fn exec_items(items: &[Item], state: &mut Vec<FloatInterval>) {
    for item in items {
        match item {
            Item::Stmt(s) => transfer(s, state),
            Item::Loop(l) => {
                if l.header.trip_count() == 0 {
                    continue; // body never runs
                }
                // Fixpoint with widening: two plain joins let constant
                // bounds settle, then growing endpoints go to ±∞. Each
                // scalar widens at most twice, so this terminates.
                let mut round = 0usize;
                loop {
                    let mut next = state.clone();
                    exec_items(&l.body, &mut next);
                    let combined: Vec<FloatInterval> = state
                        .iter()
                        .zip(&next)
                        .map(|(cur, nxt)| {
                            let j = cur.join(nxt);
                            if round >= 2 {
                                cur.widen(&j)
                            } else {
                                j
                            }
                        })
                        .collect();
                    if combined == *state {
                        break;
                    }
                    *state = combined;
                    round += 1;
                }
            }
        }
    }
}

/// Renders the per-scalar ranges with source names (for `slpc analyze`).
pub fn render_scalar_ranges(program: &Program, ranges: &ScalarRanges) -> Vec<(String, String)> {
    let mut seen = HashMap::new();
    let mut out = Vec::new();
    for v in program.scalar_ids() {
        let name = program.scalar(v).name.clone();
        if seen.insert(name.clone(), ()).is_none() {
            out.push((name, ranges.range(v).to_string()));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use slp_ir::{AccessVector, ArrayRef, Loop, ScalarType};

    fn header(var: LoopVarId, lower: i64, upper: i64, step: i64) -> LoopHeader {
        LoopHeader {
            var,
            lower,
            upper,
            step,
        }
    }

    #[test]
    fn loop_env_matches_actual_iteration_values() {
        let i = LoopVarId::new(0);
        let env = loop_env(&[header(i, 0, 7, 2)]).expect("live loop");
        let si = env[0].1;
        // i visits 0, 2, 4, 6.
        assert_eq!((si.lo(), si.hi(), si.stride()), (0, 6, 2));
        assert!(loop_env(&[header(i, 5, 5, 1)]).is_none(), "zero trips");
    }

    #[test]
    fn eval_affine_keeps_stride_information() {
        let i = LoopVarId::new(0);
        let env = loop_env(&[header(i, 0, 16, 2)]).unwrap();
        // 2i − 3 over even i: stride 4, never zero.
        let e = AffineExpr::var(i).scaled(2).offset(-3);
        let si = eval_affine(&e, &env).unwrap();
        assert_eq!((si.lo(), si.hi(), si.stride()), (-3, 25, 4));
        assert!(!si.contains(0));
        // Unknown variable: no verdict.
        assert!(eval_affine(&AffineExpr::var(LoopVarId::new(9)), &env).is_none());
    }

    #[test]
    fn float_interval_arithmetic_is_outward_rounded() {
        let a = FloatInterval::constant(0.1);
        let b = FloatInterval::constant(0.2);
        let sum = FloatInterval::apply_bin(BinOp::Add, &a, &b);
        assert!(sum.contains(0.1 + 0.2));
        assert!(sum.contains(0.3), "true sum inside outward bounds");
        let div = FloatInterval::apply_bin(BinOp::Div, &a, &FloatInterval::constant(0.0));
        assert!(div.is_top(), "division by zero widens");
    }

    #[test]
    fn sqrt_of_possibly_negative_is_top() {
        let m = FloatInterval { lo: -1.0, hi: 4.0 };
        assert!(FloatInterval::apply_un(UnOp::Sqrt, &m).is_top());
        let p = FloatInterval { lo: 4.0, hi: 9.0 };
        let r = FloatInterval::apply_un(UnOp::Sqrt, &p);
        assert!(r.contains(2.0) && r.contains(3.0) && !r.contains(3.5));
    }

    #[test]
    fn straight_line_ranges_are_tight() {
        let mut p = Program::new("t");
        let x = p.add_scalar("x", ScalarType::F64);
        let y = p.add_scalar("y", ScalarType::F64);
        p.push_stmt(x.into(), Expr::Copy(2.0.into()));
        p.push_stmt(
            y.into(),
            Expr::Binary(BinOp::Add, x.into(), Operand::Const(1.5)),
        );
        let r = ScalarRanges::analyze(&p);
        assert!(r.range(y).contains(3.5));
        assert!(!r.range(y).contains(3.6));
    }

    #[test]
    fn uninitialized_scalars_are_unconstrained() {
        let mut p = Program::new("t");
        let a = p.add_scalar("a", ScalarType::F64);
        let y = p.add_scalar("y", ScalarType::F64);
        p.push_stmt(y.into(), Expr::Binary(BinOp::Mul, a.into(), 2.0.into()));
        let r = ScalarRanges::analyze(&p);
        assert!(r.range(a).is_top(), "runtime-seeded input");
        assert!(r.range(y).is_top());
    }

    #[test]
    fn decidable_select_takes_one_arm_exactly() {
        let mut p = Program::new("t");
        let y = p.add_scalar("y", ScalarType::F64);
        p.push_stmt(
            y.into(),
            Expr::Select(CmpOp::Lt, 1.0.into(), 2.0.into(), 5.0.into(), 9.0.into()),
        );
        let r = ScalarRanges::analyze(&p);
        assert!(r.range(y).contains(5.0));
        assert!(!r.range(y).contains(9.0));
    }

    #[test]
    fn taken_branch_narrows_condition_operand() {
        // x = abs(s) is in [0, +inf); y = select(x < 2, x, 2) clamps the
        // taken arm by the branch condition: y is provably in [0, 2].
        let mut p = Program::new("t");
        let s = p.add_scalar("s", ScalarType::F64);
        let x = p.add_scalar("x", ScalarType::F64);
        let y = p.add_scalar("y", ScalarType::F64);
        p.push_stmt(x.into(), Expr::Unary(UnOp::Abs, s.into()));
        p.push_stmt(
            y.into(),
            Expr::Select(CmpOp::Lt, x.into(), 2.0.into(), x.into(), 2.0.into()),
        );
        let r = ScalarRanges::analyze(&p);
        let ry = r.range(y);
        assert!(ry.is_bounded(), "clamp bounds the range: {ry}");
        assert_eq!(ry.lo, 0.0);
        assert_eq!(ry.hi, 2.0);
    }

    #[test]
    fn undecidable_select_with_top_operands_joins_arms() {
        let mut p = Program::new("t");
        let s = p.add_scalar("s", ScalarType::F64);
        let y = p.add_scalar("y", ScalarType::F64);
        p.push_stmt(
            y.into(),
            Expr::Select(CmpOp::Gt, s.into(), 0.0.into(), 3.0.into(), 7.0.into()),
        );
        let r = ScalarRanges::analyze(&p);
        assert!(r.range(y).contains(3.0) && r.range(y).contains(7.0));
        assert!(!r.range(y).contains(8.0));
    }

    #[test]
    fn decide_cmp_is_nan_aware() {
        let a = FloatInterval { lo: 0.0, hi: 1.0 };
        let b = FloatInterval { lo: 2.0, hi: 3.0 };
        assert_eq!(FloatInterval::decide_cmp(CmpOp::Lt, &a, &b), Some(true));
        assert_eq!(FloatInterval::decide_cmp(CmpOp::Gt, &a, &b), Some(false));
        assert_eq!(FloatInterval::decide_cmp(CmpOp::Ne, &a, &b), Some(true));
        // ⊤ may be NaN: nothing is decidable, not even with disjoint
        // finite bounds on the other side.
        let top = FloatInterval::top();
        for op in CmpOp::all() {
            assert_eq!(FloatInterval::decide_cmp(op, &top, &b), None, "{op:?}");
        }
        let c2 = FloatInterval::constant(2.0);
        assert_eq!(FloatInterval::decide_cmp(CmpOp::Eq, &c2, &c2), Some(true));
        assert_eq!(FloatInterval::decide_cmp(CmpOp::Le, &b, &b), None);
    }

    #[test]
    fn accumulator_widens_instead_of_diverging() {
        // s = 0; for i in 0..1000 { s = s + 1.0 }: widening must reach a
        // fixpoint quickly and keep the sound [0, +inf) bound.
        let mut p = Program::new("t");
        let s = p.add_scalar("s", ScalarType::F64);
        let i = p.add_loop_var("i");
        p.push_stmt(s.into(), Expr::Copy(0.0.into()));
        let body = p.make_stmt(s.into(), Expr::Binary(BinOp::Add, s.into(), 1.0.into()));
        p.push_item(Item::Loop(Loop {
            header: header(i, 0, 1000, 1),
            body: vec![Item::Stmt(body)],
        }));
        let r = ScalarRanges::analyze(&p);
        let si = r.range(s);
        assert_eq!(si.lo, 0.0, "lower bound survives widening");
        assert_eq!(si.hi, f64::INFINITY, "upper bound widened");
    }

    #[test]
    fn loop_invariant_ranges_survive_the_loop() {
        // x = 3; for i { A[i] = x }: x stays [3, 3].
        let mut p = Program::new("t");
        let x = p.add_scalar("x", ScalarType::F64);
        let a = p.add_array("A", ScalarType::F64, vec![8], false);
        let i = p.add_loop_var("i");
        p.push_stmt(x.into(), Expr::Copy(3.0.into()));
        let body = p.make_stmt(
            ArrayRef::new(a, AccessVector::new(vec![AffineExpr::var(i)])).into(),
            Expr::Copy(x.into()),
        );
        p.push_item(Item::Loop(Loop {
            header: header(i, 0, 8, 1),
            body: vec![Item::Stmt(body)],
        }));
        let r = ScalarRanges::analyze(&p);
        assert_eq!(r.range(x), FloatInterval::constant(3.0));
    }
}
