//! # slp-analyze — abstract interpretation for the SLP pipeline
//!
//! A small dataflow / abstract-interpretation framework over `slp-ir`.
//! The paper's grouping and scheduling stages (§3–§4) consume dependence
//! information, and every *false* dependence removes candidate packs and
//! superword-reuse opportunities — the precision axis goSLP (Mendis &
//! Amarasinghe, 2018) attacks with global optimization. This crate
//! supplies the predictive side of that argument:
//!
//! * [`StridedInterval`] — the abstract domain: intervals refined with a
//!   stride congruence, exact under the affine operations subscripts are
//!   built from ([`domain`]);
//! * [`loop_env`] / [`eval_affine`] — exact value sets for induction
//!   variables and abstract evaluation of affine subscripts, plus
//!   [`ScalarRanges`], a widening fixpoint of f64 intervals for scalars
//!   ([`ranges`]);
//! * [`DefUse`] — def-use chains and program-order liveness facts
//!   ([`defuse`]);
//! * [`RangeOracle`] — a [`slp_ir::DepOracle`] that disproves
//!   dependences the constant/GCD baseline cannot, with a telemetry
//!   counter of refinements ([`oracle`]);
//! * [`lint_program`] — whole-program safety lints: use-before-def,
//!   dead stores (same-iteration and whole-program), provably
//!   out-of-bounds subscripts, and misalignment risks for pack
//!   candidates ([`lint`]); `slp-verify` surfaces these as diagnostics
//!   V500–V504 and V507;
//! * [`SafetyCert`] — per-access memory-safety certificates: every
//!   array access classified `ProvenSafe` / `ProvenFaulting` /
//!   `Unknown` against its declared extents ([`safety`]); `slp-verify`
//!   reports these as V505/V506, and the bytecode engine elides bounds
//!   checks for certified accesses.
//!
//! # Examples
//!
//! Refute a dependence the GCD and plain-interval tests both keep:
//!
//! ```
//! use slp_ir::{AccessVector, AffineExpr, ArrayId, ArrayRef, BasicBlock, BlockDeps,
//!     Expr, LoopHeader, LoopVarId, StmtId, Statement, VarId};
//! use slp_analyze::RangeOracle;
//!
//! // for i in 0..16 step 2 { A[2i] = 1.0; x = A[i+3]; }  — i is even, so
//! // the read A[i+3] (odd index) never touches the written A[2i] (even).
//! let i = LoopVarId::new(0);
//! let w = ArrayRef::new(ArrayId::new(0),
//!     AccessVector::new(vec![AffineExpr::var(i).scaled(2)]));
//! let r = ArrayRef::new(ArrayId::new(0),
//!     AccessVector::new(vec![AffineExpr::var(i).offset(3)]));
//! let block: BasicBlock = [
//!     Statement::new(StmtId::new(0), w.into(), Expr::Copy(1.0.into())),
//!     Statement::new(StmtId::new(1), VarId::new(0).into(), Expr::Copy(r.into())),
//! ].into_iter().collect();
//! let loops = [LoopHeader { var: i, lower: 0, upper: 16, step: 2 }];
//!
//! let baseline = BlockDeps::analyze_in(&block, &loops);
//! assert_eq!(baseline.direct().len(), 1, "GCD+interval keep a false RAW");
//!
//! let oracle = RangeOracle::new();
//! let refined = BlockDeps::analyze_with(&block, &loops, &oracle);
//! assert!(refined.direct().is_empty(), "stride parity refutes it");
//! assert_eq!(oracle.refuted_beyond_gcd(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod defuse;
pub mod domain;
pub mod lint;
pub mod oracle;
pub mod ranges;
pub mod safety;

pub use defuse::{ArrayAccess, DefUse};
pub use domain::StridedInterval;
pub use lint::{lint_program, Finding, FindingKind};
pub use oracle::RangeOracle;
pub use ranges::{eval_affine, loop_env, render_scalar_ranges, FloatInterval, ScalarRanges};
pub use safety::{AccessCert, AccessVerdict, SafetyCert};
