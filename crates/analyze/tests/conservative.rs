//! Conservativeness of the range-refined dependence oracle.
//!
//! Soundness contract ([`slp_ir::DepOracle`]): when [`RangeOracle`]
//! declares two array references non-overlapping, no concrete iteration
//! vector may make their subscripts coincide *within that iteration* —
//! the same-iteration aliasing question block-level SLP legality asks
//! (loop-carried ordering is preserved by the loop structure itself).
//! The property tests below re-check that claim against brute-force
//! enumeration of the full iteration space of random small-bound loop
//! nests — exactly the ground truth the abstract strided-interval
//! reasoning approximates.

use proptest::prelude::*;

use slp_analyze::RangeOracle;
use slp_ir::{
    AccessVector, AffineExpr, ArrayId, ArrayRef, DepOracle, LoopHeader, LoopVarId, Operand,
};

/// Builds one affine subscript `c0*i0 + c1*i1 + k` from a raw triple.
fn affine(coeffs: &[i64], k: i64, nvars: usize) -> AffineExpr {
    let mut e = AffineExpr::constant_expr(k);
    for (idx, &c) in coeffs.iter().take(nvars).enumerate() {
        e = e.add(&AffineExpr::var(LoopVarId::new(idx as u32)).scaled(c));
    }
    e
}

/// Every concrete environment of a loop nest: the cross product of each
/// header's value sequence `lower, lower+step, …  (< upper)`.
fn all_envs(loops: &[LoopHeader]) -> Vec<Vec<(LoopVarId, i64)>> {
    let mut envs: Vec<Vec<(LoopVarId, i64)>> = vec![Vec::new()];
    for h in loops {
        let mut vals = Vec::new();
        let mut v = h.lower;
        while v < h.upper {
            vals.push(v);
            v += h.step;
        }
        envs = envs
            .into_iter()
            .flat_map(|env| {
                vals.iter().map(move |&v| {
                    let mut e = env.clone();
                    e.push((h.var, v));
                    e
                })
            })
            .collect();
    }
    envs
}

/// Asserts the oracle's verdict for `(x, y)` is conservative under
/// brute-force enumeration, and returns whether it refuted the pair.
fn check_pair(x: &ArrayRef, y: &ArrayRef, loops: &[LoopHeader]) -> bool {
    let oracle = RangeOracle::new();
    let overlap = oracle.operands_overlap(
        &Operand::Array(x.clone()),
        &Operand::Array(y.clone()),
        loops,
    );
    if overlap {
        return false;
    }
    // Refuted: no single iteration may evaluate both references to the
    // same subscript vector.
    for env in &all_envs(loops) {
        assert_ne!(
            x.access.eval(env),
            y.access.eval(env),
            "oracle refuted {x:?} vs {y:?} under {loops:?}, \
             but env {env:?} makes them collide"
        );
    }
    true
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(500))]

    /// Random affine reference pairs over random 1–2 deep loop nests:
    /// any refutation must survive exhaustive concrete enumeration.
    #[test]
    fn refuted_pairs_never_collide_concretely(
        headers in proptest::collection::vec((-3i64..=3, 1i64..=6, 1i64..=3), 1..3),
        rank in 1usize..=2,
        ca in proptest::collection::vec(-3i64..=3, 6..7),
        cb in proptest::collection::vec(-3i64..=3, 6..7),
        ka in -8i64..=8,
        kb in -8i64..=8,
    ) {
        let loops: Vec<LoopHeader> = headers
            .iter()
            .enumerate()
            .map(|(idx, &(lower, trips, step))| LoopHeader {
                var: LoopVarId::new(idx as u32),
                lower,
                upper: lower + (trips - 1) * step + 1,
                step,
            })
            .collect();
        let nvars = loops.len();
        let build = |c: &[i64], k: i64| {
            let dims: Vec<AffineExpr> = (0..rank)
                .map(|d| affine(&c[d * 3..d * 3 + 2], k + c[d * 3 + 2], nvars))
                .collect();
            ArrayRef::new(ArrayId::new(0), AccessVector::new(dims))
        };
        check_pair(&build(&ca, ka), &build(&cb, kb), &loops);
    }

    /// Stride-heavy pairs (both subscripts scaled) exercise the lattice
    /// part of the domain where the plain-interval hull is weakest.
    #[test]
    fn strided_refutations_are_sound(
        lower in -2i64..=2,
        trips in 1i64..=8,
        step in 1i64..=4,
        sa in 1i64..=4,
        sb in 1i64..=4,
        ka in -12i64..=12,
        kb in -12i64..=12,
    ) {
        let i = LoopVarId::new(0);
        let loops = [LoopHeader {
            var: i,
            lower,
            upper: lower + (trips - 1) * step + 1,
            step,
        }];
        let a = ArrayRef::new(
            ArrayId::new(0),
            AccessVector::new(vec![AffineExpr::var(i).scaled(sa).offset(ka)]),
        );
        let b = ArrayRef::new(
            ArrayId::new(0),
            AccessVector::new(vec![AffineExpr::var(i).scaled(sb).offset(kb)]),
        );
        check_pair(&a, &b, &loops);
    }
}

/// The generators above must actually reach the refinement layers —
/// otherwise the property passes vacuously. This deterministic smoke
/// case pins one refutation of each interesting kind.
#[test]
fn refinement_layers_are_exercised() {
    let i = LoopVarId::new(0);
    // Parity: for i in 0..16 step 2, A[2i] vs A[i+3].
    let loops = [LoopHeader {
        var: i,
        lower: 0,
        upper: 16,
        step: 2,
    }];
    let w = ArrayRef::new(
        ArrayId::new(0),
        AccessVector::new(vec![AffineExpr::var(i).scaled(2)]),
    );
    let r = ArrayRef::new(
        ArrayId::new(0),
        AccessVector::new(vec![AffineExpr::var(i).offset(3)]),
    );
    assert!(check_pair(&w, &r, &loops), "parity pair must be refuted");
    // Band separation: for i in 0..8, A[2i] vs A[i+16].
    let loops = [LoopHeader {
        var: i,
        lower: 0,
        upper: 8,
        step: 1,
    }];
    let far = ArrayRef::new(
        ArrayId::new(0),
        AccessVector::new(vec![AffineExpr::var(i).offset(16)]),
    );
    assert!(check_pair(&w, &far, &loops), "band pair must be refuted");
}
