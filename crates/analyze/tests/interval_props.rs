//! Soundness of [`StridedInterval`] construction against brute force.
//!
//! The subscript evaluator's verdicts (the out-of-bounds lint V502 and
//! the memory-safety certificates V505/V506) lean on `range` producing
//! exactly the loop's value set: both endpoints members, no member
//! outside, the congruence exact. These properties re-check that claim
//! by enumerating small sets concretely — including negative strides
//! (descending enumeration) and spans near the `i64` extremes, where the
//! canonical form used to degrade or overflow.

use proptest::prelude::*;

use slp_analyze::StridedInterval;

/// Brute-force membership of `{anchor, anchor ± |stride|, …} ∩ [lo, hi]`:
/// ascending from `lo` for `stride >= 0`, descending from `hi` otherwise.
fn enumerate(lo: i64, hi: i64, stride: i64) -> Vec<i64> {
    if lo > hi {
        return Vec::new();
    }
    if lo == hi {
        return vec![lo];
    }
    let step = stride.unsigned_abs().max(1);
    let mut out = Vec::new();
    if stride >= 0 {
        let mut v = lo as i128;
        while v <= hi as i128 {
            out.push(v as i64);
            v += step as i128;
        }
    } else {
        let mut v = hi as i128;
        while v >= lo as i128 {
            out.push(v as i64);
            v -= step as i128;
        }
        out.reverse();
    }
    out
}

fn check_range(lo: i64, hi: i64, stride: i64, probe_pad: i64) {
    let s = StridedInterval::range(lo, hi, stride);
    let members = enumerate(lo, hi, stride);
    assert!(!members.is_empty());
    assert_eq!(
        (s.lo(), s.hi()),
        (members[0] as i128, *members.last().unwrap() as i128),
        "endpoints of range({lo}, {hi}, {stride}) must be attained members"
    );
    for &m in &members {
        assert!(s.contains(m), "range({lo}, {hi}, {stride}) lost member {m}");
    }
    // Probe a window around the set for false members.
    let from = lo.saturating_sub(probe_pad);
    let to = hi.saturating_add(probe_pad);
    let mut v = from;
    loop {
        assert_eq!(
            s.contains(v),
            members.contains(&v),
            "range({lo}, {hi}, {stride}) wrong about {v}"
        );
        if v == to {
            break;
        }
        v += 1;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(600))]

    /// Small random ranges, both stride signs, checked value-by-value.
    #[test]
    fn range_matches_brute_force_enumeration(
        lo in -60i64..=60,
        span in 0i64..=70,
        stride in -15i64..=15,
    ) {
        check_range(lo, lo + span, stride, 3);
    }

    /// The same property anchored at the i64 extremes: canonicalization
    /// must neither overflow nor misplace an endpoint there.
    #[test]
    fn range_is_exact_at_i64_extremes(
        span in 0i64..=50,
        stride in -9i64..=9,
        at_min in 0i64..=1,
    ) {
        if at_min == 0 {
            check_range(i64::MIN, i64::MIN + span, stride, 0);
        } else {
            check_range(i64::MAX - span, i64::MAX, stride, 0);
        }
    }

    /// Abstract ops on enumerable sets stay sound: every concrete result
    /// of `a + b` and `a · k` is a member of the abstract result.
    #[test]
    fn add_and_scale_cover_concrete_results(
        lo_a in -20i64..=20, span_a in 0i64..=12, st_a in -5i64..=5,
        lo_b in -20i64..=20, span_b in 0i64..=12, st_b in -5i64..=5,
        k in -6i64..=6,
    ) {
        let a = StridedInterval::range(lo_a, lo_a + span_a, st_a);
        let b = StridedInterval::range(lo_b, lo_b + span_b, st_b);
        let sum = a.add(&b);
        let scaled = a.scale(k);
        for &x in &enumerate(lo_a, lo_a + span_a, st_a) {
            assert!(scaled.contains(x * k), "{a} · {k} lost {}", x * k);
            for &y in &enumerate(lo_b, lo_b + span_b, st_b) {
                assert!(sum.contains(x + y), "{a} + {b} lost {}", x + y);
            }
        }
    }
}
