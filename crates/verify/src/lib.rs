//! # slp-verify — legality lints and translation validation
//!
//! An independent checker for the output of the SLP pipeline. Where
//! `slp-core` validates its own schedules while compiling, this crate
//! re-derives every obligation from scratch over the *finished*
//! [`CompiledKernel`] and reports findings as structured
//! [`Diagnostic`]s instead of panicking:
//!
//! * [`check_dependences`] — recomputes the dependence graph on the
//!   scalar block and proves the superword schedule preserves it
//!   (`V1xx` codes),
//! * [`check_packs`] — per-superword legality lints: lane isomorphism,
//!   datapath fit, disjoint destinations, alignment, loop-variable
//!   scope (`V2xx`),
//! * [`check_layout`] — proves each §5.2 array replication injective,
//!   in-bounds, immutable, and fully populated (`V3xx`),
//! * [`check_differential`] — executes the scalar baseline and the
//!   compiled kernel on identical seeded memory and diffs the final
//!   arrays bit for bit (`V4xx`),
//! * [`check_certificate`] — reports the kernel's memory-safety
//!   certificate: proven-faulting accesses are V505 errors, unproven
//!   accesses V506 warnings,
//! * [`lint_program`] — whole-program dataflow lints over the *source*
//!   program, bridged from `slp-analyze`: use-before-def, dead stores,
//!   provably out-of-bounds subscripts, misalignment risks, dead loops
//!   (`V5xx`),
//! * [`check_symbolic`] — symbolic translation validation bridged from
//!   `slp-tv`: proves scalar ≡ vectorized over *all* inputs, degrading to
//!   the differential check on budget exhaustion (`V6xx`).
//!
//! [`verify_kernel`] bundles the static checks; [`verify_with_execution`]
//! adds the differential run. [`pipeline_hook`] and
//! [`pipeline_hook_full`] adapt them to the [`SlpConfig::verify`] slot so
//! every `slp_core::compile` call can self-check:
//!
//! ```
//! use slp_core::{compile, MachineConfig, SlpConfig, Strategy};
//!
//! let program = slp_lang::compile(
//!     "kernel axpy { array X: f64[64]; array Y: f64[64]; scalar a: f64;
//!      for i in 0..64 { Y[i] = Y[i] + a * X[i]; } }",
//! )?;
//! let cfg = SlpConfig::for_machine(MachineConfig::intel_dunnington(), Strategy::Holistic)
//!     .with_verifier(slp_verify::pipeline_hook);
//! let kernel = compile(&program, &cfg); // panics if verification fails
//! let report = slp_verify::verify_with_execution(&program, &kernel);
//! assert!(report.passes());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cert;
mod deps;
mod diag;
mod differential;
mod layout;
mod lints;
mod packs;
mod symbolic;

pub use cert::check_certificate;
pub use deps::check_dependences;
pub use diag::{Diagnostic, LintCode, Report, Severity, Span};
pub use differential::{
    assert_states_equivalent, check_differential, check_engine_agreement, diff_states,
};
pub use layout::check_layout;
pub use lints::lint_program;
pub use packs::check_packs;
pub use symbolic::{check_symbolic, prove_kernel};

#[cfg(doc)]
use slp_core::SlpConfig;
use slp_core::{CompiledKernel, VerifyError};
use slp_ir::Program;

/// Runs all static checkers (dependences, packs, layout, memory-safety
/// certificate) over a compiled kernel.
pub fn verify_kernel(kernel: &CompiledKernel) -> Report {
    let mut report = Report::new();
    report.extend(check_dependences(kernel));
    report.extend(check_packs(kernel));
    report.extend(check_layout(kernel));
    report.extend(check_certificate(kernel).diagnostics);
    report
}

/// Runs the static checkers plus the differential translation validation
/// against `original`, the program as it was before compilation.
pub fn verify_with_execution(original: &Program, kernel: &CompiledKernel) -> Report {
    let mut report = verify_kernel(kernel);
    report.extend(check_differential(original, kernel));
    report
}

/// Adapter for [`SlpConfig::verify`]: runs the static checkers and
/// reports a structured [`VerifyError`] (carrying the rendered
/// diagnostics) if any has error severity. Warnings do not fail the
/// compile.
pub fn pipeline_hook(_original: &Program, kernel: &CompiledKernel) -> Result<(), VerifyError> {
    report_to_result(verify_kernel(kernel))
}

/// Adapter for [`SlpConfig::verify`] that also runs the differential
/// translation validation. Each compile then executes the program twice;
/// meant for tests and `slpc check`, not for hot compile paths.
pub fn pipeline_hook_full(original: &Program, kernel: &CompiledKernel) -> Result<(), VerifyError> {
    report_to_result(verify_with_execution(original, kernel))
}

fn report_to_result(report: Report) -> Result<(), VerifyError> {
    if report.passes() {
        Ok(())
    } else {
        let findings = report.diagnostics.iter().map(|d| d.to_string()).collect();
        Err(VerifyError::new(report.to_string()).with_findings(findings))
    }
}
