//! Data-layout soundness: proving each committed [`Replication`] safe.
//!
//! The §5.2 array layout stage materializes an interleaved copy of a
//! read-only array and rewrites pack references to it, using the Eq. (4)
//! remapping. This checker enumerates the replication's loop nest and
//! proves, element by element,
//!
//! * **injectivity** — no two distinct (lane, iteration) pairs land on
//!   the same replica element ([`LintCode::NonInjectiveLayoutMap`]); an
//!   overlap would let one lane's copy clobber another's,
//! * **bounds** — every source read and replica write stays inside its
//!   array ([`LintCode::ReplicationOutOfBounds`]),
//! * **immutability** — neither the source nor the replica is written by
//!   the program, so the copied data stays valid for the kernel's whole
//!   run ([`LintCode::ReplicatedArrayWritten`]), and
//! * **coverage** — every program reference to the replica reads an
//!   element the population loop actually wrote
//!   ([`LintCode::UnpopulatedReplicaRead`]).

use std::collections::HashMap;

use slp_core::{CompiledKernel, Replication};
use slp_ir::{Dest, LoopHeader, LoopVarId, Operand};

use crate::diag::{Diagnostic, LintCode, Span};

/// Upper bound on enumerated (lane, iteration) pairs per replication.
/// Every suite kernel sits far below this; a nest that exceeds it is
/// checked over its first `ENUM_CAP` iterations only.
const ENUM_CAP: usize = 1 << 20;

/// Runs the layout-soundness checks over every committed replication.
pub fn check_layout(kernel: &CompiledKernel) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for r in &kernel.replications {
        check_replication(kernel, r, &mut out);
    }
    out
}

fn check_replication(kernel: &CompiledKernel, r: &Replication, out: &mut Vec<Diagnostic>) {
    let program = &kernel.program;
    let src_name = program.array(r.source).name.clone();
    let dst_name = program.array(r.dest).name.clone();

    if r.lanes.len() != r.dest_exprs.len() {
        out.push(Diagnostic::new(
            LintCode::NonInjectiveLayoutMap,
            Span::program(),
            format!(
                "replication {src_name} -> {dst_name} has {} lane accesses \
                 but {} destination expressions",
                r.lanes.len(),
                r.dest_exprs.len()
            ),
        ));
        return;
    }

    // V303: the population runs once before the kernel's loops, so both
    // arrays must stay unwritten afterwards.
    for (a, name) in [(r.source, &src_name), (r.dest, &dst_name)] {
        if !program.array_is_read_only(a) {
            out.push(Diagnostic::new(
                LintCode::ReplicatedArrayWritten,
                Span::program(),
                format!(
                    "replicated array {name} is written by the program; the \
                     copy made before the loops would go stale"
                ),
            ));
        }
    }

    // Enumerate the population nest: populated replica index -> the
    // source index it was filled from.
    let mut populated: HashMap<i64, Vec<i64>> = HashMap::new();
    let mut injective_errors = 0usize;
    let mut bounds_errors = 0usize;
    for env in iteration_space(&r.loops).take(ENUM_CAP / r.lanes.len().max(1)) {
        for (lane, (access, dest_expr)) in r.lanes.iter().zip(&r.dest_exprs).enumerate() {
            let src_idx = access.eval(&env);
            if !program.array(r.source).in_bounds(&src_idx) && bounds_errors < 4 {
                bounds_errors += 1;
                out.push(Diagnostic::new(
                    LintCode::ReplicationOutOfBounds,
                    Span::program(),
                    format!(
                        "lane {lane} of replication {src_name} -> {dst_name} \
                         reads {src_name}{src_idx:?}, outside the array, at \
                         iteration {env:?}"
                    ),
                ));
            }
            let dst_idx = dest_expr.eval(&env);
            if !program.array(r.dest).in_bounds(&[dst_idx]) && bounds_errors < 4 {
                bounds_errors += 1;
                out.push(Diagnostic::new(
                    LintCode::ReplicationOutOfBounds,
                    Span::program(),
                    format!(
                        "lane {lane} of replication {src_name} -> {dst_name} \
                         writes {dst_name}[{dst_idx}], outside the array, at \
                         iteration {env:?}"
                    ),
                ));
            }
            if let Some(prev) = populated.insert(dst_idx, src_idx.clone()) {
                // Two writers of one replica slot: the Eq. (4) map is not
                // injective over (lane, iteration).
                if prev != src_idx && injective_errors < 4 {
                    injective_errors += 1;
                    out.push(Diagnostic::new(
                        LintCode::NonInjectiveLayoutMap,
                        Span::program(),
                        format!(
                            "replica element {dst_name}[{dst_idx}] is written \
                             from both {src_name}{prev:?} and \
                             {src_name}{src_idx:?} (lane {lane}, iteration \
                             {env:?})"
                        ),
                    ));
                }
            }
        }
    }

    // V304: every program read of the replica must hit a populated slot.
    let mut unpopulated = 0usize;
    for info in program.blocks() {
        let mut replica_reads: Vec<(slp_ir::StmtId, slp_ir::AffineExpr)> = Vec::new();
        for s in info.block.iter() {
            for o in s.uses() {
                if let Operand::Array(ar) = o {
                    if ar.array == r.dest && ar.access.rank() == 1 {
                        replica_reads.push((s.id(), ar.access.dim(0).clone()));
                    }
                }
            }
            if let Dest::Array(ar) = s.dest() {
                if ar.array == r.dest {
                    out.push(Diagnostic::new(
                        LintCode::ReplicatedArrayWritten,
                        Span::stmts(info.id, vec![s.id()]),
                        format!("{} writes replica array {dst_name}", s.id()),
                    ));
                }
            }
        }
        if replica_reads.is_empty() {
            continue;
        }
        for env in iteration_space(&info.loops).take(ENUM_CAP / replica_reads.len().max(1)) {
            for (sid, expr) in &replica_reads {
                let idx = expr.eval(&env);
                if !populated.contains_key(&idx) && unpopulated < 4 {
                    unpopulated += 1;
                    out.push(Diagnostic::new(
                        LintCode::UnpopulatedReplicaRead,
                        Span::stmts(info.id, vec![*sid]),
                        format!(
                            "{sid} reads {dst_name}[{idx}] at iteration \
                             {env:?}, but the population loop never writes \
                             that element"
                        ),
                    ));
                }
            }
        }
    }
}

/// Enumerates the concrete iteration vectors of a loop nest, outermost
/// first, as `(variable, value)` environments.
fn iteration_space(loops: &[LoopHeader]) -> impl Iterator<Item = Vec<(LoopVarId, i64)>> + '_ {
    let trips: Vec<i64> = loops.iter().map(|h| h.trip_count().max(0)).collect();
    let total: i64 = trips.iter().product();
    (0..total.max(if loops.is_empty() { 1 } else { 0 })).map(move |mut flat| {
        let mut env = Vec::with_capacity(loops.len());
        for (h, &t) in loops.iter().zip(&trips).rev() {
            let k = if t > 0 { flat % t } else { 0 };
            flat /= t.max(1);
            env.push((h.var, h.lower + k * h.step));
        }
        env.reverse();
        env
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header(var: u32, lower: i64, upper: i64, step: i64) -> LoopHeader {
        LoopHeader {
            var: LoopVarId::new(var),
            lower,
            upper,
            step,
        }
    }

    #[test]
    fn iteration_space_enumerates_row_major() {
        let envs: Vec<_> = iteration_space(&[header(0, 0, 2, 1), header(1, 0, 3, 1)]).collect();
        assert_eq!(envs.len(), 6);
        assert_eq!(
            envs[0],
            vec![(LoopVarId::new(0), 0), (LoopVarId::new(1), 0)]
        );
        assert_eq!(
            envs[1],
            vec![(LoopVarId::new(0), 0), (LoopVarId::new(1), 1)]
        );
        assert_eq!(
            envs[5],
            vec![(LoopVarId::new(0), 1), (LoopVarId::new(1), 2)]
        );
    }

    #[test]
    fn iteration_space_honors_step_and_lower() {
        let envs: Vec<_> = iteration_space(&[header(0, 4, 10, 2)]).collect();
        let values: Vec<i64> = envs.iter().map(|e| e[0].1).collect();
        assert_eq!(values, vec![4, 6, 8]);
    }

    #[test]
    fn empty_nest_has_one_iteration() {
        let envs: Vec<_> = iteration_space(&[]).collect();
        assert_eq!(envs, vec![vec![]]);
    }
}
