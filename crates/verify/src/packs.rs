//! Pack legality lints: the per-superword well-formedness rules.
//!
//! Where `deps` proves the schedule's *order* sound, this module checks
//! each superword statement in isolation:
//!
//! * lanes are isomorphic — same operation shape, operand kinds and
//!   element types in every position ([`LintCode::LaneTypeMismatch`]),
//! * the pack fits the machine's datapath ([`LintCode::PackTooWide`]),
//! * no two lanes may write the same location in one iteration
//!   ([`LintCode::OverlappingLaneDests`]),
//! * contiguous memory packs are provably aligned, else the code
//!   generator must issue unaligned vector memory operations
//!   ([`LintCode::MisalignedPack`], a warning), and
//! * every subscript only uses loop variables an enclosing loop defines
//!   ([`LintCode::UnknownLoopVar`]).

use std::collections::BTreeSet;

use slp_core::{CompiledKernel, ScheduledItem};
use slp_ir::{
    operands_overlap_in, pack_is_aligned_in, pack_is_contiguous, ArrayRef, Dest, LoopVarId,
    Statement, TypeEnv,
};

use crate::diag::{Diagnostic, LintCode, Span};

/// Runs the pack legality lints over every superword statement.
pub fn check_packs(kernel: &CompiledKernel) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let program = &kernel.program;
    let machine = &kernel.config.machine;

    for info in program.blocks() {
        let in_scope: BTreeSet<LoopVarId> = info.loops.iter().map(|h| h.var).collect();

        // V205: subscripts must only use variables of enclosing loops.
        // This is a property of the (possibly layout-rewritten) program
        // itself, so it is checked for every statement, packed or not.
        for s in info.block.iter() {
            let mut refs: Vec<&ArrayRef> = s.uses().iter().filter_map(|o| o.as_array()).collect();
            if let Dest::Array(r) = s.dest() {
                refs.push(r);
            }
            for r in refs {
                for dim in r.access.dims() {
                    for v in dim.vars() {
                        if !in_scope.contains(&v) {
                            out.push(Diagnostic::new(
                                LintCode::UnknownLoopVar,
                                Span::stmts(info.id, vec![s.id()]),
                                format!(
                                    "subscript of {} uses loop variable {}, which no \
                                     enclosing loop defines",
                                    program.array(r.array).name,
                                    program.loop_var_name(v)
                                ),
                            ));
                        }
                    }
                }
            }
        }

        let Some(sched) = kernel.schedule_of(info.id) else {
            continue; // reported by the dependence checker
        };
        for item in sched.items() {
            let ScheduledItem::Superword(sw) = item else {
                continue;
            };
            let stmts: Option<Vec<&Statement>> =
                sw.lanes().iter().map(|&s| info.block.stmt(s)).collect();
            let Some(stmts) = stmts else {
                continue; // foreign statement ids: a permutation failure
            };
            let span = || Span::stmts(info.id, sw.lanes().to_vec());
            let first = stmts[0];

            // V201: lane isomorphism (operation shape, operand kinds and
            // element types, destination included).
            for s in &stmts[1..] {
                if !s.isomorphic(first, program) {
                    out.push(Diagnostic::new(
                        LintCode::LaneTypeMismatch,
                        span(),
                        format!(
                            "lane {} is not isomorphic to lane {} (operation \
                             shape, operand kind, or element type differs)",
                            s.id(),
                            first.id()
                        ),
                    ));
                }
            }

            // V202: the pack must fit the datapath.
            let ty = program.dest_type(first.dest());
            let bits = sw.width() as u32 * ty.size_bytes() * 8;
            if bits > machine.datapath_bits {
                out.push(Diagnostic::new(
                    LintCode::PackTooWide,
                    span(),
                    format!(
                        "{} lanes of {ty} need {bits} bits but the {} datapath \
                         is {} bits wide",
                        sw.width(),
                        machine.name,
                        machine.datapath_bits
                    ),
                ));
            }

            // V203: lanes write disjoint locations. `operands_overlap_in`
            // tests same-iteration aliasing, so contiguous store packs
            // like <A[i], A[i+1]> pass.
            for (i, a) in stmts.iter().enumerate() {
                for b in &stmts[i + 1..] {
                    if operands_overlap_in(&a.def(), &b.def(), &info.loops) {
                        out.push(Diagnostic::new(
                            LintCode::OverlappingLaneDests,
                            Span::stmts(info.id, vec![a.id(), b.id()]),
                            format!(
                                "lanes {} and {} may write the same location \
                                 ({} and {})",
                                a.id(),
                                b.id(),
                                a.dest(),
                                b.dest()
                            ),
                        ));
                    }
                }
            }

            // V204: each memory position that forms a contiguous run must
            // also be provably aligned, or the pack needs an unaligned
            // vector memory operation.
            let dest_refs: Option<Vec<&ArrayRef>> = stmts
                .iter()
                .map(|s| match s.dest() {
                    Dest::Array(r) => Some(r),
                    Dest::Scalar(_) => None,
                })
                .collect();
            let mut positions: Vec<(&'static str, Vec<&ArrayRef>)> = Vec::new();
            if let Some(refs) = dest_refs {
                positions.push(("destination", refs));
            }
            for k in 0..first.expr().operands().len() {
                let refs: Option<Vec<&ArrayRef>> = stmts
                    .iter()
                    .map(|s| s.expr().operands().get(k).and_then(|o| o.as_array()))
                    .collect();
                if let Some(refs) = refs {
                    positions.push(("operand", refs));
                }
            }
            for (what, refs) in positions {
                if pack_is_contiguous(&refs) && !pack_is_aligned_in(&refs, program, &info.loops) {
                    out.push(Diagnostic::new(
                        LintCode::MisalignedPack,
                        span(),
                        format!(
                            "contiguous {what} pack of {} starts at an address \
                             not provably aligned to {} bytes",
                            program.array(refs[0].array).name,
                            sw.width() as u32 * ty.size_bytes()
                        ),
                    ));
                }
            }
        }
    }
    out
}
