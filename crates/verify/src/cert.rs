//! Memory-safety certificate diagnostics (`V505`/`V506`), bridged from
//! the [`SafetyCert`] the pipeline attaches to every [`CompiledKernel`].
//!
//! The certificate classifies each array access of the *transformed*
//! program against its declared extents. This module turns the non-safe
//! verdicts into diagnostics through the shared catalogue:
//!
//! * [`AccessVerdict::ProvenFaulting`] → [`LintCode::ProvenFaultingAccess`]
//!   (V505, **error**): interval endpoints over the iteration box are
//!   attained, so the access really does trap on some iteration;
//! * [`AccessVerdict::Unknown`] → [`LintCode::UnprovenAccess`] (V506,
//!   warning): the range arithmetic widened to ⊤, so the access keeps
//!   its runtime bounds check and its safety rests on that check alone.
//!
//! `ProvenSafe` accesses produce nothing — they are the quiet majority
//! the bytecode engine rewards with unchecked loads and stores.

use slp_core::{AccessVerdict, CompiledKernel};

use crate::diag::{Diagnostic, LintCode, Report, Span};

/// Reports every non-safe verdict of the kernel's memory-safety
/// certificate as a `V505`/`V506` diagnostic.
///
/// # Examples
///
/// ```
/// use slp_core::{compile, MachineConfig, SlpConfig, Strategy};
///
/// let program = slp_lang::compile(
///     "kernel oob { array A: f64[8]; for i in 0..8 { A[i+1] = 2.0; } }",
/// )?;
/// let cfg = SlpConfig::for_machine(MachineConfig::intel_dunnington(), Strategy::Scalar);
/// let kernel = compile(&program, &cfg);
/// let report = slp_verify::check_certificate(&kernel);
/// assert!(report.has(slp_verify::LintCode::ProvenFaultingAccess));
/// assert!(!report.passes());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn check_certificate(kernel: &CompiledKernel) -> Report {
    let mut report = Report::new();
    for cert in &kernel.safety.accesses {
        let what = if cert.is_write {
            "store to"
        } else {
            "load from"
        };
        match cert.verdict {
            AccessVerdict::ProvenSafe => {}
            AccessVerdict::ProvenFaulting => report.push(Diagnostic::new(
                LintCode::ProvenFaultingAccess,
                Span::stmts(cert.block, vec![cert.stmt]),
                format!(
                    "{what} {} is proven out of bounds: {}",
                    cert.reference, cert.detail
                ),
            )),
            AccessVerdict::Unknown => report.push(Diagnostic::new(
                LintCode::UnprovenAccess,
                Span::stmts(cert.block, vec![cert.stmt]),
                format!(
                    "{what} {} cannot be proven in bounds ({}); it executes fully checked",
                    cert.reference, cert.detail
                ),
            )),
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;
    use slp_core::{compile, MachineConfig, SlpConfig, Strategy};

    fn kernel(src: &str) -> CompiledKernel {
        let p = slp_lang::compile(src).expect("compiles");
        let cfg = SlpConfig::for_machine(MachineConfig::intel_dunnington(), Strategy::Holistic);
        compile(&p, &cfg)
    }

    #[test]
    fn safe_kernel_produces_no_certificate_diagnostics() {
        let k = kernel(
            "kernel axpy { array X: f64[64]; array Y: f64[64]; scalar a: f64;
             for i in 0..64 { Y[i] = Y[i] + a * X[i]; } }",
        );
        assert!(k.safety.all_proven_safe());
        assert!(check_certificate(&k).is_clean());
        assert_eq!(k.stats.accesses_proven_safe, k.safety.accesses.len());
        assert_eq!(k.stats.accesses_proven_faulting, 0);
        assert_eq!(k.stats.accesses_unknown, 0);
    }

    #[test]
    fn proven_faulting_access_is_a_v505_error() {
        let k = kernel("kernel oob { array A: f64[8]; for i in 0..8 { A[i+1] = 2.0; } }");
        let r = check_certificate(&k);
        assert!(r.has(LintCode::ProvenFaultingAccess), "{r}");
        assert!(!r.passes());
        let d = r
            .diagnostics
            .iter()
            .find(|d| d.code == LintCode::ProvenFaultingAccess)
            .unwrap();
        assert_eq!(d.severity, Severity::Error);
        assert!(d.message.contains("store to"), "{}", d.message);
        assert!(d.span.block.is_some());
        assert!(k.stats.accesses_proven_faulting > 0);
    }

    #[test]
    fn certificate_diagnostics_flow_through_verify_kernel() {
        let k = kernel("kernel oob { array A: f64[8]; for i in 0..8 { A[i+1] = 2.0; } }");
        let r = crate::verify_kernel(&k);
        assert!(r.has(LintCode::ProvenFaultingAccess), "{r}");
        assert!(!r.passes());
    }
}
