//! Symbolic translation validation (`V6xx`), bridged from `slp-tv`.
//!
//! [`check_symbolic`] upgrades the point-wise differential check to a
//! proof over **all** inputs: the `slp-tv` validator symbolically
//! evaluates the scalar program and the compiled kernel over a shared
//! hash-consed term arena and compares every observable location's value
//! graph. The bridge composes the fallback the validator itself promises:
//!
//! * **proved** — clean report; nothing to say.
//! * **refuted** — the validator extracted a concrete input and confirmed
//!   the divergence on both VM engines: [`LintCode::SymbolicMismatch`]
//!   (V600, error) carrying the distinguishing input.
//! * **budget / unsupported** — the proof attempt degraded; the bridge
//!   runs the existing [`check_differential`] gate instead and records
//!   the downgrade as [`LintCode::SymbolicBudgetExceeded`] (V601) or
//!   [`LintCode::SymbolicUnsupported`] (V602), both warnings. Any
//!   differential findings (V401/V402) ride along as usual, so a degraded
//!   run is never *weaker* than the previous behavior — just honest about
//!   being point-wise.

use slp_core::CompiledKernel;
use slp_ir::Program;
use slp_tv::{Budgets, Counterexample, Verdict};

use crate::diag::{Diagnostic, LintCode, Report, Span};
use crate::differential::check_differential;

/// Runs the symbolic translation validator with the default budgets and
/// folds the verdict into a diagnostic report (see module docs).
///
/// `original` must be the program `kernel` was compiled from.
///
/// # Examples
///
/// ```
/// use slp_core::{compile, MachineConfig, SlpConfig, Strategy};
///
/// let program = slp_lang::compile(
///     "kernel axpy { array X: f64[64]; array Y: f64[64]; scalar a: f64;
///      for i in 0..64 { Y[i] = Y[i] + a * X[i]; } }",
/// )?;
/// let cfg = SlpConfig::for_machine(MachineConfig::intel_dunnington(), Strategy::Holistic);
/// let kernel = compile(&program, &cfg);
/// let report = slp_verify::check_symbolic(&program, &kernel);
/// assert!(report.is_clean(), "{report}");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn check_symbolic(original: &Program, kernel: &CompiledKernel) -> Report {
    prove_kernel(original, kernel).0
}

/// Like [`check_symbolic`], but also returns the raw [`Verdict`] so
/// callers (the driver's `--prove` mode, the fuzzer's validator oracle)
/// can act on the proof outcome itself.
pub fn prove_kernel(original: &Program, kernel: &CompiledKernel) -> (Report, Verdict) {
    let verdict = slp_tv::validate(
        original,
        kernel,
        &kernel.config.machine,
        &Budgets::default(),
    );
    let mut report = Report::new();
    match &verdict {
        Verdict::Proved(_) => {}
        Verdict::Refuted(cex) => {
            report.push(Diagnostic::new(
                LintCode::SymbolicMismatch,
                Span::program(),
                describe_counterexample(cex),
            ));
        }
        Verdict::Budget { reason } => {
            degrade(
                original,
                kernel,
                &mut report,
                LintCode::SymbolicBudgetExceeded,
                reason,
            );
        }
        Verdict::Unsupported { reason } => {
            degrade(
                original,
                kernel,
                &mut report,
                LintCode::SymbolicUnsupported,
                reason,
            );
        }
    }
    (report, verdict)
}

fn degrade(
    original: &Program,
    kernel: &CompiledKernel,
    report: &mut Report,
    code: LintCode,
    reason: &str,
) {
    report.push(Diagnostic::new(
        code,
        Span::program(),
        format!("symbolic proof degraded to the differential check: {reason}"),
    ));
    report.extend(check_differential(original, kernel));
}

fn describe_counterexample(cex: &Counterexample) -> String {
    format!(
        "execution-confirmed miscompile at {}: scalar computes {:?}, vectorized computes {:?} \
         on a concrete input assigning {} array cell(s) and {} scalar(s)",
        cex.location,
        cex.scalar_value,
        cex.vector_value,
        cex.cells.len(),
        cex.scalars.len()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use slp_core::{compile, BlockSchedule, MachineConfig, ScheduledItem, SlpConfig, Strategy};

    fn program(src: &str) -> Program {
        slp_lang::compile(src).unwrap()
    }

    #[test]
    fn proved_kernel_reports_clean() {
        let p = program(
            "kernel axpy { array X: f64[64]; array Y: f64[64]; scalar a: f64;
             for i in 0..64 { Y[i] = Y[i] + a * X[i]; } }",
        );
        let cfg = SlpConfig::for_machine(MachineConfig::intel_dunnington(), Strategy::Holistic);
        let k = compile(&p, &cfg);
        let (report, verdict) = prove_kernel(&p, &k);
        assert!(report.is_clean(), "{report}");
        assert_eq!(verdict.name(), "proved");
    }

    #[test]
    fn tampered_schedule_reports_v600() {
        let p = program(
            "kernel dep { array A: f64[8];
             for i in 0..8 { A[i] = A[i] * 2.0; A[i] = A[i] + 1.0; } }",
        );
        let cfg = SlpConfig::for_machine(MachineConfig::intel_dunnington(), Strategy::Holistic);
        let mut k = compile(&p, &cfg);
        let (bid, sched) = k.schedules[0].clone();
        assert!(sched.is_vectorized());
        let mut items: Vec<ScheduledItem> = sched.items().to_vec();
        items.swap(0, 1);
        k.schedules[0] = (bid, BlockSchedule::new(items));
        let (report, verdict) = prove_kernel(&p, &k);
        assert!(report.has(LintCode::SymbolicMismatch), "{report}");
        assert!(!report.passes());
        assert_eq!(verdict.name(), "refuted");
    }
}
