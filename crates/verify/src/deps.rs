//! Dependence preservation: an independent re-derivation of the §4.1
//! validity constraints over the *final* schedules.
//!
//! The optimizer validates its own output (`slp_core::validate_schedule`)
//! while compiling; this checker recomputes the dependence graph from the
//! scalar block with [`BlockDeps`] and re-proves, with no shared state,
//! that the emitted superword schedule
//!
//! 1. is a permutation of the block's statements ([`LintCode::ScheduleNotPermutation`]),
//! 2. orders every dependence source before its target
//!    ([`LintCode::DependenceOrderViolated`]),
//! 3. packs no two statements that depend on each other
//!    ([`LintCode::IntraPackDependence`]), and
//! 4. contains no pair of cyclically dependent superword statements
//!    ([`LintCode::PackCycle`]).

use std::collections::HashMap;

use slp_analyze::RangeOracle;
use slp_core::{CompiledKernel, ScheduledItem};
use slp_ir::{BlockDeps, StmtId};

use crate::diag::{Diagnostic, LintCode, Span};

/// Runs the dependence-preservation checks over every scheduled block.
pub fn check_dependences(kernel: &CompiledKernel) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for info in kernel.program.blocks() {
        let Some(sched) = kernel.schedule_of(info.id) else {
            out.push(Diagnostic::new(
                LintCode::ScheduleNotPermutation,
                Span::block(info.id),
                "block has no schedule",
            ));
            continue;
        };

        // 1. Permutation: every block statement scheduled exactly once,
        // nothing foreign.
        let mut pos: HashMap<StmtId, usize> = HashMap::new();
        for (i, item) in sched.items().iter().enumerate() {
            for &s in item.stmts() {
                if info.block.stmt(s).is_none() {
                    out.push(Diagnostic::new(
                        LintCode::ScheduleNotPermutation,
                        Span::stmts(info.id, vec![s]),
                        format!("schedule mentions {s}, which is not in the block"),
                    ));
                    continue;
                }
                if pos.insert(s, i).is_some() {
                    out.push(Diagnostic::new(
                        LintCode::ScheduleNotPermutation,
                        Span::stmts(info.id, vec![s]),
                        format!("{s} is scheduled more than once"),
                    ));
                }
            }
        }
        for s in info.block.iter() {
            if !pos.contains_key(&s.id()) {
                out.push(Diagnostic::new(
                    LintCode::ScheduleNotPermutation,
                    Span::stmts(info.id, vec![s.id()]),
                    format!("{} is missing from the schedule", s.id()),
                ));
            }
        }

        // 2. Re-derive the dependence graph from the scalar block and
        // check the schedule executes every source before its target.
        // A kernel compiled with range-refined dependence testing is
        // checked against the same refined graph: the baseline keeps
        // edges the refinement soundly disproved, and those must not be
        // reported as violations.
        let deps = if kernel.config.refine_deps {
            BlockDeps::analyze_with(&info.block, &info.loops, &RangeOracle::new())
        } else {
            BlockDeps::analyze_in(&info.block, &info.loops)
        };
        for d in deps.direct() {
            let (Some(&ps), Some(&pd)) = (pos.get(&d.src), pos.get(&d.dst)) else {
                continue; // already reported as a permutation failure
            };
            if ps > pd {
                out.push(Diagnostic::new(
                    LintCode::DependenceOrderViolated,
                    Span::stmts(info.id, vec![d.src, d.dst]),
                    format!(
                        "{} dependence {} -> {} is reversed (source at \
                         position {ps}, target at {pd})",
                        d.kind, d.src, d.dst
                    ),
                ));
            }
        }

        // 3. Lanes of one pack must be pairwise independent — checked
        // against the transitive closure, so a dependence routed through
        // a third statement is caught even when no direct edge joins the
        // lanes.
        let packs: Vec<&[StmtId]> = sched
            .items()
            .iter()
            .filter_map(|item| match item {
                ScheduledItem::Superword(sw) => Some(sw.lanes()),
                ScheduledItem::Single(_) => None,
            })
            .collect();
        for lanes in &packs {
            for (i, &a) in lanes.iter().enumerate() {
                for &b in &lanes[i + 1..] {
                    if a == b || info.block.stmt(a).is_none() || info.block.stmt(b).is_none() {
                        continue; // permutation failures already reported
                    }
                    if deps.depends(a, b) || deps.depends(b, a) {
                        out.push(Diagnostic::new(
                            LintCode::IntraPackDependence,
                            Span::stmts(info.id, vec![a, b]),
                            format!("pack lanes {a} and {b} depend on each other"),
                        ));
                    }
                }
            }
        }

        // 4. No two packs may be cyclically dependent (each would have to
        // execute before the other).
        for (i, p) in packs.iter().enumerate() {
            for q in &packs[i + 1..] {
                if p.iter()
                    .chain(q.iter())
                    .any(|&s| info.block.stmt(s).is_none())
                {
                    continue;
                }
                if deps.sets_form_cycle(p, q) {
                    let mut stmts = p.to_vec();
                    stmts.extend_from_slice(q);
                    out.push(Diagnostic::new(
                        LintCode::PackCycle,
                        Span::stmts(info.id, stmts),
                        "superword statements are cyclically dependent",
                    ));
                }
            }
        }
    }
    out
}
