//! Differential translation validation: run it both ways, diff memory.
//!
//! The static checkers prove structural properties; this one executes.
//! The original program is compiled under the scalar strategy (no
//! unrolling, no packs, no layout changes) and the kernel under test is
//! executed as compiled; both start from the same deterministic seeded
//! memory, and the final contents of every original array are compared
//! bit for bit. Replicas appended by the layout stage are scratch space,
//! not program output, and are excluded from the diff.

use slp_core::{CompiledKernel, SlpConfig, Strategy};
use slp_ir::Program;
use slp_vm::{execute, execute_reference, MachineState};

use crate::diag::{Diagnostic, LintCode, Span};

/// Compiles and runs the scalar baseline of `original`, runs `kernel`,
/// and diffs the final memories.
///
/// The scalar compile uses a fresh [`SlpConfig`] with no verification
/// hook, so a hook installed on the kernel's own config cannot recurse.
pub fn check_differential(original: &Program, kernel: &CompiledKernel) -> Vec<Diagnostic> {
    let machine = &kernel.config.machine;
    let scalar_cfg = SlpConfig::for_machine(machine.clone(), Strategy::Scalar);
    let scalar = slp_core::compile(original, &scalar_cfg);
    let reference = match execute(&scalar, machine) {
        Ok(out) => out,
        Err(e) => {
            return vec![Diagnostic::new(
                LintCode::ExecutionFailed,
                Span::program(),
                format!(
                    "scalar baseline of '{}' failed to run: {e}",
                    original.name()
                ),
            )]
        }
    };
    let candidate = match execute(kernel, machine) {
        Ok(out) => out,
        Err(e) => {
            return vec![Diagnostic::new(
                LintCode::ExecutionFailed,
                Span::program(),
                format!(
                    "compiled kernel of '{}' ({} strategy) failed to run: {e}",
                    original.name(),
                    kernel.config.strategy.label()
                ),
            )]
        }
    };
    diff_states(original, &reference.state, &candidate.state)
}

/// Diffs two final machine states over the arrays of `program`, bit for
/// bit, reporting the first divergent element of each divergent array.
///
/// This is the comparison `check_differential` performs, exposed
/// separately so harnesses that already hold executed [`MachineState`]s
/// (the bench harness, the oracle stress test) can route their
/// equivalence assertions through the same validator.
pub fn diff_states(
    program: &Program,
    reference: &MachineState,
    candidate: &MachineState,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for a in program.array_ids() {
        let name = &program.array(a).name;
        let (x, y) = (reference.array(a), candidate.array(a));
        if x.len() != y.len() {
            out.push(Diagnostic::new(
                LintCode::DifferentialMismatch,
                Span::program(),
                format!(
                    "array {name} has {} elements after scalar execution but \
                     {} after vectorized execution",
                    x.len(),
                    y.len()
                ),
            ));
            continue;
        }
        if let Some(i) = (0..x.len()).find(|&i| x[i].to_bits() != y[i].to_bits()) {
            let total = (0..x.len())
                .filter(|&i| x[i].to_bits() != y[i].to_bits())
                .count();
            out.push(Diagnostic::new(
                LintCode::DifferentialMismatch,
                Span::program(),
                format!(
                    "array {name} diverges at [{i}]: scalar {} vs vectorized \
                     {} ({total} element(s) differ)",
                    x[i], y[i]
                ),
            ));
        }
    }
    out
}

/// Cross-checks the two execution engines on `kernel`: the fast bytecode
/// engine (the one behind [`execute`]) against the reference
/// interpreter, on identically seeded memory.
///
/// Where [`check_differential`] validates the *compilation* (vectorized
/// vs scalar semantics), this validates the *executor*: the bytecode
/// lowering must preserve every observable of the reference engine — the
/// full memory image (arrays *and* scalars, bit for bit), the run
/// statistics (cycles, dynamic instructions, memory/pack/permute
/// counters, iterations), the vectorized-block count and the per-block
/// cycle attribution. Any divergence is a bug in the fast engine, never
/// in the program under test.
pub fn check_engine_agreement(kernel: &CompiledKernel) -> Vec<Diagnostic> {
    let machine = &kernel.config.machine;
    let name = kernel.program.name();
    let fast = match execute(kernel, machine) {
        Ok(out) => out,
        Err(e) => {
            return vec![Diagnostic::new(
                LintCode::ExecutionFailed,
                Span::program(),
                format!("bytecode engine failed to run '{name}': {e}"),
            )]
        }
    };
    let reference = match execute_reference(kernel, machine) {
        Ok(out) => out,
        Err(e) => {
            return vec![Diagnostic::new(
                LintCode::ExecutionFailed,
                Span::program(),
                format!("reference engine failed to run '{name}': {e}"),
            )]
        }
    };

    let mut out = Vec::new();
    if !fast.state.bitwise_eq(&reference.state) {
        out.extend(diff_states(&kernel.program, &reference.state, &fast.state));
        // diff_states only covers arrays; flag scalar-frame divergence
        // (or an array diff too subtle for it, e.g. NaN payloads)
        // explicitly so agreement failures are never silent.
        if out.is_empty() {
            out.push(Diagnostic::new(
                LintCode::DifferentialMismatch,
                Span::program(),
                format!(
                    "engines disagree on the final machine state of '{name}' \
                     outside the array contents (scalar frame)"
                ),
            ));
        }
    }
    if fast.stats != reference.stats {
        out.push(Diagnostic::new(
            LintCode::DifferentialMismatch,
            Span::program(),
            format!(
                "engines disagree on run statistics for '{name}': bytecode \
                 {:?} vs reference {:?}",
                fast.stats, reference.stats
            ),
        ));
    }
    if fast.vectorized_blocks != reference.vectorized_blocks
        || fast.block_cycles != reference.block_cycles
    {
        out.push(Diagnostic::new(
            LintCode::DifferentialMismatch,
            Span::program(),
            format!(
                "engines disagree on block accounting for '{name}': bytecode \
                 ({} vectorized, {:?}) vs reference ({} vectorized, {:?})",
                fast.vectorized_blocks,
                fast.block_cycles,
                reference.vectorized_blocks,
                reference.block_cycles
            ),
        ));
    }
    out
}

/// Convenience used by harness assertions: diffs every measurement's
/// state against the reference and panics with the rendered diagnostics
/// on divergence.
pub fn assert_states_equivalent(
    program: &Program,
    reference: &MachineState,
    candidate: &MachineState,
    label: &str,
) {
    let diags = diff_states(program, reference, candidate);
    assert!(
        diags.is_empty(),
        "{} under {label} diverged from the scalar execution:\n{}",
        program.name(),
        diags
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
