//! Whole-program dataflow lints (`V5xx`), bridged from `slp-analyze`.
//!
//! [`lint_program`] runs `slp_analyze::lint_program` over the *source*
//! program — before unrolling, so loop strides and trip counts are still
//! visible — and converts each finding into a [`Diagnostic`] through the
//! same catalogue the kernel checkers use. The mapping:
//!
//! * use-before-def → [`LintCode::UseBeforeDef`] (V500, warning),
//! * dead store → [`LintCode::DeadStore`] (V501, warning),
//! * provably out-of-bounds subscript →
//!   [`LintCode::OutOfBoundsSubscript`] (V502, **error**: strided-interval
//!   endpoints over the iteration box are attained, so the overrun is a
//!   fact, not a possibility),
//! * misalignment risk for a pack candidate →
//!   [`LintCode::MisalignmentRisk`] (V503, warning),
//! * a loop that provably never executes →
//!   [`LintCode::LoopNeverExecutes`] (V504, warning),
//! * an array store no read observes, fully overwritten by a later
//!   store → [`LintCode::DeadArrayStore`] (V507, warning).

use std::collections::HashMap;

use slp_analyze::FindingKind;
use slp_ir::{BlockId, Program, StmtId};

use crate::diag::{Diagnostic, LintCode, Report, Span};

/// Runs the `slp-analyze` dataflow lints over a source program and
/// reports them as `V5xx` diagnostics.
///
/// # Examples
///
/// ```
/// let program = slp_lang::compile(
///     "kernel oob { array A: f64[8]; for i in 0..8 { A[i+1] = A[i] * 2.0; } }",
/// )?;
/// let report = slp_verify::lint_program(&program);
/// assert!(report.has(slp_verify::LintCode::OutOfBoundsSubscript));
/// assert!(!report.passes());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn lint_program(program: &Program) -> Report {
    // Attribute each finding to its basic block so spans render the same
    // way as the kernel checkers' do.
    let mut home: HashMap<StmtId, BlockId> = HashMap::new();
    for info in program.blocks() {
        for s in info.block.iter() {
            home.insert(s.id(), info.id);
        }
    }
    let mut report = Report::new();
    for finding in slp_analyze::lint_program(program) {
        let code = match finding.kind {
            FindingKind::UseBeforeDef => LintCode::UseBeforeDef,
            FindingKind::DeadStore => LintCode::DeadStore,
            FindingKind::OutOfBounds => LintCode::OutOfBoundsSubscript,
            FindingKind::MisalignmentRisk => LintCode::MisalignmentRisk,
            FindingKind::LoopNeverExecutes => LintCode::LoopNeverExecutes,
            FindingKind::DeadArrayStore => LintCode::DeadArrayStore,
        };
        let span = match home.get(&finding.stmt) {
            Some(&b) => Span::stmts(b, vec![finding.stmt]),
            None => Span {
                block: None,
                stmts: vec![finding.stmt],
            },
        };
        report.push(Diagnostic::new(code, span, finding.message));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;

    fn lint(src: &str) -> Report {
        lint_program(&slp_lang::compile(src).expect("compiles"))
    }

    #[test]
    fn clean_kernel_has_no_findings() {
        let r = lint(
            "kernel axpy { array X: f64[64]; array Y: f64[64]; scalar a: f64;
             for i in 0..64 { Y[i] = Y[i] + a * X[i]; } }",
        );
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn out_of_bounds_is_an_error() {
        let r = lint("kernel oob { array A: f64[8]; for i in 0..8 { A[i+1] = A[i] * 2.0; } }");
        assert!(r.has(LintCode::OutOfBoundsSubscript), "{r}");
        assert_eq!(r.error_count(), 1);
        let d = &r.diagnostics[0];
        assert_eq!(d.severity, Severity::Error);
        assert!(d.span.block.is_some(), "finding is attributed to a block");
    }

    #[test]
    fn use_before_def_and_dead_store_are_warnings() {
        let r = lint(
            "kernel w { array A: f64[8]; scalar s: f64; scalar t: f64;
             for i in 0..8 { A[i] = s; }
             s = 1.0;
             t = 2.0;
             t = 3.0; }",
        );
        assert!(r.has(LintCode::UseBeforeDef), "{r}");
        assert!(r.has(LintCode::DeadStore), "{r}");
        assert!(r.passes(), "V500/V501 do not fail the build: {r}");
    }

    #[test]
    fn dead_array_store_is_a_warning() {
        // The first loop's stores are never read and the second loop
        // overwrites every cell it wrote.
        let r = lint(
            "kernel shadow { array A: f64[8]; scalar s: f64;
             for i in 0..8 { A[i] = 1.0; }
             for j in 0..8 { A[j] = 2.0; } }",
        );
        assert!(r.has(LintCode::DeadArrayStore), "{r}");
        assert!(r.passes(), "V507 does not fail the build: {r}");
    }

    #[test]
    fn dead_loop_is_a_warning() {
        let r = lint(
            "kernel dead { array A: f64[8];
             for i in 8..8 { A[i] = 1.0; } }",
        );
        assert!(r.has(LintCode::LoopNeverExecutes), "{r}");
        assert!(r.passes(), "V504 does not fail the build: {r}");
    }
}
