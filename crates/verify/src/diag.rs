//! Structured diagnostics: lint codes, severities, spans, and the report
//! the checkers accumulate into.
//!
//! Every check in this crate reports through [`Diagnostic`] rather than
//! panicking, so a caller (the `slpc check` subcommand, the bench
//! harness, the pipeline hook) can decide what a finding means for it:
//! errors are soundness violations, warnings are legal-but-suspect
//! constructs the cost model should have avoided.

use std::fmt;

use slp_ir::{BlockId, StmtId};

/// How serious a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Legal code, but a construct the optimizer normally avoids (for
    /// example a contiguous pack that needs an unaligned memory
    /// operation).
    Warning,
    /// A soundness violation: the compiled kernel does not implement the
    /// scalar program.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// The lint catalogue. Codes are grouped by checker family:
///
/// * `V1xx` — dependence preservation ([`crate::check_dependences`])
/// * `V2xx` — pack legality ([`crate::check_packs`])
/// * `V3xx` — data-layout soundness ([`crate::check_layout`])
/// * `V4xx` — differential translation validation
///   ([`crate::check_differential`])
/// * `V5xx` — whole-program dataflow lints from `slp-analyze`
///   ([`crate::lint_program`])
/// * `V6xx` — symbolic translation validation from `slp-tv`
///   ([`crate::check_symbolic`])
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LintCode {
    /// The schedule is not a permutation of the block's statements
    /// (missing, duplicated, or foreign statement ids).
    ScheduleNotPermutation,
    /// A dependence's source is scheduled after its target.
    DependenceOrderViolated,
    /// Two lanes of one superword statement depend on each other.
    IntraPackDependence,
    /// Two superword statements are cyclically dependent.
    PackCycle,
    /// Pack lanes are not isomorphic (operation shape, operand kinds, or
    /// element types differ).
    LaneTypeMismatch,
    /// A pack is wider than the machine's datapath.
    PackTooWide,
    /// Two lanes of one pack may write the same location in the same
    /// iteration.
    OverlappingLaneDests,
    /// A contiguous pack whose base address is not provably aligned to
    /// the pack width, forcing an unaligned vector memory operation.
    MisalignedPack,
    /// An array subscript references a loop variable that no enclosing
    /// loop defines.
    UnknownLoopVar,
    /// The Eq. (4) remapping sends two distinct (lane, iteration) pairs
    /// to the same element of the replicated array.
    NonInjectiveLayoutMap,
    /// A replication reads or writes outside its source or destination
    /// array.
    ReplicationOutOfBounds,
    /// The source or destination of a replication is written by the
    /// program, invalidating the copied data.
    ReplicatedArrayWritten,
    /// The rewritten program reads a replica element the population loop
    /// never wrote.
    UnpopulatedReplicaRead,
    /// Scalar and vectorized executions left different final memory.
    DifferentialMismatch,
    /// One of the two executions of the differential check failed.
    ExecutionFailed,
    /// A scalar is read before its first write: the read observes
    /// whatever the runtime seeded, which is rarely what the kernel
    /// author meant.
    UseBeforeDef,
    /// A store whose value no later read can observe.
    DeadStore,
    /// An array subscript provably evaluates outside the declared extent
    /// on some iteration.
    OutOfBoundsSubscript,
    /// Consecutive isomorphic stores form a contiguous pack candidate
    /// whose base alignment cannot be proven, so vectorizing it costs
    /// unaligned memory operations.
    MisalignmentRisk,
    /// A loop whose constant bounds prove a zero trip count: its body is
    /// dead code.
    LoopNeverExecutes,
    /// The memory-safety certificate proved an array access faults on
    /// some attained iteration (interval endpoints over the iteration
    /// box are attained, so this is a proof, not a may-fault estimate).
    ProvenFaultingAccess,
    /// The memory-safety certificate could not classify an array access:
    /// it executes with full bounds checks and its safety rests on the
    /// runtime check, not on a proof.
    UnprovenAccess,
    /// A store into an array cell that no statement ever reads and that a
    /// later store provably overwrites in full: nothing the store writes
    /// survives to the kernel outputs.
    DeadArrayStore,
    /// The symbolic validator found (and execution confirmed) an input on
    /// which the vectorized kernel and the scalar program diverge.
    SymbolicMismatch,
    /// The symbolic validator exhausted a resource budget and degraded to
    /// the differential check.
    SymbolicBudgetExceeded,
    /// The kernel leaves the fragment the symbolic validator models (or a
    /// symbolic mismatch could not be confirmed concretely), so the
    /// validator degraded to the differential check.
    SymbolicUnsupported,
}

impl LintCode {
    /// The stable `Vnnn` code printed in reports and asserted by tests.
    pub fn code(self) -> &'static str {
        match self {
            LintCode::ScheduleNotPermutation => "V100",
            LintCode::DependenceOrderViolated => "V101",
            LintCode::IntraPackDependence => "V102",
            LintCode::PackCycle => "V103",
            LintCode::LaneTypeMismatch => "V201",
            LintCode::PackTooWide => "V202",
            LintCode::OverlappingLaneDests => "V203",
            LintCode::MisalignedPack => "V204",
            LintCode::UnknownLoopVar => "V205",
            LintCode::NonInjectiveLayoutMap => "V301",
            LintCode::ReplicationOutOfBounds => "V302",
            LintCode::ReplicatedArrayWritten => "V303",
            LintCode::UnpopulatedReplicaRead => "V304",
            LintCode::DifferentialMismatch => "V401",
            LintCode::ExecutionFailed => "V402",
            LintCode::UseBeforeDef => "V500",
            LintCode::DeadStore => "V501",
            LintCode::OutOfBoundsSubscript => "V502",
            LintCode::MisalignmentRisk => "V503",
            LintCode::LoopNeverExecutes => "V504",
            LintCode::ProvenFaultingAccess => "V505",
            LintCode::UnprovenAccess => "V506",
            LintCode::DeadArrayStore => "V507",
            LintCode::SymbolicMismatch => "V600",
            LintCode::SymbolicBudgetExceeded => "V601",
            LintCode::SymbolicUnsupported => "V602",
        }
    }

    /// Every lint code in the catalogue, in `Vnnn` order.
    pub const ALL: [LintCode; 26] = [
        LintCode::ScheduleNotPermutation,
        LintCode::DependenceOrderViolated,
        LintCode::IntraPackDependence,
        LintCode::PackCycle,
        LintCode::LaneTypeMismatch,
        LintCode::PackTooWide,
        LintCode::OverlappingLaneDests,
        LintCode::MisalignedPack,
        LintCode::UnknownLoopVar,
        LintCode::NonInjectiveLayoutMap,
        LintCode::ReplicationOutOfBounds,
        LintCode::ReplicatedArrayWritten,
        LintCode::UnpopulatedReplicaRead,
        LintCode::DifferentialMismatch,
        LintCode::ExecutionFailed,
        LintCode::UseBeforeDef,
        LintCode::DeadStore,
        LintCode::OutOfBoundsSubscript,
        LintCode::MisalignmentRisk,
        LintCode::LoopNeverExecutes,
        LintCode::ProvenFaultingAccess,
        LintCode::UnprovenAccess,
        LintCode::DeadArrayStore,
        LintCode::SymbolicMismatch,
        LintCode::SymbolicBudgetExceeded,
        LintCode::SymbolicUnsupported,
    ];

    /// The inverse of [`LintCode::code`]: parses a stable `Vnnn` code
    /// back into the lint it names. Used when machine-readable reports
    /// (the `slp-driver` cache, `slpc check --json` consumers) are read
    /// back in.
    pub fn from_code(code: &str) -> Option<LintCode> {
        LintCode::ALL.into_iter().find(|c| c.code() == code)
    }

    /// The severity a finding of this code carries.
    ///
    /// Among the V1xx–V4xx kernel checks only [`LintCode::MisalignedPack`]
    /// is a warning: unaligned packs execute correctly (the VM charges
    /// the unaligned-access cost), all other findings mean the kernel is
    /// wrong. The V5xx source lints are warnings except
    /// [`LintCode::OutOfBoundsSubscript`] and
    /// [`LintCode::ProvenFaultingAccess`]: strided-interval endpoints
    /// over the iteration box are attained, so a flagged subscript
    /// really does escape the array on some iteration. Among the V6xx
    /// symbolic-validation codes only [`LintCode::SymbolicMismatch`] is an
    /// error (a confirmed miscompile); the two degrade codes record that
    /// the proof fell back to the differential check, which is legal.
    pub fn severity(self) -> Severity {
        match self {
            LintCode::MisalignedPack
            | LintCode::UseBeforeDef
            | LintCode::DeadStore
            | LintCode::MisalignmentRisk
            | LintCode::LoopNeverExecutes
            | LintCode::UnprovenAccess
            | LintCode::DeadArrayStore
            | LintCode::SymbolicBudgetExceeded
            | LintCode::SymbolicUnsupported => Severity::Warning,
            _ => Severity::Error,
        }
    }
}

impl fmt::Display for LintCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// Where a finding points: a block and the statements involved.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Span {
    /// The block the finding is in, if block-local.
    pub block: Option<BlockId>,
    /// The statements involved, in the order relevant to the finding.
    pub stmts: Vec<StmtId>,
}

impl Span {
    /// A span covering `stmts` of `block`.
    pub fn stmts(block: BlockId, stmts: Vec<StmtId>) -> Self {
        Span {
            block: Some(block),
            stmts,
        }
    }

    /// A span naming only a block.
    pub fn block(block: BlockId) -> Self {
        Span {
            block: Some(block),
            stmts: Vec::new(),
        }
    }

    /// A program-wide span (used by layout and differential findings).
    pub fn program() -> Self {
        Span::default()
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.block, self.stmts.is_empty()) {
            (None, true) => f.write_str("program"),
            (None, false) => write_stmts(f, &self.stmts),
            (Some(b), true) => write!(f, "{b}"),
            (Some(b), false) => {
                write!(f, "{b} ")?;
                write_stmts(f, &self.stmts)
            }
        }
    }
}

fn write_stmts(f: &mut fmt::Formatter<'_>, stmts: &[StmtId]) -> fmt::Result {
    for (i, s) in stmts.iter().enumerate() {
        if i > 0 {
            f.write_str(",")?;
        }
        write!(f, "{s}")?;
    }
    Ok(())
}

/// One finding of one checker.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Which lint fired.
    pub code: LintCode,
    /// Its severity (the code's default; carried so reports can be
    /// filtered without consulting the catalogue).
    pub severity: Severity,
    /// Where it points.
    pub span: Span,
    /// Human-readable explanation with the concrete values involved.
    pub message: String,
}

impl Diagnostic {
    /// Creates a diagnostic with the code's default severity.
    pub fn new(code: LintCode, span: Span, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: code.severity(),
            span,
            message: message.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}]: {} ({})",
            self.severity, self.code, self.message, self.span
        )
    }
}

/// The combined result of running checkers over one compiled kernel.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Report {
    /// Findings in the order produced (dependences, packs, layout,
    /// differential).
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// An empty report.
    pub fn new() -> Self {
        Report::default()
    }

    /// Appends one finding.
    pub fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    /// Appends many findings.
    pub fn extend(&mut self, ds: impl IntoIterator<Item = Diagnostic>) {
        self.diagnostics.extend(ds);
    }

    /// Whether no checker found anything at all.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Whether the kernel is sound: no error-severity finding.
    pub fn passes(&self) -> bool {
        self.error_count() == 0
    }

    /// Number of error-severity findings.
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity findings.
    pub fn warning_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count()
    }

    /// Whether some finding carries `code`.
    pub fn has(&self, code: LintCode) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.diagnostics.is_empty() {
            return f.write_str("no diagnostics");
        }
        for d in &self.diagnostics {
            writeln!(f, "{d}")?;
        }
        write!(
            f,
            "{} error(s), {} warning(s)",
            self.error_count(),
            self.warning_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable() {
        assert_eq!(LintCode::DependenceOrderViolated.code(), "V101");
        assert_eq!(LintCode::MisalignedPack.code(), "V204");
        assert_eq!(LintCode::NonInjectiveLayoutMap.code(), "V301");
        assert_eq!(LintCode::DifferentialMismatch.code(), "V401");
        assert_eq!(LintCode::LoopNeverExecutes.code(), "V504");
        assert_eq!(LintCode::ProvenFaultingAccess.code(), "V505");
        assert_eq!(LintCode::UnprovenAccess.code(), "V506");
        assert_eq!(LintCode::DeadArrayStore.code(), "V507");
        assert_eq!(LintCode::SymbolicMismatch.code(), "V600");
        assert_eq!(LintCode::SymbolicBudgetExceeded.code(), "V601");
        assert_eq!(LintCode::SymbolicUnsupported.code(), "V602");
    }

    #[test]
    fn from_code_inverts_code() {
        for code in LintCode::ALL {
            assert_eq!(LintCode::from_code(code.code()), Some(code));
        }
        assert_eq!(LintCode::from_code("V999"), None);
        assert_eq!(LintCode::from_code(""), None);
    }

    #[test]
    fn only_misalignment_is_a_warning() {
        for code in [
            LintCode::ScheduleNotPermutation,
            LintCode::DependenceOrderViolated,
            LintCode::IntraPackDependence,
            LintCode::PackCycle,
            LintCode::LaneTypeMismatch,
            LintCode::PackTooWide,
            LintCode::OverlappingLaneDests,
            LintCode::UnknownLoopVar,
            LintCode::NonInjectiveLayoutMap,
            LintCode::ReplicationOutOfBounds,
            LintCode::ReplicatedArrayWritten,
            LintCode::UnpopulatedReplicaRead,
            LintCode::DifferentialMismatch,
            LintCode::ExecutionFailed,
            LintCode::OutOfBoundsSubscript,
            LintCode::ProvenFaultingAccess,
            LintCode::SymbolicMismatch,
        ] {
            assert_eq!(code.severity(), Severity::Error, "{code}");
        }
        for code in [
            LintCode::MisalignedPack,
            LintCode::UseBeforeDef,
            LintCode::DeadStore,
            LintCode::MisalignmentRisk,
            LintCode::LoopNeverExecutes,
            LintCode::UnprovenAccess,
            LintCode::DeadArrayStore,
            LintCode::SymbolicBudgetExceeded,
            LintCode::SymbolicUnsupported,
        ] {
            assert_eq!(code.severity(), Severity::Warning, "{code}");
        }
    }

    #[test]
    fn report_tallies_and_renders() {
        let mut r = Report::new();
        assert!(r.is_clean() && r.passes());
        r.push(Diagnostic::new(
            LintCode::MisalignedPack,
            Span::block(slp_ir::BlockId(0)),
            "pack base at offset 1",
        ));
        assert!(!r.is_clean() && r.passes());
        r.push(Diagnostic::new(
            LintCode::DependenceOrderViolated,
            Span::stmts(slp_ir::BlockId(0), vec![StmtId::new(1), StmtId::new(0)]),
            "RAW S0 -> S1 reversed",
        ));
        assert!(!r.passes());
        assert_eq!(r.error_count(), 1);
        assert_eq!(r.warning_count(), 1);
        assert!(r.has(LintCode::MisalignedPack));
        let text = r.to_string();
        assert!(text.contains("error[V101]"), "{text}");
        assert!(text.contains("warning[V204]"), "{text}");
    }
}
