//! Property tests: for arbitrary generated kernels, everything the
//! pipeline emits passes the full slp-verify battery, and a
//! deliberately corrupted schedule is rejected.

use proptest::prelude::*;

use slp_core::{compile, BlockSchedule, MachineConfig, ScheduledItem, SlpConfig, Strategy};
use slp_ir::BlockDeps;
use slp_suite::{random_program, GeneratorConfig};
use slp_verify::{verify_kernel, verify_with_execution, LintCode};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every random program, compiled under every vectorizing strategy,
    /// passes the static checks and the differential translation
    /// validation.
    #[test]
    fn pipeline_output_always_verifies(seed in 0u64..1_000_000, sweeps in 0i64..3) {
        let config = GeneratorConfig {
            outer_sweeps: sweeps * 4,
            ..GeneratorConfig::default()
        };
        let program = random_program(seed, &config);
        let machine = MachineConfig::intel_dunnington();
        for (strategy, layout) in [
            (Strategy::Native, false),
            (Strategy::Baseline, false),
            (Strategy::Holistic, false),
            (Strategy::Holistic, true),
        ] {
            let mut cfg = SlpConfig::for_machine(machine.clone(), strategy);
            if layout {
                cfg = cfg.with_layout();
            }
            let kernel = compile(&program, &cfg);
            let report = verify_with_execution(&program, &kernel);
            prop_assert!(
                report.passes(),
                "seed {} under {:?}/layout={} failed:\n{}",
                seed, strategy, layout, report
            );
        }
    }

    /// Reversing the statement order of a block with at least one
    /// dependence always trips the dependence-preservation checker.
    #[test]
    fn corrupted_schedules_are_rejected(seed in 0u64..1_000_000) {
        let program = random_program(seed, &GeneratorConfig::default());
        let machine = MachineConfig::intel_dunnington();
        let mut kernel = compile(
            &program,
            &SlpConfig::for_machine(machine, Strategy::Scalar),
        );
        let blocks = kernel.program.blocks();
        let info = &blocks[0];
        let deps = BlockDeps::analyze_in(&info.block, &info.loops);
        // A block with no dependences at all stays valid in any order.
        prop_assume!(!deps.direct().is_empty());
        let reversed: Vec<ScheduledItem> = info
            .block
            .iter()
            .rev()
            .map(|s| ScheduledItem::Single(s.id()))
            .collect();
        kernel.schedules[0].1 = BlockSchedule::new(reversed);
        let report = verify_kernel(&kernel);
        prop_assert!(!report.passes(), "seed {seed}: corruption not caught");
        prop_assert!(
            report.has(LintCode::DependenceOrderViolated),
            "seed {seed}: wrong lint:\n{report}"
        );
    }
}
