//! Injected-bug fixtures: each test plants one specific illegal
//! construct in an otherwise well-formed kernel and asserts that the
//! intended lint — and its stable code — catches it.

use slp_core::{
    compile, BlockSchedule, CompiledKernel, MachineConfig, Replication, ScheduledItem, SlpConfig,
    Strategy, SuperwordStmt,
};
use slp_ir::{
    AccessVector, AffineExpr, Dest, Expr, Item, Loop, LoopHeader, Operand, Program, ScalarType,
    StmtId,
};
use slp_verify::{verify_kernel, verify_with_execution, LintCode, Report, Severity};

fn machine() -> MachineConfig {
    MachineConfig::intel_dunnington()
}

/// Compiles `src` under the scalar strategy: the schedule is the
/// program order, ready to be corrupted by the fixture.
fn scalar_kernel(src: &str) -> CompiledKernel {
    let program = slp_lang::compile(src).expect("fixture source compiles");
    compile(
        &program,
        &SlpConfig::for_machine(machine(), Strategy::Scalar),
    )
}

/// The statement ids of the kernel's first block, in program order.
fn block_stmts(kernel: &CompiledKernel) -> Vec<StmtId> {
    kernel.program.blocks()[0]
        .block
        .iter()
        .map(|s| s.id())
        .collect()
}

fn replace_first_schedule(kernel: &mut CompiledKernel, items: Vec<ScheduledItem>) {
    kernel.schedules[0].1 = BlockSchedule::new(items);
}

fn only_code(report: &Report, code: LintCode) {
    assert!(report.has(code), "expected {code}, got:\n{report}");
}

#[test]
fn reordered_dependent_pair_is_caught() {
    let mut kernel = scalar_kernel(
        "kernel dep { array A: f64[16]; scalar a: f64;
         for i in 0..8 { a = A[i]; A[i+8] = a * 2.0; } }",
    );
    let stmts = block_stmts(&kernel);
    // Swap the RAW-dependent pair: the use of `a` now runs first.
    replace_first_schedule(
        &mut kernel,
        vec![
            ScheduledItem::Single(stmts[1]),
            ScheduledItem::Single(stmts[0]),
        ],
    );
    let report = verify_kernel(&kernel);
    only_code(&report, LintCode::DependenceOrderViolated);
    assert!(!report.passes());
}

#[test]
fn misaligned_pack_is_caught() {
    let mut kernel = scalar_kernel(
        "kernel mis { array A: f64[32]; array B: f64[32];
         for i in 0..8 { B[2*i+1] = A[2*i+1] * 2.0; B[2*i+2] = A[2*i+2] * 2.0; } }",
    );
    let stmts = block_stmts(&kernel);
    // <B[2i+1], B[2i+2]> is contiguous but starts one element past an
    // aligned boundary — a legal pack, but it forces unaligned vector
    // memory operations.
    replace_first_schedule(
        &mut kernel,
        vec![ScheduledItem::Superword(SuperwordStmt::new(vec![
            stmts[0], stmts[1],
        ]))],
    );
    let report = verify_kernel(&kernel);
    only_code(&report, LintCode::MisalignedPack);
    // Misalignment is a performance hazard, not a soundness violation.
    assert!(report.passes());
    assert!(report
        .diagnostics
        .iter()
        .all(|d| d.severity == Severity::Warning));
}

#[test]
fn non_injective_layout_map_is_caught() {
    let mut kernel = scalar_kernel(
        "kernel lay { array A: f64[16]; array B: f64[16];
         for i in 0..8 { B[i] = A[i] + A[i+1]; } }",
    );
    let a = kernel.program.array_ids().next().expect("array A");
    let i = kernel.program.blocks()[0].loops[0].var;
    let rep = kernel
        .program
        .add_array("A_rep".to_string(), ScalarType::F64, vec![32], false);
    // Both lanes map to the same replica element 2i, but copy different
    // source elements A[i] and A[i+1]: lane 1 clobbers lane 0.
    kernel.replications.push(Replication {
        source: a,
        dest: rep,
        lanes: vec![
            AccessVector::new(vec![AffineExpr::var(i)]),
            AccessVector::new(vec![AffineExpr::var(i).offset(1)]),
        ],
        dest_exprs: vec![AffineExpr::var(i).scaled(2), AffineExpr::var(i).scaled(2)],
        loops: vec![kernel.program.blocks()[0].loops[0]],
    });
    let report = verify_kernel(&kernel);
    only_code(&report, LintCode::NonInjectiveLayoutMap);
    assert!(!report.passes());
}

#[test]
fn schedule_permutation_failures_are_caught() {
    let src = "kernel perm { array A: f64[16];
         for i in 0..8 { A[i] = A[i] * 2.0; A[i+8] = 1.0; } }";
    // Missing statement.
    let mut kernel = scalar_kernel(src);
    let stmts = block_stmts(&kernel);
    replace_first_schedule(&mut kernel, vec![ScheduledItem::Single(stmts[0])]);
    only_code(&verify_kernel(&kernel), LintCode::ScheduleNotPermutation);
    // Duplicated statement.
    let mut kernel = scalar_kernel(src);
    replace_first_schedule(
        &mut kernel,
        vec![
            ScheduledItem::Single(stmts[0]),
            ScheduledItem::Single(stmts[1]),
            ScheduledItem::Single(stmts[0]),
        ],
    );
    only_code(&verify_kernel(&kernel), LintCode::ScheduleNotPermutation);
    // Foreign statement id.
    let mut kernel = scalar_kernel(src);
    replace_first_schedule(
        &mut kernel,
        vec![
            ScheduledItem::Single(stmts[0]),
            ScheduledItem::Single(stmts[1]),
            ScheduledItem::Single(StmtId::new(999)),
        ],
    );
    only_code(&verify_kernel(&kernel), LintCode::ScheduleNotPermutation);
}

#[test]
fn intra_pack_dependence_is_caught() {
    let mut kernel = scalar_kernel(
        "kernel intra { array A: f64[16]; array B: f64[16];
         for i in 0..8 { A[i] = A[i] * 2.0; B[i] = A[i] * 3.0; } }",
    );
    let stmts = block_stmts(&kernel);
    // B[i] reads the A[i] the first lane writes: RAW inside the pack.
    replace_first_schedule(
        &mut kernel,
        vec![ScheduledItem::Superword(SuperwordStmt::new(vec![
            stmts[0], stmts[1],
        ]))],
    );
    only_code(&verify_kernel(&kernel), LintCode::IntraPackDependence);
}

#[test]
fn pack_cycle_is_caught() {
    let mut kernel = scalar_kernel(
        "kernel cyc { array A: f64[16]; scalar a, b, c, d: f64;
         for i in 0..8 { a = A[i]; b = a * 2.0; c = A[i+1]; d = c * 2.0; } }",
    );
    let s = block_stmts(&kernel);
    // P = <S0, S3> and Q = <S1, S2>: S0 -> S1 forces P before Q while
    // S2 -> S3 forces Q before P.
    replace_first_schedule(
        &mut kernel,
        vec![
            ScheduledItem::Superword(SuperwordStmt::new(vec![s[0], s[3]])),
            ScheduledItem::Superword(SuperwordStmt::new(vec![s[1], s[2]])),
        ],
    );
    only_code(&verify_kernel(&kernel), LintCode::PackCycle);
}

#[test]
fn lane_type_mismatch_is_caught() {
    // Built through the IR so the two lanes can have different element
    // types (the frontend would never produce this).
    let mut p = Program::new("ty".to_string());
    let x = p.add_scalar("x".to_string(), ScalarType::F32);
    let y = p.add_scalar("y".to_string(), ScalarType::F64);
    let i = p.add_loop_var("i");
    let s0 = p.make_stmt(Dest::Scalar(x), Expr::Copy(Operand::Const(1.0)));
    let s1 = p.make_stmt(Dest::Scalar(y), Expr::Copy(Operand::Const(2.0)));
    let (id0, id1) = (s0.id(), s1.id());
    p.push_item(Item::Loop(Loop {
        header: LoopHeader {
            var: i,
            lower: 0,
            upper: 4,
            step: 1,
        },
        body: vec![Item::Stmt(s0), Item::Stmt(s1)],
    }));
    let mut kernel = compile(&p, &SlpConfig::for_machine(machine(), Strategy::Scalar));
    replace_first_schedule(
        &mut kernel,
        vec![ScheduledItem::Superword(SuperwordStmt::new(vec![id0, id1]))],
    );
    only_code(&verify_kernel(&kernel), LintCode::LaneTypeMismatch);
}

#[test]
fn pack_wider_than_the_datapath_is_caught() {
    let mut kernel = scalar_kernel(
        "kernel wide { array A: f64[32]; array B: f64[32];
         for i in 0..4 {
             B[4*i] = A[4*i] * 2.0; B[4*i+1] = A[4*i+1] * 2.0;
             B[4*i+2] = A[4*i+2] * 2.0; B[4*i+3] = A[4*i+3] * 2.0;
         } }",
    );
    let s = block_stmts(&kernel);
    // Four f64 lanes need 256 bits; the Dunnington datapath has 128.
    replace_first_schedule(
        &mut kernel,
        vec![ScheduledItem::Superword(SuperwordStmt::new(vec![
            s[0], s[1], s[2], s[3],
        ]))],
    );
    only_code(&verify_kernel(&kernel), LintCode::PackTooWide);
}

#[test]
fn overlapping_lane_destinations_are_caught() {
    let mut kernel = scalar_kernel(
        "kernel lap { array A: f64[16]; array B: f64[16];
         for i in 0..8 { B[i] = A[i] * 2.0; B[i] = A[i] * 3.0; } }",
    );
    let s = block_stmts(&kernel);
    replace_first_schedule(
        &mut kernel,
        vec![ScheduledItem::Superword(SuperwordStmt::new(vec![
            s[0], s[1],
        ]))],
    );
    only_code(&verify_kernel(&kernel), LintCode::OverlappingLaneDests);
}

#[test]
fn out_of_scope_loop_variable_is_caught() {
    // A[j] inside the i-loop, with j defined by no enclosing loop.
    let mut p = Program::new("scope".to_string());
    let a = p.add_array("A".to_string(), ScalarType::F64, vec![16], true);
    let i = p.add_loop_var("i");
    let j = p.add_loop_var("j");
    let s = p.make_stmt(
        Dest::Array(slp_ir::ArrayRef::new(
            a,
            AccessVector::new(vec![AffineExpr::var(i)]),
        )),
        Expr::Copy(Operand::Array(slp_ir::ArrayRef::new(
            a,
            AccessVector::new(vec![AffineExpr::var(j)]),
        ))),
    );
    p.push_item(Item::Loop(Loop {
        header: LoopHeader {
            var: i,
            lower: 0,
            upper: 8,
            step: 1,
        },
        body: vec![Item::Stmt(s)],
    }));
    let kernel = compile(&p, &SlpConfig::for_machine(machine(), Strategy::Scalar));
    only_code(&verify_kernel(&kernel), LintCode::UnknownLoopVar);
}

#[test]
fn replication_out_of_bounds_is_caught() {
    let mut kernel = scalar_kernel(
        "kernel oob { array A: f64[16]; array B: f64[16];
         for i in 0..8 { B[i] = A[i] * 2.0; } }",
    );
    let a = kernel.program.array_ids().next().expect("array A");
    let i = kernel.program.blocks()[0].loops[0].var;
    let rep = kernel
        .program
        .add_array("A_rep".to_string(), ScalarType::F64, vec![16], false);
    // 4i runs to 28, past the 16-element replica.
    kernel.replications.push(Replication {
        source: a,
        dest: rep,
        lanes: vec![AccessVector::new(vec![AffineExpr::var(i)])],
        dest_exprs: vec![AffineExpr::var(i).scaled(4)],
        loops: vec![kernel.program.blocks()[0].loops[0]],
    });
    only_code(&verify_kernel(&kernel), LintCode::ReplicationOutOfBounds);
}

#[test]
fn written_replication_source_is_caught() {
    let mut kernel = scalar_kernel(
        "kernel wr { array A: f64[16]; array B: f64[16];
         for i in 0..8 { A[i] = A[i] * 2.0; B[i] = A[i] + 1.0; } }",
    );
    let a = kernel.program.array_ids().next().expect("array A");
    let i = kernel.program.blocks()[0].loops[0].var;
    let rep = kernel
        .program
        .add_array("A_rep".to_string(), ScalarType::F64, vec![16], false);
    // A is written inside the loop, so a pre-loop copy of it goes stale.
    kernel.replications.push(Replication {
        source: a,
        dest: rep,
        lanes: vec![AccessVector::new(vec![AffineExpr::var(i)])],
        dest_exprs: vec![AffineExpr::var(i)],
        loops: vec![kernel.program.blocks()[0].loops[0]],
    });
    only_code(&verify_kernel(&kernel), LintCode::ReplicatedArrayWritten);
}

#[test]
fn unpopulated_replica_read_is_caught() {
    // The program reads R[2i+1] but the population loop writes R[2i].
    let mut p = Program::new("pop".to_string());
    let a = p.add_array("A".to_string(), ScalarType::F64, vec![16], true);
    let r = p.add_array("R".to_string(), ScalarType::F64, vec![16], false);
    let b = p.add_array("B".to_string(), ScalarType::F64, vec![16], false);
    let i = p.add_loop_var("i");
    let header = LoopHeader {
        var: i,
        lower: 0,
        upper: 8,
        step: 1,
    };
    let s = p.make_stmt(
        Dest::Array(slp_ir::ArrayRef::new(
            b,
            AccessVector::new(vec![AffineExpr::var(i)]),
        )),
        Expr::Copy(Operand::Array(slp_ir::ArrayRef::new(
            r,
            AccessVector::new(vec![AffineExpr::var(i).scaled(2).offset(1)]),
        ))),
    );
    p.push_item(Item::Loop(Loop {
        header,
        body: vec![Item::Stmt(s)],
    }));
    let mut kernel = compile(&p, &SlpConfig::for_machine(machine(), Strategy::Scalar));
    kernel.replications.push(Replication {
        source: a,
        dest: r,
        lanes: vec![AccessVector::new(vec![AffineExpr::var(i)])],
        dest_exprs: vec![AffineExpr::var(i).scaled(2)],
        loops: vec![header],
    });
    only_code(&verify_kernel(&kernel), LintCode::UnpopulatedReplicaRead);
}

#[test]
fn differential_mismatch_is_caught() {
    let program = slp_lang::compile(
        "kernel diff { array A: f64[16]; array B: f64[16];
         for i in 0..8 { B[i] = A[i] * 2.0; } }",
    )
    .expect("compiles");
    let mut kernel = compile(
        &program,
        &SlpConfig::for_machine(machine(), Strategy::Scalar),
    );
    // Corrupt the compiled body: the kernel now multiplies by 3.
    kernel.program.for_each_stmt_mut(|s| {
        if let Expr::Binary(_, _, op) = s.expr_mut() {
            *op = Operand::Const(3.0);
        }
    });
    let report = verify_with_execution(&program, &kernel);
    only_code(&report, LintCode::DifferentialMismatch);
    assert!(!report.passes());
}

#[test]
fn failing_execution_is_reported() {
    let program = slp_lang::compile(
        "kernel crash { array A: f64[16]; array B: f64[16];
         for i in 0..8 { B[i] = A[i] * 2.0; } }",
    )
    .expect("compiles");
    let mut kernel = compile(
        &program,
        &SlpConfig::for_machine(machine(), Strategy::Scalar),
    );
    // Push every read far out of bounds.
    kernel.program.for_each_stmt_mut(|s| {
        if let Expr::Binary(_, Operand::Array(r), _) = s.expr_mut() {
            let shifted = r.access.dim(0).offset(1000);
            r.access = AccessVector::new(vec![shifted]);
        }
    });
    let report = verify_with_execution(&program, &kernel);
    only_code(&report, LintCode::ExecutionFailed);
}

#[test]
fn clean_kernels_report_nothing() {
    for name in ["lbm", "soplex", "cg"] {
        let program = slp_suite::kernel(name, 1);
        for (strategy, layout) in [
            (Strategy::Baseline, false),
            (Strategy::Holistic, false),
            (Strategy::Holistic, true),
        ] {
            let mut cfg = SlpConfig::for_machine(machine(), strategy);
            if layout {
                cfg = cfg.with_layout();
            }
            let kernel = compile(&program, &cfg);
            let report = verify_with_execution(&program, &kernel);
            assert!(
                report.passes(),
                "{name} under {strategy:?}/layout={layout}:\n{report}"
            );
        }
    }
}
