//! Meta-tests tying each benchmark kernel's structure to the evaluation
//! role DESIGN.md assigns it: the Figure 16 categories and the Figure 19
//! layout winners are properties of the kernels' access patterns, so the
//! patterns themselves are pinned here.

use slp_ir::{Dest, Operand, Program};

fn array_ops(p: &Program) -> Vec<(String, Vec<i64>)> {
    // (array name, distinct innermost-coefficient list) over all reads.
    let mut out: Vec<(String, Vec<i64>)> = Vec::new();
    p.for_each_stmt(|s| {
        for u in s.uses() {
            if let Operand::Array(r) = u {
                let name = p.array(r.array).name.clone();
                let coeff = r
                    .access
                    .dims()
                    .last()
                    .map(|e| e.terms().map(|(_, c)| c).max().unwrap_or(0))
                    .unwrap_or(0);
                match out.iter_mut().find(|(n, _)| *n == name) {
                    Some((_, cs)) => {
                        if !cs.contains(&coeff) {
                            cs.push(coeff);
                        }
                    }
                    None => out.push((name, vec![coeff])),
                }
            }
        }
    });
    out
}

#[test]
fn layout_winners_have_strided_read_only_tables_under_outer_sweeps() {
    // The kernels DESIGN.md marks as §5.2 replication targets must have a
    // read-only array accessed with stride > 2 inside a ≥2-deep nest.
    for name in ["gromacs", "calculix", "ua", "ft", "wrf"] {
        let p = slp_suite::kernel(name, 1);
        let strided: Vec<String> = array_ops(&p)
            .into_iter()
            .filter(|(n, cs)| {
                cs.iter().any(|&c| c >= 4) && {
                    let id = p
                        .array_ids()
                        .find(|&a| p.array(a).name == *n)
                        .expect("named array");
                    p.array_is_read_only(id)
                }
            })
            .map(|(n, _)| n)
            .collect();
        assert!(
            !strided.is_empty(),
            "{name} lost its strided read-only table"
        );
        let max_depth = p.blocks().iter().map(|b| b.loops.len()).max().unwrap_or(0);
        assert!(
            max_depth >= 2,
            "{name} needs an outer sweep for replication to pay"
        );
    }
}

#[test]
fn contiguous_kernels_have_no_strided_reads() {
    // The Native == SLP == Global kernels are pure unit-stride streams.
    for name in ["soplex", "sp", "cg"] {
        let p = slp_suite::kernel(name, 1);
        for (array, coeffs) in array_ops(&p) {
            if array == "SERIAL_" {
                continue; // the calibration section is scalar-serial
            }
            assert!(
                coeffs.iter().all(|&c| c <= 1),
                "{name}: array {array} has strided access {coeffs:?}"
            );
        }
    }
}

#[test]
fn scalar_staged_kernels_defeat_the_native_vectorizer() {
    // Kernels staged through scalar temporaries must contain scalar
    // destinations (what Native rejects and SLP/Global handle).
    for name in ["lbm", "milc", "namd", "povray", "wrf", "cactusADM"] {
        let p = slp_suite::kernel(name, 1);
        let mut scalar_dests = 0;
        p.for_each_stmt(|s| {
            if matches!(s.dest(), Dest::Scalar(_)) {
                scalar_dests += 1;
            }
        });
        assert!(scalar_dests > 0, "{name} should stage through scalars");
    }
}

#[test]
fn every_kernel_has_a_serial_calibration_section() {
    for spec in slp_suite::catalog() {
        let src = slp_suite::source(spec.name, 1);
        assert!(
            src.contains("SERIAL_"),
            "{} lost its serial section",
            spec.name
        );
        let p = slp_suite::kernel(spec.name, 1);
        p.validate()
            .unwrap_or_else(|e| panic!("{} invalid: {e:?}", spec.name));
    }
}

#[test]
fn scales_multiply_problem_sizes() {
    let small = slp_suite::kernel("mg", 1);
    let big = slp_suite::kernel("mg", 4);
    let extent = |p: &Program| p.arrays().iter().map(|a| a.len()).sum::<i64>();
    assert!(extent(&big) > 3 * extent(&small));
    // Statement counts are per-iteration and stay fixed.
    assert_eq!(small.stmt_count(), big.stmt_count());
}
