//! Random-program generation for property-based testing.
//!
//! Produces arbitrary *valid* kernels — well-typed, in-bounds, loop
//! bounds matched to array extents — so the property tests can assert,
//! for any program, that every optimization strategy preserves execution
//! semantics and every produced schedule satisfies the §4.1 constraints.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use slp_ir::{
    AccessVector, AffineExpr, ArrayId, ArrayRef, BinOp, CmpOp, Dest, Expr, Item, Loop, LoopHeader,
    Operand, Program, ScalarType, UnOp, VarId,
};

/// Shape knobs for the generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GeneratorConfig {
    /// Number of arrays to declare.
    pub arrays: usize,
    /// Number of scalars to declare.
    pub scalars: usize,
    /// Statements in the loop body.
    pub body_stmts: usize,
    /// Loop trip count.
    pub trip_count: i64,
    /// Largest affine stride used in subscripts.
    pub max_stride: i64,
    /// Wrap the kernel loop in an outer sweep of this many iterations
    /// (0 = no outer loop). Outer sweeps exercise invariant-pack
    /// hoisting and the §5.2 replication gate.
    pub outer_sweeps: i64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            arrays: 3,
            scalars: 6,
            body_stmts: 10,
            trip_count: 16,
            max_stride: 4,
            outer_sweeps: 0,
        }
    }
}

/// Generates a deterministic pseudo-random kernel from `seed`.
///
/// The program is a single counted loop whose body mixes scalar and array
/// statements over all four expression shapes. Array subscripts are
/// affine in the loop variable with strides in `1..=max_stride` and
/// offsets small enough to stay in bounds for every iteration.
///
/// # Examples
///
/// ```
/// let p = slp_suite::random_program(42, &slp_suite::GeneratorConfig::default());
/// assert!(p.stmt_count() > 0);
/// // Deterministic: the same seed gives the same program.
/// let q = slp_suite::random_program(42, &slp_suite::GeneratorConfig::default());
/// assert_eq!(format!("{p}"), format!("{q}"));
/// ```
pub fn random_program(seed: u64, config: &GeneratorConfig) -> Program {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut p = Program::new(format!("gen{seed}"));
    // Array extents cover max_stride * trip + slack for offsets.
    let extent = config.max_stride * config.trip_count + 2 * config.max_stride + 4;
    let arrays: Vec<ArrayId> = (0..config.arrays.max(1))
        .map(|k| p.add_array(format!("A{k}"), ScalarType::F64, vec![extent], true))
        .collect();
    let scalars: Vec<VarId> = (0..config.scalars.max(1))
        .map(|k| p.add_scalar(format!("s{k}"), ScalarType::F64))
        .collect();
    let i = p.add_loop_var("i");

    let array_ref = |rng: &mut StdRng| -> ArrayRef {
        let a = arrays[rng.gen_range(0..arrays.len())];
        let stride = rng.gen_range(1..=config.max_stride);
        let offset = rng.gen_range(0..=2 * config.max_stride);
        ArrayRef::new(
            a,
            AccessVector::new(vec![AffineExpr::var(i).scaled(stride).offset(offset)]),
        )
    };
    let operand = |rng: &mut StdRng| -> Operand {
        match rng.gen_range(0..10) {
            0..=3 => Operand::Scalar(scalars[rng.gen_range(0..scalars.len())]),
            4..=7 => Operand::Array(array_ref(rng)),
            // Constants away from 0 keep div/sqrt well-behaved.
            _ => Operand::Const(0.5 + rng.gen_range(0..8) as f64 * 0.25),
        }
    };

    let mut body = Vec::with_capacity(config.body_stmts);
    for _ in 0..config.body_stmts.max(1) {
        let dest: Dest = if rng.gen_bool(0.5) {
            scalars[rng.gen_range(0..scalars.len())].into()
        } else {
            array_ref(&mut rng).into()
        };
        let expr = match rng.gen_range(0..10) {
            0 => Expr::Copy(operand(&mut rng)),
            1 => Expr::Unary(
                // sqrt over seeded positive data stays real; neg and abs
                // are always safe.
                [UnOp::Neg, UnOp::Abs, UnOp::Sqrt][rng.gen_range(0..3usize)],
                operand(&mut rng),
            ),
            2..=6 => {
                let op = [BinOp::Add, BinOp::Sub, BinOp::Mul, BinOp::Min, BinOp::Max]
                    [rng.gen_range(0..5usize)];
                Expr::Binary(op, operand(&mut rng), operand(&mut rng))
            }
            7 => Expr::MulAdd(operand(&mut rng), operand(&mut rng), operand(&mut rng)),
            // Predicated select — what the if-converter lowers branches
            // to, so random programs exercise masked superwords too.
            _ => {
                let ops = CmpOp::all();
                Expr::Select(
                    ops[rng.gen_range(0..ops.len())],
                    operand(&mut rng),
                    operand(&mut rng),
                    operand(&mut rng),
                    operand(&mut rng),
                )
            }
        };
        let stmt = p.make_stmt(dest, expr);
        body.push(Item::Stmt(stmt));
    }
    let inner = Item::Loop(Loop {
        header: LoopHeader {
            var: i,
            lower: 0,
            upper: config.trip_count,
            step: 1,
        },
        body,
    });
    if config.outer_sweeps > 0 {
        let t = p.add_loop_var("t");
        p.push_item(Item::Loop(Loop {
            header: LoopHeader {
                var: t,
                lower: 0,
                upper: config.outer_sweeps,
                step: 1,
            },
            body: vec![inner],
        }));
    } else {
        p.push_item(inner);
    }
    p
}

/// Generates a named corpus of `count` kernel *sources* for
/// batch-compiler stress tests.
///
/// Kernels are deterministic in `seed` and vary in shape (body size,
/// trip count, stride mix, outer sweeps) so a batch over the corpus
/// exercises cheap and expensive compiles side by side. Each entry is
/// `(kernel name, slp-lang source)` — sources rather than programs, so
/// callers exercise their full read→parse→validate→compile front-end.
///
/// # Examples
///
/// ```
/// let corpus = slp_suite::corpus(7, 4);
/// assert_eq!(corpus.len(), 4);
/// for (name, src) in &corpus {
///     let p = slp_lang::compile(src).expect("corpus sources parse");
///     assert_eq!(p.name(), name);
/// }
/// ```
pub fn corpus(seed: u64, count: usize) -> Vec<(String, String)> {
    (0..count)
        .map(|k| {
            let config = GeneratorConfig {
                arrays: 2 + k % 3,
                scalars: 3 + k % 5,
                body_stmts: 6 + (k % 4) * 4,
                trip_count: 8 << (k % 3),
                max_stride: 1 + (k % 4) as i64,
                outer_sweeps: if k % 5 == 4 { 3 } else { 0 },
            };
            let p = random_program(seed.wrapping_add(k as u64), &config);
            (p.name().to_string(), p.to_source())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism_per_seed() {
        let c = GeneratorConfig::default();
        let a = random_program(7, &c);
        let b = random_program(7, &c);
        assert_eq!(a, b);
        let other = random_program(8, &c);
        assert_ne!(format!("{a}"), format!("{other}"));
    }

    #[test]
    fn respects_config_shape() {
        let c = GeneratorConfig {
            arrays: 2,
            scalars: 3,
            body_stmts: 7,
            trip_count: 8,
            max_stride: 2,
            outer_sweeps: 0,
        };
        let p = random_program(1, &c);
        assert_eq!(p.arrays().len(), 2);
        assert_eq!(p.scalars().len(), 3);
        assert_eq!(p.stmt_count(), 7);
        let blocks = p.blocks();
        assert_eq!(blocks[0].loops[0].upper, 8);
    }

    #[test]
    fn outer_sweeps_nest_the_kernel_loop() {
        let c = GeneratorConfig {
            outer_sweeps: 4,
            ..GeneratorConfig::default()
        };
        let p = random_program(3, &c);
        let blocks = p.blocks();
        assert_eq!(blocks[0].loops.len(), 2);
        assert_eq!(blocks[0].loops[0].upper, 4);
        p.validate().expect("nested generation stays valid");
    }

    #[test]
    fn selects_appear_across_seeds() {
        // The branchy arm must actually fire so downstream fuzzers and
        // property tests see masked superwords, not just straight-line math.
        let c = GeneratorConfig::default();
        let hits = (0..20)
            .filter(|&seed| {
                let p = random_program(seed, &c);
                p.blocks().iter().any(|info| {
                    info.block
                        .iter()
                        .any(|s| matches!(s.expr(), Expr::Select(..)))
                })
            })
            .count();
        assert!(hits >= 10, "only {hits}/20 seeds produced a select");
    }

    #[test]
    fn generated_subscripts_stay_in_bounds() {
        // Evaluate every access at the extreme loop values.
        for seed in 0..20 {
            let c = GeneratorConfig::default();
            let p = random_program(seed, &c);
            let h = p.blocks()[0].loops[0];
            for info in p.blocks() {
                for s in info.block.iter() {
                    let mut refs: Vec<ArrayRef> = s
                        .uses()
                        .iter()
                        .filter_map(|o| o.as_array().cloned())
                        .collect();
                    if let Dest::Array(r) = s.dest() {
                        refs.push(r.clone());
                    }
                    for r in refs {
                        for v in [h.lower, h.upper - 1] {
                            let idx = r.access.eval(&[(h.var, v)]);
                            assert!(
                                p.array(r.array).in_bounds(&idx),
                                "seed {seed}: {idx:?} out of bounds"
                            );
                        }
                    }
                }
            }
        }
    }
}
