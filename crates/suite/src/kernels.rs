//! The sixteen benchmark kernels of the evaluation (paper Table 3).
//!
//! The paper evaluates on the C/C++ floating-point side of SPEC2006 plus
//! six NAS kernels. Their sources are not redistributable (and far larger
//! than the basic blocks the optimizer actually sees), so each benchmark
//! is represented here by a synthetic kernel in the `slp-lang`
//! mini-language that mimics the *computational character* of the
//! original's hot loops — the access patterns, operator mix and
//! superword-reuse structure that determine how each SLP strategy fares.
//! The kernels deliberately span the paper's three improvement categories
//! (Figure 16): some are plain contiguous streams every vectorizer
//! handles, some have moderate reuse, and some have the interleaved /
//! permuted / scalar-temp reuse structure only the holistic optimizer
//! exploits; a subset has the strided read-only accesses that the §5.2
//! layout replication targets (Figure 19's seven layout winners).

use std::fmt;

/// Which benchmark suite a kernel models (Table 3's two halves).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SuiteKind {
    /// SPEC CPU2006 floating-point.
    Spec2006,
    /// NAS Parallel Benchmarks.
    Nas,
}

impl fmt::Display for SuiteKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SuiteKind::Spec2006 => write!(f, "SPEC2006"),
            SuiteKind::Nas => write!(f, "NAS"),
        }
    }
}

/// Metadata of one benchmark kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchmarkSpec {
    /// Benchmark name (matching Table 3).
    pub name: &'static str,
    /// The Table 3 description of the original program.
    pub description: &'static str,
    /// Which suite it belongs to.
    pub suite: SuiteKind,
    /// Serial fraction used by the Figure 21 multicore model (NAS only
    /// in the paper's experiments, defined for all).
    pub serial_fraction: f64,
}

/// The full benchmark catalog, in Table 3 order.
pub fn catalog() -> Vec<BenchmarkSpec> {
    use SuiteKind::*;
    vec![
        spec(
            "cactusADM",
            "Solving the Einstein evolution equations",
            Spec2006,
            0.06,
        ),
        spec(
            "soplex",
            "Linear programming solver using simplex algorithm",
            Spec2006,
            0.10,
        ),
        spec("lbm", "Lattice Boltzmann method", Spec2006, 0.04),
        spec(
            "milc",
            "Simulations of 3-D SU(3) lattice gauge theory",
            Spec2006,
            0.05,
        ),
        spec(
            "povray",
            "Ray-tracing: a rendering technique",
            Spec2006,
            0.12,
        ),
        spec("gromacs", "Performing molecular dynamics", Spec2006, 0.07),
        spec(
            "calculix",
            "Setting up finite element equations and solving them",
            Spec2006,
            0.09,
        ),
        spec(
            "dealII",
            "Object oriented finite element software library",
            Spec2006,
            0.08,
        ),
        spec("wrf", "Weather research and forecasting", Spec2006, 0.06),
        spec(
            "namd",
            "Simulation of large biomolecular systems",
            Spec2006,
            0.05,
        ),
        spec("ua", "Unstructured adaptive 3-D", Nas, 0.08),
        spec("ft", "Fast fourier transform (FFT)", Nas, 0.06),
        spec("bt", "Block tridiagonal", Nas, 0.05),
        spec("sp", "Scalar pentadiagonal", Nas, 0.05),
        spec("mg", "Multigrid to solve the 3-D poisson PDE", Nas, 0.07),
        spec("cg", "Conjugate gradient", Nas, 0.04),
    ]
}

fn spec(
    name: &'static str,
    description: &'static str,
    suite: SuiteKind,
    serial_fraction: f64,
) -> BenchmarkSpec {
    BenchmarkSpec {
        name,
        description,
        suite,
        serial_fraction,
    }
}

/// Looks up a benchmark's metadata by name.
pub fn spec_of(name: &str) -> Option<BenchmarkSpec> {
    catalog().into_iter().find(|s| s.name == name)
}

/// The kernel source of benchmark `name` at problem scale `scale`
/// (`scale = 1` is the test size; benches use larger scales).
///
/// # Panics
///
/// Panics if `name` is not in the catalog or `scale` is zero.
pub fn source(name: &str, scale: usize) -> String {
    assert!(scale > 0, "scale must be positive");
    let n = 64 * scale;
    let body = raw_source(name, n);
    with_serial_section(body, serial_iters(name) * n as i64)
}

/// How many serial-epilogue iterations (per unit of `n`) a benchmark
/// carries. Real applications spend most of their time outside the
/// SLP-able hot blocks; this loop-carried recurrence models that
/// non-vectorizable remainder and calibrates the end-to-end reduction
/// magnitudes to the paper's range. The per-benchmark values spread the
/// suite over Figure 16's three improvement categories.
fn serial_iters(name: &str) -> i64 {
    match name {
        "cactusADM" => 4,
        "soplex" => 8,
        "lbm" => 4,
        "milc" => 6,
        "povray" => 10,
        "gromacs" => 6,
        "calculix" => 8,
        "dealII" => 10,
        "wrf" => 8,
        "namd" => 4,
        "ua" => 6,
        "ft" => 5,
        "bt" => 4,
        "sp" => 6,
        "mg" => 5,
        "cg" => 8,
        _ => 6,
    }
}

/// Splices the serial (loop-carried, unvectorizable) section into a
/// kernel: declarations after the opening brace, the recurrence loop
/// before the closing brace.
fn with_serial_section(src: String, iters: i64) -> String {
    let open = src.find('{').expect("kernel body");
    let close = src.rfind('}').expect("kernel body");
    let decls = format!(
        "\n                array SERIAL_: f64[{iters}];\n                scalar serial_acc: f64;\n"
    );
    let epilogue = format!(
        "                for s_ in 0..{iters} {{\n                    serial_acc = serial_acc + SERIAL_[s_] * 0.97;\n                    SERIAL_[s_] = serial_acc;\n                }}\n            "
    );
    let mut out = String::with_capacity(src.len() + decls.len() + epilogue.len());
    out.push_str(&src[..=open]);
    out.push_str(&decls);
    out.push_str(&src[open + 1..close]);
    out.push_str(&epilogue);
    out.push_str(&src[close..]);
    out
}

fn raw_source(name: &str, n: usize) -> String {
    match name {
        // 3-point stencil over the evolved field with scalar temporaries:
        // moderate reuse (the <l,r> and <c,c> packs recur).
        "cactusADM" => format!(
            "kernel cactusADM {{
                const N = {n};
                array U: f64[N+4]; array V: f64[N+4]; array K: f64[N+4];
                scalar l, c, r, lap: f64;
                for i in 0..N {{
                    l = U[i];
                    c = U[i+1];
                    r = U[i+2];
                    lap = l + r;
                    V[i+1] = c + 0.1 * lap;
                    K[i+1] = c + lap * -0.1;
                }}
            }}"
        ),
        // Simplex pivot row update: pure contiguous mul-add streams —
        // every vectorizer (Native, SLP, Global) finds the same code.
        "soplex" => format!(
            "kernel soplex {{
                const N = {n};
                array R: f64[N]; array P: f64[N]; array W: f64[N];
                scalar alpha: f64;
                for t in 0..4 {{
                    for j in 0..N {{
                        R[j] = R[j] + alpha * P[j];
                        W[j] = W[j] + alpha * R[j];
                    }}
                }}
            }}"
        ),
        // Stream-collide over two interleaved distribution functions,
        // staged through scalar temporaries: adjacent loads seed the
        // baseline SLP too, but scalar destinations stop Native.
        "lbm" => format!(
            "kernel lbm {{
                const N = {n};
                array F: f64[2*N+2]; array FN: f64[2*N+2]; array GN: f64[2*N+2];
                scalar f0, f1: f64;
                for i in 0..N {{
                    f0 = F[2*i];
                    f1 = F[2*i+1];
                    FN[2*i] = f0 * 1.92;
                    FN[2*i+1] = f1 * 1.92;
                    GN[2*i] = f1 * 0.08;
                    GN[2*i+1] = f0 * 0.08;
                }}
            }}"
        ),
        // Complex multiply over interleaved re/im lattice links: the
        // <br,bi> pack is reused by both product groups, which only a
        // global reuse analysis captures.
        "milc" => format!(
            "kernel milc {{
                const N = {n};
                array A: f64[2*N]; array B: f64[2*N]; array C: f64[2*N];
                scalar ar, ai, br, bi, nbr, cr, ci, dr, di: f64;
                for i in 0..N {{
                    ar = A[2*i];
                    ai = A[2*i+1];
                    br = B[2*i];
                    bi = B[2*i+1];
                    nbr = neg(br);
                    cr = ar * br;
                    ci = ar * bi;
                    dr = ai * bi;
                    di = ai * nbr;
                    C[2*i] = cr - dr;
                    C[2*i+1] = ci - di;
                }}
            }}"
        ),
        // Ray-direction math: dot products and normalization over
        // strided xyz components, heavy on scalar superwords (layout
        // stage places the temporaries contiguously) and sqrt.
        "povray" => format!(
            "kernel povray {{
                const N = {n};
                array D: f64[4*N]; array O: f64[4*N];
                scalar dx, dy, dz, n2, inv, s: f64;
                for r in 0..4 {{
                    for i in 0..N {{
                        dx = D[4*i];
                        dy = D[4*i+1];
                        dz = D[4*i+2];
                        n2 = dx * dx;
                        s = dy * dy;
                        n2 = n2 + s;
                        s = dz * dz;
                        n2 = n2 + s;
                        inv = sqrt(n2);
                        O[4*i] = dx / inv;
                        O[4*i+1] = dy / inv;
                        O[4*i+2] = dz / inv;
                    }}
                }}
            }}"
        ),
        // Lennard-Jones-style force evaluation re-sweeping a read-only
        // strided neighbour table: the §5.2 replication turns the
        // strided loads into one aligned vector load per pair.
        "gromacs" => format!(
            "kernel gromacs {{
                const N = {n};
                array POS: f64[4*N+8]; array FRC: f64[2*N+2]; array TRQ: f64[2*N+2];
                scalar xa, xb, ya, yb: f64;
                for stp in 0..6 {{
                    for i in 0..N {{
                        xa = POS[4*i] * 0.8;
                        xb = POS[4*i+5] * 0.8;
                        ya = POS[4*i+2] * 1.2;
                        yb = POS[4*i+7] * 1.2;
                        FRC[2*i] = xa + ya * 0.33;
                        FRC[2*i+1] = xb + yb * 0.33;
                        TRQ[2*i] = xb + yb * 0.21;
                        TRQ[2*i+1] = xa + ya * 0.21;
                    }}
                }}
            }}"
        ),
        // Small dense element-stiffness blocks applied repeatedly to a
        // read-only coefficient table (strided, replication-friendly).
        "calculix" => format!(
            "kernel calculix {{
                const N = {n};
                array KE: f64[4*N+4]; array X: f64[2*N+2]; array Y: f64[2*N+2];
                scalar x0, x1: f64;
                for pass in 0..5 {{
                    for e in 0..N {{
                        x0 = X[2*e];
                        x1 = X[2*e+1];
                        Y[2*e] = x0 + KE[4*e] * x1;
                        Y[2*e+1] = x1 + KE[4*e+3] * x0;
                    }}
                }}
            }}"
        ),
        // 5-point stencil sweep, contiguous in the inner dimension: the
        // pattern classic loop vectorizers already handle.
        "dealII" => format!(
            "kernel dealII {{
                const N = {n};
                array U: f64[18][N+2]; array V: f64[18][N+2];
                for i in 1..17 {{
                    for j in 1..N {{
                        V[i][j] = U[i][j+1] + U[i][j] * 0.5;
                    }}
                }}
            }}"
        ),
        // The paper's own Figure 15 motif (weather dynamics surrogate):
        // mixed adjacent and strided references with three superword
        // reuses that only the holistic grouping uncovers.
        "wrf" => format!(
            "kernel wrf {{
                const N = {n};
                array A: f64[2*N+6]; array B: f64[4*N+8];
                scalar a, b, c, d, g, h, q, r: f64;
                for t in 0..4 {{
                for i in 1..N {{
                    a = A[i];
                    b = A[i+1];
                    c = a * B[4*i];
                    d = b * B[4*i+4];
                    g = q * B[4*i-2];
                    h = r * B[4*i+2];
                    A[2*i] = d + a * c;
                    A[2*i+2] = g + r * h;
                }}
                }}
            }}"
        ),
        // Pairwise short-range force with cutoff clamping: min/max
        // chains over scalar temporaries, no adjacent seeds for the
        // baseline.
        "namd" => format!(
            "kernel namd {{
                const N = {n};
                array P: f64[2*N]; array Q: f64[2*N]; array FOUT: f64[2*N];
                array TOUT: f64[2*N];
                scalar pa, pb, qa, qb, fa, fb: f64;
                for i in 0..N {{
                    pa = P[2*i];
                    pb = P[2*i+1];
                    qa = Q[2*i];
                    qb = Q[2*i+1];
                    fa = min(pa, qa);
                    fb = min(pb, qb);
                    fa = max(fa, 0.5);
                    fb = max(fb, 0.5);
                    FOUT[2*i] = fa * pa;
                    FOUT[2*i+1] = fb * pb;
                    TOUT[2*i] = fb * qb;
                    TOUT[2*i+1] = fa * qa;
                }}
            }}"
        ),
        // Adaptive-mesh smoothing with a strided read-only metric table
        // swept repeatedly: replication candidate.
        "ua" => format!(
            "kernel ua {{
                const N = {n};
                array MET: f64[4*N+8]; array UU: f64[2*N+2]; array WW: f64[2*N+2];
                scalar m0, m1: f64;
                for sweep in 0..6 {{
                    for i in 0..N {{
                        m0 = MET[4*i+1];
                        m1 = MET[4*i+6];
                        UU[2*i] = UU[2*i] + 0.05 * m0;
                        UU[2*i+1] = UU[2*i+1] + 0.05 * m1;
                        WW[2*i] = m1 * 0.02;
                        WW[2*i+1] = m0 * 0.02;
                    }}
                }}
            }}"
        ),
        // Radix-2 butterfly stage: paired strided loads, twiddle splat,
        // add/sub lanes with cross reuse.
        "ft" => format!(
            "kernel ft {{
                const N = {n};
                array XR: f64[2*N]; array YR: f64[2*N]; array YI: f64[2*N];
                array TW: f64[4*N+4];
                scalar e0, e1, o0, o1: f64;
                for p in 0..3 {{
                    for i in 0..N {{
                        e0 = XR[2*i];
                        e1 = XR[2*i+1];
                        o0 = e0 * TW[4*i];
                        o1 = e1 * TW[4*i+2];
                        YR[2*i] = e0 + o0;
                        YR[2*i+1] = e1 + o1;
                        YI[2*i] = e1 + o1 * 0.5;
                        YI[2*i+1] = e0 + o0 * 0.5;
                    }}
                }}
            }}"
        ),
        // 2x2 block forward elimination: adjacent pairs with reuse of
        // the pivot pack by both updates.
        "bt" => format!(
            "kernel bt {{
                const N = {n};
                array LHS: f64[2*N+4]; array RHS: f64[2*N+4]; array AUX: f64[2*N+4];
                scalar p0, p1, r0, r1: f64;
                for i in 0..N {{
                    p0 = LHS[2*i];
                    p1 = LHS[2*i+1];
                    r0 = RHS[2*i] + p0 * -0.4;
                    r1 = RHS[2*i+1] + p1 * -0.4;
                    RHS[2*i+2] = r0 + p0 * 0.1;
                    RHS[2*i+3] = r1 + p1 * 0.1;
                    AUX[2*i] = r1 + p1 * 0.3;
                    AUX[2*i+1] = r0 + p0 * 0.3;
                }}
            }}"
        ),
        // Scalar pentadiagonal line solve, contiguous vectors: Native
        // territory.
        "sp" => format!(
            "kernel sp {{
                const N = {n};
                array AA: f64[N+4]; array BB: f64[N+4]; array CC: f64[N+4];
                array TT: f64[N+4];
                for t in 0..4 {{
                    for i in 0..N {{
                        TT[i] = AA[i] * 0.2;
                        CC[i] = TT[i] + BB[i] * 0.6;
                    }}
                }}
            }}"
        ),
        // Multigrid restriction: strided fine-grid reads folded into the
        // coarse grid, re-swept per V-cycle (replication candidate).
        "mg" => format!(
            "kernel mg {{
                const N = {n};
                array FINE: f64[4*N+8]; array COARSE: f64[2*N+2]; array RES: f64[2*N+2];
                scalar a0, a1: f64;
                for cycle in 0..5 {{
                    for i in 0..N {{
                        a0 = FINE[4*i] + FINE[4*i+2];
                        a1 = FINE[4*i+1] + FINE[4*i+3];
                        COARSE[2*i] = COARSE[2*i] + 0.25 * a0;
                        COARSE[2*i+1] = COARSE[2*i+1] + 0.25 * a1;
                        RES[2*i] = a1 * 0.125;
                        RES[2*i+1] = a0 * 0.125;
                    }}
                }}
            }}"
        ),
        // Conjugate-gradient vector updates: contiguous axpy streams —
        // the second benchmark where all strategies coincide.
        "cg" => format!(
            "kernel cg {{
                const N = {n};
                array PV: f64[N]; array QV: f64[N]; array XV: f64[N]; array RV: f64[N];
                scalar beta, gamma: f64;
                for t in 0..4 {{
                    for i in 0..N {{
                        QV[i] = PV[i] * 1.9;
                        XV[i] = XV[i] + beta * PV[i];
                        RV[i] = RV[i] + gamma * QV[i];
                    }}
                }}
            }}"
        ),
        other => panic!("unknown benchmark '{other}'"),
    }
}

/// Parses and lowers benchmark `name` at `scale`.
///
/// # Panics
///
/// Panics if the benchmark is unknown or its source fails to compile —
/// the sources are embedded, so this indicates a bug.
pub fn kernel(name: &str, scale: usize) -> slp_ir::Program {
    slp_lang::compile(&source(name, scale))
        .unwrap_or_else(|e| panic!("benchmark '{name}' failed to compile: {e}"))
}

/// Names of the branchy kernels, in presentation order.
///
/// These are separate from the Table 3 [`catalog`]: they exist to
/// exercise the if-conversion path (`if`/`else` flattened into
/// predicated `select` superwords) end to end, and are gated by their
/// own differential and prove tests.
pub fn branchy_catalog() -> Vec<&'static str> {
    vec!["abs", "clamp", "threshold", "masked_stencil"]
}

/// The source of branchy kernel `name` at problem scale `scale`.
///
/// # Panics
///
/// Panics if `name` is not in [`branchy_catalog`] or `scale` is zero.
pub fn branchy_source(name: &str, scale: usize) -> String {
    assert!(scale > 0, "scale must be positive");
    let n = 64 * scale;
    match name {
        // Elementwise absolute value: the canonical single-sided branch.
        "abs" => format!(
            "kernel abs {{
                const N = {n};
                array A: f64[N]; array B: f64[N];
                for i in 0..N {{
                    if A[i] < 0.0 {{
                        B[i] = neg(A[i]);
                    }} else {{
                        B[i] = A[i];
                    }}
                }}
            }}"
        ),
        // Clamp to [0, 1]: a two-deep else-if chain, the shape that
        // defeats basic-block SLP without if-conversion.
        "clamp" => format!(
            "kernel clamp {{
                const N = {n};
                array X: f64[N]; array Y: f64[N];
                for i in 0..N {{
                    if X[i] < 0.0 {{
                        Y[i] = 0.0;
                    }} else if X[i] > 1.0 {{
                        Y[i] = 1.0;
                    }} else {{
                        Y[i] = X[i];
                    }}
                }}
            }}"
        ),
        // Binary threshold: both branches store to the same cell, so the
        // merged selects carry mutually exclusive predicates.
        "threshold" => format!(
            "kernel threshold {{
                const N = {n};
                array S: f64[N]; array T: f64[N];
                for i in 0..N {{
                    if S[i] >= 0.5 {{
                        T[i] = 1.0;
                    }} else {{
                        T[i] = 0.0;
                    }}
                }}
            }}"
        ),
        // Masked 3-point stencil: the update only fires where the mask
        // is set; the stencil body itself becomes an unconditional
        // temporary feeding a predicated blend.
        "masked_stencil" => format!(
            "kernel masked_stencil {{
                const N = {n};
                array M: f64[N+2]; array U: f64[N+2]; array V: f64[N+2];
                for i in 0..N {{
                    if M[i] != 0.0 {{
                        V[i+1] = U[i] + U[i+2];
                    }}
                }}
            }}"
        ),
        other => panic!("unknown branchy kernel '{other}'"),
    }
}

/// Parses and lowers branchy kernel `name` at `scale` (if-conversion
/// happens during lowering).
///
/// # Panics
///
/// Panics if the kernel is unknown or fails to compile.
pub fn branchy_kernel(name: &str, scale: usize) -> slp_ir::Program {
    slp_lang::compile(&branchy_source(name, scale))
        .unwrap_or_else(|e| panic!("branchy kernel '{name}' failed to compile: {e}"))
}

/// Every benchmark with its program, in catalog order.
pub fn all(scale: usize) -> Vec<(BenchmarkSpec, slp_ir::Program)> {
    catalog()
        .into_iter()
        .map(|s| {
            let p = kernel(s.name, scale);
            (s, p)
        })
        .collect()
}

/// The six NAS kernels (the Figure 21 subjects), in catalog order.
pub fn nas(scale: usize) -> Vec<(BenchmarkSpec, slp_ir::Program)> {
    all(scale)
        .into_iter()
        .filter(|(s, _)| s.suite == SuiteKind::Nas)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_matches_table3() {
        let c = catalog();
        assert_eq!(c.len(), 16);
        assert_eq!(
            c.iter().filter(|s| s.suite == SuiteKind::Spec2006).count(),
            10
        );
        assert_eq!(c.iter().filter(|s| s.suite == SuiteKind::Nas).count(), 6);
        let nas_names: Vec<_> = c
            .iter()
            .filter(|s| s.suite == SuiteKind::Nas)
            .map(|s| s.name)
            .collect();
        assert_eq!(nas_names, ["ua", "ft", "bt", "sp", "mg", "cg"]);
    }

    #[test]
    fn every_kernel_compiles_at_multiple_scales() {
        for spec in catalog() {
            for scale in [1, 2] {
                let p = kernel(spec.name, scale);
                assert!(p.stmt_count() > 0, "{} is empty", spec.name);
                assert!(!p.blocks().is_empty());
            }
        }
    }

    #[test]
    fn spec_lookup() {
        assert_eq!(spec_of("lbm").unwrap().suite, SuiteKind::Spec2006);
        assert_eq!(spec_of("mg").unwrap().suite, SuiteKind::Nas);
        assert!(spec_of("nope").is_none());
    }

    #[test]
    #[should_panic(expected = "unknown benchmark")]
    fn unknown_name_panics() {
        let _ = source("quake", 1);
    }

    #[test]
    #[should_panic(expected = "scale must be positive")]
    fn zero_scale_panics() {
        let _ = source("lbm", 0);
    }

    #[test]
    fn serial_fractions_are_sane() {
        for s in catalog() {
            assert!(
                s.serial_fraction > 0.0 && s.serial_fraction < 0.5,
                "{}",
                s.name
            );
        }
    }
}
