//! # slp-suite — the evaluation workloads
//!
//! Two ingredients of the §7 evaluation:
//!
//! * [`catalog`] / [`kernel`] / [`all`]: the sixteen benchmark kernels of
//!   Table 3 (ten SPEC2006 floating-point surrogates and six NAS
//!   surrogates), written in the `slp-lang` mini-language with the access
//!   patterns and reuse structure of the originals' hot loops,
//! * [`random_program`]: a seeded generator of arbitrary valid kernels
//!   for the property-based tests.
//!
//! # Examples
//!
//! ```
//! // The Table 3 catalog: 10 SPEC2006 + 6 NAS entries.
//! let specs = slp_suite::catalog();
//! assert_eq!(specs.len(), 16);
//! let lbm = slp_suite::kernel("lbm", 1);
//! assert!(lbm.stmt_count() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod generator;
mod kernels;

pub use generator::{corpus, random_program, GeneratorConfig};
pub use kernels::{
    all, branchy_catalog, branchy_kernel, branchy_source, catalog, kernel, nas, source, spec_of,
    BenchmarkSpec, SuiteKind,
};
