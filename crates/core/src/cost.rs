//! The §4.3 static cost model.
//!
//! "We employ a similar cost model used in [16] to estimate the potential
//! speed-ups brought by the transformed code, taking into account all the
//! important factors, e.g., the number of SIMD instructions, the number of
//! memory operations and the number of vector register
//! reshuffling/permutation instructions."
//!
//! [`estimate_schedule_cost`] walks a block schedule with the same
//! register-resident pack tracking the `slp-vm` code generator uses and
//! sums per-instruction cycle estimates. The pipeline uses it to arbitrate
//! between grouping proposals ("if we realize that our transformation
//! could potentially degrade the performance, we choose not to apply it"),
//! and `slp-vm` re-applies the identical logic as its final gate — a
//! cross-crate consistency test keeps the two in sync.

use slp_analysis::OperandKey;
use slp_ir::{
    pack_is_aligned_in, pack_is_contiguous, ArrayRef, BasicBlock, Dest, LoopHeader, Operand,
    Program, Statement, VarId,
};

use crate::machine::{op_cost_factor, CostParams};
use crate::superword::{BlockSchedule, ScheduledItem};

/// Cost-model context for one basic block.
#[derive(Debug, Clone, Copy)]
pub struct CostContext<'a> {
    /// The program the block belongs to.
    pub program: &'a Program,
    /// The block's enclosing loop nest (for step-aware alignment).
    pub loops: &'a [LoopHeader],
    /// Upward-exposed (memory-resident) scalars.
    pub exposed: &'a [bool],
    /// The machine's cycle costs.
    pub cost: &'a CostParams,
    /// Vector register file size (pack-reuse window).
    pub vector_regs: usize,
    /// Whether the §5 data layout stage will run afterwards. When set,
    /// read-only strided array packs are costed as if replication had
    /// already turned them into aligned vector loads, and all-exposed
    /// scalar packs as if §5.1 had placed them contiguously — so the
    /// proposal arbitration does not shy away from the gather-heavy,
    /// reuse-rich groupings the layout stage is designed to fix.
    pub assume_layout: bool,
}

/// Estimated per-execution cycles of the scalar (unvectorized) block.
pub fn estimate_scalar_cost(block: &BasicBlock, cx: &CostContext<'_>) -> f64 {
    block.iter().map(|s| scalar_stmt_cost(s, cx)).sum()
}

/// Estimated per-execution cycles of `schedule` for `block`, mirroring
/// the `slp-vm` code generator's emission decisions (pack reuse, permuted
/// reuse, memory access classes, scalar pack shuffles, lane sinks).
pub fn estimate_schedule_cost(
    block: &BasicBlock,
    schedule: &BlockSchedule,
    cx: &CostContext<'_>,
) -> f64 {
    let mut regs: Vec<Vec<OperandKey>> = Vec::new();
    let mut total = 0.0;
    let items = schedule.items();
    for (idx, item) in items.iter().enumerate() {
        match item {
            ScheduledItem::Single(id) => {
                let stmt = block.stmt(*id).expect("stmt in block");
                total += scalar_stmt_cost(stmt, cx);
                invalidate(&mut regs, &stmt.def());
            }
            ScheduledItem::Superword(sw) => {
                let stmts: Vec<&Statement> = sw
                    .lanes()
                    .iter()
                    .map(|&id| block.stmt(id).expect("lane in block"))
                    .collect();
                // Source packs.
                for k in 0..stmts[0].expr().arity() {
                    let ops: Vec<Operand> = stmts
                        .iter()
                        .map(|s| s.expr().operands()[k].clone())
                        .collect();
                    total += materialize_cost(&ops, &mut regs, cx);
                }
                // The SIMD op.
                total += op_cost_factor(stmts[0].expr().shape()) * cx.cost.simd_op;
                // Destination write-back.
                let dest_ops: Vec<Operand> = stmts.iter().map(|s| s.def()).collect();
                for op in &dest_ops {
                    invalidate(&mut regs, op);
                }
                total += dest_cost(&stmts, block, &items[idx + 1..], cx);
                let keys: Vec<OperandKey> = dest_ops.iter().map(OperandKey::of).collect();
                register(&mut regs, keys, cx.vector_regs);
            }
        }
    }
    total
}

/// Estimated cycles of executing one statement as a scalar statement:
/// exposed-operand loads, the (possibly exposed) destination store, and
/// the shape-weighted ALU op. Public so the `slp-opt` branch-and-bound
/// solver can build admissible per-statement lower bounds from the same
/// tables the schedule estimator uses.
pub fn scalar_stmt_cost(stmt: &Statement, cx: &CostContext<'_>) -> f64 {
    let loads = stmt
        .uses()
        .iter()
        .filter(|o| match o {
            Operand::Array(_) => true,
            Operand::Scalar(v) => cx.exposed[v.index()],
            Operand::Const(_) => false,
        })
        .count() as f64;
    let stores = match stmt.dest() {
        Dest::Array(_) => 1.0,
        Dest::Scalar(v) => f64::from(u8::from(cx.exposed[v.index()])),
    };
    loads * cx.cost.scalar_load
        + stores * cx.cost.scalar_store
        + op_cost_factor(stmt.expr().shape()) * cx.cost.scalar_op
}

fn materialize_cost(ops: &[Operand], regs: &mut Vec<Vec<OperandKey>>, cx: &CostContext<'_>) -> f64 {
    // Constant packs.
    if ops.iter().all(|o| matches!(o, Operand::Const(_))) {
        let first = match &ops[0] {
            Operand::Const(c) => *c,
            // Invariant: the enclosing `all(..is Const)` guard covers ops[0].
            _ => unreachable!(),
        };
        let uniform = ops
            .iter()
            .all(|o| matches!(o, Operand::Const(c) if *c == first));
        return if uniform {
            cx.cost.insert
        } else {
            cx.cost.vector_load
        };
    }
    let keys: Vec<OperandKey> = ops.iter().map(OperandKey::of).collect();
    if regs.contains(&keys) {
        return 0.0; // direct reuse
    }
    if let Some(pos) = regs.iter().position(|k| same_multiset(k, &keys)) {
        // Permuted reuse: register the new ordering.
        let _ = pos;
        register(regs, keys, cx.vector_regs);
        return cx.cost.permute;
    }
    let cost = pack_cost(ops, cx, true);
    register(regs, keys, cx.vector_regs);
    cost
}

/// Memory/shuffle cost of assembling (`is_load`) or scattering a pack.
fn pack_cost(ops: &[Operand], cx: &CostContext<'_>, is_load: bool) -> f64 {
    let w = ops.len() as f64;
    match &ops[0] {
        Operand::Array(_) => {
            let refs: Vec<&ArrayRef> = ops.iter().filter_map(|o| o.as_array()).collect();
            if refs.len() == ops.len() && pack_is_contiguous(&refs) {
                if pack_is_aligned_in(&refs, cx.program, cx.loops) {
                    if is_load {
                        cx.cost.vector_load
                    } else {
                        cx.cost.vector_store
                    }
                } else if is_load {
                    cx.cost.unaligned_load
                } else {
                    cx.cost.unaligned_store
                }
            } else if is_load {
                // Mirror the §5.2 replication gate: profitable only for
                // intra-array read-only packs re-swept by an enclosing
                // loop the subscripts do not use (outer-loop reuse pays
                // for the one-time copy).
                let replicable = cx.assume_layout
                    && refs.len() == ops.len()
                    && refs.iter().all(|r| r.array == refs[0].array)
                    && cx.program.array_is_read_only(refs[0].array)
                    && cx.loops.iter().any(|h| {
                        refs.iter()
                            .all(|r| r.access.dims().iter().all(|e| e.coeff(h.var) == 0))
                    });
                if replicable {
                    cx.cost.vector_load
                } else {
                    w * (cx.cost.scalar_load + cx.cost.insert)
                }
            } else {
                w * (cx.cost.extract + cx.cost.scalar_store)
            }
        }
        Operand::Scalar(v0) => {
            // Splat?
            if ops.iter().all(|o| o.as_scalar() == Some(*v0)) {
                return cx.cost.insert
                    + if cx.exposed[v0.index()] {
                        cx.cost.scalar_load
                    } else {
                        0.0
                    };
            }
            let mem = ops
                .iter()
                .filter(|o| matches!(o, Operand::Scalar(v) if cx.exposed[v.index()]))
                .count() as f64;
            if cx.assume_layout && mem == w {
                // §5.1 will place an all-exposed pack contiguously.
                return if is_load {
                    cx.cost.vector_load
                } else {
                    cx.cost.vector_store
                };
            }
            w * cx.cost.insert + mem * cx.cost.scalar_load
        }
        // Invariant: materialize_cost early-returns on all-const packs, and
        // packs are operand-kind homogeneous, so no Const reaches here.
        Operand::Const(_) => unreachable!("const packs handled by caller"),
    }
}

fn dest_cost(
    stmts: &[&Statement],
    block: &BasicBlock,
    rest: &[ScheduledItem],
    cx: &CostContext<'_>,
) -> f64 {
    match stmts[0].dest() {
        Dest::Array(_) => {
            let ops: Vec<Operand> = stmts.iter().map(|s| s.def()).collect();
            pack_cost(&ops, cx, false)
        }
        Dest::Scalar(_) => {
            let mut total = 0.0;
            for s in stmts {
                let Dest::Scalar(v) = s.dest() else {
                    // Invariant: superwords pack isomorphic statements, so
                    // every lane's dest matches stmts[0]'s (Scalar here).
                    unreachable!("isomorphic dests")
                };
                if cx.exposed[v.index()] {
                    total += cx.cost.extract + cx.cost.scalar_store;
                } else if scalar_read_by_later_single(*v, block, rest) {
                    total += cx.cost.extract;
                }
            }
            total
        }
    }
}

/// Whether scalar `v` is read by a later single of this block's schedule
/// before being redefined.
fn scalar_read_by_later_single(v: VarId, block: &BasicBlock, rest: &[ScheduledItem]) -> bool {
    for item in rest {
        let ScheduledItem::Single(id) = item else {
            continue;
        };
        let stmt = block.stmt(*id).expect("stmt in block");
        if stmt.uses().iter().any(|o| o.as_scalar() == Some(v)) {
            return true;
        }
        if matches!(stmt.dest(), Dest::Scalar(w) if *w == v) {
            return false;
        }
    }
    false
}

fn same_multiset(a: &[OperandKey], b: &[OperandKey]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut sa = a.to_vec();
    let mut sb = b.to_vec();
    sa.sort();
    sb.sort();
    sa == sb
}

fn register(regs: &mut Vec<Vec<OperandKey>>, keys: Vec<OperandKey>, cap: usize) {
    regs.retain(|k| *k != keys);
    regs.push(keys);
    if regs.len() > cap {
        regs.remove(0);
    }
}

fn invalidate(regs: &mut Vec<Vec<OperandKey>>, written: &Operand) {
    regs.retain(|keys| {
        !keys.iter().any(|k| match (written, k) {
            (Operand::Scalar(v), OperandKey::Scalar(w)) => v == w,
            (Operand::Array(r), OperandKey::Array(a, acc)) => {
                r.may_alias(&ArrayRef::new(*a, acc.clone()))
            }
            _ => false,
        })
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group::group_block;
    use crate::schedule::{schedule_block, ScheduleConfig};
    use slp_ir::BlockDeps;

    fn context<'a>(
        program: &'a Program,
        loops: &'a [LoopHeader],
        exposed: &'a [bool],
        cost: &'a CostParams,
    ) -> CostContext<'a> {
        CostContext {
            program,
            loops,
            exposed,
            cost,
            vector_regs: 16,
            assume_layout: false,
        }
    }

    fn compile_block(src: &str) -> (Program, slp_ir::BlockInfo, BlockSchedule) {
        let p = slp_lang::compile(src).unwrap();
        let info = p.blocks().into_iter().next().unwrap();
        let deps = BlockDeps::analyze(&info.block);
        let g = group_block(&info.block, &deps, &p, |_| 2);
        let sched = schedule_block(&info.block, &deps, &g.units, &ScheduleConfig::default());
        (p, info, sched)
    }

    #[test]
    fn vector_beats_scalar_on_contiguous_streams() {
        let (p, info, sched) = compile_block(
            "kernel k { array A: f64[64]; array B: f64[64];
             for i in 0..16 { A[2*i] = B[2*i] * 2.0; A[2*i+1] = B[2*i+1] * 2.0; } }",
        );
        let exposed = p.upward_exposed_scalars();
        let cost = CostParams::intel();
        let cx = context(&p, &info.loops, &exposed, &cost);
        let sc = estimate_scalar_cost(&info.block, &cx);
        let vc = estimate_schedule_cost(&info.block, &sched, &cx);
        assert!(vc < sc, "vector {vc} vs scalar {sc}");
    }

    #[test]
    fn scalar_schedule_costs_equal_scalar_estimate() {
        let (p, info, _) = compile_block(
            "kernel k { array A: f64[64]; scalar t: f64;
             for i in 0..16 { t = A[2*i]; A[2*i+1] = t * 2.0; } }",
        );
        let exposed = p.upward_exposed_scalars();
        let cost = CostParams::intel();
        let cx = context(&p, &info.loops, &exposed, &cost);
        let scalar_sched = BlockSchedule::scalar(&info.block);
        assert_eq!(
            estimate_schedule_cost(&info.block, &scalar_sched, &cx),
            estimate_scalar_cost(&info.block, &cx)
        );
    }

    #[test]
    fn reuse_makes_second_use_free() {
        // Two groups reading the same B pack: the estimator must charge
        // the load once.
        let (p, info, sched) = compile_block(
            "kernel k { array A: f64[64]; array B: f64[64]; array C: f64[64];
             for i in 0..16 {
                 A[2*i] = B[2*i] * 2.0;
                 A[2*i+1] = B[2*i+1] * 2.0;
                 C[2*i] = B[2*i] + 1.0;
                 C[2*i+1] = B[2*i+1] + 1.0;
             } }",
        );
        let exposed = p.upward_exposed_scalars();
        let cost = CostParams::intel();
        let cx = context(&p, &info.loops, &exposed, &cost);
        let vc = estimate_schedule_cost(&info.block, &sched, &cx);
        // One B load + two aligned stores + two ops + splat-ish consts.
        // Well under the cost of loading B twice.
        assert!(vc < 2.0 * cost.vector_load + 2.0 * cost.vector_store + 8.0);
    }
}
