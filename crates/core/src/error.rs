//! Workspace-wide error types: the stable error surface of the `slp`
//! public API.
//!
//! Historically every layer grew its own failure shape — the language
//! front-end a positioned [`slp_lang::ParseError`], the VM a stringly
//! `ExecError`, the verifier a rendered report, the pipeline a panic.
//! [`SlpError`] unifies them behind one enum with `From` conversions so
//! front-ends can use `?` across layer boundaries, while [`ExecError`]
//! and [`VerifyError`] stay usable on their own where only one layer is
//! involved.

use std::error::Error;
use std::fmt;

/// The classification of a runtime failure in the VM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecErrorKind {
    /// An array or replication access fell outside the declared bounds.
    OutOfBounds,
    /// An instruction read a vector register that no earlier instruction
    /// defined.
    UndefinedRegister,
    /// The instruction stream is structurally invalid (missing block
    /// code, lane-width mismatches, out-of-range permutation indices).
    MalformedCode,
    /// Executing the program would exceed a VM resource budget (total
    /// array storage); the program is legal but too large to simulate.
    ResourceLimit,
}

impl ExecErrorKind {
    /// The stable lower-case name of the kind.
    pub fn name(self) -> &'static str {
        match self {
            ExecErrorKind::OutOfBounds => "out-of-bounds",
            ExecErrorKind::UndefinedRegister => "undefined-register",
            ExecErrorKind::MalformedCode => "malformed-code",
            ExecErrorKind::ResourceLimit => "resource-limit",
        }
    }
}

impl fmt::Display for ExecErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A typed runtime failure of the VM: a [`kind`](ExecError::kind) for
/// programmatic dispatch plus a human-readable context string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecError {
    kind: ExecErrorKind,
    context: String,
}

impl ExecError {
    /// Builds an error of the given kind.
    pub fn new(kind: ExecErrorKind, context: impl Into<String>) -> Self {
        ExecError {
            kind,
            context: context.into(),
        }
    }

    /// An out-of-bounds memory access.
    pub fn out_of_bounds(context: impl Into<String>) -> Self {
        ExecError::new(ExecErrorKind::OutOfBounds, context)
    }

    /// A read of a never-defined vector register.
    pub fn undefined_register(context: impl Into<String>) -> Self {
        ExecError::new(ExecErrorKind::UndefinedRegister, context)
    }

    /// A structurally invalid instruction stream.
    pub fn malformed(context: impl Into<String>) -> Self {
        ExecError::new(ExecErrorKind::MalformedCode, context)
    }

    /// A program too large for the VM's resource budgets.
    pub fn resource_limit(context: impl Into<String>) -> Self {
        ExecError::new(ExecErrorKind::ResourceLimit, context)
    }

    /// The failure classification.
    pub fn kind(&self) -> ExecErrorKind {
        self.kind
    }

    /// The human-readable context.
    pub fn context(&self) -> &str {
        &self.context
    }
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Kept identical to the historical rendering so messages (and
        // substring assertions on them) are stable across the engine
        // rewrite.
        write!(f, "execution error: {}", self.context)
    }
}

impl Error for ExecError {}

/// A structured verification failure, produced by a
/// [`Verifier`](crate::Verifier) rejecting a compiled kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    summary: String,
    findings: Vec<String>,
}

impl VerifyError {
    /// Builds an error from the rendered summary (typically a full
    /// diagnostic report).
    pub fn new(summary: impl Into<String>) -> Self {
        VerifyError {
            summary: summary.into(),
            findings: Vec::new(),
        }
    }

    /// Attaches the individual findings behind the summary.
    pub fn with_findings(mut self, findings: Vec<String>) -> Self {
        self.findings = findings;
        self
    }

    /// The rendered summary.
    pub fn summary(&self) -> &str {
        &self.summary
    }

    /// The individual findings (may be empty when the producer only
    /// rendered a summary).
    pub fn findings(&self) -> &[String] {
        &self.findings
    }
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.summary)
    }
}

impl Error for VerifyError {}

impl From<String> for VerifyError {
    fn from(summary: String) -> Self {
        VerifyError::new(summary)
    }
}

impl From<&str> for VerifyError {
    fn from(summary: &str) -> Self {
        VerifyError::new(summary)
    }
}

/// The workspace-wide error enum: every failure a front-end can see from
/// the parse → validate → compile → verify → execute path.
#[derive(Debug, Clone, PartialEq)]
pub enum SlpError {
    /// The source text did not parse.
    Parse(slp_lang::ParseError),
    /// The program parsed but failed semantic validation; one rendered
    /// message per violation.
    Invalid(Vec<String>),
    /// A verifier rejected the compiled kernel.
    Verify(VerifyError),
    /// The VM failed at run time.
    Exec(ExecError),
}

impl fmt::Display for SlpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SlpError::Parse(e) => write!(f, "parse error: {e}"),
            SlpError::Invalid(errors) => {
                write!(f, "invalid program: {}", errors.join("; "))
            }
            SlpError::Verify(e) => write!(f, "verification failed: {e}"),
            SlpError::Exec(e) => write!(f, "{e}"),
        }
    }
}

impl Error for SlpError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SlpError::Parse(e) => Some(e),
            SlpError::Invalid(_) => None,
            SlpError::Verify(e) => Some(e),
            SlpError::Exec(e) => Some(e),
        }
    }
}

impl From<slp_lang::ParseError> for SlpError {
    fn from(e: slp_lang::ParseError) -> Self {
        SlpError::Parse(e)
    }
}

impl From<VerifyError> for SlpError {
    fn from(e: VerifyError) -> Self {
        SlpError::Verify(e)
    }
}

impl From<ExecError> for SlpError {
    fn from(e: ExecError) -> Self {
        SlpError::Exec(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exec_error_display_is_stable() {
        let e = ExecError::out_of_bounds("A[9] out of bounds (dims [4])");
        assert_eq!(
            e.to_string(),
            "execution error: A[9] out of bounds (dims [4])"
        );
        assert_eq!(e.kind(), ExecErrorKind::OutOfBounds);
        assert!(e.to_string().contains("out of bounds"));
    }

    #[test]
    fn kinds_have_stable_names() {
        assert_eq!(ExecErrorKind::OutOfBounds.name(), "out-of-bounds");
        assert_eq!(
            ExecErrorKind::UndefinedRegister.name(),
            "undefined-register"
        );
        assert_eq!(ExecErrorKind::MalformedCode.name(), "malformed-code");
    }

    #[test]
    fn slp_error_converts_from_each_layer() {
        let v: SlpError = VerifyError::new("V201 bad pack").into();
        assert!(v.to_string().contains("verification failed"));
        let x: SlpError = ExecError::undefined_register("read of undefined register x3").into();
        assert!(x.to_string().contains("undefined register"));
        let p: SlpError = slp_lang::compile("kernel {").unwrap_err().into();
        assert!(p.to_string().starts_with("parse error:"));
    }

    #[test]
    fn verify_error_keeps_findings() {
        let e = VerifyError::new("2 errors").with_findings(vec!["a".into(), "b".into()]);
        assert_eq!(e.findings().len(), 2);
        assert_eq!(e.summary(), "2 errors");
    }
}
