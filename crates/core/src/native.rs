//! The "Native" comparator: a deliberately simple vectorizer standing in
//! for the native compiler's SLP support in §7 ("the native
//! compiler-generated version when SLP optimization is enabled").
//!
//! It only vectorizes runs of isomorphic, independent statements whose
//! array references are contiguous in program order and whose scalar
//! operands are uniform (splats) — the classic unrolled-loop pattern a
//! straightforward tree vectorizer recognizes. No reuse analysis, no lane
//! reordering, no scalar packing.

use slp_analysis::Unit;
use slp_ir::{BasicBlock, BlockDeps, Dest, Operand, Statement, StmtId, TypeEnv};

use crate::schedule::{schedule_in_program_order, ScheduleConfig};
use crate::superword::BlockSchedule;

/// Runs the native-style vectorizer on one block.
pub fn native_block<E: TypeEnv>(
    block: &BasicBlock,
    deps: &BlockDeps,
    env: &E,
    mut lane_cap: impl FnMut(StmtId) -> usize,
) -> BlockSchedule {
    let stmts = block.stmts();
    let mut units: Vec<Unit> = Vec::new();
    let mut taken = vec![false; stmts.len()];
    for start in 0..stmts.len() {
        if taken[start] {
            continue;
        }
        let cap = lane_cap(stmts[start].id());
        // Greedily grow a contiguous vectorizable chain from `start`: the
        // continuation may appear anywhere later in the block (unrolled
        // bodies interleave the statement families), as long as every
        // array position keeps ascending contiguously.
        let mut members = vec![start];
        while members.len() < cap {
            let found = (members[members.len() - 1] + 1..stmts.len()).find(|&next| {
                if taken[next] {
                    return false;
                }
                let candidate: Vec<usize> = members.iter().copied().chain([next]).collect();
                run_is_vectorizable(stmts, &candidate, deps, env)
            });
            match found {
                Some(next) => members.push(next),
                None => break,
            }
        }
        if members.len() >= 2 {
            let mut unit = Unit::singleton(stmts[members[0]].id());
            for &m in &members[1..] {
                unit = Unit::merged(&unit, &Unit::singleton(stmts[m].id()));
            }
            for &m in &members {
                taken[m] = true;
            }
            units.push(unit);
        }
    }
    for (i, s) in stmts.iter().enumerate() {
        if !taken[i] {
            units.push(Unit::singleton(s.id()));
        }
    }
    schedule_in_program_order(block, deps, &units, &ScheduleConfig::default())
}

/// Whether the statements at `idx` (in order) form a native-vectorizable
/// run: isomorphic, independent, every array position contiguous-ascending
/// and every scalar/constant position uniform.
fn run_is_vectorizable<E: TypeEnv>(
    stmts: &[Statement],
    idx: &[usize],
    deps: &BlockDeps,
    env: &E,
) -> bool {
    let first = &stmts[idx[0]];
    // Independence must hold between *every* pair of lanes, not just
    // neighbours: a ⊥ b and b ⊥ c do not imply a ⊥ c.
    for (i, &a) in idx.iter().enumerate() {
        for &b in &idx[i + 1..] {
            let (a, b) = (&stmts[a], &stmts[b]);
            if !a.isomorphic(b, env) || !deps.independent(a.id(), b.id()) {
                return false;
            }
        }
    }
    // Destination: all array and contiguous, or all scalar (scalars are
    // allowed — they become an unpacked store, which real vectorizers
    // reject; requiring array dests keeps Native strictly simplest).
    let dests: Vec<&slp_ir::ArrayRef> = idx
        .iter()
        .filter_map(|&i| match stmts[i].dest() {
            Dest::Array(r) => Some(r),
            Dest::Scalar(_) => None,
        })
        .collect();
    if dests.len() != idx.len() || !slp_ir::pack_is_contiguous(&dests) {
        return false;
    }
    for k in 0..first.expr().arity() {
        let ops: Vec<&Operand> = idx.iter().map(|&i| stmts[i].expr().operands()[k]).collect();
        let ok = match ops[0] {
            Operand::Array(_) => {
                let refs: Vec<&slp_ir::ArrayRef> =
                    ops.iter().filter_map(|o| o.as_array()).collect();
                refs.len() == ops.len() && slp_ir::pack_is_contiguous(&refs)
            }
            // Uniform scalar or constant: a splat.
            Operand::Scalar(v) => ops.iter().all(|o| o.as_scalar() == Some(*v)),
            Operand::Const(c) => ops.iter().all(|o| matches!(o, Operand::Const(d) if d == c)),
        };
        if !ok {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::superword::validate_schedule;
    use slp_ir::{AccessVector, AffineExpr, ArrayRef, BinOp, Expr, Program, ScalarType};

    fn at(p: &Program, arr: slp_ir::ArrayId, i: slp_ir::LoopVarId, c: i64, k: i64) -> ArrayRef {
        let _ = p;
        ArrayRef::new(
            arr,
            AccessVector::new(vec![AffineExpr::var(i).scaled(c).offset(k)]),
        )
    }

    /// A[4i+k] = B[4i+k] * s for k in 0..4 — the classic unrolled body.
    fn contiguous_block() -> (Program, BasicBlock) {
        let mut p = Program::new("contig");
        let a = p.add_array("A", ScalarType::F32, vec![64], true);
        let b = p.add_array("B", ScalarType::F32, vec![64], true);
        let i = p.add_loop_var("i");
        let s = p.add_scalar("s", ScalarType::F32);
        let stmts: Vec<_> = (0..4)
            .map(|k| {
                let d = at(&p, a, i, 4, k);
                let src = at(&p, b, i, 4, k);
                p.make_stmt(d.into(), Expr::Binary(BinOp::Mul, src.into(), s.into()))
            })
            .collect();
        let bb: BasicBlock = stmts.into_iter().collect();
        (p, bb)
    }

    #[test]
    fn vectorizes_contiguous_runs() {
        let (p, bb) = contiguous_block();
        let deps = BlockDeps::analyze(&bb);
        let sched = native_block(&bb, &deps, &p, |_| 4);
        validate_schedule(&bb, &deps, &sched, &p, |_| 4).unwrap();
        assert_eq!(sched.superword_count(), 1);
        assert_eq!(sched.items()[0].stmts().len(), 4);
    }

    #[test]
    fn rejects_scalar_destinations() {
        // a = A[2i]; b = A[2i+1] — adjacent loads into scalars: baseline
        // SLP takes these, Native does not.
        let mut p = Program::new("sc");
        let arr = p.add_array("A", ScalarType::F64, vec![16], true);
        let i = p.add_loop_var("i");
        let a = p.add_scalar("a", ScalarType::F64);
        let b = p.add_scalar("b", ScalarType::F64);
        let s0 = p.make_stmt(a.into(), Expr::Copy(at(&p, arr, i, 2, 0).into()));
        let s1 = p.make_stmt(b.into(), Expr::Copy(at(&p, arr, i, 2, 1).into()));
        let bb: BasicBlock = [s0, s1].into_iter().collect();
        let deps = BlockDeps::analyze(&bb);
        let sched = native_block(&bb, &deps, &p, |_| 2);
        assert_eq!(sched.superword_count(), 0);
    }

    #[test]
    fn rejects_gathered_operands() {
        // A[2i+k] = B[4i+4k] * s: strided source, not contiguous.
        let mut p = Program::new("gather");
        let a = p.add_array("A", ScalarType::F32, vec![64], true);
        let b = p.add_array("B", ScalarType::F32, vec![256], true);
        let i = p.add_loop_var("i");
        let s = p.add_scalar("s", ScalarType::F32);
        let stmts: Vec<_> = (0..2)
            .map(|k| {
                let d = at(&p, a, i, 2, k);
                let src = at(&p, b, i, 4, 4 * k);
                p.make_stmt(d.into(), Expr::Binary(BinOp::Mul, src.into(), s.into()))
            })
            .collect();
        let bb: BasicBlock = stmts.into_iter().collect();
        let deps = BlockDeps::analyze(&bb);
        let sched = native_block(&bb, &deps, &p, |_| 2);
        assert_eq!(sched.superword_count(), 0);
    }

    #[test]
    fn splits_runs_at_lane_cap() {
        let (p, bb) = contiguous_block();
        let deps = BlockDeps::analyze(&bb);
        let sched = native_block(&bb, &deps, &p, |_| 2);
        validate_schedule(&bb, &deps, &sched, &p, |_| 2).unwrap();
        assert_eq!(sched.superword_count(), 2);
    }

    #[test]
    fn mixed_scalar_operands_must_be_uniform() {
        // A[2i+k] = B[2i+k] * t_k with different scalars per lane: no splat.
        let mut p = Program::new("nonuniform");
        let a = p.add_array("A", ScalarType::F32, vec![64], true);
        let b = p.add_array("B", ScalarType::F32, vec![64], true);
        let i = p.add_loop_var("i");
        let t0 = p.add_scalar("t0", ScalarType::F32);
        let t1 = p.add_scalar("t1", ScalarType::F32);
        let s0 = {
            let d = at(&p, a, i, 2, 0);
            let src = at(&p, b, i, 2, 0);
            p.make_stmt(d.into(), Expr::Binary(BinOp::Mul, src.into(), t0.into()))
        };
        let s1 = {
            let d = at(&p, a, i, 2, 1);
            let src = at(&p, b, i, 2, 1);
            p.make_stmt(d.into(), Expr::Binary(BinOp::Mul, src.into(), t1.into()))
        };
        let bb: BasicBlock = [s0, s1].into_iter().collect();
        let deps = BlockDeps::analyze(&bb);
        let sched = native_block(&bb, &deps, &p, |_| 2);
        assert_eq!(sched.superword_count(), 0);
    }
}
