//! Machine descriptions: the two evaluation platforms of §7 (Tables 1–2).
//!
//! The paper measures on an Intel Dunnington (2× hexa-core Xeon E7450,
//! 2.40 GHz) and an AMD Phenom II X4 945 (3.00 GHz), both with 128-bit
//! SSE/SSE2 datapaths. Since no real hardware is driven here, each machine
//! is described by its datapath width, register file, core count, cache
//! sizes (documentation of Tables 1–2) and a per-instruction cycle cost
//! table that the `slp-vm` interpreter charges. The AMD table charges more
//! for packing/unpacking-related operations, which the paper names as the
//! main reason its savings are lower there.

/// Per-instruction-class cycle costs charged by the SIMD virtual machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostParams {
    /// A scalar ALU operation (baseline: add).
    pub scalar_op: f64,
    /// A vector ALU operation over a full superword.
    pub simd_op: f64,
    /// A scalar load from memory.
    pub scalar_load: f64,
    /// A scalar store to memory.
    pub scalar_store: f64,
    /// An aligned, contiguous vector load.
    pub vector_load: f64,
    /// An unaligned contiguous vector load.
    pub unaligned_load: f64,
    /// An aligned, contiguous vector store.
    pub vector_store: f64,
    /// An unaligned contiguous vector store.
    pub unaligned_store: f64,
    /// Inserting one scalar element into a vector register (packing).
    pub insert: f64,
    /// Extracting one scalar element from a vector register (unpacking).
    pub extract: f64,
    /// A register shuffle/permutation over one superword.
    pub permute: f64,
    /// A plain vector register-to-register move (used by the opt-in
    /// cross-iteration reuse extension).
    pub reg_move: f64,
    /// Loop-control overhead charged per executed iteration.
    pub loop_overhead: f64,
}

impl CostParams {
    /// SSE2-era costs used for the Intel machine. Inserts, extracts and
    /// shuffles are cheap single-uop register operations (`movhpd`,
    /// `unpcklpd`, `shufpd`), which is what makes SLP profitable even for
    /// packs that must be gathered.
    pub fn intel() -> Self {
        CostParams {
            scalar_op: 1.0,
            simd_op: 1.1,
            scalar_load: 2.0,
            scalar_store: 2.0,
            vector_load: 2.2,
            unaligned_load: 3.2,
            vector_store: 2.2,
            unaligned_store: 3.2,
            insert: 0.8,
            extract: 0.8,
            permute: 0.9,
            reg_move: 0.4,
            loop_overhead: 1.5,
        }
    }

    /// Costs for the AMD machine: noticeably more expensive
    /// packing/unpacking and shuffles (§7.2: "the main factor is the
    /// higher packing/unpacking costs").
    pub fn amd() -> Self {
        CostParams {
            scalar_op: 1.0,
            simd_op: 1.1,
            scalar_load: 2.0,
            scalar_store: 2.0,
            vector_load: 2.4,
            unaligned_load: 4.0,
            vector_store: 2.4,
            unaligned_store: 4.0,
            insert: 1.5,
            extract: 1.5,
            permute: 1.6,
            reg_move: 0.6,
            loop_overhead: 1.5,
        }
    }
}

/// The multiplier an operator kind applies to the base ALU cost.
///
/// Division and square root are far slower than addition on both machines;
/// this shapes which kernels profit most from vectorization.
pub fn op_cost_factor(shape: slp_ir::ExprShape) -> f64 {
    use slp_ir::{BinOp, ExprShape, UnOp};
    match shape {
        ExprShape::Copy => 0.5,
        ExprShape::Unary(UnOp::Neg) => 1.0,
        ExprShape::Unary(UnOp::Abs) => 1.0,
        ExprShape::Unary(UnOp::Sqrt) => 12.0,
        ExprShape::Binary(BinOp::Add) | ExprShape::Binary(BinOp::Sub) => 1.0,
        ExprShape::Binary(BinOp::Mul) => 2.0,
        ExprShape::Binary(BinOp::Div) => 10.0,
        ExprShape::Binary(BinOp::Min) | ExprShape::Binary(BinOp::Max) => 1.0,
        ExprShape::MulAdd => 2.5,
        // Compare-to-mask plus blend: two cheap ALU ops.
        ExprShape::Select(_) => 2.0,
    }
}

/// A description of one evaluation machine.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    /// Human-readable name.
    pub name: String,
    /// SIMD datapath width in bits (128 for SSE2; Figure 18 sweeps this).
    pub datapath_bits: u32,
    /// Number of architectural vector registers.
    pub vector_regs: usize,
    /// Number of cores (Figure 21 scales over these).
    pub cores: usize,
    /// L1 data cache per core, in KiB (Tables 1–2, documentation).
    pub l1_data_kb: u32,
    /// Total L2, in KiB.
    pub l2_total_kb: u32,
    /// Total L3, in KiB.
    pub l3_total_kb: u32,
    /// Clock frequency in GHz (used to convert cycles to time).
    pub clock_ghz: f64,
    /// The cycle cost table.
    pub cost: CostParams,
}

impl MachineConfig {
    /// Table 1: the Intel Dunnington based machine — 12 cores (2 sockets)
    /// of Xeon E7450 at 2.40 GHz, 32 KB L1D/core, 18 MB L2, 24 MB L3.
    pub fn intel_dunnington() -> Self {
        MachineConfig {
            name: "Intel Dunnington (Xeon E7450)".to_string(),
            datapath_bits: 128,
            vector_regs: 16,
            cores: 12,
            l1_data_kb: 32,
            l2_total_kb: 18 * 1024,
            l3_total_kb: 24 * 1024,
            clock_ghz: 2.40,
            cost: CostParams::intel(),
        }
    }

    /// Table 2: the AMD Phenom II based machine — 4 cores of Phenom II X4
    /// 945 at 3.00 GHz, 64 KB L1D/core, 2 MB L2, 6 MB L3.
    pub fn amd_phenom_ii() -> Self {
        MachineConfig {
            name: "AMD Phenom II X4 945".to_string(),
            datapath_bits: 128,
            vector_regs: 16,
            cores: 4,
            l1_data_kb: 64,
            l2_total_kb: 2 * 1024,
            l3_total_kb: 6 * 1024,
            clock_ghz: 3.00,
            cost: CostParams::amd(),
        }
    }

    /// A copy of this machine with a hypothetical datapath width (the
    /// Figure 18 sweep: 128 → 1024 bits).
    pub fn with_datapath_bits(&self, bits: u32) -> Self {
        let mut m = self.clone();
        m.datapath_bits = bits;
        m
    }

    /// Lane capacity for elements of `ty` on this datapath.
    pub fn lanes_for(&self, ty: slp_ir::ScalarType) -> usize {
        ty.lanes_for_datapath(self.datapath_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slp_ir::ScalarType;

    #[test]
    fn table1_and_table2_match_the_paper() {
        let intel = MachineConfig::intel_dunnington();
        assert_eq!(intel.cores, 12);
        assert_eq!(intel.clock_ghz, 2.40);
        assert_eq!(intel.l1_data_kb, 32);
        assert_eq!(intel.datapath_bits, 128);
        let amd = MachineConfig::amd_phenom_ii();
        assert_eq!(amd.cores, 4);
        assert_eq!(amd.clock_ghz, 3.00);
        assert_eq!(amd.l1_data_kb, 64);
    }

    #[test]
    fn amd_packing_is_costlier_than_intel() {
        let (i, a) = (CostParams::intel(), CostParams::amd());
        assert!(a.insert > i.insert);
        assert!(a.extract > i.extract);
        assert!(a.permute > i.permute);
    }

    #[test]
    fn lane_counts_follow_datapath() {
        let m = MachineConfig::intel_dunnington();
        assert_eq!(m.lanes_for(ScalarType::F64), 2);
        assert_eq!(m.lanes_for(ScalarType::F32), 4);
        let wide = m.with_datapath_bits(1024);
        assert_eq!(wide.lanes_for(ScalarType::F64), 16);
        assert_eq!(wide.name, m.name);
    }

    #[test]
    fn expensive_ops_cost_more() {
        use slp_ir::{BinOp, ExprShape};
        assert!(
            op_cost_factor(ExprShape::Binary(BinOp::Div))
                > op_cost_factor(ExprShape::Binary(BinOp::Add))
        );
        assert!(op_cost_factor(ExprShape::MulAdd) > op_cost_factor(ExprShape::Binary(BinOp::Add)));
    }
}
