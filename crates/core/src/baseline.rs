//! The baseline SLP algorithm of Larsen & Amarasinghe (PLDI 2000), the
//! comparator the paper evaluates against ("SLP" in §7).
//!
//! The algorithm is local and greedy: it seeds the pack set with
//! isomorphic, independent statement pairs whose memory references are
//! *adjacent*, extends packs along def-use and use-def chains, combines
//! chained pairs into wider groups, and schedules in plain dependence
//! order. It has no global view of reuse and fixes lane order at packing
//! time, which is exactly what the holistic optimizer improves on.

use slp_analysis::Unit;
use slp_ir::{BasicBlock, BlockDeps, Dest, Operand, Statement, StmtId, TypeEnv};

use crate::schedule::{schedule_in_program_order, ScheduleConfig};
use crate::superword::BlockSchedule;

/// An ordered statement pair in the pack set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PackPair {
    left: StmtId,
    right: StmtId,
}

/// Runs the baseline SLP algorithm on one block and returns the schedule.
///
/// `lane_cap` bounds group width exactly as in the holistic optimizer so
/// the two strategies compete under identical constraints.
pub fn baseline_block<E: TypeEnv>(
    block: &BasicBlock,
    deps: &BlockDeps,
    env: &E,
    lane_cap: impl FnMut(StmtId) -> usize,
) -> BlockSchedule {
    let groups = baseline_groups(block, deps, env, lane_cap);
    schedule_in_program_order(block, deps, &groups, &ScheduleConfig::default())
}

/// The grouping phases of the baseline algorithm (seed → extend →
/// combine), without the scheduling step. Unit statement order is the
/// chain order (ascending addresses). Exposed so the holistic pipeline
/// can evaluate adjacency-seeded groups under its own scheduler and cost
/// model.
pub fn baseline_groups<E: TypeEnv>(
    block: &BasicBlock,
    deps: &BlockDeps,
    env: &E,
    mut lane_cap: impl FnMut(StmtId) -> usize,
) -> Vec<Unit> {
    let pairs = build_pack_set(block, deps, env);
    combine_pairs(&pairs, block, deps, &mut lane_cap)
}

/// Whether statement `s` has a memory reference adjacent (one element
/// below) to the matching reference of `t`, in the destination or any
/// operand position.
fn has_adjacent_refs(s: &Statement, t: &Statement) -> bool {
    let dest_adj = match (s.dest(), t.dest()) {
        (Dest::Array(a), Dest::Array(b)) => adjacent(a, b),
        _ => false,
    };
    if dest_adj {
        return true;
    }
    s.expr()
        .operands()
        .iter()
        .zip(t.expr().operands())
        .any(|(x, y)| match (x, y) {
            (Operand::Array(a), Operand::Array(b)) => adjacent(a, b),
            _ => false,
        })
}

fn adjacent(a: &slp_ir::ArrayRef, b: &slp_ir::ArrayRef) -> bool {
    a.array == b.array
        && a.access.constant_difference(&b.access).is_some_and(|d| {
            let (last, outer) = d.split_last().expect("arrays have rank >= 1");
            *last == 1 && outer.iter().all(|&x| x == 0)
        })
}

/// Phases 1-2 of the baseline: seed with adjacent memory references, then
/// extend along def-use / use-def chains until fixpoint. Each statement
/// may be the left lane of at most one pair and the right lane of at most
/// one pair (the original algorithm's occupancy rule).
fn build_pack_set<E: TypeEnv>(block: &BasicBlock, deps: &BlockDeps, env: &E) -> Vec<PackPair> {
    let stmts = block.stmts();
    let mut pairs: Vec<PackPair> = Vec::new();
    let mut left_used: Vec<StmtId> = Vec::new();
    let mut right_used: Vec<StmtId> = Vec::new();

    let can_pack =
        |s: &Statement, t: &Statement, left_used: &[StmtId], right_used: &[StmtId]| -> bool {
            s.id() != t.id()
                && !left_used.contains(&s.id())
                && !right_used.contains(&t.id())
                && s.isomorphic(t, env)
                && deps.independent(s.id(), t.id())
        };

    // Seeds: adjacent memory references, oriented low address -> left.
    for (i, s) in stmts.iter().enumerate() {
        for t in &stmts[i + 1..] {
            let (l, r) = if has_adjacent_refs(s, t) {
                (s, t)
            } else if has_adjacent_refs(t, s) {
                (t, s)
            } else {
                continue;
            };
            if can_pack(l, r, &left_used, &right_used) {
                pairs.push(PackPair {
                    left: l.id(),
                    right: r.id(),
                });
                left_used.push(l.id());
                right_used.push(r.id());
            }
        }
    }

    // Extension along chains until fixpoint.
    let mut changed = true;
    while changed {
        changed = false;
        let snapshot = pairs.clone();
        for pair in &snapshot {
            // Use-def: pack the statements defining the pair's scalar
            // operands.
            let (ls, rs) = (
                block.stmt(pair.left).expect("stmt in block"),
                block.stmt(pair.right).expect("stmt in block"),
            );
            let arity = ls.expr().arity();
            for k in 0..arity {
                let (lu, ru) = (ls.expr().operands()[k], rs.expr().operands()[k]);
                if let (Some(lv), Some(rv)) = (lu.as_scalar(), ru.as_scalar()) {
                    let lp = block.position(pair.left).expect("in block");
                    let rp = block.position(pair.right).expect("in block");
                    if let (Some(ld), Some(rd)) =
                        (reaching_def(stmts, lv, lp), reaching_def(stmts, rv, rp))
                    {
                        if can_pack(ld, rd, &left_used, &right_used) {
                            pairs.push(PackPair {
                                left: ld.id(),
                                right: rd.id(),
                            });
                            left_used.push(ld.id());
                            right_used.push(rd.id());
                            changed = true;
                        }
                    }
                }
            }
            // Def-use: pack the first users of the pair's scalar results.
            if let (Dest::Scalar(lv), Dest::Scalar(rv)) = (ls.dest(), rs.dest()) {
                let lp = block.position(pair.left).expect("in block");
                let rp = block.position(pair.right).expect("in block");
                for k in 0..3 {
                    if let (Some(lu), Some(ru)) =
                        (first_use(stmts, *lv, lp, k), first_use(stmts, *rv, rp, k))
                    {
                        if can_pack(lu, ru, &left_used, &right_used) {
                            pairs.push(PackPair {
                                left: lu.id(),
                                right: ru.id(),
                            });
                            left_used.push(lu.id());
                            right_used.push(ru.id());
                            changed = true;
                        }
                    }
                }
            }
        }
    }
    pairs
}

/// The last statement before position `before` that writes scalar `v`.
fn reaching_def(stmts: &[Statement], v: slp_ir::VarId, before: usize) -> Option<&Statement> {
    stmts[..before]
        .iter()
        .rev()
        .find(|s| matches!(s.dest(), Dest::Scalar(w) if *w == v))
}

/// The first statement after position `after` whose operand position `k`
/// reads scalar `v`.
fn first_use(stmts: &[Statement], v: slp_ir::VarId, after: usize, k: usize) -> Option<&Statement> {
    stmts[after + 1..].iter().find(|s| {
        s.expr()
            .operands()
            .get(k)
            .is_some_and(|o| o.as_scalar() == Some(v))
    })
}

/// Phase 3: combine chained pairs `(a,b)` and `(b,c)` into `[a,b,c]`,
/// bounded by the lane capacity.
///
/// Pair membership only guarantees *pairwise* independence within each
/// pair; a combined group must be independent across every lane (§4.1
/// constraint 1), so extension re-checks the new member against the whole
/// chain, and the taken-filter below re-checks the surviving members.
fn combine_pairs(
    pairs: &[PackPair],
    block: &BasicBlock,
    deps: &BlockDeps,
    lane_cap: &mut impl FnMut(StmtId) -> usize,
) -> Vec<Unit> {
    let mut chains: Vec<Vec<StmtId>> = Vec::new();
    let mut used = vec![false; pairs.len()];
    for (i, p) in pairs.iter().enumerate() {
        if used[i] {
            continue;
        }
        used[i] = true;
        let mut chain = vec![p.left, p.right];
        // Extend to the right while a pair continues the chain and the
        // new member stays independent of every existing lane.
        loop {
            let cap = lane_cap(chain[0]);
            if chain.len() >= cap {
                break;
            }
            let tail = *chain.last().expect("chain non-empty");
            let next = pairs.iter().enumerate().find(|(j, q)| {
                !used[*j]
                    && q.left == tail
                    && !chain.contains(&q.right)
                    && chain.iter().all(|&m| deps.independent(m, q.right))
            });
            match next {
                Some((j, q)) => {
                    used[j] = true;
                    chain.push(q.right);
                }
                None => break,
            }
        }
        chains.push(chain);
    }

    let mut units: Vec<Unit> = Vec::new();
    let mut taken: Vec<StmtId> = Vec::new();
    for chain in chains {
        // A statement can only belong to one group; later chains skip
        // already-taken members (drop the whole chain if < 2 remain).
        // Dropping a middle member can leave neighbours that were never
        // checked against each other, so keep only a mutually independent
        // prefix of the survivors.
        let mut members: Vec<StmtId> = Vec::new();
        for s in chain {
            if !taken.contains(&s) && members.iter().all(|&m| deps.independent(m, s)) {
                members.push(s);
            }
        }
        if members.len() >= 2 {
            taken.extend(&members);
            let mut unit = Unit::singleton(members[0]);
            for &m in &members[1..] {
                unit = Unit::merged(&unit, &Unit::singleton(m));
            }
            units.push(unit);
        }
    }
    for s in block.iter() {
        if !taken.contains(&s.id()) {
            units.push(Unit::singleton(s.id()));
        }
    }
    units
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::superword::{validate_schedule, ScheduledItem};
    use slp_ir::{AccessVector, AffineExpr, ArrayRef, BinOp, Expr, Program, ScalarType};

    /// a = A[2i]; b = A[2i+1]; c = a * x; d = b * x;
    fn adjacent_block() -> (Program, BasicBlock) {
        let mut p = Program::new("adj");
        let arr = p.add_array("A", ScalarType::F64, vec![64], true);
        let i = p.add_loop_var("i");
        let names = ["a", "b", "c", "d", "x"];
        let v: Vec<_> = names
            .iter()
            .map(|n| p.add_scalar(*n, ScalarType::F64))
            .collect();
        let at = |cst: i64| {
            ArrayRef::new(
                arr,
                AccessVector::new(vec![AffineExpr::var(i).scaled(2).offset(cst)]),
            )
        };
        let s0 = p.make_stmt(v[0].into(), Expr::Copy(at(0).into()));
        let s1 = p.make_stmt(v[1].into(), Expr::Copy(at(1).into()));
        let s2 = p.make_stmt(
            v[2].into(),
            Expr::Binary(BinOp::Mul, v[0].into(), v[4].into()),
        );
        let s3 = p.make_stmt(
            v[3].into(),
            Expr::Binary(BinOp::Mul, v[1].into(), v[4].into()),
        );
        let bb: BasicBlock = [s0, s1, s2, s3].into_iter().collect();
        (p, bb)
    }

    #[test]
    fn seeds_from_adjacent_refs_and_extends_def_use() {
        let (p, bb) = adjacent_block();
        let deps = BlockDeps::analyze(&bb);
        let sched = baseline_block(&bb, &deps, &p, |_| 2);
        validate_schedule(&bb, &deps, &sched, &p, |_| 2).unwrap();
        // Both the load pair and the multiply pair get vectorized.
        assert_eq!(sched.superword_count(), 2);
    }

    #[test]
    fn no_adjacency_means_no_seeds() {
        // Scalar-only isomorphic statements: the baseline finds nothing
        // (no adjacent memory references to seed from).
        let mut p = Program::new("scalars");
        let x = p.add_scalar("x", ScalarType::F64);
        let a = p.add_scalar("a", ScalarType::F64);
        let b = p.add_scalar("b", ScalarType::F64);
        let s0 = p.make_stmt(a.into(), Expr::Binary(BinOp::Add, x.into(), 1.0.into()));
        let s1 = p.make_stmt(b.into(), Expr::Binary(BinOp::Add, x.into(), 2.0.into()));
        let bb: BasicBlock = [s0, s1].into_iter().collect();
        let deps = BlockDeps::analyze(&bb);
        let sched = baseline_block(&bb, &deps, &p, |_| 2);
        assert_eq!(sched.superword_count(), 0);
    }

    #[test]
    fn chains_combine_to_lane_cap() {
        // Four adjacent loads with a 4-lane cap combine into one group.
        let mut p = Program::new("c4");
        let arr = p.add_array("A", ScalarType::F32, vec![64], true);
        let i = p.add_loop_var("i");
        let v: Vec<_> = (0..4)
            .map(|k| p.add_scalar(format!("t{k}"), ScalarType::F32))
            .collect();
        let stmts: Vec<_> = (0..4)
            .map(|k| {
                let r = ArrayRef::new(
                    arr,
                    AccessVector::new(vec![AffineExpr::var(i).scaled(4).offset(k)]),
                );
                p.make_stmt(v[k as usize].into(), Expr::Copy(r.into()))
            })
            .collect();
        let bb: BasicBlock = stmts.into_iter().collect();
        let deps = BlockDeps::analyze(&bb);
        let sched = baseline_block(&bb, &deps, &p, |_| 4);
        validate_schedule(&bb, &deps, &sched, &p, |_| 4).unwrap();
        assert_eq!(sched.superword_count(), 1);
        let ScheduledItem::Superword(sw) = &sched.items()[0] else {
            panic!("expected superword");
        };
        assert_eq!(sw.width(), 4);
        // Lane order follows ascending addresses.
        assert_eq!(
            sw.lanes().to_vec(),
            (0..4).map(StmtId::new).collect::<Vec<_>>()
        );
    }

    #[test]
    fn lane_cap_cuts_chains() {
        let (p, bb) = adjacent_block();
        let deps = BlockDeps::analyze(&bb);
        let sched = baseline_block(&bb, &deps, &p, |_| 2);
        for item in sched.items() {
            assert!(item.stmts().len() <= 2);
        }
    }
}
