//! The end-to-end compilation pipeline (paper Figure 3).
//!
//! Pre-processing (loop unrolling, alignment analysis) → holistic SLP
//! optimizer (statement grouping + statement scheduling) → data layout
//! optimization. The output is a [`CompiledKernel`]: the transformed
//! program plus a per-block schedule, a scalar memory layout and the array
//! replications, ready for the `slp-vm` code generator and interpreter.

use slp_ir::{unroll_program, BlockDeps, BlockId, Dest, Program, StmtId, TypeEnv};

use slp_analysis::WeightParams;
use slp_analyze::RangeOracle;

use crate::baseline::{baseline_block, baseline_groups};
use crate::cost::{estimate_schedule_cost, CostContext};
use crate::error::VerifyError;
use crate::group::group_block_with;
use crate::layout::array::{optimize_array_layout, ArrayLayoutConfig, Replication};
use crate::layout::collect_pack_uses;
use crate::layout::scalar::{optimize_scalar_layout, ScalarLayout};
use crate::machine::MachineConfig;
use crate::native::native_block;
use crate::schedule::{schedule_block, schedule_in_program_order, ScheduleConfig};
use crate::superword::{validate_schedule, BlockSchedule};
use crate::telemetry::{Phase, PhaseTimings};

/// Which SLP strategy to compile with — the four schemes compared in §7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// No SLP at all: the scalar code the speedups are normalized to.
    Scalar,
    /// The native compiler's simple vectorizer ("Native").
    Native,
    /// Larsen & Amarasinghe's algorithm ("SLP").
    Baseline,
    /// This paper's holistic optimizer ("Global"); add layout for
    /// "Global+Layout" via [`SlpConfig::layout`].
    Holistic,
}

impl Strategy {
    /// The figure-legend name of the strategy.
    pub fn label(self) -> &'static str {
        match self {
            Strategy::Scalar => "scalar",
            Strategy::Native => "Native",
            Strategy::Baseline => "SLP",
            Strategy::Holistic => "Global",
        }
    }

    /// The CLI name of the strategy (`scalar`, `native`, `slp`,
    /// `global`), as parsed by [`FromStr`](std::str::FromStr) and
    /// rendered by [`Display`](std::fmt::Display). Distinct from
    /// [`Strategy::label`], which follows the figure legends.
    pub fn cli_name(self) -> &'static str {
        match self {
            Strategy::Scalar => "scalar",
            Strategy::Native => "native",
            Strategy::Baseline => "slp",
            Strategy::Holistic => "global",
        }
    }

    /// All strategies, in figure order.
    pub const ALL: [Strategy; 4] = [
        Strategy::Scalar,
        Strategy::Native,
        Strategy::Baseline,
        Strategy::Holistic,
    ];
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.cli_name())
    }
}

impl std::str::FromStr for Strategy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "scalar" => Ok(Strategy::Scalar),
            "native" => Ok(Strategy::Native),
            "slp" => Ok(Strategy::Baseline),
            "global" => Ok(Strategy::Holistic),
            other => Err(format!(
                "unknown strategy '{other}' (expected scalar, native, slp or global)"
            )),
        }
    }
}

/// A post-compile verification pass: given the original program and the
/// finished kernel, either accept it or return a structured
/// [`VerifyError`].
///
/// [`compile`] calls the installed verifier once on its final output
/// (after the Global+Layout dual arbitration picked a winner) and panics
/// with the rendered error if it rejects. The `slp-verify` crate provides
/// two implementations (`pipeline_hook` for the static checks,
/// `pipeline_hook_full` adding differential translation validation); the
/// trait lives here so `slp-core` does not depend on the checker.
///
/// The trait is object-safe, and any
/// `Fn(&Program, &CompiledKernel) -> Result<(), VerifyError>` closure or
/// fn item implements it via the blanket impl, so plain functions keep
/// working unchanged:
///
/// ```ignore
/// let cfg = SlpConfig::for_machine(machine, Strategy::Holistic)
///     .with_verifier(slp_verify::pipeline_hook);
/// ```
pub trait Verifier: Send + Sync {
    /// Checks the finished kernel against the original program.
    fn verify(&self, program: &Program, kernel: &CompiledKernel) -> Result<(), VerifyError>;

    /// A short display name for diagnostics.
    fn name(&self) -> &str {
        "verifier"
    }
}

impl<F> Verifier for F
where
    F: Fn(&Program, &CompiledKernel) -> Result<(), VerifyError> + Send + Sync,
{
    fn verify(&self, program: &Program, kernel: &CompiledKernel) -> Result<(), VerifyError> {
        self(program, kernel)
    }
}

/// A shared, cloneable handle to an installed [`Verifier`].
///
/// [`SlpConfig`] stores the verifier behind this newtype so the config
/// stays `Clone` (and `Debug`) while the verifier itself only needs to be
/// a trait object.
#[derive(Clone)]
pub struct VerifierHandle(std::sync::Arc<dyn Verifier>);

impl VerifierHandle {
    /// Wraps a verifier in a shared handle.
    pub fn new(verifier: impl Verifier + 'static) -> Self {
        VerifierHandle(std::sync::Arc::new(verifier))
    }

    /// Runs the wrapped verifier.
    pub fn verify(&self, program: &Program, kernel: &CompiledKernel) -> Result<(), VerifyError> {
        self.0.verify(program, kernel)
    }

    /// The wrapped verifier's display name.
    pub fn name(&self) -> &str {
        self.0.name()
    }
}

impl std::fmt::Debug for VerifierHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "VerifierHandle({})", self.0.name())
    }
}

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct SlpConfig {
    /// The target machine (datapath width, costs).
    pub machine: MachineConfig,
    /// Which optimizer runs.
    pub strategy: Strategy,
    /// Unroll factor for innermost loops; `0` chooses the factor that
    /// fills the datapath with the program's dominant element type.
    pub unroll: usize,
    /// Whether the data layout stage runs (Global+Layout).
    pub layout: bool,
    /// Scheduling knobs.
    pub schedule: ScheduleConfig,
    /// Array-replication knobs.
    pub array_layout: ArrayLayoutConfig,
    /// Grouping weight knobs.
    pub weights: WeightParams,
    /// Opt-in cross-iteration superword reuse (the Shin et al. style
    /// register caching the paper cites as complementary): a pack whose
    /// next-iteration content equals another pack loaded this iteration
    /// is carried in a register instead of reloaded. Off by default.
    pub cross_iteration_reuse: bool,
    /// Opt-in range-refined dependence testing: dependence queries go
    /// through `slp-analyze`'s strided-interval oracle, which disproves
    /// aliasing the constant/GCD/interval baseline keeps (loop-stride
    /// parity, value-band separation, joint multi-dimension reasoning).
    /// Every disproof removes a false dependence edge and is counted in
    /// [`CompileStats::deps_refuted`]. Off by default.
    pub refine_deps: bool,
    /// Post-compile verification pass; `None` (the default) skips
    /// verification. See [`Verifier`].
    pub verify: Option<VerifierHandle>,
}

impl SlpConfig {
    /// The configuration used throughout §7 for a given machine and
    /// strategy: auto unroll, layout off.
    pub fn for_machine(machine: MachineConfig, strategy: Strategy) -> Self {
        let array_layout = ArrayLayoutConfig {
            cost: machine.cost,
            ..ArrayLayoutConfig::default()
        };
        SlpConfig {
            machine,
            strategy,
            unroll: 0,
            layout: false,
            schedule: ScheduleConfig::default(),
            array_layout,
            weights: WeightParams::default(),
            cross_iteration_reuse: false,
            refine_deps: false,
            verify: None,
        }
    }

    /// Enables range-refined dependence testing (see
    /// [`SlpConfig::refine_deps`]).
    pub fn with_refined_deps(mut self) -> Self {
        self.refine_deps = true;
        self
    }

    /// Enables the data layout stage (the paper's Global+Layout scheme).
    pub fn with_layout(mut self) -> Self {
        self.layout = true;
        self
    }

    /// Installs a post-compile verification pass. Accepts any
    /// [`Verifier`] — including plain functions and closures of shape
    /// `Fn(&Program, &CompiledKernel) -> Result<(), VerifyError>`.
    pub fn with_verifier(mut self, verifier: impl Verifier + 'static) -> Self {
        self.verify = Some(VerifierHandle::new(verifier));
        self
    }
}

/// Aggregate statistics of one compilation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CompileStats {
    /// Statements after unrolling.
    pub stmts: usize,
    /// Basic blocks processed.
    pub blocks: usize,
    /// Superword statements emitted.
    pub superwords: usize,
    /// Statements covered by superword statements.
    pub vectorized_stmts: usize,
    /// Scalar superwords the layout stage satisfied.
    pub scalar_packs_laid_out: usize,
    /// Array replications committed.
    pub replications: usize,
    /// Candidate dependences disproved by the range-refined oracle
    /// beyond what the GCD baseline settles (0 unless
    /// [`SlpConfig::refine_deps`] is on).
    pub deps_refuted: usize,
}

/// The result of compiling one kernel.
#[derive(Debug, Clone)]
pub struct CompiledKernel {
    /// The transformed program (unrolled; references rewritten when the
    /// layout stage replicated arrays).
    pub program: Program,
    /// Per-block schedules, keyed by the block's stable id.
    pub schedules: Vec<(BlockId, BlockSchedule)>,
    /// Memory placement of scalar variables.
    pub scalar_layout: ScalarLayout,
    /// Array replications the runtime performs before the kernel's loops.
    pub replications: Vec<Replication>,
    /// Compilation statistics.
    pub stats: CompileStats,
    /// The configuration the kernel was compiled with.
    pub config: SlpConfig,
}

impl CompiledKernel {
    /// The schedule of block `id`, if any.
    pub fn schedule_of(&self, id: BlockId) -> Option<&BlockSchedule> {
        self.schedules
            .iter()
            .find(|(b, _)| *b == id)
            .map(|(_, s)| s)
    }
}

/// Compiles `program` under `config`.
///
/// For the Global+Layout scheme the pipeline compiles twice — once
/// arbitrating grouping proposals under the assumption that the layout
/// stage will repair strided read-only packs, once without — and keeps
/// the variant with the lower end-to-end cost estimate. This implements
/// the paper's rule that the layout stage is skipped when it does not pay
/// ("the benefit of layout optimization has to outweigh the cost").
///
/// # Panics
///
/// Panics if an optimizer produces a schedule violating the §4.1 validity
/// constraints — an internal invariant, exercised heavily by the test
/// suite — or if an installed [`SlpConfig::verify`] hook rejects the
/// finished kernel.
pub fn compile(program: &Program, config: &SlpConfig) -> CompiledKernel {
    compile_timed(program, config).0
}

/// Compiles `program` under `config`, additionally returning the wall
/// time each pipeline [`Phase`] consumed.
///
/// The timings of the Global+Layout dual arbitration accumulate across
/// both inner compiles — they answer "where did this compilation spend
/// its time", not "how long would a single pass take". Semantics and
/// panics are identical to [`compile`].
pub fn compile_timed(program: &Program, config: &SlpConfig) -> (CompiledKernel, PhaseTimings) {
    let mut timings = PhaseTimings::new();
    let kernel = if config.strategy == Strategy::Holistic && config.layout {
        let optimistic = compile_inner(program, config, true, &mut timings);
        let plain = compile_inner(program, config, false, &mut timings);
        if estimated_total_cost(&optimistic) <= estimated_total_cost(&plain) {
            optimistic
        } else {
            plain
        }
    } else {
        compile_inner(program, config, config.layout, &mut timings)
    };
    if let Some(hook) = &config.verify {
        let verdict = timings.time(Phase::Verify, || hook.verify(program, &kernel));
        if let Err(report) = verdict {
            panic!(
                "verification rejected '{}' under the {} strategy:\n{report}",
                program.name(),
                config.strategy.label()
            );
        }
    }
    (kernel, timings)
}

/// Total estimated cycles of a compiled kernel: per-block schedule cost
/// times dynamic trip count, plus the one-time replication copies.
fn estimated_total_cost(kernel: &CompiledKernel) -> f64 {
    let exposed = kernel.program.upward_exposed_scalars();
    let mut total = 0.0;
    for info in kernel.program.blocks() {
        let cx = CostContext {
            program: &kernel.program,
            loops: &info.loops,
            exposed: &exposed,
            cost: &kernel.config.machine.cost,
            vector_regs: kernel.config.machine.vector_regs,
            assume_layout: false,
        };
        let per_exec = match kernel.schedule_of(info.id) {
            Some(sched) => estimate_schedule_cost(&info.block, sched, &cx),
            None => crate::cost::estimate_scalar_cost(&info.block, &cx),
        };
        // Saturating: a pathological nest can overflow the product long
        // before the VM would ever run it.
        let trips: i64 = info
            .loops
            .iter()
            .fold(1i64, |acc, h| acc.saturating_mul(h.trip_count()));
        total += per_exec * trips.max(1) as f64;
    }
    let c = &kernel.config.machine.cost;
    for r in &kernel.replications {
        total += r.copy_count() as f64 * (c.scalar_load + c.scalar_store);
    }
    total
}

fn compile_inner(
    program: &Program,
    config: &SlpConfig,
    optimism: bool,
    timings: &mut PhaseTimings,
) -> CompiledKernel {
    let mut program = program.clone();

    // Pre-processing: unroll innermost loops to expose SLP.
    let unroll = if config.unroll == 0 {
        config.machine.lanes_for(dominant_type(&program))
    } else {
        config.unroll
    };
    if config.strategy != Strategy::Scalar {
        timings.time(Phase::Unroll, || unroll_program(&mut program, unroll));
    }

    // Stage 1: superword statement generation, block by block.
    let exposed = program.upward_exposed_scalars();
    let infos = program.blocks();
    let mut schedules = Vec::with_capacity(infos.len());
    let mut stats = CompileStats {
        stmts: program.stmt_count(),
        blocks: infos.len(),
        ..CompileStats::default()
    };
    for info in &infos {
        let deps = timings.time(Phase::Alignment, || {
            if config.refine_deps {
                let oracle = RangeOracle::new();
                let deps = BlockDeps::analyze_with(&info.block, &info.loops, &oracle);
                stats.deps_refuted += oracle.refuted_beyond_gcd() as usize;
                deps
            } else {
                BlockDeps::analyze_in(&info.block, &info.loops)
            }
        });
        let lane_cap = |s: StmtId| {
            let stmt = info.block.stmt(s).expect("stmt in block");
            config.machine.lanes_for(program.dest_type(stmt.dest()))
        };
        let sched = match config.strategy {
            Strategy::Scalar => BlockSchedule::scalar(&info.block),
            Strategy::Native => timings.time(Phase::Grouping, || {
                native_block(&info.block, &deps, &program, lane_cap)
            }),
            Strategy::Baseline => timings.time(Phase::Grouping, || {
                baseline_block(&info.block, &deps, &program, lane_cap)
            }),
            Strategy::Holistic => {
                // The §4.3 cost model arbitrates between grouping
                // proposals: the holistic grouping under the configured
                // and the paper's pure-reuse weight profiles, plus the
                // adjacency-seeded grouping under both this framework's
                // scheduler and the original program order. Keeping the
                // cheapest implements the paper's "if we realize that our
                // transformation could potentially degrade the
                // performance, we choose not to apply it" at proposal
                // granularity.
                let cx = CostContext {
                    program: &program,
                    loops: &info.loops,
                    exposed: &exposed,
                    cost: &config.machine.cost,
                    vector_regs: config.machine.vector_regs,
                    assume_layout: optimism,
                };
                // The layout-aware (optimistic) compile also tries the
                // paper's pure-reuse weights: they surface the
                // gather-heavy, reuse-rich groupings that replication
                // repairs. Without layout, the cost-adjusted weights
                // dominate and the extra grouping pass is skipped.
                let mut profiles = vec![config.weights];
                if optimism {
                    profiles.push(WeightParams::reuse_only());
                }
                let mut proposals: Vec<BlockSchedule> = Vec::new();
                for w in profiles {
                    let g = timings.time(Phase::Grouping, || {
                        group_block_with(&info.block, &deps, &program, lane_cap, &w)
                    });
                    proposals.push(timings.time(Phase::Scheduling, || {
                        schedule_block(&info.block, &deps, &g.units, &config.schedule)
                    }));
                }
                let bg = timings.time(Phase::Grouping, || {
                    baseline_groups(&info.block, &deps, &program, lane_cap)
                });
                proposals.push(timings.time(Phase::Scheduling, || {
                    schedule_block(&info.block, &deps, &bg, &config.schedule)
                }));
                proposals.push(timings.time(Phase::Scheduling, || {
                    schedule_in_program_order(&info.block, &deps, &bg, &config.schedule)
                }));
                proposals
                    .into_iter()
                    .map(|s| {
                        let c = estimate_schedule_cost(&info.block, &s, &cx);
                        (c, s)
                    })
                    // Invariant: cost estimates are finite sums/products of
                    // finite machine parameters, and `proposals` always holds
                    // at least the program-order schedule.
                    .min_by(|(a, _), (b, _)| a.partial_cmp(b).expect("finite costs"))
                    .map(|(_, s)| s)
                    .expect("at least one proposal")
            }
        };
        // Translation-validation backstop: every scheduler must produce a
        // §4.1-valid schedule. This *has* fired on fuzzed inputs — grouping
        // once combined pairwise-independent chains whose non-adjacent lanes
        // were dependent (independence is not transitive) — so it stays an
        // `expect`: an invalid schedule is a miscompile and must not ship.
        validate_schedule(&info.block, &deps, &sched, &program, lane_cap)
            .expect("optimizer produced an invalid schedule");
        stats.superwords += sched.superword_count();
        stats.vectorized_stmts += sched
            .items()
            .iter()
            .filter(|i| i.stmts().len() > 1)
            .map(|i| i.stmts().len())
            .sum::<usize>();
        schedules.push((info.clone(), sched));
    }

    // Stage 2: data layout optimization.
    let layout_start = std::time::Instant::now();
    let uses = collect_pack_uses(&schedules);
    let (scalar_layout, satisfied) = if config.layout {
        optimize_scalar_layout(&program, &uses)
    } else {
        (ScalarLayout::declaration_order(&program), 0)
    };
    stats.scalar_packs_laid_out = satisfied;
    let replications = if config.layout {
        optimize_array_layout(&mut program, &uses, &config.array_layout)
    } else {
        Vec::new()
    };
    stats.replications = replications.len();
    timings.add(Phase::Layout, layout_start.elapsed());

    CompiledKernel {
        program,
        schedules: schedules
            .into_iter()
            .map(|(info, s)| (info.id, s))
            .collect(),
        scalar_layout,
        replications,
        stats,
        config: config.clone(),
    }
}

/// The most frequent destination element type, which the auto unroll
/// factor fills the datapath with.
fn dominant_type(program: &Program) -> slp_ir::ScalarType {
    let mut counts = std::collections::BTreeMap::new();
    program.for_each_stmt(|s| {
        let ty = match s.dest() {
            Dest::Scalar(_) | Dest::Array(_) => program.dest_type(s.dest()),
        };
        *counts.entry(ty).or_insert(0usize) += 1;
    });
    counts
        .into_iter()
        .max_by_key(|&(_, n)| n)
        .map(|(t, _)| t)
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "kernel k {
        const N = 32;
        array A: f64[2*N];
        array B: f64[4*N];
        scalar a, b: f64;
        for i in 0..N {
            a = A[2*i];
            b = A[2*i+1];
            A[2*i] = a + B[4*i] * a;
            A[2*i+1] = b + B[4*i+2] * b;
        }
    }";

    fn program() -> Program {
        slp_lang::compile(SRC).unwrap()
    }

    #[test]
    fn holistic_pipeline_vectorizes() {
        let cfg = SlpConfig::for_machine(MachineConfig::intel_dunnington(), Strategy::Holistic);
        let k = compile(&program(), &cfg);
        assert!(k.stats.superwords > 0);
        assert!(k.stats.vectorized_stmts >= 4);
        // f64 on 128 bits: unrolled by 2, so the body has 8 statements.
        assert_eq!(k.stats.stmts, 8);
    }

    #[test]
    fn scalar_strategy_is_identity() {
        let cfg = SlpConfig::for_machine(MachineConfig::intel_dunnington(), Strategy::Scalar);
        let k = compile(&program(), &cfg);
        assert_eq!(k.stats.superwords, 0);
        assert_eq!(k.stats.stmts, 4, "scalar build does not unroll");
    }

    #[test]
    fn all_strategies_produce_valid_output() {
        for strategy in [Strategy::Native, Strategy::Baseline, Strategy::Holistic] {
            let cfg = SlpConfig::for_machine(MachineConfig::intel_dunnington(), strategy);
            let k = compile(&program(), &cfg); // validity asserted inside
            assert_eq!(k.schedules.len(), k.stats.blocks);
        }
    }

    #[test]
    fn layout_stage_reports_work() {
        let cfg = SlpConfig::for_machine(MachineConfig::intel_dunnington(), Strategy::Holistic)
            .with_layout();
        let k = compile(&program(), &cfg);
        // The <a,b> dest pack gives the scalar layout something to place.
        assert!(k.stats.scalar_packs_laid_out > 0);
    }

    #[test]
    fn wider_datapath_unrolls_further() {
        let machine = MachineConfig::intel_dunnington().with_datapath_bits(512);
        let cfg = SlpConfig::for_machine(machine, Strategy::Holistic);
        let k = compile(&program(), &cfg);
        assert_eq!(k.stats.stmts, 32, "f64 at 512 bits unrolls 8x");
    }
}

#[cfg(test)]
mod arbitration_tests {
    use super::*;
    use crate::cost::{estimate_schedule_cost, CostContext};

    /// A block where the adjacency-seeded baseline is optimal (pure
    /// contiguous streams): the arbitration must cost Global at or below
    /// the baseline — it can pick the baseline's own proposal.
    #[test]
    fn global_matches_baseline_when_baseline_is_optimal() {
        let p = slp_lang::compile(
            "kernel k { array A: f64[64]; array B: f64[64];
             for i in 0..32 { A[i] = B[i] * 2.0; } }",
        )
        .expect("compiles");
        let machine = MachineConfig::intel_dunnington();
        let global = compile(
            &p,
            &SlpConfig::for_machine(machine.clone(), Strategy::Holistic),
        );
        let baseline = compile(
            &p,
            &SlpConfig::for_machine(machine.clone(), Strategy::Baseline),
        );
        let exposed = global.program.upward_exposed_scalars();
        let cost_of = |k: &CompiledKernel| -> f64 {
            k.program
                .blocks()
                .iter()
                .map(|info| {
                    let cx = CostContext {
                        program: &k.program,
                        loops: &info.loops,
                        exposed: &exposed,
                        cost: &machine.cost,
                        vector_regs: machine.vector_regs,
                        assume_layout: false,
                    };
                    estimate_schedule_cost(
                        &info.block,
                        k.schedule_of(info.id).expect("scheduled"),
                        &cx,
                    )
                })
                .sum()
        };
        assert!(cost_of(&global) <= cost_of(&baseline) + 1e-9);
    }

    /// The dual-arbitration Global+Layout path never estimates worse than
    /// plain Global on any suite kernel.
    #[test]
    fn layout_arbitration_never_regresses_estimates() {
        let machine = MachineConfig::intel_dunnington();
        for (spec, p) in slp_suite::all(1) {
            let g = compile(
                &p,
                &SlpConfig::for_machine(machine.clone(), Strategy::Holistic),
            );
            let gl = compile(
                &p,
                &SlpConfig::for_machine(machine.clone(), Strategy::Holistic).with_layout(),
            );
            // Compare through the estimator used for arbitration.
            let eg = super::estimated_total_cost(&g);
            let egl = super::estimated_total_cost(&gl);
            assert!(
                egl <= eg * 1.001,
                "{}: layout arbitration regressed ({egl} > {eg})",
                spec.name
            );
        }
    }

    #[test]
    fn strategy_labels_match_the_figures() {
        assert_eq!(Strategy::Scalar.label(), "scalar");
        assert_eq!(Strategy::Native.label(), "Native");
        assert_eq!(Strategy::Baseline.label(), "SLP");
        assert_eq!(Strategy::Holistic.label(), "Global");
    }

    #[test]
    fn strategy_cli_names_roundtrip() {
        for s in Strategy::ALL {
            assert_eq!(s.cli_name().parse::<Strategy>(), Ok(s));
            assert_eq!(s.to_string(), s.cli_name());
        }
        assert!("bogus".parse::<Strategy>().is_err());
    }
}

#[cfg(test)]
mod verifier_tests {
    use super::*;
    use crate::error::VerifyError;

    fn program() -> Program {
        slp_lang::compile("kernel k { array A: f64[8]; for i in 0..8 { A[i] = A[i] + 1.0; } }")
            .expect("compiles")
    }

    fn accepting(_: &Program, _: &CompiledKernel) -> Result<(), VerifyError> {
        Ok(())
    }

    fn rejecting(_: &Program, _: &CompiledKernel) -> Result<(), VerifyError> {
        Err(VerifyError::new("synthetic rejection"))
    }

    #[test]
    fn fn_items_implement_verifier_via_the_blanket_impl() {
        let cfg = SlpConfig::for_machine(MachineConfig::intel_dunnington(), Strategy::Holistic)
            .with_verifier(accepting);
        assert!(cfg.verify.is_some());
        let k = compile(&program(), &cfg);
        assert!(k.stats.stmts > 0);
        // The handle (and thus the config) stays cloneable.
        let cloned = cfg.clone();
        assert!(cloned.verify.is_some());
    }

    #[test]
    #[should_panic(expected = "synthetic rejection")]
    fn rejecting_verifier_panics_with_the_report() {
        let cfg = SlpConfig::for_machine(MachineConfig::intel_dunnington(), Strategy::Holistic)
            .with_verifier(rejecting);
        compile(&program(), &cfg);
    }

    #[test]
    fn trait_objects_install_too() {
        struct Always;
        impl Verifier for Always {
            fn verify(&self, _: &Program, _: &CompiledKernel) -> Result<(), VerifyError> {
                Ok(())
            }
            fn name(&self) -> &str {
                "always"
            }
        }
        let cfg = SlpConfig::for_machine(MachineConfig::intel_dunnington(), Strategy::Baseline)
            .with_verifier(Always);
        assert_eq!(cfg.verify.as_ref().expect("installed").name(), "always");
        compile(&program(), &cfg);
    }
}
