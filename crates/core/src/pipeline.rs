//! The end-to-end compilation pipeline (paper Figure 3).
//!
//! Pre-processing (loop unrolling, alignment analysis) → holistic SLP
//! optimizer (statement grouping + statement scheduling) → data layout
//! optimization. The output is a [`CompiledKernel`]: the transformed
//! program plus a per-block schedule, a scalar memory layout and the array
//! replications, ready for the `slp-vm` code generator and interpreter.

use slp_ir::{
    unroll_program, BasicBlock, BlockDeps, BlockId, Dest, LoopHeader, Program, StmtId, TypeEnv,
};

use slp_analysis::WeightParams;
use slp_analyze::{RangeOracle, SafetyCert};

use crate::baseline::{baseline_block, baseline_groups};
use crate::cost::{estimate_schedule_cost, CostContext};
use crate::error::VerifyError;
use crate::group::group_block_with;
use crate::layout::array::{optimize_array_layout, ArrayLayoutConfig, Replication};
use crate::layout::collect_pack_uses;
use crate::layout::scalar::{optimize_scalar_layout, ScalarLayout};
use crate::machine::MachineConfig;
use crate::native::native_block;
use crate::schedule::{schedule_block, schedule_in_program_order, ScheduleConfig};
use crate::superword::{validate_schedule, BlockSchedule};
use crate::telemetry::{Phase, PhaseTimings};

/// Which SLP strategy to compile with — the four schemes compared in §7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// No SLP at all: the scalar code the speedups are normalized to.
    Scalar,
    /// The native compiler's simple vectorizer ("Native").
    Native,
    /// Larsen & Amarasinghe's algorithm ("SLP").
    Baseline,
    /// This paper's holistic optimizer ("Global"); add layout for
    /// "Global+Layout" via [`SlpConfig::layout`].
    Holistic,
    /// Exact statement packing: the holistic heuristic's result is the
    /// warm-start incumbent of a 0-1 ILP branch-and-bound search (the
    /// goSLP formulation) run by the installed [`Packer`] under the
    /// anytime budgets in [`SlpConfig::opt`]. Degrades to the heuristic
    /// when the budget expires, recorded in
    /// [`CompileStats::opt_degraded`].
    Optimal,
}

impl Strategy {
    /// The figure-legend name of the strategy.
    pub fn label(self) -> &'static str {
        match self {
            Strategy::Scalar => "scalar",
            Strategy::Native => "Native",
            Strategy::Baseline => "SLP",
            Strategy::Holistic => "Global",
            Strategy::Optimal => "Optimal",
        }
    }

    /// The CLI name of the strategy (`scalar`, `native`, `slp`,
    /// `global`, `optimal`), as parsed by
    /// [`FromStr`](std::str::FromStr) and rendered by
    /// [`Display`](std::fmt::Display). The parser additionally accepts
    /// `auto-adjacent` as an alias for `native`; rendering always uses
    /// the canonical spelling. Distinct from [`Strategy::label`], which
    /// follows the figure legends.
    pub fn cli_name(self) -> &'static str {
        match self {
            Strategy::Scalar => "scalar",
            Strategy::Native => "native",
            Strategy::Baseline => "slp",
            Strategy::Holistic => "global",
            Strategy::Optimal => "optimal",
        }
    }

    /// All strategies, in figure order (the solver-backed `Optimal`
    /// scheme last).
    pub const ALL: [Strategy; 5] = [
        Strategy::Scalar,
        Strategy::Native,
        Strategy::Baseline,
        Strategy::Holistic,
        Strategy::Optimal,
    ];
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.cli_name())
    }
}

impl std::str::FromStr for Strategy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "scalar" => Ok(Strategy::Scalar),
            // `auto-adjacent` names what the native vectorizer actually
            // does — pack only adjacent statements — and is kept as an
            // accepted alias so scripts can use either spelling.
            "native" | "auto-adjacent" => Ok(Strategy::Native),
            "slp" => Ok(Strategy::Baseline),
            "global" => Ok(Strategy::Holistic),
            "optimal" => Ok(Strategy::Optimal),
            other => Err(format!(
                "unknown strategy '{other}' (expected scalar, native (alias auto-adjacent), \
                 slp, global or optimal)"
            )),
        }
    }
}

/// A post-compile verification pass: given the original program and the
/// finished kernel, either accept it or return a structured
/// [`VerifyError`].
///
/// [`compile`] calls the installed verifier once on its final output
/// (after the Global+Layout dual arbitration picked a winner) and panics
/// with the rendered error if it rejects. The `slp-verify` crate provides
/// two implementations (`pipeline_hook` for the static checks,
/// `pipeline_hook_full` adding differential translation validation); the
/// trait lives here so `slp-core` does not depend on the checker.
///
/// The trait is object-safe, and any
/// `Fn(&Program, &CompiledKernel) -> Result<(), VerifyError>` closure or
/// fn item implements it via the blanket impl, so plain functions keep
/// working unchanged:
///
/// ```ignore
/// let cfg = SlpConfig::for_machine(machine, Strategy::Holistic)
///     .with_verifier(slp_verify::pipeline_hook);
/// ```
pub trait Verifier: Send + Sync {
    /// Checks the finished kernel against the original program.
    fn verify(&self, program: &Program, kernel: &CompiledKernel) -> Result<(), VerifyError>;

    /// A short display name for diagnostics.
    fn name(&self) -> &str {
        "verifier"
    }
}

impl<F> Verifier for F
where
    F: Fn(&Program, &CompiledKernel) -> Result<(), VerifyError> + Send + Sync,
{
    fn verify(&self, program: &Program, kernel: &CompiledKernel) -> Result<(), VerifyError> {
        self(program, kernel)
    }
}

/// A shared, cloneable handle to an installed [`Verifier`].
///
/// [`SlpConfig`] stores the verifier behind this newtype so the config
/// stays `Clone` (and `Debug`) while the verifier itself only needs to be
/// a trait object.
#[derive(Clone)]
pub struct VerifierHandle(std::sync::Arc<dyn Verifier>);

impl VerifierHandle {
    /// Wraps a verifier in a shared handle.
    pub fn new(verifier: impl Verifier + 'static) -> Self {
        VerifierHandle(std::sync::Arc::new(verifier))
    }

    /// Runs the wrapped verifier.
    pub fn verify(&self, program: &Program, kernel: &CompiledKernel) -> Result<(), VerifyError> {
        self.0.verify(program, kernel)
    }

    /// The wrapped verifier's display name.
    pub fn name(&self) -> &str {
        self.0.name()
    }
}

impl std::fmt::Debug for VerifierHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "VerifierHandle({})", self.0.name())
    }
}

/// Anytime budgets for the [`Strategy::Optimal`] packing solver.
///
/// Both budgets are disabled-at-zero: `deadline_ms == 0` means no wall
/// deadline, `max_nodes == 0` means no node cap. Tests that need
/// deterministic behaviour across machines should budget by nodes only
/// (a wall deadline makes the point of interruption timing-dependent).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OptParams {
    /// Wall-clock deadline in milliseconds for the whole-kernel solve;
    /// `0` disables the deadline.
    pub deadline_ms: u64,
    /// Maximum branch-and-bound nodes expanded per block; `0` means
    /// unlimited.
    pub max_nodes: u64,
}

impl Default for OptParams {
    fn default() -> Self {
        OptParams {
            deadline_ms: 500,
            max_nodes: 1 << 20,
        }
    }
}

/// Everything a [`Packer`] needs to (re)pack one basic block: the block
/// and its dependence graph, the surrounding program context the cost
/// model reads, and the heuristic's schedule as a warm-start incumbent.
#[derive(Debug)]
pub struct PackRequest<'a> {
    /// The block to pack.
    pub block: &'a BasicBlock,
    /// The block's dependence graph (range-refined when
    /// [`SlpConfig::refine_deps`] is on).
    pub deps: &'a BlockDeps,
    /// The unrolled program the block belongs to.
    pub program: &'a Program,
    /// The block's enclosing loop nest.
    pub loops: &'a [LoopHeader],
    /// Upward-exposed (memory-resident) scalars of `program`.
    pub exposed: &'a [bool],
    /// The full pipeline configuration (machine, weights, budgets).
    pub config: &'a SlpConfig,
    /// Whether the cost model should assume the §5 layout stage runs
    /// afterwards (the optimistic half of the dual arbitration).
    pub optimism: bool,
    /// The heuristic's schedule for this block — the warm-start
    /// incumbent the solver must never return worse than.
    pub incumbent: &'a BlockSchedule,
    /// `incumbent`'s estimated cost under this request's cost context.
    pub incumbent_cost: f64,
}

/// What a [`Packer`] proved about one block.
#[derive(Debug, Clone)]
pub struct PackOutcome {
    /// The chosen schedule (never costlier than the incumbent).
    pub schedule: BlockSchedule,
    /// The chosen schedule's estimated cost.
    pub cost: f64,
    /// The proven lower bound on any valid packing's cost. Equal to
    /// `cost` when the search ran to completion (gap 0); `0.0` when
    /// nothing was proven.
    pub lower_bound: f64,
    /// Branch-and-bound nodes expanded.
    pub nodes: u64,
    /// Whether a budget expired before the search completed (the
    /// result is still valid, just not proven optimal).
    pub degraded: bool,
}

/// A statement-packing engine for one basic block, pluggable behind
/// [`Strategy::Optimal`].
///
/// The pipeline hands every packer the holistic heuristic's schedule as
/// a warm-start incumbent; a correct implementation returns either that
/// incumbent or something it costed strictly cheaper, so `Optimal` can
/// never regress the heuristic. The `slp-opt` crate provides the real
/// branch-and-bound implementation; [`HeuristicPacker`] is the trivial
/// default that returns the incumbent unchanged.
pub trait Packer: Send + Sync {
    /// Packs one block, improving on (or keeping) the incumbent.
    fn pack(&self, req: &PackRequest<'_>) -> PackOutcome;

    /// A short display name for diagnostics.
    fn name(&self) -> &str {
        "packer"
    }
}

/// The default [`Packer`]: returns the heuristic incumbent unchanged,
/// proving nothing (`lower_bound = 0`, `degraded = true`). This is what
/// [`Strategy::Optimal`] runs when no solver is installed, making the
/// strategy safe to request even without the `slp-opt` crate linked.
#[derive(Debug, Clone, Copy, Default)]
pub struct HeuristicPacker;

impl Packer for HeuristicPacker {
    fn pack(&self, req: &PackRequest<'_>) -> PackOutcome {
        PackOutcome {
            schedule: req.incumbent.clone(),
            cost: req.incumbent_cost,
            lower_bound: 0.0,
            nodes: 0,
            degraded: true,
        }
    }

    fn name(&self) -> &str {
        "heuristic"
    }
}

/// A shared, cloneable handle to an installed [`Packer`] — the same
/// shape as [`VerifierHandle`], for the same reason: [`SlpConfig`]
/// stays `Clone` and `Debug` while the packer is a trait object.
#[derive(Clone)]
pub struct PackerHandle(std::sync::Arc<dyn Packer>);

impl PackerHandle {
    /// Wraps a packer in a shared handle.
    pub fn new(packer: impl Packer + 'static) -> Self {
        PackerHandle(std::sync::Arc::new(packer))
    }

    /// Runs the wrapped packer.
    pub fn pack(&self, req: &PackRequest<'_>) -> PackOutcome {
        self.0.pack(req)
    }

    /// The wrapped packer's display name.
    pub fn name(&self) -> &str {
        self.0.name()
    }
}

impl std::fmt::Debug for PackerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PackerHandle({})", self.0.name())
    }
}

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct SlpConfig {
    /// The target machine (datapath width, costs).
    pub machine: MachineConfig,
    /// Which optimizer runs.
    pub strategy: Strategy,
    /// Unroll factor for innermost loops; `0` chooses the factor that
    /// fills the datapath with the program's dominant element type.
    pub unroll: usize,
    /// Whether the data layout stage runs (Global+Layout).
    pub layout: bool,
    /// Scheduling knobs.
    pub schedule: ScheduleConfig,
    /// Array-replication knobs.
    pub array_layout: ArrayLayoutConfig,
    /// Grouping weight knobs.
    pub weights: WeightParams,
    /// Opt-in cross-iteration superword reuse (the Shin et al. style
    /// register caching the paper cites as complementary): a pack whose
    /// next-iteration content equals another pack loaded this iteration
    /// is carried in a register instead of reloaded. Off by default.
    pub cross_iteration_reuse: bool,
    /// Opt-in range-refined dependence testing: dependence queries go
    /// through `slp-analyze`'s strided-interval oracle, which disproves
    /// aliasing the constant/GCD/interval baseline keeps (loop-stride
    /// parity, value-band separation, joint multi-dimension reasoning).
    /// Every disproof removes a false dependence edge and is counted in
    /// [`CompileStats::deps_refuted`]. Off by default.
    pub refine_deps: bool,
    /// Post-compile verification pass; `None` (the default) skips
    /// verification. See [`Verifier`].
    pub verify: Option<VerifierHandle>,
    /// Anytime budgets for the [`Strategy::Optimal`] solver. Ignored by
    /// every other strategy.
    pub opt: OptParams,
    /// The packing engine [`Strategy::Optimal`] runs; `None` (the
    /// default) falls back to [`HeuristicPacker`]. The `slp-driver`
    /// front-ends install the `slp-opt` branch-and-bound solver here.
    pub packer: Option<PackerHandle>,
}

impl SlpConfig {
    /// The configuration used throughout §7 for a given machine and
    /// strategy: auto unroll, layout off.
    pub fn for_machine(machine: MachineConfig, strategy: Strategy) -> Self {
        let array_layout = ArrayLayoutConfig {
            cost: machine.cost,
            ..ArrayLayoutConfig::default()
        };
        SlpConfig {
            machine,
            strategy,
            unroll: 0,
            layout: false,
            schedule: ScheduleConfig::default(),
            array_layout,
            weights: WeightParams::default(),
            cross_iteration_reuse: false,
            refine_deps: false,
            verify: None,
            opt: OptParams::default(),
            packer: None,
        }
    }

    /// Enables range-refined dependence testing (see
    /// [`SlpConfig::refine_deps`]).
    pub fn with_refined_deps(mut self) -> Self {
        self.refine_deps = true;
        self
    }

    /// Enables the data layout stage (the paper's Global+Layout scheme).
    pub fn with_layout(mut self) -> Self {
        self.layout = true;
        self
    }

    /// Installs a post-compile verification pass. Accepts any
    /// [`Verifier`] — including plain functions and closures of shape
    /// `Fn(&Program, &CompiledKernel) -> Result<(), VerifyError>`.
    pub fn with_verifier(mut self, verifier: impl Verifier + 'static) -> Self {
        self.verify = Some(VerifierHandle::new(verifier));
        self
    }

    /// Installs a packing engine for [`Strategy::Optimal`].
    pub fn with_packer(mut self, packer: impl Packer + 'static) -> Self {
        self.packer = Some(PackerHandle::new(packer));
        self
    }

    /// Sets the [`Strategy::Optimal`] anytime budgets (`0` disables the
    /// corresponding budget).
    pub fn with_opt_budget(mut self, deadline_ms: u64, max_nodes: u64) -> Self {
        self.opt = OptParams {
            deadline_ms,
            max_nodes,
        };
        self
    }
}

/// Aggregate statistics of one compilation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CompileStats {
    /// Statements after unrolling.
    pub stmts: usize,
    /// Basic blocks processed.
    pub blocks: usize,
    /// Superword statements emitted.
    pub superwords: usize,
    /// Statements covered by superword statements.
    pub vectorized_stmts: usize,
    /// Scalar superwords the layout stage satisfied.
    pub scalar_packs_laid_out: usize,
    /// Array replications committed.
    pub replications: usize,
    /// Candidate dependences disproved by the range-refined oracle
    /// beyond what the GCD baseline settles (0 unless
    /// [`SlpConfig::refine_deps`] is on).
    pub deps_refuted: usize,
    /// Branch-and-bound nodes the [`Strategy::Optimal`] solver expanded
    /// across all blocks (0 for every other strategy).
    pub opt_nodes: u64,
    /// The proven optimality gap of the [`Strategy::Optimal`] result in
    /// parts per million: `(cost − lower_bound) / cost · 10⁶` summed
    /// over blocks. `0` means the packing was proven optimal;
    /// `1_000_000` means nothing was proven (no solver installed).
    pub opt_gap_ppm: u64,
    /// Whether any [`Strategy::Optimal`] block solve hit its anytime
    /// budget and degraded to the (still-valid) best-known packing.
    pub opt_degraded: bool,
    /// Array accesses the safety certificate proved in bounds for every
    /// iteration (candidates for unchecked bytecode execution).
    pub accesses_proven_safe: usize,
    /// Array accesses the certificate could not classify (executed with
    /// full bounds checks).
    pub accesses_unknown: usize,
    /// Array accesses proven to fault on some attained iteration.
    /// Non-zero means `slp-verify` reports a V505 error.
    pub accesses_proven_faulting: usize,
}

/// The result of compiling one kernel.
#[derive(Debug, Clone)]
pub struct CompiledKernel {
    /// The transformed program (unrolled; references rewritten when the
    /// layout stage replicated arrays).
    pub program: Program,
    /// Per-block schedules, keyed by the block's stable id.
    pub schedules: Vec<(BlockId, BlockSchedule)>,
    /// Memory placement of scalar variables.
    pub scalar_layout: ScalarLayout,
    /// Array replications the runtime performs before the kernel's loops.
    pub replications: Vec<Replication>,
    /// Compilation statistics.
    pub stats: CompileStats,
    /// Per-access memory-safety certificate over the *transformed*
    /// program: the bytecode engine elides bounds checks for accesses
    /// proven safe; `slp-verify` turns faulting/unknown verdicts into
    /// V505/V506 diagnostics.
    pub safety: SafetyCert,
    /// The configuration the kernel was compiled with.
    pub config: SlpConfig,
}

impl CompiledKernel {
    /// The schedule of block `id`, if any.
    pub fn schedule_of(&self, id: BlockId) -> Option<&BlockSchedule> {
        self.schedules
            .iter()
            .find(|(b, _)| *b == id)
            .map(|(_, s)| s)
    }
}

/// Compiles `program` under `config`.
///
/// For the Global+Layout scheme the pipeline compiles twice — once
/// arbitrating grouping proposals under the assumption that the layout
/// stage will repair strided read-only packs, once without — and keeps
/// the variant with the lower end-to-end cost estimate. This implements
/// the paper's rule that the layout stage is skipped when it does not pay
/// ("the benefit of layout optimization has to outweigh the cost").
///
/// # Panics
///
/// Panics if an optimizer produces a schedule violating the §4.1 validity
/// constraints — an internal invariant, exercised heavily by the test
/// suite — or if an installed [`SlpConfig::verify`] hook rejects the
/// finished kernel.
pub fn compile(program: &Program, config: &SlpConfig) -> CompiledKernel {
    compile_timed(program, config).0
}

/// Compiles `program` under `config`, additionally returning the wall
/// time each pipeline [`Phase`] consumed.
///
/// The timings of the Global+Layout dual arbitration accumulate across
/// both inner compiles — they answer "where did this compilation spend
/// its time", not "how long would a single pass take". Semantics and
/// panics are identical to [`compile`].
pub fn compile_timed(program: &Program, config: &SlpConfig) -> (CompiledKernel, PhaseTimings) {
    let mut timings = PhaseTimings::new();
    let dual = matches!(config.strategy, Strategy::Holistic | Strategy::Optimal);
    let kernel = if dual && config.layout {
        let optimistic = compile_inner(program, config, true, &mut timings);
        let plain = compile_inner(program, config, false, &mut timings);
        if estimate_kernel_cost(&optimistic) <= estimate_kernel_cost(&plain) {
            optimistic
        } else {
            plain
        }
    } else {
        compile_inner(program, config, config.layout, &mut timings)
    };
    if let Some(hook) = &config.verify {
        let verdict = timings.time(Phase::Verify, || hook.verify(program, &kernel));
        if let Err(report) = verdict {
            panic!(
                "verification rejected '{}' under the {} strategy:\n{report}",
                program.name(),
                config.strategy.label()
            );
        }
    }
    (kernel, timings)
}

/// Total estimated cycles of a compiled kernel: per-block schedule cost
/// times dynamic trip count, plus the one-time replication copies.
///
/// This is the arbiter of the Global+Layout dual compile; it is public
/// so benchmarks (`bench opt-gap`) can compare kernels compiled under
/// different strategies through the same estimator the pipeline uses.
pub fn estimate_kernel_cost(kernel: &CompiledKernel) -> f64 {
    let exposed = kernel.program.upward_exposed_scalars();
    let mut total = 0.0;
    for info in kernel.program.blocks() {
        let cx = CostContext {
            program: &kernel.program,
            loops: &info.loops,
            exposed: &exposed,
            cost: &kernel.config.machine.cost,
            vector_regs: kernel.config.machine.vector_regs,
            assume_layout: false,
        };
        let per_exec = match kernel.schedule_of(info.id) {
            Some(sched) => estimate_schedule_cost(&info.block, sched, &cx),
            None => crate::cost::estimate_scalar_cost(&info.block, &cx),
        };
        // Saturating: a pathological nest can overflow the product long
        // before the VM would ever run it.
        let trips: i64 = info
            .loops
            .iter()
            .fold(1i64, |acc, h| acc.saturating_mul(h.trip_count()));
        total += per_exec * trips.max(1) as f64;
    }
    let c = &kernel.config.machine.cost;
    for r in &kernel.replications {
        total += r.copy_count() as f64 * (c.scalar_load + c.scalar_store);
    }
    total
}

fn compile_inner(
    program: &Program,
    config: &SlpConfig,
    optimism: bool,
    timings: &mut PhaseTimings,
) -> CompiledKernel {
    let mut program = program.clone();

    // Pre-processing: unroll innermost loops to expose SLP.
    let unroll = if config.unroll == 0 {
        config.machine.lanes_for(dominant_type(&program))
    } else {
        config.unroll
    };
    if config.strategy != Strategy::Scalar {
        timings.time(Phase::Unroll, || unroll_program(&mut program, unroll));
    }

    // Stage 1: superword statement generation, block by block.
    let exposed = program.upward_exposed_scalars();
    let infos = program.blocks();
    let mut schedules = Vec::with_capacity(infos.len());
    let mut stats = CompileStats {
        stmts: program.stmt_count(),
        blocks: infos.len(),
        ..CompileStats::default()
    };
    // Strategy::Optimal bookkeeping: the per-block incumbent costs and
    // proven lower bounds, summed so the whole-kernel optimality gap can
    // be reported in parts per million.
    let mut opt_cost_sum = 0.0f64;
    let mut opt_bound_sum = 0.0f64;
    for info in &infos {
        let deps = timings.time(Phase::Alignment, || {
            if config.refine_deps {
                let oracle = RangeOracle::new();
                let deps = BlockDeps::analyze_with(&info.block, &info.loops, &oracle);
                stats.deps_refuted += oracle.refuted_beyond_gcd() as usize;
                deps
            } else {
                BlockDeps::analyze_in(&info.block, &info.loops)
            }
        });
        let lane_cap = |s: StmtId| {
            let stmt = info.block.stmt(s).expect("stmt in block");
            config.machine.lanes_for(program.dest_type(stmt.dest()))
        };
        let sched = match config.strategy {
            Strategy::Scalar => BlockSchedule::scalar(&info.block),
            Strategy::Native => timings.time(Phase::Grouping, || {
                native_block(&info.block, &deps, &program, lane_cap)
            }),
            Strategy::Baseline => timings.time(Phase::Grouping, || {
                baseline_block(&info.block, &deps, &program, lane_cap)
            }),
            Strategy::Holistic => {
                holistic_proposal(
                    &info.block,
                    &deps,
                    &program,
                    &info.loops,
                    &exposed,
                    config,
                    optimism,
                    timings,
                )
                .0
            }
            Strategy::Optimal => {
                // Warm start: the full holistic arbitration provides the
                // incumbent the branch-and-bound solver must beat (or
                // keep), so `Optimal` can never regress `Holistic`.
                let (incumbent, incumbent_cost) = holistic_proposal(
                    &info.block,
                    &deps,
                    &program,
                    &info.loops,
                    &exposed,
                    config,
                    optimism,
                    timings,
                );
                let req = PackRequest {
                    block: &info.block,
                    deps: &deps,
                    program: &program,
                    loops: &info.loops,
                    exposed: &exposed,
                    config,
                    optimism,
                    incumbent: &incumbent,
                    incumbent_cost,
                };
                let outcome = timings.time(Phase::Solve, || match &config.packer {
                    Some(p) => p.pack(&req),
                    None => HeuristicPacker.pack(&req),
                });
                stats.opt_nodes += outcome.nodes;
                stats.opt_degraded |= outcome.degraded;
                opt_cost_sum += outcome.cost.max(0.0);
                opt_bound_sum += outcome.lower_bound.clamp(0.0, outcome.cost.max(0.0));
                outcome.schedule
            }
        };
        // Translation-validation backstop: every scheduler must produce a
        // §4.1-valid schedule. This *has* fired on fuzzed inputs — grouping
        // once combined pairwise-independent chains whose non-adjacent lanes
        // were dependent (independence is not transitive) — so it stays an
        // `expect`: an invalid schedule is a miscompile and must not ship.
        validate_schedule(&info.block, &deps, &sched, &program, lane_cap)
            .expect("optimizer produced an invalid schedule");
        stats.superwords += sched.superword_count();
        stats.vectorized_stmts += sched
            .items()
            .iter()
            .filter(|i| i.stmts().len() > 1)
            .map(|i| i.stmts().len())
            .sum::<usize>();
        schedules.push((info.clone(), sched));
    }
    if config.strategy == Strategy::Optimal {
        stats.opt_gap_ppm = if opt_cost_sum > 0.0 {
            (((opt_cost_sum - opt_bound_sum).max(0.0) / opt_cost_sum) * 1e6).round() as u64
        } else {
            0
        };
    }

    // Stage 2: data layout optimization.
    let layout_start = std::time::Instant::now();
    let uses = collect_pack_uses(&schedules);
    let (scalar_layout, satisfied) = if config.layout {
        optimize_scalar_layout(&program, &uses)
    } else {
        (ScalarLayout::declaration_order(&program), 0)
    };
    stats.scalar_packs_laid_out = satisfied;
    let replications = if config.layout {
        optimize_array_layout(&mut program, &uses, &config.array_layout)
    } else {
        Vec::new()
    };
    stats.replications = replications.len();
    timings.add(Phase::Layout, layout_start.elapsed());

    // Certify the final transformed program — replication rewrites and
    // unrolling are already applied, so the certificate describes exactly
    // the accesses the VM will execute.
    let safety = timings.time(Phase::Safety, || SafetyCert::certify(&program));
    stats.accesses_proven_safe = safety.proven_safe();
    stats.accesses_unknown = safety.unknown();
    stats.accesses_proven_faulting = safety.proven_faulting();

    CompiledKernel {
        program,
        schedules: schedules
            .into_iter()
            .map(|(info, s)| (info.id, s))
            .collect(),
        scalar_layout,
        replications,
        stats,
        safety,
        config: config.clone(),
    }
}

/// The holistic optimizer's proposal arbitration for one block,
/// returning the winning schedule and its estimated cost.
///
/// The §4.3 cost model arbitrates between grouping proposals: the
/// holistic grouping under the configured and the paper's pure-reuse
/// weight profiles, plus the adjacency-seeded grouping under both this
/// framework's scheduler and the original program order. Keeping the
/// cheapest implements the paper's "if we realize that our
/// transformation could potentially degrade the performance, we choose
/// not to apply it" at proposal granularity. The layout-aware
/// (optimistic) compile also tries the paper's pure-reuse weights: they
/// surface the gather-heavy, reuse-rich groupings that replication
/// repairs. `Strategy::Optimal` reuses this as the solver's warm-start
/// incumbent.
#[allow(clippy::too_many_arguments)]
fn holistic_proposal(
    block: &BasicBlock,
    deps: &BlockDeps,
    program: &Program,
    loops: &[LoopHeader],
    exposed: &[bool],
    config: &SlpConfig,
    optimism: bool,
    timings: &mut PhaseTimings,
) -> (BlockSchedule, f64) {
    let lane_cap = |s: StmtId| {
        let stmt = block.stmt(s).expect("stmt in block");
        config.machine.lanes_for(program.dest_type(stmt.dest()))
    };
    let cx = CostContext {
        program,
        loops,
        exposed,
        cost: &config.machine.cost,
        vector_regs: config.machine.vector_regs,
        assume_layout: optimism,
    };
    let mut profiles = vec![config.weights];
    if optimism {
        profiles.push(WeightParams::reuse_only());
    }
    let mut proposals: Vec<BlockSchedule> = Vec::new();
    for w in profiles {
        let g = timings.time(Phase::Grouping, || {
            group_block_with(block, deps, program, lane_cap, &w)
        });
        proposals.push(timings.time(Phase::Scheduling, || {
            schedule_block(block, deps, &g.units, &config.schedule)
        }));
    }
    let bg = timings.time(Phase::Grouping, || {
        baseline_groups(block, deps, program, lane_cap)
    });
    proposals.push(timings.time(Phase::Scheduling, || {
        schedule_block(block, deps, &bg, &config.schedule)
    }));
    proposals.push(timings.time(Phase::Scheduling, || {
        schedule_in_program_order(block, deps, &bg, &config.schedule)
    }));
    proposals
        .into_iter()
        .map(|s| {
            let c = estimate_schedule_cost(block, &s, &cx);
            (c, s)
        })
        // Invariant: cost estimates are finite sums/products of finite
        // machine parameters, and `proposals` always holds at least the
        // program-order schedule.
        .min_by(|(a, _), (b, _)| a.partial_cmp(b).expect("finite costs"))
        .map(|(c, s)| (s, c))
        .expect("at least one proposal")
}

/// The most frequent destination element type, which the auto unroll
/// factor fills the datapath with.
fn dominant_type(program: &Program) -> slp_ir::ScalarType {
    let mut counts = std::collections::BTreeMap::new();
    program.for_each_stmt(|s| {
        let ty = match s.dest() {
            Dest::Scalar(_) | Dest::Array(_) => program.dest_type(s.dest()),
        };
        *counts.entry(ty).or_insert(0usize) += 1;
    });
    counts
        .into_iter()
        .max_by_key(|&(_, n)| n)
        .map(|(t, _)| t)
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "kernel k {
        const N = 32;
        array A: f64[2*N];
        array B: f64[4*N];
        scalar a, b: f64;
        for i in 0..N {
            a = A[2*i];
            b = A[2*i+1];
            A[2*i] = a + B[4*i] * a;
            A[2*i+1] = b + B[4*i+2] * b;
        }
    }";

    fn program() -> Program {
        slp_lang::compile(SRC).unwrap()
    }

    #[test]
    fn holistic_pipeline_vectorizes() {
        let cfg = SlpConfig::for_machine(MachineConfig::intel_dunnington(), Strategy::Holistic);
        let k = compile(&program(), &cfg);
        assert!(k.stats.superwords > 0);
        assert!(k.stats.vectorized_stmts >= 4);
        // f64 on 128 bits: unrolled by 2, so the body has 8 statements.
        assert_eq!(k.stats.stmts, 8);
    }

    #[test]
    fn scalar_strategy_is_identity() {
        let cfg = SlpConfig::for_machine(MachineConfig::intel_dunnington(), Strategy::Scalar);
        let k = compile(&program(), &cfg);
        assert_eq!(k.stats.superwords, 0);
        assert_eq!(k.stats.stmts, 4, "scalar build does not unroll");
    }

    #[test]
    fn all_strategies_produce_valid_output() {
        for strategy in [Strategy::Native, Strategy::Baseline, Strategy::Holistic] {
            let cfg = SlpConfig::for_machine(MachineConfig::intel_dunnington(), strategy);
            let k = compile(&program(), &cfg); // validity asserted inside
            assert_eq!(k.schedules.len(), k.stats.blocks);
        }
    }

    #[test]
    fn layout_stage_reports_work() {
        let cfg = SlpConfig::for_machine(MachineConfig::intel_dunnington(), Strategy::Holistic)
            .with_layout();
        let k = compile(&program(), &cfg);
        // The <a,b> dest pack gives the scalar layout something to place.
        assert!(k.stats.scalar_packs_laid_out > 0);
    }

    #[test]
    fn wider_datapath_unrolls_further() {
        let machine = MachineConfig::intel_dunnington().with_datapath_bits(512);
        let cfg = SlpConfig::for_machine(machine, Strategy::Holistic);
        let k = compile(&program(), &cfg);
        assert_eq!(k.stats.stmts, 32, "f64 at 512 bits unrolls 8x");
    }
}

#[cfg(test)]
mod arbitration_tests {
    use super::*;
    use crate::cost::{estimate_schedule_cost, CostContext};

    /// A block where the adjacency-seeded baseline is optimal (pure
    /// contiguous streams): the arbitration must cost Global at or below
    /// the baseline — it can pick the baseline's own proposal.
    #[test]
    fn global_matches_baseline_when_baseline_is_optimal() {
        let p = slp_lang::compile(
            "kernel k { array A: f64[64]; array B: f64[64];
             for i in 0..32 { A[i] = B[i] * 2.0; } }",
        )
        .expect("compiles");
        let machine = MachineConfig::intel_dunnington();
        let global = compile(
            &p,
            &SlpConfig::for_machine(machine.clone(), Strategy::Holistic),
        );
        let baseline = compile(
            &p,
            &SlpConfig::for_machine(machine.clone(), Strategy::Baseline),
        );
        let exposed = global.program.upward_exposed_scalars();
        let cost_of = |k: &CompiledKernel| -> f64 {
            k.program
                .blocks()
                .iter()
                .map(|info| {
                    let cx = CostContext {
                        program: &k.program,
                        loops: &info.loops,
                        exposed: &exposed,
                        cost: &machine.cost,
                        vector_regs: machine.vector_regs,
                        assume_layout: false,
                    };
                    estimate_schedule_cost(
                        &info.block,
                        k.schedule_of(info.id).expect("scheduled"),
                        &cx,
                    )
                })
                .sum()
        };
        assert!(cost_of(&global) <= cost_of(&baseline) + 1e-9);
    }

    /// The dual-arbitration Global+Layout path never estimates worse than
    /// plain Global on any suite kernel.
    #[test]
    fn layout_arbitration_never_regresses_estimates() {
        let machine = MachineConfig::intel_dunnington();
        for (spec, p) in slp_suite::all(1) {
            let g = compile(
                &p,
                &SlpConfig::for_machine(machine.clone(), Strategy::Holistic),
            );
            let gl = compile(
                &p,
                &SlpConfig::for_machine(machine.clone(), Strategy::Holistic).with_layout(),
            );
            // Compare through the estimator used for arbitration.
            let eg = super::estimate_kernel_cost(&g);
            let egl = super::estimate_kernel_cost(&gl);
            assert!(
                egl <= eg * 1.001,
                "{}: layout arbitration regressed ({egl} > {eg})",
                spec.name
            );
        }
    }

    #[test]
    fn strategy_labels_match_the_figures() {
        assert_eq!(Strategy::Scalar.label(), "scalar");
        assert_eq!(Strategy::Native.label(), "Native");
        assert_eq!(Strategy::Baseline.label(), "SLP");
        assert_eq!(Strategy::Holistic.label(), "Global");
    }

    #[test]
    fn strategy_cli_names_roundtrip() {
        for s in Strategy::ALL {
            assert_eq!(s.cli_name().parse::<Strategy>(), Ok(s));
            assert_eq!(s.to_string(), s.cli_name());
        }
        assert!("bogus".parse::<Strategy>().is_err());
    }
}

#[cfg(test)]
mod verifier_tests {
    use super::*;
    use crate::error::VerifyError;

    fn program() -> Program {
        slp_lang::compile("kernel k { array A: f64[8]; for i in 0..8 { A[i] = A[i] + 1.0; } }")
            .expect("compiles")
    }

    fn accepting(_: &Program, _: &CompiledKernel) -> Result<(), VerifyError> {
        Ok(())
    }

    fn rejecting(_: &Program, _: &CompiledKernel) -> Result<(), VerifyError> {
        Err(VerifyError::new("synthetic rejection"))
    }

    #[test]
    fn fn_items_implement_verifier_via_the_blanket_impl() {
        let cfg = SlpConfig::for_machine(MachineConfig::intel_dunnington(), Strategy::Holistic)
            .with_verifier(accepting);
        assert!(cfg.verify.is_some());
        let k = compile(&program(), &cfg);
        assert!(k.stats.stmts > 0);
        // The handle (and thus the config) stays cloneable.
        let cloned = cfg.clone();
        assert!(cloned.verify.is_some());
    }

    #[test]
    #[should_panic(expected = "synthetic rejection")]
    fn rejecting_verifier_panics_with_the_report() {
        let cfg = SlpConfig::for_machine(MachineConfig::intel_dunnington(), Strategy::Holistic)
            .with_verifier(rejecting);
        compile(&program(), &cfg);
    }

    #[test]
    fn trait_objects_install_too() {
        struct Always;
        impl Verifier for Always {
            fn verify(&self, _: &Program, _: &CompiledKernel) -> Result<(), VerifyError> {
                Ok(())
            }
            fn name(&self) -> &str {
                "always"
            }
        }
        let cfg = SlpConfig::for_machine(MachineConfig::intel_dunnington(), Strategy::Baseline)
            .with_verifier(Always);
        assert_eq!(cfg.verify.as_ref().expect("installed").name(), "always");
        compile(&program(), &cfg);
    }
}
