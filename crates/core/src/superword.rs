//! Superword statements and block schedules — the output of the optimizer.

use std::fmt;

use slp_ir::{BasicBlock, BlockDeps, StmtId, TypeEnv};

/// A superword statement: isomorphic, mutually independent statements
/// executed as one SIMD operation. Unlike the grouping-phase SIMD group,
/// lane order **is** significant here — it was fixed by the scheduling
/// phase to minimize register permutations.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SuperwordStmt {
    lanes: Vec<StmtId>,
}

impl SuperwordStmt {
    /// Creates a superword statement with the given lane order.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two lanes are supplied.
    pub fn new(lanes: Vec<StmtId>) -> Self {
        assert!(lanes.len() >= 2, "a superword statement needs ≥ 2 lanes");
        SuperwordStmt { lanes }
    }

    /// The member statements in lane order.
    pub fn lanes(&self) -> &[StmtId] {
        &self.lanes
    }

    /// Number of lanes.
    pub fn width(&self) -> usize {
        self.lanes.len()
    }
}

impl fmt::Display for SuperwordStmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<")?;
        for (i, s) in self.lanes.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{s}")?;
        }
        write!(f, ">")
    }
}

/// One element of a block schedule: `Di` in the paper's
/// `D = <D1, ..., Dm>` notation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ScheduledItem {
    /// A statement left scalar.
    Single(StmtId),
    /// A vectorized superword statement.
    Superword(SuperwordStmt),
}

impl ScheduledItem {
    /// The member statements (one for singles).
    pub fn stmts(&self) -> &[StmtId] {
        match self {
            ScheduledItem::Single(s) => std::slice::from_ref(s),
            ScheduledItem::Superword(sw) => sw.lanes(),
        }
    }
}

impl fmt::Display for ScheduledItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduledItem::Single(s) => write!(f, "{s}"),
            ScheduledItem::Superword(sw) => write!(f, "{sw}"),
        }
    }
}

/// A complete schedule `D` for one basic block.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BlockSchedule {
    items: Vec<ScheduledItem>,
}

impl BlockSchedule {
    /// Builds a schedule from items.
    pub fn new(items: Vec<ScheduledItem>) -> Self {
        BlockSchedule { items }
    }

    /// The schedule that leaves every statement scalar in program order.
    pub fn scalar(block: &BasicBlock) -> Self {
        BlockSchedule {
            items: block
                .iter()
                .map(|s| ScheduledItem::Single(s.id()))
                .collect(),
        }
    }

    /// The scheduled items in execution order.
    pub fn items(&self) -> &[ScheduledItem] {
        &self.items
    }

    /// Number of scheduled items (`m` in the paper's notation).
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Number of superword statements.
    pub fn superword_count(&self) -> usize {
        self.items
            .iter()
            .filter(|i| matches!(i, ScheduledItem::Superword(_)))
            .count()
    }

    /// Whether any statement was vectorized.
    pub fn is_vectorized(&self) -> bool {
        self.superword_count() > 0
    }
}

impl fmt::Display for BlockSchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for item in &self.items {
            writeln!(f, "{item}")?;
        }
        Ok(())
    }
}

/// A violation of the §4.1 validity constraints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidityError {
    /// Constraint 1: two lanes of a superword statement depend on each
    /// other.
    IntraGroupDependence(StmtId, StmtId),
    /// Constraint 2: the schedule reorders two dependent statements.
    DependenceViolated(StmtId, StmtId),
    /// Constraint 3: two lanes are not isomorphic.
    NotIsomorphic(StmtId, StmtId),
    /// Constraint 4: a superword statement exceeds the datapath width.
    TooWide(usize, usize),
    /// A statement is missing from or duplicated in the schedule.
    NotAPermutation,
}

impl fmt::Display for ValidityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidityError::IntraGroupDependence(a, b) => {
                write!(
                    f,
                    "lanes {a} and {b} of one superword statement are dependent"
                )
            }
            ValidityError::DependenceViolated(a, b) => {
                write!(f, "schedule reorders dependent statements {a} -> {b}")
            }
            ValidityError::NotIsomorphic(a, b) => {
                write!(f, "lanes {a} and {b} are not isomorphic")
            }
            ValidityError::TooWide(w, cap) => {
                write!(
                    f,
                    "superword statement of {w} lanes exceeds the {cap}-lane datapath"
                )
            }
            ValidityError::NotAPermutation => {
                write!(f, "schedule is not a permutation of the block's statements")
            }
        }
    }
}

impl std::error::Error for ValidityError {}

/// Checks a schedule against the four §4.1 validity constraints.
///
/// `lane_cap` maps a statement to the lane capacity of its element type on
/// the target datapath.
///
/// # Errors
///
/// Returns the first violated constraint.
pub fn validate_schedule<E: TypeEnv>(
    block: &BasicBlock,
    deps: &BlockDeps,
    schedule: &BlockSchedule,
    env: &E,
    mut lane_cap: impl FnMut(StmtId) -> usize,
) -> Result<(), ValidityError> {
    // Permutation check.
    let mut seen: Vec<StmtId> = schedule
        .items()
        .iter()
        .flat_map(|i| i.stmts().iter().copied())
        .collect();
    if seen.len() != block.len() {
        return Err(ValidityError::NotAPermutation);
    }
    seen.sort();
    seen.dedup();
    if seen.len() != block.len() || block.iter().any(|s| seen.binary_search(&s.id()).is_err()) {
        return Err(ValidityError::NotAPermutation);
    }

    // Constraints 1, 3, 4 per superword statement.
    for item in schedule.items() {
        if let ScheduledItem::Superword(sw) = item {
            let cap = lane_cap(sw.lanes()[0]);
            if sw.width() > cap {
                return Err(ValidityError::TooWide(sw.width(), cap));
            }
            for (i, &a) in sw.lanes().iter().enumerate() {
                for &b in &sw.lanes()[i + 1..] {
                    if !deps.independent(a, b) {
                        return Err(ValidityError::IntraGroupDependence(a, b));
                    }
                    let (sa, sb) = (
                        block.stmt(a).ok_or(ValidityError::NotAPermutation)?,
                        block.stmt(b).ok_or(ValidityError::NotAPermutation)?,
                    );
                    if !sa.isomorphic(sb, env) {
                        return Err(ValidityError::NotIsomorphic(a, b));
                    }
                }
            }
        }
    }

    // Constraint 2: every direct dependence src -> dst must have src's
    // item at or before dst's item — and in *different* items (lanes of
    // one superword statement execute concurrently, but constraint 1
    // already forbids intra-group dependences).
    let item_of = |s: StmtId| -> usize {
        schedule
            .items()
            .iter()
            .position(|i| i.stmts().contains(&s))
            .expect("checked by permutation test")
    };
    for d in deps.direct() {
        if item_of(d.src) >= item_of(d.dst) {
            return Err(ValidityError::DependenceViolated(d.src, d.dst));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use slp_ir::{BinOp, Expr, Program, ScalarType};

    fn block4() -> (Program, BasicBlock) {
        // S0: a = x + y; S1: b = x + y; S2: c = a + b; S3: d = a + b;
        let mut p = Program::new("t");
        let names = ["a", "b", "c", "d", "x", "y"];
        let v: Vec<_> = names
            .iter()
            .map(|n| p.add_scalar(*n, ScalarType::F64))
            .collect();
        let s0 = p.make_stmt(
            v[0].into(),
            Expr::Binary(BinOp::Add, v[4].into(), v[5].into()),
        );
        let s1 = p.make_stmt(
            v[1].into(),
            Expr::Binary(BinOp::Add, v[4].into(), v[5].into()),
        );
        let s2 = p.make_stmt(
            v[2].into(),
            Expr::Binary(BinOp::Add, v[0].into(), v[1].into()),
        );
        let s3 = p.make_stmt(
            v[3].into(),
            Expr::Binary(BinOp::Add, v[0].into(), v[1].into()),
        );
        let bb: BasicBlock = [s0, s1, s2, s3].into_iter().collect();
        (p, bb)
    }

    fn sw(ids: &[u32]) -> ScheduledItem {
        ScheduledItem::Superword(SuperwordStmt::new(
            ids.iter().map(|&i| StmtId::new(i)).collect(),
        ))
    }

    #[test]
    fn valid_schedule_passes() {
        let (p, bb) = block4();
        let deps = BlockDeps::analyze(&bb);
        let sched = BlockSchedule::new(vec![sw(&[0, 1]), sw(&[2, 3])]);
        assert_eq!(validate_schedule(&bb, &deps, &sched, &p, |_| 2), Ok(()));
    }

    #[test]
    fn scalar_schedule_is_always_valid() {
        let (p, bb) = block4();
        let deps = BlockDeps::analyze(&bb);
        let sched = BlockSchedule::scalar(&bb);
        assert!(!sched.is_vectorized());
        assert_eq!(validate_schedule(&bb, &deps, &sched, &p, |_| 2), Ok(()));
    }

    #[test]
    fn detects_intra_group_dependence() {
        let (p, bb) = block4();
        let deps = BlockDeps::analyze(&bb);
        // S0 and S2 are dependent (a flows into S2).
        let sched = BlockSchedule::new(vec![
            sw(&[0, 2]),
            ScheduledItem::Single(StmtId::new(1)),
            ScheduledItem::Single(StmtId::new(3)),
        ]);
        assert!(matches!(
            validate_schedule(&bb, &deps, &sched, &p, |_| 2),
            Err(ValidityError::IntraGroupDependence(_, _))
        ));
    }

    #[test]
    fn detects_reordered_dependences() {
        let (p, bb) = block4();
        let deps = BlockDeps::analyze(&bb);
        let sched = BlockSchedule::new(vec![sw(&[2, 3]), sw(&[0, 1])]);
        assert!(matches!(
            validate_schedule(&bb, &deps, &sched, &p, |_| 2),
            Err(ValidityError::DependenceViolated(_, _))
        ));
    }

    #[test]
    fn detects_width_overflow() {
        let (p, bb) = block4();
        let deps = BlockDeps::analyze(&bb);
        let sched = BlockSchedule::new(vec![sw(&[0, 1]), sw(&[2, 3])]);
        assert!(matches!(
            validate_schedule(&bb, &deps, &sched, &p, |_| 1),
            Err(ValidityError::TooWide(2, 1))
        ));
    }

    #[test]
    fn detects_missing_and_duplicated_statements() {
        let (p, bb) = block4();
        let deps = BlockDeps::analyze(&bb);
        let missing = BlockSchedule::new(vec![sw(&[0, 1])]);
        assert_eq!(
            validate_schedule(&bb, &deps, &missing, &p, |_| 2),
            Err(ValidityError::NotAPermutation)
        );
        let duplicated = BlockSchedule::new(vec![sw(&[0, 1]), sw(&[2, 3]), sw(&[0, 1])]);
        assert_eq!(
            validate_schedule(&bb, &deps, &duplicated, &p, |_| 2),
            Err(ValidityError::NotAPermutation)
        );
    }

    #[test]
    fn detects_non_isomorphic_lanes() {
        let mut p = Program::new("t");
        let a = p.add_scalar("a", ScalarType::F64);
        let b = p.add_scalar("b", ScalarType::F64);
        let x = p.add_scalar("x", ScalarType::F64);
        let s0 = p.make_stmt(a.into(), Expr::Binary(BinOp::Add, x.into(), x.into()));
        let s1 = p.make_stmt(b.into(), Expr::Binary(BinOp::Mul, x.into(), x.into()));
        let bb: BasicBlock = [s0, s1].into_iter().collect();
        let deps = BlockDeps::analyze(&bb);
        let sched = BlockSchedule::new(vec![sw(&[0, 1])]);
        assert!(matches!(
            validate_schedule(&bb, &deps, &sched, &p, |_| 2),
            Err(ValidityError::NotIsomorphic(_, _))
        ));
    }

    #[test]
    #[should_panic(expected = "needs ≥ 2 lanes")]
    fn superword_requires_two_lanes() {
        let _ = SuperwordStmt::new(vec![StmtId::new(0)]);
    }

    #[test]
    fn display_forms() {
        let sw = SuperwordStmt::new(vec![StmtId::new(3), StmtId::new(1)]);
        assert_eq!(sw.to_string(), "<S3,S1>");
        assert_eq!(ScheduledItem::Single(StmtId::new(2)).to_string(), "S2");
        let sched = BlockSchedule::new(vec![
            ScheduledItem::Superword(sw),
            ScheduledItem::Single(StmtId::new(2)),
        ]);
        assert_eq!(sched.to_string(), "<S3,S1>\nS2\n");
        assert_eq!(sched.len(), 2);
        assert!(sched.is_vectorized());
    }

    #[test]
    fn validity_error_messages_are_informative() {
        let e = ValidityError::TooWide(4, 2);
        assert!(e.to_string().contains("4 lanes"));
        let d = ValidityError::DependenceViolated(StmtId::new(1), StmtId::new(2));
        assert!(d.to_string().contains("S1"));
        assert!(d.to_string().contains("S2"));
    }
}
