//! # slp-core — the holistic SLP optimizer (placeholder docs; extended later)
#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod baseline;
mod cost;
mod error;
mod group;
mod layout;
mod machine;
mod native;
mod pipeline;
mod schedule;
mod superword;
mod telemetry;

pub use baseline::{baseline_block, baseline_groups};
pub use cost::{estimate_scalar_cost, estimate_schedule_cost, scalar_stmt_cost, CostContext};
pub use error::{ExecError, ExecErrorKind, SlpError, VerifyError};
pub use group::{group_block, group_block_with, Grouping, GroupingDecision};
pub use layout::array::{eq4_map, optimize_array_layout, ArrayLayoutConfig, Replication};
pub use layout::scalar::{optimize_scalar_layout, ScalarLayout};
pub use layout::{collect_pack_uses, PackUse};
pub use machine::{op_cost_factor, CostParams, MachineConfig};
pub use native::native_block;
pub use pipeline::{
    compile, compile_timed, estimate_kernel_cost, CompileStats, CompiledKernel, HeuristicPacker,
    OptParams, PackOutcome, PackRequest, Packer, PackerHandle, SlpConfig, Strategy, Verifier,
    VerifierHandle,
};
pub use schedule::{schedule_block, schedule_in_program_order, ScheduleConfig};
pub use telemetry::{Phase, PhaseTimings};

// `SlpConfig::weights` is part of this crate's public configuration
// surface; re-export its type so config-building crates (slp-driver)
// need not depend on slp-analysis directly.
pub use slp_analysis::WeightParams;
// `CompiledKernel::safety` likewise: consumers of compiled kernels
// (slp-vm's check elision, slp-driver's codec, slp-serve's admission
// gate) can name the certificate types without a slp-analyze edge.
pub use slp_analyze::{AccessCert, AccessVerdict, SafetyCert};
pub use superword::{
    validate_schedule, BlockSchedule, ScheduledItem, SuperwordStmt, ValidityError,
};
