//! The statement-scheduling phase (§4.3, pseudo-code Figure 11).
//!
//! Given the SIMD groups found by grouping, this phase (1) linearizes the
//! groups and leftover single statements into a valid execution sequence
//! that brings superword reuses close together, and (2) fixes the lane
//! order inside each superword statement to minimize register permutation
//! instructions, using a *live superword set* that tracks which ordered
//! packs are most likely resident in vector registers.

use std::collections::BTreeSet;

use slp_analysis::{OperandKey, PackContent, PackPos, Unit};
use slp_ir::{ArrayRef, BasicBlock, BlockDeps, Operand, StmtId};

use crate::superword::{BlockSchedule, ScheduledItem, SuperwordStmt};

/// Configuration of the scheduling phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduleConfig {
    /// Capacity of the live superword set (vector registers the compiler
    /// assumes it can keep packs in). The oldest pack is evicted first.
    pub live_set_capacity: usize,
}

impl Default for ScheduleConfig {
    /// Sixteen live packs — the XMM register count of x86-64 SSE2.
    fn default() -> Self {
        ScheduleConfig {
            live_set_capacity: 16,
        }
    }
}

/// An ordered pack believed to be in a vector register.
#[derive(Debug, Clone, PartialEq, Eq)]
struct LivePack {
    keys: Vec<OperandKey>,
    content: PackContent,
}

impl LivePack {
    fn new(keys: Vec<OperandKey>) -> Self {
        let content = PackContent::from_keys(keys.clone());
        LivePack { keys, content }
    }
}

/// The live superword set, FIFO-bounded.
#[derive(Debug, Clone, Default)]
struct LiveSet {
    packs: Vec<LivePack>,
    capacity: usize,
}

impl LiveSet {
    fn new(capacity: usize) -> Self {
        LiveSet {
            packs: Vec::new(),
            capacity: capacity.max(1),
        }
    }

    fn contains_content(&self, content: &PackContent) -> bool {
        self.packs.iter().any(|p| &p.content == content)
    }

    fn contains_exact(&self, keys: &[OperandKey]) -> bool {
        self.packs.iter().any(|p| p.keys == keys)
    }

    fn matching_widths(&self, width: usize) -> impl Iterator<Item = &LivePack> {
        self.packs.iter().filter(move |p| p.keys.len() == width)
    }

    fn insert(&mut self, keys: Vec<OperandKey>) {
        if self.contains_exact(&keys) {
            return;
        }
        // A permuted copy of the same content replaces the old ordering:
        // the register now holds the most recently used arrangement.
        let content = PackContent::from_keys(keys.clone());
        self.packs.retain(|p| p.content != content);
        self.packs.push(LivePack::new(keys));
        if self.packs.len() > self.capacity {
            self.packs.remove(0);
        }
    }

    /// Removes every pack that holds data overlapping `written` — "those
    /// existing superwords that access the same data".
    fn invalidate(&mut self, written: &Operand) {
        self.packs
            .retain(|p| !p.keys.iter().any(|k| key_overlaps(written, k)));
    }
}

/// Whether a written location may overlap the data a pack lane holds.
fn key_overlaps(written: &Operand, key: &OperandKey) -> bool {
    match (written, key) {
        (Operand::Scalar(v), OperandKey::Scalar(w)) => v == w,
        (Operand::Array(r), OperandKey::Array(a, acc)) => {
            r.may_alias(&ArrayRef::new(*a, acc.clone()))
        }
        _ => false,
    }
}

/// Schedules one basic block from its grouping result.
///
/// `units` must partition the block's statements (as produced by
/// [`group_block`](crate::group_block)); groups that would deadlock the
/// dependence graph (a multi-group cycle the pairwise conflict test cannot
/// see) are split back into scalar statements.
pub fn schedule_block(
    block: &BasicBlock,
    deps: &BlockDeps,
    units: &[Unit],
    config: &ScheduleConfig,
) -> BlockSchedule {
    let mut units: Vec<Unit> = units.to_vec();
    loop {
        match try_schedule(block, deps, &units, config) {
            Ok(sched) => return sched,
            Err(stuck_unit) => {
                // Break the cycle: split the smallest stuck group back
                // into singletons and retry.
                let victim = units.remove(stuck_unit);
                for &s in victim.stmts() {
                    units.push(Unit::singleton(s));
                }
            }
        }
    }
}

/// Schedules units in plain program/dependence order, keeping each unit's
/// stored lane order. This is the scheduling the baseline SLP algorithm
/// and the native vectorizer use: no live-set reuse heuristic, no lane
/// reordering.
pub fn schedule_in_program_order(
    block: &BasicBlock,
    deps: &BlockDeps,
    units: &[Unit],
    _config: &ScheduleConfig,
) -> BlockSchedule {
    let mut units: Vec<Unit> = units.to_vec();
    loop {
        match try_program_order(block, deps, &units) {
            Ok(sched) => return sched,
            Err(stuck_unit) => {
                let victim = units.remove(stuck_unit);
                for &s in victim.stmts() {
                    units.push(Unit::singleton(s));
                }
            }
        }
    }
}

fn try_program_order(
    block: &BasicBlock,
    deps: &BlockDeps,
    units: &[Unit],
) -> Result<BlockSchedule, usize> {
    let n = units.len();
    let unit_of = |s: StmtId| -> usize {
        units
            .iter()
            .position(|u| u.stmts().contains(&s))
            .expect("units partition the block")
    };
    let mut edges: BTreeSet<(usize, usize)> = BTreeSet::new();
    for d in deps.direct() {
        let (a, b) = (unit_of(d.src), unit_of(d.dst));
        if a != b {
            edges.insert((a, b));
        }
    }
    let mut preds = vec![0usize; n];
    for &(_, b) in &edges {
        preds[b] += 1;
    }
    let position = |u: &Unit| -> usize {
        u.stmts()
            .iter()
            .map(|&s| block.position(s).expect("stmt in block"))
            .min()
            .unwrap_or(0)
    };
    let mut scheduled = vec![false; n];
    let mut items = Vec::with_capacity(n);
    for _ in 0..n {
        let chosen = (0..n)
            .filter(|&u| !scheduled[u] && preds[u] == 0)
            .min_by_key(|&u| position(&units[u]));
        let Some(chosen) = chosen else {
            return Err((0..n)
                .find(|&u| !scheduled[u] && !units[u].is_singleton())
                // Invariant: singletons alone form the acyclic statement
                // DAG, so any cycle involves a superword group to split.
                .expect("pure statement DAGs cannot deadlock"));
        };
        let unit = &units[chosen];
        items.push(if unit.is_singleton() {
            ScheduledItem::Single(unit.stmts()[0])
        } else {
            ScheduledItem::Superword(SuperwordStmt::new(unit.stmts().to_vec()))
        });
        scheduled[chosen] = true;
        for &(a, b) in &edges {
            if a == chosen {
                preds[b] -= 1;
            }
        }
    }
    Ok(BlockSchedule::new(items))
}

/// Attempts a schedule; `Err(i)` names a group unit to split on deadlock.
fn try_schedule(
    block: &BasicBlock,
    deps: &BlockDeps,
    units: &[Unit],
    config: &ScheduleConfig,
) -> Result<BlockSchedule, usize> {
    let n = units.len();
    let unit_of = |s: StmtId| -> usize {
        units
            .iter()
            .position(|u| u.stmts().contains(&s))
            .expect("units partition the block")
    };

    // Dependence graph among units (paper Figure 11, lines 1-9).
    let mut edges: BTreeSet<(usize, usize)> = BTreeSet::new();
    for d in deps.direct() {
        let (a, b) = (unit_of(d.src), unit_of(d.dst));
        if a != b {
            edges.insert((a, b));
        }
    }
    let mut preds = vec![0usize; n];
    for &(_, b) in &edges {
        preds[b] += 1;
    }

    let position = |u: &Unit| -> usize {
        u.stmts()
            .iter()
            .map(|&s| block.position(s).expect("stmt in block"))
            .min()
            .unwrap_or(0)
    };

    let mut live = LiveSet::new(config.live_set_capacity);
    let mut scheduled = vec![false; n];
    let mut remaining = n;
    let mut items = Vec::with_capacity(n);

    while remaining > 0 {
        let ready: Vec<usize> = (0..n).filter(|&u| !scheduled[u] && preds[u] == 0).collect();
        if ready.is_empty() {
            // Deadlock: report the first unscheduled group for splitting.
            return Err((0..n)
                .find(|&u| !scheduled[u] && !units[u].is_singleton())
                // Invariant: singletons alone form the acyclic statement
                // DAG, so any cycle involves a superword group to split.
                .expect("pure statement DAGs cannot deadlock"));
        }

        // Prefer the ready superword statement with the most superword
        // reuses against the live set (Figure 11, lines 15-18); emit
        // singles only when no group is ready.
        let chosen = ready
            .iter()
            .copied()
            .filter(|&u| !units[u].is_singleton())
            .map(|u| {
                let reuses = units[u]
                    .packs(block)
                    .iter()
                    .filter(|p| p.is_location_pack() && live.contains_content(&p.content))
                    .count();
                (u, reuses)
            })
            .max_by(|(ua, ra), (ub, rb)| {
                ra.cmp(rb)
                    .then_with(|| position(&units[*ub]).cmp(&position(&units[*ua])))
            })
            .map(|(u, _)| u)
            .unwrap_or_else(|| {
                *ready
                    .iter()
                    .min_by_key(|&&u| position(&units[u]))
                    .expect("ready is non-empty")
            });

        let unit = &units[chosen];
        if unit.is_singleton() {
            let s = unit.stmts()[0];
            let stmt = block.stmt(s).expect("stmt in block");
            live.invalidate(&stmt.def());
            items.push(ScheduledItem::Single(s));
        } else {
            let order = choose_lane_order(unit, block, &live);
            // Register the packs this superword statement materializes.
            let mut source_packs = Vec::new();
            let mut dest_pack = None;
            for pos in pack_positions(unit, block) {
                let keys = ordered_keys(&order, block, pos);
                match pos {
                    PackPos::Dest => dest_pack = Some(keys),
                    PackPos::Operand(_) => source_packs.push(keys),
                }
            }
            for keys in source_packs {
                if keys.iter().all(location_key) {
                    live.insert(keys);
                }
            }
            for &s in &order {
                let stmt = block.stmt(s).expect("stmt in block");
                live.invalidate(&stmt.def());
            }
            if let Some(keys) = dest_pack {
                if keys.iter().all(location_key) {
                    live.insert(keys);
                }
            }
            items.push(ScheduledItem::Superword(SuperwordStmt::new(order)));
        }
        scheduled[chosen] = true;
        remaining -= 1;
        for &(a, b) in &edges {
            if a == chosen {
                preds[b] -= 1;
            }
        }
    }
    Ok(BlockSchedule::new(items))
}

fn location_key(k: &OperandKey) -> bool {
    !matches!(k, OperandKey::Const(_))
}

/// The operand positions of a unit that form location packs.
fn pack_positions(unit: &Unit, block: &BasicBlock) -> Vec<PackPos> {
    unit.packs(block)
        .iter()
        .filter(|p| p.is_location_pack())
        .map(|p| p.pos)
        .collect()
}

/// The operand keys of lane order `order` at position `pos`.
fn ordered_keys(order: &[StmtId], block: &BasicBlock, pos: PackPos) -> Vec<OperandKey> {
    order
        .iter()
        .map(|&s| {
            let stmt = block.stmt(s).expect("stmt in block");
            let op = match pos {
                PackPos::Dest => stmt.def(),
                PackPos::Operand(k) => stmt.expr().operands()[k].clone(),
            };
            OperandKey::of(&op)
        })
        .collect()
}

/// Chooses the lane order of a superword statement (Figure 11, lines
/// 19-27): among the orders that realize at least one *direct* reuse from
/// the live set, pick the one needing the fewest permutations; fall back
/// to program order.
fn choose_lane_order(unit: &Unit, block: &BasicBlock, live: &LiveSet) -> Vec<StmtId> {
    let mut program_order: Vec<StmtId> = unit.stmts().to_vec();
    program_order.sort_by_key(|&s| block.position(s).expect("stmt in block"));

    let positions = pack_positions(unit, block);
    let mut candidates: Vec<Vec<StmtId>> = vec![program_order.clone()];
    for pos in &positions {
        for lp in live.matching_widths(unit.width()) {
            if let Some(order) = align_order(unit, block, *pos, &lp.keys) {
                if !candidates.contains(&order) {
                    candidates.push(order);
                }
            }
        }
    }

    candidates
        .into_iter()
        .enumerate()
        .map(|(rank, order)| {
            let (mut permutes, mut directs, mut gathers) = (0usize, 0usize, 0usize);
            for pos in &positions {
                let keys = ordered_keys(&order, block, *pos);
                if live.contains_exact(&keys) {
                    directs += 1;
                } else if live.contains_content(&PackContent::from_keys(keys.clone())) {
                    permutes += 1;
                } else if is_noncontiguous_array_pack(&keys) {
                    // A memory-resident array pack that this lane order
                    // turns into a gather/scatter instead of one vector
                    // memory operation.
                    gathers += 1;
                }
            }
            // A gather costs several shuffles' worth of work, so it
            // dominates the permutation count; ties keep earlier
            // candidates (program order first) for determinism.
            (4 * gathers + permutes, usize::MAX - directs, rank, order)
        })
        .min()
        .map(|(_, _, _, order)| order)
        .expect("at least the program order candidate exists")
}

/// Whether `keys` is an all-array pack that is *not* contiguous ascending
/// in this order (so materializing it from memory needs a gather).
fn is_noncontiguous_array_pack(keys: &[OperandKey]) -> bool {
    let refs: Option<Vec<ArrayRef>> = keys
        .iter()
        .map(|k| match k {
            OperandKey::Array(a, acc) => Some(ArrayRef::new(*a, acc.clone())),
            _ => None,
        })
        .collect();
    match refs {
        Some(refs) => {
            let ptrs: Vec<&ArrayRef> = refs.iter().collect();
            !slp_ir::pack_is_contiguous(&ptrs)
        }
        None => false,
    }
}

/// Finds the lane order that aligns position `pos` of `unit` exactly with
/// the live pack `target`, if one exists.
fn align_order(
    unit: &Unit,
    block: &BasicBlock,
    pos: PackPos,
    target: &[OperandKey],
) -> Option<Vec<StmtId>> {
    let mut used = vec![false; unit.width()];
    let mut order = Vec::with_capacity(unit.width());
    let stmt_keys: Vec<OperandKey> = ordered_keys(unit.stmts(), block, pos);
    for want in target {
        let m = (0..unit.width()).find(|&m| !used[m] && &stmt_keys[m] == want)?;
        used[m] = true;
        order.push(unit.stmts()[m]);
    }
    Some(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group::group_block;
    use crate::superword::validate_schedule;
    use slp_ir::{BinOp, Expr, Program, ScalarType};

    /// Figure 1's reuse chain, reconstructed:
    /// S1: c1 = V1 * k;  S2: c2 = V2 * k;     defines pack <V1,V2>
    /// S3: d1 = V1 + x;  S4: d2 = V2 + x;     direct reuse of <V1,V2>
    /// S5: e1 = V2 - y;  S6: e2 = V1 - y;     permuted reuse <V2,V1>
    fn figure1() -> (Program, BasicBlock) {
        let mut p = Program::new("fig1");
        let names = [
            "V1", "V2", "k", "x", "y", "c1", "c2", "d1", "d2", "e1", "e2",
        ];
        let v: Vec<_> = names
            .iter()
            .map(|n| p.add_scalar(*n, ScalarType::F32))
            .collect();
        let s = [
            p.make_stmt(
                v[5].into(),
                Expr::Binary(BinOp::Mul, v[0].into(), v[2].into()),
            ),
            p.make_stmt(
                v[6].into(),
                Expr::Binary(BinOp::Mul, v[1].into(), v[2].into()),
            ),
            p.make_stmt(
                v[7].into(),
                Expr::Binary(BinOp::Add, v[0].into(), v[3].into()),
            ),
            p.make_stmt(
                v[8].into(),
                Expr::Binary(BinOp::Add, v[1].into(), v[3].into()),
            ),
            p.make_stmt(
                v[9].into(),
                Expr::Binary(BinOp::Sub, v[1].into(), v[4].into()),
            ),
            p.make_stmt(
                v[10].into(),
                Expr::Binary(BinOp::Sub, v[0].into(), v[4].into()),
            ),
        ];
        let bb: BasicBlock = s.into_iter().collect();
        (p, bb)
    }

    fn lanes(item: &ScheduledItem) -> Vec<u32> {
        item.stmts().iter().map(|s| s.index() as u32).collect()
    }

    #[test]
    fn schedules_are_valid() {
        let (p, bb) = figure1();
        let deps = BlockDeps::analyze(&bb);
        let g = group_block(&bb, &deps, &p, |_| 2);
        let sched = schedule_block(&bb, &deps, &g.units, &ScheduleConfig::default());
        validate_schedule(&bb, &deps, &sched, &p, |_| 2).unwrap();
        assert_eq!(sched.superword_count(), 3);
    }

    #[test]
    fn permuted_reuse_aligns_lane_order() {
        let (p, bb) = figure1();
        let deps = BlockDeps::analyze(&bb);
        let g = group_block(&bb, &deps, &p, |_| 2);
        let sched = schedule_block(&bb, &deps, &g.units, &ScheduleConfig::default());
        // The <S5,S6> group uses V2,V1: with <V1,V2> live, the chosen lane
        // order must align to the live pack, scheduling S6 (which reads
        // V1) first.
        let last = sched
            .items()
            .iter()
            .rfind(|i| matches!(i, ScheduledItem::Superword(_)))
            .unwrap();
        assert_eq!(lanes(last), vec![5, 4], "expected <S6,S5> lane order");
    }

    #[test]
    fn singles_and_groups_interleave_validly() {
        // S0: t = x + y (single);  S1/S2 use t: groupable pair.
        let mut p = Program::new("mix");
        let names = ["t", "x", "y", "a", "b"];
        let v: Vec<_> = names
            .iter()
            .map(|n| p.add_scalar(*n, ScalarType::F64))
            .collect();
        let s0 = p.make_stmt(
            v[0].into(),
            Expr::Binary(BinOp::Add, v[1].into(), v[2].into()),
        );
        let s1 = p.make_stmt(
            v[3].into(),
            Expr::Binary(BinOp::Mul, v[0].into(), v[1].into()),
        );
        let s2 = p.make_stmt(
            v[4].into(),
            Expr::Binary(BinOp::Mul, v[0].into(), v[2].into()),
        );
        let bb: BasicBlock = [s0, s1, s2].into_iter().collect();
        let deps = BlockDeps::analyze(&bb);
        let g = group_block(&bb, &deps, &p, |_| 2);
        let sched = schedule_block(&bb, &deps, &g.units, &ScheduleConfig::default());
        validate_schedule(&bb, &deps, &sched, &p, |_| 2).unwrap();
        // The single S0 must run before the group that reads t.
        assert!(matches!(sched.items()[0], ScheduledItem::Single(_)));
    }

    #[test]
    fn writes_invalidate_live_packs() {
        // S0/S1 define <a,b>; S2 overwrites a; S3/S4 read <a,b> again.
        // The schedule is still valid; the live set must not claim a
        // stale <a,b>. (Behavioural check: scheduling succeeds and S2
        // precedes the second group.)
        let mut p = Program::new("inv");
        let names = ["a", "b", "x", "c", "d"];
        let v: Vec<_> = names
            .iter()
            .map(|n| p.add_scalar(*n, ScalarType::F64))
            .collect();
        let s0 = p.make_stmt(
            v[0].into(),
            Expr::Binary(BinOp::Add, v[2].into(), 1.0.into()),
        );
        let s1 = p.make_stmt(
            v[1].into(),
            Expr::Binary(BinOp::Add, v[2].into(), 2.0.into()),
        );
        let s2 = p.make_stmt(
            v[0].into(),
            Expr::Binary(BinOp::Mul, v[0].into(), 3.0.into()),
        );
        let s3 = p.make_stmt(
            v[3].into(),
            Expr::Binary(BinOp::Sub, v[0].into(), v[2].into()),
        );
        let s4 = p.make_stmt(
            v[4].into(),
            Expr::Binary(BinOp::Sub, v[1].into(), v[2].into()),
        );
        let bb: BasicBlock = [s0, s1, s2, s3, s4].into_iter().collect();
        let deps = BlockDeps::analyze(&bb);
        let g = group_block(&bb, &deps, &p, |_| 2);
        let sched = schedule_block(&bb, &deps, &g.units, &ScheduleConfig::default());
        validate_schedule(&bb, &deps, &sched, &p, |_| 2).unwrap();
    }

    #[test]
    fn live_set_capacity_evicts_fifo() {
        let mut ls = LiveSet::new(2);
        let k = |i: u32| vec![OperandKey::Scalar(slp_ir::VarId::new(i))];
        ls.insert(k(0));
        ls.insert(k(1));
        ls.insert(k(2)); // evicts k(0)
        assert!(!ls.contains_exact(&k(0)));
        assert!(ls.contains_exact(&k(1)));
        assert!(ls.contains_exact(&k(2)));
    }

    #[test]
    fn reinserting_permuted_content_replaces_order() {
        let mut ls = LiveSet::new(4);
        let a = OperandKey::Scalar(slp_ir::VarId::new(0));
        let b = OperandKey::Scalar(slp_ir::VarId::new(1));
        ls.insert(vec![a.clone(), b.clone()]);
        ls.insert(vec![b.clone(), a.clone()]);
        assert!(ls.contains_exact(&[b.clone(), a.clone()]));
        assert!(!ls.contains_exact(&[a.clone(), b.clone()]));
        assert_eq!(ls.packs.len(), 1);
    }

    #[test]
    fn multi_group_cycle_is_split() {
        // Construct a 3-group cycle that pairwise conflict checks miss:
        // G0 = {S0, S5}, G1 = {S1, S2}, G2 = {S3, S4} with
        // S0→S1 (G0→G1), S2→S3 (G1→G2), S4→S5 (G2→G0).
        let mut p = Program::new("cycle3");
        let v: Vec<_> = (0..12)
            .map(|k| p.add_scalar(format!("v{k}"), ScalarType::F64))
            .collect();
        let mk = |p: &mut Program, d: usize, s: usize| {
            p.make_stmt(
                v[d].into(),
                Expr::Binary(BinOp::Add, v[s].into(), 1.0.into()),
            )
        };
        let s0 = mk(&mut p, 0, 6);
        let s1 = mk(&mut p, 1, 0);
        let s2 = mk(&mut p, 2, 7);
        let s3 = mk(&mut p, 3, 2);
        let s4 = mk(&mut p, 4, 8);
        let s5 = mk(&mut p, 5, 4);
        let bb: BasicBlock = [s0, s1, s2, s3, s4, s5].into_iter().collect();
        let deps = BlockDeps::analyze(&bb);
        let g0 = Unit::merged(
            &Unit::singleton(StmtId::new(0)),
            &Unit::singleton(StmtId::new(5)),
        );
        let g1 = Unit::merged(
            &Unit::singleton(StmtId::new(1)),
            &Unit::singleton(StmtId::new(2)),
        );
        let g2 = Unit::merged(
            &Unit::singleton(StmtId::new(3)),
            &Unit::singleton(StmtId::new(4)),
        );
        let units = vec![g0, g1, g2];
        let sched = schedule_block(&bb, &deps, &units, &ScheduleConfig::default());
        // At least one group was split, and the result is valid.
        validate_schedule(&bb, &deps, &sched, &p, |_| 2).unwrap();
        assert!(sched.superword_count() < 3);
    }
}
