//! Per-phase compile-time telemetry.
//!
//! Global SLP formulations are compile-time-expensive by construction —
//! the holistic optimizer arbitrates several grouping/scheduling
//! proposals per block, and the Global+Layout scheme compiles every
//! kernel twice. [`PhaseTimings`] makes that cost observable: the
//! pipeline charges the wall time of each [`Phase`] into an accumulator
//! that [`compile_timed`](crate::compile_timed) returns alongside the
//! kernel, and the `slp-driver` batch/serve front-ends aggregate the
//! accumulators into machine-readable reports.
//!
//! The accumulator is deliberately tiny (one `u64` per phase, no
//! allocation) so timing is cheap enough to leave on for every compile.

use std::fmt;
use std::time::{Duration, Instant};

/// The pipeline phases whose wall time is tracked individually.
///
/// The phases mirror the paper's Figure 3 structure plus the
/// post-compile verification hook: pre-processing (loop unrolling, then
/// the dependence/alignment analysis), the holistic optimizer
/// (statement grouping, statement scheduling), the §5 data layout
/// stage, and verification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// Innermost-loop unrolling (pre-processing).
    Unroll,
    /// Dependence and alignment analysis over each basic block.
    Alignment,
    /// Statement grouping — candidate/reuse graph construction and the
    /// grouping heuristic (for the Native/SLP strategies, the whole
    /// pack-discovery pass is charged here).
    Grouping,
    /// Statement scheduling — linearization and lane-order selection.
    Scheduling,
    /// The branch-and-bound packing solver (`Strategy::Optimal` only).
    /// The heuristic warm-start it consumes is still charged to
    /// [`Phase::Grouping`]/[`Phase::Scheduling`]; this phase is the
    /// solver's own search time.
    Solve,
    /// The §5 data layout stage (scalar placement + array replication).
    Layout,
    /// Memory-safety certification of the transformed program's array
    /// accesses (the V505/V506 evidence and the bytecode engine's
    /// license to elide bounds checks).
    Safety,
    /// The post-compile verification hook, when installed.
    Verify,
}

impl Phase {
    /// Every phase, in pipeline order.
    pub const ALL: [Phase; 8] = [
        Phase::Unroll,
        Phase::Alignment,
        Phase::Grouping,
        Phase::Scheduling,
        Phase::Solve,
        Phase::Layout,
        Phase::Safety,
        Phase::Verify,
    ];

    /// The stable lower-case name used in reports and JSON output.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Unroll => "unroll",
            Phase::Alignment => "alignment",
            Phase::Grouping => "grouping",
            Phase::Scheduling => "scheduling",
            Phase::Solve => "solve",
            Phase::Layout => "layout",
            Phase::Safety => "safety",
            Phase::Verify => "verify",
        }
    }

    fn index(self) -> usize {
        match self {
            Phase::Unroll => 0,
            Phase::Alignment => 1,
            Phase::Grouping => 2,
            Phase::Scheduling => 3,
            Phase::Solve => 4,
            Phase::Layout => 5,
            Phase::Safety => 6,
            Phase::Verify => 7,
        }
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Accumulated per-phase wall time of one (or many) compilations.
///
/// Timings add: the dual-arbitration Global+Layout path charges both of
/// its inner compiles into the same accumulator, and batch drivers can
/// [`merge`](PhaseTimings::merge) the accumulators of many kernels into
/// corpus-wide totals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PhaseTimings {
    nanos: [u64; 8],
}

impl PhaseTimings {
    /// An empty accumulator.
    pub fn new() -> Self {
        PhaseTimings::default()
    }

    /// Charges `elapsed` to `phase`.
    pub fn add(&mut self, phase: Phase, elapsed: Duration) {
        let ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        self.nanos[phase.index()] = self.nanos[phase.index()].saturating_add(ns);
    }

    /// Runs `f`, charging its wall time to `phase`, and returns its
    /// result.
    pub fn time<T>(&mut self, phase: Phase, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.add(phase, start.elapsed());
        out
    }

    /// Nanoseconds accumulated for `phase`.
    pub fn nanos(&self, phase: Phase) -> u64 {
        self.nanos[phase.index()]
    }

    /// Overwrites the accumulated nanoseconds of `phase` (used when
    /// restoring persisted timings).
    pub fn set_nanos(&mut self, phase: Phase, nanos: u64) {
        self.nanos[phase.index()] = nanos;
    }

    /// The accumulated duration of `phase`.
    pub fn duration(&self, phase: Phase) -> Duration {
        Duration::from_nanos(self.nanos(phase))
    }

    /// Total nanoseconds across all phases.
    pub fn total_nanos(&self) -> u64 {
        self.nanos.iter().fold(0u64, |a, &n| a.saturating_add(n))
    }

    /// Adds every phase of `other` into `self`.
    pub fn merge(&mut self, other: &PhaseTimings) {
        for p in Phase::ALL {
            self.nanos[p.index()] = self.nanos[p.index()].saturating_add(other.nanos(p));
        }
    }

    /// `(phase, nanos)` pairs in pipeline order.
    pub fn iter(&self) -> impl Iterator<Item = (Phase, u64)> + '_ {
        Phase::ALL.into_iter().map(|p| (p, self.nanos(p)))
    }
}

impl fmt::Display for PhaseTimings {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, (p, ns)) in self.iter().enumerate() {
            if i > 0 {
                f.write_str(" ")?;
            }
            write!(f, "{p}={:.3}ms", ns as f64 / 1e6)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timings_accumulate_and_merge() {
        let mut a = PhaseTimings::new();
        a.add(Phase::Grouping, Duration::from_nanos(50));
        a.add(Phase::Grouping, Duration::from_nanos(25));
        assert_eq!(a.nanos(Phase::Grouping), 75);
        let mut b = PhaseTimings::new();
        b.add(Phase::Grouping, Duration::from_nanos(5));
        b.add(Phase::Layout, Duration::from_nanos(7));
        a.merge(&b);
        assert_eq!(a.nanos(Phase::Grouping), 80);
        assert_eq!(a.nanos(Phase::Layout), 7);
        assert_eq!(a.total_nanos(), 87);
    }

    #[test]
    fn time_charges_the_closure() {
        let mut t = PhaseTimings::new();
        let v = t.time(Phase::Unroll, || 42);
        assert_eq!(v, 42);
        // The closure is trivial but the clock is monotonic; just assert
        // the remaining phases stayed untouched.
        assert_eq!(t.nanos(Phase::Layout), 0);
        assert_eq!(t.nanos(Phase::Verify), 0);
    }

    #[test]
    fn phase_names_are_stable() {
        let names: Vec<&str> = Phase::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(
            names,
            [
                "unroll",
                "alignment",
                "grouping",
                "scheduling",
                "solve",
                "layout",
                "safety",
                "verify"
            ]
        );
    }
}
