//! §5.2 — data layout optimization for array reference superwords.
//!
//! A superword like `<A[4i], A[4i+3]>` needs two loads plus shuffling
//! every iteration. Mapping the accessed elements into a fresh array `B`
//! such that lane `p` of iteration `i` lives at `B[L*i + p]` turns the
//! whole pack into one aligned contiguous vector load (paper Figure 14).
//! The general mapping of Eq. (8) reduces, for the strided interleaved
//! target layout, to giving lane `p` the new affine subscript
//! `p + L * Σ_d stride_d · (i_d − lo_d)` over the enclosing loop nest.
//!
//! Two §5.2 restrictions apply verbatim: all lanes must reference the
//! *same* array and that array must be *read-only* (replication duplicates
//! data, so writes could not be kept coherent). In addition, a replication
//! is only committed when its estimated cycle benefit (cheaper packs ×
//! dynamic occurrences) exceeds the one-time copy cost, and when the
//! replicated array stays within a configurable size budget — this is the
//! "the benefit of layout optimization has to outweigh the cost" gate the
//! paper describes.

use std::collections::BTreeMap;

use slp_ir::{
    pack_is_aligned, pack_is_contiguous, AccessVector, AffineExpr, ArrayId, ArrayRef, LoopHeader,
    Operand, Program, ScalarType,
};

use slp_analysis::PackPos;

use super::PackUse;
use crate::machine::CostParams;

/// Configuration of the array layout stage.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayLayoutConfig {
    /// A replication is skipped when the new array would exceed this
    /// multiple of the source array's size ("in case the input data sizes
    /// ... are too large ... we can skip the layout transformation").
    pub max_replication_factor: f64,
    /// The cycle costs used by the benefit estimate.
    pub cost: CostParams,
}

impl Default for ArrayLayoutConfig {
    fn default() -> Self {
        ArrayLayoutConfig {
            max_replication_factor: 16.0,
            cost: CostParams::intel(),
        }
    }
}

/// A committed mapping/replication: the VM populates `dest` from `source`
/// before the kernel's loops run.
#[derive(Debug, Clone, PartialEq)]
pub struct Replication {
    /// The original (read-only) array.
    pub source: ArrayId,
    /// The new interleaved array.
    pub dest: ArrayId,
    /// Original per-lane accesses, in lane order.
    pub lanes: Vec<AccessVector>,
    /// New 1-D subscript per lane (`p + L·Σ stride_d (i_d − lo_d)`).
    pub dest_exprs: Vec<AffineExpr>,
    /// The loop nest to iterate when populating, outermost first.
    pub loops: Vec<LoopHeader>,
}

impl Replication {
    /// Number of element copies the population pass performs.
    pub fn copy_count(&self) -> i64 {
        let trips: i64 = self
            .loops
            .iter()
            .fold(1i64, |acc, h| acc.saturating_mul(h.trip_count()));
        trips.saturating_mul(self.lanes.len() as i64)
    }
}

/// The Eq. (4) mapping for a one-dimensional reference `A[a·i + b]` in a
/// superword of length `l` at lane position `p`: element `d` of `A` maps
/// to `(d − b) / a · l + p` in the new array.
///
/// # Examples
///
/// Figure 14's `<A[4i], A[4i+3]>` (`l = 2`):
///
/// ```
/// use slp_core::eq4_map;
/// // Lane 0 (A[4i]): elements 0,4,8 land at B[0],B[2],B[4].
/// assert_eq!(eq4_map(8, 4, 0, 2, 0), 4);
/// // Lane 1 (A[4i+3]): elements 3,7,11 land at B[1],B[3],B[5].
/// assert_eq!(eq4_map(7, 4, 3, 2, 1), 3);
/// ```
pub fn eq4_map(d: i64, a: i64, b: i64, l: i64, p: i64) -> i64 {
    (d - b) / a * l + p
}

/// Identifies profitable array reference superwords in `uses`, rewrites
/// the participating references in `program` to target fresh interleaved
/// arrays, and returns the replications the runtime must perform.
pub fn optimize_array_layout(
    program: &mut Program,
    uses: &[PackUse],
    config: &ArrayLayoutConfig,
) -> Vec<Replication> {
    // Aggregate identical packs (same array, lane accesses and nest).
    // Occurrences count once per *block*: repeated uses within one block
    // hit the pack in a vector register (reuse), not memory.
    type Key = (ArrayId, Vec<AccessVector>, Vec<(i64, i64, i64)>);
    let mut agg: BTreeMap<Key, (Vec<&PackUse>, i64, Vec<slp_ir::BlockId>)> = BTreeMap::new();
    for u in uses {
        if u.pos == PackPos::Dest {
            continue; // writes cannot be replicated
        }
        let Some((array, lanes)) = array_pack(u) else {
            continue;
        };
        let loop_key: Vec<(i64, i64, i64)> =
            u.loops.iter().map(|h| (h.lower, h.upper, h.step)).collect();
        let e = agg
            .entry((array, lanes, loop_key))
            .or_insert_with(|| (Vec::new(), 0, Vec::new()));
        if !e.2.contains(&u.block) {
            e.1 += u.dynamic_trips();
            e.2.push(u.block);
        }
        e.0.push(u);
    }

    let mut out = Vec::new();
    for ((array, lanes, _), (pack_uses, occurrences, _)) in agg {
        if !program.array_is_read_only(array) {
            continue;
        }
        let info = program.array(array).clone();
        let loops = pack_uses[0].loops.clone();
        if let Some(r) = plan_replication(
            program,
            array,
            &info.ty,
            &lanes,
            &loops,
            occurrences,
            config,
        ) {
            rewrite_uses(program, &pack_uses, &lanes, array, &r);
            out.push(r);
        }
    }
    out
}

/// Extracts `(array, lane accesses)` when every lane of the pack is a
/// distinct reference into one array.
fn array_pack(u: &PackUse) -> Option<(ArrayId, Vec<AccessVector>)> {
    let mut array = None;
    let mut lanes = Vec::with_capacity(u.ops.len());
    for op in &u.ops {
        let r = op.as_array()?;
        match array {
            None => array = Some(r.array),
            Some(a) if a == r.array => {}
            Some(_) => return None, // intra-array references only (§5.2)
        }
        lanes.push(r.access.clone());
    }
    let mut dedup = lanes.clone();
    dedup.sort();
    dedup.dedup();
    if dedup.len() != lanes.len() {
        return None; // splat lanes broadcast instead
    }
    array.map(|a| (a, lanes))
}

/// Builds the replication plan if it is profitable and within budget.
fn plan_replication(
    program: &mut Program,
    source: ArrayId,
    ty: &ScalarType,
    lanes: &[AccessVector],
    loops: &[LoopHeader],
    occurrences: i64,
    config: &ArrayLayoutConfig,
) -> Option<Replication> {
    let l = lanes.len() as i64;
    let refs: Vec<ArrayRef> = lanes
        .iter()
        .map(|a| ArrayRef::new(source, a.clone()))
        .collect();
    let ref_ptrs: Vec<&ArrayRef> = refs.iter().collect();

    // Old per-occurrence cost of materializing the pack from memory.
    let c = &config.cost;
    let old = if pack_is_contiguous(&ref_ptrs) {
        if pack_is_aligned(&ref_ptrs, program) {
            return None; // already optimal
        }
        c.unaligned_load
    } else {
        l as f64 * (c.scalar_load + c.insert)
    };
    let new = c.vector_load;

    // Only the loops the accesses actually index with shape the new
    // array; invariant outer loops re-read the same replicated elements,
    // which is precisely when replication pays off.
    let used: Vec<LoopHeader> = loops
        .iter()
        .filter(|h| {
            lanes
                .iter()
                .any(|a| a.dims().iter().any(|e| e.coeff(h.var) != 0))
        })
        .copied()
        .collect();

    // New array size: lane stride L over the mixed-radix span of the
    // indexing loops.
    let mut span = 1i64;
    for h in &used {
        span = span.saturating_mul(h.upper.saturating_sub(h.lower).max(1));
    }
    let new_len = l.saturating_mul(span);
    let src_len = program.array(source).len().max(1);
    if (new_len as f64) > config.max_replication_factor * src_len as f64 {
        return None;
    }

    // One-time population cost vs recurring savings.
    let copies: i64 = used
        .iter()
        .fold(1i64, |acc, h| acc.saturating_mul(h.trip_count()))
        .saturating_mul(l);
    let copy_cost = copies as f64 * (c.scalar_load + c.scalar_store);
    let saving = occurrences as f64 * (old - new);
    if saving <= copy_cost {
        return None;
    }

    // Per-lane destination subscripts: p + L·Σ stride_d (i_d − lo_d).
    let mut base = AffineExpr::constant_expr(0);
    let mut stride = l;
    for h in used.iter().rev() {
        base = base.add(
            &AffineExpr::var(h.var)
                .offset(0i64.saturating_sub(h.lower))
                .scaled(stride),
        );
        stride = stride.saturating_mul(h.upper.saturating_sub(h.lower).max(1));
    }
    let dest_exprs: Vec<AffineExpr> = (0..l).map(|p| base.offset(p)).collect();
    let loops = used;

    let name = format!(
        "{}.slp{}",
        program.array(source).name,
        program.arrays().len()
    );
    let dest = program.add_array(name, *ty, vec![new_len], false);
    Some(Replication {
        source,
        dest,
        lanes: lanes.to_vec(),
        dest_exprs,
        loops: loops.to_vec(),
    })
}

/// Rewrites the lane operands of the participating statements to read the
/// new interleaved array.
fn rewrite_uses(
    program: &mut Program,
    pack_uses: &[&PackUse],
    lanes: &[AccessVector],
    source: ArrayId,
    r: &Replication,
) {
    for u in pack_uses {
        let PackPos::Operand(k) = u.pos else { continue };
        for (lane, &stmt_id) in u.stmts.iter().enumerate() {
            let target = &lanes[lane];
            program.for_each_stmt_mut(|s| {
                if s.id() != stmt_id {
                    return;
                }
                if let Some(op) = s.expr_mut().operands_mut().into_iter().nth(k) {
                    if let Operand::Array(ar) = op {
                        if ar.array == source && &ar.access == target {
                            *op = Operand::Array(ArrayRef::new(
                                r.dest,
                                AccessVector::new(vec![r.dest_exprs[lane].clone()]),
                            ));
                        }
                    }
                }
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slp_ir::{BlockId, Expr, StmtId};

    /// Builds the Figure 13/14 scenario: a superword <A[4i], A[4i+3]>
    /// read in a loop of `n` iterations, optionally re-read by an
    /// enclosing loop of `outer` iterations that the accesses ignore.
    fn figure14(n: i64, outer: Option<i64>) -> (Program, PackUse) {
        let mut p = Program::new("fig14");
        let a = p.add_array("A", ScalarType::F64, vec![4 * n + 4], true);
        let i = p.add_loop_var("i");
        let (d0, d1) = (
            p.add_scalar("d0", ScalarType::F64),
            p.add_scalar("d1", ScalarType::F64),
        );
        let acc0 = AccessVector::new(vec![AffineExpr::var(i).scaled(4)]);
        let acc3 = AccessVector::new(vec![AffineExpr::var(i).scaled(4).offset(3)]);
        let s0 = p.make_stmt(d0.into(), Expr::Copy(ArrayRef::new(a, acc0.clone()).into()));
        let s1 = p.make_stmt(d1.into(), Expr::Copy(ArrayRef::new(a, acc3.clone()).into()));
        let header = LoopHeader {
            var: i,
            lower: 0,
            upper: n,
            step: 1,
        };
        let inner = slp_ir::Item::Loop(slp_ir::Loop {
            header,
            body: vec![slp_ir::Item::Stmt(s0), slp_ir::Item::Stmt(s1)],
        });
        let mut loops = Vec::new();
        match outer {
            Some(reps) => {
                let t = p.add_loop_var("t");
                let outer_header = LoopHeader {
                    var: t,
                    lower: 0,
                    upper: reps,
                    step: 1,
                };
                loops.push(outer_header);
                p.push_item(slp_ir::Item::Loop(slp_ir::Loop {
                    header: outer_header,
                    body: vec![inner],
                }));
            }
            None => p.push_item(inner),
        }
        loops.push(header);
        let u = PackUse {
            block: BlockId(0),
            stmts: vec![StmtId::new(0), StmtId::new(1)],
            pos: PackPos::Operand(0),
            ops: vec![ArrayRef::new(a, acc0).into(), ArrayRef::new(a, acc3).into()],
            loops,
        };
        (p, u)
    }

    #[test]
    fn figure14_replication_interleaves_lanes() {
        let (mut p, u) = figure14(64, Some(8));
        let reps = optimize_array_layout(&mut p, &[u], &ArrayLayoutConfig::default());
        assert_eq!(reps.len(), 1);
        let r = &reps[0];
        // Lane p reads B[2i + p], matching Eq. (4).
        let i = slp_ir::LoopVarId::new(0);
        assert_eq!(r.dest_exprs[0], AffineExpr::var(i).scaled(2));
        assert_eq!(r.dest_exprs[1], AffineExpr::var(i).scaled(2).offset(1));
        assert_eq!(r.copy_count(), 128);
        // The program's loads were rewritten to the new array.
        let blocks = p.blocks();
        let stmts = blocks[0].block.stmts();
        for s in stmts {
            let r0 = s.uses()[0].as_array().unwrap();
            assert_eq!(r0.array, r.dest);
        }
        // And the rewritten pack is contiguous + aligned.
        let refs: Vec<&ArrayRef> = stmts
            .iter()
            .map(|s| s.uses()[0].as_array().unwrap())
            .collect();
        assert!(pack_is_contiguous(&refs));
        assert!(pack_is_aligned(&refs, &p));
    }

    #[test]
    fn written_arrays_are_not_replicated() {
        let (mut p, u) = figure14(64, Some(8));
        // Add a write to A, making it non-read-only.
        let a = ArrayId::new(0);
        let i = slp_ir::LoopVarId::new(0);
        let w = p.make_stmt(
            ArrayRef::new(a, AccessVector::new(vec![AffineExpr::var(i)])).into(),
            Expr::Copy(1.0.into()),
        );
        p.push_item(slp_ir::Item::Stmt(w));
        let reps = optimize_array_layout(&mut p, &[u], &ArrayLayoutConfig::default());
        assert!(reps.is_empty());
    }

    #[test]
    fn already_contiguous_aligned_packs_are_left_alone() {
        let mut p = Program::new("noop");
        let a = p.add_array("A", ScalarType::F64, vec![64], true);
        let i = p.add_loop_var("i");
        let acc = |c: i64| AccessVector::new(vec![AffineExpr::var(i).scaled(2).offset(c)]);
        let u = PackUse {
            block: BlockId(0),
            stmts: vec![StmtId::new(0), StmtId::new(1)],
            pos: PackPos::Operand(0),
            ops: vec![
                ArrayRef::new(a, acc(0)).into(),
                ArrayRef::new(a, acc(1)).into(),
            ],
            loops: vec![LoopHeader {
                var: i,
                lower: 0,
                upper: 32,
                step: 1,
            }],
        };
        let reps = optimize_array_layout(&mut p, &[u], &ArrayLayoutConfig::default());
        assert!(reps.is_empty());
    }

    #[test]
    fn single_sweep_fails_the_benefit_gate() {
        // Without an enclosing loop each replicated element is read once:
        // the one-time copy costs more than the per-iteration saving.
        let (mut p, u) = figure14(64, None);
        let reps = optimize_array_layout(&mut p, &[u], &ArrayLayoutConfig::default());
        assert!(reps.is_empty());
    }

    #[test]
    fn replication_budget_is_enforced() {
        let (mut p, u) = figure14(64, Some(8));
        let config = ArrayLayoutConfig {
            max_replication_factor: 0.1,
            cost: CostParams::intel(),
        };
        let reps = optimize_array_layout(&mut p, &[u], &config);
        assert!(reps.is_empty());
    }

    #[test]
    fn eq4_matches_figure14_table() {
        // A = [a0 .. a11], L = 2: lane 0 covers 0,4,8 -> 0,2,4; lane 1
        // covers 3,7,11 -> 1,3,5.
        for (idx, (d, want)) in [(0, 0), (4, 2), (8, 4)].iter().enumerate() {
            let _ = idx;
            assert_eq!(eq4_map(*d, 4, 0, 2, 0), *want);
        }
        for (d, want) in [(3, 1), (7, 3), (11, 5)] {
            assert_eq!(eq4_map(d, 4, 3, 2, 1), want);
        }
    }

    #[test]
    fn mixed_array_packs_are_rejected() {
        let (mut p, mut u) = figure14(64, Some(8));
        let b = p.add_array("B", ScalarType::F64, vec![64], true);
        let i = slp_ir::LoopVarId::new(0);
        u.ops[1] = ArrayRef::new(b, AccessVector::new(vec![AffineExpr::var(i)])).into();
        let reps = optimize_array_layout(&mut p, &[u], &ArrayLayoutConfig::default());
        assert!(reps.is_empty());
    }
}
