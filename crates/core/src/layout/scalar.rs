//! §5.1 — data layout optimization for scalar superwords.
//!
//! Scalar locals live in memory (the stack frame); packing a scalar
//! superword therefore costs one memory operation per lane unless the
//! lanes happen to sit in consecutive aligned slots. This pass solves the
//! placement problem like the offset-assignment problem of DSP code
//! generation, except the desired adjacencies come from the superword
//! statement generation stage: scalar superwords are processed in
//! decreasing order of occurrence, each assigning its variables
//! consecutive aligned slots in lane order; superwords that share a
//! variable with an already-placed one are skipped (conflicting layout
//! requirements), so the hottest packs win.

use std::collections::BTreeMap;

use slp_ir::{Operand, Program, TypeEnv, VarId};

use super::PackUse;

/// The memory placement of every scalar variable of a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScalarLayout {
    addr: Vec<u64>,
    total_bytes: u64,
    optimized: bool,
}

impl ScalarLayout {
    /// The declaration-order default layout: scalars packed one after
    /// another, each aligned to its own size.
    pub fn declaration_order(program: &Program) -> Self {
        let mut addr = vec![0u64; program.scalars().len()];
        let mut next = 0u64;
        for v in program.scalar_ids() {
            let size = u64::from(program.scalar_type(v).size_bytes());
            next = next.div_ceil(size) * size;
            addr[v.index()] = next;
            next += size;
        }
        ScalarLayout {
            addr,
            total_bytes: next,
            optimized: false,
        }
    }

    /// Reconstructs a layout from its raw parts — the per-variable byte
    /// addresses (indexed by `VarId`), the frame size, and whether the
    /// layout came out of the §5.1 optimization. Used by the
    /// `slp-driver` compile cache to restore persisted kernels; the
    /// caller is responsible for the parts being mutually consistent.
    pub fn from_raw(addr: Vec<u64>, total_bytes: u64, optimized: bool) -> Self {
        ScalarLayout {
            addr,
            total_bytes,
            optimized,
        }
    }

    /// The per-variable byte addresses backing this layout, indexed by
    /// `VarId` (the inverse of [`ScalarLayout::from_raw`]).
    pub fn addresses(&self) -> &[u64] {
        &self.addr
    }

    /// Whether this layout was produced by the §5.1 optimization. Only
    /// then may the code generator rely on slot adjacency — an
    /// un-optimized stack layout gives no such guarantee once register
    /// allocation and spilling rearrange the frame.
    pub fn is_optimized(&self) -> bool {
        self.optimized
    }

    /// The byte address assigned to scalar `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not covered by this layout.
    pub fn address(&self, v: VarId) -> u64 {
        self.addr[v.index()]
    }

    /// Size of the scalar frame in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Whether the given lanes sit at consecutive, pack-aligned addresses
    /// (so the pack moves with one vector memory operation).
    pub fn pack_is_contiguous_aligned(&self, lanes: &[VarId], elem_size: u32) -> bool {
        let Some(&first) = lanes.first() else {
            return false;
        };
        let base = self.address(first);
        let width = u64::from(elem_size) * lanes.len() as u64;
        base.is_multiple_of(width)
            && lanes
                .iter()
                .enumerate()
                .all(|(k, &v)| self.address(v) == base + k as u64 * u64::from(elem_size))
    }
}

/// Runs the §5.1 placement over the scalar superwords found in the
/// schedules.
///
/// Returns the optimized layout plus the number of packs it satisfied.
pub fn optimize_scalar_layout(program: &Program, uses: &[PackUse]) -> (ScalarLayout, usize) {
    // Gather scalar superwords with occurrence counts, keyed by their
    // ordered lanes (the scheduling phase fixed lane order, which is the
    // order the variables must take in memory).
    let mut occurrences: BTreeMap<Vec<VarId>, usize> = BTreeMap::new();
    for u in uses {
        let lanes: Option<Vec<VarId>> = u
            .ops
            .iter()
            .map(|o| match o {
                Operand::Scalar(v) => Some(*v),
                _ => None,
            })
            .collect();
        if let Some(lanes) = lanes {
            // A pack of repeated lanes (a splat like <s,s>) has no layout
            // need: one scalar load feeds a broadcast.
            let mut dedup = lanes.clone();
            dedup.sort();
            dedup.dedup();
            if dedup.len() == lanes.len() {
                *occurrences.entry(lanes).or_insert(0) += 1;
            }
        }
    }

    let mut by_count: Vec<(Vec<VarId>, usize)> = occurrences.into_iter().collect();
    // Decreasing occurrence; deterministic tie-break on the lanes.
    by_count.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));

    let n = program.scalars().len();
    let mut assigned: Vec<Option<u64>> = vec![None; n];
    let mut next = 0u64;
    let mut satisfied = 0usize;
    for (lanes, _count) in &by_count {
        if lanes.iter().any(|v| assigned[v.index()].is_some()) {
            continue; // conflicting layout requirement: skip (paper, §5.1)
        }
        let elem = u64::from(program.scalar_type(lanes[0]).size_bytes());
        let width = elem * lanes.len() as u64;
        next = next.div_ceil(width) * width; // align to the pack width
        for (k, &v) in lanes.iter().enumerate() {
            assigned[v.index()] = Some(next + k as u64 * elem);
        }
        next += width;
        satisfied += 1;
    }

    // Remaining scalars follow in declaration order.
    let mut addr = vec![0u64; n];
    for v in program.scalar_ids() {
        match assigned[v.index()] {
            Some(a) => addr[v.index()] = a,
            None => {
                let size = u64::from(program.scalar_type(v).size_bytes());
                next = next.div_ceil(size) * size;
                addr[v.index()] = next;
                next += size;
            }
        }
    }
    (
        ScalarLayout {
            addr,
            total_bytes: next,
            optimized: true,
        },
        satisfied,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use slp_analysis::PackPos;
    use slp_ir::{BlockId, ScalarType};

    fn pack_use(lanes: &[VarId]) -> PackUse {
        PackUse {
            block: BlockId(0),
            stmts: vec![],
            pos: PackPos::Dest,
            ops: lanes.iter().map(|&v| Operand::Scalar(v)).collect(),
            loops: vec![],
        }
    }

    fn program_with_scalars(n: u32) -> (Program, Vec<VarId>) {
        let mut p = Program::new("t");
        let vs = (0..n)
            .map(|k| p.add_scalar(format!("s{k}"), ScalarType::F64))
            .collect();
        (p, vs)
    }

    #[test]
    fn declaration_order_is_dense_and_aligned() {
        let (p, vs) = program_with_scalars(3);
        let l = ScalarLayout::declaration_order(&p);
        assert!(!l.is_optimized());
        assert_eq!(l.address(vs[0]), 0);
        assert_eq!(l.address(vs[1]), 8);
        assert_eq!(l.address(vs[2]), 16);
        assert_eq!(l.total_bytes(), 24);
    }

    #[test]
    fn hot_pack_gets_contiguous_aligned_slots() {
        let (p, vs) = program_with_scalars(4);
        // Pack <s2, s0> appears twice, <s1, s3> once.
        let uses = vec![
            pack_use(&[vs[2], vs[0]]),
            pack_use(&[vs[2], vs[0]]),
            pack_use(&[vs[1], vs[3]]),
        ];
        let (l, satisfied) = optimize_scalar_layout(&p, &uses);
        assert!(l.is_optimized());
        assert_eq!(satisfied, 2);
        assert!(l.pack_is_contiguous_aligned(&[vs[2], vs[0]], 8));
        assert!(l.pack_is_contiguous_aligned(&[vs[1], vs[3]], 8));
        // Lane order matters: the reverse is not contiguous-ascending.
        assert!(!l.pack_is_contiguous_aligned(&[vs[0], vs[2]], 8));
    }

    #[test]
    fn conflicting_packs_lose_to_hotter_ones() {
        let (p, vs) = program_with_scalars(3);
        // <s0, s1> twice vs <s1, s2> once: they share s1.
        let uses = vec![
            pack_use(&[vs[0], vs[1]]),
            pack_use(&[vs[0], vs[1]]),
            pack_use(&[vs[1], vs[2]]),
        ];
        let (l, satisfied) = optimize_scalar_layout(&p, &uses);
        assert_eq!(satisfied, 1);
        assert!(l.pack_is_contiguous_aligned(&[vs[0], vs[1]], 8));
        assert!(!l.pack_is_contiguous_aligned(&[vs[1], vs[2]], 8));
    }

    #[test]
    fn splat_packs_are_ignored() {
        let (p, vs) = program_with_scalars(2);
        let uses = vec![pack_use(&[vs[0], vs[0]])];
        let (_, satisfied) = optimize_scalar_layout(&p, &uses);
        assert_eq!(satisfied, 0);
    }

    #[test]
    fn every_scalar_gets_a_unique_address() {
        let (p, vs) = program_with_scalars(5);
        let uses = vec![pack_use(&[vs[3], vs[1]])];
        let (l, _) = optimize_scalar_layout(&p, &uses);
        let mut addrs: Vec<u64> = vs.iter().map(|&v| l.address(v)).collect();
        addrs.sort();
        addrs.dedup();
        assert_eq!(addrs.len(), 5);
        assert!(l.total_bytes() >= 40);
    }

    #[test]
    fn mixed_operand_packs_are_skipped() {
        let (p, vs) = program_with_scalars(2);
        let mut u = pack_use(&[vs[0], vs[1]]);
        u.ops[1] = Operand::Const(1.0);
        let (_, satisfied) = optimize_scalar_layout(&p, &[u]);
        assert_eq!(satisfied, 0);
    }
}
