//! Data layout optimization (§5): the complementary second stage.
//!
//! Superword statement generation reduces *how often* packing/unpacking
//! happens; this stage reduces *what each remaining mandatory
//! packing/unpacking costs* by reorganizing memory:
//!
//! * [`scalar`] — §5.1: offset-assignment-style placement of scalar
//!   variables so a scalar superword occupies consecutive aligned slots
//!   and moves with one vector memory operation,
//! * [`array`] — §5.2: affine transformation plus mapping/replication of
//!   read-only array references into a new interleaved array, so a
//!   strided gather becomes one aligned contiguous vector load
//!   (paper Figures 13–14, Eq. (1)–(8)).

pub mod array;
pub mod scalar;

use slp_ir::{BlockInfo, LoopHeader, Operand, StmtId};

use slp_analysis::PackPos;

use crate::superword::{BlockSchedule, ScheduledItem};

/// One appearance of an ordered superword (pack) in a final schedule,
/// with enough loop context to weigh and rewrite it.
#[derive(Debug, Clone, PartialEq)]
pub struct PackUse {
    /// The block the pack appears in.
    pub block: slp_ir::BlockId,
    /// Lane statements in lane order.
    pub stmts: Vec<StmtId>,
    /// The operand position the pack occupies.
    pub pos: PackPos,
    /// The lane operands in lane order.
    pub ops: Vec<Operand>,
    /// The enclosing loop nest, outermost first.
    pub loops: Vec<LoopHeader>,
}

impl PackUse {
    /// How many times this pack is touched at run time (product of the
    /// enclosing trip counts).
    pub fn dynamic_trips(&self) -> i64 {
        self.loops
            .iter()
            .fold(1i64, |acc, h| acc.saturating_mul(h.trip_count()))
    }
}

/// Collects every location pack of every superword statement across the
/// scheduled blocks, in lane order.
pub fn collect_pack_uses(schedules: &[(BlockInfo, BlockSchedule)]) -> Vec<PackUse> {
    let mut out = Vec::new();
    for (info, sched) in schedules {
        for item in sched.items() {
            let ScheduledItem::Superword(sw) = item else {
                continue;
            };
            let stmts: Vec<_> = sw
                .lanes()
                .iter()
                .map(|&id| info.block.stmt(id).expect("lane in block"))
                .collect();
            // Destination pack.
            let dest_ops: Vec<Operand> = stmts.iter().map(|s| s.def()).collect();
            out.push(PackUse {
                block: info.id,
                stmts: sw.lanes().to_vec(),
                pos: PackPos::Dest,
                ops: dest_ops,
                loops: info.loops.clone(),
            });
            // Source packs.
            for k in 0..stmts[0].expr().arity() {
                let ops: Vec<Operand> = stmts
                    .iter()
                    .map(|s| s.expr().operands()[k].clone())
                    .collect();
                if ops.iter().all(Operand::is_location) {
                    out.push(PackUse {
                        block: info.id,
                        stmts: sw.lanes().to_vec(),
                        pos: PackPos::Operand(k),
                        ops,
                        loops: info.loops.clone(),
                    });
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group::group_block;
    use crate::schedule::{schedule_block, ScheduleConfig};
    use slp_ir::{BlockDeps, Program, ScalarType, TypeEnv};

    fn compile_blocks(src: &str) -> (Program, Vec<(BlockInfo, BlockSchedule)>) {
        let mut p = slp_lang::compile(src).unwrap();
        slp_ir::unroll_program(&mut p, 2);
        let mut scheds = Vec::new();
        for info in p.blocks() {
            let deps = BlockDeps::analyze(&info.block);
            let g = group_block(&info.block, &deps, &p, |_| 2);
            let s = schedule_block(&info.block, &deps, &g.units, &ScheduleConfig::default());
            scheds.push((info, s));
        }
        (p, scheds)
    }

    #[test]
    fn collects_dest_and_source_packs_with_loop_context() {
        let (p, scheds) = compile_blocks(
            "kernel k { array A: f64[32]; array B: f64[32]; scalar s: f64;
             for i in 0..16 { A[i] = B[i] * s; } }",
        );
        assert_eq!(p.scalar_type(slp_ir::VarId::new(0)), ScalarType::F64);
        let uses = collect_pack_uses(&scheds);
        // One superword statement: dest pack (A), source pack (B) and the
        // splat pack (s,s).
        assert_eq!(uses.len(), 3);
        assert!(uses.iter().all(|u| u.loops.len() == 1));
        // Trips: 16 iterations unrolled by 2 -> 8 dynamic executions.
        assert!(uses.iter().all(|u| u.dynamic_trips() == 8));
    }
}
