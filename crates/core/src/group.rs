//! The holistic statement-grouping phase (§4.2): the paper's main
//! contribution.
//!
//! Unlike the seed-and-extend heuristic of the original SLP algorithm,
//! every grouping decision here is scored against the *whole basic block*:
//! the candidate whose variable packs promise the largest average superword
//! reuse (weight `W = r / Nt`, computed over the variable-pack conflicting
//! graph) is committed first, the graphs are updated, and the process
//! repeats until no candidate remains. Iterative grouping (§4.2.2) then
//! treats each decided group as an atomic unit and reruns the basic
//! algorithm to fill wider datapaths.

use slp_analysis::{
    find_candidates, Candidate, ConflictMatrix, PackContent, PackGraph, Unit, WeightContext,
    WeightParams,
};
use slp_ir::{BasicBlock, BlockDeps, StmtId, TypeEnv};

/// A record of one grouping decision, for tracing and tests.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupingDecision {
    /// The statements merged by this decision.
    pub stmts: Vec<StmtId>,
    /// The weight the decision was taken at.
    pub weight: f64,
    /// The grouping round (0 = pairs, 1 = pairs of pairs, ...).
    pub round: usize,
}

/// The result of the grouping phase for one basic block.
#[derive(Debug, Clone, PartialEq)]
pub struct Grouping {
    /// All units: SIMD groups (width ≥ 2) and leftover singletons.
    pub units: Vec<Unit>,
    /// The decision trace, in the order decisions were made.
    pub decisions: Vec<GroupingDecision>,
}

impl Grouping {
    /// The SIMD groups (units of width ≥ 2).
    pub fn groups(&self) -> impl Iterator<Item = &Unit> {
        self.units.iter().filter(|u| !u.is_singleton())
    }

    /// Number of statements covered by SIMD groups.
    pub fn vectorized_stmts(&self) -> usize {
        self.groups().map(Unit::width).sum()
    }
}

/// Runs holistic grouping on one basic block.
///
/// `lane_cap` bounds the group width per statement (datapath width divided
/// by the statement's element width — §4.1 constraint 4).
pub fn group_block<E: TypeEnv>(
    block: &BasicBlock,
    deps: &BlockDeps,
    env: &E,
    lane_cap: impl FnMut(StmtId) -> usize,
) -> Grouping {
    group_block_with(block, deps, env, lane_cap, &WeightParams::default())
}

/// [`group_block`] with explicit weight parameters.
pub fn group_block_with<E: TypeEnv>(
    block: &BasicBlock,
    deps: &BlockDeps,
    env: &E,
    mut lane_cap: impl FnMut(StmtId) -> usize,
    weights: &WeightParams,
) -> Grouping {
    let mut units: Vec<Unit> = block.iter().map(|s| Unit::singleton(s.id())).collect();
    let mut decisions = Vec::new();
    let mut round = 0;
    loop {
        let made = basic_round(
            &mut units,
            block,
            deps,
            env,
            &mut lane_cap,
            round,
            &mut decisions,
            weights,
        );
        if made == 0 {
            break;
        }
        round += 1;
    }
    Grouping { units, decisions }
}

/// One round of the basic grouping algorithm (§4.2.1, Figure 10) over the
/// current unit set. Returns the number of decisions made and merges the
/// decided pairs in `units`.
#[allow(clippy::too_many_arguments)]
fn basic_round<E: TypeEnv>(
    units: &mut Vec<Unit>,
    block: &BasicBlock,
    deps: &BlockDeps,
    env: &E,
    lane_cap: &mut impl FnMut(StmtId) -> usize,
    round: usize,
    decisions: &mut Vec<GroupingDecision>,
    weights: &WeightParams,
) -> usize {
    // Steps 1-2: candidates, conflicts and the variable-pack graph.
    let candidates = find_candidates(units, block, deps, env, &mut *lane_cap);
    if candidates.is_empty() {
        return 0;
    }
    let conflicts = ConflictMatrix::compute(&candidates, deps);
    let vp = PackGraph::build(&candidates);
    let wcx = WeightContext::new(&candidates, &vp, &conflicts, weights);

    // Step 4: pick the best candidate, update, repeat.
    let mut alive = vec![true; candidates.len()];
    let mut decided: Vec<usize> = Vec::new();
    let mut decided_packs: Vec<PackContent> = Vec::new();
    loop {
        let best = alive
            .iter()
            .enumerate()
            .filter(|(_, &a)| a)
            .map(|(c, _)| (c, wcx.weight(c, &alive, &decided_packs, weights)))
            .max_by(|(ca, wa), (cb, wb)| {
                wa.partial_cmp(wb)
                    .expect("weights are finite")
                    // Deterministic tie-break: earliest statements win
                    // (the paper chooses randomly; determinism keeps the
                    // evaluation reproducible).
                    .then_with(|| tie_key(&candidates[*cb]).cmp(&tie_key(&candidates[*ca])))
            });
        let Some((c, w)) = best else { break };
        alive[c] = false;
        decided.push(c);
        decisions.push(GroupingDecision {
            stmts: candidates[c].stmts.clone(),
            weight: w,
            round,
        });
        for p in &candidates[c].packs {
            decided_packs.push(p.content.clone());
        }
        // Kill every conflicting candidate (they share a unit with the
        // decision or would form a dependence cycle with it).
        for (other, slot) in alive.iter_mut().enumerate() {
            if *slot && conflicts.get(c, other) {
                *slot = false;
            }
        }
    }

    // Merge the decided pairs into new units.
    let mut merged_away = vec![false; units.len()];
    let mut new_units = Vec::with_capacity(units.len());
    for &c in &decided {
        let cand = &candidates[c];
        new_units.push(Unit::merged(&units[cand.a], &units[cand.b]));
        merged_away[cand.a] = true;
        merged_away[cand.b] = true;
    }
    for (i, u) in units.iter().enumerate() {
        if !merged_away[i] {
            new_units.push(u.clone());
        }
    }
    *units = new_units;
    decided.len()
}

/// Tie-break key: the sorted statement ids of a candidate; smaller wins.
fn tie_key(c: &Candidate) -> Vec<StmtId> {
    let mut k = c.stmts.clone();
    k.sort();
    k
}

#[cfg(test)]
mod tests {
    use super::*;
    use slp_ir::{BinOp, Expr, Program, ScalarType};

    /// The paper's Figure 2 block (see `slp-analysis` for the derivation).
    fn figure2() -> (Program, BasicBlock) {
        let mut p = Program::new("fig2");
        let v: Vec<_> = (0..8)
            .map(|k| p.add_scalar(format!("V{k}"), ScalarType::F32))
            .collect();
        let s1 = p.make_stmt(v[1].into(), Expr::Copy(v[3].into()));
        let s2 = p.make_stmt(v[2].into(), Expr::Copy(v[5].into()));
        let s3 = p.make_stmt(v[5].into(), Expr::Copy(v[7].into()));
        let s4 = p.make_stmt(
            v[1].into(),
            Expr::Binary(BinOp::Mul, v[3].into(), v[1].into()),
        );
        let s5 = p.make_stmt(
            v[5].into(),
            Expr::Binary(BinOp::Mul, v[5].into(), v[2].into()),
        );
        let bb: BasicBlock = [s1, s2, s3, s4, s5].into_iter().collect();
        (p, bb)
    }

    #[test]
    fn figure2_grouping_decisions() {
        let (p, bb) = figure2();
        let deps = BlockDeps::analyze(&bb);
        // The paper's unadjusted weights reproduce its decision trace.
        let g = group_block_with(&bb, &deps, &p, |_| 2, &WeightParams::reuse_only());
        // The paper decides {S1,S2} first (weight 1), then {S4,S5}
        // (weight 2/3); {S1,S3} dies with the first decision.
        assert_eq!(g.decisions.len(), 2);
        assert_eq!(g.decisions[0].stmts, vec![StmtId::new(0), StmtId::new(1)]);
        assert!((g.decisions[0].weight - 1.0).abs() < 1e-9);
        assert_eq!(g.decisions[1].stmts, vec![StmtId::new(3), StmtId::new(4)]);
        assert!((g.decisions[1].weight - 2.0 / 3.0).abs() < 1e-9);
        // S3 stays scalar.
        assert_eq!(g.units.iter().filter(|u| u.is_singleton()).count(), 1);
        assert_eq!(g.vectorized_stmts(), 4);
    }

    #[test]
    fn iterative_grouping_reaches_datapath_width() {
        // Eight independent isomorphic statements and a 4-lane datapath:
        // two rounds must produce two 4-wide groups.
        let mut p = Program::new("wide");
        let x = p.add_scalar("x", ScalarType::F32);
        let dsts: Vec<_> = (0..8)
            .map(|k| p.add_scalar(format!("d{k}"), ScalarType::F32))
            .collect();
        let stmts: Vec<_> = dsts
            .iter()
            .map(|&d| p.make_stmt(d.into(), Expr::Binary(BinOp::Add, x.into(), 1.0.into())))
            .collect();
        let bb: BasicBlock = stmts.into_iter().collect();
        let deps = BlockDeps::analyze(&bb);
        let g = group_block(&bb, &deps, &p, |_| 4);
        let widths: Vec<usize> = g.groups().map(Unit::width).collect();
        assert_eq!(widths, vec![4, 4]);
        assert!(g.decisions.iter().any(|d| d.round == 1), "needs round 2");
    }

    #[test]
    fn groups_never_exceed_lane_cap() {
        let mut p = Program::new("cap");
        let x = p.add_scalar("x", ScalarType::F64);
        let dsts: Vec<_> = (0..6)
            .map(|k| p.add_scalar(format!("d{k}"), ScalarType::F64))
            .collect();
        let stmts: Vec<_> = dsts
            .iter()
            .map(|&d| p.make_stmt(d.into(), Expr::Binary(BinOp::Mul, x.into(), 2.0.into())))
            .collect();
        let bb: BasicBlock = stmts.into_iter().collect();
        let deps = BlockDeps::analyze(&bb);
        let g = group_block(&bb, &deps, &p, |_| 2);
        assert!(g.groups().all(|u| u.width() <= 2));
        assert_eq!(g.vectorized_stmts(), 6);
    }

    #[test]
    fn dependent_statements_stay_scalar() {
        // A chain a -> b -> c has no independent isomorphic pair.
        let mut p = Program::new("chain");
        let a = p.add_scalar("a", ScalarType::F64);
        let b = p.add_scalar("b", ScalarType::F64);
        let c = p.add_scalar("c", ScalarType::F64);
        let s0 = p.make_stmt(b.into(), Expr::Binary(BinOp::Add, a.into(), 1.0.into()));
        let s1 = p.make_stmt(c.into(), Expr::Binary(BinOp::Add, b.into(), 1.0.into()));
        let s2 = p.make_stmt(a.into(), Expr::Binary(BinOp::Add, c.into(), 1.0.into()));
        let bb: BasicBlock = [s0, s1, s2].into_iter().collect();
        let deps = BlockDeps::analyze(&bb);
        let g = group_block(&bb, &deps, &p, |_| 4);
        assert_eq!(g.decisions.len(), 0);
        assert!(g.units.iter().all(Unit::is_singleton));
    }

    #[test]
    fn empty_block_is_fine() {
        let p = Program::new("empty");
        let bb = BasicBlock::new();
        let deps = BlockDeps::analyze(&bb);
        let g = group_block(&bb, &deps, &p, |_| 4);
        assert!(g.units.is_empty());
        assert!(g.decisions.is_empty());
    }
}
