//! The hash-consed term arena: uninterpreted value graphs.
//!
//! Every value a kernel computes is represented as a term over
//! *uninterpreted* operators — `Add(a, b)` is a formal application, not a
//! number, and is equal only to `Add(a, b)` itself (never to `Add(b, a)`:
//! no reassociation, no commutativity). This is exactly the theory under
//! which SLP transformations are sound: unrolling, statement grouping,
//! scheduling and layout replication move and duplicate computations but
//! never rewrite them algebraically, so a correct transformation preserves
//! the value graph of every observable location *syntactically*.
//!
//! Terms are interned in an arena: structurally equal terms share one
//! [`TermId`], making graph equality a single integer comparison and
//! keeping memory proportional to the number of *distinct* values.

use std::collections::HashMap;

use slp_ir::{ArrayId, ExprShape, ScalarType, VarId};
use slp_vm::apply_shape;

/// An interned term. Equality of ids is structural equality of terms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TermId(u32);

impl TermId {
    fn index(self) -> usize {
        self.0 as usize
    }
}

/// One node of the value graph.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Term {
    /// The initial (input) contents of one array cell, identified by the
    /// array and its row-major linear offset.
    Cell(ArrayId, i64),
    /// The initial (input) value of a scalar variable.
    Scalar(VarId),
    /// A floating-point constant, stored as bits so `NaN`s and signed
    /// zeros hash and compare exactly.
    Const(u64),
    /// An uninterpreted operator application over positional operands.
    Op(ExprShape, Vec<TermId>),
    /// Integer storage coercion (truncate-and-wrap) applied on store.
    /// Float coercions are the identity and never allocate a node.
    Coerce(ScalarType, TermId),
}

/// The error a term construction returns when the arena budget is hit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TermBudgetExceeded {
    /// The budget that was exceeded.
    pub max_terms: usize,
}

impl std::fmt::Display for TermBudgetExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "term arena exceeded {} distinct terms", self.max_terms)
    }
}

/// The hash-consing arena.
#[derive(Debug)]
pub struct Arena {
    terms: Vec<Term>,
    interned: HashMap<Term, TermId>,
    max_terms: usize,
}

impl Arena {
    /// An empty arena capped at `max_terms` distinct terms.
    pub fn new(max_terms: usize) -> Self {
        Arena {
            terms: Vec::new(),
            interned: HashMap::new(),
            max_terms,
        }
    }

    /// Number of distinct terms interned so far.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Whether the arena holds no terms.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// The term behind `id`.
    pub fn term(&self, id: TermId) -> &Term {
        &self.terms[id.index()]
    }

    fn intern(&mut self, t: Term) -> Result<TermId, TermBudgetExceeded> {
        if let Some(&id) = self.interned.get(&t) {
            return Ok(id);
        }
        if self.terms.len() >= self.max_terms {
            return Err(TermBudgetExceeded {
                max_terms: self.max_terms,
            });
        }
        let id = TermId(self.terms.len() as u32);
        self.terms.push(t.clone());
        self.interned.insert(t, id);
        Ok(id)
    }

    /// The input term of array cell `(a, offset)`.
    pub fn cell(&mut self, a: ArrayId, offset: i64) -> Result<TermId, TermBudgetExceeded> {
        self.intern(Term::Cell(a, offset))
    }

    /// The input term of scalar `v`.
    pub fn scalar(&mut self, v: VarId) -> Result<TermId, TermBudgetExceeded> {
        self.intern(Term::Scalar(v))
    }

    /// The constant term of `c` (interned by bit pattern).
    pub fn constant(&mut self, c: f64) -> Result<TermId, TermBudgetExceeded> {
        self.intern(Term::Const(c.to_bits()))
    }

    /// Applies `shape` to operand terms.
    ///
    /// `Copy` is the identity (both engines implement it as `vals[0]`),
    /// and an application whose operands are all constants folds through
    /// [`apply_shape`] — the *same* function both VM engines evaluate
    /// with, so folding can never diverge from execution. Everything else
    /// stays an uninterpreted application.
    pub fn op(
        &mut self,
        shape: ExprShape,
        args: Vec<TermId>,
    ) -> Result<TermId, TermBudgetExceeded> {
        if shape == ExprShape::Copy {
            return Ok(args[0]);
        }
        let consts: Option<Vec<f64>> = args
            .iter()
            .map(|&a| match self.term(a) {
                Term::Const(bits) => Some(f64::from_bits(*bits)),
                _ => None,
            })
            .collect();
        if let Some(vals) = consts {
            return self.constant(apply_shape(shape, &vals));
        }
        self.intern(Term::Op(shape, args))
    }

    /// The storage coercion of `t` to element type `ty`.
    ///
    /// Floats pass through unchanged (the VM models `f32` storage at
    /// `f64` precision), re-coercing to the same integer type is the
    /// identity (truncate-and-wrap is idempotent), and coercing a
    /// constant folds to the coerced constant.
    pub fn coerce(&mut self, ty: ScalarType, t: TermId) -> Result<TermId, TermBudgetExceeded> {
        if ty.is_float() {
            return Ok(t);
        }
        match self.term(t) {
            Term::Const(bits) => {
                let c = ty.coerce(f64::from_bits(*bits));
                self.constant(c)
            }
            Term::Coerce(t2, _) if *t2 == ty => Ok(t),
            _ => self.intern(Term::Coerce(ty, t)),
        }
    }

    /// Collects the distinct input leaves ([`Term::Cell`] and
    /// [`Term::Scalar`]) reachable from `roots`, in first-visit order.
    pub fn leaves(&self, roots: &[TermId]) -> Vec<Term> {
        let mut seen = vec![false; self.terms.len()];
        let mut stack: Vec<TermId> = roots.to_vec();
        let mut out = Vec::new();
        while let Some(id) = stack.pop() {
            if seen[id.index()] {
                continue;
            }
            seen[id.index()] = true;
            match self.term(id) {
                t @ (Term::Cell(_, _) | Term::Scalar(_)) => out.push(t.clone()),
                Term::Const(_) => {}
                Term::Op(_, args) => stack.extend(args.iter().copied()),
                Term::Coerce(_, inner) => stack.push(*inner),
            }
        }
        out
    }

    /// Concretely evaluates `root` under an assignment of values to input
    /// leaves, memoized over the arena. Leaves missing from `assign` read
    /// as `0.0` (callers assign every leaf of the terms they evaluate).
    pub fn eval(&self, root: TermId, assign: &HashMap<Term, f64>) -> f64 {
        let mut memo: HashMap<TermId, f64> = HashMap::new();
        self.eval_memo(root, assign, &mut memo)
    }

    fn eval_memo(
        &self,
        id: TermId,
        assign: &HashMap<Term, f64>,
        memo: &mut HashMap<TermId, f64>,
    ) -> f64 {
        if let Some(&v) = memo.get(&id) {
            return v;
        }
        let v = match self.term(id).clone() {
            t @ (Term::Cell(_, _) | Term::Scalar(_)) => assign.get(&t).copied().unwrap_or(0.0),
            Term::Const(bits) => f64::from_bits(bits),
            Term::Op(shape, args) => {
                let vals: Vec<f64> = args
                    .iter()
                    .map(|&a| self.eval_memo(a, assign, memo))
                    .collect();
                apply_shape(shape, &vals)
            }
            Term::Coerce(ty, inner) => ty.coerce(self.eval_memo(inner, assign, memo)),
        };
        memo.insert(id, v);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slp_ir::BinOp;

    #[test]
    fn hash_consing_shares_structurally_equal_terms() {
        let mut ar = Arena::new(1 << 10);
        let a = ar.cell(ArrayId::new(0), 3).unwrap();
        let b = ar.cell(ArrayId::new(0), 3).unwrap();
        assert_eq!(a, b);
        let x = ar.op(ExprShape::Binary(BinOp::Add), vec![a, b]).unwrap();
        let y = ar.op(ExprShape::Binary(BinOp::Add), vec![a, b]).unwrap();
        assert_eq!(x, y);
        assert_eq!(ar.len(), 2); // one leaf, one op
    }

    #[test]
    fn no_commutativity_or_reassociation() {
        let mut ar = Arena::new(1 << 10);
        let a = ar.cell(ArrayId::new(0), 0).unwrap();
        let b = ar.cell(ArrayId::new(0), 1).unwrap();
        let ab = ar.op(ExprShape::Binary(BinOp::Add), vec![a, b]).unwrap();
        let ba = ar.op(ExprShape::Binary(BinOp::Add), vec![b, a]).unwrap();
        assert_ne!(ab, ba, "Add(a,b) must stay distinct from Add(b,a)");
    }

    #[test]
    fn copy_is_identity_and_constants_fold() {
        let mut ar = Arena::new(1 << 10);
        let a = ar.cell(ArrayId::new(0), 0).unwrap();
        assert_eq!(ar.op(ExprShape::Copy, vec![a]).unwrap(), a);
        let two = ar.constant(2.0).unwrap();
        let three = ar.constant(3.0).unwrap();
        let six = ar
            .op(ExprShape::Binary(BinOp::Mul), vec![two, three])
            .unwrap();
        assert_eq!(ar.term(six), &Term::Const(6.0f64.to_bits()));
    }

    #[test]
    fn coercions_normalize() {
        let mut ar = Arena::new(1 << 10);
        let a = ar.cell(ArrayId::new(0), 0).unwrap();
        assert_eq!(ar.coerce(ScalarType::F64, a).unwrap(), a);
        assert_eq!(ar.coerce(ScalarType::F32, a).unwrap(), a);
        let c = ar.coerce(ScalarType::I32, a).unwrap();
        assert_ne!(c, a);
        assert_eq!(ar.coerce(ScalarType::I32, c).unwrap(), c, "idempotent");
        let v = ar.constant(3.9).unwrap();
        let cv = ar.coerce(ScalarType::I32, v).unwrap();
        assert_eq!(ar.term(cv), &Term::Const(3.0f64.to_bits()));
    }

    #[test]
    fn budget_is_enforced() {
        let mut ar = Arena::new(2);
        ar.cell(ArrayId::new(0), 0).unwrap();
        ar.cell(ArrayId::new(0), 1).unwrap();
        assert!(ar.cell(ArrayId::new(0), 2).is_err());
        // Re-interning an existing term still succeeds at the cap.
        assert!(ar.cell(ArrayId::new(0), 1).is_ok());
    }

    #[test]
    fn leaves_and_concrete_eval() {
        let mut ar = Arena::new(1 << 10);
        let a = ar.cell(ArrayId::new(0), 0).unwrap();
        let s = ar.scalar(VarId::new(1)).unwrap();
        let sum = ar.op(ExprShape::Binary(BinOp::Add), vec![a, s]).unwrap();
        let leaves = ar.leaves(&[sum]);
        assert_eq!(leaves.len(), 2);
        let mut assign = HashMap::new();
        assign.insert(Term::Cell(ArrayId::new(0), 0), 2.5);
        assign.insert(Term::Scalar(VarId::new(1)), 1.5);
        assert_eq!(ar.eval(sum, &assign), 4.0);
    }
}
