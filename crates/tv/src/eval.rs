//! The symbolic evaluator: abstract execution of a kernel over the term
//! arena.
//!
//! Loop bounds in this IR are compile-time constants, so the evaluator
//! walks every loop nest *concretely* — induction variables take real
//! `i64` values and every affine subscript evaluates to an exact linear
//! offset — while the *data* stays symbolic: each array cell and scalar
//! holds a [`TermId`](crate::term::TermId) describing how its final value
//! is computed from the inputs. The result of evaluating a program is a
//! [`SymbolicState`]: the complete map from observable locations to value
//! terms.
//!
//! Two modes share one engine:
//!
//! * **scalar mode** ([`eval_scalar_program`]) executes statements in
//!   program order — the reference semantics,
//! * **schedule mode** ([`eval_compiled_kernel`]) executes a
//!   [`CompiledKernel`]'s block schedules, replaying layout replications
//!   first and honouring superword semantics: all lane operands of a
//!   scheduled item are read *before* any of its destinations are
//!   written, then destinations commit in lane order.
//!
//! Before walking anything, a pre-pass reuses `slp-analyze`'s strided
//! intervals to bound the dynamic statement count (so hopeless blow-ups
//! degrade to [`EvalError::Budget`] without a single symbolic step) and to
//! reject accesses that provably fall outside their array on every
//! execution.

use std::collections::{BTreeSet, HashMap};

use slp_analyze::{eval_affine, loop_env};
use slp_core::{BlockSchedule, CompiledKernel, Replication, ScheduledItem};
use slp_ir::{
    ArrayId, ArrayRef, Dest, Item, Loop, LoopVarId, Operand, Program, Statement, StmtId, TypeEnv,
};

use crate::term::{Arena, TermId};

/// Resource limits for one validation run.
#[derive(Debug, Clone, Copy)]
pub struct Budgets {
    /// Maximum distinct terms in the arena (shared by both sides).
    pub max_terms: usize,
    /// Maximum dynamic statement executions per side (superword lanes and
    /// replication copies each count as one).
    pub max_steps: u64,
}

impl Default for Budgets {
    fn default() -> Self {
        Budgets {
            max_terms: 1 << 20,
            max_steps: 1 << 20,
        }
    }
}

/// Why symbolic evaluation stopped short of a final state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// A resource budget was exhausted; the validator degrades to the
    /// differential check.
    Budget(String),
    /// The program does something the symbolic semantics cannot model
    /// soundly (out-of-bounds access, non-terminating loop shape, or a
    /// malformed schedule).
    Unsupported(String),
}

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvalError::Budget(m) => write!(f, "budget exhausted: {m}"),
            EvalError::Unsupported(m) => write!(f, "unsupported: {m}"),
        }
    }
}

/// The final symbolic memory image of one side.
#[derive(Debug)]
pub struct SymbolicState {
    /// Current term of every array cell touched (reads memoize the input
    /// leaf; writes overwrite).
    pub cells: HashMap<(ArrayId, i64), TermId>,
    /// The cells actually *written*, in deterministic order.
    pub dirty: BTreeSet<(ArrayId, i64)>,
    /// Current term of every scalar, indexed by [`VarId::index`].
    pub scalars: Vec<TermId>,
    /// Dynamic statements executed.
    pub steps: u64,
}

impl SymbolicState {
    /// The current term of cell `(a, off)`, interning the input leaf if
    /// the cell was never touched.
    pub fn cell_term(&self, arena: &mut Arena, a: ArrayId, off: i64) -> Result<TermId, EvalError> {
        match self.cells.get(&(a, off)) {
            Some(&t) => Ok(t),
            None => arena
                .cell(a, off)
                .map_err(|e| EvalError::Budget(e.to_string())),
        }
    }
}

/// Symbolically evaluates `program` with plain statement-order semantics.
///
/// # Errors
///
/// Returns [`EvalError`] when a budget is exhausted or the program leaves
/// the supported fragment (see [`EvalError::Unsupported`]).
pub fn eval_scalar_program(
    program: &Program,
    arena: &mut Arena,
    budgets: &Budgets,
) -> Result<SymbolicState, EvalError> {
    prepass(program, 0, budgets)?;
    let mut ev = Eval::new(program, None, arena, budgets)?;
    ev.run_items(program.items())?;
    Ok(ev.st)
}

/// Symbolically evaluates a compiled kernel: replications populate first,
/// then the transformed program runs under its block schedules.
///
/// # Errors
///
/// Returns [`EvalError`] when a budget is exhausted or the kernel leaves
/// the supported fragment.
pub fn eval_compiled_kernel(
    kernel: &CompiledKernel,
    arena: &mut Arena,
    budgets: &Budgets,
) -> Result<SymbolicState, EvalError> {
    let replication_copies: u64 = kernel
        .replications
        .iter()
        .map(|r| r.copy_count() as u64)
        .sum();
    prepass(&kernel.program, replication_copies, budgets)?;

    // Key each block's schedule by the block's first statement id, the
    // same dispatch the VM interpreter uses while walking the item tree.
    let mut schedules: HashMap<StmtId, &BlockSchedule> = HashMap::new();
    for info in kernel.program.blocks() {
        if let Some(sched) = kernel.schedule_of(info.id) {
            schedules.insert(info.block.stmts()[0].id(), sched);
        }
    }

    let mut ev = Eval::new(&kernel.program, Some(schedules), arena, budgets)?;
    for r in &kernel.replications {
        ev.populate(r)?;
    }
    ev.run_items(kernel.program.items())?;
    Ok(ev.st)
}

/// Static feasibility screen, run before any symbolic work: bounds the
/// total dynamic statement count using exact trip counts, and uses
/// `slp-analyze`'s strided-interval ranges to reject subscripts that are
/// provably out of bounds on *every* execution.
fn prepass(program: &Program, extra_steps: u64, budgets: &Budgets) -> Result<(), EvalError> {
    let mut dynamic: u128 = extra_steps as u128;
    for info in program.blocks() {
        let Some(env) = loop_env(&info.loops) else {
            // Some enclosing loop never executes: the block is dead.
            continue;
        };
        let mut trips: u128 = 1;
        for h in &info.loops {
            trips = trips.saturating_mul(h.trip_count().max(0) as u128);
        }
        dynamic = dynamic.saturating_add(trips.saturating_mul(info.block.len() as u128));
        for stmt in info.block.stmts() {
            let check = |r: &ArrayRef| -> Result<(), EvalError> {
                let dims = &program.array(r.array).dims;
                for (d, expr) in r.access.dims().iter().enumerate() {
                    if let Some(si) = eval_affine(expr, &env) {
                        if si.hi() < 0 || si.lo() >= dims[d] as i128 {
                            return Err(EvalError::Unsupported(format!(
                                "{}[dim {d}] is out of bounds on every execution",
                                program.array(r.array).name
                            )));
                        }
                    }
                }
                Ok(())
            };
            for op in stmt.expr().operands() {
                if let Operand::Array(r) = op {
                    check(r)?;
                }
            }
            if let Dest::Array(r) = stmt.dest() {
                check(r)?;
            }
        }
    }
    if dynamic > budgets.max_steps as u128 {
        return Err(EvalError::Budget(format!(
            "{dynamic} dynamic statements exceed the {}-step budget",
            budgets.max_steps
        )));
    }
    Ok(())
}

struct Eval<'a> {
    program: &'a Program,
    /// Schedule per block, keyed by the block's first statement id; `None`
    /// means plain statement-order (scalar) semantics everywhere.
    schedules: Option<HashMap<StmtId, &'a BlockSchedule>>,
    arena: &'a mut Arena,
    st: SymbolicState,
    env: Vec<(LoopVarId, i64)>,
    max_steps: u64,
}

impl<'a> Eval<'a> {
    fn new(
        program: &'a Program,
        schedules: Option<HashMap<StmtId, &'a BlockSchedule>>,
        arena: &'a mut Arena,
        budgets: &Budgets,
    ) -> Result<Self, EvalError> {
        let scalars = program
            .scalar_ids()
            .map(|v| {
                arena
                    .scalar(v)
                    .map_err(|e| EvalError::Budget(e.to_string()))
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Eval {
            program,
            schedules,
            arena,
            st: SymbolicState {
                cells: HashMap::new(),
                dirty: BTreeSet::new(),
                scalars,
                steps: 0,
            },
            env: Vec::new(),
            max_steps: budgets.max_steps,
        })
    }

    fn step(&mut self) -> Result<(), EvalError> {
        self.st.steps += 1;
        if self.st.steps > self.max_steps {
            return Err(EvalError::Budget(format!(
                "exceeded {} dynamic statements",
                self.max_steps
            )));
        }
        Ok(())
    }

    fn budget<T>(r: Result<T, crate::term::TermBudgetExceeded>) -> Result<T, EvalError> {
        r.map_err(|e| EvalError::Budget(e.to_string()))
    }

    /// Resolves an array reference to its exact linear offset under the
    /// current loop environment.
    fn offset(&self, r: &ArrayRef) -> Result<i64, EvalError> {
        let idx = r.access.eval(&self.env);
        let info = self.program.array(r.array);
        if !info.in_bounds(&idx) {
            return Err(EvalError::Unsupported(format!(
                "{}{idx:?} out of bounds (dims {:?})",
                info.name, info.dims
            )));
        }
        Ok(info.linearize(&idx))
    }

    fn read_cell(&mut self, a: ArrayId, off: i64) -> Result<TermId, EvalError> {
        if let Some(&t) = self.st.cells.get(&(a, off)) {
            return Ok(t);
        }
        let t = Self::budget(self.arena.cell(a, off))?;
        self.st.cells.insert((a, off), t);
        Ok(t)
    }

    fn read_operand(&mut self, op: &Operand) -> Result<TermId, EvalError> {
        match op {
            Operand::Const(c) => Self::budget(self.arena.constant(*c)),
            Operand::Scalar(v) => Ok(self.st.scalars[v.index()]),
            Operand::Array(r) => {
                let off = self.offset(r)?;
                self.read_cell(r.array, off)
            }
        }
    }

    /// Commits `t` to `dest`, applying the same storage coercion the VM
    /// applies: scalar destinations coerce via the scalar's type, array
    /// destinations via the array's element type.
    fn write_dest(&mut self, dest: &Dest, t: TermId) -> Result<(), EvalError> {
        match dest {
            Dest::Scalar(v) => {
                let ty = TypeEnv::scalar_type(self.program, *v);
                let t = Self::budget(self.arena.coerce(ty, t))?;
                self.st.scalars[v.index()] = t;
            }
            Dest::Array(r) => {
                let off = self.offset(r)?;
                let ty = self.program.array(r.array).ty;
                let t = Self::budget(self.arena.coerce(ty, t))?;
                self.st.cells.insert((r.array, off), t);
                self.st.dirty.insert((r.array, off));
            }
        }
        Ok(())
    }

    fn exec_stmt(&mut self, stmt: &Statement) -> Result<(), EvalError> {
        self.step()?;
        let args = stmt
            .expr()
            .operands()
            .iter()
            .map(|op| self.read_operand(op))
            .collect::<Result<Vec<_>, _>>()?;
        let t = Self::budget(self.arena.op(stmt.expr().shape(), args))?;
        self.write_dest(stmt.dest(), t)
    }

    /// Executes one superword: every lane's operands are read before any
    /// lane's destination is written, then destinations commit in lane
    /// order — the semantics the vector lowering implements with packed
    /// loads before packed stores.
    fn exec_superword(&mut self, lanes: &[&Statement]) -> Result<(), EvalError> {
        let mut results = Vec::with_capacity(lanes.len());
        for stmt in lanes {
            self.step()?;
            let args = stmt
                .expr()
                .operands()
                .iter()
                .map(|op| self.read_operand(op))
                .collect::<Result<Vec<_>, _>>()?;
            results.push(Self::budget(self.arena.op(stmt.expr().shape(), args))?);
        }
        for (stmt, t) in lanes.iter().zip(results) {
            self.write_dest(stmt.dest(), t)?;
        }
        Ok(())
    }

    /// Executes one maximal statement run (= one static basic block),
    /// under its schedule when one is registered.
    fn run_block(&mut self, stmts: &[&'a Statement]) -> Result<(), EvalError> {
        let sched = self
            .schedules
            .as_ref()
            .and_then(|m| m.get(&stmts[0].id()).copied());
        let Some(sched) = sched else {
            for s in stmts {
                self.exec_stmt(s)?;
            }
            return Ok(());
        };
        let by_id: HashMap<StmtId, &Statement> = stmts.iter().map(|s| (s.id(), *s)).collect();
        let lookup = |id: StmtId| -> Result<&'a Statement, EvalError> {
            by_id.get(&id).copied().ok_or_else(|| {
                EvalError::Unsupported(format!("schedule references {id} outside its block"))
            })
        };
        for item in sched.items() {
            match item {
                ScheduledItem::Single(id) => {
                    let s = lookup(*id)?;
                    self.exec_stmt(s)?;
                }
                ScheduledItem::Superword(sw) => {
                    let lanes = sw
                        .lanes()
                        .iter()
                        .map(|&id| lookup(id))
                        .collect::<Result<Vec<_>, _>>()?;
                    self.exec_superword(&lanes)?;
                }
            }
        }
        Ok(())
    }

    fn run_loop(&mut self, l: &'a Loop) -> Result<(), EvalError> {
        let h = l.header;
        if h.step <= 0 {
            if h.lower < h.upper {
                return Err(EvalError::Unsupported(format!(
                    "loop over {} has non-positive step {}",
                    h.var, h.step
                )));
            }
            return Ok(());
        }
        let mut v = h.lower;
        while v < h.upper {
            self.env.push((h.var, v));
            self.run_items(&l.body)?;
            self.env.pop();
            v += h.step;
        }
        Ok(())
    }

    fn run_items(&mut self, items: &'a [Item]) -> Result<(), EvalError> {
        let mut idx = 0;
        while idx < items.len() {
            match &items[idx] {
                Item::Stmt(_) => {
                    // One static basic block = this maximal statement run.
                    let mut stmts: Vec<&Statement> = Vec::new();
                    while idx < items.len() {
                        match &items[idx] {
                            Item::Stmt(s) => stmts.push(s),
                            Item::Loop(_) => break,
                        }
                        idx += 1;
                    }
                    self.run_block(&stmts)?;
                }
                Item::Loop(l) => {
                    self.run_loop(l)?;
                    idx += 1;
                }
            }
        }
        Ok(())
    }

    /// Replays one layout replication (§5.2): concrete enumeration of the
    /// replication loops, copying cell *terms* from source to destination.
    /// Population is a raw memory copy, so no coercion is applied.
    fn populate(&mut self, r: &Replication) -> Result<(), EvalError> {
        let mut env: Vec<(LoopVarId, i64)> = Vec::new();
        self.populate_dims(r, 0, &mut env)
    }

    fn populate_dims(
        &mut self,
        r: &Replication,
        dim: usize,
        env: &mut Vec<(LoopVarId, i64)>,
    ) -> Result<(), EvalError> {
        if dim == r.loops.len() {
            for (p, lane) in r.lanes.iter().enumerate() {
                self.step()?;
                let src_idx = lane.eval(env);
                let src_info = self.program.array(r.source);
                if !src_info.in_bounds(&src_idx) {
                    return Err(EvalError::Unsupported(format!(
                        "replication read {}{src_idx:?} out of bounds",
                        src_info.name
                    )));
                }
                let off = src_info.linearize(&src_idx);
                let t = self.read_cell(r.source, off)?;
                let dst_off = r.dest_exprs[p].eval(env);
                let dst_len = self.program.array(r.dest).len();
                if dst_off < 0 || dst_off >= dst_len {
                    return Err(EvalError::Unsupported(format!(
                        "replication write {dst_off} out of bounds"
                    )));
                }
                self.st.cells.insert((r.dest, dst_off), t);
                self.st.dirty.insert((r.dest, dst_off));
            }
            return Ok(());
        }
        let h = r.loops[dim];
        if h.step <= 0 {
            if h.lower < h.upper {
                return Err(EvalError::Unsupported(format!(
                    "replication loop over {} has non-positive step {}",
                    h.var, h.step
                )));
            }
            return Ok(());
        }
        let mut v = h.lower;
        while v < h.upper {
            env.push((h.var, v));
            self.populate_dims(r, dim + 1, env)?;
            env.pop();
            v += h.step;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slp_core::{compile, MachineConfig, SlpConfig, Strategy};

    fn program(src: &str) -> Program {
        slp_lang::compile(src).unwrap()
    }

    #[test]
    fn scalar_and_vectorized_states_agree_on_saxpy() {
        let p = program(
            "kernel saxpy { array X: f64[64]; array Y: f64[64]; scalar a: f64;
             for i in 0..64 { Y[i] = Y[i] + a * X[i]; } }",
        );
        let m = MachineConfig::intel_dunnington();
        let k = compile(&p, &SlpConfig::for_machine(m, Strategy::Holistic));
        let mut arena = Arena::new(1 << 20);
        let b = Budgets::default();
        let s = eval_scalar_program(&p, &mut arena, &b).unwrap();
        let v = eval_compiled_kernel(&k, &mut arena, &b).unwrap();
        for &(a, off) in s.dirty.union(&v.dirty) {
            let ts = s.cells.get(&(a, off)).copied();
            let tv = v.cells.get(&(a, off)).copied();
            assert_eq!(ts, tv, "cell ({a}, {off}) diverged");
        }
    }

    #[test]
    fn step_budget_degrades() {
        let p = program(
            "kernel big { array A: f64[16]; scalar t: f64;
             for i in 0..16 { t = A[i]; A[i] = t * 2.0; } }",
        );
        let mut arena = Arena::new(1 << 20);
        let b = Budgets {
            max_terms: 1 << 20,
            max_steps: 4,
        };
        match eval_scalar_program(&p, &mut arena, &b) {
            Err(EvalError::Budget(_)) => {}
            other => panic!("expected budget degrade, got {other:?}"),
        }
    }

    #[test]
    fn oob_is_unsupported() {
        let p = program(
            "kernel bad { array A: f64[4]; scalar x: f64;
             for i in 0..8 { x = A[i]; A[i] = x; } }",
        );
        let mut arena = Arena::new(1 << 20);
        match eval_scalar_program(&p, &mut arena, &Budgets::default()) {
            Err(EvalError::Unsupported(_)) => {}
            other => panic!("expected unsupported, got {other:?}"),
        }
    }

    #[test]
    fn dead_loop_body_never_runs() {
        let p = program(
            "kernel dead { array A: f64[4]; scalar x: f64;
             for i in 4..4 { x = A[i]; A[i] = x + 1.0; } }",
        );
        let mut arena = Arena::new(1 << 20);
        let s = eval_scalar_program(&p, &mut arena, &Budgets::default()).unwrap();
        assert!(s.dirty.is_empty());
        assert_eq!(s.steps, 0);
    }
}
