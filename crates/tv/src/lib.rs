//! # slp-tv — symbolic translation validation
//!
//! Proves that a vectorized [`CompiledKernel`](slp_core::CompiledKernel)
//! is equivalent to the scalar program it was compiled from — over **all**
//! inputs, not just the seeded image the differential check runs.
//!
//! The differential gate in `slp-verify` executes both builds on one
//! deterministic input and compares memory bitwise: a strong smoke signal,
//! but a single point in the input space. This crate closes the gap with a
//! small translation validator:
//!
//! 1. [`term`] — a hash-consed arena of *uninterpreted* terms. Operators
//!    are formal symbols (`Add(a, b) ≠ Add(b, a)`): the theory admits
//!    exactly the transformations SLP performs (reordering independent
//!    statements, duplicating computations, copying cells) and nothing it
//!    does not (reassociation, algebraic rewriting).
//! 2. [`eval`] — a symbolic evaluator. Loop bounds are compile-time
//!    constants in this IR, so loop nests are walked concretely with
//!    exact affine subscript evaluation (backed by `slp-analyze`'s
//!    strided-interval pre-pass for early budget/bounds screening), while
//!    every array cell and scalar carries a term describing its value as
//!    a function of the inputs. Superword semantics mirror the VM: all
//!    lane operands read before any destination writes.
//! 3. [`validate`] — the comparator. Every written cell of every original
//!    array and every live-out scalar must hold the *identical* term on
//!    both sides. On mismatch, a distinguishing concrete input is
//!    extracted from the first diverging term pair and replayed through
//!    both VM engines; only an execution-confirmed divergence becomes a
//!    [`Verdict::Refuted`]. On resource exhaustion the verdict degrades
//!    to [`Verdict::Budget`]/[`Verdict::Unsupported`] and callers fall
//!    back to the differential check — the validator never silently
//!    weakens a claim.
//!
//! # Example
//!
//! ```
//! use slp_core::{compile, MachineConfig, SlpConfig, Strategy};
//! use slp_tv::{validate, Budgets, Verdict};
//!
//! let src = "kernel k { array A: f64[64]; array B: f64[64];
//!            for i in 0..64 { A[i] = B[i] * 2.0; } }";
//! let program = slp_lang::compile(src).unwrap();
//! let machine = MachineConfig::intel_dunnington();
//! let kernel = compile(&program, &SlpConfig::for_machine(machine.clone(), Strategy::Holistic));
//! match validate(&program, &kernel, &machine, &Budgets::default()) {
//!     Verdict::Proved(stats) => assert!(stats.cells_compared > 0),
//!     v => panic!("expected a proof, got {v:?}"),
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod eval;
pub mod term;
pub mod validate;

pub use eval::{Budgets, EvalError, SymbolicState};
pub use term::{Arena, Term, TermBudgetExceeded, TermId};
pub use validate::{
    compared_scalars, replay_counterexample, validate, Counterexample, ProofStats, Verdict,
};
