//! The validator: compares the two symbolic final states and, on a
//! mismatch, extracts a concrete distinguishing input and confirms it by
//! running both VM engines.
//!
//! The soundness contract is asymmetric by design:
//!
//! * [`Verdict::Proved`] means every written cell of every original array
//!   and every compared live-out scalar computes the *identical* term on
//!   both sides — equivalence over **all** inputs, under uninterpreted
//!   (bit-exact) operator semantics.
//! * [`Verdict::Refuted`] is only ever returned with a concrete input
//!   that was **replayed through both VM engines** and observed to
//!   diverge — a symbolic mismatch alone is not enough, because the term
//!   model is conservative (it refuses reassociation a transformation
//!   might legitimately never perform, but it cannot rule out that two
//!   different-looking terms agree on every input).
//! * Anything in between degrades to [`Verdict::Budget`] or
//!   [`Verdict::Unsupported`], and the caller falls back to the existing
//!   differential check.

use std::collections::HashMap;

use slp_core::{compile, CompiledKernel, MachineConfig, SlpConfig, Strategy};
use slp_ir::{ArrayId, Dest, Item, Operand, Program, Statement, TypeEnv, VarId};
use slp_vm::{
    execute_reference_with_state, execute_with_state, seed_scalar, seed_value, MachineState,
};

use crate::eval::{eval_compiled_kernel, eval_scalar_program, Budgets, EvalError};
use crate::term::{Arena, Term, TermId};

/// Statistics of a successful proof.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProofStats {
    /// Distinct terms interned across both sides.
    pub terms: usize,
    /// Dynamic statements evaluated across both sides.
    pub steps: u64,
    /// Array cells whose final terms were compared.
    pub cells_compared: usize,
    /// Live-out scalars whose final terms were compared.
    pub scalars_compared: usize,
}

/// A concrete input on which the two sides compute different results.
#[derive(Debug, Clone, PartialEq)]
pub struct Counterexample {
    /// Array-cell inputs `(array, linear offset, value)`, already coerced
    /// to the array's element type.
    pub cells: Vec<(ArrayId, i64, f64)>,
    /// Scalar inputs `(var, value)`, already coerced.
    pub scalars: Vec<(VarId, f64)>,
    /// Human-readable observable location that diverges, e.g. `A[12]`.
    pub location: String,
    /// The value the scalar program computes there.
    pub scalar_value: f64,
    /// The value the vectorized kernel computes there.
    pub vector_value: f64,
}

/// The outcome of one validation run.
#[derive(Debug, Clone)]
pub enum Verdict {
    /// Equivalence proved over all inputs.
    Proved(ProofStats),
    /// A resource budget was exhausted before a verdict.
    Budget {
        /// What ran out.
        reason: String,
    },
    /// The kernel leaves the fragment the symbolic semantics models, or a
    /// symbolic mismatch could not be confirmed concretely.
    Unsupported {
        /// What could not be modelled or confirmed.
        reason: String,
    },
    /// A VM-confirmed miscompile: both engines diverge on the input.
    Refuted(Box<Counterexample>),
}

impl Verdict {
    /// Short machine-readable name: `proved`, `budget`, `unsupported` or
    /// `refuted`.
    pub fn name(&self) -> &'static str {
        match self {
            Verdict::Proved(_) => "proved",
            Verdict::Budget { .. } => "budget",
            Verdict::Unsupported { .. } => "unsupported",
            Verdict::Refuted(_) => "refuted",
        }
    }
}

/// One observable location in the comparator.
#[derive(Debug, Clone, Copy)]
enum Location {
    Cell(ArrayId, i64),
    Scalar(VarId),
}

/// Proves or refutes `kernel` ≡ `original`.
///
/// `original` must be the untransformed program `kernel` was compiled
/// from; `machine` is only used for counterexample replay.
pub fn validate(
    original: &Program,
    kernel: &CompiledKernel,
    machine: &MachineConfig,
    budgets: &Budgets,
) -> Verdict {
    let mut arena = Arena::new(budgets.max_terms);
    let scalar_side = match eval_scalar_program(original, &mut arena, budgets) {
        Ok(s) => s,
        Err(e) => return degrade(e),
    };
    let kernel_side = match eval_compiled_kernel(kernel, &mut arena, budgets) {
        Ok(s) => s,
        Err(e) => return degrade(e),
    };

    // Observables: every cell either side wrote in an *original* array
    // (replicated copies are internal), plus every compared scalar.
    let n_arrays = original.arrays().len();
    let compared = compared_scalars(original);
    let mut divergences: Vec<(Location, TermId, TermId)> = Vec::new();
    let mut cells_compared = 0usize;
    for &(a, off) in scalar_side.dirty.union(&kernel_side.dirty) {
        if a.index() >= n_arrays {
            continue;
        }
        cells_compared += 1;
        let ts = match scalar_side.cell_term(&mut arena, a, off) {
            Ok(t) => t,
            Err(e) => return degrade(e),
        };
        let tk = match kernel_side.cell_term(&mut arena, a, off) {
            Ok(t) => t,
            Err(e) => return degrade(e),
        };
        if ts != tk {
            divergences.push((Location::Cell(a, off), ts, tk));
        }
    }
    let mut scalars_compared = 0usize;
    for v in original.scalar_ids() {
        if !compared[v.index()] {
            continue;
        }
        scalars_compared += 1;
        let ts = scalar_side.scalars[v.index()];
        let tk = kernel_side.scalars[v.index()];
        if ts != tk {
            divergences.push((Location::Scalar(v), ts, tk));
        }
    }

    if divergences.is_empty() {
        return Verdict::Proved(ProofStats {
            terms: arena.len(),
            steps: scalar_side.steps + kernel_side.steps,
            cells_compared,
            scalars_compared,
        });
    }

    // A symbolic mismatch: hunt for a concrete input that separates the
    // two terms, and only claim a refutation once both VM engines agree
    // the kernels diverge on it.
    for (loc, ts, tk) in &divergences {
        if let Some(cex) = extract_counterexample(original, &arena, *loc, *ts, *tk) {
            if replay_counterexample(original, kernel, machine, &cex) {
                return Verdict::Refuted(Box::new(cex));
            }
        }
    }
    let loc = describe(original, divergences[0].0);
    Verdict::Unsupported {
        reason: format!(
            "symbolic mismatch at {loc} ({} total) not confirmed by execution",
            divergences.len()
        ),
    }
}

fn degrade(e: EvalError) -> Verdict {
    match e {
        EvalError::Budget(reason) => Verdict::Budget { reason },
        EvalError::Unsupported(reason) => Verdict::Unsupported { reason },
    }
}

fn describe(original: &Program, loc: Location) -> String {
    match loc {
        Location::Cell(a, off) => format!("{}[{off}]", original.array(a).name),
        Location::Scalar(v) => format!("scalar {}", original.scalar(v).name),
    }
}

/// SplitMix64 finalizer — the same shape the VM's deterministic seeding
/// uses, re-derived locally so probe inputs stay reproducible.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn unit(bits: u64) -> f64 {
    (bits >> 11) as f64 / (1u64 << 53) as f64
}

fn leaf_key(leaf: &Term) -> u64 {
    match leaf {
        Term::Cell(a, off) => ((a.index() as u64) << 40) ^ (*off as u64),
        Term::Scalar(v) => 0xDEAD_0000_0000_0000 ^ v.index() as u64,
        _ => unreachable!("leaves are cells or scalars"),
    }
}

/// Searches for a concrete input distinguishing `ts` from `tk`.
///
/// Probe 0 is the VM's deterministic seed image; subsequent probes
/// perturb every input leaf with independent deterministic values. Two
/// *semantically equal* terms (e.g. a commuted addition this validator
/// refuses to identify) agree on every probe and yield `None`, which the
/// caller degrades to [`Verdict::Unsupported`].
fn extract_counterexample(
    original: &Program,
    arena: &Arena,
    loc: Location,
    ts: TermId,
    tk: TermId,
) -> Option<Counterexample> {
    let leaves = arena.leaves(&[ts, tk]);
    // The input space is the original program's arrays and scalars; a
    // term depending on anything else (an unpopulated replicated cell,
    // a transformation-introduced temporary) is not expressible as an
    // input and the mismatch cannot be confirmed this way.
    let n_arrays = original.arrays().len();
    let n_scalars = original.scalars().len();
    for leaf in &leaves {
        match leaf {
            Term::Cell(a, off)
                if a.index() >= n_arrays || *off < 0 || *off >= original.array(*a).len() =>
            {
                return None;
            }
            Term::Scalar(v) if v.index() >= n_scalars => {
                return None;
            }
            _ => {}
        }
    }

    const PROBES: u64 = 17;
    for probe in 0..PROBES {
        let mut assign: HashMap<Term, f64> = HashMap::new();
        for leaf in &leaves {
            let value = match leaf {
                Term::Cell(a, off) => {
                    let ty = original.array(*a).ty;
                    let raw = if probe == 0 {
                        seed_value(*a, *off as usize)
                    } else {
                        0.25 + 4.0 * unit(mix64(leaf_key(leaf) ^ (probe << 56)))
                    };
                    ty.coerce(raw * 4.0)
                }
                Term::Scalar(v) => {
                    let ty = original.scalar_type(*v);
                    let raw = if probe == 0 {
                        seed_scalar(*v)
                    } else {
                        0.25 + 4.0 * unit(mix64(leaf_key(leaf) ^ (probe << 56)))
                    };
                    ty.coerce(raw * 4.0)
                }
                _ => continue,
            };
            assign.insert(leaf.clone(), value);
        }
        let vs = arena.eval(ts, &assign);
        let vk = arena.eval(tk, &assign);
        if vs.to_bits() != vk.to_bits() {
            let mut cells = Vec::new();
            let mut scalars = Vec::new();
            for (leaf, &value) in leaves.iter().zip(leaves.iter().map(|l| &assign[l])) {
                match leaf {
                    Term::Cell(a, off) => cells.push((*a, *off, value)),
                    Term::Scalar(v) => scalars.push((*v, value)),
                    _ => {}
                }
            }
            cells.sort_by_key(|&(a, off, _)| (a, off));
            scalars.sort_by_key(|&(v, _)| v);
            return Some(Counterexample {
                cells,
                scalars,
                location: describe(original, loc),
                scalar_value: vs,
                vector_value: vk,
            });
        }
    }
    None
}

/// Replays `cex` through both kernels on **both** VM engines and reports
/// whether execution confirms the divergence.
///
/// Confirmation requires the scalar build of `original` and `kernel` to
/// produce observably different final states (an original array differs
/// bitwise, or a compared live-out scalar differs) on the bytecode engine
/// *and* on the reference interpreter. Any execution error on either side
/// counts as unconfirmed.
pub fn replay_counterexample(
    original: &Program,
    kernel: &CompiledKernel,
    machine: &MachineConfig,
    cex: &Counterexample,
) -> bool {
    let scalar_cfg = SlpConfig::for_machine(machine.clone(), Strategy::Scalar);
    let scalar_kernel = compile(original, &scalar_cfg);
    let n_arrays = original.arrays().len();
    let compared = compared_scalars(original);

    let seed = |program: &Program| {
        let mut st = MachineState::seeded(program);
        for &(a, off, v) in &cex.cells {
            st.store_array(a, off as usize, v);
        }
        for &(v, x) in &cex.scalars {
            st.set_scalar(v, x);
        }
        st
    };

    let diverges = |run: &dyn Fn(&CompiledKernel, MachineState) -> Option<MachineState>| -> bool {
        let Some(s) = run(&scalar_kernel, seed(&scalar_kernel.program)) else {
            return false;
        };
        let Some(k) = run(kernel, seed(&kernel.program)) else {
            return false;
        };
        if !s.arrays_bitwise_eq(&k, n_arrays) {
            return true;
        }
        original
            .scalar_ids()
            .any(|v| compared[v.index()] && s.scalar(v).to_bits() != k.scalar(v).to_bits())
    };

    let fast = |k: &CompiledKernel, st: MachineState| {
        execute_with_state(k, machine, st).ok().map(|o| o.state)
    };
    let reference = |k: &CompiledKernel, st: MachineState| {
        execute_reference_with_state(k, machine, st)
            .ok()
            .map(|o| o.state)
    };
    diverges(&fast) && diverges(&reference)
}

/// Which original scalars the comparator may inspect as live-outs.
///
/// Unrolling privatizes a scalar that is defined-before-use in an
/// innermost loop body, and only copies the value back to the original
/// name when the scalar is read *outside* that body. A privatized,
/// never-copied-back scalar is a dead temporary whose final value under
/// the transformed program legitimately differs, so it is excluded.
/// The criterion mirrors `slp_ir::unroll_program` exactly but is applied
/// unconditionally — excluding a dead temp when no unrolling happened
/// only makes the comparison (harmlessly) more conservative.
pub fn compared_scalars(original: &Program) -> Vec<bool> {
    let mut compared = vec![true; original.scalars().len()];
    let mut total_reads: HashMap<VarId, usize> = HashMap::new();
    count_reads(original.items(), &mut total_reads);
    exclude_privatized(original.items(), &total_reads, &mut compared);
    compared
}

fn count_reads(items: &[Item], counts: &mut HashMap<VarId, usize>) {
    for item in items {
        match item {
            Item::Stmt(s) => {
                for u in s.uses() {
                    if let Operand::Scalar(v) = u {
                        *counts.entry(*v).or_insert(0) += 1;
                    }
                }
            }
            Item::Loop(l) => count_reads(&l.body, counts),
        }
    }
}

fn exclude_privatized(items: &[Item], total_reads: &HashMap<VarId, usize>, compared: &mut [bool]) {
    for item in items {
        let Item::Loop(l) = item else { continue };
        if !l.body.iter().all(|it| matches!(it, Item::Stmt(_))) {
            exclude_privatized(&l.body, total_reads, compared);
            continue;
        }
        let body: Vec<&Statement> = l
            .body
            .iter()
            .map(|it| match it {
                Item::Stmt(s) => s,
                Item::Loop(_) => unreachable!("innermost"),
            })
            .collect();
        let mut body_reads: HashMap<VarId, usize> = HashMap::new();
        let mut seen_use: Vec<VarId> = Vec::new();
        let mut defined_first: Vec<VarId> = Vec::new();
        for s in &body {
            for u in s.uses() {
                if let Operand::Scalar(v) = u {
                    *body_reads.entry(*v).or_insert(0) += 1;
                    if !defined_first.contains(v) && !seen_use.contains(v) {
                        seen_use.push(*v);
                    }
                }
            }
            if let Dest::Scalar(v) = s.dest() {
                if !seen_use.contains(v) && !defined_first.contains(v) {
                    defined_first.push(*v);
                }
            }
        }
        for &v in &defined_first {
            let total = total_reads.get(&v).copied().unwrap_or(0);
            let inside = body_reads.get(&v).copied().unwrap_or(0);
            if total <= inside {
                compared[v.index()] = false;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slp_core::{BlockSchedule, ScheduledItem};

    fn machine() -> MachineConfig {
        MachineConfig::intel_dunnington()
    }

    fn program(src: &str) -> Program {
        slp_lang::compile(src).unwrap()
    }

    fn kernel(p: &Program, strategy: Strategy, layout: bool) -> CompiledKernel {
        let mut cfg = SlpConfig::for_machine(machine(), strategy);
        if layout {
            cfg = cfg.with_layout();
        }
        compile(p, &cfg)
    }

    const SAXPY: &str = "kernel saxpy {
        array X: f64[64]; array Y: f64[64]; scalar a: f64;
        for i in 0..64 { Y[i] = Y[i] + a * X[i]; } }";

    #[test]
    fn correct_kernels_are_proved() {
        let p = program(SAXPY);
        for strategy in [Strategy::Native, Strategy::Baseline, Strategy::Holistic] {
            let k = kernel(&p, strategy, false);
            match validate(&p, &k, &machine(), &Budgets::default()) {
                Verdict::Proved(stats) => {
                    assert!(stats.cells_compared > 0);
                    assert!(stats.terms > 0);
                }
                v => panic!("{strategy:?}: expected proof, got {v:?}"),
            }
        }
    }

    #[test]
    fn layout_replication_is_proved() {
        let p = program(
            "kernel strided {
                const N = 32;
                array A: f64[4*N+4]; array OUT: f64[2*N];
                scalar c, d: f64;
                for t in 0..4 {
                    for i in 0..N {
                        c = A[4*i] * 2.0;
                        d = A[4*i+3] * 2.0;
                        OUT[2*i] = c + 1.0;
                        OUT[2*i+1] = d + 1.0;
                    }
                }
            }",
        );
        let mut cfg = SlpConfig::for_machine(machine(), Strategy::Holistic).with_layout();
        cfg.unroll = 1;
        let k = compile(&p, &cfg);
        assert!(!k.replications.is_empty(), "expected a replication");
        match validate(&p, &k, &machine(), &Budgets::default()) {
            Verdict::Proved(_) => {}
            v => panic!("expected proof through replication, got {v:?}"),
        }
    }

    #[test]
    fn reordered_dependent_items_are_refuted() {
        // A[i] = A[i] * 2 ; A[i] = A[i] + 1  — the two superwords are
        // dependent, so swapping the scheduled items changes the result
        // for (almost) every input. The kernel must actually vectorize:
        // the cost gate executes a non-vectorized block in program order,
        // which would mask a schedule-only tamper from the VM replay.
        let p = program(
            "kernel dep { array A: f64[8];
             for i in 0..8 { A[i] = A[i] * 2.0; A[i] = A[i] + 1.0; } }",
        );
        let mut k = kernel(&p, Strategy::Holistic, false);
        let (bid, sched) = k.schedules[0].clone();
        assert!(sched.is_vectorized(), "tamper needs an executed schedule");
        let mut items: Vec<ScheduledItem> = sched.items().to_vec();
        assert!(items.len() >= 2);
        items.swap(0, 1);
        k.schedules[0] = (bid, BlockSchedule::new(items));
        match validate(&p, &k, &machine(), &Budgets::default()) {
            Verdict::Refuted(cex) => {
                assert!(cex.location.starts_with("A["), "{}", cex.location);
                assert_ne!(cex.scalar_value.to_bits(), cex.vector_value.to_bits());
                assert!(replay_counterexample(&p, &k, &machine(), &cex));
            }
            v => panic!("expected refutation, got {v:?}"),
        }
    }

    #[test]
    fn term_budget_degrades_to_budget_verdict() {
        let p = program(SAXPY);
        let k = kernel(&p, Strategy::Holistic, false);
        let tiny = Budgets {
            max_terms: 8,
            max_steps: 1 << 20,
        };
        match validate(&p, &k, &machine(), &tiny) {
            Verdict::Budget { .. } => {}
            v => panic!("expected budget degrade, got {v:?}"),
        }
    }

    #[test]
    fn loop_local_temp_is_not_compared() {
        let p = program(
            "kernel t { array A: f64[8]; scalar t: f64;
             for i in 0..8 { t = A[i]; A[i] = t * 2.0; } }",
        );
        let compared = compared_scalars(&p);
        assert!(!compared.iter().any(|&c| c), "t is a dead temporary");
    }

    #[test]
    fn live_out_scalar_is_compared() {
        let p = program(
            "kernel t { array A: f64[8]; array B: f64[1]; scalar t: f64;
             for i in 0..8 { t = A[i]; A[i] = t * 2.0; }
             B[0] = t; }",
        );
        let compared = compared_scalars(&p);
        assert!(compared.iter().any(|&c| c), "t is read after the loop");
    }
}
