//! # slp-opt — exact statement packing as a 0-1 integer program
//!
//! The heuristic pipeline (`Strategy::Holistic`) grows packs greedily:
//! each §4.2.2 round merges the highest-weight candidate and never
//! reconsiders. This crate answers the question the heuristic cannot:
//! *what is the best packing, and how far from it did the heuristic
//! land?*
//!
//! Statement packing is cast as a 0-1 integer linear program in the
//! goSLP style ([`model`]): one binary variable per candidate pack
//! formation (a legal merge of two grouping units, which also fixes the
//! lane permutation through the deterministic scheduler), mutual
//! statement exclusivity and §4.1 dependence-legality constraints from
//! the existing `slp-analysis` [`slp_analysis::ConflictMatrix`], and an
//! objective taken from the `slp-core::cost` tables — SIMD amortization,
//! memory access classes, and shuffle/permutation penalties included.
//!
//! The program is solved from scratch, dependency-free, by best-first
//! branch-and-bound ([`solve`]): LP-style *assignment relaxation* bounds
//! (provably admissible — see [`model::Floors`]), include/exclude
//! branching on the most promising merge, and an incumbent warm-started
//! from the holistic heuristic so the anytime answer is never worse than
//! what `Strategy::Holistic` ships. An expired deadline or node cap
//! degrades gracefully: the best packing found so far is returned with
//! `degraded = true` and the tightest *proven* lower bound, from which
//! the pipeline reports an optimality gap in
//! [`slp_core::CompileStats::opt_gap_ppm`].
//!
//! The solver plugs into `slp-core` behind the [`slp_core::Packer`]
//! trait as [`OptimalPacker`]; the driver installs it automatically for
//! [`slp_core::Strategy::Optimal`]. "Optimal" is exact over *statement
//! packing* — which statements form each superword — modulo the
//! deterministic scheduler's lane ordering and linearization, which the
//! solver shares with every other strategy.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod model;
mod packer;
pub mod solve;

pub use model::{pair_key, tie_key, Floors, PackModel, PairKey};
pub use packer::OptimalPacker;
pub use solve::{solve_block, SolveBudget, SolveOutcome};
