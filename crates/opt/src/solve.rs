//! Best-first branch-and-bound over packing states.
//!
//! A *state* is a partition of the block's statements into grouping
//! units plus a set of excluded merges ([`PairKey`]s). The root is the
//! all-singleton partition with nothing excluded; branching picks one
//! remaining candidate variable and splits the state into the
//! *include* child (the two units merged, stale exclusions dropped) and
//! the *exclude* child (that exact merge forbidden forever). Any valid
//! partition is reachable through pairwise merges, so together the two
//! children cover every completion of the parent.
//!
//! Each expanded node — not only leaves — has its current partition
//! scheduled (by both the framework scheduler and program order, keeping
//! the cheaper) and costed with the same `slp-core::cost` estimator the
//! holistic optimizer arbitrates with, so the incumbent improves as soon
//! as a better packing is *seen*, not when its subtree is exhausted:
//! that is what makes the search anytime. Nodes are expanded best-first
//! by their [assignment-relaxation bound](crate::model::PackModel::relaxation_bound)
//! (FIFO among ties), states are deduplicated on their canonical
//! `(units, exclusions)` signature, and a subtree is pruned when its
//! bound cannot beat the incumbent.
//!
//! On completion the incumbent is *optimal over statement packings
//! modulo the deterministic scheduler's lane ordering and
//! linearization* — the solver decides which statements pack together,
//! and delegates lane order to the same scheduler every strategy uses —
//! and `lower_bound == cost` (gap 0). When a budget expires first, the
//! incumbent (never worse than the heuristic warm start) ships with the
//! proven bound `min(incumbent, open-node bounds)` and `degraded =
//! true`.

use std::cmp::Ordering;
use std::collections::{BTreeSet, BinaryHeap, HashSet};
use std::time::Instant;

use slp_analysis::Unit;
use slp_core::{
    estimate_schedule_cost, schedule_block, schedule_in_program_order, BlockSchedule, CostContext,
    PackRequest,
};
use slp_ir::{StmtId, TypeEnv};

use crate::model::{pair_key, Floors, PackModel, PairKey};

/// Cost comparisons treat differences below this as ties, mirroring the
/// pipeline's own arbitration tolerance.
const EPS: f64 = 1e-9;

/// Anytime budgets of one block solve.
#[derive(Debug, Clone, Copy)]
pub struct SolveBudget {
    /// Absolute wall deadline, if any.
    pub deadline: Option<Instant>,
    /// Node-expansion cap; `0` means unlimited.
    pub max_nodes: u64,
}

impl SolveBudget {
    /// Builds the budget from [`slp_core::OptParams`], anchoring the
    /// deadline at `now`.
    pub fn from_params(params: slp_core::OptParams, now: Instant) -> SolveBudget {
        SolveBudget {
            deadline: (params.deadline_ms > 0)
                .then(|| now + std::time::Duration::from_millis(params.deadline_ms)),
            max_nodes: params.max_nodes,
        }
    }

    fn expired(&self, nodes: u64) -> bool {
        (self.max_nodes > 0 && nodes >= self.max_nodes)
            || self.deadline.is_some_and(|d| Instant::now() >= d)
    }
}

/// What one block solve proved.
#[derive(Debug, Clone)]
pub struct SolveOutcome {
    /// The best packing found (never costlier than the warm start).
    pub schedule: BlockSchedule,
    /// Its estimated cost.
    pub cost: f64,
    /// The proven lower bound on any valid packing's cost (equals
    /// `cost` when the search exhausted).
    pub lower_bound: f64,
    /// Nodes expanded.
    pub nodes: u64,
    /// Whether a budget expired before exhaustion.
    pub degraded: bool,
}

/// One open search state.
#[derive(Debug)]
struct Node {
    units: Vec<Unit>,
    excluded: BTreeSet<PairKey>,
    bound: f64,
    seq: u64,
}

impl PartialEq for Node {
    fn eq(&self, other: &Self) -> bool {
        self.bound == other.bound && self.seq == other.seq
    }
}
impl Eq for Node {}

// BinaryHeap is a max-heap; invert so the *lowest* bound (FIFO among
// ties) pops first.
impl Ord for Node {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .bound
            .total_cmp(&self.bound)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The canonical dedup signature of a state: sorted unit statement
/// lists plus the (already canonical) exclusion set.
fn signature(units: &[Unit], excluded: &BTreeSet<PairKey>) -> (Vec<Vec<usize>>, Vec<PairKey>) {
    let mut us: Vec<Vec<usize>> = units
        .iter()
        .map(|u| {
            let mut v: Vec<usize> = u.stmts().iter().map(|s| s.index()).collect();
            v.sort_unstable();
            v
        })
        .collect();
    us.sort_unstable();
    (us, excluded.iter().cloned().collect())
}

/// Solves one block's statement packing to proven optimality or budget
/// exhaustion, warm-started from the request's incumbent.
pub fn solve_block(req: &PackRequest<'_>, budget: SolveBudget) -> SolveOutcome {
    let cx = CostContext {
        program: req.program,
        loops: req.loops,
        exposed: req.exposed,
        cost: &req.config.machine.cost,
        vector_regs: req.config.machine.vector_regs,
        assume_layout: req.optimism,
    };
    let lane_cap = |s: StmtId| {
        let stmt = req.block.stmt(s).expect("stmt in block");
        req.config
            .machine
            .lanes_for(req.program.dest_type(stmt.dest()))
    };
    let floors = Floors::compute(req.block, &cx, lane_cap);

    let mut best_sched = req.incumbent.clone();
    let mut best_cost = req.incumbent_cost;
    let mut nodes = 0u64;
    let mut seq = 0u64;
    let mut degraded = false;

    let root_units: Vec<Unit> = req.block.iter().map(|s| Unit::singleton(s.id())).collect();
    let root_excluded = BTreeSet::new();
    let root_model = PackModel::build(
        &root_units,
        req.block,
        req.deps,
        req.program,
        lane_cap,
        &root_excluded,
        &floors,
    );
    let root_bound = root_model.relaxation_bound(&root_units, &floors);

    let mut heap: BinaryHeap<Node> = BinaryHeap::new();
    let mut seen: HashSet<(Vec<Vec<usize>>, Vec<PairKey>)> = HashSet::new();
    seen.insert(signature(&root_units, &root_excluded));
    heap.push(Node {
        units: root_units,
        excluded: root_excluded,
        bound: root_bound,
        seq,
    });

    while let Some(node) = heap.pop() {
        // Best-first invariant: every open state's bound is ≥ this
        // node's, so once the top cannot beat the incumbent the
        // incumbent is proven optimal.
        if node.bound >= best_cost - EPS {
            break;
        }
        if budget.expired(nodes) {
            degraded = true;
            // The tightest bound provable now: the minimum over still-open
            // states (child bounds are monotone over their parents, so the
            // unexpanded frontier covers every unexplored completion).
            let frontier = heap.into_iter().map(|n| n.bound).fold(node.bound, f64::min);
            return finish(best_sched, best_cost, frontier, nodes, degraded);
        }
        nodes += 1;

        // Evaluate this state's partition as-is: it is itself a
        // complete packing (unmerged units schedule as scalars).
        let (sched, cost) = evaluate(&node.units, req, &cx);
        if cost < best_cost - EPS {
            best_cost = cost;
            best_sched = sched;
        }

        let model = PackModel::build(
            &node.units,
            req.block,
            req.deps,
            req.program,
            lane_cap,
            &node.excluded,
            &floors,
        );
        let Some(var) = model.branch_var() else {
            continue; // no candidate left: a leaf partition
        };
        let cand = &model.vars[var];
        let key = pair_key(cand);

        // Include child: merge the two units; exclusions whose sides no
        // longer name a current unit can never fire again (unit
        // statement sets only grow), so drop them to keep states small
        // and the dedup effective.
        let mut merged_units: Vec<Unit> = Vec::with_capacity(node.units.len() - 1);
        let (lo, hi) = (cand.a.min(cand.b), cand.a.max(cand.b));
        for (i, u) in node.units.iter().enumerate() {
            if i == lo {
                merged_units.push(Unit::merged(&node.units[cand.a], &node.units[cand.b]));
            } else if i != hi {
                merged_units.push(u.clone());
            }
        }
        let live: BTreeSet<Vec<usize>> = merged_units
            .iter()
            .map(|u| {
                let mut v: Vec<usize> = u.stmts().iter().map(|s| s.index()).collect();
                v.sort_unstable();
                v
            })
            .collect();
        let merged_excluded: BTreeSet<PairKey> = node
            .excluded
            .iter()
            .filter(|(a, b)| live.contains(a) && live.contains(b))
            .cloned()
            .collect();

        // Exclude child: same partition, this exact merge forbidden.
        let mut excl_excluded = node.excluded.clone();
        excl_excluded.insert(key);

        for (child_units, child_excluded) in
            [(merged_units, merged_excluded), (node.units, excl_excluded)]
        {
            let sig = signature(&child_units, &child_excluded);
            if !seen.insert(sig) {
                continue;
            }
            let child_model = PackModel::build(
                &child_units,
                req.block,
                req.deps,
                req.program,
                lane_cap,
                &child_excluded,
                &floors,
            );
            let bound = child_model.relaxation_bound(&child_units, &floors);
            if bound >= best_cost - EPS {
                continue; // pruned: cannot beat the incumbent
            }
            seq += 1;
            heap.push(Node {
                units: child_units,
                excluded: child_excluded,
                bound,
                seq,
            });
        }
    }

    // Frontier exhausted (or the top bound met the incumbent): every
    // completion was either visited or pruned against a bound no lower
    // than the final incumbent, so the incumbent is optimal over
    // packings modulo the scheduler and the proven bound meets it.
    finish(best_sched, best_cost, best_cost, nodes, degraded)
}

fn finish(
    schedule: BlockSchedule,
    cost: f64,
    lower_bound: f64,
    nodes: u64,
    degraded: bool,
) -> SolveOutcome {
    SolveOutcome {
        schedule,
        cost,
        lower_bound: lower_bound.clamp(0.0, cost),
        nodes,
        degraded,
    }
}

/// Schedules a partition (framework scheduler and program order, keeping
/// the cheaper — ties favor the framework scheduler) and costs it with
/// the arbitration estimator.
fn evaluate(units: &[Unit], req: &PackRequest<'_>, cx: &CostContext<'_>) -> (BlockSchedule, f64) {
    let a = schedule_block(req.block, req.deps, units, &req.config.schedule);
    let ca = estimate_schedule_cost(req.block, &a, cx);
    let b = schedule_in_program_order(req.block, req.deps, units, &req.config.schedule);
    let cb = estimate_schedule_cost(req.block, &b, cx);
    if cb < ca - EPS {
        (b, cb)
    } else {
        (a, ca)
    }
}
