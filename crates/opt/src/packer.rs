//! The [`slp_core::Packer`] implementation the driver installs for
//! [`slp_core::Strategy::Optimal`].

use std::time::Instant;

use slp_core::{PackOutcome, PackRequest, Packer};

use crate::solve::{solve_block, SolveBudget};

/// Exact statement packing via branch-and-bound over the 0-1 ILP
/// model, warm-started from the heuristic incumbent in the request.
///
/// Stateless: budgets come from the request's [`slp_core::OptParams`]
/// (`deadline_ms == 0` disables the wall deadline, `max_nodes == 0`
/// lifts the node cap), so a shared instance is safe across threads and
/// deterministic whenever the node cap — not the clock — is binding.
#[derive(Debug, Clone, Copy, Default)]
pub struct OptimalPacker;

impl Packer for OptimalPacker {
    fn pack(&self, req: &PackRequest<'_>) -> PackOutcome {
        let budget = SolveBudget::from_params(req.config.opt, Instant::now());
        let out = solve_block(req, budget);
        PackOutcome {
            schedule: out.schedule,
            cost: out.cost,
            lower_bound: out.lower_bound,
            nodes: out.nodes,
            degraded: out.degraded,
        }
    }

    fn name(&self) -> &str {
        "bnb-ilp"
    }
}
