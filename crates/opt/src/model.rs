//! The 0-1 ILP view of one packing state.
//!
//! Following goSLP's formulation, statement packing is an integer
//! program: one binary variable per *candidate pack formation* (a legal
//! merge of two current grouping units, which fixes both the pack
//! memberships and — through the deterministic scheduler — the lane
//! permutation it implies), subject to
//!
//! * **mutual statement exclusivity** — two candidates sharing a unit
//!   cannot both be selected, and
//! * **dependence legality** — two candidates forming a dependence
//!   cycle cannot both be selected (§4.1 constraint 3),
//!
//! both of which [`ConflictMatrix`] encodes, with the objective taken
//! from the `slp-core::cost` tables (SIMD op amortization, memory
//! access classes, shuffle/permutation penalties). The model is
//! *round-structured*: selecting a variable merges two units, and the
//! next round's model is rebuilt over the coarser partition, exactly
//! like the iterative §4.2.2 grouping — so a chain of selections can
//! reach any width the datapath admits.
//!
//! [`PackModel::relaxation_bound`] is the LP-style bound the
//! branch-and-bound search prunes with: the optimum of the *assignment
//! relaxation*, in which the exclusivity/legality constraints are
//! dropped and every statement is independently assigned its cheapest
//! conceivable formation (scalar, or a full-width pack with the
//! best-case destination class). Dropping constraints can only lower
//! the optimum, so the bound is admissible; see the per-floor
//! derivations on [`Floors`].

use std::collections::{BTreeMap, BTreeSet};

use slp_analysis::{find_candidates, Candidate, ConflictMatrix, Unit};
use slp_core::{op_cost_factor, scalar_stmt_cost, CostContext};
use slp_ir::{BasicBlock, Dest, StmtId};

/// A canonical, order-independent name for a pairwise merge: the two
/// units' sorted statement-id lists, pair ordered lexicographically.
/// Used as the branch-exclusion key — excluding a candidate forbids
/// merging *exactly these two statement sets*, in any later round.
pub type PairKey = (Vec<usize>, Vec<usize>);

/// The canonical key of the merge candidate `c`.
pub fn pair_key(c: &Candidate) -> PairKey {
    let (a, b) = c.stmts.split_at(c.split);
    let mut ka: Vec<usize> = a.iter().map(|s| s.index()).collect();
    let mut kb: Vec<usize> = b.iter().map(|s| s.index()).collect();
    ka.sort_unstable();
    kb.sort_unstable();
    if ka <= kb {
        (ka, kb)
    } else {
        (kb, ka)
    }
}

/// Deterministic tie-break key of a candidate: its sorted statement ids.
pub fn tie_key(c: &Candidate) -> Vec<usize> {
    let mut k: Vec<usize> = c.stmts.iter().map(|s| s.index()).collect();
    k.sort_unstable();
    k
}

/// Admissible per-statement cost floors, the terms of the assignment
/// relaxation's optimum.
///
/// For each statement the floors bound, from below, what *any* valid
/// schedule charges for it:
///
/// * `scalar` — exactly what a `ScheduledItem::Single` costs
///   ([`scalar_stmt_cost`]), so it is tight for statements that stay
///   scalar.
/// * `vector` — the cheapest conceivable per-lane charge if the
///   statement joins a pack of any legal width `w ≤ cap`: the SIMD op
///   amortized over the widest pack (`op_factor·simd_op/cap` ≤ the true
///   `op_factor·simd_op/w` share), plus a destination floor — an array
///   destination costs at least an aligned `vector_store/cap` per lane,
///   an upward-exposed scalar destination costs exactly
///   `extract + scalar_store` per lane, an unexposed scalar destination
///   at least 0. Source packs floor at 0 (register reuse can make them
///   free), which keeps the bound admissible.
#[derive(Debug, Clone)]
pub struct Floors {
    map: BTreeMap<StmtId, (f64, f64)>,
}

impl Floors {
    /// Computes the floors of every statement in `block`.
    pub fn compute(
        block: &BasicBlock,
        cx: &CostContext<'_>,
        mut lane_cap: impl FnMut(StmtId) -> usize,
    ) -> Floors {
        let mut map = BTreeMap::new();
        for stmt in block.iter() {
            let scalar = scalar_stmt_cost(stmt, cx);
            let cap = lane_cap(stmt.id()).max(2) as f64;
            let dest_floor = match stmt.dest() {
                Dest::Array(_) => cx.cost.vector_store / cap,
                Dest::Scalar(v) => {
                    if cx.exposed[v.index()] {
                        cx.cost.extract + cx.cost.scalar_store
                    } else {
                        0.0
                    }
                }
            };
            let vector = op_cost_factor(stmt.expr().shape()) * cx.cost.simd_op / cap + dest_floor;
            map.insert(stmt.id(), (scalar, vector));
        }
        Floors { map }
    }

    fn scalar(&self, s: StmtId) -> f64 {
        self.map.get(&s).map(|&(sc, _)| sc).unwrap_or(0.0)
    }

    fn packed(&self, s: StmtId) -> f64 {
        self.map.get(&s).map(|&(sc, vc)| sc.min(vc)).unwrap_or(0.0)
    }
}

/// The ILP of one search state: the candidate variables still available
/// given the state's partition and branch exclusions, their conflict
/// constraints, and greedy branching scores.
#[derive(Debug, Clone)]
pub struct PackModel {
    /// One 0-1 variable per remaining candidate merge.
    pub vars: Vec<Candidate>,
    /// Pairwise exclusivity + dependence-legality constraints
    /// (`x_i + x_j ≤ 1` for every conflicting pair).
    pub conflicts: ConflictMatrix,
    /// Estimated objective improvement of selecting each variable
    /// (scalar floors minus packed floors over its statements) — the
    /// branching heuristic, not part of the bound.
    pub scores: Vec<f64>,
}

impl PackModel {
    /// Builds the model of the state `(units, excluded)`.
    pub fn build(
        units: &[Unit],
        block: &BasicBlock,
        deps: &slp_ir::BlockDeps,
        program: &slp_ir::Program,
        mut lane_cap: impl FnMut(StmtId) -> usize,
        excluded: &BTreeSet<PairKey>,
        floors: &Floors,
    ) -> PackModel {
        let vars: Vec<Candidate> = find_candidates(units, block, deps, program, &mut lane_cap)
            .into_iter()
            .filter(|c| !excluded.contains(&pair_key(c)))
            .collect();
        let conflicts = ConflictMatrix::compute(&vars, deps);
        let scores = vars
            .iter()
            .map(|c| {
                c.stmts
                    .iter()
                    .map(|&s| floors.scalar(s) - floors.packed(s))
                    .sum()
            })
            .collect();
        PackModel {
            vars,
            conflicts,
            scores,
        }
    }

    /// The assignment-relaxation optimum of this state — an admissible
    /// lower bound on the cost of every schedule reachable from it.
    ///
    /// Statements inside an already-merged unit, and singletons some
    /// remaining variable still touches, are assigned their cheapest
    /// floor; a singleton *no* variable touches can never be packed in
    /// any descendant state (merging only coarsens the partition and
    /// cannot create a partner that does not exist pairwise), so it is
    /// assigned its exact scalar cost.
    pub fn relaxation_bound(&self, units: &[Unit], floors: &Floors) -> f64 {
        let mut packable: BTreeSet<StmtId> = BTreeSet::new();
        for c in &self.vars {
            packable.extend(c.stmts.iter().copied());
        }
        let mut bound = 0.0;
        for u in units {
            for &s in u.stmts() {
                bound += if u.width() > 1 || packable.contains(&s) {
                    floors.packed(s)
                } else {
                    floors.scalar(s)
                };
            }
        }
        bound
    }

    /// The variable to branch on: the highest-score candidate,
    /// tie-broken by the lexicographically smallest sorted statement-id
    /// list so the search is deterministic.
    pub fn branch_var(&self) -> Option<usize> {
        (0..self.vars.len()).min_by(|&i, &j| {
            self.scores[j]
                .total_cmp(&self.scores[i])
                .then_with(|| tie_key(&self.vars[i]).cmp(&tie_key(&self.vars[j])))
        })
    }
}
