//! The measurement harness shared by the figure generators and the
//! Criterion benches: compiles a kernel under every §7 scheme and runs it
//! on the simulated machine.

use slp_core::{compile, CompiledKernel, MachineConfig, SlpConfig, Strategy};
use slp_ir::Program;
use slp_vm::{execute, Outcome};

/// The four optimization schemes of the evaluation, plus Global+Layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// Unoptimized scalar code (the normalization baseline).
    Scalar,
    /// The native compiler's simple vectorizer.
    Native,
    /// Larsen & Amarasinghe's SLP.
    Slp,
    /// The paper's holistic optimizer.
    Global,
    /// Holistic optimizer plus the data layout stage.
    GlobalLayout,
}

impl Scheme {
    /// Every scheme, in the order the figures list them.
    pub fn all() -> [Scheme; 5] {
        [
            Scheme::Scalar,
            Scheme::Native,
            Scheme::Slp,
            Scheme::Global,
            Scheme::GlobalLayout,
        ]
    }

    /// The figure-legend label.
    pub fn label(self) -> &'static str {
        match self {
            Scheme::Scalar => "scalar",
            Scheme::Native => "Native",
            Scheme::Slp => "SLP",
            Scheme::Global => "Global",
            Scheme::GlobalLayout => "Global+Layout",
        }
    }

    /// The pipeline configuration of this scheme on `machine`.
    pub fn config(self, machine: &MachineConfig) -> SlpConfig {
        let (strategy, layout) = match self {
            Scheme::Scalar => (Strategy::Scalar, false),
            Scheme::Native => (Strategy::Native, false),
            Scheme::Slp => (Strategy::Baseline, false),
            Scheme::Global => (Strategy::Holistic, false),
            Scheme::GlobalLayout => (Strategy::Holistic, true),
        };
        let cfg = SlpConfig::for_machine(machine.clone(), strategy);
        if layout {
            cfg.with_layout()
        } else {
            cfg
        }
    }
}

/// One measured run.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// The scheme measured.
    pub scheme: Scheme,
    /// Compiler output (kept for compile-time statistics).
    pub kernel: CompiledKernel,
    /// Execution outcome (final state + counters).
    pub outcome: Outcome,
}

impl Measurement {
    /// Simulated cycles.
    pub fn cycles(&self) -> f64 {
        self.outcome.stats.metrics.cycles
    }

    /// Execution-time reduction over `baseline` in percent (the y-axis of
    /// Figures 16, 19, 20).
    pub fn reduction_over(&self, baseline: &Measurement) -> f64 {
        (1.0 - self.cycles() / baseline.cycles()) * 100.0
    }
}

/// Compiles and runs `program` under `scheme` on `machine`.
///
/// # Panics
///
/// Panics if execution fails — the suite kernels are in-bounds by
/// construction, so a failure is a harness bug.
pub fn measure(program: &Program, machine: &MachineConfig, scheme: Scheme) -> Measurement {
    let kernel = compile(program, &scheme.config(machine));
    let outcome = execute(&kernel, machine)
        .unwrap_or_else(|e| panic!("{} under {:?} failed: {e}", program.name(), scheme));
    Measurement {
        scheme,
        kernel,
        outcome,
    }
}

/// Runs all five schemes on one program; results indexed by [`Scheme`].
pub fn measure_all(program: &Program, machine: &MachineConfig) -> Vec<Measurement> {
    Scheme::all()
        .into_iter()
        .map(|s| measure(program, machine, s))
        .collect()
}

/// Finds one scheme's measurement in a `measure_all` result.
///
/// # Panics
///
/// Panics if `scheme` is absent.
pub fn of(measurements: &[Measurement], scheme: Scheme) -> &Measurement {
    measurements
        .iter()
        .find(|m| m.scheme == scheme)
        .expect("scheme measured")
}

/// Asserts that every vectorized scheme computed the same array contents
/// as the scalar scheme — the semantic oracle run before any number is
/// reported. Routed through the `slp-verify` differential validator so a
/// divergence is reported with the array, index, and both values.
///
/// # Panics
///
/// Panics on the first divergence.
pub fn assert_equivalent(program: &Program, measurements: &[Measurement]) {
    let scalar = of(measurements, Scheme::Scalar);
    for m in measurements {
        slp_verify::assert_states_equivalent(
            program,
            &scalar.outcome.state,
            &m.outcome.state,
            m.scheme.label(),
        );
    }
}

/// Runs the full `slp-verify` battery (static checks plus differential
/// translation validation) over every scheme's compiled kernel and
/// returns the combined report — the harness hook the stress tests call
/// before trusting any measured number.
pub fn verify_schemes(program: &Program, machine: &MachineConfig) -> slp_verify::Report {
    let mut report = slp_verify::Report::new();
    for scheme in Scheme::all() {
        let kernel = compile(program, &scheme.config(machine));
        report.extend(
            slp_verify::verify_with_execution(program, &kernel)
                .diagnostics
                .into_iter()
                .map(|mut d| {
                    d.message = format!("[{}] {}", scheme.label(), d.message);
                    d
                }),
        );
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_all_covers_all_schemes() {
        let p = slp_suite::kernel("lbm", 1);
        let machine = MachineConfig::intel_dunnington();
        let ms = measure_all(&p, &machine);
        assert_eq!(ms.len(), 5);
        assert_equivalent(&p, &ms);
        // The scalar scheme is the slowest or tied.
        let scalar = of(&ms, Scheme::Scalar).cycles();
        for m in &ms {
            assert!(
                m.cycles() <= scalar + 1e-9,
                "{} slower than scalar",
                m.scheme.label()
            );
        }
    }

    #[test]
    fn reduction_is_zero_against_self() {
        let p = slp_suite::kernel("cg", 1);
        let machine = MachineConfig::intel_dunnington();
        let m = measure(&p, &machine, Scheme::Scalar);
        assert_eq!(m.reduction_over(&m), 0.0);
    }
}
