//! Developer probe: prints per-kernel reductions for every scheme.
use slp::prelude::*;
use slp_bench::{assert_equivalent, measure_all, of, Scheme};

fn main() {
    let machine = match std::env::args().nth(1).as_deref() {
        Some("amd") => MachineConfig::amd_phenom_ii(),
        _ => MachineConfig::intel_dunnington(),
    };
    println!(
        "{:<12} {:>8} {:>8} {:>8} {:>8}  repl",
        "kernel", "Native", "SLP", "Global", "G+L"
    );
    for (spec, p) in slp::suite::all(1) {
        let ms = measure_all(&p, &machine);
        assert_equivalent(&p, &ms);
        let base = of(&ms, Scheme::Scalar);
        let r = |s: Scheme| of(&ms, s).reduction_over(base);
        println!(
            "{:<12} {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}%  {}",
            spec.name,
            r(Scheme::Native),
            r(Scheme::Slp),
            r(Scheme::Global),
            r(Scheme::GlobalLayout),
            of(&ms, Scheme::GlobalLayout).kernel.stats.replications,
        );
    }
}
