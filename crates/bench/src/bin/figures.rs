//! Regenerates the paper's tables and figures on the simulated machines.
//!
//! ```text
//! figures <exhibit> [scale]
//!
//! exhibits: table1 table2 table3 fig16 fig17 fig18 fig19 fig20 fig21
//!           overhead all
//! scale:    problem-size multiplier (default 4; tests use 1)
//! ```

use slp::prelude::MachineConfig;
use slp_bench::figures::{
    compile_overhead, fig18_series, fig21, measure_suite, render_fig16, render_fig17, render_fig18,
    render_fig19, render_fig20, render_fig21, render_machine_table, render_table3,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let exhibit = args.first().map(String::as_str).unwrap_or("all");
    let scale: usize = args
        .get(1)
        .and_then(|s| s.parse().ok())
        .filter(|&s| s > 0)
        .unwrap_or(4);

    let intel = MachineConfig::intel_dunnington();
    let amd = MachineConfig::amd_phenom_ii();

    let wants = |name: &str| exhibit == name || exhibit == "all";

    if wants("table1") {
        println!("== Table 1: Intel Dunnington based machine ==");
        println!("{}", render_machine_table(&intel));
    }
    if wants("table2") {
        println!("== Table 2: AMD Phenom II based machine ==");
        println!("{}", render_machine_table(&amd));
    }
    if wants("table3") {
        println!("== Table 3: benchmark description ==");
        println!("{}", render_table3());
    }

    let needs_intel_suite = ["fig16", "fig17", "fig19", "fig20"]
        .iter()
        .any(|e| wants(e));
    let intel_results = if needs_intel_suite {
        Some(measure_suite(&intel, scale))
    } else {
        None
    };

    if wants("fig16") {
        println!("== Figure 16: execution-time reductions over scalar (Intel) ==");
        println!(
            "{}",
            render_fig16(intel_results.as_ref().expect("measured"))
        );
    }
    if wants("fig17") {
        println!("== Figure 17: Global-over-SLP reductions in dynamic instructions and packing/unpacking ==");
        println!(
            "{}",
            render_fig17(intel_results.as_ref().expect("measured"))
        );
    }
    if wants("fig18") {
        println!("== Figure 18: dynamic instructions eliminated vs datapath width ==");
        // Wide datapaths unroll 8-16x; candidate counts grow
        // quadratically with block size, so the sweep caps its scale.
        let series = fig18_series(&intel, scale.min(2), &[128, 256, 512, 1024]);
        println!("{}", render_fig18(&series));
    }
    if wants("fig19") {
        println!("== Figure 19: Global vs Global+Layout (Intel) ==");
        println!(
            "{}",
            render_fig19(intel_results.as_ref().expect("measured"))
        );
    }
    if wants("fig20") {
        println!("== Figure 20: reductions on the AMD machine ==");
        let amd_results = measure_suite(&amd, scale);
        println!(
            "{}",
            render_fig20(&amd_results, intel_results.as_ref().expect("measured"))
        );
    }
    if wants("fig21") {
        println!("== Figure 21: multicore execution-time reductions (NAS, Intel) ==");
        let fig = fig21(&intel, scale.max(8));
        println!("{}", render_fig21(&fig));
    }
    if wants("overhead") {
        println!("== §7.1: compile-time overhead of Global over SLP ==");
        let pct = compile_overhead(&intel, scale);
        println!("Global compilation time: {pct:+.1}% vs SLP (paper: +27% on average)\n");
    }

    let known = [
        "table1", "table2", "table3", "fig16", "fig17", "fig18", "fig19", "fig20", "fig21",
        "overhead", "all",
    ];
    if !known.contains(&exhibit) {
        eprintln!("unknown exhibit '{exhibit}'; known: {}", known.join(" "));
        std::process::exit(2);
    }
}
