//! Proof-time benchmark of the symbolic translation validator.
//!
//! ```text
//! tv-bench prove-time [--quick] [--out PATH] [--reps N]
//! ```
//!
//! `prove-time` runs the `slp-tv` validator over the sixteen-kernel
//! suite under the four vectorizing schemes (Native / SLP / Global /
//! Global+Layout) on the Intel machine and records, per configuration,
//! the proof verdict, wall time, and the validator's work counters
//! (hash-consed terms allocated, symbolic steps executed, cells and
//! scalars compared). Compilation fans out across the driver's worker
//! pool; the timed proof loop is strictly serial.
//!
//! Every suite configuration is expected to come back `proved` — any
//! other verdict is printed, still written to the report, and makes the
//! run exit nonzero, so this doubles as a whole-suite proof gate.
//!
//! Results land in `BENCH_tv.json` (override with `--out`).

use std::process::ExitCode;
use std::time::Instant;

use slp::driver::json::Json;
use slp::prelude::*;
use slp::tv::{validate, Budgets, Verdict};
use slp_bench::Scheme;

struct Case {
    kernel: &'static str,
    scheme: Scheme,
    program: Program,
    compiled: CompiledKernel,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: tv-bench prove-time [--quick] [--out PATH] [--reps N]\n       \
         --quick   1 repetition per configuration (CI smoke)\n       \
         --out     report path (default BENCH_tv.json)\n       \
         --reps    timed repetitions per configuration (default 3)"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) != Some("prove-time") {
        return usage();
    }
    let mut quick = false;
    let mut out = "BENCH_tv.json".to_string();
    let mut reps = 3usize;
    let mut it = args[1..].iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => match it.next() {
                Some(path) => out = path.clone(),
                None => return usage(),
            },
            "--reps" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) if n > 0 => reps = n,
                _ => return usage(),
            },
            _ => return usage(),
        }
    }
    if quick {
        reps = 1;
    }

    let machine = MachineConfig::intel_dunnington();
    let schemes = [
        Scheme::Native,
        Scheme::Slp,
        Scheme::Global,
        Scheme::GlobalLayout,
    ];
    let suite = slp::suite::all(1);

    let mut inputs = Vec::new();
    for scheme in schemes {
        for (spec, program) in &suite {
            inputs.push((spec.name, scheme, program));
        }
    }
    let cases: Vec<Case> = parallel_map(&inputs, 0, |_, &(kernel, scheme, program)| Case {
        kernel,
        scheme,
        program: program.clone(),
        compiled: compile(program, &scheme.config(&machine)),
    });
    eprintln!(
        "prove-time: {} configurations ({} kernels x {} schemes), {reps} rep(s)",
        cases.len(),
        suite.len(),
        schemes.len()
    );

    // The serial timed loop. The verdict (and its stats) is identical
    // across repetitions — the validator is deterministic — so the last
    // repetition's verdict is the one reported and the wall time is the
    // minimum over repetitions (the least-noise estimator).
    let budgets = Budgets::default();
    let mut rows = Vec::with_capacity(cases.len());
    let mut not_proved = Vec::new();
    let mut total_secs = 0.0f64;
    for case in &cases {
        let mut best = f64::INFINITY;
        let mut verdict = None;
        for _ in 0..reps {
            let start = Instant::now();
            let v = validate(&case.program, &case.compiled, &machine, &budgets);
            best = best.min(start.elapsed().as_secs_f64());
            verdict = Some(v);
        }
        let verdict = verdict.expect("at least one repetition");
        total_secs += best;
        let label = format!("{} / {}", case.kernel, case.scheme.label());
        let mut fields = vec![
            ("kernel", Json::str(case.kernel)),
            ("scheme", Json::str(case.scheme.label())),
            ("verdict", Json::str(verdict.name())),
            ("proof_seconds", Json::float(best)),
        ];
        match &verdict {
            Verdict::Proved(stats) => {
                fields.push(("terms", Json::num(stats.terms as u64)));
                fields.push(("steps", Json::num(stats.steps)));
                fields.push(("cells_compared", Json::num(stats.cells_compared as u64)));
                fields.push(("scalars_compared", Json::num(stats.scalars_compared as u64)));
            }
            Verdict::Budget { reason } | Verdict::Unsupported { reason } => {
                fields.push(("reason", Json::str(reason)));
                not_proved.push(format!("{label}: {} ({reason})", verdict.name()));
            }
            Verdict::Refuted(cex) => {
                fields.push(("counterexample", Json::str(cex.location.to_string())));
                not_proved.push(format!("{label}: refuted at {}", cex.location));
            }
        }
        rows.push(Json::obj(fields));
    }

    let all_proved = not_proved.is_empty();
    if all_proved {
        eprintln!(
            "all {} configurations proved in {total_secs:.3}s total ({:.2}ms mean)",
            cases.len(),
            total_secs * 1e3 / cases.len() as f64
        );
    } else {
        eprintln!("{} configuration(s) NOT proved:", not_proved.len());
        for line in &not_proved {
            eprintln!("  {line}");
        }
    }

    let report = Json::obj([
        ("benchmark", Json::str("prove-time")),
        ("quick", Json::Bool(quick)),
        ("kernels", Json::num(suite.len() as u64)),
        (
            "schemes",
            Json::Arr(schemes.iter().map(|s| Json::str(s.label())).collect()),
        ),
        ("machine", Json::str(&*machine.name)),
        ("configurations", Json::num(cases.len() as u64)),
        ("repetitions", Json::num(reps as u64)),
        ("total_proof_seconds", Json::float(total_secs)),
        (
            "gate",
            Json::str(if all_proved { "all-proved" } else { "failed" }),
        ),
        (
            "gate_failures",
            Json::Arr(not_proved.iter().map(Json::str).collect()),
        ),
        ("rows", Json::Arr(rows)),
    ]);
    if let Err(e) = std::fs::write(&out, report.to_pretty() + "\n") {
        eprintln!("cannot write {out}: {e}");
        return ExitCode::from(1);
    }
    eprintln!("wrote {out}");

    if all_proved {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
