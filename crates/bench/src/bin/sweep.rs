//! Developer probe: sweep WeightParams and report figure-shape quality.
use slp::analysis::WeightParams;
use slp::prelude::*;
use slp_bench::{measure, Scheme};

fn main() {
    let machine = MachineConfig::intel_dunnington();
    let kernels = slp::suite::all(1);
    // Fixed baselines.
    let mut scalar = Vec::new();
    let mut slp = Vec::new();
    for (_, p) in &kernels {
        scalar.push(measure(p, &machine, Scheme::Scalar).cycles());
        slp.push(measure(p, &machine, Scheme::Slp).cycles());
    }
    let mut best: Vec<(f64, String)> = Vec::new();
    for sigma in [0.2, 0.4, 0.6, 1.0] {
        for bonus in [0.5, 1.0, 1.5] {
            for penalty in [0.25, 0.5, 1.0] {
                for store in [1.0, 2.0, 3.0] {
                    let w = WeightParams {
                        contiguous_bonus: bonus,
                        gather_penalty: penalty,
                        scalar_reuse_weight: sigma,
                        store_factor: store,
                    };
                    let mut losses = 0usize;
                    let mut total_gap = 0.0;
                    let mut details = Vec::new();
                    for (i, (spec, p)) in kernels.iter().enumerate() {
                        let mut cfg = SlpConfig::for_machine(machine.clone(), Strategy::Holistic);
                        cfg.weights = w;
                        let k = compile(p, &cfg);
                        let g = execute(&k, &machine).unwrap().stats.metrics.cycles;
                        // Reductions over scalar.
                        let rg = (1.0 - g / scalar[i]) * 100.0;
                        let rs = (1.0 - slp[i] / scalar[i]) * 100.0;
                        if rg < rs - 0.5 {
                            losses += 1;
                            details.push(format!("{}({:.0}<{:.0})", spec.name, rg, rs));
                        }
                        total_gap += rg - rs;
                    }
                    best.push((
                    losses as f64 * 1000.0 - total_gap,
                    format!(
                        "s={sigma} b={bonus} p={penalty} f={store}: losses={losses} avg_gap={:+.2} [{}]",
                        total_gap / 16.0,
                        details.join(",")
                    ),
                ));
                }
            }
        }
    }
    best.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
    for (_, line) in best.iter().take(40) {
        println!("{line}");
    }
}
