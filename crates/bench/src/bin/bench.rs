//! Engine- and solver-level benchmarks.
//!
//! ```text
//! bench vm-throughput [--quick] [--out PATH] [--reps N]
//! bench opt-gap [--quick] [--out PATH] [--deadline-ms N] [--max-nodes N]
//! bench serve-load [--quick] [--out PATH] [--connections N] [--requests N] [--seed N]
//! ```
//!
//! `vm-throughput` executes the sixteen-kernel suite under four schemes
//! (scalar / SLP / Global / Global+Layout) on both simulated machines
//! with *three* engine configurations — the bytecode engine with
//! certificate-proven bounds checks elided (the one behind
//! `slp::prelude::execute`), the same engine fully checked, and the
//! tree-walking reference interpreter — and reports the suite execution
//! throughput of each (kernel runs per second and simulated
//! instructions per second of real wall time). The certified-vs-checked
//! pair isolates what the memory-safety certificates buy at execution
//! time; a **check-elision gate** first proves the two lowerings
//! bit-identical on every configuration.
//!
//! Before anything is timed, every configuration passes the
//! **differential gate**: the two engines must agree bit for bit on the
//! final memory image (arrays and scalars), on every run-statistics
//! counter, and on the per-block cycle attribution
//! ([`slp::verify::check_engine_agreement`]). A gate failure prints the
//! diagnostics, still writes the report (with `gate: "failed"`), and
//! exits nonzero — a throughput number for a wrong engine is worthless.
//!
//! `opt-gap` measures how far the holistic heuristic lands from *proven
//! optimal* statement packing: it compiles the sixteen-kernel suite on
//! both simulated machines under `Strategy::Holistic` and
//! `Strategy::Optimal` (the `slp-opt` branch-and-bound solver), reports
//! per-kernel estimated-cycle costs, solver nodes, solve time and the
//! proven optimality gap, and *confirms every claimed win* by executing
//! both kernels on the VM. A *proven* win (the solve exhausted, so the
//! cheaper packing is optimal under the cost model) that does not
//! survive cycle-accurate execution fails the run; an *anytime* claim
//! from a budget-hit solve that fails confirmation is reported but
//! neither scores nor fails the run — it was never a proof. Both
//! compiles also pass the scalar differential check. Results land in
//! `BENCH_opt.json`; the run exits nonzero unless every proven win is
//! VM-confirmed and at least three suite kernels end with the solver
//! either strictly beating the heuristic (confirmed) or proving it
//! optimal.
//!
//! `serve-load` benchmarks the `slp-serve` TCP stack end to end: it
//! starts an in-process server on a loopback port and drives the
//! deterministic load generator through three phases — **cold**
//! (unique-source kernels, every request compiles), **warm** (a small
//! fixed kernel set, cache hits after the first round) and **mixed**
//! (the full class mix including malformed lines and an over-quota
//! tenant) — recording throughput and p50/p99 latency per phase into
//! `BENCH_serve.json`. The run fails unless valid traffic produced
//! zero protocol errors and the warm phase out-ran the cold phase by
//! at least 5x (the cache tier is the whole point of serving).
//!
//! `vm-throughput` results land in `BENCH_vm.json` (override either
//! with `--out`). Compilation fans out across the driver's worker pool;
//! timing loops are strictly serial so the two engines see identical
//! conditions.

use std::process::ExitCode;
use std::time::Instant;

use slp::core::Phase;
use slp::driver::json::Json;
use slp::prelude::*;
use slp::vm::execute_reference;
use slp_bench::Scheme;

/// One compiled configuration: a suite kernel under one scheme on one
/// machine, with its bytecode lowerings prebuilt (translation is paid
/// once and amortized across runs, which is the engine's intended use).
/// `bytecode` elides the bounds checks of certificate-proven accesses;
/// `bytecode_checked` keeps every check — the pair isolates what the
/// memory-safety certificates buy at execution time.
struct Case {
    kernel: &'static str,
    scheme: Scheme,
    machine: MachineConfig,
    compiled: CompiledKernel,
    bytecode: BytecodeKernel,
    bytecode_checked: BytecodeKernel,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: bench vm-throughput [--quick] [--out PATH] [--reps N]\n       \
         bench opt-gap [--quick] [--out PATH] [--deadline-ms N] [--max-nodes N]\n       \
         bench serve-load [--quick] [--out PATH] [--connections N] [--requests N] [--seed N]\n       \
         --quick        vm-throughput: 1 repetition; opt-gap: small node cap;\n                      \
         serve-load: fewer requests (CI smoke)\n       \
         --out          report path (default BENCH_vm.json / BENCH_opt.json / BENCH_serve.json)\n       \
         --reps         timed repetitions per configuration (default 5)\n       \
         --deadline-ms  per-block solver deadline, 0 = none (default 0)\n       \
         --max-nodes    per-block solver node cap, 0 = unlimited (default 200000)\n       \
         --connections  serve-load: concurrent TCP connections (default 8)\n       \
         --requests     serve-load: requests per connection per phase (default 50)\n       \
         --seed         serve-load: request-stream seed (default 1592676784)"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("vm-throughput") => vm_throughput(&args[1..]),
        Some("opt-gap") => opt_gap(&args[1..]),
        Some("serve-load") => serve_load(&args[1..]),
        _ => usage(),
    }
}

/// End-to-end TCP serving throughput: cold, warm and mixed phases
/// against an in-process server.
fn serve_load(args: &[String]) -> ExitCode {
    use slp::driver::loadgen::{run, LoadConfig, LoadMix, LoadReport};
    use slp::driver::{serve_tcp, Handler, QuotaConfig, ServeConfig, TcpOptions};
    use std::sync::Arc;

    let mut quick = false;
    let mut out = "BENCH_serve.json".to_string();
    let mut connections = 8usize;
    let mut requests = 50usize;
    let mut seed = 0x5eed_51b0u64;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => match it.next() {
                Some(path) => out = path.clone(),
                None => return usage(),
            },
            "--connections" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) if n > 0 => connections = n,
                _ => return usage(),
            },
            "--requests" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) if n > 0 => requests = n,
                _ => return usage(),
            },
            "--seed" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) => seed = n,
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    if quick {
        requests = requests.min(20);
    }

    // An in-process server on a kernel-assigned loopback port: memory
    // cache only (disk I/O would measure the filesystem, not the serve
    // stack) and a tightly-metered "hog" tenant so the mixed phase
    // exercises real quota rejections.
    let handler = Arc::new(Handler::new(
        Arc::new(slp::prelude::CompileCache::in_memory(1024)),
        ServeConfig {
            quota_overrides: vec![(
                "hog".to_string(),
                QuotaConfig {
                    capacity: 4.0,
                    refill_per_sec: 0.0,
                },
            )],
            ..ServeConfig::default()
        },
    ));
    // One worker per connection: the bench measures the serve stack
    // under full concurrency, not worker-pool queueing.
    let server = match serve_tcp(
        "127.0.0.1:0",
        Arc::clone(&handler),
        TcpOptions {
            workers: connections,
            ..TcpOptions::default()
        },
    ) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("serve-load: cannot start server: {e}");
            return ExitCode::from(1);
        }
    };
    let addr = server.local_addr();
    eprintln!(
        "serve-load: server on {addr}, {connections} connection(s), \
         {requests} request(s)/connection/phase, seed {seed}"
    );

    let phase = |name: &str, mix: LoadMix, seed: u64| -> Result<(LoadReport, Json), ExitCode> {
        let config = LoadConfig {
            connections,
            requests_per_connection: requests,
            seed,
            mix,
            quota_tenant: "hog".to_string(),
        };
        let report = match run(addr, &config) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("serve-load: {name} phase failed: {e}");
                return Err(ExitCode::from(1));
            }
        };
        eprintln!(
            "{name:>5}: {:>8.0} req/s, p50 {:>8.3} ms, p99 {:>8.3} ms, \
             {} ok, {} expected error(s), {} protocol error(s)",
            report.throughput_rps(),
            report.percentile_nanos(50.0) as f64 / 1e6,
            report.percentile_nanos(99.0) as f64 / 1e6,
            report.ok,
            report.expected_errors,
            report.protocol_errors
        );
        let json = Json::obj([
            ("phase", Json::str(name)),
            ("sent", Json::num(report.sent)),
            ("ok", Json::num(report.ok)),
            ("expected_errors", Json::num(report.expected_errors)),
            ("protocol_errors", Json::num(report.protocol_errors)),
            ("throughput_rps", Json::float(report.throughput_rps())),
            ("p50_nanos", Json::num(report.percentile_nanos(50.0))),
            ("p99_nanos", Json::num(report.percentile_nanos(99.0))),
            ("wall_nanos", Json::num(report.wall_nanos)),
        ]);
        Ok((report, json))
    };

    let only = |warm, cold, malformed, over_quota| LoadMix {
        warm,
        cold,
        malformed,
        over_quota,
    };
    // Distinct seeds keep the cold phase's unique sources disjoint from
    // the mixed phase's.
    let (cold, cold_json) = match phase("cold", only(0, 1, 0, 0), seed) {
        Ok(r) => r,
        Err(code) => return code,
    };
    let (warm, warm_json) = match phase("warm", only(1, 0, 0, 0), seed ^ 1) {
        Ok(r) => r,
        Err(code) => return code,
    };
    let (mixed, mixed_json) = match phase("mixed", LoadMix::default(), seed ^ 2) {
        Ok(r) => r,
        Err(code) => return code,
    };

    let summary = server.shutdown();
    let protocol_errors = cold.protocol_errors + warm.protocol_errors + mixed.protocol_errors;
    let speedup = if cold.throughput_rps() > 0.0 {
        warm.throughput_rps() / cold.throughput_rps()
    } else {
        0.0
    };
    let ok = protocol_errors == 0 && speedup >= 5.0;
    eprintln!(
        "serve-load: warm/cold speedup {speedup:.1}x, {protocol_errors} protocol error(s); \
         server counters: {} requests, {} compiled, {} cache hit(s), {} coalesced, \
         {} quota rejection(s)",
        summary.requests,
        summary.compiled,
        summary.cache_hits,
        summary.coalesced,
        summary.rejected_quota
    );

    let report = Json::obj([
        ("benchmark", Json::str("serve-load")),
        ("quick", Json::Bool(quick)),
        ("connections", Json::num(connections as u64)),
        ("requests_per_connection", Json::num(requests as u64)),
        // A string: seeds are u64 and Json::num rejects > 2^53.
        ("seed", Json::str(seed.to_string())),
        ("warm_cold_speedup", Json::float(speedup)),
        ("protocol_errors", Json::num(protocol_errors)),
        ("phases", Json::Arr(vec![cold_json, warm_json, mixed_json])),
        ("serve", summary.to_json()),
        ("pass", Json::Bool(ok)),
    ]);
    if let Err(e) = std::fs::write(&out, report.to_pretty() + "\n") {
        eprintln!("cannot write {out}: {e}");
        return ExitCode::from(1);
    }
    eprintln!("wrote {out}");
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn machines() -> [MachineConfig; 2] {
    [
        MachineConfig::intel_dunnington(),
        MachineConfig::amd_phenom_ii(),
    ]
}

/// Heuristic-vs-optimal packing gaps over the suite, VM-confirmed.
fn opt_gap(args: &[String]) -> ExitCode {
    let mut quick = false;
    let mut out = "BENCH_opt.json".to_string();
    // Node-capped by default (deadline 0) so reruns are deterministic;
    // a wall deadline is opt-in for interactive use.
    let mut deadline_ms = 0u64;
    let mut max_nodes = 200_000u64;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => match it.next() {
                Some(path) => out = path.clone(),
                None => return usage(),
            },
            "--deadline-ms" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) => deadline_ms = n,
                None => return usage(),
            },
            "--max-nodes" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) => max_nodes = n,
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    if quick {
        max_nodes = max_nodes.min(5_000);
    }

    const EPS: f64 = 1e-9;
    let machines = machines();
    let suite = slp::suite::all(1);
    let mut inputs = Vec::new();
    for machine in &machines {
        for (spec, program) in &suite {
            inputs.push((spec.name, machine, program));
        }
    }
    eprintln!(
        "opt-gap: {} configurations ({} kernels x {} machines), \
         deadline {deadline_ms} ms, node cap {max_nodes}",
        inputs.len(),
        suite.len(),
        machines.len()
    );

    struct Row {
        kernel: &'static str,
        machine: String,
        est_heur: f64,
        est_opt: f64,
        cycles_heur: f64,
        cycles_opt: f64,
        nodes: u64,
        gap_ppm: u64,
        degraded: bool,
        solve_nanos: u64,
        diffs: Vec<String>,
    }

    let rows: Vec<Row> = parallel_map(&inputs, 0, |_, &(kernel, machine, program)| {
        let heur_cfg = SlpConfig::for_machine(machine.clone(), Strategy::Holistic);
        let (heur, _) = compile_timed(program, &heur_cfg);
        let opt_cfg = SlpConfig::for_machine(machine.clone(), Strategy::Optimal)
            .with_packer(OptimalPacker)
            .with_opt_budget(deadline_ms, max_nodes);
        let (opt, opt_timings) = compile_timed(program, &opt_cfg);

        // Correctness gate: both kernels must match the scalar reference.
        let mut diffs: Vec<String> = Vec::new();
        for (label, k) in [("heuristic", &heur), ("optimal", &opt)] {
            for d in slp::verify::check_differential(program, k) {
                diffs.push(format!("{kernel}/{}/{label}: {d}", machine.name));
            }
        }

        let cycles = |k: &CompiledKernel| {
            execute(k, machine)
                .expect("suite kernel executes")
                .stats
                .metrics
                .cycles
        };
        Row {
            kernel,
            machine: machine.name.to_string(),
            est_heur: estimate_kernel_cost(&heur),
            est_opt: estimate_kernel_cost(&opt),
            cycles_heur: cycles(&heur),
            cycles_opt: cycles(&opt),
            nodes: opt.stats.opt_nodes,
            gap_ppm: opt.stats.opt_gap_ppm,
            degraded: opt.stats.opt_degraded,
            solve_nanos: opt_timings.nanos(Phase::Solve),
            diffs,
        }
    });

    let diff_failures: Vec<&String> = rows.iter().flat_map(|r| &r.diffs).collect();
    let mut claimed = 0usize;
    let mut confirmed = 0usize;
    let mut unconfirmed: Vec<String> = Vec::new();
    let mut unconfirmed_anytime: Vec<String> = Vec::new();
    let mut proved_optimal = 0usize;
    let mut budget_hit = 0usize;
    // Acceptance counts kernels, not (kernel, machine) rows: a kernel
    // scores when on some machine the solver either strictly improved on
    // the heuristic (VM-confirmed) or proved it optimal.
    let mut scored: std::collections::BTreeSet<&str> = std::collections::BTreeSet::new();
    let mut json_rows = Vec::with_capacity(rows.len());
    for r in &rows {
        let win_claimed = r.est_opt < r.est_heur - EPS;
        let win_confirmed = win_claimed && r.cycles_opt <= r.cycles_heur + EPS;
        let proved = !r.degraded && r.gap_ppm == 0;
        claimed += usize::from(win_claimed);
        confirmed += usize::from(win_confirmed);
        proved_optimal += usize::from(proved);
        budget_hit += usize::from(r.degraded);
        if win_claimed && !win_confirmed {
            let msg = format!(
                "{}/{}: estimated {:.2} < {:.2} but measured {:.0} > {:.0} cycles",
                r.kernel, r.machine, r.est_opt, r.est_heur, r.cycles_opt, r.cycles_heur
            );
            if r.degraded {
                unconfirmed_anytime.push(msg);
            } else {
                unconfirmed.push(msg);
            }
        }
        if win_confirmed || proved {
            scored.insert(r.kernel);
        }
        json_rows.push(Json::obj([
            ("kernel", Json::str(r.kernel)),
            ("machine", Json::str(&r.machine)),
            ("estimated_cycles_heuristic", Json::float(r.est_heur)),
            ("estimated_cycles_optimal", Json::float(r.est_opt)),
            ("measured_cycles_heuristic", Json::float(r.cycles_heur)),
            ("measured_cycles_optimal", Json::float(r.cycles_opt)),
            ("solver_nodes", Json::num(r.nodes)),
            ("solver_gap_ppm", Json::num(r.gap_ppm)),
            ("solver_degraded", Json::Bool(r.degraded)),
            ("solve_nanos", Json::num(r.solve_nanos)),
            ("win_claimed", Json::Bool(win_claimed)),
            ("win_confirmed", Json::Bool(win_confirmed)),
            ("proved_optimal", Json::Bool(proved)),
        ]));
    }

    eprintln!(
        "opt-gap: {confirmed}/{claimed} claimed wins VM-confirmed, \
         {proved_optimal}/{} rows proven optimal, {budget_hit} hit the budget",
        rows.len()
    );
    for miss in &unconfirmed {
        eprintln!("UNCONFIRMED PROVEN WIN: {miss}");
    }
    for miss in &unconfirmed_anytime {
        eprintln!("unconfirmed anytime claim (budget-hit, not a proof): {miss}");
    }
    for d in &diff_failures {
        eprintln!("DIFFERENTIAL FAILURE: {d}");
    }
    eprintln!(
        "kernels where the solver beat the heuristic or proved it optimal: {} ({})",
        scored.len(),
        scored.iter().copied().collect::<Vec<_>>().join(", ")
    );

    let ok = unconfirmed.is_empty() && diff_failures.is_empty() && scored.len() >= 3;
    let report = Json::obj([
        ("benchmark", Json::str("opt-gap")),
        ("quick", Json::Bool(quick)),
        ("kernels", Json::num(suite.len() as u64)),
        (
            "machines",
            Json::Arr(machines.iter().map(|m| Json::str(&*m.name)).collect()),
        ),
        ("deadline_ms", Json::num(deadline_ms)),
        ("max_nodes", Json::num(max_nodes)),
        ("wins_claimed", Json::num(claimed as u64)),
        ("wins_confirmed", Json::num(confirmed as u64)),
        ("proved_optimal_rows", Json::num(proved_optimal as u64)),
        ("budget_hit_rows", Json::num(budget_hit as u64)),
        (
            "kernels_improved_or_proved",
            Json::Arr(scored.iter().map(|k| Json::str(*k)).collect()),
        ),
        (
            "unconfirmed_wins",
            Json::Arr(unconfirmed.iter().map(Json::str).collect()),
        ),
        (
            "unconfirmed_anytime_claims",
            Json::Arr(unconfirmed_anytime.iter().map(Json::str).collect()),
        ),
        (
            "differential_failures",
            Json::Arr(diff_failures.iter().map(|s| Json::str(*s)).collect()),
        ),
        ("pass", Json::Bool(ok)),
        ("rows", Json::Arr(json_rows)),
    ]);
    if let Err(e) = std::fs::write(&out, report.to_pretty() + "\n") {
        eprintln!("cannot write {out}: {e}");
        return ExitCode::from(1);
    }
    eprintln!("wrote {out}");
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn vm_throughput(args: &[String]) -> ExitCode {
    let mut quick = false;
    let mut out = "BENCH_vm.json".to_string();
    let mut reps = 5usize;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => match it.next() {
                Some(path) => out = path.clone(),
                None => return usage(),
            },
            "--reps" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) if n > 0 => reps = n,
                _ => return usage(),
            },
            _ => return usage(),
        }
    }
    if quick {
        reps = 1;
    }

    let machines = machines();
    let schemes = [
        Scheme::Scalar,
        Scheme::Slp,
        Scheme::Global,
        Scheme::GlobalLayout,
    ];
    let suite = slp::suite::all(1);

    // Compile every (kernel, scheme, machine) configuration and lower it
    // to bytecode, fanned out across the worker pool.
    let mut inputs = Vec::new();
    for machine in &machines {
        for scheme in schemes {
            for (spec, program) in &suite {
                inputs.push((spec.name, scheme, machine, program));
            }
        }
    }
    let cases: Vec<Case> = parallel_map(&inputs, 0, |_, &(kernel, scheme, machine, program)| {
        let compiled = compile(program, &scheme.config(machine));
        let bytecode = BytecodeKernel::compile(&compiled, machine, true)
            .unwrap_or_else(|e| panic!("{kernel} under {scheme:?} failed to lower: {e}"));
        let bytecode_checked = BytecodeKernel::compile_checked(&compiled, machine, true)
            .unwrap_or_else(|e| panic!("{kernel} under {scheme:?} failed to lower checked: {e}"));
        Case {
            kernel,
            scheme,
            machine: machine.clone(),
            compiled,
            bytecode,
            bytecode_checked,
        }
    });
    eprintln!(
        "vm-throughput: {} configurations ({} kernels x {} schemes x {} machines), {reps} rep(s)",
        cases.len(),
        suite.len(),
        schemes.len(),
        machines.len()
    );

    // The differential gate. Run before any timing; also parallel — the
    // verdicts are independent.
    let gate_failures: Vec<String> = parallel_map(&cases, 0, |_, case| {
        let diags = slp::verify::check_engine_agreement(&case.compiled);
        if diags.is_empty() {
            None
        } else {
            Some(format!(
                "{} / {} / {}:\n{}",
                case.kernel,
                case.scheme.label(),
                case.machine.name,
                diags
                    .iter()
                    .map(|d| format!("  {d}"))
                    .collect::<Vec<_>>()
                    .join("\n")
            ))
        }
    })
    .into_iter()
    .flatten()
    .collect();
    let gate_ok = gate_failures.is_empty();
    if gate_ok {
        eprintln!(
            "differential gate: all {} configurations bit-identical",
            cases.len()
        );
    } else {
        eprintln!(
            "differential gate FAILED on {} configuration(s):",
            gate_failures.len()
        );
        for f in &gate_failures {
            eprintln!("{f}");
        }
    }

    // The check-elision gate: the certificate-elided lowering must be
    // bit-identical (memory image and every counter) to the fully
    // checked one — elision may only remove compares, never change a
    // result. Also tallies how many accesses actually dropped checks.
    let mut elided_accesses = 0usize;
    let mut total_accesses = 0usize;
    let elision_failures: Vec<String> = parallel_map(&cases, 0, |_, case| {
        let fast = case.bytecode.run().expect("gated run");
        let checked = case.bytecode_checked.run().expect("gated run");
        if fast.state.bitwise_eq(&checked.state) && fast.stats == checked.stats {
            None
        } else {
            Some(format!(
                "{} / {} / {}: certified lowering diverges from the checked one",
                case.kernel,
                case.scheme.label(),
                case.machine.name
            ))
        }
    })
    .into_iter()
    .flatten()
    .collect();
    for case in &cases {
        let (unchecked, total) = case.bytecode.unchecked_accesses();
        elided_accesses += unchecked;
        total_accesses += total;
    }
    let elision_ok = elision_failures.is_empty();
    if elision_ok {
        eprintln!(
            "check-elision gate: bit-identical; {elided_accesses}/{total_accesses} accesses \
             certificate-elided"
        );
    } else {
        eprintln!(
            "check-elision gate FAILED on {} configuration(s):",
            elision_failures.len()
        );
        for f in &elision_failures {
            eprintln!("{f}");
        }
    }

    // Serial timing: the whole suite, `reps` times, per engine. The
    // simulated-instruction total is identical for both engines (the
    // gate proved it), so both throughputs share one denominator.
    let total_insts: u64 = cases
        .iter()
        .map(|c| {
            c.bytecode
                .run()
                .expect("gated run")
                .stats
                .metrics
                .dynamic_instructions
        })
        .sum();

    let start = Instant::now();
    for _ in 0..reps {
        for case in &cases {
            let outcome = case.bytecode.run().expect("gated run");
            std::hint::black_box(&outcome);
        }
    }
    let fast_secs = start.elapsed().as_secs_f64();

    let start = Instant::now();
    for _ in 0..reps {
        for case in &cases {
            let outcome = case.bytecode_checked.run().expect("gated run");
            std::hint::black_box(&outcome);
        }
    }
    let checked_secs = start.elapsed().as_secs_f64();

    let start = Instant::now();
    for _ in 0..reps {
        for case in &cases {
            let outcome = execute_reference(&case.compiled, &case.machine).expect("gated run");
            std::hint::black_box(&outcome);
        }
    }
    let reference_secs = start.elapsed().as_secs_f64();

    let runs = (cases.len() * reps) as f64;
    let insts = total_insts as f64 * reps as f64;
    let speedup = reference_secs / fast_secs;
    let elision_speedup = checked_secs / fast_secs;
    eprintln!(
        "bytecode (certified): {:>10.1} kernel runs/s, {:>12.3e} simulated insts/s ({fast_secs:.3}s wall)",
        runs / fast_secs,
        insts / fast_secs
    );
    eprintln!(
        "bytecode (checked):   {:>10.1} kernel runs/s, {:>12.3e} simulated insts/s ({checked_secs:.3}s wall)",
        runs / checked_secs,
        insts / checked_secs
    );
    eprintln!(
        "reference engine:     {:>10.1} kernel runs/s, {:>12.3e} simulated insts/s ({reference_secs:.3}s wall)",
        runs / reference_secs,
        insts / reference_secs
    );
    eprintln!(
        "speedup over reference: {speedup:.2}x; over checked bytecode: {elision_speedup:.2}x"
    );

    let engine = |secs: f64| {
        Json::obj([
            ("wall_seconds", Json::float(secs)),
            ("kernel_runs_per_second", Json::float(runs / secs)),
            ("simulated_insts_per_second", Json::float(insts / secs)),
        ])
    };
    let report = Json::obj([
        ("benchmark", Json::str("vm-throughput")),
        ("quick", Json::Bool(quick)),
        ("kernels", Json::num(suite.len() as u64)),
        (
            "schemes",
            Json::Arr(schemes.iter().map(|s| Json::str(s.label())).collect()),
        ),
        (
            "machines",
            Json::Arr(machines.iter().map(|m| Json::str(&*m.name)).collect()),
        ),
        ("configurations", Json::num(cases.len() as u64)),
        ("repetitions", Json::num(reps as u64)),
        ("total_kernel_runs", Json::num(runs as u64)),
        ("total_simulated_instructions", Json::num(insts as u64)),
        ("bytecode_engine", engine(fast_secs)),
        ("bytecode_engine_checked", engine(checked_secs)),
        ("reference_engine", engine(reference_secs)),
        ("speedup", Json::float(speedup)),
        ("check_elision_speedup", Json::float(elision_speedup)),
        (
            "accesses_certificate_elided",
            Json::num(elided_accesses as u64),
        ),
        ("accesses_total", Json::num(total_accesses as u64)),
        (
            "gate",
            Json::str(if gate_ok { "bit-identical" } else { "failed" }),
        ),
        (
            "gate_failures",
            Json::Arr(gate_failures.iter().map(Json::str).collect()),
        ),
        (
            "elision_gate",
            Json::str(if elision_ok {
                "bit-identical"
            } else {
                "failed"
            }),
        ),
        (
            "elision_gate_failures",
            Json::Arr(elision_failures.iter().map(Json::str).collect()),
        ),
    ]);
    if let Err(e) = std::fs::write(&out, report.to_pretty() + "\n") {
        eprintln!("cannot write {out}: {e}");
        return ExitCode::from(1);
    }
    eprintln!("wrote {out}");

    if gate_ok && elision_ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
