//! Engine-level benchmarks of the virtual machine itself.
//!
//! ```text
//! bench vm-throughput [--quick] [--out PATH] [--reps N]
//! ```
//!
//! `vm-throughput` executes the sixteen-kernel suite under four schemes
//! (scalar / SLP / Global / Global+Layout) on both simulated machines
//! with *both* execution engines — the fast bytecode engine behind
//! `slp::prelude::execute` and the tree-walking reference interpreter — and
//! reports the suite execution throughput of each (kernel runs per
//! second and simulated instructions per second of real wall time).
//!
//! Before anything is timed, every configuration passes the
//! **differential gate**: the two engines must agree bit for bit on the
//! final memory image (arrays and scalars), on every run-statistics
//! counter, and on the per-block cycle attribution
//! ([`slp::verify::check_engine_agreement`]). A gate failure prints the
//! diagnostics, still writes the report (with `gate: "failed"`), and
//! exits nonzero — a throughput number for a wrong engine is worthless.
//!
//! Results land in `BENCH_vm.json` (override with `--out`). Compilation
//! of the configurations fans out across the driver's worker pool;
//! timing loops are strictly serial so the two engines see identical
//! conditions.

use std::process::ExitCode;
use std::time::Instant;

use slp::driver::json::Json;
use slp::prelude::*;
use slp::vm::execute_reference;
use slp_bench::Scheme;

/// One compiled configuration: a suite kernel under one scheme on one
/// machine, with its bytecode lowering prebuilt (translation is paid
/// once and amortized across runs, which is the engine's intended use).
struct Case {
    kernel: &'static str,
    scheme: Scheme,
    machine: MachineConfig,
    compiled: CompiledKernel,
    bytecode: BytecodeKernel,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: bench vm-throughput [--quick] [--out PATH] [--reps N]\n       \
         --quick   1 repetition per configuration (CI smoke)\n       \
         --out     report path (default BENCH_vm.json)\n       \
         --reps    timed repetitions per configuration (default 5)"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) != Some("vm-throughput") {
        return usage();
    }
    let mut quick = false;
    let mut out = "BENCH_vm.json".to_string();
    let mut reps = 5usize;
    let mut it = args[1..].iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => match it.next() {
                Some(path) => out = path.clone(),
                None => return usage(),
            },
            "--reps" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) if n > 0 => reps = n,
                _ => return usage(),
            },
            _ => return usage(),
        }
    }
    if quick {
        reps = 1;
    }

    let machines = [
        MachineConfig::intel_dunnington(),
        MachineConfig::amd_phenom_ii(),
    ];
    let schemes = [
        Scheme::Scalar,
        Scheme::Slp,
        Scheme::Global,
        Scheme::GlobalLayout,
    ];
    let suite = slp::suite::all(1);

    // Compile every (kernel, scheme, machine) configuration and lower it
    // to bytecode, fanned out across the worker pool.
    let mut inputs = Vec::new();
    for machine in &machines {
        for scheme in schemes {
            for (spec, program) in &suite {
                inputs.push((spec.name, scheme, machine, program));
            }
        }
    }
    let cases: Vec<Case> = parallel_map(&inputs, 0, |_, &(kernel, scheme, machine, program)| {
        let compiled = compile(program, &scheme.config(machine));
        let bytecode = BytecodeKernel::compile(&compiled, machine, true)
            .unwrap_or_else(|e| panic!("{kernel} under {scheme:?} failed to lower: {e}"));
        Case {
            kernel,
            scheme,
            machine: machine.clone(),
            compiled,
            bytecode,
        }
    });
    eprintln!(
        "vm-throughput: {} configurations ({} kernels x {} schemes x {} machines), {reps} rep(s)",
        cases.len(),
        suite.len(),
        schemes.len(),
        machines.len()
    );

    // The differential gate. Run before any timing; also parallel — the
    // verdicts are independent.
    let gate_failures: Vec<String> = parallel_map(&cases, 0, |_, case| {
        let diags = slp::verify::check_engine_agreement(&case.compiled);
        if diags.is_empty() {
            None
        } else {
            Some(format!(
                "{} / {} / {}:\n{}",
                case.kernel,
                case.scheme.label(),
                case.machine.name,
                diags
                    .iter()
                    .map(|d| format!("  {d}"))
                    .collect::<Vec<_>>()
                    .join("\n")
            ))
        }
    })
    .into_iter()
    .flatten()
    .collect();
    let gate_ok = gate_failures.is_empty();
    if gate_ok {
        eprintln!(
            "differential gate: all {} configurations bit-identical",
            cases.len()
        );
    } else {
        eprintln!(
            "differential gate FAILED on {} configuration(s):",
            gate_failures.len()
        );
        for f in &gate_failures {
            eprintln!("{f}");
        }
    }

    // Serial timing: the whole suite, `reps` times, per engine. The
    // simulated-instruction total is identical for both engines (the
    // gate proved it), so both throughputs share one denominator.
    let total_insts: u64 = cases
        .iter()
        .map(|c| {
            c.bytecode
                .run()
                .expect("gated run")
                .stats
                .metrics
                .dynamic_instructions
        })
        .sum();

    let start = Instant::now();
    for _ in 0..reps {
        for case in &cases {
            let outcome = case.bytecode.run().expect("gated run");
            std::hint::black_box(&outcome);
        }
    }
    let fast_secs = start.elapsed().as_secs_f64();

    let start = Instant::now();
    for _ in 0..reps {
        for case in &cases {
            let outcome = execute_reference(&case.compiled, &case.machine).expect("gated run");
            std::hint::black_box(&outcome);
        }
    }
    let reference_secs = start.elapsed().as_secs_f64();

    let runs = (cases.len() * reps) as f64;
    let insts = total_insts as f64 * reps as f64;
    let speedup = reference_secs / fast_secs;
    eprintln!(
        "bytecode engine:  {:>10.1} kernel runs/s, {:>12.3e} simulated insts/s ({fast_secs:.3}s wall)",
        runs / fast_secs,
        insts / fast_secs
    );
    eprintln!(
        "reference engine: {:>10.1} kernel runs/s, {:>12.3e} simulated insts/s ({reference_secs:.3}s wall)",
        runs / reference_secs,
        insts / reference_secs
    );
    eprintln!("speedup: {speedup:.2}x");

    let engine = |secs: f64| {
        Json::obj([
            ("wall_seconds", Json::float(secs)),
            ("kernel_runs_per_second", Json::float(runs / secs)),
            ("simulated_insts_per_second", Json::float(insts / secs)),
        ])
    };
    let report = Json::obj([
        ("benchmark", Json::str("vm-throughput")),
        ("quick", Json::Bool(quick)),
        ("kernels", Json::num(suite.len() as u64)),
        (
            "schemes",
            Json::Arr(schemes.iter().map(|s| Json::str(s.label())).collect()),
        ),
        (
            "machines",
            Json::Arr(machines.iter().map(|m| Json::str(&*m.name)).collect()),
        ),
        ("configurations", Json::num(cases.len() as u64)),
        ("repetitions", Json::num(reps as u64)),
        ("total_kernel_runs", Json::num(runs as u64)),
        ("total_simulated_instructions", Json::num(insts as u64)),
        ("bytecode_engine", engine(fast_secs)),
        ("reference_engine", engine(reference_secs)),
        ("speedup", Json::float(speedup)),
        (
            "gate",
            Json::str(if gate_ok { "bit-identical" } else { "failed" }),
        ),
        (
            "gate_failures",
            Json::Arr(gate_failures.iter().map(Json::str).collect()),
        ),
    ]);
    if let Err(e) = std::fs::write(&out, report.to_pretty() + "\n") {
        eprintln!("cannot write {out}: {e}");
        return ExitCode::from(1);
    }
    eprintln!("wrote {out}");

    if gate_ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
