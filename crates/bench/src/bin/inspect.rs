//! Developer tool: inspect one benchmark's compilation under each scheme.
//!
//! ```text
//! inspect <kernel> [schedules|code|layout|weights]
//! ```

use slp::analysis::{
    find_candidates, ConflictMatrix, PackGraph, StatementGroupingGraph, Unit, WeightParams,
};
use slp::ir::{BlockDeps, TypeEnv};
use slp::prelude::*;
use slp::vm::lower_kernel;
use slp_bench::{measure, Scheme};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let name = args.first().cloned().unwrap_or_else(|| "wrf".into());
    let what = args.get(1).map(String::as_str).unwrap_or("schedules");
    let machine = MachineConfig::intel_dunnington();
    let program = slp::suite::kernel(&name, 1);

    match what {
        "schedules" | "code" => {
            for scheme in [Scheme::Slp, Scheme::Global, Scheme::GlobalLayout] {
                let m = measure(&program, &machine, scheme);
                println!(
                    "==== {} ({:.0} cycles, {} replications) ====",
                    scheme.label(),
                    m.cycles(),
                    m.kernel.replications.len()
                );
                for (bid, sched) in &m.kernel.schedules {
                    if sched.is_vectorized() {
                        println!("-- schedule of {bid}:");
                        for item in sched.items() {
                            println!("   {item}");
                        }
                    }
                }
                if what == "code" {
                    for (bid, code) in lower_kernel(&m.kernel, &machine, true) {
                        println!("-- code of {bid} (vectorized={}):", code.vectorized);
                        for inst in code.preheader.iter() {
                            println!("   [pre] {inst}");
                        }
                        for inst in &code.insts {
                            println!("   {inst}");
                        }
                    }
                }
            }
        }
        "layout" => {
            let m = measure(&program, &machine, Scheme::GlobalLayout);
            println!("stats: {:?}", m.kernel.stats);
            for r in &m.kernel.replications {
                println!(
                    "replication: {} -> {} ({} lanes, {} copies)",
                    m.kernel.program.array(r.source).name,
                    m.kernel.program.array(r.dest).name,
                    r.lanes.len(),
                    r.copy_count()
                );
            }
        }
        "weights" => {
            // The paper's Figure 5 view: the statement grouping graph of
            // the first round, edges annotated with their reuse weights.
            let mut p = program.clone();
            slp::ir::unroll_program(&mut p, 2);
            let infos = p.blocks();
            let info = infos
                .iter()
                .max_by_key(|b| b.block.len())
                .expect("kernel has blocks");
            let deps = BlockDeps::analyze_in(&info.block, &info.loops);
            let units: Vec<Unit> = info.block.iter().map(|s| Unit::singleton(s.id())).collect();
            let cands = find_candidates(&units, &info.block, &deps, &p, |s| {
                let stmt = info.block.stmt(s).expect("stmt");
                machine.lanes_for(p.dest_type(stmt.dest()))
            });
            let conflicts = ConflictMatrix::compute(&cands, &deps);
            let vp = PackGraph::build(&cands);
            let sg = StatementGroupingGraph::build(
                &units,
                &cands,
                &vp,
                &conflicts,
                &WeightParams::default(),
            );
            for e in sg.edges_by_weight().iter().take(30) {
                let cand = &cands[e.candidate];
                let stmts: Vec<String> = cand
                    .stmts
                    .iter()
                    .map(|s| p.show_stmt(info.block.stmt(*s).expect("stmt")))
                    .collect();
                println!("{:7.3}  {{{}}}", e.weight, stmts.join(" | "));
            }
        }
        other => {
            eprintln!("unknown mode '{other}'; known: schedules code layout weights");
            std::process::exit(2);
        }
    }
}
