//! # slp-bench — the evaluation harness
//!
//! Reproduces every table and figure of the paper's §7 on the simulated
//! machines:
//!
//! * [`harness`] — compiles and runs a kernel under all five schemes
//!   (scalar / Native / SLP / Global / Global+Layout) with a bit-exact
//!   semantic-equivalence oracle,
//! * [`figures`] — the per-exhibit data generators and text renderers
//!   (Tables 1–3, Figures 16–21, the compile-time overhead statement).
//!
//! The `figures` binary prints any exhibit (`figures fig16`, `figures
//! all`); the Criterion benches under `benches/` time the same harness
//! entry points.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod figures;
pub mod harness;

pub use harness::{
    assert_equivalent, measure, measure_all, of, verify_schemes, Measurement, Scheme,
};
