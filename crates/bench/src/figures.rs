//! Regeneration of every table and figure in the paper's evaluation (§7).
//!
//! Each `figNN`/`tableN` function produces the structured data behind the
//! corresponding exhibit plus a plain-text rendering with the same rows
//! and series the paper reports. Absolute numbers come from the simulated
//! machines, so they are not expected to match the paper's hardware — the
//! *shape* (which scheme wins, by roughly what factor, where the
//! crossovers are) is the reproduction target, recorded exhibit by
//! exhibit in `EXPERIMENTS.md`.

use std::fmt::Write as _;

use slp_core::MachineConfig;
use slp_suite::{catalog, BenchmarkSpec};
use slp_vm::{reduction_percent, MulticoreModel};

use crate::harness::{assert_equivalent, measure_all, of, Measurement, Scheme};

/// Renders Table 1 (the Intel machine) or Table 2 (the AMD machine).
pub fn render_machine_table(machine: &MachineConfig) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "Machine: {}", machine.name);
    let _ = writeln!(s, "  Cores            {}", machine.cores);
    let _ = writeln!(s, "  Clock            {:.2} GHz", machine.clock_ghz);
    let _ = writeln!(s, "  SIMD datapath    {} bits", machine.datapath_bits);
    let _ = writeln!(s, "  Vector registers {}", machine.vector_regs);
    let _ = writeln!(s, "  L1 data          {} KB/core", machine.l1_data_kb);
    let _ = writeln!(s, "  L2 total         {} KB", machine.l2_total_kb);
    let _ = writeln!(s, "  L3 total         {} KB", machine.l3_total_kb);
    s
}

/// Renders Table 3: the benchmark catalog.
pub fn render_table3() -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{:<12} {:<10} description", "benchmark", "suite");
    for spec in catalog() {
        let _ = writeln!(
            s,
            "{:<12} {:<10} {}",
            spec.name,
            spec.suite.to_string(),
            spec.description
        );
    }
    s
}

/// One benchmark's measurements across all five schemes.
#[derive(Debug, Clone)]
pub struct BenchmarkResult {
    /// Benchmark metadata.
    pub spec: BenchmarkSpec,
    /// All five scheme measurements (ordered as [`Scheme::all`]).
    pub measurements: Vec<Measurement>,
}

impl BenchmarkResult {
    /// Execution-time reduction of `scheme` over the scalar baseline, in
    /// percent.
    pub fn reduction(&self, scheme: Scheme) -> f64 {
        of(&self.measurements, scheme).reduction_over(of(&self.measurements, Scheme::Scalar))
    }

    /// The measurement of one scheme.
    pub fn of(&self, scheme: Scheme) -> &Measurement {
        of(&self.measurements, scheme)
    }
}

/// Measures every benchmark under every scheme on `machine`, asserting
/// semantic equivalence of all schemes first.
///
/// The benchmarks are independent, so they are fanned out across the
/// driver's worker pool ([`slp_driver::parallel_map`]); results come
/// back in catalog order regardless of scheduling, and each kernel's
/// measurements stay serial so its numbers are undisturbed by siblings.
///
/// This is the data source shared by Figures 16, 17, 19 and 20.
pub fn measure_suite(machine: &MachineConfig, scale: usize) -> Vec<BenchmarkResult> {
    let kernels = slp_suite::all(scale);
    slp_driver::parallel_map(&kernels, 0, |_, (spec, program)| {
        let measurements = measure_all(program, machine);
        assert_equivalent(program, &measurements);
        BenchmarkResult {
            spec: spec.clone(),
            measurements,
        }
    })
}

/// Sorts results the way Figure 16 orders its x-axis: by the Global
/// scheme's improvement, ascending.
pub fn sort_fig16(results: &mut [BenchmarkResult]) {
    results.sort_by(|a, b| {
        a.reduction(Scheme::Global)
            .partial_cmp(&b.reduction(Scheme::Global))
            .expect("finite reductions")
    });
}

/// Renders Figure 16: execution-time reductions of Native / SLP / Global
/// over scalar code on the Intel machine, benchmarks sorted by Global.
pub fn render_fig16(results: &[BenchmarkResult]) -> String {
    let mut sorted = results.to_vec();
    sort_fig16(&mut sorted);
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<12} {:>8} {:>8} {:>8}",
        "benchmark", "Native", "SLP", "Global"
    );
    for r in &sorted {
        let _ = writeln!(
            s,
            "{:<12} {:>7.1}% {:>7.1}% {:>7.1}%",
            r.spec.name,
            r.reduction(Scheme::Native),
            r.reduction(Scheme::Slp),
            r.reduction(Scheme::Global),
        );
    }
    let avg = |scheme: Scheme| {
        sorted.iter().map(|r| r.reduction(scheme)).sum::<f64>() / sorted.len() as f64
    };
    let _ = writeln!(
        s,
        "{:<12} {:>7.1}% {:>7.1}% {:>7.1}%",
        "average",
        avg(Scheme::Native),
        avg(Scheme::Slp),
        avg(Scheme::Global)
    );
    let ties = sorted
        .iter()
        .filter(|r| (r.reduction(Scheme::Global) - r.reduction(Scheme::Slp)).abs() < 0.05)
        .count();
    let native_ties = sorted
        .iter()
        .filter(|r| (r.reduction(Scheme::Slp) - r.reduction(Scheme::Native)).abs() < 0.05)
        .count();
    let _ = writeln!(
        s,
        "Global == SLP on {ties} benchmarks; SLP == Native on {native_ties}."
    );
    s
}

/// The Figure 17 series for one benchmark: reductions brought by Global
/// over SLP in dynamic instructions (excluding packing/unpacking) and in
/// packing/unpacking operations, in percent.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig17Row {
    /// Reduction of dynamic instructions excluding packing.
    pub dynamic_reduction: f64,
    /// Reduction of packing/unpacking operations.
    pub packing_reduction: f64,
}

/// Computes the Figure 17 rows from suite measurements.
pub fn fig17_rows(results: &[BenchmarkResult]) -> Vec<(String, Fig17Row)> {
    results
        .iter()
        .map(|r| {
            let slp = &r.of(Scheme::Slp).outcome.stats.metrics;
            let global = &r.of(Scheme::Global).outcome.stats.metrics;
            let dynr = reduction(
                slp.dynamic_excluding_packing() as f64,
                global.dynamic_excluding_packing() as f64,
            );
            let packr = reduction(slp.packing_ops as f64, global.packing_ops as f64);
            (
                r.spec.name.to_string(),
                Fig17Row {
                    dynamic_reduction: dynr,
                    packing_reduction: packr,
                },
            )
        })
        .collect()
}

fn reduction(base: f64, new: f64) -> f64 {
    if base <= 0.0 {
        0.0
    } else {
        (1.0 - new / base) * 100.0
    }
}

/// Renders Figure 17.
pub fn render_fig17(results: &[BenchmarkResult]) -> String {
    let rows = fig17_rows(results);
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<12} {:>10} {:>12}",
        "benchmark", "dyn insts", "pack/unpack"
    );
    for (name, row) in &rows {
        let _ = writeln!(
            s,
            "{:<12} {:>9.1}% {:>11.1}%",
            name, row.dynamic_reduction, row.packing_reduction
        );
    }
    let n = rows.len() as f64;
    let _ = writeln!(
        s,
        "{:<12} {:>9.1}% {:>11.1}%",
        "average",
        rows.iter().map(|(_, r)| r.dynamic_reduction).sum::<f64>() / n,
        rows.iter().map(|(_, r)| r.packing_reduction).sum::<f64>() / n
    );
    let _ = writeln!(
        s,
        "{:<12} {:>9.1}% {:>11.1}%",
        "median",
        median(rows.iter().map(|(_, r)| r.dynamic_reduction)),
        median(rows.iter().map(|(_, r)| r.packing_reduction))
    );
    s
}

/// The median of a series (0 for an empty one).
pub fn median(values: impl Iterator<Item = f64>) -> f64 {
    let mut v: Vec<f64> = values.collect();
    if v.is_empty() {
        return 0.0;
    }
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let mid = v.len() / 2;
    if v.len() % 2 == 1 {
        v[mid]
    } else {
        (v[mid - 1] + v[mid]) / 2.0
    }
}

/// The Figure 18 sweep: for each hypothetical datapath width, the average
/// percentage of scalar-code dynamic instructions eliminated by Global.
pub fn fig18_series(machine: &MachineConfig, scale: usize, widths: &[u32]) -> Vec<(u32, f64)> {
    widths
        .iter()
        .map(|&bits| {
            let m = machine.with_datapath_bits(bits);
            let mut acc = 0.0;
            let mut n = 0usize;
            for (_, program) in slp_suite::all(scale) {
                let scalar = crate::harness::measure(&program, &m, Scheme::Scalar);
                let global = crate::harness::measure(&program, &m, Scheme::Global);
                acc += reduction(
                    scalar.outcome.stats.metrics.dynamic_instructions as f64,
                    global.outcome.stats.metrics.dynamic_instructions as f64,
                );
                n += 1;
            }
            (bits, acc / n as f64)
        })
        .collect()
}

/// Renders Figure 18.
pub fn render_fig18(series: &[(u32, f64)]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{:<16} {:>12}", "datapath width", "dyn insts eliminated");
    for (bits, pct) in series {
        let _ = writeln!(s, "{bits:<16} {pct:>11.1}%");
    }
    s
}

/// Renders Figure 19: Global vs Global+Layout reductions on the Intel
/// machine, with the layout-winning benchmarks marked.
pub fn render_fig19(results: &[BenchmarkResult]) -> String {
    let mut sorted = results.to_vec();
    sort_fig16(&mut sorted);
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<12} {:>8} {:>14} {:>6}",
        "benchmark", "Global", "Global+Layout", "gain"
    );
    let mut winners = 0;
    for r in &sorted {
        let g = r.reduction(Scheme::Global);
        let gl = r.reduction(Scheme::GlobalLayout);
        let marker = if gl > g + 0.05 {
            winners += 1;
            " *"
        } else {
            ""
        };
        let _ = writeln!(
            s,
            "{:<12} {:>7.1}% {:>13.1}% {:>5.1}{}",
            r.spec.name,
            g,
            gl,
            gl - g,
            marker
        );
    }
    let n = sorted.len() as f64;
    let _ = writeln!(
        s,
        "{:<12} {:>7.1}% {:>13.1}%",
        "average",
        sorted
            .iter()
            .map(|r| r.reduction(Scheme::Global))
            .sum::<f64>()
            / n,
        sorted
            .iter()
            .map(|r| r.reduction(Scheme::GlobalLayout))
            .sum::<f64>()
            / n
    );
    let best = sorted
        .iter()
        .map(|r| r.reduction(Scheme::GlobalLayout) - r.reduction(Scheme::Slp))
        .fold(f64::NEG_INFINITY, f64::max);
    let _ = writeln!(
        s,
        "Layout benefits {winners} benchmarks (*); best Global+Layout over SLP: {best:.1}%."
    );
    s
}

/// Renders Figure 20: reductions on the AMD machine, with the Intel
/// averages for comparison.
pub fn render_fig20(amd: &[BenchmarkResult], intel: &[BenchmarkResult]) -> String {
    let mut sorted = amd.to_vec();
    sort_fig16(&mut sorted);
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<12} {:>8} {:>14}",
        "benchmark", "Global", "Global+Layout"
    );
    for r in &sorted {
        let _ = writeln!(
            s,
            "{:<12} {:>7.1}% {:>13.1}%",
            r.spec.name,
            r.reduction(Scheme::Global),
            r.reduction(Scheme::GlobalLayout)
        );
    }
    let avg = |rs: &[BenchmarkResult], scheme: Scheme| {
        rs.iter().map(|r| r.reduction(scheme)).sum::<f64>() / rs.len() as f64
    };
    let _ = writeln!(
        s,
        "AMD averages:   Global {:>5.1}%  Global+Layout {:>5.1}%",
        avg(amd, Scheme::Global),
        avg(amd, Scheme::GlobalLayout)
    );
    let _ = writeln!(
        s,
        "Intel averages: Global {:>5.1}%  Global+Layout {:>5.1}%",
        avg(intel, Scheme::Global),
        avg(intel, Scheme::GlobalLayout)
    );
    s
}

/// The Figure 21 data: for each NAS benchmark and core count, the
/// execution-time reduction of Global and Global+Layout over the scalar
/// original running on the same core count.
#[derive(Debug, Clone)]
pub struct Fig21 {
    /// Core counts of the x-axis.
    pub cores: Vec<usize>,
    /// Per benchmark: name and reductions per core count for (Global,
    /// Global+Layout).
    pub rows: Vec<(String, Vec<(f64, f64)>)>,
}

/// Computes Figure 21 on the Intel machine (1–12 cores).
pub fn fig21(machine: &MachineConfig, scale: usize) -> Fig21 {
    let cores = vec![1, 2, 4, 6, 8, 10, 12];
    let mut rows = Vec::new();
    for (spec, program) in slp_suite::nas(scale) {
        let ms = measure_all(&program, machine);
        assert_equivalent(&program, &ms);
        let model = MulticoreModel::with_serial_fraction(spec.serial_fraction);
        let scalar = &of(&ms, Scheme::Scalar).outcome.stats;
        let global = &of(&ms, Scheme::Global).outcome.stats;
        let layout = &of(&ms, Scheme::GlobalLayout).outcome.stats;
        let series = cores
            .iter()
            .map(|&c| {
                (
                    reduction_percent(scalar, global, c, &model),
                    reduction_percent(scalar, layout, c, &model),
                )
            })
            .collect();
        rows.push((spec.name.to_string(), series));
    }
    Fig21 { cores, rows }
}

/// Renders Figure 21 as two sub-tables (a: Global, b: Global+Layout).
pub fn render_fig21(fig: &Fig21) -> String {
    let mut s = String::new();
    for (label, pick) in [("(a) Global", 0usize), ("(b) Global+Layout", 1usize)] {
        let _ = writeln!(s, "{label}");
        let mut header = format!("{:<8}", "cores");
        for c in &fig.cores {
            let _ = write!(header, "{c:>8}");
        }
        let _ = writeln!(s, "{header}");
        for (name, series) in &fig.rows {
            let mut line = format!("{name:<8}");
            for v in series {
                let r = if pick == 0 { v.0 } else { v.1 };
                let _ = write!(line, "{r:>7.1}%");
            }
            let _ = writeln!(s, "{line}");
        }
    }
    s
}

/// Measures the compile-time overhead of Global over SLP (the §7.1
/// "increased compilation time by 27% on average" statement), as a
/// percentage.
pub fn compile_overhead(machine: &MachineConfig, scale: usize) -> f64 {
    use std::time::Instant;
    let kernels = slp_suite::all(scale);
    let time = |scheme: Scheme| {
        let start = Instant::now();
        for (_, p) in &kernels {
            let _ = slp_core::compile(p, &scheme.config(machine));
        }
        start.elapsed().as_secs_f64()
    };
    // Warm up, then measure.
    let _ = time(Scheme::Slp);
    let slp = time(Scheme::Slp);
    let global = time(Scheme::Global);
    (global / slp - 1.0) * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn intel() -> MachineConfig {
        MachineConfig::intel_dunnington()
    }

    #[test]
    fn fig16_shape_holds() {
        let results = measure_suite(&intel(), 1);
        assert_eq!(results.len(), 16);
        for r in &results {
            let (native, slp, global) = (
                r.reduction(Scheme::Native),
                r.reduction(Scheme::Slp),
                r.reduction(Scheme::Global),
            );
            // Global never loses to SLP, SLP never loses to Native
            // (beyond noise), and nothing is slower than scalar.
            assert!(global >= slp - 0.05, "{}: {global} < {slp}", r.spec.name);
            assert!(slp >= native - 0.05, "{}: {slp} < {native}", r.spec.name);
            assert!(native >= -0.05, "{}", r.spec.name);
        }
        // Global strictly beats SLP somewhere, and ties somewhere.
        assert!(results
            .iter()
            .any(|r| r.reduction(Scheme::Global) > r.reduction(Scheme::Slp) + 1.0));
        assert!(results
            .iter()
            .any(|r| (r.reduction(Scheme::Global) - r.reduction(Scheme::Slp)).abs() < 0.05));
    }

    #[test]
    fn fig17_global_reduces_packing() {
        let results = measure_suite(&intel(), 1);
        let rows = fig17_rows(&results);
        // The paper reports a 43.5% average packing/unpacking reduction.
        // Benchmarks where Global and SLP emit identical code contribute
        // zeros, and coverage mismatches (SLP leaving a block scalar)
        // can make a row negative, so the robust shape statement is on
        // the median and on the winners.
        let med = median(rows.iter().map(|(_, r)| r.packing_reduction));
        assert!(med > 5.0, "median packing reduction {med}");
        let big_winners = rows
            .iter()
            .filter(|(_, r)| r.packing_reduction > 20.0)
            .count();
        assert!(big_winners >= 4, "winners: {big_winners}");
    }

    #[test]
    fn fig19_layout_only_helps() {
        let results = measure_suite(&intel(), 1);
        let mut winners = 0;
        for r in &results {
            let g = r.reduction(Scheme::Global);
            let gl = r.reduction(Scheme::GlobalLayout);
            assert!(
                gl >= g - 0.6,
                "{}: layout degraded {g} -> {gl}",
                r.spec.name
            );
            if gl > g + 0.05 {
                winners += 1;
            }
        }
        assert!(winners >= 3, "layout should benefit several benchmarks");
    }

    #[test]
    fn fig21_reductions_are_consistent_across_cores() {
        let fig = fig21(&intel(), 8);
        assert_eq!(fig.rows.len(), 6);
        let mut improved = 0;
        for (name, series) in &fig.rows {
            for (g, _) in series {
                // Consistent improvements at every core count.
                assert!(*g > 5.0, "{name}: Global reduction {g}");
            }
            let first = series.first().expect("cores");
            let last = series.last().expect("cores");
            // No collapse at high core counts...
            assert!(
                last.0 >= first.0 * 0.7,
                "{name}: reduction collapsed with cores ({} -> {})",
                first.0,
                last.0
            );
            // ...and several benchmarks get slightly better, as the
            // bandwidth floor binds the scalar original harder.
            if last.0 >= first.0 {
                improved += 1;
            }
        }
        assert!(improved >= 2, "only {improved} series improved with cores");
    }
}
