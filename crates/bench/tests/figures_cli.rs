//! Smoke tests for the `figures` binary (the fast, table-only paths;
//! the full figure sweeps run under `cargo bench`).

use std::process::Command;

#[test]
fn figures_prints_the_tables() {
    for exhibit in ["table1", "table2", "table3"] {
        let out = Command::new(env!("CARGO_BIN_EXE_figures"))
            .arg(exhibit)
            .output()
            .expect("spawn figures");
        assert!(out.status.success());
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains("=="), "{exhibit}: {stdout}");
    }
}

#[test]
fn figures_rejects_unknown_exhibits() {
    let out = Command::new(env!("CARGO_BIN_EXE_figures"))
        .arg("fig99")
        .output()
        .expect("spawn figures");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn table3_lists_all_sixteen_benchmarks() {
    let out = Command::new(env!("CARGO_BIN_EXE_figures"))
        .arg("table3")
        .output()
        .expect("spawn figures");
    let stdout = String::from_utf8_lossy(&out.stdout);
    for spec in slp_suite::catalog() {
        assert!(stdout.contains(spec.name), "missing {}", spec.name);
    }
}
