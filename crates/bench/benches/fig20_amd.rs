//! Figure 20: Global and Global+Layout reductions on the AMD machine,
//! compared with the Intel averages.

use criterion::{criterion_group, criterion_main, Criterion};
use slp_bench::figures::{measure_suite, render_fig20};
use slp_core::MachineConfig;

fn bench_fig20(c: &mut Criterion) {
    let amd = MachineConfig::amd_phenom_ii();
    c.bench_function("fig20_amd_suite", |b| {
        b.iter(|| std::hint::black_box(measure_suite(&amd, 1)))
    });
    let intel_results = measure_suite(&MachineConfig::intel_dunnington(), 1);
    let amd_results = measure_suite(&amd, 1);
    println!(
        "\n== Figure 20 (scale 1) ==\n{}",
        render_fig20(&amd_results, &intel_results)
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig20
}
criterion_main!(benches);
