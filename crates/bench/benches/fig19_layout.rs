//! Figure 19: Global vs Global+Layout execution-time reductions on the
//! Intel machine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use slp_bench::figures::{measure_suite, render_fig19};
use slp_bench::{measure, Scheme};
use slp_core::MachineConfig;

fn bench_fig19(c: &mut Criterion) {
    let machine = MachineConfig::intel_dunnington();
    let mut group = c.benchmark_group("fig19");
    for scheme in [Scheme::Global, Scheme::GlobalLayout] {
        group.bench_with_input(
            BenchmarkId::new("suite", scheme.label()),
            &scheme,
            |b, &scheme| {
                let kernels = slp_suite::all(1);
                b.iter(|| {
                    for (_, p) in &kernels {
                        std::hint::black_box(measure(p, &machine, scheme).cycles());
                    }
                })
            },
        );
    }
    group.finish();
    println!(
        "\n== Figure 19 (scale 1) ==\n{}",
        render_fig19(&measure_suite(&machine, 1))
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig19
}
criterion_main!(benches);
