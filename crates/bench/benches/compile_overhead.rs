//! §7.1 compile-time overhead: "compared to the SLP version, our approach
//! increased compilation time by 27% on average". Criterion times the
//! two optimizers' compilation of the full suite.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use slp_bench::Scheme;
use slp_core::{compile, MachineConfig};

fn bench_compile(c: &mut Criterion) {
    let machine = MachineConfig::intel_dunnington();
    let kernels = slp_suite::all(1);
    let mut group = c.benchmark_group("compile");
    for scheme in [Scheme::Slp, Scheme::Global, Scheme::GlobalLayout] {
        group.bench_with_input(
            BenchmarkId::new("suite", scheme.label()),
            &scheme,
            |b, &scheme| {
                let cfg = scheme.config(&machine);
                b.iter(|| {
                    for (_, p) in &kernels {
                        std::hint::black_box(compile(p, &cfg));
                    }
                })
            },
        );
    }
    group.finish();
    let pct = slp_bench::figures::compile_overhead(&machine, 1);
    println!("\nGlobal compile-time overhead over SLP: {pct:+.1}% (paper: +27%)");
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_compile
}
criterion_main!(benches);
