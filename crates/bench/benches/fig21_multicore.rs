//! Figure 21: multicore execution-time reductions for the NAS kernels,
//! 1–12 cores, on the Intel machine.

use criterion::{criterion_group, criterion_main, Criterion};
use slp_bench::figures::{fig21, render_fig21};
use slp_core::MachineConfig;

fn bench_fig21(c: &mut Criterion) {
    let machine = MachineConfig::intel_dunnington();
    c.bench_function("fig21_nas_multicore", |b| {
        b.iter(|| std::hint::black_box(fig21(&machine, 2)))
    });
    println!(
        "\n== Figure 21 (scale 8) ==\n{}",
        render_fig21(&fig21(&machine, 8))
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig21
}
criterion_main!(benches);
